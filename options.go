package postcard

import (
	"github.com/interdc/postcard/internal/core"
)

// Option configures a Client built with New. Options are applied in order,
// so later options win on conflict.
type Option func(*Client)

// Client is the configured entry point to the Postcard optimizer. Build one
// with New and call Solve per slot; with WithWarmStart the client keeps the
// incremental solver's state (graph skeleton, simplex basis) between calls,
// otherwise every call is independent.
//
// A Client replaces hand-assembling a Config literal: the same knobs are
// exposed as self-documenting options, and the zero-option New() is the
// paper's default optimizer.
type Client struct {
	conf   core.Config
	warm   bool
	solver *core.Solver // lazily created when warm is set
}

// New builds a Postcard optimizer client. Without options it behaves
// exactly like Solve(ledger, files, t, nil): arc-based pricing, deadline
// pruning and delayed column generation on, storage allowed everywhere.
func New(opts ...Option) *Client {
	c := &Client{}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Solve optimizes the files generated at slot t against the ledger. See
// Solve (stateless) and IncrementalSolver (warm-started) for the exact
// semantics; which one backs the call depends on WithWarmStart.
func (c *Client) Solve(ledger *Ledger, files []File, t int) (*Result, error) {
	if c.warm {
		if c.solver == nil {
			conf := c.conf
			c.solver = core.NewSolver(&conf)
		}
		return c.solver.Solve(ledger, files, t)
	}
	conf := c.conf
	return core.Solve(ledger, files, t, &conf)
}

// Config returns a copy of the core configuration the client resolved from
// its options, for callers that need to hand it to lower-level APIs.
func (c *Client) Config() Config { return c.conf }

// Scheduler adapts the client for the online simulator, preserving its
// configuration and warm-start choice.
func (c *Client) Scheduler() Scheduler {
	conf := c.conf
	return &PostcardScheduler{Config: &conf, WarmStart: c.warm}
}

// WithEpsilon sets the tie-breaking weight that prefers fewer transfers
// among cost-equal plans. Zero selects the default.
func WithEpsilon(eps float64) Option {
	return func(c *Client) { c.conf.Epsilon = eps }
}

// WithStoragePolicy restricts where store-and-forward holdovers may occur.
func WithStoragePolicy(p StoragePolicy) Option {
	return func(c *Client) { c.conf.Storage = p }
}

// WithPricing selects the LP formulation: PricingArc (the default,
// per-arc flow variables with delayed column generation) or PricingPath
// (Dantzig–Wolfe path pricing, built for 100+ datacenter overlays).
func WithPricing(mode PricingMode) Option {
	return func(c *Client) { c.conf.Pricing = mode }
}

// WithPricingWorkers bounds the goroutine pool the path-pricing oracle fans
// per-file subproblems across. Zero uses GOMAXPROCS. Results are
// bit-identical for every worker count.
func WithPricingWorkers(n int) Option {
	return func(c *Client) { c.conf.PricingWorkers = n }
}

// WithLPBackend selects the LP compute backend by name: "serial" (the
// default, the historical single-threaded kernels) or "parallel"
// (multi-goroutine devex pricing and speculative FTRANs for top-priced
// candidates). The backends follow the same pivot trajectory, so results
// are bit-identical; an unknown name fails the solve with a descriptive
// error. The empty string keeps the default.
func WithLPBackend(name string) Option {
	return func(c *Client) { c.conf.LPBackend = name }
}

// WithLPWorkers bounds the parallel LP backend's worker pool. Zero or
// negative uses GOMAXPROCS; the serial backend ignores it. The knob affects
// only wall-clock time, never results or solver counters — solutions are
// bit-identical for every worker count.
func WithLPWorkers(n int) Option {
	return func(c *Client) { c.conf.LPWorkers = n }
}

// WithWarmStart makes the client keep incremental solver state between
// Solve calls: consecutive slots reuse the time-expanded graph skeleton and
// warm-start the LP from the previous basis.
func WithWarmStart() Option {
	return func(c *Client) { c.warm = true }
}

// WithoutPruning disables deadline-reachability variable pruning
// (diagnostic; the pruned model is provably equivalent).
func WithoutPruning() Option {
	return func(c *Client) { c.conf.DisablePruning = true }
}

// WithoutColumnGeneration materializes the full arc model up front instead
// of generating columns on demand (diagnostic; no effect under
// PricingPath, whose columns are inherently generated).
func WithoutColumnGeneration() Option {
	return func(c *Client) { c.conf.DisableColGen = true }
}

// WithoutVerification skips the independent schedule verifier on every
// optimal solve (it is cheap; disable it only in tight inner loops).
func WithoutVerification() Option {
	return func(c *Client) { c.conf.SkipVerify = true }
}

// WithLPOptions overrides the underlying LP solver options (tolerances,
// iteration limits, presolve). Most callers never need this.
func WithLPOptions(opts *LPOptions) Option {
	return func(c *Client) { c.conf.LP = opts }
}
