// Command postcard-figs regenerates the paper's evaluation figures
// (Sec. VII, Figs. 4-7): average cost per time interval with 95% confidence
// intervals, Postcard versus the flow-based approach, under four
// capacity/deadline settings.
//
// Usage:
//
//	postcard-figs                  # all four figures at CI scale
//	postcard-figs -fig 6           # just Fig. 6
//	postcard-figs -scale paper     # the paper's full 20-DC, 100-slot, 10-run scale
//	postcard-figs -schedulers postcard,flow-based,flow-greedy,direct
//	postcard-figs -schedulers help # list every registered scheduler
//	postcard-figs -csv out/        # also write per-slot cost series as CSV
//	postcard-figs -workers 1       # force sequential execution
//
// Independent (run, scheduler) simulation cells run on a worker pool
// (-workers, default the number of CPUs); the aggregated output is
// bit-identical regardless of the worker count.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"github.com/interdc/postcard"
	"github.com/interdc/postcard/internal/cliutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "postcard-figs:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	fig := flag.Int("fig", 0, "figure to regenerate (4-7), 0 = all")
	scaleName := flag.String("scale", "ci", "experiment scale: ci | paper")
	schedList := flag.String("schedulers", "postcard,flow-based", cliutil.SchedulerFlagUsage)
	csvDir := flag.String("csv", "", "directory to write per-slot cost series CSVs into")
	uniformDeadline := flag.Bool("uniform-deadline", false, "draw deadlines from U[1, maxT] instead of fixing them at maxT")
	runs := flag.Int("runs", 0, "override number of runs")
	slots := flag.Int("slots", 0, "override number of slots")
	dcs := flag.Int("dcs", 0, "override number of datacenters")
	filesMax := flag.Int("files-max", 0, "override maximum files per slot")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel (run, scheduler) simulation cells; 1 = sequential (output is identical either way)")
	quiet := flag.Bool("q", false, "suppress per-run progress")
	lpb := cliutil.AddLPBackendFlags(flag.CommandLine)
	prof := cliutil.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	schedulers, err := cliutil.ParseSchedulers(*schedList)
	if errors.Is(err, cliutil.ErrSchedulerHelp) {
		fmt.Print(cliutil.SchedulerHelp())
		return nil
	}
	if err != nil {
		return err
	}
	lpb.Apply(schedulers...)
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	var scale postcard.Scale
	switch *scaleName {
	case "ci":
		scale = postcard.CIScale()
	case "paper":
		scale = postcard.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	if *runs > 0 {
		scale.Runs = *runs
	}
	if *slots > 0 {
		scale.Slots = *slots
	}
	if *dcs > 0 {
		scale.DCs = *dcs
	}
	if *filesMax > 0 {
		scale.FilesMax = *filesMax
	}
	if err := cliutil.ValidateWorkers(*workers); err != nil {
		return err
	}
	scale.Workers = *workers

	var settings []postcard.EvalSetting
	if *fig == 0 {
		settings = postcard.EvalSettings()
	} else {
		s, err := postcard.SettingByFigure(*fig)
		if err != nil {
			return err
		}
		settings = []postcard.EvalSetting{s}
	}

	for _, setting := range settings {
		cfg := postcard.FigureConfig{
			Setting:          setting,
			Scale:            scale,
			Schedulers:       schedulers,
			UniformDeadlines: *uniformDeadline,
		}
		if !*quiet {
			cfg.Progress = func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
			}
		}
		res, err := postcard.RunFigure(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Table())
		// Solver instrumentation, present only when an incremental
		// scheduler (e.g. postcard-warm) was in the mix.
		if st := res.SolverTable(); st != "" {
			fmt.Println(st)
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, fmt.Sprintf("fig%d-%s.csv", setting.Figure, scale.Name))
			if err := os.WriteFile(path, []byte(res.SeriesCSV()), 0o644); err != nil {
				return err
			}
			fmt.Printf("series written to %s\n\n", path)
		}
	}
	return nil
}
