// Command postcard-solve solves a single offline Postcard instance: it
// reads a JSON description of an inter-datacenter network and a set of
// files, runs the selected scheduler, and prints the resulting plan and
// cost per charging interval.
//
// Usage:
//
//	postcard-solve -input instance.json [-scheduler postcard] [-dot graph.dot]
//
// The instance format:
//
//	{
//	  "datacenters": 4,
//	  "links":  [{"from": 0, "to": 3, "price": 6, "capacity": 5}, ...],
//	  "files":  [{"id": 1, "src": 1, "dst": 3, "size": 8, "deadline": 4, "release": 3}, ...]
//	}
//
// With no -input, a built-in instance (the paper's Fig. 3 worked example)
// is solved.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"

	"github.com/interdc/postcard"
	"github.com/interdc/postcard/internal/cliutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "postcard-solve:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	input := flag.String("input", "", "instance JSON file ('-' for stdin; empty = built-in Fig. 3 example)")
	scheduler := flag.String("scheduler", "postcard", `scheduler name ("help" lists all; "flow" is a legacy alias for flow-based)`)
	dotOut := flag.String("dot", "", "write the time-expanded graph in DOT format to this file")
	jsonOut := flag.Bool("json", false, "emit the plan as JSON instead of text")
	lpb := cliutil.AddLPBackendFlags(flag.CommandLine)
	prof := cliutil.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	if *scheduler == "help" {
		fmt.Print(cliutil.SchedulerHelp())
		return nil
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	nw, files, err := loadInstance(*input)
	if err != nil {
		return err
	}
	slot := 0
	if len(files) > 0 {
		slot = files[0].Release
		for _, f := range files {
			if f.Release < slot {
				slot = f.Release
			}
		}
	}
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
	if err != nil {
		return err
	}

	if *dotOut != "" {
		horizon := 1
		for _, f := range files {
			if h := f.Release + f.Deadline - slot; h > horizon {
				horizon = h
			}
		}
		dot, err := postcard.TimeExpandedDOT(nw, slot, horizon)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*dotOut, []byte(dot), 0o644); err != nil {
			return fmt.Errorf("writing DOT: %w", err)
		}
		fmt.Printf("time-expanded graph written to %s\n", *dotOut)
	}

	plan, cost, status, lpRes, err := solve(*scheduler, ledger, files, slot, lpb)
	if err != nil {
		return err
	}
	if status != postcard.StatusOptimal {
		return fmt.Errorf("no plan: solver status %v", status)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Scheduler   string            `json:"scheduler"`
			CostPerSlot float64           `json:"cost_per_slot"`
			Actions     []postcard.Action `json:"actions"`
		}{*scheduler, cost, plan.Actions()})
	}
	fmt.Printf("scheduler: %s\n", *scheduler)
	fmt.Printf("files: %d, actions: %d\n", len(files), plan.Len())
	for _, a := range plan.Actions() {
		fmt.Println(" ", a)
	}
	fmt.Printf("cost per interval: %.4f\n", cost)
	if lpRes != nil {
		fmt.Printf("lp: %d iterations (%d phase-1), %d vars, %d constraints\n",
			lpRes.Iterations, lpRes.Phase1Iter, lpRes.Variables, lpRes.Constraints)
		if tot := lpRes.SparseSolves + lpRes.DenseSolves; tot > 0 {
			density := 0.0
			if lpRes.SolveDim > 0 {
				density = float64(lpRes.SolveNNZ) / float64(lpRes.SolveDim)
			}
			fmt.Printf("lp basis solves: %.1f%% sparse (%d/%d), result density %.3f; %d devex resets, %d dual recomputes\n",
				100*float64(lpRes.SparseSolves)/float64(tot), lpRes.SparseSolves, tot,
				density, lpRes.DevexResets, lpRes.DualRecomputes)
		}
		if u := lpRes.VarUniverse + lpRes.PrunedVars; u > 0 {
			fmt.Printf("lp pruning: %d of %d universe variables removed (%.1f%%), %d conservation rows\n",
				lpRes.PrunedVars, u, 100*float64(lpRes.PrunedVars)/float64(u), lpRes.PrunedRows)
		}
		if lpRes.ColGenUniverse > 0 {
			fmt.Printf("lp column generation: %d rounds, %d of %d delayed columns materialized (%.1f%%)\n",
				lpRes.ColGenRounds, lpRes.ColGenColumns, lpRes.ColGenUniverse,
				100*float64(lpRes.ColGenColumns)/float64(lpRes.ColGenUniverse))
		}
		if lpRes.ColGenRows > 0 || lpRes.PathFallbacks > 0 {
			fmt.Printf("lp path pricing: %d lazy rows, %d arc fallbacks\n",
				lpRes.ColGenRows, lpRes.PathFallbacks)
		}
		if lpRes.ParallelScans+lpRes.SpecFtrans > 0 {
			parFrac, hitRate := 0.0, 0.0
			if lpRes.DevexScans > 0 {
				parFrac = 100 * float64(lpRes.ParallelScans) / float64(lpRes.DevexScans)
			}
			if lpRes.SpecFtrans > 0 {
				hitRate = 100 * float64(lpRes.SpecFtranHits) / float64(lpRes.SpecFtrans)
			}
			fmt.Printf("lp backend: %d workers, %.1f%% parallel scans, %d speculative ftrans (%.1f%% hit)\n",
				lpRes.BackendWorkers, parFrac, lpRes.SpecFtrans, hitRate)
		}
	}
	return nil
}

func loadInstance(path string) (*postcard.Network, []postcard.File, error) {
	if path == "" {
		return defaultInstance()
	}
	inst, err := cliutil.ReadInstanceFile(path)
	if err != nil {
		return nil, nil, err
	}
	return inst.Build()
}

func defaultInstance() (*postcard.Network, []postcard.File, error) {
	nw, files, err := postcard.Fig3Topology(0)
	if err != nil {
		return nil, nil, err
	}
	return nw, files, nil
}

func solve(name string, ledger *postcard.Ledger, files []postcard.File, slot int, lpb *cliutil.LPBackend) (*postcard.Schedule, float64, postcard.SolveStatus, *postcard.Result, error) {
	if name == "flow" {
		name = "flow-based" // legacy alias from before the registry
	}
	// The -lp-backend/-lp-workers selection, as an optimizer config (nil
	// when the flags were left at their defaults) and as an admission
	// config for the fast-tier cases.
	var coreCfg *postcard.Config
	var admCfg *postcard.AdmissionConfig
	if lpb.Chosen() {
		coreCfg = &postcard.Config{LPBackend: lpb.Name(), LPWorkers: lpb.Workers()}
		admCfg = &postcard.AdmissionConfig{Solver: coreCfg}
	}
	switch name {
	case "postcard":
		res, err := postcard.Solve(ledger, files, slot, coreCfg)
		if err != nil {
			return nil, 0, 0, nil, err
		}
		return res.Schedule, res.CostPerSlot, res.Status, res, nil
	case "postcard-warm":
		// One-shot use of the incremental solver: equivalent to "postcard"
		// for a single solve (the cache is empty), provided for parity with
		// the simulator's scheduler names.
		res, err := postcard.NewIncrementalSolver(coreCfg).Solve(ledger, files, slot)
		if err != nil {
			return nil, 0, 0, nil, err
		}
		return res.Schedule, res.CostPerSlot, res.Status, res, nil
	case "postcard-path":
		// Offline solve under Dantzig-Wolfe path pricing; the result carries
		// the path-oracle counters alongside the usual LP stats.
		res, err := postcard.New(
			postcard.WithPricing(postcard.PricingPath),
			postcard.WithLPBackend(lpb.Name()),
			postcard.WithLPWorkers(lpb.Workers()),
		).Solve(ledger, files, slot)
		if err != nil {
			return nil, 0, 0, nil, err
		}
		return res.Schedule, res.CostPerSlot, res.Status, res, nil
	case "postcard-fast", "postcard-fast-only":
		// One-shot use of the admission fast tier: admit the files in order
		// on provisional single-path plans; "postcard-fast" then republishes
		// the batch through the LP before committing. Any rejection makes
		// the instance infeasible for the fast tier (it never splits files).
		ctrl, err := postcard.NewAdmissionController(ledger, admCfg)
		if err != nil {
			return nil, 0, 0, nil, err
		}
		for _, f := range files {
			dec, err := ctrl.Admit(f, slot)
			if err != nil {
				return nil, 0, 0, nil, err
			}
			if !dec.Admitted {
				return nil, 0, postcard.StatusInfeasible, nil,
					fmt.Errorf("fast tier rejected file %d", f.ID)
			}
		}
		if name == "postcard-fast" {
			if err := ctrl.Republish(slot); err != nil {
				return nil, 0, 0, nil, err
			}
		}
		plan, _, err := ctrl.TakePlan()
		if err != nil {
			return nil, 0, 0, nil, err
		}
		trial := ledger.Clone()
		if err := plan.Apply(trial); err != nil {
			return nil, 0, 0, nil, err
		}
		return plan, trial.CostPerSlot(), postcard.StatusOptimal, nil, nil
	}
	// Everything else — the flow baselines, direct, postcard-nostore, and
	// any future registry entry — resolves through the scheduler registry
	// and is run one-shot: plan the slot, then price the plan on a trial
	// ledger. Unknown names fail here with the registry's name listing.
	sched, err := postcard.SchedulerByName(name)
	if err != nil {
		return nil, 0, 0, nil, err
	}
	lpb.Apply(sched)
	plan, err := sched.Schedule(ledger, files, slot)
	if errors.Is(err, postcard.ErrInfeasible) {
		return nil, 0, postcard.StatusInfeasible, nil, err
	}
	if err != nil {
		return nil, 0, 0, nil, err
	}
	trial := ledger.Clone()
	if err := plan.Apply(trial); err != nil {
		return nil, 0, 0, nil, err
	}
	return plan, trial.CostPerSlot(), postcard.StatusOptimal, nil, nil
}
