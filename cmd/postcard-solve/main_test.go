package main

import (
	"math"
	"testing"

	"github.com/interdc/postcard"
)

func TestLoadInstanceFromFile(t *testing.T) {
	nw, files, err := loadInstance("testdata/relay.json")
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumDCs() != 3 || len(files) != 1 {
		t.Fatalf("got %d DCs, %d files", nw.NumDCs(), len(files))
	}
	if files[0].Size != 12 || files[0].Deadline != 3 {
		t.Errorf("file fields lost: %+v", files[0])
	}
}

func TestLoadInstanceDefault(t *testing.T) {
	nw, files, err := loadInstance("")
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumDCs() != 4 || len(files) != 2 {
		t.Errorf("default instance should be Fig. 3: %d DCs, %d files", nw.NumDCs(), len(files))
	}
}

func TestLoadInstanceMissingFile(t *testing.T) {
	if _, _, err := loadInstance("testdata/nope.json"); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestSolveDispatch(t *testing.T) {
	// Every registry name must solve offline, plus the legacy "flow" alias.
	names := append(postcard.SchedulerNames(), "flow")
	for _, name := range names {
		nw, files, err := loadInstance("testdata/relay.json")
		if err != nil {
			t.Fatal(err)
		}
		ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
		if err != nil {
			t.Fatal(err)
		}
		plan, cost, status, _, err := solve(name, ledger, files, 0)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if status != postcard.StatusOptimal {
			t.Errorf("%s: status %v", name, status)
			continue
		}
		if plan.Len() == 0 || cost <= 0 {
			t.Errorf("%s: empty plan or cost %v", name, cost)
		}
	}
	if _, _, _, _, err := solve("bogus", nil, nil, 0); err == nil {
		t.Error("expected error for unknown scheduler")
	}
}

func TestRelayInstanceOptimum(t *testing.T) {
	nw, files, err := loadInstance("testdata/relay.json")
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
	if err != nil {
		t.Fatal(err)
	}
	_, cost, status, _, err := solve("postcard", ledger, files, 0)
	if err != nil || status != postcard.StatusOptimal {
		t.Fatalf("solve: %v %v", err, status)
	}
	// 12 GB over 0->1->2 pipelined at 6/slot: 2*6 + 3*6 = 30.
	if math.Abs(cost-30) > 1e-5 {
		t.Errorf("cost = %v, want 30", cost)
	}
}
