package main

import (
	"flag"
	"math"
	"testing"

	"github.com/interdc/postcard"
	"github.com/interdc/postcard/internal/cliutil"
)

// lpbFlags builds an LPBackend selection as the flag package would, from
// zero or more "-lp-backend=..."/"-lp-workers=..." arguments.
func lpbFlags(t *testing.T, args ...string) *cliutil.LPBackend {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	lpb := cliutil.AddLPBackendFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return lpb
}

func TestLoadInstanceFromFile(t *testing.T) {
	nw, files, err := loadInstance("testdata/relay.json")
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumDCs() != 3 || len(files) != 1 {
		t.Fatalf("got %d DCs, %d files", nw.NumDCs(), len(files))
	}
	if files[0].Size != 12 || files[0].Deadline != 3 {
		t.Errorf("file fields lost: %+v", files[0])
	}
}

func TestLoadInstanceDefault(t *testing.T) {
	nw, files, err := loadInstance("")
	if err != nil {
		t.Fatal(err)
	}
	if nw.NumDCs() != 4 || len(files) != 2 {
		t.Errorf("default instance should be Fig. 3: %d DCs, %d files", nw.NumDCs(), len(files))
	}
}

func TestLoadInstanceMissingFile(t *testing.T) {
	if _, _, err := loadInstance("testdata/nope.json"); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestSolveDispatch(t *testing.T) {
	// Every registry name must solve offline, plus the legacy "flow" alias —
	// under the default backend and with the parallel LP backend selected,
	// which must not change any plan or cost.
	names := append(postcard.SchedulerNames(), "flow")
	for _, args := range [][]string{nil, {"-lp-backend=parallel", "-lp-workers=3"}} {
		lpb := lpbFlags(t, args...)
		for _, name := range names {
			nw, files, err := loadInstance("testdata/relay.json")
			if err != nil {
				t.Fatal(err)
			}
			ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
			if err != nil {
				t.Fatal(err)
			}
			plan, cost, status, _, err := solve(name, ledger, files, 0, lpb)
			if err != nil {
				t.Errorf("%s %v: %v", name, args, err)
				continue
			}
			if status != postcard.StatusOptimal {
				t.Errorf("%s %v: status %v", name, args, status)
				continue
			}
			if plan.Len() == 0 || cost <= 0 {
				t.Errorf("%s %v: empty plan or cost %v", name, args, cost)
			}
		}
	}
	if _, _, _, _, err := solve("bogus", nil, nil, 0, lpbFlags(t)); err == nil {
		t.Error("expected error for unknown scheduler")
	}
	// An unknown backend name must surface the lp layer's error through the
	// whole -lp-backend plumbing, not silently fall back to serial.
	nw, files, err := loadInstance("testdata/relay.json")
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := solve("postcard", ledger, files, 0, lpbFlags(t, "-lp-backend=bogus")); err == nil {
		t.Error("expected error for unknown LP backend")
	}
}

func TestRelayInstanceOptimum(t *testing.T) {
	nw, files, err := loadInstance("testdata/relay.json")
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
	if err != nil {
		t.Fatal(err)
	}
	_, cost, status, _, err := solve("postcard", ledger, files, 0, lpbFlags(t))
	if err != nil || status != postcard.StatusOptimal {
		t.Fatalf("solve: %v %v", err, status)
	}
	// 12 GB over 0->1->2 pipelined at 6/slot: 2*6 + 3*6 = 30.
	if math.Abs(cost-30) > 1e-5 {
		t.Errorf("cost = %v, want 30", cost)
	}
}
