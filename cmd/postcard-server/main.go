// Command postcard-server runs the Postcard admission daemon: an
// HTTP/JSON control plane that admits inter-datacenter transfers through
// the two-tier admission pipeline (fast single-path admission, background
// LP republish) over a charging ledger, with a slot clock, Prometheus
// metrics, and snapshot/restore across restarts.
//
// Usage:
//
//	postcard-server -instance instance.json -listen :8080
//	postcard-server -instance instance.json -slot-ms 1000 -snapshot state.json
//	postcard-server -restore state.json -listen :8080
//
// Endpoints:
//
//	POST /v1/transfers      {"src":0,"dst":3,"size_gb":20,"deadline":3}
//	GET  /v1/plans/{id}     per-file schedule (provisional or committed)
//	GET  /v1/status         slot, costs, counters
//	POST /v1/slots/advance  close the slot's batch (manual clock)
//	POST /v1/snapshot       write a state snapshot
//	GET  /metrics           Prometheus text format
//
// Signals: SIGINT/SIGTERM drain the open batch and exit (writing a final
// snapshot when -snapshot is set); SIGHUP re-reads -instance and applies
// its link prices to the running server (topology and capacities must be
// unchanged).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/interdc/postcard/internal/admission"
	"github.com/interdc/postcard/internal/cliutil"
	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "postcard-server:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	instancePath := flag.String("instance", "", "topology/pricing instance JSON (required unless -restore)")
	restorePath := flag.String("restore", "", "resume from a snapshot written by -snapshot or POST /v1/snapshot")
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
	q := flag.Float64("q", 100, "charging percentile in (0, 100]")
	period := flag.Int("period", 100, "charging period, slots")
	slotMS := flag.Int("slot-ms", 0, "advance the slot clock every this many milliseconds (0 = manual)")
	snapshotPath := flag.String("snapshot", "", "write state snapshots to this file (on shutdown and POST /v1/snapshot)")
	drain := flag.String("drain", "commit", "shutdown policy for the open batch: commit | rollback")
	noRepublish := flag.Bool("no-republish", false, "disable the LP republisher entirely")
	commitOnly := flag.Bool("republish-on-commit-only", false, "republish only when a slot commits (one LP solve per slot, bit-comparable to a sequential postcard-fast run)")
	lpb := cliutil.AddLPBackendFlags(flag.CommandLine)
	prof := cliutil.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	var rollback bool
	switch *drain {
	case "commit":
	case "rollback":
		rollback = true
	default:
		return fmt.Errorf("-drain must be commit or rollback, got %q", *drain)
	}

	cfg := server.Config{
		Charging:              netmodel.Charging{Q: *q, PeriodSlots: *period},
		SlotEvery:             time.Duration(*slotMS) * time.Millisecond,
		SnapshotPath:          *snapshotPath,
		DrainRollback:         rollback,
		NoRepublish:           *noRepublish,
		RepublishOnCommitOnly: *commitOnly,
		Logf:                  log.Printf,
	}
	if lpb.Chosen() {
		// Thread the LP backend selection into the republisher's solver;
		// plans and costs are identical for every backend and worker count.
		cfg.Admission = &admission.Config{
			Solver: &core.Config{LPBackend: lpb.Name(), LPWorkers: lpb.Workers()},
		}
	}

	var srv *server.Server
	switch {
	case *restorePath != "":
		var err error
		srv, err = server.RestoreFile(cfg, *restorePath)
		if err != nil {
			return err
		}
		log.Printf("restored from %s (slot %d)", *restorePath, srv.Status().Slot)
	case *instancePath != "":
		nw, err := loadNetwork(*instancePath)
		if err != nil {
			return err
		}
		cfg.Network = nw
		srv, err = server.New(cfg)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("either -instance or -restore is required")
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	log.Printf("listening on %s", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for {
		select {
		case err := <-serveErr:
			srv.Close()
			return err
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				if *instancePath == "" {
					log.Printf("SIGHUP: no -instance file to reload")
					continue
				}
				if err := reloadPricing(srv, *instancePath); err != nil {
					log.Printf("SIGHUP: %v", err)
				}
				continue
			}
			log.Printf("%s: shutting down", sig)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			err := httpSrv.Shutdown(ctx)
			cancel()
			if cerr := srv.Close(); cerr != nil && err == nil {
				err = cerr
			}
			if errors.Is(err, http.ErrServerClosed) {
				err = nil
			}
			return err
		}
	}
}

func loadNetwork(path string) (*netmodel.Network, error) {
	inst, err := cliutil.ReadInstanceFile(path)
	if err != nil {
		return nil, err
	}
	nw, _, err := inst.Build()
	if err != nil {
		return nil, err
	}
	return nw, nil
}

func reloadPricing(srv *server.Server, path string) error {
	inst, err := cliutil.ReadInstanceFile(path)
	if err != nil {
		return err
	}
	return srv.ReloadPricing(inst)
}
