// Command postcard-sim runs one online time-slotted simulation with a
// configurable network, workload, and scheduler, and prints the cost per
// charging interval over time. With a comma-separated -scheduler list it
// replays the identical workload trace through every scheduler — each on
// its own ledger and replay cursor, concurrently up to -workers — and
// prints the per-scheduler reports in listed order (output is independent
// of the worker count).
//
// Usage:
//
//	postcard-sim -dcs 8 -slots 20 -capacity 30 -maxt 8 -scheduler postcard
//	postcard-sim -scheduler flow-based -csv costs.csv
//	postcard-sim -scheduler postcard,flow-based,direct -workers 4
//	postcard-sim -scheduler help            # list every registered scheduler
//	postcard-sim -trace-out trace.json      # save the workload for replay
//	postcard-sim -trace-in trace.json       # replay a saved workload
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"github.com/interdc/postcard"
	"github.com/interdc/postcard/internal/cliutil"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "postcard-sim:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	dcs := flag.Int("dcs", 8, "number of datacenters (complete graph)")
	slots := flag.Int("slots", 20, "number of time slots to simulate")
	capacity := flag.Float64("capacity", 30, "per-link capacity in GB/slot")
	maxT := flag.Int("maxt", 3, "maximum tolerable transfer time, slots")
	filesMin := flag.Int("files-min", 1, "minimum files per slot")
	filesMax := flag.Int("files-max", 4, "maximum files per slot")
	sizeMin := flag.Float64("size-min", 10, "minimum file size, GB")
	sizeMax := flag.Float64("size-max", 100, "maximum file size, GB")
	seed := flag.Int64("seed", 1, "random seed (prices and workload)")
	schedNames := flag.String("scheduler", "postcard", cliutil.SchedulerFlagUsage)
	workers := flag.Int("workers", runtime.NumCPU(), "schedulers simulated concurrently (each on its own ledger)")
	csvOut := flag.String("csv", "", "write the per-slot cost series to this CSV file (one column per scheduler)")
	traceOut := flag.String("trace-out", "", "record the generated workload to this JSON file")
	instanceOut := flag.String("instance-out", "", "write the generated network as an instance JSON file (e.g. for postcard-server)")
	traceIn := flag.String("trace-in", "", "replay a workload recorded with -trace-out")
	lpb := cliutil.AddLPBackendFlags(flag.CommandLine)
	prof := cliutil.AddProfileFlags(flag.CommandLine)
	flag.Parse()

	scheds, err := cliutil.ParseSchedulers(*schedNames)
	if errors.Is(err, cliutil.ErrSchedulerHelp) {
		fmt.Print(cliutil.SchedulerHelp())
		return nil
	}
	if err != nil {
		return err
	}
	lpb.Apply(scheds...)
	if err := cliutil.ValidateWorkers(*workers); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	nw, err := postcard.Complete(*dcs, postcard.UniformPrices(*seed), *capacity)
	if err != nil {
		return err
	}

	if *instanceOut != "" {
		if err := cliutil.WriteInstanceFile(*instanceOut, postcard.InstanceOf(nw, nil)); err != nil {
			return err
		}
		fmt.Printf("instance written to %s\n", *instanceOut)
	}

	var trace *postcard.Trace
	if *traceIn != "" {
		trace, err = cliutil.ReadTraceFile(*traceIn)
		if err != nil {
			return err
		}
	} else {
		uni, err := postcard.NewUniformWorkload(postcard.UniformWorkloadConfig{
			NumDCs:      *dcs,
			MinFiles:    *filesMin,
			MaxFiles:    *filesMax,
			MinSizeGB:   *sizeMin,
			MaxSizeGB:   *sizeMax,
			MaxDeadline: *maxT,
			Seed:        *seed + 1,
		})
		if err != nil {
			return err
		}
		trace = postcard.RecordTrace(uni, *slots)
		if *traceOut != "" {
			if err := cliutil.WriteTraceFile(*traceOut, trace); err != nil {
				return err
			}
			fmt.Printf("workload trace written to %s\n", *traceOut)
		}
	}

	// Every scheduler replays the identical immutable trace on its own
	// ledger through its own cursor; up to -workers run concurrently.
	// Results are collected per index and reported in listed order, so the
	// output does not depend on the worker count.
	type outcome struct {
		stats *postcard.RunStats
		err   error
	}
	outcomes := make([]outcome, len(scheds))
	sem := make(chan struct{}, *workers)
	var wg sync.WaitGroup
	for i, sched := range scheds {
		wg.Add(1)
		go func(i int, sched postcard.Scheduler) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(*slots))
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			rs, err := postcard.Run(ledger, sched, trace.Replay(), *slots)
			outcomes[i] = outcome{stats: rs, err: err}
		}(i, sched)
	}
	wg.Wait()

	for i, sched := range scheds {
		if err := outcomes[i].err; err != nil {
			return fmt.Errorf("scheduler %s: %w", sched.Name(), err)
		}
		rs := outcomes[i].stats
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("scheduler:        %s\n", sched.Name())
		fmt.Printf("datacenters:      %d (complete, capacity %g GB/slot)\n", *dcs, *capacity)
		fmt.Printf("slots:            %d\n", *slots)
		fmt.Printf("files scheduled:  %d (%.1f GB)\n", rs.ScheduledFiles, rs.ScheduledVolume)
		fmt.Printf("files dropped:    %d (%.1f GB, %.2f%%)\n", rs.DroppedFiles, rs.DroppedVolume, 100*rs.DropRate())
		fmt.Printf("solve time:       %s\n", rs.Elapsed.Round(1000000))
		fmt.Printf("final cost/slot:  %.2f\n", rs.FinalCostPerSlot)
		if sv := rs.Solver; sv.Solves > 0 {
			fmt.Printf("lp solves:        %d (%d warm-started, %d graph reuses)\n",
				sv.Solves, sv.WarmSolves, sv.GraphReuses)
			fmt.Printf("lp iterations:    %d (%d phase-1); presolve removed %d cols, %d rows\n",
				sv.Iterations, sv.Phase1Iter, sv.PresolveCols, sv.PresolveRows)
			if tot := sv.SparseSolves + sv.DenseSolves; tot > 0 {
				density := 0.0
				if sv.SolveDim > 0 {
					density = float64(sv.SolveNNZ) / float64(sv.SolveDim)
				}
				fmt.Printf("lp basis solves:  %.1f%% sparse (%d/%d), result density %.3f\n",
					100*float64(sv.SparseSolves)/float64(tot), sv.SparseSolves, tot, density)
				fmt.Printf("lp pricing:       %d devex resets, %d dual recomputes\n",
					sv.DevexResets, sv.DualRecomputes)
			}
			if sv.PathSolves > 0 {
				fmt.Printf("path pricing:     %d solves, %d fallbacks, %d lazy rows, %d columns\n",
					sv.PathSolves, sv.PathFallbacks, sv.ColGenRows, sv.ColGenColumns)
			}
		}
		if sv := rs.Solver; sv.Admits+sv.Rejects > 0 {
			fmt.Printf("fast admissions:  %d admitted, %d rejected, %d republishes\n",
				sv.Admits, sv.Rejects, sv.Republishes)
			fmt.Printf("fast-tier cost:   %.2f committed, %.2f saved by republish\n",
				sv.FastCost, sv.RepublishDelta)
		}
		fmt.Println("\ncost per interval over time:")
		for t, c := range rs.CostSeries {
			fmt.Printf("  slot %3d: %10.2f %s\n", t, c, bar(c, rs.FinalCostPerSlot))
		}
	}
	if *csvOut != "" {
		var b strings.Builder
		b.WriteString("slot")
		for _, sched := range scheds {
			fmt.Fprintf(&b, ",%s", sched.Name())
		}
		b.WriteByte('\n')
		for t := 0; t < *slots; t++ {
			fmt.Fprintf(&b, "%d", t)
			for i := range scheds {
				fmt.Fprintf(&b, ",%.4f", outcomes[i].stats.CostSeries[t])
			}
			b.WriteByte('\n')
		}
		if err := os.WriteFile(*csvOut, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nseries written to %s\n", *csvOut)
	}
	return nil
}

func bar(v, maxV float64) string {
	if maxV <= 0 {
		return ""
	}
	n := int(40 * v / maxV)
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}
