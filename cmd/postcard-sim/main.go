// Command postcard-sim runs one online time-slotted simulation with a
// configurable network, workload, and scheduler, and prints the cost per
// charging interval over time.
//
// Usage:
//
//	postcard-sim -dcs 8 -slots 20 -capacity 30 -maxt 8 -scheduler postcard
//	postcard-sim -scheduler flow-based -csv costs.csv
//	postcard-sim -trace-out trace.json      # save the workload for replay
//	postcard-sim -trace-in trace.json       # replay a saved workload
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/interdc/postcard"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "postcard-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	dcs := flag.Int("dcs", 8, "number of datacenters (complete graph)")
	slots := flag.Int("slots", 20, "number of time slots to simulate")
	capacity := flag.Float64("capacity", 30, "per-link capacity in GB/slot")
	maxT := flag.Int("maxt", 3, "maximum tolerable transfer time, slots")
	filesMin := flag.Int("files-min", 1, "minimum files per slot")
	filesMax := flag.Int("files-max", 4, "maximum files per slot")
	sizeMin := flag.Float64("size-min", 10, "minimum file size, GB")
	sizeMax := flag.Float64("size-max", 100, "maximum file size, GB")
	seed := flag.Int64("seed", 1, "random seed (prices and workload)")
	schedName := flag.String("scheduler", "postcard", "postcard | postcard-nostore | flow-based | flow-two-phase | flow-greedy | direct")
	csvOut := flag.String("csv", "", "write the per-slot cost series to this CSV file")
	traceOut := flag.String("trace-out", "", "record the generated workload to this JSON file")
	traceIn := flag.String("trace-in", "", "replay a workload recorded with -trace-out")
	flag.Parse()

	nw, err := postcard.Complete(*dcs, postcard.UniformPrices(*seed), *capacity)
	if err != nil {
		return err
	}
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(*slots))
	if err != nil {
		return err
	}

	var gen postcard.WorkloadGenerator
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			return err
		}
		defer f.Close()
		trace, err := readTrace(f)
		if err != nil {
			return err
		}
		gen = trace
	} else {
		uni, err := postcard.NewUniformWorkload(postcard.UniformWorkloadConfig{
			NumDCs:      *dcs,
			MinFiles:    *filesMin,
			MaxFiles:    *filesMax,
			MinSizeGB:   *sizeMin,
			MaxSizeGB:   *sizeMax,
			MaxDeadline: *maxT,
			Seed:        *seed + 1,
		})
		if err != nil {
			return err
		}
		trace := postcard.RecordTrace(uni, *slots)
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			if err := trace.WriteJSON(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("workload trace written to %s\n", *traceOut)
		}
		gen = trace
	}

	sched, err := postcard.SchedulerByName(*schedName)
	if err != nil {
		return err
	}
	rs, err := postcard.Run(ledger, sched, gen, *slots)
	if err != nil {
		return err
	}

	fmt.Printf("scheduler:        %s\n", sched.Name())
	fmt.Printf("datacenters:      %d (complete, capacity %g GB/slot)\n", *dcs, *capacity)
	fmt.Printf("slots:            %d\n", *slots)
	fmt.Printf("files scheduled:  %d (%.1f GB)\n", rs.ScheduledFiles, rs.ScheduledVolume)
	fmt.Printf("files dropped:    %d (%.1f GB, %.2f%%)\n", rs.DroppedFiles, rs.DroppedVolume, 100*rs.DropRate())
	fmt.Printf("solve time:       %s\n", rs.Elapsed.Round(1000000))
	fmt.Printf("final cost/slot:  %.2f\n", rs.FinalCostPerSlot)
	fmt.Println("\ncost per interval over time:")
	for t, c := range rs.CostSeries {
		fmt.Printf("  slot %3d: %10.2f %s\n", t, c, bar(c, rs.FinalCostPerSlot))
	}
	if *csvOut != "" {
		var b strings.Builder
		b.WriteString("slot,cost_per_slot\n")
		for t, c := range rs.CostSeries {
			fmt.Fprintf(&b, "%d,%.4f\n", t, c)
		}
		if err := os.WriteFile(*csvOut, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nseries written to %s\n", *csvOut)
	}
	return nil
}

func bar(v, maxV float64) string {
	if maxV <= 0 {
		return ""
	}
	n := int(40 * v / maxV)
	if n < 0 {
		n = 0
	}
	if n > 40 {
		n = 40
	}
	return strings.Repeat("#", n)
}

func readTrace(f *os.File) (*postcard.Trace, error) {
	return postcard.ReadTrace(f)
}
