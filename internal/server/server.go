// Package server implements the postcard-server daemon: an HTTP/JSON
// control plane over the two-tier admission pipeline. It decomposes into
// three pieces sharing one mutex-guarded state machine:
//
//   - the controller front end (POST /v1/transfers) answers admit/reject
//     synchronously from the fast tier, returning the provisional plan or
//     the reject certificate;
//   - the republisher re-solves the open batch through the warm
//     incremental LP in the background and atomically swaps the batch's
//     plan when the LP improves it;
//   - the telemetry/plan surface (GET /v1/plans/{id}, GET /v1/status,
//     GET /metrics) exposes per-file schedules and the full solver and
//     admission counter set.
//
// A slot clock (or explicit POST /v1/slots/advance) closes each slot's
// batch: the final plan is committed to the charging ledger and the per-file
// records flip from provisional to committed. Close drains the open batch
// and optionally snapshots the full state to disk; Restore resumes a
// snapshotted server bit-identically (see snapshot.go).
package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/interdc/postcard/internal/admission"
	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
)

// Config parameterizes a Server.
type Config struct {
	// Network is the topology and pricing the server schedules over.
	Network *netmodel.Network
	// Charging is the percentile charging scheme of the ledger.
	Charging netmodel.Charging
	// Admission tunes the admission controller; nil selects defaults.
	Admission *admission.Config
	// SlotEvery advances the slot clock automatically at this period; 0
	// leaves the clock manual (POST /v1/slots/advance only).
	SlotEvery time.Duration
	// SnapshotPath, when non-empty, is where Close writes the final state
	// snapshot (and where POST /v1/snapshot writes on demand).
	SnapshotPath string
	// DrainRollback makes Close discard the open batch via Rollback
	// instead of committing it through TakePlan.
	DrainRollback bool
	// NoRepublish disables the LP republisher entirely; batches commit
	// their provisional fast-tier plans unchanged.
	NoRepublish bool
	// RepublishOnCommitOnly restricts the republisher to the slot-commit
	// path: no eager background re-solves between admissions. The commit
	// pipeline then performs exactly one LP solve per non-empty slot —
	// the same sequence as the postcard-fast simulation scheduler — which
	// makes the counter set bit-comparable to a sequential run (the CI
	// smoke diff relies on this).
	RepublishOnCommitOnly bool
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

// PlanStatus is the lifecycle state of one admitted transfer.
type PlanStatus string

const (
	// StatusProvisional marks a transfer admitted into the still-open
	// batch; its plan may improve when the republisher runs.
	StatusProvisional PlanStatus = "provisional"
	// StatusCommitted marks a transfer whose slot has closed; its plan is
	// final and recorded in the charging ledger.
	StatusCommitted PlanStatus = "committed"
)

// PlanRecord is the queryable per-transfer state.
type PlanRecord struct {
	FileID      int               `json:"file_id"`
	File        netmodel.File     `json:"file"`
	Status      PlanStatus        `json:"status"`
	Slot        int               `json:"slot"` // admission slot
	ChargeDelta float64           `json:"charge_delta"`
	Path        []netmodel.DC     `json:"path,omitempty"`
	Actions     []schedule.Action `json:"actions,omitempty"`
}

// Server is the daemon state machine. All fields behind mu; safe for
// concurrent use by the HTTP handlers, the republisher, and the slot
// clock.
type Server struct {
	cfg Config

	mu     sync.Mutex
	nw     *netmodel.Network
	ledger *netmodel.Ledger
	ctrl   *admission.Controller
	slot   int
	nextID int
	plans  map[int]*PlanRecord
	closed bool

	slotsAdvanced int // lifetime slot commits (restarts included)
	reloads       int // pricing reloads applied

	republishPending bool

	clockStop chan struct{}
	clockDone chan struct{}
}

// New builds a server over a fresh ledger.
func New(cfg Config) (*Server, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("server: nil network")
	}
	ledger, err := netmodel.NewLedger(cfg.Network, cfg.Charging)
	if err != nil {
		return nil, err
	}
	ctrl, err := admission.NewController(ledger, cfg.Admission)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		nw:     cfg.Network,
		ledger: ledger,
		ctrl:   ctrl,
		nextID: 1,
		plans:  make(map[int]*PlanRecord),
	}
	s.startClock()
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) startClock() {
	if s.cfg.SlotEvery <= 0 {
		return
	}
	s.clockStop = make(chan struct{})
	s.clockDone = make(chan struct{})
	go func() {
		defer close(s.clockDone)
		t := time.NewTicker(s.cfg.SlotEvery)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if _, err := s.AdvanceSlot(); err != nil {
					s.logf("slot clock: %v", err)
				}
			case <-s.clockStop:
				return
			}
		}
	}()
}

// TransferRequest is the body of POST /v1/transfers.
type TransferRequest struct {
	Src      int     `json:"src"`
	Dst      int     `json:"dst"`
	SizeGB   float64 `json:"size_gb"`
	Deadline int     `json:"deadline"`
	// Release is the slot the file becomes available; values below the
	// current slot (including the zero value) admit at the current slot.
	Release int `json:"release"`
}

// TransferResponse is the synchronous admission answer.
type TransferResponse struct {
	ID       int  `json:"id"`
	Admitted bool `json:"admitted"`
	Slot     int  `json:"slot"`
	// Plan is the provisional fast-tier plan; nil when rejected. The
	// background republisher may improve it before the slot commits —
	// GET /v1/plans/{id} always shows the current plan.
	Plan *PlanRecord `json:"plan,omitempty"`
	// Expansions and Exhaustive form the reject certificate: a rejection
	// with Exhaustive true proved no feasible single path exists under the
	// current reservations; false means the search hit its expansion
	// budget first.
	Expansions int  `json:"expansions"`
	Exhaustive bool `json:"exhaustive"`
}

// Admit runs the fast-path admission decision for one transfer request at
// the current slot and, on admission, schedules a background republish of
// the open batch.
func (s *Server) Admit(req TransferRequest) (*TransferResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errClosed
	}
	release := req.Release
	if release < s.slot {
		release = s.slot
	}
	f := netmodel.File{
		ID:       s.nextID,
		Src:      netmodel.DC(req.Src),
		Dst:      netmodel.DC(req.Dst),
		Size:     req.SizeGB,
		Deadline: req.Deadline,
		Release:  release,
	}
	if err := f.Validate(s.nw); err != nil {
		return nil, err
	}
	dec, err := s.ctrl.Admit(f, s.slot)
	if err != nil {
		return nil, err
	}
	s.nextID++
	resp := &TransferResponse{
		ID:         f.ID,
		Admitted:   dec.Admitted,
		Slot:       s.slot,
		Expansions: dec.Expansions,
		Exhaustive: dec.Exhaustive,
	}
	if !dec.Admitted {
		return resp, nil
	}
	rec := &PlanRecord{
		FileID:      f.ID,
		File:        f,
		Status:      StatusProvisional,
		Slot:        s.slot,
		ChargeDelta: dec.Plan.ChargeDelta,
		Path:        dec.Plan.Path,
		Actions:     dec.Plan.Schedule.Actions(),
	}
	s.plans[f.ID] = rec
	// The response carries a copy: the live record is mutated under the
	// lock by the republisher, while the handler marshals the response
	// after the lock is released.
	resp.Plan = copyRecord(rec)
	s.scheduleRepublishLocked()
	return resp, nil
}

func copyRecord(rec *PlanRecord) *PlanRecord {
	cp := *rec
	cp.Actions = append([]schedule.Action(nil), rec.Actions...)
	cp.Path = append([]netmodel.DC(nil), rec.Path...)
	return &cp
}

// scheduleRepublishLocked queues one background republish of the open
// batch. Admissions arriving while a republish is pending coalesce into
// it; the republish grabs the state lock, so it serializes with admits and
// slot advances.
func (s *Server) scheduleRepublishLocked() {
	if s.cfg.NoRepublish || s.cfg.RepublishOnCommitOnly || s.republishPending {
		return
	}
	s.republishPending = true
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.republishPending = false
		if s.closed {
			return
		}
		if err := s.republishLocked(); err != nil {
			s.logf("republish: %v", err)
		}
	}()
}

// republishLocked re-solves the open batch through the LP and refreshes
// the provisional plan records from the (possibly swapped) batch plan.
func (s *Server) republishLocked() error {
	if len(s.ctrl.Pending()) == 0 {
		return nil
	}
	if err := s.ctrl.Republish(s.slot); err != nil {
		return err
	}
	s.refreshProvisionalLocked()
	return nil
}

// refreshProvisionalLocked re-splits the batch's current merged plan into
// the per-file provisional records. After an LP swap a file's plan may use
// multiple paths, so Path no longer applies.
func (s *Server) refreshProvisionalLocked() {
	perFile := splitByFile(s.ctrl.BatchPlan())
	for _, f := range s.ctrl.Pending() {
		rec := s.plans[f.ID]
		if rec == nil || rec.Status != StatusProvisional {
			continue
		}
		if actions, ok := perFile[f.ID]; ok {
			rec.Actions = actions
			rec.Path = nil
		}
	}
}

// AdvanceSlot closes the current slot: the open batch is republished one
// final time (unless disabled), committed to the ledger, its records
// flipped to committed, and the clock moves to the next slot.
func (s *Server) AdvanceSlot() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, errClosed
	}
	if err := s.advanceLocked(); err != nil {
		return 0, err
	}
	return s.slot, nil
}

func (s *Server) advanceLocked() error {
	if err := s.commitBatchLocked(); err != nil {
		return err
	}
	s.slot++
	return nil
}

// commitBatchLocked finalizes the open batch (republish + TakePlan +
// ledger apply + record flip) without advancing the clock.
func (s *Server) commitBatchLocked() error {
	if len(s.ctrl.Pending()) > 0 && !s.cfg.NoRepublish {
		if err := s.republishLocked(); err != nil {
			return err
		}
	}
	plan, files, err := s.ctrl.TakePlan()
	if err != nil {
		return err
	}
	if err := plan.Apply(s.ledger); err != nil {
		return fmt.Errorf("server: committing slot %d plan: %w", s.slot, err)
	}
	perFile := splitByFile(plan.Actions())
	for _, f := range files {
		rec := s.plans[f.ID]
		if rec == nil {
			continue
		}
		rec.Status = StatusCommitted
		rec.Actions = perFile[f.ID]
	}
	if len(files) > 0 {
		s.logf("slot %d: committed %d files, cost/slot %.4f", s.slot, len(files), s.ledger.CostPerSlot())
	}
	s.slotsAdvanced++
	return nil
}

// PlanByID returns the current record for one transfer.
func (s *Server) PlanByID(id int) (*PlanRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.plans[id]
	if !ok {
		return nil, false
	}
	return copyRecord(rec), true
}

// Status is the GET /v1/status body.
type Status struct {
	Slot          int             `json:"slot"`
	CostPerSlot   float64         `json:"cost_per_slot"`
	TotalCost     float64         `json:"total_cost"`
	PendingFiles  int             `json:"pending_files"`
	Plans         int             `json:"plans"`
	SlotsAdvanced int             `json:"slots_advanced"`
	Reloads       int             `json:"pricing_reloads"`
	Admission     admission.Stats `json:"admission"`
	Solver        core.SolveStats `json:"solver"`
}

// Status reports the server's aggregate state.
func (s *Server) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked()
}

func (s *Server) statusLocked() Status {
	return Status{
		Slot:          s.slot,
		CostPerSlot:   s.ledger.CostPerSlot(),
		TotalCost:     s.ledger.TotalCost(),
		PendingFiles:  len(s.ctrl.Pending()),
		Plans:         len(s.plans),
		SlotsAdvanced: s.slotsAdvanced,
		Reloads:       s.reloads,
		Admission:     s.ctrl.Stats(),
		Solver:        s.ctrl.SolverStats(),
	}
}

// ReloadPricing swaps the link prices to the instance's, keeping topology
// and capacities fixed (changing either would invalidate in-flight
// reservations and recorded volumes). Prices are read per solve, so the
// next republish and all later slots price against the new tariff; the
// ledger's recorded volumes are unaffected. This is the SIGHUP handler's
// backend.
func (s *Server) ReloadPricing(inst *netmodel.Instance) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	if inst.Datacenters != s.nw.NumDCs() {
		return fmt.Errorf("server: pricing reload changes datacenter count %d -> %d", s.nw.NumDCs(), inst.Datacenters)
	}
	seen := make(map[netmodel.Link]bool, len(inst.Links))
	for _, l := range inst.Links {
		from, to := netmodel.DC(l.From), netmodel.DC(l.To)
		if !s.nw.HasLink(from, to) {
			return fmt.Errorf("server: pricing reload adds link %d->%d", l.From, l.To)
		}
		if cap := s.nw.Capacity(from, to); l.Capacity != cap {
			return fmt.Errorf("server: pricing reload changes capacity of %d->%d from %g to %g", l.From, l.To, cap, l.Capacity)
		}
		if l.Price < 0 {
			return fmt.Errorf("server: negative price %g on %d->%d", l.Price, l.From, l.To)
		}
		seen[netmodel.Link{From: from, To: to}] = true
	}
	missing := ""
	s.nw.Links(func(l netmodel.Link, _, _ float64) {
		if !seen[l] && missing == "" {
			missing = l.String()
		}
	})
	if missing != "" {
		return fmt.Errorf("server: pricing reload drops link %s", missing)
	}
	for _, l := range inst.Links {
		if err := s.nw.SetLink(netmodel.DC(l.From), netmodel.DC(l.To), l.Price, l.Capacity); err != nil {
			return err
		}
	}
	s.reloads++
	s.logf("pricing reloaded (%d links)", len(inst.Links))
	return nil
}

// Close shuts the server down: the slot clock stops, the open batch is
// drained — committed through the normal slot pipeline, or discarded via
// Rollback under Config.DrainRollback — and, when SnapshotPath is set, the
// full state is snapshotted to disk for a later Restore.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	stop, done := s.clockStop, s.clockDone
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	var drainErr error
	if len(s.ctrl.Pending()) > 0 {
		if s.cfg.DrainRollback {
			s.logf("drain: rolling back %d pending files", len(s.ctrl.Pending()))
			drainErr = s.ctrl.Rollback()
		} else {
			s.logf("drain: committing %d pending files", len(s.ctrl.Pending()))
			drainErr = s.commitBatchLocked()
		}
	}
	if s.cfg.SnapshotPath != "" {
		if err := s.writeSnapshotLocked(s.cfg.SnapshotPath); err != nil {
			if drainErr == nil {
				drainErr = err
			}
			s.logf("snapshot: %v", err)
		} else {
			s.logf("snapshot written to %s", s.cfg.SnapshotPath)
		}
	}
	return drainErr
}

var errClosed = fmt.Errorf("server: closed")

// splitByFile groups a sorted action list per file ID.
func splitByFile(actions []schedule.Action) map[int][]schedule.Action {
	out := make(map[int][]schedule.Action)
	for _, a := range actions {
		out[a.FileID] = append(out[a.FileID], a)
	}
	return out
}

// sortedPlanIDs returns the record keys ascending (stable /metrics and
// snapshot output).
func (s *Server) sortedPlanIDsLocked() []int {
	ids := make([]int, 0, len(s.plans))
	for id := range s.plans {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
