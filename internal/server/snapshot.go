package server

import (
	"encoding/json"
	"fmt"
	"os"

	"github.com/interdc/postcard/internal/admission"
	"github.com/interdc/postcard/internal/netmodel"
)

// SnapshotVersion guards the on-disk format. Bump on incompatible change.
const SnapshotVersion = 1

// Snapshot is the full serializable server state: topology and pricing
// (as an Instance), the charging ledger, the admission controller with its
// open batch and warm solver basis, and the per-transfer plan records. A
// server restored from a snapshot resumes its remaining horizon with
// decisions and committed plans bit-identical to an uninterrupted run
// (floats round-trip exactly through JSON; only the solver's GraphReuses
// counter may differ, as the recycled time-expanded graph is rebuilt).
type Snapshot struct {
	Version       int                           `json:"version"`
	Slot          int                           `json:"slot"`
	NextFileID    int                           `json:"next_file_id"`
	SlotsAdvanced int                           `json:"slots_advanced"`
	Reloads       int                           `json:"pricing_reloads"`
	Instance      *netmodel.Instance            `json:"instance"`
	Ledger        *netmodel.LedgerSnapshot      `json:"ledger"`
	Controller    *admission.ControllerSnapshot `json:"controller"`
	Plans         []PlanRecord                  `json:"plans,omitempty"`
}

// Snapshot captures the server's full state.
func (s *Server) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Server) snapshotLocked() *Snapshot {
	snap := &Snapshot{
		Version:       SnapshotVersion,
		Slot:          s.slot,
		NextFileID:    s.nextID,
		SlotsAdvanced: s.slotsAdvanced,
		Reloads:       s.reloads,
		Instance:      netmodel.InstanceOf(s.nw, nil),
		Ledger:        s.ledger.Snapshot(),
		Controller:    s.ctrl.Snapshot(),
	}
	for _, id := range s.sortedPlanIDsLocked() {
		snap.Plans = append(snap.Plans, *s.plans[id])
	}
	return snap
}

// WriteSnapshot writes the state snapshot to path (POST /v1/snapshot).
func (s *Server) WriteSnapshot(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errClosed
	}
	return s.writeSnapshotLocked(path)
}

func (s *Server) writeSnapshotLocked(path string) error {
	raw, err := json.MarshalIndent(s.snapshotLocked(), "", " ")
	if err != nil {
		return fmt.Errorf("server: encoding snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("server: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("server: publishing snapshot: %w", err)
	}
	return nil
}

// Restore builds a server from a snapshot, overriding the snapshot's
// embedded topology/pricing with nothing — the network is rebuilt from the
// snapshot's Instance so the restored solver basis keys stay aligned with
// it. cfg's Network field is ignored; all other fields apply.
func Restore(cfg Config, snap *Snapshot) (*Server, error) {
	if snap == nil {
		return nil, fmt.Errorf("server: nil snapshot")
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("server: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	if snap.Instance == nil || snap.Ledger == nil || snap.Controller == nil {
		return nil, fmt.Errorf("server: snapshot missing instance, ledger, or controller")
	}
	nw, _, err := snap.Instance.Build()
	if err != nil {
		return nil, fmt.Errorf("server: rebuilding network: %w", err)
	}
	ledger, err := netmodel.LedgerFromSnapshot(nw, snap.Ledger)
	if err != nil {
		return nil, err
	}
	ctrl, err := admission.RestoreController(ledger, cfg.Admission, snap.Controller)
	if err != nil {
		return nil, err
	}
	cfg.Network = nw
	cfg.Charging = ledger.Scheme()
	s := &Server{
		cfg:           cfg,
		nw:            nw,
		ledger:        ledger,
		ctrl:          ctrl,
		slot:          snap.Slot,
		nextID:        snap.NextFileID,
		plans:         make(map[int]*PlanRecord, len(snap.Plans)),
		slotsAdvanced: snap.SlotsAdvanced,
		reloads:       snap.Reloads,
	}
	if s.nextID < 1 {
		s.nextID = 1
	}
	for i := range snap.Plans {
		rec := snap.Plans[i]
		s.plans[rec.FileID] = &rec
	}
	s.startClock()
	return s, nil
}

// RestoreFile reads a snapshot file and restores a server from it.
func RestoreFile(cfg Config, path string) (*Server, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: reading snapshot: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("server: decoding snapshot: %w", err)
	}
	return Restore(cfg, &snap)
}
