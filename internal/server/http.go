package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns the daemon's HTTP mux:
//
//	POST /v1/transfers      admit one transfer (synchronous fast-tier answer)
//	GET  /v1/plans/{id}     current plan record for one transfer
//	GET  /v1/status         aggregate state (slot, costs, counters)
//	POST /v1/slots/advance  close the current slot's batch and advance
//	POST /v1/snapshot       write a state snapshot to the configured path
//	GET  /metrics           Prometheus text exposition of every counter
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/transfers", s.handleTransfer)
	mux.HandleFunc("GET /v1/plans/{id}", s.handlePlan)
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("POST /v1/slots/advance", s.handleAdvance)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

func (s *Server) handleTransfer(w http.ResponseWriter, r *http.Request) {
	var req TransferRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	resp, err := s.Admit(req)
	if err != nil {
		code := http.StatusBadRequest
		if err == errClosed {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	code := http.StatusOK
	if !resp.Admitted {
		// The reject certificate travels in the body; 422 distinguishes
		// "understood but not admissible" from transport-level errors.
		code = http.StatusUnprocessableEntity
	}
	writeJSON(w, code, resp)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad plan id %q", r.PathValue("id")))
		return
	}
	rec, ok := s.PlanByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no plan for file %d", id))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Status())
}

func (s *Server) handleAdvance(w http.ResponseWriter, _ *http.Request) {
	slot, err := s.AdvanceSlot()
	if err != nil {
		code := http.StatusInternalServerError
		if err == errClosed {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Slot int `json:"slot"`
	}{slot})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	path := s.cfg.SnapshotPath
	if path == "" {
		writeError(w, http.StatusConflict, fmt.Errorf("no snapshot path configured"))
		return
	}
	if err := s.WriteSnapshot(path); err != nil {
		code := http.StatusInternalServerError
		if err == errClosed {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Path string `json:"path"`
	}{path})
}

// handleMetrics renders every admission and solver counter, plus the
// server gauges, in Prometheus text exposition format. The counter set
// mirrors core.SolveStats and admission.Stats field for field, so a
// scrape diffed against a postcard-fast simulation run compares exactly.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := s.statusLocked()
	s.mu.Unlock()

	var b strings.Builder
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}

	gauge("postcard_slot", "Current admission slot.", float64(st.Slot))
	gauge("postcard_cost_per_slot", "Committed ledger cost per charging interval.", st.CostPerSlot)
	gauge("postcard_total_cost", "Committed ledger cost over the charging period.", st.TotalCost)
	gauge("postcard_pending_files", "Files admitted into the open batch.", float64(st.PendingFiles))
	gauge("postcard_plans", "Plan records retained (provisional plus committed).", float64(st.Plans))
	counter("postcard_slots_advanced_total", "Slot batches committed.", float64(st.SlotsAdvanced))
	counter("postcard_pricing_reloads_total", "Pricing reloads applied.", float64(st.Reloads))

	a := st.Admission
	counter("postcard_admission_admits_total", "Fast-path admissions.", float64(a.Admits))
	counter("postcard_admission_rejects_total", "Fast-path rejections.", float64(a.Rejects))
	counter("postcard_admission_republishes_total", "Batches improved by the LP republisher.", float64(a.Republishes))
	counter("postcard_admission_fast_cost_total", "Provisional cost per slot committed by taken batches.", a.FastCost)
	counter("postcard_admission_republish_delta_total", "Cost per slot shaved off provisional plans by republishing.", a.RepublishDelta)

	v := st.Solver
	counter("postcard_solver_solves_total", "LP solves.", float64(v.Solves))
	counter("postcard_solver_warm_solves_total", "LP solves that accepted a mapped warm basis.", float64(v.WarmSolves))
	counter("postcard_solver_graph_reuses_total", "Time-expanded graphs recycled across slots.", float64(v.GraphReuses))
	counter("postcard_solver_iterations_total", "Simplex iterations.", float64(v.Iterations))
	counter("postcard_solver_phase1_iterations_total", "Phase-1 simplex iterations.", float64(v.Phase1Iter))
	counter("postcard_solver_presolve_cols_total", "Columns removed by presolve.", float64(v.PresolveCols))
	counter("postcard_solver_presolve_rows_total", "Rows removed by presolve.", float64(v.PresolveRows))
	counter("postcard_solver_sparse_solves_total", "Sparse FTRAN/BTRAN basis solves.", float64(v.SparseSolves))
	counter("postcard_solver_dense_solves_total", "Dense basis solves.", float64(v.DenseSolves))
	counter("postcard_solver_solve_nnz_total", "Nonzeros across basis solve results.", float64(v.SolveNNZ))
	counter("postcard_solver_solve_dim_total", "Dimensions across basis solve results.", float64(v.SolveDim))
	counter("postcard_solver_devex_resets_total", "Devex pricing reference resets.", float64(v.DevexResets))
	counter("postcard_solver_dual_recomputes_total", "Full dual recomputations.", float64(v.DualRecomputes))
	counter("postcard_solver_var_universe_total", "Variables in the pre-pruning universes.", float64(v.VarUniverse))
	counter("postcard_solver_pruned_vars_total", "Variables removed by deadline-reachability pruning.", float64(v.PrunedVars))
	counter("postcard_solver_pruned_rows_total", "Rows removed by deadline-reachability pruning.", float64(v.PrunedRows))
	counter("postcard_solver_colgen_rounds_total", "Delayed column generation rounds.", float64(v.ColGenRounds))
	counter("postcard_solver_colgen_columns_total", "Columns materialized by delayed generation.", float64(v.ColGenColumns))
	counter("postcard_solver_colgen_universe_total", "Delayed columns across generation-enabled solves.", float64(v.ColGenUniverse))
	counter("postcard_solver_colgen_rows_total", "Rows lazily appended alongside generated columns.", float64(v.ColGenRows))
	counter("postcard_solver_path_solves_total", "Solves served by the Dantzig-Wolfe path master.", float64(v.PathSolves))
	counter("postcard_solver_path_fallbacks_total", "Path-master solves that fell back to the arc model.", float64(v.PathFallbacks))
	counter("postcard_solver_path_recycled_total", "Path columns recycled from earlier slots' optimal bases.", float64(v.PathRecycled))
	counter("postcard_solver_devex_scans_total", "Devex pricing scans.", float64(v.DevexScans))
	counter("postcard_solver_parallel_scans_total", "Devex scans fanned across the parallel backend's workers.", float64(v.ParallelScans))
	counter("postcard_solver_spec_ftrans_total", "Speculative FTRANs issued for top-priced candidates.", float64(v.SpecFtrans))
	counter("postcard_solver_spec_ftran_hits_total", "Speculative FTRANs consumed by the next iteration.", float64(v.SpecFtranHits))
	gauge("postcard_solver_backend_workers", "LP compute backend worker pool size (1 = serial).", float64(v.BackendWorkers))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
