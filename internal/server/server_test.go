package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/sim"
	"github.com/interdc/postcard/internal/workload"
)

func testNetwork(t *testing.T, dcs int, capacity float64) *netmodel.Network {
	t.Helper()
	nw, err := netmodel.Complete(dcs, workload.UniformPrices(3), capacity)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode
}

// TestServerAdmitAdvancePlan walks the basic lifecycle over real HTTP:
// admit two transfers, check the provisional records, advance the slot,
// and check the records flipped to committed with the final plans.
func TestServerAdmitAdvancePlan(t *testing.T) {
	s := testServer(t, Config{Network: testNetwork(t, 4, 100), Charging: netmodel.MaxCharging(16)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var resp TransferResponse
	code := postJSON(t, ts, "/v1/transfers", TransferRequest{Src: 0, Dst: 2, SizeGB: 30, Deadline: 3}, &resp)
	if code != http.StatusOK || !resp.Admitted || resp.ID != 1 {
		t.Fatalf("admit 1: code %d, resp %+v", code, resp)
	}
	if resp.Plan == nil || resp.Plan.Status != StatusProvisional || len(resp.Plan.Actions) == 0 {
		t.Fatalf("admit 1: provisional plan missing: %+v", resp.Plan)
	}
	code = postJSON(t, ts, "/v1/transfers", TransferRequest{Src: 1, Dst: 3, SizeGB: 20, Deadline: 2}, &resp)
	if code != http.StatusOK || resp.ID != 2 {
		t.Fatalf("admit 2: code %d, resp %+v", code, resp)
	}

	var rec PlanRecord
	if code := getJSON(t, ts, "/v1/plans/1", &rec); code != http.StatusOK {
		t.Fatalf("plans/1: code %d", code)
	}
	if rec.Status != StatusProvisional {
		t.Fatalf("plans/1 status %s before advance", rec.Status)
	}

	var adv struct {
		Slot int `json:"slot"`
	}
	if code := postJSON(t, ts, "/v1/slots/advance", nil, &adv); code != http.StatusOK || adv.Slot != 1 {
		t.Fatalf("advance: code %d slot %d", code, adv.Slot)
	}
	for id := 1; id <= 2; id++ {
		if code := getJSON(t, ts, fmt.Sprintf("/v1/plans/%d", id), &rec); code != http.StatusOK {
			t.Fatalf("plans/%d: code %d", id, code)
		}
		if rec.Status != StatusCommitted || len(rec.Actions) == 0 {
			t.Fatalf("plans/%d after advance: %+v", id, rec)
		}
		// Every committed action belongs to this file.
		for _, a := range rec.Actions {
			if a.FileID != id {
				t.Fatalf("plans/%d contains foreign action %+v", id, a)
			}
		}
	}
	if code := getJSON(t, ts, "/v1/plans/99", nil); code != http.StatusNotFound {
		t.Fatalf("plans/99: code %d, want 404", code)
	}

	var st Status
	if code := getJSON(t, ts, "/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status: code %d", code)
	}
	if st.Slot != 1 || st.Admission.Admits != 2 || st.CostPerSlot <= 0 {
		t.Fatalf("status: %+v", st)
	}
}

// TestServerRejectCertificate checks the synchronous reject answer: an
// infeasible transfer gets 422 with the exhaustive-search certificate, no
// ID is leaked into the plan store, and the batch stays usable.
func TestServerRejectCertificate(t *testing.T) {
	s := testServer(t, Config{Network: testNetwork(t, 3, 10), Charging: netmodel.MaxCharging(16)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var resp TransferResponse
	code := postJSON(t, ts, "/v1/transfers", TransferRequest{Src: 0, Dst: 1, SizeGB: 1000, Deadline: 2}, &resp)
	if code != http.StatusUnprocessableEntity || resp.Admitted {
		t.Fatalf("oversized transfer: code %d, resp %+v", code, resp)
	}
	if !resp.Exhaustive {
		t.Errorf("rejection not exhaustive: %+v", resp)
	}
	if code := getJSON(t, ts, fmt.Sprintf("/v1/plans/%d", resp.ID), nil); code != http.StatusNotFound {
		t.Errorf("rejected transfer has a plan record (code %d)", code)
	}
	// A feasible transfer still admits afterwards.
	if code := postJSON(t, ts, "/v1/transfers", TransferRequest{Src: 0, Dst: 1, SizeGB: 5, Deadline: 2}, &resp); code != http.StatusOK || !resp.Admitted {
		t.Fatalf("follow-up admit: code %d, resp %+v", code, resp)
	}

	// Malformed bodies are 400, unknown fields included.
	r, err := http.Post(ts.URL+"/v1/transfers", "application/json", strings.NewReader(`{"sizes":1}`))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: code %d, want 400", r.StatusCode)
	}
}

// TestServerMetrics checks the Prometheus exposition: scrape after a
// couple of slots and verify the counter values against /v1/status.
func TestServerMetrics(t *testing.T) {
	s := testServer(t, Config{Network: testNetwork(t, 4, 100), Charging: netmodel.MaxCharging(16)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postJSON(t, ts, "/v1/transfers", TransferRequest{Src: 0, Dst: 2, SizeGB: 30, Deadline: 3}, nil)
	postJSON(t, ts, "/v1/slots/advance", nil, nil)
	postJSON(t, ts, "/v1/transfers", TransferRequest{Src: 2, Dst: 1, SizeGB: 10, Deadline: 2}, nil)
	postJSON(t, ts, "/v1/slots/advance", nil, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	metrics := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var v float64
		if _, err := fmt.Sscanf(line, "%s %v", &name, &v); err != nil {
			t.Fatalf("unparseable metrics line %q: %v", line, err)
		}
		metrics[name] = v
	}
	st := s.Status()
	want := map[string]float64{
		"postcard_slot":                      float64(st.Slot),
		"postcard_admission_admits_total":    float64(st.Admission.Admits),
		"postcard_admission_rejects_total":   float64(st.Admission.Rejects),
		"postcard_cost_per_slot":             st.CostPerSlot,
		"postcard_slots_advanced_total":      float64(st.SlotsAdvanced),
		"postcard_solver_solves_total":       float64(st.Solver.Solves),
		"postcard_admission_fast_cost_total": st.Admission.FastCost,
	}
	for name, v := range want {
		got, ok := metrics[name]
		if !ok {
			t.Errorf("metric %s missing", name)
			continue
		}
		if got != v {
			t.Errorf("metric %s = %v, want %v", name, got, v)
		}
	}
	if metrics["postcard_slot"] != 2 || metrics["postcard_admission_admits_total"] != 2 {
		t.Errorf("unexpected scrape: slot=%v admits=%v", metrics["postcard_slot"], metrics["postcard_admission_admits_total"])
	}
}

// TestServerSmoke is the end-to-end parity check: the identical workload
// trace is driven through the daemon over real HTTP (one POST per file,
// one advance per slot) and through the sequential sim.Fast scheduler on a
// separately built but identical network. Admission counters, solver
// counters, and the final committed cost must agree exactly — the HTTP
// pipeline adds nothing and loses nothing.
func TestServerSmoke(t *testing.T) {
	const dcs, slots, seed = 6, 8, 17
	const capacity = 200.0 // generous: no rejections, so file IDs stay aligned

	gen := func() *workload.Uniform {
		u, err := workload.NewUniform(workload.UniformConfig{
			NumDCs: dcs, MinFiles: 1, MaxFiles: 3,
			MinSizeGB: 5, MaxSizeGB: 40, MaxDeadline: 3, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	trace := workload.Record(gen(), slots)

	// Reference: sequential postcard-fast (admit batch, republish, take).
	refNW := testNetwork(t, dcs, capacity)
	refLedger, err := netmodel.NewLedger(refNW, netmodel.MaxCharging(slots))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.Run(refLedger, &sim.Fast{}, trace.Replay(), slots)
	if err != nil {
		t.Fatal(err)
	}
	if ref.DroppedFiles != 0 {
		t.Fatalf("reference run dropped %d files; raise capacity", ref.DroppedFiles)
	}

	// Daemon: same trace over HTTP. RepublishOnCommitOnly pins the solve
	// sequence to the reference's one-LP-per-slot schedule.
	s := testServer(t, Config{
		Network:               testNetwork(t, dcs, capacity),
		Charging:              netmodel.Charging{Q: 100, PeriodSlots: slots},
		RepublishOnCommitOnly: true,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	replay := trace.Replay()
	for slot := 0; slot < slots; slot++ {
		for _, f := range replay.FilesAt(slot) {
			var resp TransferResponse
			code := postJSON(t, ts, "/v1/transfers", TransferRequest{
				Src: int(f.Src), Dst: int(f.Dst), SizeGB: f.Size,
				Deadline: f.Deadline, Release: f.Release,
			}, &resp)
			if code != http.StatusOK || !resp.Admitted {
				t.Fatalf("slot %d file %d: code %d resp %+v", slot, f.ID, code, resp)
			}
			if resp.ID != f.ID {
				t.Fatalf("slot %d: server assigned ID %d, trace has %d", slot, resp.ID, f.ID)
			}
		}
		if code := postJSON(t, ts, "/v1/slots/advance", nil, nil); code != http.StatusOK {
			t.Fatalf("advance at slot %d: code %d", slot, code)
		}
	}

	st := s.Status()
	refSv := ref.Solver
	if st.Admission.Admits != refSv.Admits || st.Admission.Rejects != refSv.Rejects ||
		st.Admission.Republishes != refSv.Republishes {
		t.Errorf("admission counters: server %+v, reference admits=%d rejects=%d republishes=%d",
			st.Admission, refSv.Admits, refSv.Rejects, refSv.Republishes)
	}
	if st.Admission.FastCost != refSv.FastCost || st.Admission.RepublishDelta != refSv.RepublishDelta {
		t.Errorf("cost counters: server fast=%v delta=%v, reference fast=%v delta=%v",
			st.Admission.FastCost, st.Admission.RepublishDelta, refSv.FastCost, refSv.RepublishDelta)
	}
	if st.Solver.Solves != refSv.Solves || st.Solver.Iterations != refSv.Iterations {
		t.Errorf("solver counters: server solves=%d iter=%d, reference solves=%d iter=%d",
			st.Solver.Solves, st.Solver.Iterations, refSv.Solves, refSv.Iterations)
	}
	if st.CostPerSlot != ref.FinalCostPerSlot {
		t.Errorf("final cost per slot: server %v, reference %v", st.CostPerSlot, ref.FinalCostPerSlot)
	}
}

// TestServerSnapshotRestart kills a server mid-horizon and restores it
// from its JSON snapshot: the remaining slots must commit bit-identical
// plans and costs versus the uninterrupted twin.
func TestServerSnapshotRestart(t *testing.T) {
	const dcs, cut, slots = 5, 4, 9
	const capacity = 150.0
	gen, err := workload.NewUniform(workload.UniformConfig{
		NumDCs: dcs, MinFiles: 1, MaxFiles: 3,
		MinSizeGB: 5, MaxSizeGB: 30, MaxDeadline: 3, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Record(gen, slots)

	newServer := func() *Server {
		return testServer(t, Config{
			Network:  testNetwork(t, dcs, capacity),
			Charging: netmodel.Charging{Q: 100, PeriodSlots: slots},
		})
	}
	drive := func(s *Server, from, to int) {
		t.Helper()
		replay := trace.Replay()
		for slot := 0; slot < to; slot++ {
			files := replay.FilesAt(slot)
			if slot < from {
				continue // already driven before the snapshot
			}
			for _, f := range files {
				resp, err := s.Admit(TransferRequest{
					Src: int(f.Src), Dst: int(f.Dst), SizeGB: f.Size,
					Deadline: f.Deadline, Release: f.Release,
				})
				if err != nil {
					t.Fatalf("slot %d: %v", slot, err)
				}
				if !resp.Admitted {
					t.Fatalf("slot %d: file rejected; raise capacity", slot)
				}
			}
			if _, err := s.AdvanceSlot(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Twin A runs uninterrupted.
	a := newServer()
	drive(a, 0, slots)

	// Twin B runs to the cut, snapshots to disk, and is restored.
	b1 := newServer()
	drive(b1, 0, cut)
	path := filepath.Join(t.TempDir(), "state.json")
	if err := b1.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	b2, err := RestoreFile(Config{}, path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b2.Close() })
	drive(b2, cut, slots)

	sa, sb := a.Status(), b2.Status()
	if sa.CostPerSlot != sb.CostPerSlot || sa.TotalCost != sb.TotalCost {
		t.Errorf("cost diverged after restart: A %v/%v, B %v/%v", sa.CostPerSlot, sa.TotalCost, sb.CostPerSlot, sb.TotalCost)
	}
	if sa.Admission != sb.Admission {
		t.Errorf("admission counters diverged: A %+v, B %+v", sa.Admission, sb.Admission)
	}
	if sa.Slot != sb.Slot || sa.Plans != sb.Plans {
		t.Errorf("state diverged: A slot=%d plans=%d, B slot=%d plans=%d", sa.Slot, sa.Plans, sb.Slot, sb.Plans)
	}
	// Every committed per-file plan is identical.
	for id := 1; ; id++ {
		ra, oka := a.PlanByID(id)
		rb, okb := b2.PlanByID(id)
		if oka != okb {
			t.Fatalf("plan %d: present A=%v B=%v", id, oka, okb)
		}
		if !oka {
			break
		}
		if ra.Status != rb.Status || !reflect.DeepEqual(ra.Actions, rb.Actions) {
			t.Errorf("plan %d diverged after restart:\nA %+v\nB %+v", id, ra, rb)
		}
	}
	// The ledgers themselves are bit-identical.
	rawA, err := json.Marshal(a.Snapshot().Ledger)
	if err != nil {
		t.Fatal(err)
	}
	rawB, err := json.Marshal(b2.Snapshot().Ledger)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Error("ledger snapshots differ after restart")
	}
}

// TestServerDrain checks both shutdown policies with an open batch: the
// default commits it through the slot pipeline; DrainRollback discards it
// and releases every reservation.
func TestServerDrain(t *testing.T) {
	for _, rollback := range []bool{false, true} {
		name := "commit"
		if rollback {
			name = "rollback"
		}
		t.Run(name, func(t *testing.T) {
			s, err := New(Config{
				Network:       testNetwork(t, 4, 100),
				Charging:      netmodel.MaxCharging(16),
				DrainRollback: rollback,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Admit(TransferRequest{Src: 0, Dst: 2, SizeGB: 30, Deadline: 3}); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			res := s.ctrl.Reservations()
			if got := res.TotalReserved(); got != 0 {
				t.Errorf("reservations leaked through drain: %v", got)
			}
			cost := s.ledger.CostPerSlot()
			if rollback && cost != 0 {
				t.Errorf("rollback drain committed cost %v", cost)
			}
			if !rollback && cost == 0 {
				t.Error("commit drain left the ledger empty")
			}
			if err := s.Close(); err != nil {
				t.Errorf("second close: %v", err)
			}
			if _, err := s.Admit(TransferRequest{Src: 0, Dst: 1, SizeGB: 1, Deadline: 2}); err != errClosed {
				t.Errorf("admit after close: %v, want errClosed", err)
			}
		})
	}
}

// TestServerReloadPricing checks the SIGHUP backend: a price-only change
// applies and bumps the reload counter; topology or capacity changes are
// refused.
func TestServerReloadPricing(t *testing.T) {
	nw := testNetwork(t, 3, 50)
	s := testServer(t, Config{Network: nw, Charging: netmodel.MaxCharging(16)})

	inst := netmodel.InstanceOf(nw, nil)
	for i := range inst.Links {
		inst.Links[i].Price *= 2
	}
	if err := s.ReloadPricing(inst); err != nil {
		t.Fatalf("price-only reload: %v", err)
	}
	if s.Status().Reloads != 1 {
		t.Errorf("reloads = %d, want 1", s.Status().Reloads)
	}
	if got := nw.Price(0, 1); got != 2*workload.UniformPrices(3)(0, 1) {
		t.Errorf("price 0->1 = %v after doubling reload", got)
	}

	bad := netmodel.InstanceOf(nw, nil)
	bad.Links[0].Capacity += 1
	if err := s.ReloadPricing(bad); err == nil {
		t.Error("capacity change accepted")
	}
	bad2 := netmodel.InstanceOf(nw, nil)
	bad2.Links = bad2.Links[1:]
	if err := s.ReloadPricing(bad2); err == nil {
		t.Error("dropped link accepted")
	}
	bad3 := netmodel.InstanceOf(nw, nil)
	bad3.Datacenters++
	if err := s.ReloadPricing(bad3); err == nil {
		t.Error("datacenter count change accepted")
	}
}

// TestServerConcurrentTraffic hammers the daemon from many goroutines
// (admits, advances, scrapes, plan reads) to give the race detector
// something to chew on; invariants are re-checked at the end.
func TestServerConcurrentTraffic(t *testing.T) {
	s := testServer(t, Config{Network: testNetwork(t, 5, 500), Charging: netmodel.MaxCharging(64)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				switch k % 4 {
				case 0, 1:
					postJSON(t, ts, "/v1/transfers", TransferRequest{
						Src: w % 5, Dst: (w + 1 + k%3) % 5, SizeGB: 1, Deadline: 2,
					}, nil)
				case 2:
					getJSON(t, ts, "/v1/status", nil)
					resp, err := http.Get(ts.URL + "/metrics")
					if err == nil {
						resp.Body.Close()
					}
				case 3:
					getJSON(t, ts, fmt.Sprintf("/v1/plans/%d", 1+k), nil)
				}
			}
		}(w)
	}
	// One goroutine advances the clock concurrently.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 5; k++ {
			postJSON(t, ts, "/v1/slots/advance", nil, nil)
		}
	}()
	wg.Wait()
	if _, err := s.AdvanceSlot(); err != nil {
		t.Fatal(err)
	}
	st := s.Status()
	if st.Admission.Admits+st.Admission.Rejects != workers*10 {
		t.Errorf("decisions = %d, want %d", st.Admission.Admits+st.Admission.Rejects, workers*10)
	}
	if st.PendingFiles != 0 {
		t.Errorf("pending files after final advance: %d", st.PendingFiles)
	}
	verifyCommittedPlans(t, s)
}

// verifyCommittedPlans re-checks every committed record's actions against
// the independent schedule verifier's bookkeeping: amounts sum to the file
// size at the destination.
func verifyCommittedPlans(t *testing.T, s *Server) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.sortedPlanIDsLocked() {
		rec := s.plans[id]
		if rec.Status != StatusCommitted {
			continue
		}
		arrived := 0.0
		for _, a := range rec.Actions {
			if !a.IsHold() && a.To == rec.File.Dst {
				arrived += a.Amount
			}
		}
		if diff := arrived - rec.File.Size; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("file %d: %v GB arrived, size %v", id, arrived, rec.File.Size)
		}
	}
}
