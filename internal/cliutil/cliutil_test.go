package cliutil

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"github.com/interdc/postcard"
)

func TestParseSchedulers(t *testing.T) {
	scheds, err := ParseSchedulers(" postcard , flow-based,,postcard-path ")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(scheds))
	for i, s := range scheds {
		got[i] = s.Name()
	}
	if want := "postcard flow-based postcard-path"; strings.Join(got, " ") != want {
		t.Errorf("parsed %q, want %q", got, want)
	}

	if _, err := ParseSchedulers("postcard,help"); !errors.Is(err, ErrSchedulerHelp) {
		t.Errorf("help in list: err = %v, want ErrSchedulerHelp", err)
	}
	if _, err := ParseSchedulers(""); err == nil {
		t.Error("empty list should error")
	}
	if _, err := ParseSchedulers("no-such"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestSchedulerHelpListsRegistry(t *testing.T) {
	help := SchedulerHelp()
	for _, info := range postcard.Schedulers() {
		if !strings.Contains(help, info.Name) || !strings.Contains(help, info.Description) {
			t.Errorf("help output is missing %q", info.Name)
		}
	}
}

func TestInstanceAndTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()

	nw, files, err := postcard.Fig3Topology(0)
	if err != nil {
		t.Fatal(err)
	}
	instPath := filepath.Join(dir, "inst.json")
	if err := WriteInstanceFile(instPath, postcard.InstanceOf(nw, files)); err != nil {
		t.Fatal(err)
	}
	inst, err := ReadInstanceFile(instPath)
	if err != nil {
		t.Fatal(err)
	}
	nw2, files2, err := inst.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw2.NumDCs() != nw.NumDCs() || len(files2) != len(files) {
		t.Errorf("instance round trip lost data: %d DCs, %d files", nw2.NumDCs(), len(files2))
	}
	if _, err := ReadInstanceFile(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing instance file should error")
	}

	gen, err := postcard.NewUniformWorkload(postcard.UniformWorkloadConfig{
		NumDCs: 4, MinFiles: 1, MaxFiles: 2, MinSizeGB: 1, MaxSizeGB: 10,
		MaxDeadline: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := postcard.RecordTrace(gen, 3)
	tracePath := filepath.Join(dir, "trace.json")
	if err := WriteTraceFile(tracePath, trace); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 3; slot++ {
		a, b := trace.Replay().FilesAt(slot), got.Replay().FilesAt(slot)
		if len(a) != len(b) {
			t.Fatalf("slot %d: %d files round-tripped to %d", slot, len(a), len(b))
		}
	}
	if _, err := ReadTraceFile(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing trace file should error")
	}
}

func TestValidateWorkers(t *testing.T) {
	if err := ValidateWorkers(1); err != nil {
		t.Errorf("workers=1: %v", err)
	}
	if err := ValidateWorkers(0); err == nil {
		t.Error("workers=0 should error")
	}
}
