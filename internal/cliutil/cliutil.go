// Package cliutil holds the flag plumbing shared by the postcard commands:
// scheduler-list parsing against the facade's registry (with built-in
// "help" output), CPU/heap profiling flags, worker-count validation, and
// instance/trace file IO. Only cmd/* imports it; it may itself import the
// root postcard package (the facade never depends on commands).
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/interdc/postcard"
	"github.com/interdc/postcard/internal/profiling"
)

// ErrSchedulerHelp is returned by ParseSchedulers when the list is the
// literal "help": the command should print SchedulerHelp() and exit zero.
var ErrSchedulerHelp = errors.New("cliutil: scheduler help requested")

// ParseSchedulers resolves a comma-separated scheduler list against the
// registry, returning fresh instances in listed order. The literal "help"
// (alone or in the list) returns ErrSchedulerHelp.
func ParseSchedulers(list string) ([]postcard.Scheduler, error) {
	var out []postcard.Scheduler
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name == "help" {
			return nil, ErrSchedulerHelp
		}
		s, err := postcard.SchedulerByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no schedulers given")
	}
	return out, nil
}

// SchedulerHelp renders the scheduler registry as an aligned two-column
// listing for -scheduler(s) help output.
func SchedulerHelp() string {
	infos := postcard.Schedulers()
	width := 0
	for _, info := range infos {
		if len(info.Name) > width {
			width = len(info.Name)
		}
	}
	var b strings.Builder
	b.WriteString("available schedulers:\n")
	for _, info := range infos {
		fmt.Fprintf(&b, "  %-*s  %s\n", width, info.Name, info.Description)
	}
	return b.String()
}

// SchedulerFlagUsage is the shared usage string for -scheduler(s) flags.
const SchedulerFlagUsage = `comma-separated scheduler list ("help" lists all)`

// Profile carries the -cpuprofile/-memprofile flag values registered by
// AddProfileFlags.
type Profile struct {
	cpu *string
	mem *string
}

// AddProfileFlags registers the standard profiling flags on fs (use
// flag.CommandLine for the process flags).
func AddProfileFlags(fs *flag.FlagSet) *Profile {
	return &Profile{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file on exit"),
	}
}

// Start begins profiling per the parsed flags and returns the stop
// function; both are no-ops when neither flag was set. Call stop via defer
// and propagate its error.
func (p *Profile) Start() (stop func() error, err error) {
	return profiling.Start(*p.cpu, *p.mem)
}

// LPBackend carries the -lp-backend/-lp-workers flag values registered by
// AddLPBackendFlags.
type LPBackend struct {
	backend *string
	workers *int
}

// AddLPBackendFlags registers the shared LP compute-backend flags on fs:
// -lp-backend selects the simplex kernel implementation ("serial" or
// "parallel"), -lp-workers bounds the parallel backend's goroutine pool.
// Both backends follow the same pivot trajectory, so every selection
// produces bit-identical plans and costs; the flags change wall-clock time
// only.
func AddLPBackendFlags(fs *flag.FlagSet) *LPBackend {
	return &LPBackend{
		backend: fs.String("lp-backend", "",
			`LP compute backend: "serial" or "parallel" (empty = serial; results are identical)`),
		workers: fs.Int("lp-workers", 0,
			"parallel LP backend pool size (0 = GOMAXPROCS; results are identical for every count)"),
	}
}

// Name returns the selected backend name; empty keeps the solver default.
func (l *LPBackend) Name() string { return *l.backend }

// Workers returns the selected pool bound; 0 means GOMAXPROCS.
func (l *LPBackend) Workers() int { return *l.workers }

// Chosen reports whether either flag was set away from its default.
func (l *LPBackend) Chosen() bool { return *l.backend != "" || *l.workers != 0 }

// Apply threads the backend selection into every scheduler that solves an
// LP: the Postcard adapters (optimizer config), the admission fast tier
// (its background re-optimizer's config), and the flow baselines (their LP
// options). Schedulers without an LP are left untouched, and nothing
// happens when neither flag was set, so default runs stay byte-identical.
func (l *LPBackend) Apply(scheds ...postcard.Scheduler) {
	if !l.Chosen() {
		return
	}
	for _, s := range scheds {
		switch s := s.(type) {
		case *postcard.PostcardScheduler:
			if s.Config == nil {
				s.Config = &postcard.Config{}
			}
			s.Config.LPBackend = l.Name()
			s.Config.LPWorkers = l.Workers()
		case *postcard.FastScheduler:
			if s.Config == nil {
				s.Config = &postcard.AdmissionConfig{}
			}
			if s.Config.Solver == nil {
				s.Config.Solver = &postcard.Config{}
			}
			s.Config.Solver.LPBackend = l.Name()
			s.Config.Solver.LPWorkers = l.Workers()
		case *postcard.FlowScheduler:
			if s.Config == nil {
				s.Config = &postcard.FlowConfig{}
			}
			if s.Config.LP == nil {
				s.Config.LP = &postcard.LPOptions{}
			}
			s.Config.LP.Backend = l.Name()
			s.Config.LP.BackendWorkers = l.Workers()
		}
	}
}

// ValidateWorkers rejects non-positive -workers values.
func ValidateWorkers(n int) error {
	if n < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", n)
	}
	return nil
}

// ReadInstanceFile loads an instance JSON file; "-" reads stdin.
func ReadInstanceFile(path string) (*postcard.Instance, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, fmt.Errorf("reading instance: %w", err)
		}
		defer f.Close()
		r = f
	}
	return postcard.ReadInstance(r)
}

// WriteInstanceFile writes an instance as JSON to path.
func WriteInstanceFile(path string, inst *postcard.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := inst.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadTraceFile loads a workload trace recorded with WriteTraceFile.
func ReadTraceFile(path string) (*postcard.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return postcard.ReadTrace(f)
}

// WriteTraceFile records a workload trace as JSON to path.
func WriteTraceFile(path string, trace *postcard.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
