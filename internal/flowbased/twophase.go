package flowbased

import (
	"fmt"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
)

// SolveTwoPhase implements the decomposition sketched in Sec. II-B of the
// paper. Phase 1 solves a maximum-concurrent-flow problem: find the largest
// common fraction λ of every file's desired rate that can be routed using
// only capacity that is already paid for (traffic below the current
// charged volume of each link adds no cost). Phase 2 routes the remaining
// (1-λ) fraction of every rate as a minimum-cost multicommodity flow
// against the true charging objective.
//
// The single-LP Solve dominates this decomposition by construction; tests
// assert cost(Solve) <= cost(SolveTwoPhase). The decomposition is kept as
// the paper-literal algorithm and for ablation studies.
func SolveTwoPhase(ledger *netmodel.Ledger, files []netmodel.File, t int, cfg *Config) (*Result, error) {
	conf := cfg.withDefaults()
	nw := ledger.Network()
	if err := validateFiles(nw, files, t); err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return emptyResult(ledger), nil
	}

	lambda, f1, err := solveConcurrentPhase(ledger, files, t, conf)
	if err != nil {
		return nil, err
	}
	f2, status, sol2, _, xvars, err := solveResidualPhase(ledger, files, t, conf, lambda, f1)
	if err != nil {
		return nil, err
	}
	if status != lp.Optimal {
		return &Result{Status: status}, nil
	}

	res := &Result{
		Schedule: &schedule.Schedule{},
		Rates:    make(map[int][]LinkRate, len(files)),
		Status:   lp.Optimal,
	}
	const tol = 1e-7
	for _, f := range files {
		var rates []LinkRate
		for _, l := range linkList(nw) {
			r := f1[f.ID][l] + f2[f.ID][l]
			if r <= tol {
				continue
			}
			rates = append(rates, LinkRate{From: l.From, To: l.To, Rate: r})
			for n := f.Release; n < f.Release+f.Deadline; n++ {
				res.Schedule.Add(schedule.Action{FileID: f.ID, From: l.From, To: l.To, Slot: n, Amount: r})
			}
		}
		res.Rates[f.ID] = rates
	}
	cost := 0.0
	nw.Links(func(l netmodel.Link, price, _ float64) {
		cost += price * sol2.Value(xvars[l])
	})
	res.CostPerSlot = cost
	if err := ValidateRates(ledger, files, res.Rates); err != nil {
		return nil, fmt.Errorf("flowbased: two-phase produced invalid rates: %w", err)
	}
	return res, nil
}

func linkList(nw *netmodel.Network) []netmodel.Link {
	var links []netmodel.Link
	nw.Links(func(l netmodel.Link, _, _ float64) { links = append(links, l) })
	return links
}

// solveConcurrentPhase maximizes the common routable fraction λ within the
// paid headroom of every link and slot.
func solveConcurrentPhase(ledger *netmodel.Ledger, files []netmodel.File, t int, conf Config) (float64, map[int]map[netmodel.Link]float64, error) {
	nw := ledger.Network()
	m := lp.NewModel()
	m.SetMaximize()
	links := linkList(nw)
	lam := m.AddVariable(0, 1, 1, "lambda")
	fvars := make(map[int]map[netmodel.Link]lp.VarID, len(files))
	for _, f := range files {
		vars := make(map[netmodel.Link]lp.VarID, len(links))
		for _, l := range links {
			vars[l] = m.AddVariable(0, f.DesiredRate()*float64(nw.NumDCs()),
				-conf.Epsilon, fmt.Sprintf("p1f%d_%s", f.ID, l))
		}
		fvars[f.ID] = vars
	}
	// Conservation with supply λ·r_k.
	n := nw.NumDCs()
	for _, f := range files {
		for node := 0; node < n; node++ {
			d := netmodel.DC(node)
			var idx []lp.VarID
			var val []float64
			for to := 0; to < n; to++ {
				if nw.HasLink(d, netmodel.DC(to)) {
					idx = append(idx, fvars[f.ID][netmodel.Link{From: d, To: netmodel.DC(to)}])
					val = append(val, 1)
				}
			}
			for from := 0; from < n; from++ {
				if nw.HasLink(netmodel.DC(from), d) {
					idx = append(idx, fvars[f.ID][netmodel.Link{From: netmodel.DC(from), To: d}])
					val = append(val, -1)
				}
			}
			switch d {
			case f.Src:
				idx = append(idx, lam)
				val = append(val, -f.DesiredRate())
			case f.Dst:
				idx = append(idx, lam)
				val = append(val, f.DesiredRate())
			}
			if len(idx) == 0 {
				continue
			}
			if _, err := m.AddConstraint(lp.EQ, 0, idx, val); err != nil {
				return 0, nil, err
			}
		}
	}
	// Capacity: paid headroom per (link, slot).
	end := horizonOf(files, t)
	for _, l := range links {
		for s := t; s < end; s++ {
			var idx []lp.VarID
			var val []float64
			for _, f := range files {
				if active(f, s) {
					idx = append(idx, fvars[f.ID][l])
					val = append(val, 1)
				}
			}
			if len(idx) == 0 {
				continue
			}
			head := ledger.PaidHeadroom(l.From, l.To, s)
			if _, err := m.AddConstraint(lp.LE, head, idx, val); err != nil {
				return 0, nil, err
			}
		}
	}
	sol, err := m.Solve(conf.LP)
	if err != nil {
		return 0, nil, fmt.Errorf("flowbased: phase-1 LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		// λ = 0 with zero flows is always feasible, so anything else is a
		// solver-level problem worth surfacing.
		return 0, nil, fmt.Errorf("flowbased: phase-1 LP status %v", sol.Status)
	}
	lambda := sol.Value(lam)
	if lambda < 0 {
		lambda = 0
	}
	if lambda > 1 {
		lambda = 1
	}
	f1 := make(map[int]map[netmodel.Link]float64, len(files))
	for _, f := range files {
		f1[f.ID] = make(map[netmodel.Link]float64, len(links))
		for _, l := range links {
			if v := sol.Value(fvars[f.ID][l]); v > 1e-9 {
				f1[f.ID][l] = v
			}
		}
	}
	return lambda, f1, nil
}

// solveResidualPhase routes the remaining (1-λ) fraction of every file
// minimizing the charged cost, with phase-1 flows fixed.
func solveResidualPhase(ledger *netmodel.Ledger, files []netmodel.File, t int, conf Config,
	lambda float64, f1 map[int]map[netmodel.Link]float64) (
	map[int]map[netmodel.Link]float64, lp.Status, *lp.Solution, []netmodel.Link, map[netmodel.Link]lp.VarID, error) {

	nw := ledger.Network()
	m := lp.NewModel()
	links := linkList(nw)
	fvars := make(map[int]map[netmodel.Link]lp.VarID, len(files))
	for _, f := range files {
		vars := make(map[netmodel.Link]lp.VarID, len(links))
		for _, l := range links {
			vars[l] = m.AddVariable(0, f.DesiredRate()*float64(nw.NumDCs()),
				conf.Epsilon, fmt.Sprintf("p2f%d_%s", f.ID, l))
		}
		fvars[f.ID] = vars
	}
	xvars := addChargeVars(m, ledger, links)
	// Conservation with the residual supply.
	n := nw.NumDCs()
	for _, f := range files {
		rem := (1 - lambda) * f.DesiredRate()
		for node := 0; node < n; node++ {
			d := netmodel.DC(node)
			var idx []lp.VarID
			var val []float64
			for to := 0; to < n; to++ {
				if nw.HasLink(d, netmodel.DC(to)) {
					idx = append(idx, fvars[f.ID][netmodel.Link{From: d, To: netmodel.DC(to)}])
					val = append(val, 1)
				}
			}
			for from := 0; from < n; from++ {
				if nw.HasLink(netmodel.DC(from), d) {
					idx = append(idx, fvars[f.ID][netmodel.Link{From: netmodel.DC(from), To: d}])
					val = append(val, -1)
				}
			}
			rhs := 0.0
			switch d {
			case f.Src:
				rhs = rem
			case f.Dst:
				rhs = -rem
			}
			if len(idx) == 0 {
				if rhs != 0 {
					return nil, 0, nil, nil, nil, fmt.Errorf("flowbased: file %d endpoint D%d has no links", f.ID, node)
				}
				continue
			}
			if _, err := m.AddConstraint(lp.EQ, rhs, idx, val); err != nil {
				return nil, 0, nil, nil, nil, err
			}
		}
	}
	// Capacity and charge rows with the phase-1 usage folded in.
	end := horizonOf(files, t)
	for _, l := range links {
		for s := t; s < end; s++ {
			var idx []lp.VarID
			var val []float64
			used1 := 0.0
			for _, f := range files {
				if active(f, s) {
					idx = append(idx, fvars[f.ID][l])
					val = append(val, 1)
					used1 += f1[f.ID][l]
				}
			}
			if len(idx) == 0 {
				continue
			}
			capacity := ledger.Residual(l.From, l.To, s) - used1
			if capacity < 0 {
				capacity = 0
			}
			if _, err := m.AddConstraint(lp.LE, capacity, idx, val); err != nil {
				return nil, 0, nil, nil, nil, err
			}
			committed := ledger.VolumeAt(l.From, l.To, s) + used1
			cidx := append(append([]lp.VarID(nil), idx...), xvars[l])
			cval := append(append([]float64(nil), val...), -1)
			if _, err := m.AddConstraint(lp.LE, -committed, cidx, cval); err != nil {
				return nil, 0, nil, nil, nil, err
			}
		}
	}
	sol, err := m.Solve(conf.LP)
	if err != nil {
		return nil, 0, nil, nil, nil, fmt.Errorf("flowbased: phase-2 LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, sol.Status, nil, nil, nil, nil
	}
	f2 := make(map[int]map[netmodel.Link]float64, len(files))
	for _, f := range files {
		f2[f.ID] = make(map[netmodel.Link]float64, len(links))
		for _, l := range links {
			if v := sol.Value(fvars[f.ID][l]); v > 1e-9 {
				f2[f.ID][l] = v
			}
		}
	}
	return f2, lp.Optimal, sol, links, xvars, nil
}
