package flowbased

import (
	"math"
	"testing"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
)

// TestTwoPhasePartialHeadroom: when the paid headroom covers only part of
// the desired rate, phase 1 routes that part for free and phase 2 pays for
// the remainder — the total cost must sit strictly between the all-free
// and all-paid extremes.
func TestTwoPhasePartialHeadroom(t *testing.T) {
	nw, err := netmodel.Complete(2, func(_, _ netmodel.DC) float64 { return 4 }, 50)
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(100))
	if err != nil {
		t.Fatal(err)
	}
	// Paid peak of 6 GB on the only useful link (slot 0); the new file
	// needs rate 10 over slots 1-2.
	if err := ledger.Add(0, 1, 0, 6); err != nil {
		t.Fatal(err)
	}
	base := ledger.CostPerSlot() // 4 * 6 = 24
	files := []netmodel.File{{ID: 1, Src: 0, Dst: 1, Size: 20, Deadline: 2, Release: 1}}
	res, err := SolveTwoPhase(ledger, files, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Rate 10 with 6 free: marginal cost = 4 * (10 - 6) = 16.
	wantMarginal := 16.0
	if marginal := res.CostPerSlot - base; math.Abs(marginal-wantMarginal) > 1e-5 {
		t.Errorf("marginal cost = %v, want %v", marginal, wantMarginal)
	}
	// The realized schedule must carry the full rate.
	for _, s := range []int{1, 2} {
		if got := res.Schedule.TransferVolume(0, 1, s); math.Abs(got-10) > 1e-6 {
			t.Errorf("slot %d volume = %v, want 10", s, got)
		}
	}
}

// TestTwoPhaseFullHeadroomIsFree: λ = 1 when everything fits under the
// paid peaks.
func TestTwoPhaseFullHeadroomIsFree(t *testing.T) {
	nw, err := netmodel.Complete(2, func(_, _ netmodel.DC) float64 { return 7 }, 50)
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := ledger.Add(0, 1, 0, 30); err != nil {
		t.Fatal(err)
	}
	base := ledger.CostPerSlot()
	files := []netmodel.File{{ID: 1, Src: 0, Dst: 1, Size: 40, Deadline: 2, Release: 1}}
	res, err := SolveTwoPhase(ledger, files, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CostPerSlot-base) > 1e-5 {
		t.Errorf("cost = %v, want unchanged %v (rate 20 under paid 30)", res.CostPerSlot, base)
	}
}
