package flowbased

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
)

func newLedger(t *testing.T, nw *netmodel.Network) *netmodel.Ledger {
	t.Helper()
	l, err := netmodel.NewLedger(nw, netmodel.MaxCharging(100))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestFig3FlowBased reproduces the flow-based outcome of the paper's Fig. 3
// worked example: File 2 takes D1->D4, File 1 is forced onto D2->D3->D4,
// and the cost per interval is 50.
func TestFig3FlowBased(t *testing.T) {
	nw, files, err := netmodel.Fig3Topology(3)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	res, err := Solve(ledger, files, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.CostPerSlot-50) > 1e-5 {
		t.Errorf("flow-based cost = %v, want 50 (paper Sec. V)", res.CostPerSlot)
	}
	// File 2 must ride D1->D4 at rate 5.
	var rate14 float64
	for _, lr := range res.Rates[2] {
		if lr.From == 0 && lr.To == 3 {
			rate14 = lr.Rate
		}
	}
	if math.Abs(rate14-5) > 1e-6 {
		t.Errorf("file 2 rate on D1->D4 = %v, want 5", rate14)
	}
	// File 1 cannot touch D1->D4 (saturated during its window).
	for _, lr := range res.Rates[1] {
		if lr.From == 0 && lr.To == 3 && lr.Rate > 1e-6 {
			t.Errorf("file 1 uses saturated link D1->D4 at rate %v", lr.Rate)
		}
	}
}

func TestFig3GreedyMatchesNarrative(t *testing.T) {
	nw, files, err := netmodel.Fig3Topology(3)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	res, err := SolveGreedy(ledger, files, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CostPerSlot-50) > 1e-5 {
		t.Errorf("greedy cost = %v, want 50", res.CostPerSlot)
	}
	// File 1 must take D2->D3->D4 (the cheapest available path).
	want := map[netmodel.Link]bool{
		{From: 1, To: 2}: true,
		{From: 2, To: 3}: true,
	}
	for _, lr := range res.Rates[1] {
		if !want[netmodel.Link{From: lr.From, To: lr.To}] {
			t.Errorf("file 1 uses unexpected link %d->%d", lr.From, lr.To)
		}
	}
}

func TestFig3TwoPhaseMatchesSingleLP(t *testing.T) {
	nw, files, err := netmodel.Fig3Topology(3)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	// Empty ledger: no paid headroom, so phase 1 is trivial and phase 2
	// must equal the single LP.
	tp, err := SolveTwoPhase(ledger, files, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Status != lp.Optimal {
		t.Fatalf("status = %v", tp.Status)
	}
	if math.Abs(tp.CostPerSlot-50) > 1e-5 {
		t.Errorf("two-phase cost = %v, want 50", tp.CostPerSlot)
	}
}

func TestDirectFig3(t *testing.T) {
	nw, files, err := netmodel.Fig3Topology(3)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	res, err := Direct(ledger, files, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.CostPerSlot-52) > 1e-6 {
		t.Errorf("direct cost = %v, want 52 (paper Sec. V)", res.CostPerSlot)
	}
}

func TestDirectReportsMissingLink(t *testing.T) {
	nw, err := netmodel.NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(0, 1, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(1, 2, 1, 10); err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	files := []netmodel.File{{ID: 1, Src: 0, Dst: 2, Size: 5, Deadline: 2, Release: 0}}
	_, err = Direct(ledger, files, 0)
	var ue *UnroutedError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UnroutedError", err)
	}
}

func TestFlowInfeasibleWhenRatesExceedCapacity(t *testing.T) {
	nw, err := netmodel.NewNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(0, 1, 1, 4); err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	files := []netmodel.File{{ID: 1, Src: 0, Dst: 1, Size: 10, Deadline: 2, Release: 0}}
	res, err := Solve(ledger, files, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Infeasible {
		t.Errorf("status = %v, want infeasible (rate 5 on capacity 4)", res.Status)
	}
}

func TestTwoPhaseUsesPaidHeadroom(t *testing.T) {
	// A link with history: D0->D1 already charged at 10 GB, idle in the
	// upcoming slots. A new file of rate <= 10 must ride it for free.
	nw, err := netmodel.Complete(3, func(i, j netmodel.DC) float64 { return 5 }, 20)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	if err := ledger.Add(0, 1, 0, 10); err != nil {
		t.Fatal(err)
	}
	baseCost := ledger.CostPerSlot() // 5 * 10
	files := []netmodel.File{{ID: 1, Src: 0, Dst: 1, Size: 16, Deadline: 2, Release: 1}}
	res, err := SolveTwoPhase(ledger, files, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// Rate 8 <= 10 paid headroom: the marginal cost must be zero.
	if math.Abs(res.CostPerSlot-baseCost) > 1e-5 {
		t.Errorf("cost = %v, want %v (free ride on paid link)", res.CostPerSlot, baseCost)
	}
}

func TestSingleLPDominatesTwoPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(3)
		nw, err := netmodel.Complete(n, func(i, j netmodel.DC) float64 { return 1 + 9*rng.Float64() }, 25)
		if err != nil {
			t.Fatal(err)
		}
		ledger := newLedger(t, nw)
		// Random history.
		for k := 0; k < 5; k++ {
			i := netmodel.DC(rng.Intn(n))
			j := netmodel.DC((int(i) + 1 + rng.Intn(n-1)) % n)
			if err := ledger.Add(i, j, rng.Intn(2), 10*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		var files []netmodel.File
		for k := 0; k < 1+rng.Intn(4); k++ {
			src := netmodel.DC(rng.Intn(n))
			dst := netmodel.DC((int(src) + 1 + rng.Intn(n-1)) % n)
			files = append(files, netmodel.File{
				ID: k + 1, Src: src, Dst: dst,
				Size: 1 + 20*rng.Float64(), Deadline: 1 + rng.Intn(3), Release: 2,
			})
		}
		single, err := Solve(ledger, files, 2, nil)
		if err != nil {
			t.Fatalf("trial %d: single: %v", trial, err)
		}
		two, err := SolveTwoPhase(ledger, files, 2, nil)
		if err != nil {
			t.Fatalf("trial %d: two-phase: %v", trial, err)
		}
		if single.Status != lp.Optimal || two.Status != lp.Optimal {
			continue
		}
		if single.CostPerSlot > two.CostPerSlot+1e-5*(1+two.CostPerSlot) {
			t.Fatalf("trial %d: single LP %v worse than two-phase %v",
				trial, single.CostPerSlot, two.CostPerSlot)
		}
	}
}

func TestGreedyNeverBeatsLP(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(3)
		nw, err := netmodel.Complete(n, func(i, j netmodel.DC) float64 { return 1 + 9*rng.Float64() }, 40)
		if err != nil {
			t.Fatal(err)
		}
		ledger := newLedger(t, nw)
		var files []netmodel.File
		for k := 0; k < 1+rng.Intn(4); k++ {
			src := netmodel.DC(rng.Intn(n))
			dst := netmodel.DC((int(src) + 1 + rng.Intn(n-1)) % n)
			files = append(files, netmodel.File{
				ID: k + 1, Src: src, Dst: dst,
				Size: 1 + 15*rng.Float64(), Deadline: 1 + rng.Intn(3), Release: 0,
			})
		}
		lpRes, err := Solve(ledger, files, 0, nil)
		if err != nil || lpRes.Status != lp.Optimal {
			continue
		}
		gr, err := SolveGreedy(ledger, files, 0)
		if err != nil {
			continue // greedy may fail where the LP splits paths
		}
		if lpRes.CostPerSlot > gr.CostPerSlot+1e-5*(1+gr.CostPerSlot) {
			t.Fatalf("trial %d: LP %v worse than greedy %v", trial, lpRes.CostPerSlot, gr.CostPerSlot)
		}
	}
}

func TestScheduleVolumesMatchRates(t *testing.T) {
	nw, files, err := netmodel.Fig3Topology(0)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	res, err := Solve(ledger, files, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		for _, lr := range res.Rates[f.ID] {
			for s := f.Release; s < f.Release+f.Deadline; s++ {
				// Aggregate over files must at least carry this file's rate.
				got := res.Schedule.TransferVolume(lr.From, lr.To, s)
				if got+1e-9 < lr.Rate {
					t.Errorf("slot %d link %d->%d: volume %v < rate %v", s, lr.From, lr.To, got, lr.Rate)
				}
			}
		}
	}
	// Total delivered volume equals total file volume.
	want := files[0].Size + files[1].Size
	delivered := 0.0
	for id, rates := range res.Rates {
		var f netmodel.File
		for _, ff := range files {
			if ff.ID == id {
				f = ff
			}
		}
		for _, lr := range rates {
			if lr.To == f.Dst {
				delivered += lr.Rate * float64(f.Deadline)
			}
		}
	}
	if math.Abs(delivered-want) > 1e-5 {
		t.Errorf("delivered %v, want %v", delivered, want)
	}
}

func TestEmptyFilesAllSchedulers(t *testing.T) {
	nw, _, err := netmodel.Fig1Topology()
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	for name, fn := range map[string]func() (*Result, error){
		"solve":    func() (*Result, error) { return Solve(ledger, nil, 0, nil) },
		"twophase": func() (*Result, error) { return SolveTwoPhase(ledger, nil, 0, nil) },
		"greedy":   func() (*Result, error) { return SolveGreedy(ledger, nil, 0) },
		"direct":   func() (*Result, error) { return Direct(ledger, nil, 0) },
	} {
		res, err := fn()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Status != lp.Optimal || res.Schedule.Len() != 0 {
			t.Errorf("%s: unexpected result %+v", name, res)
		}
	}
}
