// Package flowbased implements the paper's comparison baseline (Sec. II-B):
// routing without store-and-forward. Every file k becomes a flow with the
// constant desired rate r_k = F_k / T_k that lasts exactly T_k slots; the
// flow may split across multiple multi-hop paths but may never pause at an
// intermediate datacenter.
//
// Four schedulers are provided:
//
//   - Solve: the optimal flow model as a single LP minimizing the charged
//     cost directly (it subsumes the paper's decomposition and is used for
//     the evaluation figures);
//   - SolveTwoPhase: the paper's literal two-step decomposition — a
//     maximum-concurrent-flow LP that first fills capacity that is already
//     paid for, then a minimum-cost multicommodity-flow LP for the rest;
//   - SolveGreedy: a combinatorial cheapest-available-path heuristic
//     matching the narrative of the paper's Fig. 3 walk-through;
//   - Direct: no routing and no scheduling at all (Fig. 1a).
package flowbased

import (
	"fmt"
	"math"
	"sort"

	"github.com/interdc/postcard/internal/graph"
	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
)

// LinkRate is a static per-link rate assignment for one file, in GB/slot.
type LinkRate struct {
	From, To netmodel.DC
	Rate     float64
}

// Result is the outcome of a flow-based scheduling decision.
type Result struct {
	// Schedule is the realized per-slot traffic: each link of a file's
	// flow carries Rate GB during every slot of the file's active window.
	Schedule *schedule.Schedule
	// Rates lists the static flow assignment per file ID.
	Rates map[int][]LinkRate
	// CostPerSlot is the charged cost per interval after committing.
	CostPerSlot float64
	// Status is the LP status (Optimal, or Infeasible when the rates do
	// not fit the residual capacities).
	Status lp.Status
}

// Config tunes the LP-based schedulers. The zero value selects defaults.
type Config struct {
	// Epsilon is the tie-breaking traffic-minimization weight, default 1e-6.
	Epsilon float64
	// LP overrides solver options.
	LP *lp.Options
}

func (c *Config) withDefaults() Config {
	out := Config{}
	if c != nil {
		out = *c
	}
	if out.Epsilon <= 0 {
		out.Epsilon = 1e-6
	}
	return out
}

// active reports whether file f occupies the network during slot n.
func active(f netmodel.File, n int) bool {
	return n >= f.Release && n < f.Release+f.Deadline
}

// horizonOf reports the first slot after every file has finished.
func horizonOf(files []netmodel.File, t int) int {
	end := t
	for _, f := range files {
		if e := f.Release + f.Deadline; e > end {
			end = e
		}
	}
	return end
}

func validateFiles(nw *netmodel.Network, files []netmodel.File, t int) error {
	for _, f := range files {
		if err := f.Validate(nw); err != nil {
			return err
		}
		if f.Release < t {
			return fmt.Errorf("flowbased: file %d released at %d before solve slot %d", f.ID, f.Release, t)
		}
	}
	return nil
}

// Solve computes the optimal flow-based assignment as a single LP: minimize
// sum price*X subject to static per-file conservation, per-slot link
// capacity, and the charged-volume epigraph rows. It is the strongest
// possible scheduler within the no-storage flow model.
func Solve(ledger *netmodel.Ledger, files []netmodel.File, t int, cfg *Config) (*Result, error) {
	conf := cfg.withDefaults()
	nw := ledger.Network()
	if err := validateFiles(nw, files, t); err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return emptyResult(ledger), nil
	}
	m := lp.NewModel()
	fvars, links := addFlowVars(m, nw, files, conf.Epsilon)
	xvars := addChargeVars(m, ledger, links)
	if err := addConservation(m, nw, files, fvars); err != nil {
		return nil, err
	}
	if err := addSlotRows(m, ledger, files, fvars, xvars, links, t, nil); err != nil {
		return nil, err
	}
	sol, err := m.Solve(conf.LP)
	if err != nil {
		return nil, fmt.Errorf("flowbased: solving flow LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return &Result{Status: sol.Status}, nil
	}
	return assemble(ledger, files, fvars, sol, links, xvars)
}

// emptyResult is the decision for an empty file set.
func emptyResult(ledger *netmodel.Ledger) *Result {
	return &Result{
		Schedule:    &schedule.Schedule{},
		Rates:       map[int][]LinkRate{},
		CostPerSlot: ledger.CostPerSlot(),
		Status:      lp.Optimal,
	}
}

// addFlowVars creates one rate variable per (file, link) and returns them
// along with the link list.
func addFlowVars(m *lp.Model, nw *netmodel.Network, files []netmodel.File, eps float64) (map[int]map[netmodel.Link]lp.VarID, []netmodel.Link) {
	var links []netmodel.Link
	nw.Links(func(l netmodel.Link, _, _ float64) { links = append(links, l) })
	fvars := make(map[int]map[netmodel.Link]lp.VarID, len(files))
	for _, f := range files {
		vars := make(map[netmodel.Link]lp.VarID, len(links))
		for _, l := range links {
			vars[l] = m.AddVariable(0, f.DesiredRate()*float64(nw.NumDCs()),
				eps, fmt.Sprintf("f%d_%s", f.ID, l))
		}
		fvars[f.ID] = vars
	}
	return fvars, links
}

// addChargeVars creates the charged-volume epigraph variables.
func addChargeVars(m *lp.Model, ledger *netmodel.Ledger, links []netmodel.Link) map[netmodel.Link]lp.VarID {
	nw := ledger.Network()
	xvars := make(map[netmodel.Link]lp.VarID, len(links))
	for _, l := range links {
		xvars[l] = m.AddVariable(ledger.ChargedVolume(l.From, l.To), math.Inf(1),
			nw.Price(l.From, l.To), fmt.Sprintf("X_%s", l))
	}
	return xvars
}

// addConservation emits static flow conservation per file and node.
func addConservation(m *lp.Model, nw *netmodel.Network, files []netmodel.File, fvars map[int]map[netmodel.Link]lp.VarID) error {
	n := nw.NumDCs()
	for _, f := range files {
		for node := 0; node < n; node++ {
			d := netmodel.DC(node)
			var idx []lp.VarID
			var val []float64
			for to := 0; to < n; to++ {
				if nw.HasLink(d, netmodel.DC(to)) {
					idx = append(idx, fvars[f.ID][netmodel.Link{From: d, To: netmodel.DC(to)}])
					val = append(val, 1)
				}
			}
			for from := 0; from < n; from++ {
				if nw.HasLink(netmodel.DC(from), d) {
					idx = append(idx, fvars[f.ID][netmodel.Link{From: netmodel.DC(from), To: d}])
					val = append(val, -1)
				}
			}
			rhs := 0.0
			switch d {
			case f.Src:
				rhs = f.DesiredRate()
			case f.Dst:
				rhs = -f.DesiredRate()
			}
			if len(idx) == 0 {
				if rhs != 0 {
					return fmt.Errorf("flowbased: file %d endpoint D%d has no links", f.ID, node)
				}
				continue
			}
			if _, err := m.AddConstraint(lp.EQ, rhs, idx, val); err != nil {
				return err
			}
		}
	}
	return nil
}

// addSlotRows emits, for every link and slot of the horizon, the capacity
// constraint and the charge epigraph row. capOverride, when non-nil,
// replaces the residual capacity (used by the two-phase decomposition).
func addSlotRows(m *lp.Model, ledger *netmodel.Ledger, files []netmodel.File,
	fvars map[int]map[netmodel.Link]lp.VarID, xvars map[netmodel.Link]lp.VarID,
	links []netmodel.Link, t int, capOverride func(l netmodel.Link, slot int) float64) error {
	end := horizonOf(files, t)
	for _, l := range links {
		for n := t; n < end; n++ {
			var idx []lp.VarID
			var val []float64
			for _, f := range files {
				if active(f, n) {
					idx = append(idx, fvars[f.ID][l])
					val = append(val, 1)
				}
			}
			if len(idx) == 0 {
				continue
			}
			capacity := ledger.Residual(l.From, l.To, n)
			if capOverride != nil {
				capacity = capOverride(l, n)
			}
			if _, err := m.AddConstraint(lp.LE, capacity, idx, val); err != nil {
				return err
			}
			if xvars != nil {
				committed := ledger.VolumeAt(l.From, l.To, n)
				idx = append(idx, xvars[l])
				val = append(val, -1)
				if _, err := m.AddConstraint(lp.LE, -committed, idx, val); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// assemble converts an LP solution into rates, a realized schedule, and the
// resulting cost.
func assemble(ledger *netmodel.Ledger, files []netmodel.File,
	fvars map[int]map[netmodel.Link]lp.VarID, sol *lp.Solution,
	links []netmodel.Link, xvars map[netmodel.Link]lp.VarID) (*Result, error) {
	const tol = 1e-5
	res := &Result{
		Schedule: &schedule.Schedule{},
		Rates:    make(map[int][]LinkRate, len(files)),
		Status:   lp.Optimal,
	}
	for _, f := range files {
		var rates []LinkRate
		for _, l := range links {
			r := sol.Value(fvars[f.ID][l])
			if r <= tol {
				continue
			}
			rates = append(rates, LinkRate{From: l.From, To: l.To, Rate: r})
			for n := f.Release; n < f.Release+f.Deadline; n++ {
				res.Schedule.Add(schedule.Action{
					FileID: f.ID, From: l.From, To: l.To, Slot: n, Amount: r,
				})
			}
		}
		sort.Slice(rates, func(a, b int) bool {
			if rates[a].From != rates[b].From {
				return rates[a].From < rates[b].From
			}
			return rates[a].To < rates[b].To
		})
		res.Rates[f.ID] = rates
	}
	nw := ledger.Network()
	cost := 0.0
	nw.Links(func(l netmodel.Link, price, _ float64) {
		cost += price * sol.Value(xvars[l])
	})
	res.CostPerSlot = cost
	if err := ValidateRates(ledger, files, res.Rates); err != nil {
		return nil, fmt.Errorf("flowbased: LP produced invalid rates: %w", err)
	}
	return res, nil
}

// ValidateRates independently checks a static rate assignment: per-file
// conservation at every node, rate nonnegativity, and per-slot residual
// capacity over each file's active window.
func ValidateRates(ledger *netmodel.Ledger, files []netmodel.File, rates map[int][]LinkRate) error {
	const tol = 1e-5
	nw := ledger.Network()
	n := nw.NumDCs()
	// Per-slot usage across files for the capacity check.
	type linkSlot struct {
		l netmodel.Link
		n int
	}
	use := make(map[linkSlot]float64)
	for _, f := range files {
		net := make([]float64, n)
		for _, lr := range rates[f.ID] {
			if lr.Rate < -tol {
				return fmt.Errorf("flowbased: negative rate %v on %v for file %d", lr.Rate, netmodel.Link{From: lr.From, To: lr.To}, f.ID)
			}
			if !nw.HasLink(lr.From, lr.To) {
				return fmt.Errorf("flowbased: rate on missing link %d->%d", lr.From, lr.To)
			}
			net[lr.From] += lr.Rate
			net[lr.To] -= lr.Rate
			for s := f.Release; s < f.Release+f.Deadline; s++ {
				use[linkSlot{netmodel.Link{From: lr.From, To: lr.To}, s}] += lr.Rate
			}
		}
		for node := 0; node < n; node++ {
			want := 0.0
			switch netmodel.DC(node) {
			case f.Src:
				want = f.DesiredRate()
			case f.Dst:
				want = -f.DesiredRate()
			}
			if math.Abs(net[node]-want) > tol*(1+math.Abs(want)) {
				return fmt.Errorf("flowbased: file %d conservation at D%d: net %v, want %v",
					f.ID, node, net[node], want)
			}
		}
	}
	for ls, u := range use {
		if avail := ledger.Residual(ls.l.From, ls.l.To, ls.n); u > avail+tol*(1+avail) {
			return fmt.Errorf("flowbased: link %v slot %d carries %v > residual %v", ls.l, ls.n, u, avail)
		}
	}
	return nil
}

// graphForSlotWindow builds a graph.Graph whose edge capacities are the
// minimum residual over the slot window [from, to), minus extra usage.
func graphForSlotWindow(ledger *netmodel.Ledger, from, to int, extra map[netmodel.Link]float64) (*graph.Graph, map[int]netmodel.Link, error) {
	nw := ledger.Network()
	g := graph.New(nw.NumDCs())
	edgeLinks := make(map[int]netmodel.Link)
	var buildErr error
	nw.Links(func(l netmodel.Link, price, _ float64) {
		if buildErr != nil {
			return
		}
		avail := math.Inf(1)
		for s := from; s < to; s++ {
			if r := ledger.Residual(l.From, l.To, s); r < avail {
				avail = r
			}
		}
		avail -= extra[l]
		if avail < 0 {
			avail = 0
		}
		id, err := g.AddEdge(int(l.From), int(l.To), avail, price)
		if err != nil {
			buildErr = err
			return
		}
		edgeLinks[id] = l
	})
	return g, edgeLinks, buildErr
}

// SolveGreedy routes each file along successive cheapest available paths
// (by price, ignoring charge history), splitting across paths when the
// bottleneck is tighter than the desired rate. Files are processed in
// decreasing desired-rate order. It fails with an *UnroutedError when some
// rate cannot be placed.
func SolveGreedy(ledger *netmodel.Ledger, files []netmodel.File, t int) (*Result, error) {
	nw := ledger.Network()
	if err := validateFiles(nw, files, t); err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return emptyResult(ledger), nil
	}
	order := make([]netmodel.File, len(files))
	copy(order, files)
	sort.Slice(order, func(i, j int) bool {
		if ri, rj := order[i].DesiredRate(), order[j].DesiredRate(); ri != rj {
			return ri > rj
		}
		return order[i].ID < order[j].ID
	})
	assigned := make(map[netmodel.Link]map[int]float64) // link -> slot -> rate
	addUse := func(l netmodel.Link, f netmodel.File, rate float64) {
		m, ok := assigned[l]
		if !ok {
			m = make(map[int]float64)
			assigned[l] = m
		}
		for s := f.Release; s < f.Release+f.Deadline; s++ {
			m[s] += rate
		}
	}
	res := &Result{
		Schedule: &schedule.Schedule{},
		Rates:    make(map[int][]LinkRate, len(files)),
		Status:   lp.Optimal,
	}
	var unrouted []int
	for _, f := range order {
		remaining := f.DesiredRate()
		perLink := make(map[netmodel.Link]float64)
		for remaining > 1e-9 {
			extra := make(map[netmodel.Link]float64, len(assigned))
			for l, slots := range assigned {
				maxUse := 0.0
				for s := f.Release; s < f.Release+f.Deadline; s++ {
					if u := slots[s]; u > maxUse {
						maxUse = u
					}
				}
				extra[l] = maxUse
			}
			g, edgeLinks, err := graphForSlotWindow(ledger, f.Release, f.Release+f.Deadline, extra)
			if err != nil {
				return nil, err
			}
			path, _, ok := g.ShortestPath(int(f.Src), int(f.Dst), 1e-6)
			if !ok {
				unrouted = append(unrouted, f.ID)
				break
			}
			bottleneck := remaining
			for _, id := range path {
				if c := g.EdgeInfo(id).Cap; c < bottleneck {
					bottleneck = c
				}
			}
			if bottleneck <= 1e-9 {
				unrouted = append(unrouted, f.ID)
				break
			}
			for _, id := range path {
				l := edgeLinks[id]
				perLink[l] += bottleneck
				addUse(l, f, bottleneck)
			}
			remaining -= bottleneck
		}
		if remaining > 1e-9 {
			continue
		}
		var rates []LinkRate
		for l, r := range perLink {
			rates = append(rates, LinkRate{From: l.From, To: l.To, Rate: r})
			for s := f.Release; s < f.Release+f.Deadline; s++ {
				res.Schedule.Add(schedule.Action{FileID: f.ID, From: l.From, To: l.To, Slot: s, Amount: r})
			}
		}
		sort.Slice(rates, func(a, b int) bool {
			if rates[a].From != rates[b].From {
				return rates[a].From < rates[b].From
			}
			return rates[a].To < rates[b].To
		})
		res.Rates[f.ID] = rates
	}
	if len(unrouted) > 0 {
		sort.Ints(unrouted)
		return nil, &UnroutedError{FileIDs: unrouted}
	}
	if err := ValidateRates(ledger, files, res.Rates); err != nil {
		return nil, fmt.Errorf("flowbased: greedy produced invalid rates: %w", err)
	}
	res.CostPerSlot = previewCost(ledger, res.Schedule)
	return res, nil
}

// Direct sends every file over its direct link at the desired rate — the
// "no routing or scheduling" baseline of Fig. 1(a). It fails with an
// *UnroutedError when a direct link is missing or too small.
func Direct(ledger *netmodel.Ledger, files []netmodel.File, t int) (*Result, error) {
	nw := ledger.Network()
	if err := validateFiles(nw, files, t); err != nil {
		return nil, err
	}
	res := &Result{
		Schedule: &schedule.Schedule{},
		Rates:    make(map[int][]LinkRate, len(files)),
		Status:   lp.Optimal,
	}
	use := make(map[netmodel.Link]map[int]float64)
	var unrouted []int
	for _, f := range files {
		l := netmodel.Link{From: f.Src, To: f.Dst}
		r := f.DesiredRate()
		if !nw.HasLink(l.From, l.To) {
			unrouted = append(unrouted, f.ID)
			continue
		}
		fits := true
		for s := f.Release; s < f.Release+f.Deadline; s++ {
			if use[l] == nil {
				use[l] = make(map[int]float64)
			}
			if use[l][s]+r > ledger.Residual(l.From, l.To, s)+1e-9 {
				fits = false
			}
		}
		if !fits {
			unrouted = append(unrouted, f.ID)
			continue
		}
		res.Rates[f.ID] = []LinkRate{{From: l.From, To: l.To, Rate: r}}
		for s := f.Release; s < f.Release+f.Deadline; s++ {
			use[l][s] += r
			res.Schedule.Add(schedule.Action{FileID: f.ID, From: l.From, To: l.To, Slot: s, Amount: r})
		}
	}
	if len(unrouted) > 0 {
		sort.Ints(unrouted)
		return nil, &UnroutedError{FileIDs: unrouted}
	}
	res.CostPerSlot = previewCost(ledger, res.Schedule)
	return res, nil
}

// previewCost evaluates the cost per slot after committing s, without
// mutating the ledger.
func previewCost(ledger *netmodel.Ledger, s *schedule.Schedule) float64 {
	clone := ledger.Clone()
	if err := s.Apply(clone); err != nil {
		return math.NaN()
	}
	return clone.CostPerSlot()
}

// UnroutedError reports files whose desired rate could not be placed.
type UnroutedError struct {
	FileIDs []int
}

// Error implements error.
func (e *UnroutedError) Error() string {
	return fmt.Sprintf("flowbased: %d file(s) could not be routed at their desired rate: %v", len(e.FileIDs), e.FileIDs)
}
