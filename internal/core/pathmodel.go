package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
	"github.com/interdc/postcard/internal/timegraph"
)

// PricingMode selects how the per-file routing polytope enters the LP.
type PricingMode int

// Pricing modes.
const (
	// PricingArc is the PR 5 formulation: per-(file, edge) flow variables
	// under per-node conservation rows, with delayed per-arc column
	// generation. Exact and fast at paper scale (≤ ~16 DCs).
	PricingArc PricingMode = iota
	// PricingPath is the Dantzig–Wolfe decomposition for 100+ DC scale:
	// one convexity (demand) row per file, whole source→deadline path
	// columns priced by a per-file shortest-path oracle on the
	// time-expanded graph, and capacity/charge rows materialized lazily on
	// first use. The conservation rows — the dominant row class of the arc
	// model, Θ(files × DCs × deadline) — disappear entirely, so the
	// restricted master stays a few hundred rows even on overlays whose
	// arc model would carry tens of thousands. Exact: generation
	// terminates only when no path prices attractive, which certifies the
	// master optimum against the full arc model (see DESIGN.md §11).
	PricingPath
)

// pathBigM is the objective coefficient of the per-file artificial columns
// that keep the restricted path master feasible before enough paths have
// been generated. Any value dominating the true per-GB marginal delivery
// cost (bounded by link prices times path length, orders of magnitude
// smaller) yields the exact optimum; if the instance is genuinely
// infeasible the artificials stay positive and the caller falls back to an
// arc-model solve for the authoritative verdict, so exactness never
// depends on the constant.
const pathBigM = 1e9

// pathCol records one materialized path column: the model variable, the
// file it belongs to, and its edge sequence as a range into the builder's
// shared edge arena.
type pathCol struct {
	v          lp.VarID
	file       int32
	start, end int32
}

// pathBuilder assembles and prices the Dantzig–Wolfe path master. It
// implements lp.PricingOracle: each pricing round runs one shortest-path
// subproblem per file — fanned across a worker pool, merged back in file
// order so results are bit-deterministic regardless of worker count — and
// materializes every attractive path column together with whatever
// capacity and charge rows its edges touch for the first time.
type pathBuilder struct {
	tg     *timegraph.Graph
	ledger *netmodel.Ledger
	files  []netmodel.File
	reach  []timegraph.Reachability
	conf   Config

	model *lp.Model
	// demandRow[k] is file k's convexity row (sum of its path columns plus
	// its artificial equals the file size); artVar[k] the big-M artificial.
	demandRow []lp.ConID
	artVar    []lp.VarID
	// xvars maps link -> charged-volume epigraph column. Unlike the arc
	// model, X columns materialize lazily with their link's first charge
	// row: an X with no charge rows sits at its lower bound in every
	// optimum, so omitting it (and accounting price·ChargedVolume directly
	// in chargedCost) is exact and keeps the master independent of the
	// overlay's link count.
	xvars map[netmodel.Link]lp.VarID
	// capRow/chargeRow map edge index -> lazily created row (-1 absent).
	capRow    []lp.ConID
	chargeRow []lp.ConID
	// support marks transfer edges inside some file's pruned universe; rows
	// only ever materialize on support, mirroring the arc model's
	// row-emission rule exactly.
	support []bool

	cols    []pathCol
	arena   []int32
	seen    map[uint64][]int32 // path hash -> indices into cols
	colKeys []modelKey
	rowKeys []modelKey

	// Lazy-dual pricing state. A charge row that is still absent from the
	// master carries a chosen dual, not necessarily zero: rows tight at zero
	// path flow (committed slot volume equal to the charged floor — every
	// edge of an untouched link) are exempt from complementary slackness, so
	// the certificate may distribute the link's budget — the X column's
	// reduced cost price + Σ materialized charge duals — across them. That
	// makes pricing see an untouched link's true marginal cost instead of
	// zero, which is what keeps the round count flat as the network grows.
	tight     []bool    // per edge: absent charge row is tight at zero flow
	blocked   []bool    // per edge: zero residual capacity, excluded outright
	linkOf    []int     // per edge: dense link id (-1 for storage edges)
	linkPrice []float64 // per link id: the link's price
	budget    []float64 // per link id, per round: distributable charge dual
	absent    []int     // per link id, per round: absent tight charge rows
	edgeW     []float64 // per edge, per round: transfer-edge pricing weight

	// Per-round pricing scratch: one PathFinder per worker, per-file result
	// buffers written by the workers and consumed by the serial merge.
	finders  []timegraph.PathFinder
	resEdges [][]int32
	resW     []float64
	resOK    []bool

	// Extraction scratch: per-edge amounts plus the dirty list.
	amount []float64
	dirty  []int32

	rowIdx []lp.VarID
	rowVal []float64
	conBuf []lp.ConID
	cofBuf []float64

	varUniverse int
	prunedVars  int

	// Round accounting the PriceBatch hook fills in.
	addedCols, addedRows int
}

// newPathBuilder prepares a path-master builder, recycling every backing
// allocation of a previous build when recycle is non-nil (the incremental
// Solver's steady state).
func newPathBuilder(recycle *pathBuilder, tg *timegraph.Graph, ledger *netmodel.Ledger, files []netmodel.File, reach []timegraph.Reachability, conf Config) *pathBuilder {
	pb := recycle
	if pb == nil {
		pb = &pathBuilder{
			model: lp.NewModel(),
			xvars: make(map[netmodel.Link]lp.VarID),
			seen:  make(map[uint64][]int32),
		}
	} else {
		pb.model.Reset()
		clear(pb.xvars)
		clear(pb.seen)
		pb.cols = pb.cols[:0]
		pb.arena = pb.arena[:0]
		pb.colKeys = pb.colKeys[:0]
		pb.rowKeys = pb.rowKeys[:0]
	}
	pb.tg = tg
	pb.ledger = ledger
	pb.files = files
	pb.reach = reach
	pb.conf = conf
	pb.varUniverse, pb.prunedVars = 0, 0
	return pb
}

// build assembles the initial restricted master: per-file demand rows with
// their artificial columns, plus eager charge "floor" rows wherever the
// ledger's committed volume already exceeds the charged-volume lower bound
// on a supported edge (possible only under partial-percentile charging,
// where the lazy-row slackness argument would not hold for them). Path
// columns, capacity rows and the remaining charge rows all enter lazily
// through pricing.
func (pb *pathBuilder) build() error {
	ne := pb.tg.NumEdges()
	pb.demandRow = intSlice(pb.demandRow, len(pb.files))
	pb.artVar = intSlice(pb.artVar, len(pb.files))
	pb.capRow = intSlice(pb.capRow, ne)
	pb.chargeRow = intSlice(pb.chargeRow, ne)
	pb.support = intSlice(pb.support, ne)
	pb.tight = intSlice(pb.tight, ne)
	pb.blocked = intSlice(pb.blocked, ne)
	pb.linkOf = intSlice(pb.linkOf, ne)
	pb.edgeW = intSlice(pb.edgeW, ne)
	pb.linkPrice = pb.linkPrice[:0]
	linkID := make(map[netmodel.Link]int, len(pb.linkPrice))
	for i := 0; i < ne; i++ {
		pb.capRow[i], pb.chargeRow[i], pb.support[i] = -1, -1, false
		pb.linkOf[i] = -1
	}
	pb.tg.Edges(func(e timegraph.Edge) {
		if e.Storage {
			return
		}
		l := netmodel.Link{From: e.From, To: e.To}
		id, ok := linkID[l]
		if !ok {
			id = len(pb.linkPrice)
			linkID[l] = id
			pb.linkPrice = append(pb.linkPrice, e.Price)
		}
		pb.linkOf[e.Index] = id
		pb.tight[e.Index] = pb.ledger.VolumeAt(e.From, e.To, e.Slot) >= pb.ledger.ChargedVolume(e.From, e.To)
		pb.blocked[e.Index] = pb.ledger.Residual(e.From, e.To, e.Slot) <= 0
	})
	for k, f := range pb.files {
		pb.artVar[k] = pb.model.AddVariable(0, math.Inf(1), pathBigM, "")
		pb.colKeys = append(pb.colKeys, modelKey{kind: kindArt, file: f.ID, from: -1, to: -1, slot: -1})
		row, err := pb.model.AddConstraint(lp.EQ, f.Size, []lp.VarID{pb.artVar[k]}, []float64{1})
		if err != nil {
			return err
		}
		pb.demandRow[k] = row
		pb.rowKeys = append(pb.rowKeys, modelKey{kind: kindDemand, file: f.ID, from: -1, to: -1, slot: -1})
	}
	// Universe/support pass: the same per-file window, storage-policy and
	// reachability filters the arc builder applies, so VarUniverse and
	// PrunedVars report the identical accounting and rows only ever
	// materialize where the arc model would have emitted them.
	for k, f := range pb.files {
		first, last, ok := pb.tg.FileWindow(f)
		if !ok {
			return fmt.Errorf("core: file %d outside graph horizon", f.ID)
		}
		r := pb.reach[k]
		pb.tg.Edges(func(e timegraph.Edge) {
			if e.Slot < first || e.Slot > last {
				return
			}
			if e.Storage {
				switch pb.conf.Storage {
				case StorageEndpointsOnly:
					if e.From != f.Src && e.From != f.Dst {
						return
					}
				case StorageNone:
					return
				}
			}
			if !r.Allowed(f, e.From, e.Slot) || !r.Allowed(f, e.To, e.Slot+1) {
				pb.prunedVars++
				return
			}
			pb.varUniverse++
			if !e.Storage {
				pb.support[e.Index] = true
			}
		})
	}
	// Charge floor rows: a lazily omitted charge row is slack only while
	// X's lower bound covers the committed volume; under q-percentile
	// charging with q < 100 the committed slot volume can exceed the
	// charged floor, so those rows (and their X columns) enter eagerly.
	errOut := error(nil)
	pb.tg.Edges(func(e timegraph.Edge) {
		if errOut != nil || e.Storage || !pb.support[e.Index] {
			return
		}
		committed := pb.ledger.VolumeAt(e.From, e.To, e.Slot)
		if committed <= pb.ledger.ChargedVolume(e.From, e.To) {
			return
		}
		if _, err := pb.ensureChargeRow(e); err != nil {
			errOut = err
		}
	})
	return errOut
}

// ensureX returns the charged-volume epigraph column of e's link,
// materializing it on first use.
func (pb *pathBuilder) ensureX(e timegraph.Edge) lp.VarID {
	l := netmodel.Link{From: e.From, To: e.To}
	if x, ok := pb.xvars[l]; ok {
		return x
	}
	x := pb.model.AddVariable(pb.ledger.ChargedVolume(e.From, e.To), math.Inf(1), e.Price, "")
	pb.xvars[l] = x
	pb.colKeys = append(pb.colKeys, modelKey{kind: kindX, file: -1, from: e.From, to: e.To, slot: -1})
	pb.addedCols++
	return x
}

// ensureChargeRow returns e's charge row (sum of path flow minus X bounded
// by the committed volume), creating it — and its link's X column — on
// first use.
func (pb *pathBuilder) ensureChargeRow(e timegraph.Edge) (lp.ConID, error) {
	if r := pb.chargeRow[e.Index]; r >= 0 {
		return r, nil
	}
	x := pb.ensureX(e)
	committed := pb.ledger.VolumeAt(e.From, e.To, e.Slot)
	row, err := pb.model.AddConstraint(lp.LE, -committed, []lp.VarID{x}, []float64{-1})
	if err != nil {
		return -1, err
	}
	pb.chargeRow[e.Index] = row
	pb.rowKeys = append(pb.rowKeys, modelKey{kind: kindCharge, file: -1, from: e.From, to: e.To, slot: e.Slot})
	pb.addedRows++
	return row, nil
}

// ensureCapRow returns e's residual-capacity row, creating it on first use.
func (pb *pathBuilder) ensureCapRow(e timegraph.Edge) (lp.ConID, error) {
	if r := pb.capRow[e.Index]; r >= 0 {
		return r, nil
	}
	residual := pb.ledger.Residual(e.From, e.To, e.Slot)
	row, err := pb.model.AddConstraint(lp.LE, residual, nil, nil)
	if err != nil {
		return -1, err
	}
	pb.capRow[e.Index] = row
	pb.rowKeys = append(pb.rowKeys, modelKey{kind: kindCap, file: -1, from: e.From, to: e.To, slot: e.Slot})
	pb.addedRows++
	return row, nil
}

// Universe implements lp.PricingOracle: the size of the arc-variable
// universe the path columns span implicitly.
func (pb *pathBuilder) Universe() int { return pb.varUniverse }

// pricingWorkers resolves the worker-pool width for one pricing round.
func (pb *pathBuilder) pricingWorkers() int {
	w := pb.conf.PricingWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(pb.files) {
		w = len(pb.files)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// priceFile runs file k's shortest-path subproblem under duals y using
// finder, leaving the result in the per-file buffers.
func (pb *pathBuilder) priceFile(k int, y []float64, finder *timegraph.PathFinder) {
	f := pb.files[k]
	eps := pb.conf.Epsilon
	weight := func(e *timegraph.Edge) float64 {
		if e.Storage {
			switch pb.conf.Storage {
			case StorageEndpointsOnly:
				if e.From != f.Src && e.From != f.Dst {
					return math.Inf(1)
				}
			case StorageNone:
				return math.Inf(1)
			}
			return 0
		}
		return eps + pb.edgeW[e.Index]
	}
	path, w, ok := finder.ShortestPath(pb.tg, f, weight)
	pb.resOK[k] = ok
	if !ok {
		return
	}
	pb.resW[k] = w
	buf := pb.resEdges[k][:0]
	for _, idx := range path {
		buf = append(buf, int32(idx))
	}
	pb.resEdges[k] = buf
}

// computeEdgeWeights fills edgeW with this round's transfer-edge pricing
// weights (the Epsilon hop cost is added by the closure): −y for
// materialized cap and charge rows, +Inf for zero-residual edges (their
// tight absent cap row certifies any exclusion: all weights are
// nonnegative under feasible duals, so assigning it an arbitrarily
// negative dual prices every such path above any σ), and for absent charge
// rows the chosen lazy dual — zero when the row is slack at zero flow
// (flow below the charged floor really is free), otherwise a share of the
// link's budget. The heuristic pass (certificate=false) charges the full
// budget on every absent tight row, the link's true marginal cost; since
// one path crosses a link in at most one slot that guides the search
// perfectly, but the implied dual vector over-spends the budget, so a
// quiet heuristic round proves nothing. The certificate pass splits the
// budget evenly across the link's absent tight rows, which is a genuinely
// dual-feasible, complementary-slack extension of the master's duals: a
// quiet certificate round is an optimality proof against the full model.
func (pb *pathBuilder) computeEdgeWeights(y []float64, certificate bool) {
	nl := len(pb.linkPrice)
	pb.budget = intSlice(pb.budget, nl)
	pb.absent = intSlice(pb.absent, nl)
	copy(pb.budget, pb.linkPrice)
	for i := range pb.absent {
		pb.absent[i] = 0
	}
	for i, lid := range pb.linkOf {
		if lid < 0 {
			continue
		}
		if r := pb.chargeRow[i]; r >= 0 {
			pb.budget[lid] += y[r] // LE-row duals are ≤ 0
		} else if pb.tight[i] {
			pb.absent[lid]++
		}
	}
	for i := range pb.budget {
		if pb.budget[i] < 0 {
			pb.budget[i] = 0 // float noise; dual feasibility pins it at ≥ 0
		}
	}
	for i, lid := range pb.linkOf {
		if lid < 0 {
			continue
		}
		if pb.blocked[i] {
			pb.edgeW[i] = math.Inf(1)
			continue
		}
		w := 0.0
		if r := pb.capRow[i]; r >= 0 {
			w -= y[r]
		}
		if r := pb.chargeRow[i]; r >= 0 {
			w -= y[r]
		} else if pb.tight[i] {
			if certificate {
				w += pb.budget[lid] / float64(pb.absent[lid])
			} else {
				w += pb.budget[lid]
			}
		}
		pb.edgeW[i] = w
	}
}

// PriceBatch implements lp.PricingOracle: one Dantzig–Wolfe pricing round.
// Every file's subproblem — a label-correcting shortest path over reduced
// costs Epsilon − y_cap − y_charge, with absent lazy rows priced at their
// chosen certificate duals (see computeEdgeWeights) — runs concurrently;
// each path whose reduced cost W − σ_k beats −tol is materialized serially
// in file order, creating the capacity and charge rows its edges touch for
// the first time. The round prices heuristically first (full budgets on
// untouched links, which keeps the round count independent of network
// size); only when that finds nothing does it re-price under the
// dual-consistent budget split, so a zero-column return really certifies
// the master optimum against the full arc model.
func (pb *pathBuilder) PriceBatch(m *lp.Model, y []float64, tol float64) (int, int, error) {
	nf := len(pb.files)
	if cap(pb.resEdges) < nf {
		pb.resEdges = make([][]int32, nf)
	} else {
		pb.resEdges = pb.resEdges[:nf]
	}
	pb.resW = intSlice(pb.resW, nf)
	pb.resOK = intSlice(pb.resOK, nf)
	workers := pb.pricingWorkers()
	if cap(pb.finders) < workers {
		pb.finders = make([]timegraph.PathFinder, workers)
	} else {
		pb.finders = pb.finders[:workers]
	}
	pb.addedCols, pb.addedRows = 0, 0
	for _, certificate := range []bool{false, true} {
		pb.computeEdgeWeights(y, certificate)
		if workers == 1 {
			for k := 0; k < nf; k++ {
				pb.priceFile(k, y, &pb.finders[0])
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for k := w; k < nf; k += workers {
						pb.priceFile(k, y, &pb.finders[w])
					}
				}(w)
			}
			wg.Wait()
		}
		for k := range pb.files {
			if !pb.resOK[k] {
				continue
			}
			if rc := pb.resW[k] - y[pb.demandRow[k]]; rc >= -tol {
				continue
			}
			if err := pb.materializePath(k, pb.resEdges[k]); err != nil {
				return 0, 0, err
			}
		}
		if pb.addedCols > 0 {
			break // heuristic pass found work; no certificate needed yet
		}
	}
	return pb.addedCols, pb.addedRows, nil
}

// MaterializeRest implements lp.PricingOracle. The path universe is
// implicit and inexhaustible, but the hook is also unreachable: the
// restricted master is feasible by construction (artificials cover every
// demand row, residuals are never negative), so the driver never sees an
// infeasible restriction to exhaust.
func (pb *pathBuilder) MaterializeRest(*lp.Model) (int, int, bool, error) {
	return 0, 0, false, nil
}

// pathHash is FNV-64a over the file index and edge sequence, identifying a
// path column structurally (also across slots: edge indices are positional,
// so the same physical route hashes identically on a rebased graph).
func pathHash(file int32, edges []int32) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint32) {
		for s := 0; s < 32; s += 8 {
			h ^= uint64(v>>s) & 0xff
			h *= prime64
		}
	}
	mix(uint32(file))
	for _, e := range edges {
		mix(uint32(e))
	}
	return h
}

// materializePath grafts one path column for file k onto the master,
// creating the rows its transfer edges need first. Duplicate paths
// (possible only under dual degeneracy at tolerance scale) are dropped —
// the column already exists, so re-adding it could only loop the driver.
func (pb *pathBuilder) materializePath(k int, edges []int32) error {
	f := pb.files[k]
	h := pathHash(int32(k), edges)
	for _, ci := range pb.seen[h] {
		c := pb.cols[ci]
		if c.file == int32(k) && int(c.end-c.start) == len(edges) {
			same := true
			for i, e := range pb.arena[c.start:c.end] {
				if e != edges[i] {
					same = false
					break
				}
			}
			if same {
				return nil
			}
		}
	}
	pb.conBuf = append(pb.conBuf[:0], pb.demandRow[k])
	pb.cofBuf = append(pb.cofBuf[:0], 1)
	transfers := 0
	for _, idx := range edges {
		e := pb.tg.Edge(int(idx))
		if e.Storage {
			continue
		}
		transfers++
		capID, err := pb.ensureCapRow(e)
		if err != nil {
			return err
		}
		chargeID, err := pb.ensureChargeRow(e)
		if err != nil {
			return err
		}
		pb.conBuf = append(pb.conBuf, capID, chargeID)
		pb.cofBuf = append(pb.cofBuf, 1, 1)
	}
	v, err := pb.model.AddColumn(0, math.Inf(1), pb.conf.Epsilon*float64(transfers), "", pb.conBuf, pb.cofBuf)
	if err != nil {
		return err
	}
	start := int32(len(pb.arena))
	pb.arena = append(pb.arena, edges...)
	ci := int32(len(pb.cols))
	pb.cols = append(pb.cols, pathCol{v: v, file: int32(k), start: start, end: int32(len(pb.arena))})
	pb.seen[h] = append(pb.seen[h], ci)
	pb.colKeys = append(pb.colKeys, modelKey{kind: kindPath, file: f.ID, from: -1, to: -1, slot: int(h >> 1)})
	pb.addedCols++
	return nil
}

// artificialResidue reports the largest per-file artificial value relative
// to its feasibility scale — zero (to LP tolerance) certifies that the
// generated paths deliver every file in full and the master optimum is the
// true optimum; positive means the instance could not be served and the
// caller must fall back to the arc model for the authoritative verdict.
func (pb *pathBuilder) artificialResidue(sol *lp.Solution) bool {
	for k, f := range pb.files {
		if sol.Value(pb.artVar[k]) > 1e-7*(1+f.Size) {
			return true
		}
	}
	return false
}

// extractSchedule aggregates the positive path columns into per-(file,
// edge) actions — several paths of one file may share an edge — emitted in
// edge-index order for determinism. Values at solver-noise scale are
// dropped, exactly like the arc extraction.
func (pb *pathBuilder) extractSchedule(sol *lp.Solution) *schedule.Schedule {
	const tol = 1e-5
	s := &schedule.Schedule{}
	ne := pb.tg.NumEdges()
	if cap(pb.amount) < ne {
		pb.amount = make([]float64, ne)
	} else {
		pb.amount = pb.amount[:ne]
		for i := range pb.amount {
			pb.amount[i] = 0
		}
	}
	byFile := make([][]int32, len(pb.files))
	for ci, c := range pb.cols {
		byFile[c.file] = append(byFile[c.file], int32(ci))
	}
	for k, f := range pb.files {
		pb.dirty = pb.dirty[:0]
		for _, ci := range byFile[k] {
			c := pb.cols[ci]
			val := sol.Value(c.v)
			if val <= 0 {
				continue
			}
			for _, idx := range pb.arena[c.start:c.end] {
				if pb.amount[idx] == 0 {
					pb.dirty = append(pb.dirty, idx)
				}
				pb.amount[idx] += val
			}
		}
		sort.Slice(pb.dirty, func(a, b int) bool { return pb.dirty[a] < pb.dirty[b] })
		for _, idx := range pb.dirty {
			amount := pb.amount[idx]
			pb.amount[idx] = 0
			if amount <= tol {
				continue
			}
			e := pb.tg.Edge(int(idx))
			s.Add(schedule.Action{
				FileID: f.ID,
				From:   e.From,
				To:     e.To,
				Slot:   e.Slot,
				Amount: amount,
			})
		}
	}
	return s
}

// chargedCost evaluates sum over links of price times charged volume at the
// optimum. Links whose X column never materialized have no charge rows, so
// their optimum is pinned at the ChargedVolume lower bound.
func (pb *pathBuilder) chargedCost(sol *lp.Solution) float64 {
	total := 0.0
	nw := pb.tg.Network()
	nw.Links(func(l netmodel.Link, price, _ float64) {
		if x, ok := pb.xvars[l]; ok {
			total += price * sol.Value(x)
		} else {
			total += price * pb.ledger.ChargedVolume(l.From, l.To)
		}
	})
	return total
}

// solve runs the path master by column generation and converts the outcome
// into a Result. fallback reports that the master terminated with positive
// artificials (the generated paths cannot serve every file) — the caller
// must obtain the authoritative verdict from an arc-model solve.
func (pb *pathBuilder) solve(opts *lp.Options) (res *Result, sol *lp.Solution, fallback bool, err error) {
	sol, err = lp.SolvePriced(pb.model, pb, opts)
	if err != nil {
		return nil, nil, false, fmt.Errorf("core: solving Postcard path master: %w", err)
	}
	res = &Result{
		Status:         sol.Status,
		Iterations:     sol.Iterations,
		Phase1Iter:     sol.Phase1Iter,
		Variables:      pb.model.NumVariables(),
		Constraints:    pb.model.NumConstraints(),
		WarmStarted:    sol.WarmStarted,
		PresolveCols:   sol.PresolveCols,
		PresolveRows:   sol.PresolveRows,
		SparseSolves:   sol.SparseSolves,
		DenseSolves:    sol.DenseSolves,
		SolveNNZ:       sol.SolveNNZ,
		SolveDim:       sol.SolveDim,
		DevexResets:    sol.DevexResets,
		DualRecomputes: sol.DualRecomputes,
		BackendWorkers: sol.BackendWorkers,
		DevexScans:     sol.DevexScans,
		ParallelScans:  sol.ParallelScans,
		SpecFtrans:     sol.SpecFtrans,
		SpecFtranHits:  sol.SpecFtranHits,
		VarUniverse:    pb.varUniverse,
		PrunedVars:     pb.prunedVars,
		ColGenRounds:   sol.ColGenRounds,
		ColGenColumns:  sol.ColGenColumns,
		ColGenRows:     sol.ColGenRows,
		ColGenUniverse: sol.ColGenUniverse,
	}
	if sol.Status != lp.Optimal {
		// Structurally unreachable (the master is feasible by construction),
		// but any non-optimal outcome is a restricted verdict the arc model
		// must confirm.
		return res, sol, true, nil
	}
	if pb.artificialResidue(sol) {
		return res, sol, true, nil
	}
	res.Schedule = pb.extractSchedule(sol)
	res.CostPerSlot = pb.chargedCost(sol)
	if !pb.conf.SkipVerify {
		vc := schedule.VerifyConfig{
			Residual: func(i, j netmodel.DC, slot int) float64 { return pb.ledger.Residual(i, j, slot) },
			Tol:      1e-4, // GB; matches LP tolerance noise on multi-GB files
		}
		if err := schedule.Verify(res.Schedule, pb.tg.Network(), pb.files, vc); err != nil {
			return nil, nil, false, fmt.Errorf("core: path optimizer produced an invalid schedule: %w", err)
		}
	}
	return res, sol, false, nil
}

// pathCrashBasis is the cold start of the path master: every artificial
// basic against its demand row (the implied point serves each file from its
// artificial, so it is primal feasible and phase 1 is free except for
// partial-percentile floor rows), everything else at the cold default.
func pathCrashBasis(pb *pathBuilder) *lp.Basis {
	nv, nr := len(pb.colKeys), len(pb.rowKeys)
	out := &lp.Basis{NumVars: nv, NumRows: nr, Status: make([]lp.BasisStatus, nv+nr)}
	for j := 0; j < nv; j++ {
		out.Status[j] = lp.BasisAtLower
	}
	for i := 0; i < nr; i++ {
		out.Status[nv+i] = lp.BasisBasic
	}
	for k := range pb.files {
		out.Status[pb.artVar[k]] = lp.BasisBasic
		out.Status[nv+int(pb.demandRow[k])] = lp.BasisAtLower
	}
	return out.Normalize()
}

// pathCrashNewFiles upgrades a mapped basis for files the previous model
// did not contain: their artificial column enters basic against their
// demand row (a triangular flip — the artificial appears in that row only),
// restoring the primal-feasible serve-from-artificial start the cold crash
// basis uses. Files carried over (same-slot shedding retries) keep their
// mapped statuses.
func pathCrashNewFiles(out *lp.Basis, prevRowStat map[modelKey]lp.BasisStatus, pb *pathBuilder) {
	for k, f := range pb.files {
		key := modelKey{kind: kindDemand, file: f.ID, from: -1, to: -1, slot: -1}
		if _, carried := prevRowStat[key]; carried {
			continue
		}
		out.Status[pb.artVar[k]] = lp.BasisBasic
		out.Status[out.NumVars+int(pb.demandRow[k])] = lp.BasisAtLower
	}
}
