package core

import (
	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/timegraph"
)

// SolveStats aggregates the LP work a Solver performed over its lifetime.
// All counters are monotone; per-window figures are obtained by subtracting
// two snapshots (see Sub).
type SolveStats struct {
	// Solves counts LP solves actually run (empty-demand slots, which short
	// circuit without a model, are excluded).
	Solves int
	// WarmSolves counts solves in which the simplex accepted the basis
	// mapped over from the previous slot instead of cold-starting.
	WarmSolves int
	// GraphReuses counts solves that recycled the cached time-expanded
	// graph skeleton via Rebase instead of rebuilding it.
	GraphReuses int
	// Iterations and Phase1Iter total the simplex iterations across solves
	// (Phase1Iter is the feasibility-restoration share of Iterations).
	Iterations int
	Phase1Iter int
	// PresolveCols and PresolveRows total the LP columns and rows the
	// presolve pass removed before the simplex ran.
	PresolveCols int
	PresolveRows int
	// SparseSolves and DenseSolves total the basis triangular solves that
	// took the hyper-sparse pattern path versus the dense fallback; SolveNNZ
	// and SolveDim total their result-pattern sizes and basis dimensions, so
	// the fleet-wide aggregate result density is SolveNNZ/SolveDim.
	SparseSolves int
	DenseSolves  int
	SolveNNZ     int
	SolveDim     int
	// DevexResets and DualRecomputes total devex reference-framework
	// restarts and full reduced-cost recomputations.
	DevexResets    int
	DualRecomputes int
	// BackendWorkers is the LP compute backend's worker count (a gauge,
	// not a counter: Add keeps the maximum seen, Sub keeps the newer
	// snapshot's value). DevexScans, ParallelScans, SpecFtrans and
	// SpecFtranHits total the backend's pricing-scan and speculative-FTRAN
	// work; all four are bit-identical for every worker count.
	BackendWorkers int
	DevexScans     int
	ParallelScans  int
	SpecFtrans     int
	SpecFtranHits  int
	// PathRecycled totals the path columns seeded into restricted masters
	// because they were active in the previous slot's optimum (the warm
	// solver's cross-slot column recycling; zero under PricingArc).
	PathRecycled int
	// VarUniverse totals the per-file column universes of the solved models;
	// PrunedVars and PrunedRows total the variables and conservation rows
	// deadline-reachability pruning removed before model assembly.
	VarUniverse int
	PrunedVars  int
	PrunedRows  int
	// ColGenRounds, ColGenColumns and ColGenUniverse total the delayed
	// column-generation work: restricted-master solves, columns actually
	// materialized, and the delayed universe priced implicitly.
	ColGenRounds   int
	ColGenColumns  int
	ColGenUniverse int
	// ColGenRows totals the rows generation lazily appended alongside its
	// columns (path-master capacity/charge rows; zero under PricingArc).
	ColGenRows int
	// PathSolves counts solves that ran the Dantzig–Wolfe path master;
	// PathFallbacks the subset whose master could not serve every file and
	// deferred to an authoritative arc-model solve.
	PathSolves    int
	PathFallbacks int
	// Admits, Rejects and Republishes count the admission fast tier's
	// allocate-on-arrival decisions and background re-optimizations; they
	// stay zero for pure LP schedulers. FastCost totals the provisional
	// cost-per-slot increase of committed fast-tier batches and
	// RepublishDelta the cost per slot the background re-optimizer shaved
	// off them (see internal/admission).
	Admits         int
	Rejects        int
	Republishes    int
	FastCost       float64
	RepublishDelta float64
}

// Add returns the element-wise sum of two stat snapshots (the
// BackendWorkers gauge keeps the maximum of the two sides).
func (s SolveStats) Add(o SolveStats) SolveStats {
	workers := s.BackendWorkers
	if o.BackendWorkers > workers {
		workers = o.BackendWorkers
	}
	return SolveStats{
		Solves:         s.Solves + o.Solves,
		WarmSolves:     s.WarmSolves + o.WarmSolves,
		GraphReuses:    s.GraphReuses + o.GraphReuses,
		Iterations:     s.Iterations + o.Iterations,
		Phase1Iter:     s.Phase1Iter + o.Phase1Iter,
		PresolveCols:   s.PresolveCols + o.PresolveCols,
		PresolveRows:   s.PresolveRows + o.PresolveRows,
		SparseSolves:   s.SparseSolves + o.SparseSolves,
		DenseSolves:    s.DenseSolves + o.DenseSolves,
		SolveNNZ:       s.SolveNNZ + o.SolveNNZ,
		SolveDim:       s.SolveDim + o.SolveDim,
		DevexResets:    s.DevexResets + o.DevexResets,
		DualRecomputes: s.DualRecomputes + o.DualRecomputes,
		BackendWorkers: workers,
		DevexScans:     s.DevexScans + o.DevexScans,
		ParallelScans:  s.ParallelScans + o.ParallelScans,
		SpecFtrans:     s.SpecFtrans + o.SpecFtrans,
		SpecFtranHits:  s.SpecFtranHits + o.SpecFtranHits,
		PathRecycled:   s.PathRecycled + o.PathRecycled,
		VarUniverse:    s.VarUniverse + o.VarUniverse,
		PrunedVars:     s.PrunedVars + o.PrunedVars,
		PrunedRows:     s.PrunedRows + o.PrunedRows,
		ColGenRounds:   s.ColGenRounds + o.ColGenRounds,
		ColGenColumns:  s.ColGenColumns + o.ColGenColumns,
		ColGenUniverse: s.ColGenUniverse + o.ColGenUniverse,
		ColGenRows:     s.ColGenRows + o.ColGenRows,
		PathSolves:     s.PathSolves + o.PathSolves,
		PathFallbacks:  s.PathFallbacks + o.PathFallbacks,
		Admits:         s.Admits + o.Admits,
		Rejects:        s.Rejects + o.Rejects,
		Republishes:    s.Republishes + o.Republishes,
		FastCost:       s.FastCost + o.FastCost,
		RepublishDelta: s.RepublishDelta + o.RepublishDelta,
	}
}

// Sub returns the element-wise difference s - o, turning two cumulative
// snapshots into the work performed between them (the BackendWorkers gauge
// keeps the newer snapshot's value).
func (s SolveStats) Sub(o SolveStats) SolveStats {
	return SolveStats{
		Solves:         s.Solves - o.Solves,
		WarmSolves:     s.WarmSolves - o.WarmSolves,
		GraphReuses:    s.GraphReuses - o.GraphReuses,
		Iterations:     s.Iterations - o.Iterations,
		Phase1Iter:     s.Phase1Iter - o.Phase1Iter,
		PresolveCols:   s.PresolveCols - o.PresolveCols,
		PresolveRows:   s.PresolveRows - o.PresolveRows,
		SparseSolves:   s.SparseSolves - o.SparseSolves,
		DenseSolves:    s.DenseSolves - o.DenseSolves,
		SolveNNZ:       s.SolveNNZ - o.SolveNNZ,
		SolveDim:       s.SolveDim - o.SolveDim,
		DevexResets:    s.DevexResets - o.DevexResets,
		DualRecomputes: s.DualRecomputes - o.DualRecomputes,
		BackendWorkers: s.BackendWorkers,
		DevexScans:     s.DevexScans - o.DevexScans,
		ParallelScans:  s.ParallelScans - o.ParallelScans,
		SpecFtrans:     s.SpecFtrans - o.SpecFtrans,
		SpecFtranHits:  s.SpecFtranHits - o.SpecFtranHits,
		PathRecycled:   s.PathRecycled - o.PathRecycled,
		VarUniverse:    s.VarUniverse - o.VarUniverse,
		PrunedVars:     s.PrunedVars - o.PrunedVars,
		PrunedRows:     s.PrunedRows - o.PrunedRows,
		ColGenRounds:   s.ColGenRounds - o.ColGenRounds,
		ColGenColumns:  s.ColGenColumns - o.ColGenColumns,
		ColGenUniverse: s.ColGenUniverse - o.ColGenUniverse,
		ColGenRows:     s.ColGenRows - o.ColGenRows,
		PathSolves:     s.PathSolves - o.PathSolves,
		PathFallbacks:  s.PathFallbacks - o.PathFallbacks,
		Admits:         s.Admits - o.Admits,
		Rejects:        s.Rejects - o.Rejects,
		Republishes:    s.Republishes - o.Republishes,
		FastCost:       s.FastCost - o.FastCost,
		RepublishDelta: s.RepublishDelta - o.RepublishDelta,
	}
}

// Solver is the incremental counterpart of Solve for online slot-by-slot
// use: consecutive calls against the same network reuse the time-expanded
// graph skeleton (rebased instead of rebuilt) and warm-start each LP from
// the previous slot's optimal basis, translated across models by structural
// keys (charged-volume columns per link, capacity/charge rows per edge-slot,
// per-file columns and conservation rows by file identity). The LP presolve
// pass is enabled on every solve.
//
// The cache is advisory only: a mapped basis the simplex cannot use is
// silently discarded for a cold start, so a Solver's results match the
// stateless Solve on every input (same optimal objective; the plan may be a
// different vertex of the same optimal face, with cost differences bounded
// by the Epsilon tie-breaking term).
//
// The cache automatically resets whenever the ledger's network changes
// identity or the solve slot is neither the cached slot (a shedding retry)
// nor its immediate successor. A Solver is not safe for concurrent use;
// parallel drivers must give each goroutine its own instance.
type Solver struct {
	conf Config

	nw    *netmodel.Network
	prevT int
	valid bool
	tg    *timegraph.Graph
	basis *lp.Basis
	cols  []modelKey
	rows  []modelKey
	// bld is the recycled LP builder: every solve reuses its previous
	// model's backing allocations, so steady-state iteration assembles each
	// slot's LP with almost no garbage. pbld is its PricingPath
	// counterpart, recycling the path master's model, registries, arenas
	// and per-worker PathFinder state across slots.
	bld  *builder
	pbld *pathBuilder

	// retain holds, per (src, dst) pair, the node sequences of the path
	// columns active in the previous slot's optimum. The next slot's path
	// master re-materializes them (shifted to each new file's release
	// layer) before its first pricing round, so the restricted master
	// starts from last slot's proven routes instead of artificials alone.
	retain map[netmodel.Link][][]netmodel.DC

	stats SolveStats
}

// NewSolver creates an incremental solver with the given configuration
// (nil selects defaults, exactly as Solve does).
func NewSolver(cfg *Config) *Solver {
	return &Solver{conf: cfg.withDefaults()}
}

// Stats returns the cumulative work counters.
func (s *Solver) Stats() SolveStats { return s.stats }

// Reset drops all cached state; the next Solve cold-starts. Counters are
// preserved.
func (s *Solver) Reset() {
	s.nw = nil
	s.prevT = 0
	s.valid = false
	s.tg = nil
	s.basis = nil
	s.cols = nil
	s.rows = nil
	// Retained paths name datacenters of the old network; a different
	// network invalidates them wholesale.
	clear(s.retain)
}

// Solve computes the optimal Postcard plan for the files generated at slot
// t, exactly as the package-level Solve does, while maintaining the
// cross-slot cache. See Solver for the reuse contract.
func (s *Solver) Solve(ledger *netmodel.Ledger, files []netmodel.File, t int) (*Result, error) {
	nw := ledger.Network()
	if s.nw != nw || (s.valid && t != s.prevT && t != s.prevT+1) {
		s.Reset()
		s.nw = nw
	}
	if len(files) == 0 {
		// No model to solve; the cached structure stays valid for slot t+1
		// because all keys use absolute slots.
		if s.valid {
			s.prevT = t
		}
		return emptyResult(ledger), nil
	}
	horizon, err := requiredHorizon(nw, files, t)
	if err != nil {
		return nil, err
	}
	tg, err := s.graphFor(nw, t, horizon)
	if err != nil {
		return nil, err
	}
	if s.conf.Pricing == PricingPath {
		return s.solvePath(tg, ledger, files, t)
	}
	b, err := prepare(tg, ledger, files, s.conf, s.bld)
	if err != nil {
		return nil, err
	}
	s.bld = b
	opts := s.conf.lpOptions()
	opts.Presolve = true
	snapshot := false
	if s.valid && s.basis != nil {
		opts.InitialBasis = mapBasis(s.basis, s.cols, s.rows, b)
		snapshot = opts.InitialBasis != nil
	}
	if opts.InitialBasis == nil {
		// First solve of a run (or an unusable snapshot): start from the
		// crash basis rather than the bare all-logical one, exactly like the
		// stateless cold path.
		opts.InitialBasis = crashBasis(b)
	}
	res, sol, err := b.solve(&opts)
	if err != nil {
		return nil, err
	}
	// WarmStarted is a statement about solver state carried across slots,
	// not about the synthesized crash basis: a crash-started solve is still
	// a cold solve to every observer of these counters.
	res.WarmStarted = res.WarmStarted && snapshot
	s.record(res)
	s.cache(t, sol, b.colKeys, b.rowKeys)
	return res, nil
}

// solvePath is the PricingPath branch of Solve: the Dantzig–Wolfe path
// master, warm-started from the previous slot's basis through the same
// structural-key translation the arc branch uses (demand rows and path
// columns carry file identity and a path hash, so same-slot shedding
// retries reuse the surviving files' resting states wholesale), with the
// arc-model fallback when the master cannot serve every file.
func (s *Solver) solvePath(tg *timegraph.Graph, ledger *netmodel.Ledger, files []netmodel.File, t int) (*Result, error) {
	reach, err := routability(tg, files, s.conf)
	if err != nil {
		return nil, err
	}
	pb := newPathBuilder(s.pbld, tg, ledger, files, reach, s.conf)
	s.pbld = pb
	if err := pb.build(); err != nil {
		return nil, err
	}
	// Seed the restricted master with the previous slot's active paths
	// before the first pricing round, so generation starts from proven
	// routes instead of re-deriving them from artificials.
	recycled, err := s.seedRetainedPaths(pb)
	if err != nil {
		return nil, err
	}
	opts := s.conf.lpOptions()
	opts.Presolve = true
	snapshot := false
	if s.valid && s.basis != nil {
		if out, rowStat := mapKeys(s.basis, s.cols, s.rows, pb.colKeys, pb.rowKeys); out != nil {
			pathCrashNewFiles(out, rowStat, pb)
			opts.InitialBasis = out.Normalize()
			snapshot = true
		}
	}
	if opts.InitialBasis == nil {
		opts.InitialBasis = pathCrashBasis(pb)
	}
	res, sol, fallback, err := pb.solve(&opts)
	if err != nil {
		return nil, err
	}
	res.WarmStarted = res.WarmStarted && snapshot
	res.PathRecycled = recycled
	if fallback {
		res, err = solveArcFallback(tg, ledger, files, reach, s.conf, res)
		if err != nil {
			return nil, err
		}
	} else {
		s.harvestPaths(pb, sol)
	}
	s.record(res)
	s.stats.PathSolves++
	s.cache(t, sol, pb.colKeys, pb.rowKeys)
	return res, nil
}

// maxRetainedPaths caps how many node sequences one (src, dst) pair
// retains across slots; the previous optimum rarely splits one pair's
// demand across more routes than this, and the cap bounds the seeding work
// on adversarial optima.
const maxRetainedPaths = 8

// harvestPaths records the node sequences of the path columns that carry
// flow in the slot's optimum, keyed by (src, dst), replacing the previous
// harvest. Node sequences — not edge indices — survive Rebase and apply to
// next slot's files at any release layer.
func (s *Solver) harvestPaths(pb *pathBuilder, sol *lp.Solution) {
	const tol = 1e-5
	if s.retain == nil {
		s.retain = make(map[netmodel.Link][][]netmodel.DC)
	}
	clear(s.retain)
	for _, c := range pb.cols {
		if sol.Value(c.v) <= tol {
			continue
		}
		f := pb.files[c.file]
		key := netmodel.Link{From: f.Src, To: f.Dst}
		if len(s.retain[key]) >= maxRetainedPaths {
			continue
		}
		nodes := make([]netmodel.DC, 0, int(c.end-c.start)+1)
		nodes = append(nodes, f.Src)
		cur := f.Src
		contiguous := true
		for _, idx := range pb.arena[c.start:c.end] {
			e := pb.tg.Edge(int(idx))
			if e.From != cur {
				contiguous = false
				break
			}
			nodes = append(nodes, e.To)
			cur = e.To
		}
		if !contiguous || cur != f.Dst {
			continue
		}
		dup := false
		for _, p := range s.retain[key] {
			if dcSeqEqual(p, nodes) {
				dup = true
				break
			}
		}
		if !dup {
			s.retain[key] = append(s.retain[key], nodes)
		}
	}
}

// dcSeqEqual reports whether two node sequences are identical.
func dcSeqEqual(a, b []netmodel.DC) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seedRetainedPaths re-materializes the retained node sequences as path
// columns of the freshly built master: for each file, every retained path
// of its (src, dst) pair is shifted to the file's release layer, checked
// edge by edge against the graph, the storage policy and the file's
// reachability window (trailing destination holds that overrun a shorter
// deadline are trimmed), and grafted via the same materializePath the
// pricing oracle uses — so duplicates the oracle would regenerate are
// dropped and all lazily created rows follow the ordinary path. It returns
// the number of columns actually added.
func (s *Solver) seedRetainedPaths(pb *pathBuilder) (int, error) {
	if len(s.retain) == 0 {
		return 0, nil
	}
	horizon := pb.tg.Start() + pb.tg.Horizon()
	var edges []int32
	recycled := 0
	for k, f := range pb.files {
		paths := s.retain[netmodel.Link{From: f.Src, To: f.Dst}]
		if len(paths) == 0 {
			continue
		}
		r := pb.reach[k]
		for _, nodes := range paths {
			nsteps := len(nodes) - 1
			for nsteps > f.Deadline && nodes[nsteps] == f.Dst && nodes[nsteps-1] == f.Dst {
				nsteps--
			}
			if nsteps <= 0 || nsteps > f.Deadline || f.Release+nsteps > horizon {
				continue
			}
			edges = edges[:0]
			usable := true
			for i := 0; i < nsteps; i++ {
				from, to := nodes[i], nodes[i+1]
				slot := f.Release + i
				e, found := pb.tg.EdgeAt(from, to, slot)
				if !found {
					usable = false
					break
				}
				if e.Storage {
					switch pb.conf.Storage {
					case StorageEndpointsOnly:
						usable = from == f.Src || from == f.Dst
					case StorageNone:
						usable = false
					}
					if !usable {
						break
					}
				}
				if !r.Allowed(f, from, slot) || !r.Allowed(f, to, slot+1) {
					usable = false
					break
				}
				edges = append(edges, int32(e.Index))
			}
			if !usable {
				continue
			}
			before := len(pb.cols)
			if err := pb.materializePath(k, edges); err != nil {
				return recycled, err
			}
			if len(pb.cols) > before {
				recycled++
			}
		}
	}
	return recycled, nil
}

// record folds one solve's counters into the cumulative stats.
func (s *Solver) record(res *Result) {
	s.stats.Solves++
	s.stats.Iterations += res.Iterations
	s.stats.Phase1Iter += res.Phase1Iter
	s.stats.PresolveCols += res.PresolveCols
	s.stats.PresolveRows += res.PresolveRows
	s.stats.SparseSolves += res.SparseSolves
	s.stats.DenseSolves += res.DenseSolves
	s.stats.SolveNNZ += res.SolveNNZ
	s.stats.SolveDim += res.SolveDim
	s.stats.DevexResets += res.DevexResets
	s.stats.DualRecomputes += res.DualRecomputes
	if res.BackendWorkers > s.stats.BackendWorkers {
		s.stats.BackendWorkers = res.BackendWorkers
	}
	s.stats.DevexScans += res.DevexScans
	s.stats.ParallelScans += res.ParallelScans
	s.stats.SpecFtrans += res.SpecFtrans
	s.stats.SpecFtranHits += res.SpecFtranHits
	s.stats.PathRecycled += res.PathRecycled
	s.stats.VarUniverse += res.VarUniverse
	s.stats.PrunedVars += res.PrunedVars
	s.stats.PrunedRows += res.PrunedRows
	s.stats.ColGenRounds += res.ColGenRounds
	s.stats.ColGenColumns += res.ColGenColumns
	s.stats.ColGenUniverse += res.ColGenUniverse
	s.stats.ColGenRows += res.ColGenRows
	s.stats.PathFallbacks += res.PathFallbacks
	if res.WarmStarted {
		s.stats.WarmSolves++
	}
}

// cache stores the final resting state — also for infeasible outcomes,
// whose basis warm-starts the engine's shed-and-retry re-solve of the same
// slot with a subset of the files. The keys are copied: builders are
// recycled, so their own slices are clobbered by the next slot's build
// before the mapping reads them.
func (s *Solver) cache(t int, sol *lp.Solution, colKeys, rowKeys []modelKey) {
	s.prevT = t
	s.valid = true
	if sol.Basis != nil {
		s.basis = sol.Basis
		s.cols = append(s.cols[:0], colKeys...)
		s.rows = append(s.rows[:0], rowKeys...)
	} else {
		s.basis = nil
		s.cols = nil
		s.rows = nil
	}
}

// graphFor returns a time-expanded graph starting at t with at least the
// given horizon, recycling the cached skeleton when it is large enough.
// A recycled graph only ever has surplus layers, which contribute nothing
// to the assembled LP (see prepare), so recycling is invisible to results.
func (s *Solver) graphFor(nw *netmodel.Network, t, horizon int) (*timegraph.Graph, error) {
	if s.tg != nil && s.tg.Horizon() >= horizon {
		if err := s.tg.Rebase(t); err == nil {
			s.stats.GraphReuses++
			return s.tg, nil
		}
	}
	tg, err := timegraph.Build(nw, t, horizon)
	if err != nil {
		return nil, err
	}
	s.tg = tg
	return tg, nil
}

// crashBasis builds the advanced starting basis for a from-scratch solve:
// the all-logical cold default upgraded by crashNewFiles, so every file
// starts with its crash route (immediate shortest-hop shipment, then
// destination holdovers) basic instead of resting at zero flow. The implied
// basic point already routes each file end to end, so phase 1 only repairs
// capacity overflows where crash routes collide — a handful of pivots
// instead of re-deriving every route by simplex steps.
func crashBasis(b *builder) *lp.Basis {
	nv, nr := len(b.colKeys), len(b.rowKeys)
	out := &lp.Basis{NumVars: nv, NumRows: nr, Status: make([]lp.BasisStatus, nv+nr)}
	for j := 0; j < nv; j++ {
		out.Status[j] = lp.BasisAtLower
	}
	for i := 0; i < nr; i++ {
		out.Status[nv+i] = lp.BasisBasic
	}
	crashNewFiles(out, nil, b)
	return out.Normalize()
}

// mapBasis translates a basis snapshot captured on a previous model onto
// the builder's freshly assembled model. Columns and rows whose structural
// keys match carry their status over; unmatched columns rest at their lower
// bound and unmatched rows keep their logicals basic (the cold default for
// that position) — except that files absent from the previous model get a
// crash route made basic (see crashNewFiles). The result is normalized to
// the exact basic count the warm-start path requires; any residual rank
// deficiency is left to the LU factorization's singularity repair. Only map
// lookups are used — never map iteration — so the mapping is
// bit-deterministic.
func mapBasis(prev *lp.Basis, prevCols, prevRows []modelKey, b *builder) *lp.Basis {
	out, rowStat := mapKeys(prev, prevCols, prevRows, b.colKeys, b.rowKeys)
	if out == nil {
		return nil
	}
	crashNewFiles(out, rowStat, b)
	return out.Normalize()
}

// mapKeys performs the formulation-independent half of basis translation:
// columns and rows whose structural keys match carry their status over,
// unmatched columns rest at their lower bound and unmatched rows keep their
// logicals basic. The previous rows' status map is returned so the caller's
// crash upgrade can tell carried files from new ones. The caller normalizes
// after its upgrade. Only map lookups are used — never map iteration — so
// the mapping is bit-deterministic.
func mapKeys(prev *lp.Basis, prevCols, prevRows, curCols, curRows []modelKey) (*lp.Basis, map[modelKey]lp.BasisStatus) {
	if prev == nil || prev.NumVars != len(prevCols) || prev.NumRows != len(prevRows) ||
		len(prev.Status) != prev.NumVars+prev.NumRows {
		return nil, nil
	}
	colStat := make(map[modelKey]lp.BasisStatus, len(prevCols))
	for j, k := range prevCols {
		colStat[k] = prev.Status[j]
	}
	rowStat := make(map[modelKey]lp.BasisStatus, len(prevRows))
	for i, k := range prevRows {
		rowStat[k] = prev.Status[prev.NumVars+i]
	}
	nv, nr := len(curCols), len(curRows)
	out := &lp.Basis{NumVars: nv, NumRows: nr, Status: make([]lp.BasisStatus, nv+nr)}
	for j, k := range curCols {
		if st, ok := colStat[k]; ok {
			out.Status[j] = st
		} else {
			out.Status[j] = lp.BasisAtLower
		}
	}
	for i, k := range curRows {
		if st, ok := rowStat[k]; ok {
			out.Status[nv+i] = st
		} else {
			out.Status[nv+i] = lp.BasisBasic
		}
	}
	return out, rowStat
}

// crashNewFiles upgrades the mapped basis for files the previous model did
// not contain (on consecutive-slot solves that is all of them; on same-slot
// shedding retries, none). The cold default rests every such file's flow
// columns at zero, which violates its conservation equalities by the full
// file size and leaves phase 1 to route the file from scratch. Instead, each
// new file's cheapest crash route — ship along a BFS shortest-hop path
// immediately, then hold at the destination until the deadline — is made
// basic: every route column is paired with the conservation row of its tail
// node, whose logical leaves the basis. Walked in route order the pairs form
// a lower-triangular block (each column's head row is the next column's tail
// row, and the final head row keeps its basic logical), so the crash never
// makes the basis singular, and the implied basic solution already carries
// the file end to end — phase 1 only has to repair capacity overflows where
// crash routes collide. Files whose route columns are missing (storage
// policy, clamped horizon) keep the cold default.
func crashNewFiles(out *lp.Basis, prevRowStat map[modelKey]lp.BasisStatus, b *builder) {
	var consRow map[modelKey]int
	for k := range b.files {
		cols, rows, ok := b.crashRoute(k)
		if !ok {
			continue
		}
		// A file the previous basis already covers (same-slot retry) keeps
		// its mapped — optimal — statuses.
		if _, carried := prevRowStat[rows[0]]; carried {
			continue
		}
		if consRow == nil {
			consRow = make(map[modelKey]int)
			for i, rk := range b.rowKeys {
				if rk.kind == kindCons {
					consRow[rk] = i
				}
			}
		}
		// Flip pairs only if every pair is flippable, so the basic count
		// stays unchanged and the triangular-block argument covers the whole
		// route.
		flippable := true
		for i := range cols {
			ri, ok := consRow[rows[i]]
			if !ok || out.Status[out.NumVars+ri] != lp.BasisBasic || out.Status[cols[i]] == lp.BasisBasic {
				flippable = false
				break
			}
		}
		if !flippable {
			continue
		}
		for i := range cols {
			out.Status[cols[i]] = lp.BasisBasic
			out.Status[out.NumVars+consRow[rows[i]]] = lp.BasisAtLower
		}
	}
}

// crashRoute returns the crash route of file k as parallel column/row-key
// slices: one model column per route edge (shortest-hop path transfers,
// then destination holdovers up to the deadline layer) and the
// conservation-row key of that edge's tail node. ok is false when any
// needed column is absent from the model.
func (b *builder) crashRoute(k int) (cols []lp.VarID, rows []modelKey, ok bool) {
	f := b.files[k]
	path, ok := shortestHopPath(b.tg.Network(), f.Src, f.Dst)
	if !ok {
		return nil, nil, false
	}
	hops := len(path) - 1
	deadlineLayer := f.Release + f.Deadline
	if clamp := b.tg.Start() + b.tg.Horizon(); deadlineLayer > clamp {
		deadlineLayer = clamp
	}
	if f.Release+hops > deadlineLayer {
		return nil, nil, false
	}
	step := func(from, to netmodel.DC, slot int) bool {
		e, found := b.tg.EdgeAt(from, to, slot)
		if !found {
			return false
		}
		v := b.mvars[k][e.Index]
		if v < 0 {
			return false
		}
		cols = append(cols, v)
		rows = append(rows, modelKey{kind: kindCons, file: f.ID, from: from, to: -1, slot: slot})
		return true
	}
	for i := 0; i < hops; i++ {
		if !step(path[i], path[i+1], f.Release+i) {
			return nil, nil, false
		}
	}
	for s := f.Release + hops; s < deadlineLayer; s++ {
		if !step(f.Dst, f.Dst, s) {
			return nil, nil, false
		}
	}
	return cols, rows, true
}

// shortestHopPath returns a BFS shortest path from src to dst over the
// network's links, deterministic because neighbors are scanned in ascending
// datacenter order.
func shortestHopPath(nw *netmodel.Network, src, dst netmodel.DC) ([]netmodel.DC, bool) {
	n := nw.NumDCs()
	prev := make([]netmodel.DC, n)
	for i := range prev {
		prev[i] = -1
	}
	seen := make([]bool, n)
	seen[src] = true
	queue := []netmodel.DC{src}
	for len(queue) > 0 && !seen[dst] {
		u := queue[0]
		queue = queue[1:]
		for v := 0; v < n; v++ {
			d := netmodel.DC(v)
			if !seen[v] && nw.HasLink(u, d) {
				seen[v] = true
				prev[v] = u
				queue = append(queue, d)
			}
		}
	}
	if !seen[dst] {
		return nil, false
	}
	var rev []netmodel.DC
	for d := dst; d != -1; d = prev[d] {
		rev = append(rev, d)
	}
	path := make([]netmodel.DC, len(rev))
	for i, d := range rev {
		path[len(rev)-1-i] = d
	}
	return path, true
}
