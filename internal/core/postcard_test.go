package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
)

func newLedger(t *testing.T, nw *netmodel.Network) *netmodel.Ledger {
	t.Helper()
	l, err := netmodel.NewLedger(nw, netmodel.MaxCharging(100))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mustSolve(t *testing.T, ledger *netmodel.Ledger, files []netmodel.File, slot int) *Result {
	t.Helper()
	res, err := Solve(ledger, files, slot, nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status = %v, want optimal", res.Status)
	}
	return res
}

// TestFig1MotivatingExample reproduces the paper's Fig. 1: a 6 MB file from
// D2 to D3 within 3 slots. Sending directly costs 20 per interval; the
// optimal plan pipelines two 3 MB blocks through D1 for a cost of 12.
func TestFig1MotivatingExample(t *testing.T) {
	nw, file, err := netmodel.Fig1Topology()
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	res := mustSolve(t, ledger, []netmodel.File{file}, 0)
	if math.Abs(res.CostPerSlot-12) > 1e-6 {
		t.Errorf("Postcard cost = %v, want 12 (paper Fig. 1b)", res.CostPerSlot)
	}
	// The direct transfer at the desired rate costs 10 * 2 = 20.
	direct := nw.Price(file.Src, file.Dst) * file.DesiredRate()
	if math.Abs(direct-20) > 1e-9 {
		t.Fatalf("direct cost = %v, want 20 (paper Fig. 1a)", direct)
	}
	if res.CostPerSlot >= direct {
		t.Errorf("Postcard %v should beat direct %v", res.CostPerSlot, direct)
	}
}

// TestFig3WorkedExample reproduces the worked example of Sec. V: Postcard's
// optimum is 32.67 per interval versus 52 without routing or scheduling.
func TestFig3WorkedExample(t *testing.T) {
	nw, files, err := netmodel.Fig3Topology(3)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	res := mustSolve(t, ledger, files, 3)
	want := 30 + 8.0/3.0 // 32.67 in the paper
	if math.Abs(res.CostPerSlot-want) > 1e-5 {
		t.Errorf("Postcard cost = %v, want %v (paper Sec. V)", res.CostPerSlot, want)
	}
	// The mechanism matters, not just the number: the plan must hold data
	// (store-and-forward) and reuse the already-paid D1->D4 link in the
	// last two slots.
	holds := 0.0
	for _, a := range res.Schedule.Actions() {
		if a.IsHold() {
			holds += a.Amount
		}
	}
	if holds <= 0 {
		t.Error("expected holdovers at intermediate datacenters, got none")
	}
	late14 := res.Schedule.TransferVolume(0, 3, 5) + res.Schedule.TransferVolume(0, 3, 6)
	if late14 < 7.9 {
		t.Errorf("expected ~8 GB forwarded on D1->D4 during slots 5-6, got %v", late14)
	}
}

// TestFig3ChargeFloorReused checks the online property: after File 2 is
// committed, the charged volume on D1->D4 is 5, and a later file can ride
// under that charge for free.
func TestFig3ChargeFloorReused(t *testing.T) {
	nw, files, err := netmodel.Fig3Topology(3)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	// Commit File 2 alone first.
	res2 := mustSolve(t, ledger, files[1:], 3)
	if err := res2.Schedule.Apply(ledger); err != nil {
		t.Fatal(err)
	}
	if got := ledger.ChargedVolume(0, 3); math.Abs(got-5) > 1e-6 {
		t.Fatalf("charged volume on D1->D4 = %v, want 5", got)
	}
	costAfter2 := ledger.CostPerSlot()
	// Now solve File 1 at slot 3 with the ledger state.
	res1, err := Solve(ledger, files[:1], 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Status != lp.Optimal {
		t.Fatalf("status = %v", res1.Status)
	}
	// The marginal cost of File 1 must be only the D2->D1 trickle (8/3).
	if marginal := res1.CostPerSlot - costAfter2; math.Abs(marginal-8.0/3.0) > 1e-5 {
		t.Errorf("marginal cost = %v, want 8/3", marginal)
	}
	if err := res1.Schedule.Apply(ledger); err != nil {
		t.Fatal(err)
	}
	if got := ledger.CostPerSlot(); math.Abs(got-(30+8.0/3.0)) > 1e-5 {
		t.Errorf("final cost per slot = %v, want 32.67", got)
	}
}

func TestEmptyFileSet(t *testing.T) {
	nw, _, err := netmodel.Fig1Topology()
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	res, err := Solve(ledger, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal || res.Schedule.Len() != 0 || res.CostPerSlot != 0 {
		t.Errorf("empty solve: %+v", res)
	}
}

func TestCapacityForcesMultipath(t *testing.T) {
	// Two DCs with a single direct link of capacity 4: a 10 GB file with
	// deadline 2 cannot fit (needs 5/slot); adding a relay makes it
	// feasible via multipath.
	nw, err := netmodel.NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(0, 1, 1, 4); err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	file := netmodel.File{ID: 1, Src: 0, Dst: 1, Size: 10, Deadline: 2, Release: 0}
	res, err := Solve(ledger, []netmodel.File{file}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Infeasible {
		t.Fatalf("status = %v, want infeasible (8 GB of capacity for 10 GB)", res.Status)
	}
	// Add relay links 0->2->1 with capacity 4 each.
	if err := nw.SetLink(0, 2, 1, 4); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(2, 1, 1, 4); err != nil {
		t.Fatal(err)
	}
	res = mustSolve(t, ledger, []netmodel.File{file}, 0)
	if res.Schedule.TotalTransferred() < 10 {
		t.Errorf("transferred %v link-GB, want >= 10", res.Schedule.TotalTransferred())
	}
}

func TestUnroutableFileReported(t *testing.T) {
	// 0 -> 1 -> 2 chain: deadline 1 cannot cover two hops.
	nw, err := netmodel.NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(0, 1, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(1, 2, 1, 10); err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	file := netmodel.File{ID: 7, Src: 0, Dst: 2, Size: 1, Deadline: 1, Release: 0}
	_, err = Solve(ledger, []netmodel.File{file}, 0, nil)
	var ue *UnroutableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want UnroutableError", err)
	}
	if len(ue.FileIDs) != 1 || ue.FileIDs[0] != 7 {
		t.Errorf("FileIDs = %v, want [7]", ue.FileIDs)
	}
}

func TestReleaseBeforeSolveSlotRejected(t *testing.T) {
	nw, file, err := netmodel.Fig1Topology()
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	file.Release = 0
	if _, err := Solve(ledger, []netmodel.File{file}, 5, nil); err == nil {
		t.Error("expected error for file released before solve slot")
	}
}

func TestDeadlineRespectedUnderCongestion(t *testing.T) {
	// Deadline-1 file competes with a delay-tolerant file on the same
	// link: the urgent one must win the early slot.
	nw, err := netmodel.NewNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(0, 1, 3, 10); err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	files := []netmodel.File{
		{ID: 1, Src: 0, Dst: 1, Size: 10, Deadline: 1, Release: 0},
		{ID: 2, Src: 0, Dst: 1, Size: 10, Deadline: 4, Release: 0},
	}
	res := mustSolve(t, ledger, files, 0)
	if got := res.Schedule.TransferVolume(0, 1, 0); math.Abs(got-10) > 1e-6 {
		t.Errorf("slot-0 volume = %v, want 10 (urgent file fills the slot)", got)
	}
	// Total charged volume should be 10 (peak), not 20: the tolerant file
	// is spread under the same peak... but slot 0 is full, so it uses
	// later slots up to 10/slot free.
	if math.Abs(res.CostPerSlot-30) > 1e-6 {
		t.Errorf("cost = %v, want 30 (X = 10 at price 3)", res.CostPerSlot)
	}
}

// TestStoreAndForwardBeatsNoStorage builds the situation the paper's
// evaluation highlights: with throttled capacity, a delay-tolerant file can
// ride a paid link later, which requires storage at a relay.
func TestStoreAndForwardBeatsNoStorage(t *testing.T) {
	nw, files, err := netmodel.Fig3Topology(0)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	res := mustSolve(t, ledger, files, 0)
	// Evaluating the same instance while forbidding holds: strip storage by
	// checking the best schedule has holds; the cost gap versus the
	// flow-style bound (50, from the paper) proves storage helped.
	if res.CostPerSlot >= 50 {
		t.Errorf("Postcard %v should beat the no-storage flow bound 50", res.CostPerSlot)
	}
}

func TestScheduleVerifiesAgainstIndependentChecker(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(4)
		nw, err := netmodel.Complete(n, func(i, j netmodel.DC) float64 {
			return 1 + 9*rng.Float64()
		}, 20+30*rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		ledger := newLedger(t, nw)
		var files []netmodel.File
		for k := 0; k < 1+rng.Intn(5); k++ {
			src := netmodel.DC(rng.Intn(n))
			dst := netmodel.DC((int(src) + 1 + rng.Intn(n-1)) % n)
			files = append(files, netmodel.File{
				ID:       k + 1,
				Src:      src,
				Dst:      dst,
				Size:     1 + 15*rng.Float64(),
				Deadline: 1 + rng.Intn(4),
				Release:  0,
			})
		}
		res, err := Solve(ledger, files, 0, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Status != lp.Optimal {
			continue
		}
		// Solve already verifies internally; re-verify here explicitly and
		// also check the ledger application is consistent.
		vc := schedule.VerifyConfig{Residual: func(i, j netmodel.DC, slot int) float64 {
			return ledger.Residual(i, j, slot)
		}}
		if err := schedule.Verify(res.Schedule, nw, files, vc); err != nil {
			t.Fatalf("trial %d: verify: %v", trial, err)
		}
		clone := ledger.Clone()
		if err := res.Schedule.Apply(clone); err != nil {
			t.Fatalf("trial %d: apply: %v", trial, err)
		}
		if got := clone.CostPerSlot(); math.Abs(got-res.CostPerSlot) > 1e-5*(1+res.CostPerSlot) {
			t.Fatalf("trial %d: ledger cost %v != LP cost %v", trial, got, res.CostPerSlot)
		}
	}
}

// TestOnlineMonotoneCost checks that committing schedules slot after slot
// only ever increases the charged cost (X is a running max).
func TestOnlineMonotoneCost(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	nw, err := netmodel.Complete(5, func(i, j netmodel.DC) float64 { return 1 + 9*rng.Float64() }, 40)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	prev := 0.0
	id := 0
	for slot := 0; slot < 6; slot++ {
		var files []netmodel.File
		for k := 0; k < 1+rng.Intn(3); k++ {
			id++
			src := netmodel.DC(rng.Intn(5))
			dst := netmodel.DC((int(src) + 1 + rng.Intn(4)) % 5)
			files = append(files, netmodel.File{
				ID: id, Src: src, Dst: dst,
				Size: 5 + 20*rng.Float64(), Deadline: 1 + rng.Intn(3), Release: slot,
			})
		}
		res, err := Solve(ledger, files, slot, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != lp.Optimal {
			t.Fatalf("slot %d: status %v", slot, res.Status)
		}
		if res.CostPerSlot < prev-1e-7 {
			t.Fatalf("slot %d: cost %v dropped below previous %v", slot, res.CostPerSlot, prev)
		}
		if err := res.Schedule.Apply(ledger); err != nil {
			t.Fatal(err)
		}
		got := ledger.CostPerSlot()
		if math.Abs(got-res.CostPerSlot) > 1e-5*(1+got) {
			t.Fatalf("slot %d: ledger cost %v != LP cost %v", slot, got, res.CostPerSlot)
		}
		prev = got
	}
}
