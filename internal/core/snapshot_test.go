package core

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
)

// TestSolverSnapshotResumesBitIdentical drives two solvers over the same
// slot chain: A runs uninterrupted; B is built mid-horizon from A's JSON
// snapshot (as the postcard-server restart path does) and continues over a
// ledger restored from its own snapshot. Every remaining slot must produce
// bit-identical costs and schedules, and B's first solve must warm-start —
// the restored basis, not a cold crash basis, drives the resumed plans.
func TestSolverSnapshotResumesBitIdentical(t *testing.T) {
	nw := chainNetwork(t, 5, 60)
	ledgerA, err := netmodel.NewLedger(nw, netmodel.MaxCharging(64))
	if err != nil {
		t.Fatal(err)
	}
	solverA := NewSolver(nil)
	const cut, slots = 4, 9
	rng := rand.New(rand.NewSource(7))
	var chain [][]netmodel.File
	nextID := 0
	for slot := 0; slot < slots; slot++ {
		files := chainFiles(rng, nw, slot, nextID)
		nextID += len(files)
		chain = append(chain, files)
	}
	for slot := 0; slot < cut; slot++ {
		res, err := solverA.Solve(ledgerA, chain[slot], slot)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		if err := res.Schedule.Apply(ledgerA); err != nil {
			t.Fatal(err)
		}
	}

	// Kill/restart: everything crosses JSON, as the on-disk snapshot does.
	rawSolver, err := json.Marshal(solverA.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	rawLedger, err := json.Marshal(ledgerA.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var solverSnap SolverSnapshot
	if err := json.Unmarshal(rawSolver, &solverSnap); err != nil {
		t.Fatal(err)
	}
	var ledgerSnap netmodel.LedgerSnapshot
	if err := json.Unmarshal(rawLedger, &ledgerSnap); err != nil {
		t.Fatal(err)
	}
	ledgerB, err := netmodel.LedgerFromSnapshot(nw, &ledgerSnap)
	if err != nil {
		t.Fatal(err)
	}
	solverB := NewSolver(nil)
	solverB.Restore(nw, &solverSnap)
	if got, want := solverB.Stats(), solverA.Stats(); got != want {
		t.Fatalf("restored stats %+v, want %+v", got, want)
	}

	for slot := cut; slot < slots; slot++ {
		resA, err := solverA.Solve(ledgerA, chain[slot], slot)
		if err != nil {
			t.Fatalf("slot %d: A: %v", slot, err)
		}
		resB, err := solverB.Solve(ledgerB, chain[slot], slot)
		if err != nil {
			t.Fatalf("slot %d: B: %v", slot, err)
		}
		if slot == cut && !resB.WarmStarted {
			t.Error("restored solver's first solve did not warm-start")
		}
		if resA.CostPerSlot != resB.CostPerSlot {
			t.Errorf("slot %d: cost A %v != B %v", slot, resA.CostPerSlot, resB.CostPerSlot)
		}
		if !reflect.DeepEqual(resA.Schedule.Actions(), resB.Schedule.Actions()) {
			t.Errorf("slot %d: schedules diverge after restore", slot)
		}
		if err := resA.Schedule.Apply(ledgerA); err != nil {
			t.Fatal(err)
		}
		if err := resB.Schedule.Apply(ledgerB); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := ledgerA.CostPerSlot(), ledgerB.CostPerSlot(); a != b {
		t.Errorf("final ledger cost A %v != B %v", a, b)
	}
}

// TestSolverSnapshotColdAndInvalid pins the degraded paths: a cold solver
// snapshots only its counters, and a snapshot with inconsistent shapes
// restores the counters but leaves the solver cold instead of feeding the
// simplex a corrupt basis.
func TestSolverSnapshotColdAndInvalid(t *testing.T) {
	s := NewSolver(nil)
	snap := s.Snapshot()
	if snap.Valid || snap.Basis != nil {
		t.Fatalf("cold solver snapshot claims warm state: %+v", snap)
	}
	nw := chainNetwork(t, 3, 50)
	s2 := NewSolver(nil)
	s2.Restore(nw, snap)
	if s2.valid {
		t.Error("restoring a cold snapshot marked the solver warm")
	}
	s2.Restore(nw, nil)
	if s2.valid {
		t.Error("restoring a nil snapshot marked the solver warm")
	}

	// Corrupt shape: basis dimensions disagree with the key lists.
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(16))
	if err != nil {
		t.Fatal(err)
	}
	warm := NewSolver(nil)
	if _, err := warm.Solve(ledger, []netmodel.File{{ID: 1, Src: 0, Dst: 1, Size: 5, Deadline: 2}}, 0); err != nil {
		t.Fatal(err)
	}
	bad := warm.Snapshot()
	if !bad.Valid {
		t.Fatal("solved solver snapshot not valid")
	}
	bad.Cols = bad.Cols[:len(bad.Cols)-1]
	s3 := NewSolver(nil)
	s3.Restore(nw, bad)
	if s3.valid {
		t.Error("shape-inconsistent snapshot accepted as warm state")
	}
	if s3.Stats() != bad.Stats {
		t.Error("counters not restored from degraded snapshot")
	}
}
