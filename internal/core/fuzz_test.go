package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
)

// FuzzPrunedModelObjective cross-checks the sparse model construction —
// deadline-reachability pruning plus delayed column generation — against
// the fully materialized, unpruned model on randomly generated instances.
// The fuzzer drives the topology (a random ring-plus-chords overlay, so hop
// distances exceed one and pruning actually removes variables), capacities,
// prices, the file mix, and pre-committed ledger traffic; all four on/off
// combinations of the two switches must report the identical LP status and,
// when optimal, the identical objective up to the Epsilon tie-breaking
// term, with a verified schedule (Solve runs its independent verification
// pass on every returned plan).
func FuzzPrunedModelObjective(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(40), uint8(60), false)
	f.Add(int64(2), uint8(6), uint8(5), uint8(12), uint8(30), true)
	f.Add(int64(3), uint8(3), uint8(1), uint8(200), uint8(0), false)
	f.Add(int64(4), uint8(8), uint8(7), uint8(25), uint8(90), true)
	f.Add(int64(5), uint8(5), uint8(4), uint8(8), uint8(50), false)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, filesRaw, capRaw, loadRaw uint8, tight bool) {
		n := 3 + int(nRaw)%6                // 3-8 datacenters
		nFiles := 1 + int(filesRaw)%6       // 1-6 files
		capacity := 4 + float64(int(capRaw)%200) // GB/slot
		rng := rand.New(rand.NewSource(seed))

		nw, err := netmodel.NewNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		// Ring backbone keeps every pair routable; random chords vary the
		// hop metric that drives both pruning and crash routes.
		addLink := func(i, j int) {
			price := 1 + float64(rng.Intn(9))
			if err := nw.SetLink(netmodel.DC(i), netmodel.DC(j), price, capacity); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			addLink(i, (i+1)%n)
			addLink((i+1)%n, i)
		}
		chords := rng.Intn(n)
		for c := 0; c < chords; c++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j && !nw.HasLink(netmodel.DC(i), netmodel.DC(j)) {
				addLink(i, j)
			}
		}

		ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(32))
		if err != nil {
			t.Fatal(err)
		}
		// Pre-committed traffic so residual capacities and charged-volume
		// floors are non-trivial.
		for c := 0; c < int(loadRaw)%8; c++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if !nw.HasLink(netmodel.DC(i), netmodel.DC(j)) {
				continue
			}
			amt := capacity * rng.Float64() * 0.8
			if err := ledger.Add(netmodel.DC(i), netmodel.DC(j), rng.Intn(4), amt); err != nil {
				t.Fatal(err)
			}
		}

		files := make([]netmodel.File, nFiles)
		for k := range files {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			if src == dst {
				dst = (dst + 1) % n
			}
			deadline := 1 + rng.Intn(6)
			if tight {
				deadline = 1 + rng.Intn(2)
			}
			files[k] = netmodel.File{
				ID:       k,
				Src:      netmodel.DC(src),
				Dst:      netmodel.DC(dst),
				Size:     0.5 + 20*rng.Float64(),
				Release:  rng.Intn(3),
				Deadline: deadline,
			}
		}
		solveAt := 0

		configs := []Config{
			{},                           // pruning + column generation (default)
			{DisableColGen: true},        // pruning only
			{DisablePruning: true},       // column generation only
			{DisableColGen: true, DisablePruning: true}, // full model
		}
		results := make([]*Result, len(configs))
		for i := range configs {
			res, err := Solve(ledger, files, solveAt, &configs[i])
			if err != nil {
				var ue *UnroutableError
				if errors.As(err, &ue) {
					// Structural unroutability must be config-independent:
					// every other config must agree.
					for j := range configs {
						if _, err2 := Solve(ledger, files, solveAt, &configs[j]); !errors.As(err2, &ue) {
							t.Fatalf("config %d rejected the instance as unroutable but config %d did not: %v", i, j, err2)
						}
					}
					t.Skip("unroutable instance")
				}
				t.Fatalf("config %+v: %v", configs[i], err)
			}
			results[i] = res
		}
		ref := results[len(configs)-1] // full model
		for i, res := range results {
			if res.Status != ref.Status {
				t.Fatalf("config %+v: status %v, full model %v", configs[i], res.Status, ref.Status)
			}
			if res.Status != lp.Optimal {
				continue
			}
			tol := 1e-3 * (1 + math.Abs(ref.CostPerSlot))
			if math.Abs(res.CostPerSlot-ref.CostPerSlot) > tol {
				t.Fatalf("config %+v: objective %v, full model %v (diff %g)",
					configs[i], res.CostPerSlot, ref.CostPerSlot,
					math.Abs(res.CostPerSlot-ref.CostPerSlot))
			}
		}
		// The universe accounting must tie out: pruned + kept == unpruned.
		sparse, dense := results[0], results[len(configs)-1]
		if sparse.VarUniverse+sparse.PrunedVars != dense.VarUniverse {
			t.Fatalf("universe accounting: kept %d + pruned %d != unpruned %d",
				sparse.VarUniverse, sparse.PrunedVars, dense.VarUniverse)
		}
	})
}
