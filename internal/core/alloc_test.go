package core

import (
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/timegraph"
)

// TestPrepareRecycledAllocs pins the buffer-reuse property of the LP
// construction path: once a recycled builder has been through one slot, a
// subsequent prepare — model reset, variable universe walk, crash-route
// marking, and every capacity/charge/conservation row — must stay within a
// small constant allocation budget. The residue is the per-file
// reachability bookkeeping (BFS distance vectors and the crash-route path),
// which is O(files x DCs) small slices; the model rows, columns, key
// registries and pricing registries must all come from the recycled
// backing. A regression here turns every slot of a long simulation back
// into an allocation storm (see TestSteadyStateIterationAllocs for the
// same property one layer down).
func TestPrepareRecycledAllocs(t *testing.T) {
	nw := chainNetwork(t, 6, 50)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(64))
	if err != nil {
		t.Fatal(err)
	}
	files := []netmodel.File{
		{ID: 0, Src: 0, Dst: 3, Size: 9, Release: 0, Deadline: 3},
		{ID: 1, Src: 1, Dst: 5, Size: 14, Release: 0, Deadline: 2},
		{ID: 2, Src: 4, Dst: 2, Size: 6, Release: 1, Deadline: 3},
	}
	tg, err := timegraph.Build(nw, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	conf := (*Config)(nil).withDefaults()
	b, err := prepare(tg, ledger, files, conf, nil)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		b, err = prepare(tg, ledger, files, conf, b)
		if err != nil {
			t.Fatal(err)
		}
	})
	// 3 files x (2 BFS passes + crash-route path) of small slices, plus the
	// per-call reachability header; everything else is recycled. Measured
	// 58; the bound carries ~50% headroom.
	const budget = 90
	t.Logf("allocs/slot: %.1f", allocs)
	if allocs > budget {
		t.Fatalf("recycled prepare allocates %.0f times per slot, want <= %d", allocs, budget)
	}
}
