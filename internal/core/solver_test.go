package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
)

// chainNetwork builds a complete network (every pair one hop away, so any
// deadline >= 1 is routable) with deterministic prices.
func chainNetwork(t *testing.T, n int, capacity float64) *netmodel.Network {
	t.Helper()
	nw, err := netmodel.Complete(n, func(i, j netmodel.DC) float64 {
		return 1 + float64((int(i)*7+int(j)*3)%10)
	}, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// chainFiles draws a deterministic per-slot workload for the warm-start
// chain tests: 1-3 files released at slot t with deadlines 1-3.
func chainFiles(rng *rand.Rand, nw *netmodel.Network, t, nextID int) []netmodel.File {
	n := nw.NumDCs()
	count := 1 + rng.Intn(3)
	files := make([]netmodel.File, 0, count)
	for k := 0; k < count; k++ {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		if src == dst {
			dst = (dst + 1) % n
		}
		files = append(files, netmodel.File{
			ID:       nextID + k,
			Src:      netmodel.DC(src),
			Dst:      netmodel.DC(dst),
			Size:     4 + 12*rng.Float64(),
			Release:  t,
			Deadline: 1 + rng.Intn(3),
		})
	}
	return files
}

// TestSolverMatchesStatelessSolveChain drives a Solver slot by slot against
// the stateless Solve on the identical ledger state: every slot must agree
// on status and optimal cost (up to the Epsilon tie-breaking term), the
// warm plan must commit cleanly, and the cache must demonstrably fire
// (warm-started solves, graph reuses, presolve reductions).
func TestSolverMatchesStatelessSolveChain(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	nw := chainNetwork(t, 5, 60)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(64))
	if err != nil {
		t.Fatal(err)
	}
	solver := NewSolver(nil)
	const slots = 8
	nextID := 0
	for slot := 0; slot < slots; slot++ {
		files := chainFiles(rng, nw, slot, nextID)
		nextID += len(files)
		cold, err := Solve(ledger, files, slot, nil)
		if err != nil {
			t.Fatalf("slot %d: cold: %v", slot, err)
		}
		warm, err := solver.Solve(ledger, files, slot)
		if err != nil {
			t.Fatalf("slot %d: warm: %v", slot, err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("slot %d: warm status %v, cold %v", slot, warm.Status, cold.Status)
		}
		if cold.Status != lp.Optimal {
			t.Fatalf("slot %d: unexpected status %v (generator meant to stay feasible)", slot, cold.Status)
		}
		// Both solve the same LP; objectives agree up to the Epsilon
		// traffic tie-breaker (two optimal vertices may trade charged cost
		// against epsilon-weighted traffic).
		tol := 1e-3 * (1 + math.Abs(cold.CostPerSlot))
		if math.Abs(warm.CostPerSlot-cold.CostPerSlot) > tol {
			t.Fatalf("slot %d: warm cost %v, cold cost %v", slot, warm.CostPerSlot, cold.CostPerSlot)
		}
		// Materialized column counts are path-dependent under column
		// generation (different duals admit different columns), but the
		// variable universe and the rows — emitted from universe support —
		// are structural and must agree exactly.
		if warm.VarUniverse != cold.VarUniverse || warm.Constraints != cold.Constraints {
			t.Fatalf("slot %d: warm model %dx%d, cold %dx%d — graph reuse changed the LP",
				slot, warm.VarUniverse, warm.Constraints, cold.VarUniverse, cold.Constraints)
		}
		if slot == 0 && warm.WarmStarted {
			t.Fatal("first solve of a fresh Solver claims a warm start")
		}
		// Commit the warm plan so both solvers see the warm trajectory.
		if err := warm.Schedule.Apply(ledger); err != nil {
			t.Fatalf("slot %d: applying warm plan: %v", slot, err)
		}
	}
	st := solver.Stats()
	if st.Solves != slots {
		t.Errorf("Solves = %d, want %d", st.Solves, slots)
	}
	if st.WarmSolves < slots/2 {
		t.Errorf("WarmSolves = %d of %d — basis mapping is not being accepted", st.WarmSolves, slots)
	}
	if st.GraphReuses < 1 {
		t.Errorf("GraphReuses = %d, want >= 1", st.GraphReuses)
	}
	// Delayed generation replaces presolve on the per-slot masters (rounds
	// price against exact duals, so presolve is bypassed); the chain must
	// show generation actually restricting the models.
	if st.ColGenRounds == 0 || st.ColGenUniverse == 0 {
		t.Errorf("column generation never fired across the chain: rounds=%d universe=%d",
			st.ColGenRounds, st.ColGenUniverse)
	}
	if st.ColGenColumns >= st.ColGenUniverse {
		t.Errorf("generation materialized the whole universe (%d of %d) — restriction is not restricting",
			st.ColGenColumns, st.ColGenUniverse)
	}
	if st.Iterations < st.Phase1Iter || st.Phase1Iter < 0 {
		t.Errorf("iteration split inconsistent: total %d, phase1 %d", st.Iterations, st.Phase1Iter)
	}
}

// TestSolverCacheResets pins the reset triggers: a fresh solver never warm
// starts its first solve; consecutive slots on one network do; switching
// networks or jumping slots cold-starts again.
func TestSolverCacheResets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw1 := chainNetwork(t, 4, 50)
	nw2 := chainNetwork(t, 4, 50)
	mkLedger := func(nw *netmodel.Network) *netmodel.Ledger {
		l, err := netmodel.NewLedger(nw, netmodel.MaxCharging(32))
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	l1, l2 := mkLedger(nw1), mkLedger(nw2)
	solver := NewSolver(nil)
	solveAt := func(ledger *netmodel.Ledger, nw *netmodel.Network, slot, id int) *Result {
		t.Helper()
		res, err := solver.Solve(ledger, chainFiles(rng, nw, slot, id), slot)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != lp.Optimal {
			t.Fatalf("slot %d: status %v", slot, res.Status)
		}
		return res
	}
	if res := solveAt(l1, nw1, 0, 0); res.WarmStarted {
		t.Error("fresh solver warm-started slot 0")
	}
	if res := solveAt(l1, nw1, 1, 10); !res.WarmStarted {
		t.Error("consecutive slot on the same network did not warm-start")
	}
	if res := solveAt(l2, nw2, 2, 20); res.WarmStarted {
		t.Error("network switch did not reset the cache")
	}
	if res := solveAt(l2, nw2, 3, 30); !res.WarmStarted {
		t.Error("consecutive slot after the switch did not warm-start")
	}
	if res := solveAt(l2, nw2, 9, 40); res.WarmStarted {
		t.Error("non-consecutive slot jump did not reset the cache")
	}
}

// TestSolverEmptySlotKeepsCache: a slot with no demand must not poison the
// cache — the next slot still warm-starts off the last real solve.
func TestSolverEmptySlotKeepsCache(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	nw := chainNetwork(t, 4, 50)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(32))
	if err != nil {
		t.Fatal(err)
	}
	solver := NewSolver(nil)
	r0, err := solver.Solve(ledger, chainFiles(rng, nw, 0, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := r0.Schedule.Apply(ledger); err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Solve(ledger, nil, 1); err != nil {
		t.Fatal(err)
	}
	r2, err := solver.Solve(ledger, chainFiles(rng, nw, 2, 10), 2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Status != lp.Optimal {
		t.Fatalf("slot 2 status %v", r2.Status)
	}
	if !r2.WarmStarted {
		t.Error("empty slot broke the warm-start chain")
	}
	if got := solver.Stats().Solves; got != 2 {
		t.Errorf("Solves = %d, want 2 (empty slot must not count)", got)
	}
}

// TestSolverShedRetryWarmStarts mirrors the engine's infeasibility
// handling: an overloaded slot re-solved with fewer files (same t) reuses
// the infeasible solve's basis.
func TestSolverShedRetryWarmStarts(t *testing.T) {
	nw, err := netmodel.NewNetwork(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(0, 1, 2, 10); err != nil {
		t.Fatal(err)
	}
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(16))
	if err != nil {
		t.Fatal(err)
	}
	files := []netmodel.File{
		{ID: 1, Src: 0, Dst: 1, Size: 9, Release: 0, Deadline: 1},
		{ID: 2, Src: 0, Dst: 1, Size: 8, Release: 0, Deadline: 1},
	}
	solver := NewSolver(nil)
	r, err := solver.Solve(ledger, files, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != lp.Infeasible {
		t.Fatalf("overloaded slot status %v, want infeasible", r.Status)
	}
	retry, err := solver.Solve(ledger, files[:1], 0)
	if err != nil {
		t.Fatal(err)
	}
	if retry.Status != lp.Optimal {
		t.Fatalf("retry status %v, want optimal", retry.Status)
	}
	if math.Abs(retry.CostPerSlot-2*9) > 1e-6 {
		t.Errorf("retry cost %v, want 18", retry.CostPerSlot)
	}
	// The infeasible solve's basis may or may not survive presolve mapping;
	// what matters is the retry is correct and the cache accepted same-slot
	// reuse without a reset (a reset would also have dropped the graph).
	if solver.Stats().GraphReuses < 1 {
		t.Errorf("same-slot retry rebuilt the graph (GraphReuses = %d)", solver.Stats().GraphReuses)
	}
}
