package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
)

// randomSparseNetwork builds a connected (ring + chords) network so the
// optimizer is exercised beyond complete graphs.
func randomSparseNetwork(t *testing.T, rng *rand.Rand, n int, capacity float64) *netmodel.Network {
	t.Helper()
	nw, err := netmodel.NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if err := nw.SetLink(netmodel.DC(i), netmodel.DC(j), 1+9*rng.Float64(), capacity); err != nil {
			t.Fatal(err)
		}
		if err := nw.SetLink(netmodel.DC(j), netmodel.DC(i), 1+9*rng.Float64(), capacity); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < n/2; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j || nw.HasLink(netmodel.DC(i), netmodel.DC(j)) {
			continue
		}
		if err := nw.SetLink(netmodel.DC(i), netmodel.DC(j), 1+9*rng.Float64(), capacity); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

// TestCostMonotoneInDeadline: relaxing a file's deadline can only reduce
// (or keep) the optimal cost — the shorter-deadline plan remains feasible.
func TestCostMonotoneInDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(3)
		nw := randomSparseNetwork(t, rng, n, 25)
		ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(100))
		if err != nil {
			t.Fatal(err)
		}
		src := netmodel.DC(rng.Intn(n))
		dst := netmodel.DC((int(src) + 1 + rng.Intn(n-1)) % n)
		base := netmodel.File{
			ID: 1, Src: src, Dst: dst,
			Size: 5 + 20*rng.Float64(), Deadline: 2 + rng.Intn(3), Release: 0,
		}
		prev := math.Inf(1)
		for extra := 0; extra < 3; extra++ {
			f := base
			f.Deadline += extra
			res, err := Solve(ledger, []netmodel.File{f}, 0, nil)
			var ue *UnroutableError
			if errors.As(err, &ue) {
				continue // destination beyond reach at this deadline
			}
			if err != nil {
				t.Fatalf("trial %d extra %d: %v", trial, extra, err)
			}
			if res.Status != lp.Optimal {
				continue
			}
			if res.CostPerSlot > prev+1e-5*(1+prev) {
				t.Fatalf("trial %d: cost rose from %v to %v when deadline extended to %d",
					trial, prev, res.CostPerSlot, f.Deadline)
			}
			prev = res.CostPerSlot
		}
	}
}

// TestCostMonotoneInCapacity: adding capacity can only help.
func TestCostMonotoneInCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(3)
		seed := rng.Int63()
		var files []netmodel.File
		fileCount := 1 + rng.Intn(3)
		prev := math.Inf(1)
		for _, capacity := range []float64{15, 30, 60} {
			capRng := rand.New(rand.NewSource(seed))
			nw := randomSparseNetwork(t, capRng, n, capacity)
			ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(100))
			if err != nil {
				t.Fatal(err)
			}
			files = files[:0]
			for k := 0; k < fileCount; k++ {
				src := netmodel.DC(capRng.Intn(n))
				dst := netmodel.DC((int(src) + 1 + capRng.Intn(n-1)) % n)
				files = append(files, netmodel.File{
					ID: k + 1, Src: src, Dst: dst,
					Size: 5 + 10*capRng.Float64(), Deadline: 2 + capRng.Intn(3), Release: 0,
				})
			}
			res, err := Solve(ledger, files, 0, nil)
			var ue *UnroutableError
			if errors.As(err, &ue) {
				continue
			}
			if err != nil {
				t.Fatalf("trial %d cap %v: %v", trial, capacity, err)
			}
			if res.Status != lp.Optimal {
				continue
			}
			if res.CostPerSlot > prev+1e-5*(1+prev) {
				t.Fatalf("trial %d: cost rose from %v to %v when capacity grew to %v",
					trial, prev, res.CostPerSlot, capacity)
			}
			prev = res.CostPerSlot
		}
	}
}

// TestStoragePolicyOrdering: restricting storage can only raise the cost:
// everywhere <= endpoints-only <= none.
func TestStoragePolicyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(3)
		nw := randomSparseNetwork(t, rng, n, 40)
		ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(100))
		if err != nil {
			t.Fatal(err)
		}
		// Seed some history so paid headroom exists.
		for k := 0; k < 3; k++ {
			i := netmodel.DC(rng.Intn(n))
			j := netmodel.DC((int(i) + 1) % n)
			if nw.HasLink(i, j) {
				if err := ledger.Add(i, j, 0, 10*rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
		var files []netmodel.File
		for k := 0; k < 1+rng.Intn(3); k++ {
			src := netmodel.DC(rng.Intn(n))
			dst := netmodel.DC((int(src) + 1 + rng.Intn(n-1)) % n)
			files = append(files, netmodel.File{
				ID: k + 1, Src: src, Dst: dst,
				Size: 5 + 10*rng.Float64(), Deadline: 3 + rng.Intn(3), Release: 1,
			})
		}
		costs := make([]float64, 0, 3)
		for _, policy := range []StoragePolicy{StorageEverywhere, StorageEndpointsOnly, StorageNone} {
			res, err := Solve(ledger, files, 1, &Config{Storage: policy})
			var ue *UnroutableError
			if errors.As(err, &ue) {
				costs = append(costs, math.Inf(1))
				continue
			}
			if err != nil {
				t.Fatalf("trial %d policy %d: %v", trial, policy, err)
			}
			if res.Status != lp.Optimal {
				costs = append(costs, math.Inf(1))
				continue
			}
			costs = append(costs, res.CostPerSlot)
		}
		for i := 1; i < len(costs); i++ {
			if costs[i-1] > costs[i]+1e-5*(1+costs[i]) {
				t.Fatalf("trial %d: policy ordering violated: %v", trial, costs)
			}
		}
	}
}

// TestMoreFilesNeverCheapen: adding a file to the batch cannot reduce the
// optimal cost (the smaller batch's plan is a restriction).
func TestMoreFilesNeverCheapen(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(3)
		nw := randomSparseNetwork(t, rng, n, 40)
		ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(100))
		if err != nil {
			t.Fatal(err)
		}
		var files []netmodel.File
		prev := 0.0
		for k := 0; k < 4; k++ {
			src := netmodel.DC(rng.Intn(n))
			dst := netmodel.DC((int(src) + 1 + rng.Intn(n-1)) % n)
			files = append(files, netmodel.File{
				ID: k + 1, Src: src, Dst: dst,
				Size: 3 + 10*rng.Float64(), Deadline: 2 + rng.Intn(3), Release: 0,
			})
			res, err := Solve(ledger, files, 0, nil)
			var ue *UnroutableError
			if errors.As(err, &ue) {
				// The new file cannot reach its destination on this sparse
				// topology: drop it and keep growing the batch.
				files = files[:len(files)-1]
				continue
			}
			if err != nil {
				t.Fatalf("trial %d k %d: %v", trial, k, err)
			}
			if res.Status != lp.Optimal {
				break
			}
			if res.CostPerSlot < prev-1e-5*(1+prev) {
				t.Fatalf("trial %d: cost dropped from %v to %v when file %d was added",
					trial, prev, res.CostPerSlot, k+1)
			}
			prev = res.CostPerSlot
		}
	}
}

// TestSparseTopologyMultiHopRelay: on a ring, a file whose deadline equals
// the hop distance must be pipelined with holds only when capacity forces
// it; the solver must find a feasible plan whenever one exists.
func TestSparseTopologyMultiHopRelay(t *testing.T) {
	nw, err := netmodel.NewNetwork(5)
	if err != nil {
		t.Fatal(err)
	}
	// One-directional ring 0 -> 1 -> 2 -> 3 -> 4 -> 0, capacity 10.
	for i := 0; i < 5; i++ {
		if err := nw.SetLink(netmodel.DC(i), netmodel.DC((i+1)%5), 2, 10); err != nil {
			t.Fatal(err)
		}
	}
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(100))
	if err != nil {
		t.Fatal(err)
	}
	// 3 hops from 0 to 3; deadline exactly 3.
	file := netmodel.File{ID: 1, Src: 0, Dst: 3, Size: 10, Deadline: 3, Release: 0}
	res, err := Solve(ledger, []netmodel.File{file}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	// The only route is the full-rate pipeline: 10 GB on each of the three
	// hops in consecutive slots.
	for hop, slot := range []int{0, 1, 2} {
		from := netmodel.DC(hop)
		to := netmodel.DC(hop + 1)
		if got := res.Schedule.TransferVolume(from, to, slot); math.Abs(got-10) > 1e-6 {
			t.Errorf("hop %d slot %d carries %v, want 10", hop, slot, got)
		}
	}
	// Deadline 2 is structurally impossible (3 hops).
	file.Deadline = 2
	if _, err := Solve(ledger, []netmodel.File{file}, 0, nil); err == nil {
		t.Error("expected UnroutableError for a 3-hop file with deadline 2")
	}
}
