// Package core implements the Postcard optimizer — the paper's primary
// contribution. At a slot t, given the files generated at t and a charging
// ledger describing everything already committed to the network, it builds
// the linear program of Sec. V on the time-expanded graph (objective (6),
// constraints (7)-(10), with the pairwise-max charged volume linearized via
// one epigraph variable per link) and extracts an optimal routing and
// scheduling plan, including store-and-forward holdovers at intermediate
// datacenters.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
	"github.com/interdc/postcard/internal/timegraph"
)

// StoragePolicy controls which datacenters may hold data between slots —
// the store-and-forward capability the paper studies. The zero value is
// StorageEverywhere.
type StoragePolicy int

// Storage policies.
const (
	// StorageEverywhere allows holdovers at every datacenter (the paper's
	// Postcard model).
	StorageEverywhere StoragePolicy = iota
	// StorageEndpointsOnly allows holdovers only at a file's own source and
	// destination, disabling intermediate store-and-forward. Used by the
	// ablation benchmarks to isolate the value of relay storage.
	StorageEndpointsOnly
	// StorageNone forbids holdovers entirely: data must traverse a link
	// every slot it is in flight.
	StorageNone
)

// Config tunes the optimizer. The zero value selects defaults.
type Config struct {
	// Epsilon is the weight of the secondary traffic-minimization term that
	// breaks ties among cost-equal optima (it discourages gratuitous
	// traffic riding below the charged peak). Default 1e-6.
	Epsilon float64
	// Storage selects where holdovers are permitted.
	Storage StoragePolicy
	// LP overrides solver options.
	LP *lp.Options
	// SkipVerify disables the independent schedule verification pass.
	SkipVerify bool
}

func (c *Config) withDefaults() Config {
	out := Config{}
	if c != nil {
		out = *c
	}
	if out.Epsilon <= 0 {
		out.Epsilon = 1e-6
	}
	return out
}

// Result is the outcome of one Postcard optimization.
type Result struct {
	// Schedule is the optimal plan, nil when Status != lp.Optimal.
	Schedule *schedule.Schedule
	// CostPerSlot is sum over links of price * charged volume after the
	// plan is committed — the paper's objective divided by the charging
	// period length.
	CostPerSlot float64
	// Status is the LP outcome (Optimal, or Infeasible when the files
	// cannot all meet their deadlines under residual capacity).
	Status lp.Status
	// Iterations and Variables/Constraints describe the solved LP.
	Iterations  int
	Phase1Iter  int
	Variables   int
	Constraints int
	// WarmStarted reports whether the LP accepted a warm-start basis
	// (always false for the stateless Solve; see Solver).
	WarmStarted bool
	// PresolveCols and PresolveRows count the LP columns and rows removed
	// by the presolve pass before the simplex ran (zero when presolve was
	// not enabled or did not fire).
	PresolveCols int
	PresolveRows int
	// SparseSolves and DenseSolves count basis triangular solves that took
	// the hyper-sparse pattern path versus the dense fallback; SolveNNZ and
	// SolveDim total their result-pattern sizes and basis dimensions (see
	// lp.Solution for exact semantics).
	SparseSolves int
	DenseSolves  int
	SolveNNZ     int
	SolveDim     int
	// DevexResets and DualRecomputes count devex reference-framework
	// restarts and full reduced-cost recomputations inside the simplex.
	DevexResets    int
	DualRecomputes int
}

// UnroutableError reports files whose destination is structurally
// unreachable within their deadline (no capacity consideration at all).
type UnroutableError struct {
	FileIDs []int
}

// Error implements error.
func (e *UnroutableError) Error() string {
	ids := make([]string, len(e.FileIDs))
	for i, id := range e.FileIDs {
		ids[i] = fmt.Sprintf("%d", id)
	}
	return fmt.Sprintf("core: files [%s] cannot reach their destinations within their deadlines", strings.Join(ids, " "))
}

// Solve computes the optimal Postcard plan for the given files at slot t.
// Every file must satisfy Release >= t. The ledger supplies residual
// capacities and the already-charged volume floor X_ij(t-1); it is not
// modified (callers apply the returned schedule explicitly). Solve is
// stateless: every call builds its time-expanded graph and LP from scratch
// and cold-starts the simplex. Online slot-by-slot callers should prefer a
// Solver, which reuses the graph skeleton and warm-starts consecutive
// solves from each other's bases.
func Solve(ledger *netmodel.Ledger, files []netmodel.File, t int, cfg *Config) (*Result, error) {
	conf := cfg.withDefaults()
	if len(files) == 0 {
		return emptyResult(ledger), nil
	}
	horizon, err := requiredHorizon(ledger.Network(), files, t)
	if err != nil {
		return nil, err
	}
	tg, err := timegraph.Build(ledger.Network(), t, horizon)
	if err != nil {
		return nil, err
	}
	b, err := prepare(tg, ledger, files, conf)
	if err != nil {
		return nil, err
	}
	opts := lp.Options{}
	if conf.LP != nil {
		opts = *conf.LP
	}
	crashed := false
	if opts.InitialBasis == nil {
		opts.InitialBasis = crashBasis(b)
		crashed = true
	}
	res, _, err := b.solve(&opts)
	if res != nil && crashed {
		// The synthesized crash basis is an internal acceleration, not a
		// caller-provided warm start; keep the stateless contract visible.
		res.WarmStarted = false
	}
	return res, err
}

// emptyResult is the no-demand shortcut shared by Solve and Solver.Solve.
func emptyResult(ledger *netmodel.Ledger) *Result {
	return &Result{
		Schedule:    &schedule.Schedule{},
		CostPerSlot: ledger.CostPerSlot(),
		Status:      lp.Optimal,
	}
}

// requiredHorizon validates every file against the network and the solve
// slot and returns the number of time-expanded slots the LP must cover.
func requiredHorizon(nw *netmodel.Network, files []netmodel.File, t int) (int, error) {
	horizon := 0
	for _, f := range files {
		if err := f.Validate(nw); err != nil {
			return 0, err
		}
		if f.Release < t {
			return 0, fmt.Errorf("core: file %d released at %d before solve slot %d", f.ID, f.Release, t)
		}
		if end := f.Release + f.Deadline - t; end > horizon {
			horizon = end
		}
	}
	return horizon, nil
}

// prepare runs the structural routability check and assembles the Postcard
// LP on the given time-expanded graph. The graph's horizon may exceed the
// files' needs (a Solver reuses one skeleton across slots); surplus layers
// contribute no variables or rows, so the assembled model is identical to
// one built on a tight graph.
func prepare(tg *timegraph.Graph, ledger *netmodel.Ledger, files []netmodel.File, conf Config) (*builder, error) {
	reach := make([]timegraph.Reachability, len(files))
	var unroutable []int
	for k, f := range files {
		reach[k] = tg.FileReachability(f)
		if reach[k].FromSrc[f.Dst] > f.Deadline {
			unroutable = append(unroutable, f.ID)
		}
	}
	if len(unroutable) > 0 {
		sort.Ints(unroutable)
		return nil, &UnroutableError{FileIDs: unroutable}
	}
	b := newBuilder(tg, ledger, files, reach, conf)
	if err := b.build(); err != nil {
		return nil, err
	}
	return b, nil
}

// solve runs the assembled LP with the given solver options and converts
// the outcome into a Result. The raw lp.Solution is returned alongside so
// the incremental Solver can harvest its basis snapshot.
func (b *builder) solve(opts *lp.Options) (*Result, *lp.Solution, error) {
	sol, err := b.model.Solve(opts)
	if err != nil {
		return nil, nil, fmt.Errorf("core: solving Postcard LP: %w", err)
	}
	res := &Result{
		Status:          sol.Status,
		Iterations:      sol.Iterations,
		Phase1Iter:      sol.Phase1Iter,
		Variables:       b.model.NumVariables(),
		Constraints:     b.model.NumConstraints(),
		WarmStarted:     sol.WarmStarted,
		PresolveCols:    sol.PresolveCols,
		PresolveRows:    sol.PresolveRows,
		SparseSolves:    sol.SparseSolves,
		DenseSolves:     sol.DenseSolves,
		SolveNNZ:        sol.SolveNNZ,
		SolveDim:        sol.SolveDim,
		DevexResets:     sol.DevexResets,
		DualRecomputes:  sol.DualRecomputes,
	}
	if sol.Status != lp.Optimal {
		return res, sol, nil
	}
	res.Schedule = b.extractSchedule(sol)
	res.CostPerSlot = b.chargedCost(sol)
	if !b.conf.SkipVerify {
		vc := schedule.VerifyConfig{
			Residual: func(i, j netmodel.DC, slot int) float64 { return b.ledger.Residual(i, j, slot) },
			Tol:      1e-4, // GB; matches LP tolerance noise on multi-GB files
		}
		if err := schedule.Verify(res.Schedule, b.tg.Network(), b.files, vc); err != nil {
			return nil, nil, fmt.Errorf("core: optimizer produced an invalid schedule: %w", err)
		}
	}
	return res, sol, nil
}

// modelKey identifies one LP column or row of a Postcard model
// structurally, independent of the model it appears in. Keys let the
// incremental Solver translate a basis snapshot taken on one slot's model
// onto the next slot's model: positions whose keys match carry their resting
// status over, everything else falls back to a safe default. Slots and
// layers are absolute, so a key minted at slot t still names the same
// physical quantity at slot t+1.
type modelKey struct {
	kind int8
	file int         // file ID for kindM/kindCons, -1 otherwise
	from netmodel.DC // link tail, or the datacenter for kindCons
	to   netmodel.DC // link head, -1 for kindCons
	slot int         // absolute slot (edges) or layer (kindCons), -1 for kindX
}

// modelKey kinds.
const (
	kindX      int8 = iota + 1 // charged-volume epigraph column of one link
	kindM                      // per-file edge column
	kindCap                    // capacity row of one transfer edge
	kindCharge                 // charge (epigraph) row of one transfer edge
	kindCons                   // conservation row of one (file, dc, layer)
)

// builder assembles the Postcard LP.
type builder struct {
	tg     *timegraph.Graph
	ledger *netmodel.Ledger
	files  []netmodel.File
	reach  []timegraph.Reachability
	conf   Config

	model *lp.Model
	// mvars[k] maps edge index -> variable, -1 when the file cannot use it.
	mvars [][]lp.VarID
	// xvars maps link -> epigraph variable for the charged volume.
	xvars map[netmodel.Link]lp.VarID
	// colKeys[j] / rowKeys[i] are the structural identities of column j and
	// row i, recorded in the exact AddVariable/AddConstraint order.
	colKeys []modelKey
	rowKeys []modelKey
}

func newBuilder(tg *timegraph.Graph, ledger *netmodel.Ledger, files []netmodel.File, reach []timegraph.Reachability, conf Config) *builder {
	return &builder{
		tg:     tg,
		ledger: ledger,
		files:  files,
		reach:  reach,
		conf:   conf,
		model:  lp.NewModel(),
		xvars:  make(map[netmodel.Link]lp.VarID),
	}
}

func (b *builder) build() error {
	nw := b.tg.Network()
	pinf := math.Inf(1)
	// Charged-volume epigraph variables, one per priced link, floored at
	// the volume already charged (the running X_ij(t-1) plus committed
	// future peaks).
	nw.Links(func(l netmodel.Link, price, _ float64) {
		b.xvars[l] = b.model.AddVariable(b.ledger.ChargedVolume(l.From, l.To), pinf,
			price, fmt.Sprintf("X_%s", l))
		b.colKeys = append(b.colKeys, modelKey{kind: kindX, file: -1, from: l.From, to: l.To, slot: -1})
	})
	// Per-file transfer/holdover variables over the file's subgraph.
	b.mvars = make([][]lp.VarID, len(b.files))
	for k, f := range b.files {
		b.mvars[k] = make([]lp.VarID, b.tg.NumEdges())
		for i := range b.mvars[k] {
			b.mvars[k][i] = -1
		}
		first, last, ok := b.tg.FileWindow(f)
		if !ok {
			return fmt.Errorf("core: file %d outside graph horizon", f.ID)
		}
		r := b.reach[k]
		b.tg.Edges(func(e timegraph.Edge) {
			if e.Slot < first || e.Slot > last {
				return
			}
			if !r.Allowed(f, e.From, e.Slot) || !r.Allowed(f, e.To, e.Slot+1) {
				return
			}
			if e.Storage {
				switch b.conf.Storage {
				case StorageEndpointsOnly:
					if e.From != f.Src && e.From != f.Dst {
						return
					}
				case StorageNone:
					return
				}
			}
			obj := 0.0
			if !e.Storage {
				obj = b.conf.Epsilon
			}
			name := fmt.Sprintf("M_f%d_%d>%d@%d", f.ID, int(e.From), int(e.To), e.Slot)
			b.mvars[k][e.Index] = b.model.AddVariable(0, f.Size, obj, name)
			b.colKeys = append(b.colKeys, modelKey{kind: kindM, file: f.ID, from: e.From, to: e.To, slot: e.Slot})
		})
	}
	if err := b.addCapacityAndCharge(); err != nil {
		return err
	}
	return b.addConservation()
}

// addCapacityAndCharge emits constraint (7) (per-edge capacity against the
// residual ledger) and the epigraph rows linearizing the charged volume:
// X_ij >= committed(i,j,n) + sum_k M_ijn for every slot n with variables.
func (b *builder) addCapacityAndCharge() error {
	var idx []lp.VarID
	var val []float64
	errOut := error(nil)
	b.tg.Edges(func(e timegraph.Edge) {
		if errOut != nil || e.Storage {
			return
		}
		idx = idx[:0]
		val = val[:0]
		for k := range b.files {
			if v := b.mvars[k][e.Index]; v >= 0 {
				idx = append(idx, v)
				val = append(val, 1)
			}
		}
		if len(idx) == 0 {
			return
		}
		residual := b.ledger.Residual(e.From, e.To, e.Slot)
		if _, err := b.model.AddConstraint(lp.LE, residual, idx, val); err != nil {
			errOut = err
			return
		}
		b.rowKeys = append(b.rowKeys, modelKey{kind: kindCap, file: -1, from: e.From, to: e.To, slot: e.Slot})
		// Charge row: sum_k M - X <= -committedVolume.
		committed := b.ledger.VolumeAt(e.From, e.To, e.Slot)
		x := b.xvars[netmodel.Link{From: e.From, To: e.To}]
		idx = append(idx, x)
		val = append(val, -1)
		if _, err := b.model.AddConstraint(lp.LE, -committed, idx, val); err != nil {
			errOut = err
			return
		}
		b.rowKeys = append(b.rowKeys, modelKey{kind: kindCharge, file: -1, from: e.From, to: e.To, slot: e.Slot})
	})
	return errOut
}

// addConservation emits constraints (8): per file, flow out of the source
// at its release layer equals the size, flow into the destination at the
// deadline layer equals the size, and inflow equals outflow at every other
// (datacenter, layer) of the file's subgraph.
func (b *builder) addConservation() error {
	nw := b.tg.Network()
	n := nw.NumDCs()
	for k, f := range b.files {
		first, last, _ := b.tg.FileWindow(f)
		r := b.reach[k]
		deadlineLayer := f.Release + f.Deadline
		if clamp := b.tg.Start() + b.tg.Horizon(); deadlineLayer > clamp {
			deadlineLayer = clamp
		}
		for layer := first; layer <= deadlineLayer; layer++ {
			for dc := 0; dc < n; dc++ {
				d := netmodel.DC(dc)
				if !r.Allowed(f, d, layer) {
					continue
				}
				var idx []lp.VarID
				var val []float64
				// Outflow during slot == layer (absent at the final layer).
				if layer <= last {
					for to := 0; to < n; to++ {
						if e, ok := b.tg.EdgeAt(d, netmodel.DC(to), layer); ok {
							if v := b.mvars[k][e.Index]; v >= 0 {
								idx = append(idx, v)
								val = append(val, 1)
							}
						}
					}
				}
				// Inflow during slot == layer-1 (absent at the first layer).
				if layer > first {
					for from := 0; from < n; from++ {
						if e, ok := b.tg.EdgeAt(netmodel.DC(from), d, layer-1); ok {
							if v := b.mvars[k][e.Index]; v >= 0 {
								idx = append(idx, v)
								val = append(val, -1)
							}
						}
					}
				}
				rhs := 0.0
				switch {
				case layer == f.Release && d == f.Src:
					rhs = f.Size // all data leaves the source copy
				case layer == deadlineLayer && d == f.Dst:
					rhs = -f.Size // all data has arrived
				}
				if len(idx) == 0 {
					if rhs != 0 {
						return fmt.Errorf("core: file %d has no variables to satisfy its %s constraint",
							f.ID, map[bool]string{true: "source", false: "destination"}[rhs > 0])
					}
					continue
				}
				if _, err := b.model.AddConstraint(lp.EQ, rhs, idx, val); err != nil {
					return err
				}
				b.rowKeys = append(b.rowKeys, modelKey{kind: kindCons, file: f.ID, from: d, to: -1, slot: layer})
			}
		}
	}
	return nil
}

// extractSchedule converts positive variables of the solution into actions.
// Values at solver-noise scale are dropped; the verifier runs with a
// matching tolerance.
func (b *builder) extractSchedule(sol *lp.Solution) *schedule.Schedule {
	const tol = 1e-5
	s := &schedule.Schedule{}
	for k, f := range b.files {
		for idx, v := range b.mvars[k] {
			if v < 0 {
				continue
			}
			amount := sol.Value(v)
			if amount <= tol {
				continue
			}
			e := b.tg.Edge(idx)
			s.Add(schedule.Action{
				FileID: f.ID,
				From:   e.From,
				To:     e.To,
				Slot:   e.Slot,
				Amount: amount,
			})
		}
	}
	return s
}

// chargedCost evaluates sum over links of price * X at the LP optimum.
func (b *builder) chargedCost(sol *lp.Solution) float64 {
	total := 0.0
	nw := b.tg.Network()
	nw.Links(func(l netmodel.Link, price, _ float64) {
		total += price * sol.Value(b.xvars[l])
	})
	return total
}
