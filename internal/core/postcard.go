// Package core implements the Postcard optimizer — the paper's primary
// contribution. At a slot t, given the files generated at t and a charging
// ledger describing everything already committed to the network, it builds
// the linear program of Sec. V on the time-expanded graph (objective (6),
// constraints (7)-(10), with the pairwise-max charged volume linearized via
// one epigraph variable per link) and extracts an optimal routing and
// scheduling plan, including store-and-forward holdovers at intermediate
// datacenters.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
	"github.com/interdc/postcard/internal/timegraph"
)

// StoragePolicy controls which datacenters may hold data between slots —
// the store-and-forward capability the paper studies. The zero value is
// StorageEverywhere.
type StoragePolicy int

// Storage policies.
const (
	// StorageEverywhere allows holdovers at every datacenter (the paper's
	// Postcard model).
	StorageEverywhere StoragePolicy = iota
	// StorageEndpointsOnly allows holdovers only at a file's own source and
	// destination, disabling intermediate store-and-forward. Used by the
	// ablation benchmarks to isolate the value of relay storage.
	StorageEndpointsOnly
	// StorageNone forbids holdovers entirely: data must traverse a link
	// every slot it is in flight.
	StorageNone
)

// Config tunes the optimizer. The zero value selects defaults.
type Config struct {
	// Epsilon is the weight of the secondary traffic-minimization term that
	// breaks ties among cost-equal optima (it discourages gratuitous
	// traffic riding below the charged peak). Default 1e-6.
	Epsilon float64
	// Storage selects where holdovers are permitted.
	Storage StoragePolicy
	// LP overrides solver options.
	LP *lp.Options
	// SkipVerify disables the independent schedule verification pass.
	SkipVerify bool
	// DisableColGen materializes the entire pruned variable universe up
	// front instead of starting from a restricted master (crash-route and
	// storage columns) and generating the remaining columns on demand.
	// Delayed column generation is exact — it terminates at the same
	// optimum as the full model — so this switch exists for equivalence
	// gates, fuzzing, and A/B benchmarks, not for correctness.
	DisableColGen bool
	// DisablePruning instantiates per-file variables and conservation rows
	// even at (datacenter, layer) pairs that deadline reachability proves
	// useless (dist(src, i) > elapsed or dist(j, dst) > remaining).
	// Pruning is lossless — such a variable can never carry flow on a
	// feasible source-to-destination path — so this switch likewise exists
	// only for equivalence testing.
	DisablePruning bool
	// Pricing selects the formulation: the per-arc model (default) or the
	// Dantzig–Wolfe path master for 100+ DC overlays. Both are exact; see
	// PricingMode. DisableColGen has no effect under PricingPath, whose
	// column universe is implicit.
	Pricing PricingMode
	// PricingWorkers caps the goroutines pricing per-file path subproblems
	// concurrently under PricingPath; <= 0 selects GOMAXPROCS. Results are
	// bit-identical for every worker count.
	PricingWorkers int
	// LPBackend selects the simplex compute backend ("serial" or
	// "parallel"; empty selects serial). It overrides any Backend set in
	// LP. Both backends produce bit-identical results; see lp.Options.
	LPBackend string
	// LPWorkers sets the parallel LP backend's pool size; <= 0 selects
	// GOMAXPROCS. Worker count affects only wall-clock, never results.
	LPWorkers int
}

func (c *Config) withDefaults() Config {
	out := Config{}
	if c != nil {
		out = *c
	}
	if out.Epsilon <= 0 {
		out.Epsilon = 1e-6
	}
	return out
}

// lpOptions materializes the solver options for one LP solve: the caller's
// LP overrides, with the Config-level backend selection layered on top.
// Every solve the optimizer issues goes through here, so -lp-backend
// reaches the arc model, the path master, and the arc fallback alike.
func (c Config) lpOptions() lp.Options {
	opts := lp.Options{}
	if c.LP != nil {
		opts = *c.LP
	}
	if c.LPBackend != "" {
		opts.Backend = c.LPBackend
	}
	if c.LPWorkers != 0 {
		opts.BackendWorkers = c.LPWorkers
	}
	return opts
}

// Result is the outcome of one Postcard optimization.
type Result struct {
	// Schedule is the optimal plan, nil when Status != lp.Optimal.
	Schedule *schedule.Schedule
	// CostPerSlot is sum over links of price * charged volume after the
	// plan is committed — the paper's objective divided by the charging
	// period length.
	CostPerSlot float64
	// Status is the LP outcome (Optimal, or Infeasible when the files
	// cannot all meet their deadlines under residual capacity).
	Status lp.Status
	// Iterations and Variables/Constraints describe the solved LP.
	Iterations  int
	Phase1Iter  int
	Variables   int
	Constraints int
	// WarmStarted reports whether the LP accepted a warm-start basis
	// (always false for the stateless Solve; see Solver).
	WarmStarted bool
	// PresolveCols and PresolveRows count the LP columns and rows removed
	// by the presolve pass before the simplex ran (zero when presolve was
	// not enabled or did not fire).
	PresolveCols int
	PresolveRows int
	// SparseSolves and DenseSolves count basis triangular solves that took
	// the hyper-sparse pattern path versus the dense fallback; SolveNNZ and
	// SolveDim total their result-pattern sizes and basis dimensions (see
	// lp.Solution for exact semantics).
	SparseSolves int
	DenseSolves  int
	SolveNNZ     int
	SolveDim     int
	// DevexResets and DualRecomputes count devex reference-framework
	// restarts and full reduced-cost recomputations inside the simplex.
	DevexResets    int
	DualRecomputes int
	// BackendWorkers is the LP compute backend's worker count (1 under the
	// serial backend) — a configuration gauge that never affects results.
	// DevexScans counts full devex pricing scans, ParallelScans the subset
	// that fanned across the backend pool, and SpecFtrans/SpecFtranHits the
	// speculative entering-column solves launched and the ones that served
	// an actual entering column. All four are worker-count-independent.
	BackendWorkers int
	DevexScans     int
	ParallelScans  int
	SpecFtrans     int
	SpecFtranHits  int
	// PathRecycled counts path columns seeded into this solve's restricted
	// master because they were active in the previous slot's optimum (the
	// warm Solver's cross-slot column recycling; always zero under
	// PricingArc and for stateless solves).
	PathRecycled int
	// VarUniverse is the number of per-file transfer/holdover columns in
	// the pruned universe — what a full (non-column-generated) model would
	// materialize. Variables reports how many columns actually exist after
	// the solve; the difference is the column-generation saving.
	VarUniverse int
	// PrunedVars and PrunedRows count the variables and conservation rows
	// that deadline-reachability pruning removed from the model before it
	// was ever assembled (zero under Config.DisablePruning, and zero on
	// complete overlays, where every datacenter is one hop from every
	// other).
	PrunedVars int
	PrunedRows int
	// ColGenRounds, ColGenColumns and ColGenUniverse describe the delayed
	// column generation: restricted-master solves performed, delayed
	// columns materialized, and the delayed universe that was priced
	// implicitly. All zero when generation did not run (Config.
	// DisableColGen, or a model whose universe fits the restriction).
	ColGenRounds   int
	ColGenColumns  int
	ColGenUniverse int
	// ColGenRows counts the rows generation lazily appended alongside its
	// columns — capacity and charge rows materialized on first touch by a
	// path column. Always zero under PricingArc, whose rows are emitted on
	// universe support up front.
	ColGenRows int
	// PathFallbacks is 1 when the path master terminated with positive
	// artificials (the instance could not be served by generated paths) and
	// the reported result came from the authoritative arc-model fallback
	// solve; 0 otherwise and always under PricingArc.
	PathFallbacks int
}

// UnroutableError reports files whose destination is structurally
// unreachable within their deadline (no capacity consideration at all).
type UnroutableError struct {
	FileIDs []int
}

// Error implements error.
func (e *UnroutableError) Error() string {
	ids := make([]string, len(e.FileIDs))
	for i, id := range e.FileIDs {
		ids[i] = fmt.Sprintf("%d", id)
	}
	return fmt.Sprintf("core: files [%s] cannot reach their destinations within their deadlines", strings.Join(ids, " "))
}

// Solve computes the optimal Postcard plan for the given files at slot t.
// Every file must satisfy Release >= t. The ledger supplies residual
// capacities and the already-charged volume floor X_ij(t-1); it is not
// modified (callers apply the returned schedule explicitly). Solve is
// stateless: every call builds its time-expanded graph and LP from scratch
// and cold-starts the simplex. Online slot-by-slot callers should prefer a
// Solver, which reuses the graph skeleton and warm-starts consecutive
// solves from each other's bases.
func Solve(ledger *netmodel.Ledger, files []netmodel.File, t int, cfg *Config) (*Result, error) {
	conf := cfg.withDefaults()
	if len(files) == 0 {
		return emptyResult(ledger), nil
	}
	horizon, err := requiredHorizon(ledger.Network(), files, t)
	if err != nil {
		return nil, err
	}
	tg, err := timegraph.Build(ledger.Network(), t, horizon)
	if err != nil {
		return nil, err
	}
	if conf.Pricing == PricingPath {
		return solvePathStateless(tg, ledger, files, conf)
	}
	b, err := prepare(tg, ledger, files, conf, nil)
	if err != nil {
		return nil, err
	}
	opts := conf.lpOptions()
	crashed := false
	if opts.InitialBasis == nil {
		opts.InitialBasis = crashBasis(b)
		crashed = true
	}
	res, _, err := b.solve(&opts)
	if res != nil && crashed {
		// The synthesized crash basis is an internal acceleration, not a
		// caller-provided warm start; keep the stateless contract visible.
		res.WarmStarted = false
	}
	return res, err
}

// emptyResult is the no-demand shortcut shared by Solve and Solver.Solve.
func emptyResult(ledger *netmodel.Ledger) *Result {
	return &Result{
		Schedule:    &schedule.Schedule{},
		CostPerSlot: ledger.CostPerSlot(),
		Status:      lp.Optimal,
	}
}

// requiredHorizon validates every file against the network and the solve
// slot and returns the number of time-expanded slots the LP must cover.
func requiredHorizon(nw *netmodel.Network, files []netmodel.File, t int) (int, error) {
	horizon := 0
	for _, f := range files {
		if err := f.Validate(nw); err != nil {
			return 0, err
		}
		if f.Release < t {
			return 0, fmt.Errorf("core: file %d released at %d before solve slot %d", f.ID, f.Release, t)
		}
		if end := f.Release + f.Deadline - t; end > horizon {
			horizon = end
		}
	}
	return horizon, nil
}

// prepare runs the structural routability check and assembles the Postcard
// LP on the given time-expanded graph. The graph's horizon may exceed the
// files' needs (a Solver reuses one skeleton across slots); surplus layers
// contribute no variables or rows, so the assembled model is identical to
// one built on a tight graph.
func prepare(tg *timegraph.Graph, ledger *netmodel.Ledger, files []netmodel.File, conf Config, recycle *builder) (*builder, error) {
	reach, err := routability(tg, files, conf)
	if err != nil {
		return nil, err
	}
	b := newBuilder(recycle, tg, ledger, files, reach, conf)
	if err := b.build(); err != nil {
		return nil, err
	}
	return b, nil
}

// routability runs the structural routability check shared by both
// formulations and returns the per-file reachability tables the model
// construction prunes against (permissive ones under DisablePruning — the
// check itself always uses the true hop distances, so every configuration
// rejects exactly the same inputs).
func routability(tg *timegraph.Graph, files []netmodel.File, conf Config) ([]timegraph.Reachability, error) {
	reach := make([]timegraph.Reachability, len(files))
	var unroutable []int
	for k, f := range files {
		reach[k] = tg.FileReachability(f)
		if reach[k].FromSrc[f.Dst] > f.Deadline {
			unroutable = append(unroutable, f.ID)
		}
	}
	if len(unroutable) > 0 {
		sort.Ints(unroutable)
		return nil, &UnroutableError{FileIDs: unroutable}
	}
	if conf.DisablePruning {
		perm := timegraph.Permissive(tg.Network().NumDCs())
		for k := range reach {
			reach[k] = perm
		}
	}
	return reach, nil
}

// solvePathStateless is the PricingPath branch of the stateless Solve: the
// path master with a cold crash basis, falling back to an arc-model solve
// when the master cannot serve every file (see pathBuilder.solve).
func solvePathStateless(tg *timegraph.Graph, ledger *netmodel.Ledger, files []netmodel.File, conf Config) (*Result, error) {
	reach, err := routability(tg, files, conf)
	if err != nil {
		return nil, err
	}
	pb := newPathBuilder(nil, tg, ledger, files, reach, conf)
	if err := pb.build(); err != nil {
		return nil, err
	}
	opts := conf.lpOptions()
	crashed := false
	if opts.InitialBasis == nil {
		opts.InitialBasis = pathCrashBasis(pb)
		crashed = true
	}
	res, _, fallback, err := pb.solve(&opts)
	if err != nil {
		return nil, err
	}
	if crashed {
		res.WarmStarted = false
	}
	if !fallback {
		return res, nil
	}
	return solveArcFallback(tg, ledger, files, reach, conf, res)
}

// solveArcFallback obtains the authoritative verdict from the arc model
// after a path master terminated with positive artificials, folding the
// path attempt's simplex work into the returned counters.
func solveArcFallback(tg *timegraph.Graph, ledger *netmodel.Ledger, files []netmodel.File, reach []timegraph.Reachability, conf Config, pathRes *Result) (*Result, error) {
	b := newBuilder(nil, tg, ledger, files, reach, conf)
	if err := b.build(); err != nil {
		return nil, err
	}
	opts := conf.lpOptions()
	opts.InitialBasis = crashBasis(b)
	res, _, err := b.solve(&opts)
	if err != nil {
		return nil, err
	}
	res.WarmStarted = false
	res.PathFallbacks = 1
	res.Iterations += pathRes.Iterations
	res.Phase1Iter += pathRes.Phase1Iter
	res.ColGenRounds += pathRes.ColGenRounds
	res.DevexScans += pathRes.DevexScans
	res.ParallelScans += pathRes.ParallelScans
	res.SpecFtrans += pathRes.SpecFtrans
	res.SpecFtranHits += pathRes.SpecFtranHits
	res.PathRecycled += pathRes.PathRecycled
	return res, nil
}

// solve runs the assembled LP with the given solver options and converts
// the outcome into a Result. A builder with delayed columns solves by
// column generation; one fully materialized (DisableColGen, or a universe
// the restriction covers) solves directly. The raw lp.Solution is returned
// alongside so the incremental Solver can harvest its basis snapshot.
func (b *builder) solve(opts *lp.Options) (*Result, *lp.Solution, error) {
	var sol *lp.Solution
	var err error
	if len(b.delayed) > 0 {
		sol, err = lp.SolveColGen(b.model, b, opts)
	} else {
		sol, err = b.model.Solve(opts)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("core: solving Postcard LP: %w", err)
	}
	res := &Result{
		Status:         sol.Status,
		Iterations:     sol.Iterations,
		Phase1Iter:     sol.Phase1Iter,
		Variables:      b.model.NumVariables(),
		Constraints:    b.model.NumConstraints(),
		WarmStarted:    sol.WarmStarted,
		PresolveCols:   sol.PresolveCols,
		PresolveRows:   sol.PresolveRows,
		SparseSolves:   sol.SparseSolves,
		DenseSolves:    sol.DenseSolves,
		SolveNNZ:       sol.SolveNNZ,
		SolveDim:       sol.SolveDim,
		DevexResets:    sol.DevexResets,
		DualRecomputes: sol.DualRecomputes,
		BackendWorkers: sol.BackendWorkers,
		DevexScans:     sol.DevexScans,
		ParallelScans:  sol.ParallelScans,
		SpecFtrans:     sol.SpecFtrans,
		SpecFtranHits:  sol.SpecFtranHits,
		VarUniverse:    b.varUniverse,
		PrunedVars:     b.prunedVars,
		PrunedRows:     b.prunedRows,
		ColGenRounds:   sol.ColGenRounds,
		ColGenColumns:  sol.ColGenColumns,
		ColGenUniverse: sol.ColGenUniverse,
		ColGenRows:     sol.ColGenRows,
	}
	if sol.Status != lp.Optimal {
		return res, sol, nil
	}
	res.Schedule = b.extractSchedule(sol)
	res.CostPerSlot = b.chargedCost(sol)
	if !b.conf.SkipVerify {
		vc := schedule.VerifyConfig{
			Residual: func(i, j netmodel.DC, slot int) float64 { return b.ledger.Residual(i, j, slot) },
			Tol:      1e-4, // GB; matches LP tolerance noise on multi-GB files
		}
		if err := schedule.Verify(res.Schedule, b.tg.Network(), b.files, vc); err != nil {
			return nil, nil, fmt.Errorf("core: optimizer produced an invalid schedule: %w", err)
		}
	}
	return res, sol, nil
}

// modelKey identifies one LP column or row of a Postcard model
// structurally, independent of the model it appears in. Keys let the
// incremental Solver translate a basis snapshot taken on one slot's model
// onto the next slot's model: positions whose keys match carry their resting
// status over, everything else falls back to a safe default. Slots and
// layers are absolute, so a key minted at slot t still names the same
// physical quantity at slot t+1.
type modelKey struct {
	kind int8
	file int         // file ID for kindM/kindCons, -1 otherwise
	from netmodel.DC // link tail, or the datacenter for kindCons
	to   netmodel.DC // link head, -1 for kindCons
	slot int         // absolute slot (edges) or layer (kindCons), -1 for kindX
}

// modelKey kinds.
const (
	kindX      int8 = iota + 1 // charged-volume epigraph column of one link
	kindM                      // per-file edge column
	kindCap                    // capacity row of one transfer edge
	kindCharge                 // charge (epigraph) row of one transfer edge
	kindCons                   // conservation row of one (file, dc, layer)
	kindDemand                 // path master: convexity (demand) row of one file
	kindArt                    // path master: big-M artificial column of one file
	kindPath                   // path master: one path column (slot holds the path hash)
)

// varDelayed marks a (file, edge) pair that belongs to the pruned variable
// universe but has not been materialized into the restricted master yet;
// column generation turns it into a real variable if it ever prices out
// attractive. Distinct from -1 ("not in the universe at all").
const varDelayed lp.VarID = -2

// delayedCol addresses one uninstantiated column of the universe.
type delayedCol struct {
	file int32 // index into builder.files
	edge int32 // edge index in the time-expanded graph
}

// builder assembles the Postcard LP.
type builder struct {
	tg     *timegraph.Graph
	ledger *netmodel.Ledger
	files  []netmodel.File
	reach  []timegraph.Reachability
	conf   Config

	model *lp.Model
	// mvars[k] maps edge index -> variable; -1 when the file cannot use the
	// edge, varDelayed when the column exists in the universe but is not
	// materialized.
	mvars [][]lp.VarID
	// xvars maps link -> epigraph variable for the charged volume.
	xvars map[netmodel.Link]lp.VarID
	// colKeys[j] / rowKeys[i] are the structural identities of column j and
	// row i, recorded in the exact AddVariable/AddConstraint order
	// (generated columns append in materialization order).
	colKeys []modelKey
	rowKeys []modelKey

	// Row registries for implicit column pricing: capRow/chargeRow map edge
	// index -> row (-1 when absent); consRow[k] maps (layer-first)*n+dc of
	// file k's window to its conservation row. Rows are emitted from
	// universe support, so every delayed column's four rows exist before
	// the first solve.
	capRow    []lp.ConID
	chargeRow []lp.ConID
	consRow   [][]lp.ConID
	consFirst []int
	// delayed lists the uninstantiated universe in deterministic
	// (file, edge-index) order.
	delayed []delayedCol
	// crashEdge marks, per build of one file, the transfer edges of its
	// crash route (materialized eagerly so the crash basis works on the
	// restricted master).
	crashEdge []bool
	// rowIdx/rowVal are the constraint-assembly scratch; colCons is the
	// four-row support scratch of Materialize.
	rowIdx  []lp.VarID
	rowVal  []float64
	colCons [4]lp.ConID

	varUniverse int
	prunedVars  int
	prunedRows  int
}

// newBuilder prepares a builder for one LP construction. A non-nil recycle
// builder donates every backing allocation of its previous build (model
// rows and columns, variable maps, key and registry slices), so incremental
// per-slot solvers assemble each slot's LP with almost no garbage; pass nil
// for a one-shot build.
func newBuilder(recycle *builder, tg *timegraph.Graph, ledger *netmodel.Ledger, files []netmodel.File, reach []timegraph.Reachability, conf Config) *builder {
	b := recycle
	if b == nil {
		b = &builder{
			model: lp.NewModel(),
			xvars: make(map[netmodel.Link]lp.VarID),
		}
	} else {
		b.model.Reset()
		clear(b.xvars)
		b.colKeys = b.colKeys[:0]
		b.rowKeys = b.rowKeys[:0]
		b.delayed = b.delayed[:0]
	}
	b.tg = tg
	b.ledger = ledger
	b.files = files
	b.reach = reach
	b.conf = conf
	b.varUniverse, b.prunedVars, b.prunedRows = 0, 0, 0
	return b
}

// intSlice returns s resized to n, reusing its backing array when possible.
func intSlice[T lp.VarID | lp.ConID | int | bool | float64](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// addMVar materializes the column of file k on edge e.
func (b *builder) addMVar(k int, e timegraph.Edge) lp.VarID {
	f := b.files[k]
	obj := 0.0
	if !e.Storage {
		obj = b.conf.Epsilon
	}
	v := b.model.AddVariable(0, f.Size, obj, "")
	b.mvars[k][e.Index] = v
	b.colKeys = append(b.colKeys, modelKey{kind: kindM, file: f.ID, from: e.From, to: e.To, slot: e.Slot})
	return v
}

func (b *builder) build() error {
	nw := b.tg.Network()
	pinf := math.Inf(1)
	// Charged-volume epigraph variables, one per priced link, floored at
	// the volume already charged (the running X_ij(t-1) plus committed
	// future peaks).
	nw.Links(func(l netmodel.Link, price, _ float64) {
		b.xvars[l] = b.model.AddVariable(b.ledger.ChargedVolume(l.From, l.To), pinf, price, "")
		b.colKeys = append(b.colKeys, modelKey{kind: kindX, file: -1, from: l.From, to: l.To, slot: -1})
	})
	// Per-file transfer/holdover universe over the file's pruned subgraph.
	// The restricted master materializes storage arcs and each file's crash
	// route immediately; remaining transfer columns stay delayed and enter
	// by column generation (all of them at once under DisableColGen).
	if cap(b.mvars) < len(b.files) {
		b.mvars = make([][]lp.VarID, len(b.files))
	} else {
		b.mvars = b.mvars[:len(b.files)]
	}
	b.crashEdge = intSlice(b.crashEdge, b.tg.NumEdges())
	for k, f := range b.files {
		b.mvars[k] = intSlice(b.mvars[k], b.tg.NumEdges())
		for i := range b.mvars[k] {
			b.mvars[k][i] = -1
		}
		first, last, ok := b.tg.FileWindow(f)
		if !ok {
			return fmt.Errorf("core: file %d outside graph horizon", f.ID)
		}
		b.markCrashRoute(k)
		r := b.reach[k]
		errOut := error(nil)
		b.tg.Edges(func(e timegraph.Edge) {
			if errOut != nil || e.Slot < first || e.Slot > last {
				return
			}
			if e.Storage {
				switch b.conf.Storage {
				case StorageEndpointsOnly:
					if e.From != f.Src && e.From != f.Dst {
						return
					}
				case StorageNone:
					return
				}
			}
			if !r.Allowed(f, e.From, e.Slot) || !r.Allowed(f, e.To, e.Slot+1) {
				b.prunedVars++
				return
			}
			b.varUniverse++
			if b.conf.DisableColGen || e.Storage || b.crashEdge[e.Index] {
				b.addMVar(k, e)
				return
			}
			b.mvars[k][e.Index] = varDelayed
			b.delayed = append(b.delayed, delayedCol{file: int32(k), edge: int32(e.Index)})
		})
		if errOut != nil {
			return errOut
		}
	}
	if err := b.addCapacityAndCharge(); err != nil {
		return err
	}
	return b.addConservation()
}

// markCrashRoute flags, in b.crashEdge, the transfer edges of file k's
// crash route (BFS shortest-hop path shipped immediately at release). These
// columns are materialized eagerly so crashBasis can make the route basic
// on the restricted master; the destination holdovers it also needs are
// storage arcs, which are always materialized. Unset flags from the
// previous file are cleared first.
func (b *builder) markCrashRoute(k int) {
	for i := range b.crashEdge {
		b.crashEdge[i] = false
	}
	f := b.files[k]
	path, ok := shortestHopPath(b.tg.Network(), f.Src, f.Dst)
	if !ok {
		return
	}
	hops := len(path) - 1
	deadlineLayer := f.Release + f.Deadline
	if clamp := b.tg.Start() + b.tg.Horizon(); deadlineLayer > clamp {
		deadlineLayer = clamp
	}
	if f.Release+hops > deadlineLayer {
		return
	}
	for i := 0; i < hops; i++ {
		if e, found := b.tg.EdgeAt(path[i], path[i+1], f.Release+i); found {
			b.crashEdge[e.Index] = true
		}
	}
}

// addCapacityAndCharge emits constraint (7) (per-edge capacity against the
// residual ledger) and the epigraph rows linearizing the charged volume:
// X_ij >= committed(i,j,n) + sum_k M_ijn for every slot n with variables.
// Rows exist wherever the variable UNIVERSE has support — materialized or
// delayed — so the restricted master has exactly the full model's rows and
// generated columns only ever append coefficients to rows already present.
// Coefficients are of course emitted only for materialized columns.
func (b *builder) addCapacityAndCharge() error {
	ne := b.tg.NumEdges()
	b.capRow = intSlice(b.capRow, ne)
	b.chargeRow = intSlice(b.chargeRow, ne)
	for i := 0; i < ne; i++ {
		b.capRow[i], b.chargeRow[i] = -1, -1
	}
	errOut := error(nil)
	b.tg.Edges(func(e timegraph.Edge) {
		if errOut != nil || e.Storage {
			return
		}
		b.rowIdx = b.rowIdx[:0]
		b.rowVal = b.rowVal[:0]
		universe := 0
		for k := range b.files {
			v := b.mvars[k][e.Index]
			if v == -1 {
				continue
			}
			universe++
			if v >= 0 {
				b.rowIdx = append(b.rowIdx, v)
				b.rowVal = append(b.rowVal, 1)
			}
		}
		if universe == 0 {
			return
		}
		residual := b.ledger.Residual(e.From, e.To, e.Slot)
		capID, err := b.model.AddConstraint(lp.LE, residual, b.rowIdx, b.rowVal)
		if err != nil {
			errOut = err
			return
		}
		// Reserve the full universe support so materialized delayed columns
		// append into place without reallocating the row.
		b.model.ReserveRow(capID, universe)
		b.capRow[e.Index] = capID
		b.rowKeys = append(b.rowKeys, modelKey{kind: kindCap, file: -1, from: e.From, to: e.To, slot: e.Slot})
		// Charge row: sum_k M - X <= -committedVolume.
		committed := b.ledger.VolumeAt(e.From, e.To, e.Slot)
		x := b.xvars[netmodel.Link{From: e.From, To: e.To}]
		b.rowIdx = append(b.rowIdx, x)
		b.rowVal = append(b.rowVal, -1)
		chargeID, err := b.model.AddConstraint(lp.LE, -committed, b.rowIdx, b.rowVal)
		if err != nil {
			errOut = err
			return
		}
		b.model.ReserveRow(chargeID, universe+1)
		b.chargeRow[e.Index] = chargeID
		b.rowKeys = append(b.rowKeys, modelKey{kind: kindCharge, file: -1, from: e.From, to: e.To, slot: e.Slot})
	})
	return errOut
}

// addConservation emits constraints (8): per file, flow out of the source
// at its release layer equals the size, flow into the destination at the
// deadline layer equals the size, and inflow equals outflow at every other
// (datacenter, layer) of the file's subgraph. Like the edge rows, a
// conservation row exists wherever the variable universe has support, and
// its handle is recorded in consRow so delayed columns can price against
// it; (datacenter, layer) pairs reachability disproves are counted in
// prunedRows instead of emitted.
func (b *builder) addConservation() error {
	nw := b.tg.Network()
	n := nw.NumDCs()
	if cap(b.consRow) < len(b.files) {
		b.consRow = make([][]lp.ConID, len(b.files))
	} else {
		b.consRow = b.consRow[:len(b.files)]
	}
	b.consFirst = intSlice(b.consFirst, len(b.files))
	for k, f := range b.files {
		first, last, _ := b.tg.FileWindow(f)
		r := b.reach[k]
		deadlineLayer := f.Release + f.Deadline
		if clamp := b.tg.Start() + b.tg.Horizon(); deadlineLayer > clamp {
			deadlineLayer = clamp
		}
		b.consFirst[k] = first
		b.consRow[k] = intSlice(b.consRow[k], (deadlineLayer-first+1)*n)
		for i := range b.consRow[k] {
			b.consRow[k][i] = -1
		}
		for layer := first; layer <= deadlineLayer; layer++ {
			for dc := 0; dc < n; dc++ {
				d := netmodel.DC(dc)
				if !r.Allowed(f, d, layer) {
					b.prunedRows++
					continue
				}
				b.rowIdx = b.rowIdx[:0]
				b.rowVal = b.rowVal[:0]
				universe := 0
				scan := func(e timegraph.Edge, ok bool, coef float64) {
					if !ok {
						return
					}
					v := b.mvars[k][e.Index]
					if v == -1 {
						return
					}
					universe++
					if v >= 0 {
						b.rowIdx = append(b.rowIdx, v)
						b.rowVal = append(b.rowVal, coef)
					}
				}
				// Outflow during slot == layer (absent at the final layer).
				if layer <= last {
					for to := 0; to < n; to++ {
						e, ok := b.tg.EdgeAt(d, netmodel.DC(to), layer)
						scan(e, ok, 1)
					}
				}
				// Inflow during slot == layer-1 (absent at the first layer).
				if layer > first {
					for from := 0; from < n; from++ {
						e, ok := b.tg.EdgeAt(netmodel.DC(from), d, layer-1)
						scan(e, ok, -1)
					}
				}
				rhs := 0.0
				switch {
				case layer == f.Release && d == f.Src:
					rhs = f.Size // all data leaves the source copy
				case layer == deadlineLayer && d == f.Dst:
					rhs = -f.Size // all data has arrived
				}
				if universe == 0 {
					if rhs != 0 {
						return fmt.Errorf("core: file %d has no variables to satisfy its %s constraint",
							f.ID, map[bool]string{true: "source", false: "destination"}[rhs > 0])
					}
					continue
				}
				row, err := b.model.AddConstraint(lp.EQ, rhs, b.rowIdx, b.rowVal)
				if err != nil {
					return err
				}
				b.model.ReserveRow(row, universe)
				b.consRow[k][(layer-first)*n+dc] = row
				b.rowKeys = append(b.rowKeys, modelKey{kind: kindCons, file: f.ID, from: d, to: -1, slot: layer})
			}
		}
	}
	return nil
}

// Len implements lp.ColumnSource over the delayed transfer columns.
func (b *builder) Len() int { return len(b.delayed) }

// Price implements lp.ColumnSource: the reduced cost of delayed column c
// under row duals y. A transfer column M^k_ijn carries objective Epsilon and
// exactly four row coefficients — +1 in the edge's capacity and charge rows,
// +1 in the tail conservation row (i, n) and -1 in the head row (j, n+1) —
// all of which exist by construction (rows are emitted on universe support).
func (b *builder) Price(c int, y []float64) float64 {
	d := b.delayed[c]
	e := b.tg.Edge(int(d.edge))
	out, in := b.consRows(d)
	return b.conf.Epsilon -
		y[b.capRow[e.Index]] - y[b.chargeRow[e.Index]] -
		y[out] + y[in]
}

// consRows returns the tail and head conservation rows of delayed column d.
func (b *builder) consRows(d delayedCol) (out, in lp.ConID) {
	k := int(d.file)
	e := b.tg.Edge(int(d.edge))
	n := b.tg.Network().NumDCs()
	first := b.consFirst[k]
	out = b.consRow[k][(e.Slot-first)*n+int(e.From)]
	in = b.consRow[k][(e.Slot+1-first)*n+int(e.To)]
	return out, in
}

// Materialize implements lp.ColumnSource, grafting delayed column c onto the
// restricted master with its full coefficient support.
func (b *builder) Materialize(m *lp.Model, c int) (lp.VarID, error) {
	d := b.delayed[c]
	k := int(d.file)
	f := b.files[k]
	e := b.tg.Edge(int(d.edge))
	out, in := b.consRows(d)
	b.colCons[0], b.colCons[1], b.colCons[2], b.colCons[3] =
		b.capRow[e.Index], b.chargeRow[e.Index], out, in
	v, err := m.AddColumn(0, f.Size, b.conf.Epsilon, "", b.colCons[:], colCoef[:])
	if err != nil {
		return -1, err
	}
	b.mvars[k][e.Index] = v
	b.colKeys = append(b.colKeys, modelKey{kind: kindM, file: f.ID, from: e.From, to: e.To, slot: e.Slot})
	return v, nil
}

// colCoef is the coefficient pattern every transfer column shares, parallel
// to the builder's colCons scratch: capacity +1, charge +1, tail
// conservation +1, head conservation -1.
var colCoef = [4]float64{1, 1, 1, -1}

// extractSchedule converts positive variables of the solution into actions.
// Values at solver-noise scale are dropped; the verifier runs with a
// matching tolerance.
func (b *builder) extractSchedule(sol *lp.Solution) *schedule.Schedule {
	const tol = 1e-5
	s := &schedule.Schedule{}
	for k, f := range b.files {
		for idx, v := range b.mvars[k] {
			if v < 0 {
				continue
			}
			amount := sol.Value(v)
			if amount <= tol {
				continue
			}
			e := b.tg.Edge(idx)
			s.Add(schedule.Action{
				FileID: f.ID,
				From:   e.From,
				To:     e.To,
				Slot:   e.Slot,
				Amount: amount,
			})
		}
	}
	return s
}

// chargedCost evaluates sum over links of price * X at the LP optimum.
func (b *builder) chargedCost(sol *lp.Solution) float64 {
	total := 0.0
	nw := b.tg.Network()
	nw.Links(func(l netmodel.Link, price, _ float64) {
		total += price * sol.Value(b.xvars[l])
	})
	return total
}
