package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
)

// pathTestInstance builds a small ring+chords instance shared by the
// deterministic path-pricing tests.
func pathTestInstance(t *testing.T, n int, capacity float64, seed int64) (*netmodel.Ledger, *netmodel.Network) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nw, err := netmodel.NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for _, j := range []int{(i + 1) % n, (i + n - 1) % n} {
			if !nw.HasLink(netmodel.DC(i), netmodel.DC(j)) {
				if err := nw.SetLink(netmodel.DC(i), netmodel.DC(j), 1+float64(rng.Intn(9)), capacity); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(32))
	if err != nil {
		t.Fatal(err)
	}
	return ledger, nw
}

// comparePathToArc solves the same instance under path pricing and under
// the arc default, requiring identical status and (when optimal) matching
// objectives within the Epsilon tie-breaking tolerance. It returns the two
// results for additional checks.
func comparePathToArc(t *testing.T, ledger *netmodel.Ledger, files []netmodel.File, at int, base Config) (pathRes, arcRes *Result) {
	t.Helper()
	pathCfg := base
	pathCfg.Pricing = PricingPath
	arcCfg := base
	arcCfg.Pricing = PricingArc
	pathRes, err := Solve(ledger, files, at, &pathCfg)
	if err != nil {
		t.Fatalf("path solve: %v", err)
	}
	arcRes, err = Solve(ledger, files, at, &arcCfg)
	if err != nil {
		t.Fatalf("arc solve: %v", err)
	}
	if pathRes.Status != arcRes.Status {
		t.Fatalf("path status %v, arc status %v", pathRes.Status, arcRes.Status)
	}
	if pathRes.Status == lp.Optimal {
		tol := 1e-3 * (1 + math.Abs(arcRes.CostPerSlot))
		if math.Abs(pathRes.CostPerSlot-arcRes.CostPerSlot) > tol {
			t.Fatalf("path objective %v, arc objective %v (diff %g)",
				pathRes.CostPerSlot, arcRes.CostPerSlot,
				math.Abs(pathRes.CostPerSlot-arcRes.CostPerSlot))
		}
	}
	return pathRes, arcRes
}

// TestPathPricingMatchesArc pins the basic equivalence on a deterministic
// multi-file instance with pre-committed traffic, and checks that the path
// master actually generated columns and lazy rows.
func TestPathPricingMatchesArc(t *testing.T) {
	ledger, _ := pathTestInstance(t, 6, 40, 7)
	if err := ledger.Add(0, 1, 0, 25); err != nil {
		t.Fatal(err)
	}
	files := []netmodel.File{
		{ID: 0, Src: 0, Dst: 3, Size: 30, Release: 0, Deadline: 4},
		{ID: 1, Src: 1, Dst: 4, Size: 20, Release: 0, Deadline: 3},
		{ID: 2, Src: 5, Dst: 2, Size: 15, Release: 1, Deadline: 3},
	}
	pathRes, _ := comparePathToArc(t, ledger, files, 0, Config{})
	if pathRes.Status != lp.Optimal {
		t.Fatalf("expected optimal, got %v", pathRes.Status)
	}
	if pathRes.ColGenColumns == 0 {
		t.Error("path master generated no columns")
	}
	if pathRes.ColGenRows == 0 {
		t.Error("path master materialized no lazy rows")
	}
	if pathRes.PathFallbacks != 0 {
		t.Errorf("unexpected arc fallback on a feasible instance")
	}
	if pathRes.Schedule == nil {
		t.Fatal("optimal path result carries no schedule")
	}
}

// TestPathPricingStoragePolicies checks the equivalence under every
// holdover policy — the path oracle enforces the policy inside the
// shortest-path weight function, a different mechanism from the arc
// builder's variable filter.
func TestPathPricingStoragePolicies(t *testing.T) {
	for _, policy := range []StoragePolicy{StorageEverywhere, StorageEndpointsOnly, StorageNone} {
		ledger, _ := pathTestInstance(t, 5, 60, 11)
		files := []netmodel.File{
			{ID: 0, Src: 0, Dst: 2, Size: 25, Release: 0, Deadline: 4},
			{ID: 1, Src: 3, Dst: 1, Size: 10, Release: 0, Deadline: 2},
		}
		comparePathToArc(t, ledger, files, 0, Config{Storage: policy})
	}
}

// TestPathPricingWorkerCounts pins bit-determinism across worker-pool
// widths: the schedule cost and the generation counters must be identical
// whether pricing runs serially or fanned out.
func TestPathPricingWorkerCounts(t *testing.T) {
	var ref *Result
	for _, workers := range []int{1, 2, 8} {
		ledger, _ := pathTestInstance(t, 8, 35, 13)
		files := []netmodel.File{
			{ID: 0, Src: 0, Dst: 4, Size: 30, Release: 0, Deadline: 5},
			{ID: 1, Src: 2, Dst: 7, Size: 22, Release: 0, Deadline: 4},
			{ID: 2, Src: 6, Dst: 1, Size: 18, Release: 1, Deadline: 4},
			{ID: 3, Src: 5, Dst: 3, Size: 12, Release: 0, Deadline: 3},
		}
		cfg := Config{Pricing: PricingPath, PricingWorkers: workers}
		res, err := Solve(ledger, files, 0, &cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.CostPerSlot != ref.CostPerSlot {
			t.Errorf("workers=%d: cost %v, workers=1 cost %v", workers, res.CostPerSlot, ref.CostPerSlot)
		}
		if res.ColGenColumns != ref.ColGenColumns || res.ColGenRounds != ref.ColGenRounds ||
			res.ColGenRows != ref.ColGenRows {
			t.Errorf("workers=%d: generation counters (%d cols, %d rounds, %d rows) differ from serial (%d, %d, %d)",
				workers, res.ColGenColumns, res.ColGenRounds, res.ColGenRows,
				ref.ColGenColumns, ref.ColGenRounds, ref.ColGenRows)
		}
	}
}

// TestPathPricingInfeasibleFallback starves capacity so the instance is
// infeasible: the path master's artificials stay positive and the verdict
// must come from the arc fallback, flagged in PathFallbacks and agreeing
// with a direct arc solve.
func TestPathPricingInfeasibleFallback(t *testing.T) {
	ledger, _ := pathTestInstance(t, 4, 5, 3)
	files := []netmodel.File{
		{ID: 0, Src: 0, Dst: 2, Size: 50, Release: 0, Deadline: 2},
	}
	pathRes, arcRes := comparePathToArc(t, ledger, files, 0, Config{})
	if arcRes.Status != lp.Infeasible {
		t.Fatalf("instance unexpectedly feasible (status %v); fallback not exercised", arcRes.Status)
	}
	if pathRes.PathFallbacks != 1 {
		t.Errorf("expected PathFallbacks=1, got %d", pathRes.PathFallbacks)
	}
}

// TestPathPricingIncrementalSolver drives the incremental Solver in path
// mode over several slots — including an infeasible shedding retry — and
// compares every slot against the stateless arc solve of the identical
// ledger state.
func TestPathPricingIncrementalSolver(t *testing.T) {
	ledger, _ := pathTestInstance(t, 6, 30, 17)
	shadow, _ := pathTestInstance(t, 6, 30, 17)
	rng := rand.New(rand.NewSource(99))
	solver := NewSolver(&Config{Pricing: PricingPath})
	for slot := 0; slot < 6; slot++ {
		nFiles := 1 + rng.Intn(3)
		files := make([]netmodel.File, nFiles)
		for k := range files {
			src := rng.Intn(6)
			dst := rng.Intn(6)
			if src == dst {
				dst = (dst + 1) % 6
			}
			files[k] = netmodel.File{
				ID: slot*10 + k, Src: netmodel.DC(src), Dst: netmodel.DC(dst),
				Size: 5 + 25*rng.Float64(), Release: slot, Deadline: 1 + rng.Intn(4),
			}
		}
		for {
			res, err := solver.Solve(ledger, files, slot)
			var ue *UnroutableError
			if errors.As(err, &ue) {
				if len(files) == 1 {
					break // nothing routable this slot
				}
				files = files[:len(files)-1]
				continue
			}
			if err != nil {
				t.Fatalf("slot %d: %v", slot, err)
			}
			ref, err := Solve(shadow, files, slot, nil)
			if err != nil {
				t.Fatalf("slot %d: arc reference: %v", slot, err)
			}
			if res.Status != ref.Status {
				t.Fatalf("slot %d: path status %v, arc %v", slot, res.Status, ref.Status)
			}
			if res.Status == lp.Optimal {
				tol := 1e-3 * (1 + math.Abs(ref.CostPerSlot))
				if math.Abs(res.CostPerSlot-ref.CostPerSlot) > tol {
					t.Fatalf("slot %d: path objective %v, arc %v", slot, res.CostPerSlot, ref.CostPerSlot)
				}
				if err := res.Schedule.Apply(ledger); err != nil {
					t.Fatalf("slot %d: applying path plan: %v", slot, err)
				}
				// Apply the same plan to the shadow ledger so both solvers keep
				// seeing identical residual state.
				if err := res.Schedule.Apply(shadow); err != nil {
					t.Fatalf("slot %d: applying to shadow: %v", slot, err)
				}
				break
			}
			if len(files) == 1 {
				break // slot truly unserveable; move on
			}
			files = files[:len(files)-1] // shed and retry, exercising the same-slot warm map
		}
	}
	stats := solver.Stats()
	if stats.PathSolves == 0 {
		t.Error("incremental solver recorded no path solves")
	}
	if stats.PathSolves != stats.Solves {
		t.Errorf("PathSolves %d != Solves %d under PricingPath", stats.PathSolves, stats.Solves)
	}
}

// TestPathPricingRecyclesColumns drives the warm Solver in path mode over
// consecutive slots with a recurring traffic pattern: the same (src, dst)
// pairs reappear each slot, so path columns harvested from one slot's
// optimal basis should seed the next slot's master and be counted in
// SolveStats.PathRecycled. Recycling is a warm start, never a restriction —
// every slot must still match the stateless arc solve of the same state.
func TestPathPricingRecyclesColumns(t *testing.T) {
	ledger, _ := pathTestInstance(t, 6, 50, 23)
	shadow, _ := pathTestInstance(t, 6, 50, 23)
	solver := NewSolver(&Config{Pricing: PricingPath})
	pairs := []netmodel.Link{{From: 0, To: 3}, {From: 1, To: 4}, {From: 5, To: 2}}
	for slot := 0; slot < 4; slot++ {
		files := make([]netmodel.File, len(pairs))
		for k, p := range pairs {
			files[k] = netmodel.File{
				ID: slot*10 + k, Src: p.From, Dst: p.To,
				Size: 8 + float64(k), Release: slot, Deadline: 3,
			}
		}
		res, err := solver.Solve(ledger, files, slot)
		if err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		ref, err := Solve(shadow, files, slot, nil)
		if err != nil {
			t.Fatalf("slot %d: arc reference: %v", slot, err)
		}
		if res.Status != ref.Status {
			t.Fatalf("slot %d: path status %v, arc %v", slot, res.Status, ref.Status)
		}
		if res.Status != lp.Optimal {
			t.Fatalf("slot %d: expected optimal, got %v", slot, res.Status)
		}
		tol := 1e-3 * (1 + math.Abs(ref.CostPerSlot))
		if math.Abs(res.CostPerSlot-ref.CostPerSlot) > tol {
			t.Fatalf("slot %d: path objective %v, arc %v", slot, res.CostPerSlot, ref.CostPerSlot)
		}
		if slot == 0 && res.PathRecycled != 0 {
			t.Errorf("slot 0 recycled %d columns with an empty retention cache", res.PathRecycled)
		}
		if err := res.Schedule.Apply(ledger); err != nil {
			t.Fatalf("slot %d: applying plan: %v", slot, err)
		}
		if err := res.Schedule.Apply(shadow); err != nil {
			t.Fatalf("slot %d: applying to shadow: %v", slot, err)
		}
	}
	stats := solver.Stats()
	if stats.PathRecycled == 0 {
		t.Error("warm path solver recycled no columns across recurring-demand slots")
	}
	// Reset must drop the retained paths along with the warm maps: a fresh
	// epoch's first solve starts from an empty cache again.
	solver.Reset()
	files := []netmodel.File{{ID: 100, Src: 0, Dst: 3, Size: 10, Release: 6, Deadline: 3}}
	res, err := solver.Solve(ledger, files, 6)
	if err != nil {
		t.Fatalf("post-reset solve: %v", err)
	}
	if res.PathRecycled != 0 {
		t.Errorf("post-Reset solve recycled %d columns; retention cache not cleared", res.PathRecycled)
	}
}

// FuzzPathPricingObjective is the PR 9 equivalence gate: on random
// ring-plus-chords instances, Dantzig–Wolfe path pricing must report the
// same LP status and optimal objective as both the arc-colgen default and
// the fully materialized unpruned model, and its implicit-universe
// accounting must tie out against the full model exactly like the sparse
// arc construction's.
func FuzzPathPricingObjective(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(40), uint8(60), uint8(0))
	f.Add(int64(2), uint8(6), uint8(5), uint8(12), uint8(30), uint8(1))
	f.Add(int64(3), uint8(3), uint8(1), uint8(200), uint8(0), uint8(2))
	f.Add(int64(4), uint8(8), uint8(7), uint8(25), uint8(90), uint8(0))
	f.Add(int64(5), uint8(5), uint8(4), uint8(8), uint8(50), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, filesRaw, capRaw, loadRaw, policyRaw uint8) {
		n := 3 + int(nRaw)%6                     // 3-8 datacenters
		nFiles := 1 + int(filesRaw)%6            // 1-6 files
		capacity := 4 + float64(int(capRaw)%200) // GB/slot
		policy := StoragePolicy(int(policyRaw) % 3)
		rng := rand.New(rand.NewSource(seed))

		nw, err := netmodel.NewNetwork(n)
		if err != nil {
			t.Fatal(err)
		}
		addLink := func(i, j int) {
			price := 1 + float64(rng.Intn(9))
			if err := nw.SetLink(netmodel.DC(i), netmodel.DC(j), price, capacity); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			addLink(i, (i+1)%n)
			addLink((i+1)%n, i)
		}
		chords := rng.Intn(n)
		for c := 0; c < chords; c++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i != j && !nw.HasLink(netmodel.DC(i), netmodel.DC(j)) {
				addLink(i, j)
			}
		}

		ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(32))
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < int(loadRaw)%8; c++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if !nw.HasLink(netmodel.DC(i), netmodel.DC(j)) {
				continue
			}
			amt := capacity * rng.Float64() * 0.8
			if err := ledger.Add(netmodel.DC(i), netmodel.DC(j), rng.Intn(4), amt); err != nil {
				t.Fatal(err)
			}
		}

		files := make([]netmodel.File, nFiles)
		for k := range files {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			if src == dst {
				dst = (dst + 1) % n
			}
			files[k] = netmodel.File{
				ID:       k,
				Src:      netmodel.DC(src),
				Dst:      netmodel.DC(dst),
				Size:     0.5 + 20*rng.Float64(),
				Release:  rng.Intn(3),
				Deadline: 1 + rng.Intn(6),
			}
		}
		solveAt := 0

		configs := []Config{
			{Storage: policy, Pricing: PricingPath},                                          // path master
			{Storage: policy, Pricing: PricingPath, PricingWorkers: 3, DisablePruning: true}, // path master, permissive reach, parallel pricing
			{Storage: policy}, // arc colgen default
			{Storage: policy, DisableColGen: true, DisablePruning: true}, // full arc model
		}
		results := make([]*Result, len(configs))
		for i := range configs {
			res, err := Solve(ledger, files, solveAt, &configs[i])
			if err != nil {
				var ue *UnroutableError
				if errors.As(err, &ue) {
					for j := range configs {
						if _, err2 := Solve(ledger, files, solveAt, &configs[j]); !errors.As(err2, &ue) {
							t.Fatalf("config %d rejected the instance as unroutable but config %d did not: %v", i, j, err2)
						}
					}
					t.Skip("unroutable instance")
				}
				t.Fatalf("config %+v: %v", configs[i], err)
			}
			results[i] = res
		}
		ref := results[len(configs)-1] // full arc model
		for i, res := range results {
			if res.Status != ref.Status {
				t.Fatalf("config %+v: status %v, full model %v", configs[i], res.Status, ref.Status)
			}
			if res.Status != lp.Optimal {
				continue
			}
			tol := 1e-3 * (1 + math.Abs(ref.CostPerSlot))
			if math.Abs(res.CostPerSlot-ref.CostPerSlot) > tol {
				t.Fatalf("config %+v: objective %v, full model %v (diff %g)",
					configs[i], res.CostPerSlot, ref.CostPerSlot,
					math.Abs(res.CostPerSlot-ref.CostPerSlot))
			}
		}
		// The path master's implicit universe uses the same accounting as the
		// sparse arc construction: kept + pruned == unpruned.
		path := results[0]
		if path.VarUniverse+path.PrunedVars != ref.VarUniverse {
			t.Fatalf("path universe accounting: kept %d + pruned %d != unpruned %d",
				path.VarUniverse, path.PrunedVars, ref.VarUniverse)
		}
	})
}
