package core

import (
	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
)

// SnapshotKey is the serializable form of one modelKey: the structural
// identity of an LP column or row, stable across processes because it is
// built only from file IDs, datacenter indices, and absolute slots.
type SnapshotKey struct {
	Kind int8 `json:"k"`
	File int  `json:"f"`
	From int  `json:"i"`
	To   int  `json:"j"`
	Slot int  `json:"s"`
}

// SolverSnapshot is the serializable cross-slot state of a Solver: the
// last optimal basis with the structural keys of its columns and rows,
// plus the cumulative work counters. Restoring it into a fresh Solver
// bound to an equivalent network makes the next Solve map the basis
// exactly as an uninterrupted solver would, so a process restart resumes
// the remaining horizon with bit-identical plans (the recycled
// time-expanded graph and builder are rebuilt on demand and never affect
// results — only the GraphReuses counter can differ).
type SolverSnapshot struct {
	// Valid reports whether the snapshot carries warm-start state; a
	// solver that has not solved anything yet snapshots Valid == false
	// with only its counters.
	Valid bool          `json:"valid"`
	PrevT int           `json:"prev_t"`
	Basis *lp.Basis     `json:"basis,omitempty"`
	Cols  []SnapshotKey `json:"cols,omitempty"`
	Rows  []SnapshotKey `json:"rows,omitempty"`
	Stats SolveStats    `json:"stats"`
}

// Snapshot captures the solver's warm-start state and counters. The
// returned value shares nothing with the solver.
func (s *Solver) Snapshot() *SolverSnapshot {
	snap := &SolverSnapshot{Stats: s.stats}
	if !s.valid || s.basis == nil {
		return snap
	}
	snap.Valid = true
	snap.PrevT = s.prevT
	snap.Basis = s.basis.Clone()
	snap.Cols = keysToSnapshot(s.cols)
	snap.Rows = keysToSnapshot(s.rows)
	return snap
}

// Restore primes the solver from a snapshot, binding the warm-start state
// to nw — the network the subsequent Solve calls will run against (the
// cache keys carry absolute slots, so nw must describe the same topology
// and pricing the snapshot was captured under for the resumed plans to
// match). A snapshot without valid state, or one whose shapes do not line
// up, restores only the counters and leaves the solver cold.
func (s *Solver) Restore(nw *netmodel.Network, snap *SolverSnapshot) {
	s.Reset()
	if snap == nil {
		return
	}
	s.stats = snap.Stats
	if !snap.Valid || snap.Basis == nil || nw == nil ||
		snap.Basis.NumVars != len(snap.Cols) || snap.Basis.NumRows != len(snap.Rows) ||
		len(snap.Basis.Status) != snap.Basis.NumVars+snap.Basis.NumRows {
		return
	}
	s.nw = nw
	s.prevT = snap.PrevT
	s.valid = true
	s.basis = snap.Basis.Clone()
	s.cols = snapshotToKeys(snap.Cols)
	s.rows = snapshotToKeys(snap.Rows)
}

func keysToSnapshot(keys []modelKey) []SnapshotKey {
	out := make([]SnapshotKey, len(keys))
	for i, k := range keys {
		out[i] = SnapshotKey{Kind: k.kind, File: k.file, From: int(k.from), To: int(k.to), Slot: k.slot}
	}
	return out
}

func snapshotToKeys(keys []SnapshotKey) []modelKey {
	out := make([]modelKey, len(keys))
	for i, k := range keys {
		out[i] = modelKey{kind: k.Kind, file: k.File, from: netmodel.DC(k.From), to: netmodel.DC(k.To), slot: k.Slot}
	}
	return out
}
