package workload

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

// FuzzReadTrace fuzzes the JSON trace decoder: arbitrary input must either
// fail with an error or yield a Trace whose accessors (MaxSlot,
// TotalVolume, FilesAt, Replay) never panic, whose replay cursor agrees
// with the stateless scan, and which round-trips through WriteJSON. The
// seed corpus includes a recorded trace, hostile edge cases (negative and
// enormous release slots), and the cmd/postcard-solve fixture (an
// instance, not a trace — the decoder must cope gracefully).
func FuzzReadTrace(f *testing.F) {
	if data, err := os.ReadFile("../../cmd/postcard-solve/testdata/relay.json"); err == nil {
		f.Add(data)
	}
	// A genuine recorded trace as the primary seed.
	gen, err := NewUniform(UniformConfig{
		NumDCs: 4, MinFiles: 1, MaxFiles: 3,
		MinSizeGB: 10, MaxSizeGB: 50, MaxDeadline: 3, Seed: 11,
	})
	if err != nil {
		f.Fatal(err)
	}
	var rec bytes.Buffer
	if err := Record(gen, 5).WriteJSON(&rec); err != nil {
		f.Fatal(err)
	}
	f.Add(rec.Bytes())
	f.Add([]byte(`{"files":[]}`))
	f.Add([]byte(`{"files":null}`))
	f.Add([]byte(`{"files":[{"id":1,"src":0,"dst":1,"size":2.5,"deadline":1,"release":-7}]}`))
	f.Add([]byte(`{"files":[{"id":1,"src":0,"dst":1,"size":1,"deadline":1,"release":1099511627776}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`0`))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			if tr != nil {
				t.Fatalf("ReadTrace returned both a trace and error %v", err)
			}
			return
		}
		maxSlot := tr.MaxSlot()
		if len(tr.Files) == 0 && maxSlot != -1 {
			t.Fatalf("MaxSlot = %d for empty trace, want -1", maxSlot)
		}
		_ = tr.TotalVolume()
		// The replay cursor must agree with the stateless scan at the
		// interesting slots, including hostile ones, without panicking or
		// allocating proportionally to the slot values.
		cur := tr.Replay()
		probes := []int{-1, 0, 1, maxSlot}
		for _, f := range tr.Files {
			probes = append(probes, f.Release)
		}
		for _, slot := range probes {
			scan := tr.FilesAt(slot)
			replay := cur.FilesAt(slot)
			if len(scan) == 0 && len(replay) == 0 {
				continue
			}
			if !reflect.DeepEqual(scan, replay) {
				t.Fatalf("slot %d: scan %v, replay %v", slot, scan, replay)
			}
		}
		// Round-trip through our own encoder.
		var buf bytes.Buffer
		if err := tr.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON failed on decoded trace: %v", err)
		}
		again, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(tr, again) {
			t.Fatalf("round-trip mismatch:\nfirst  %+v\nsecond %+v", tr, again)
		}
	})
}
