package workload

import (
	"reflect"
	"sync"
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
)

// TestTraceReplayMatchesFilesAt: a replay cursor must return exactly what
// the stateless Trace.FilesAt scan returns, slot by slot, in order.
func TestTraceReplayMatchesFilesAt(t *testing.T) {
	gen, err := NewUniform(UniformConfig{
		NumDCs: 6, MinFiles: 0, MaxFiles: 4,
		MinSizeGB: 10, MaxSizeGB: 100, MaxDeadline: 3, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := Record(gen, 12)
	cur := tr.Replay()
	for slot := 0; slot < 14; slot++ { // probe past the end too
		want := tr.FilesAt(slot)
		got := cur.FilesAt(slot)
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("slot %d: cursor %v, scan %v", slot, got, want)
		}
	}
	if got := cur.FilesAt(-1); got != nil {
		t.Errorf("FilesAt(-1) = %v, want nil", got)
	}
}

// TestTraceReplayEmptyAndUnsorted: empty traces, negative release slots,
// and out-of-order recordings (only reachable through hand-written JSON)
// must neither panic nor blow up memory; the cursor answers any slot.
func TestTraceReplayEmptyAndUnsorted(t *testing.T) {
	empty := &Trace{}
	if got := empty.Replay().FilesAt(0); got != nil {
		t.Errorf("empty replay FilesAt(0) = %v", got)
	}
	corrupt := &Trace{Files: []netmodel.File{
		{ID: 2, Src: 0, Dst: 1, Size: 5, Deadline: 1, Release: 2},
		{ID: 1, Src: 0, Dst: 1, Size: 5, Deadline: 1, Release: -3},
		{ID: 3, Src: 1, Dst: 0, Size: 5, Deadline: 1, Release: 2},
		{ID: 4, Src: 0, Dst: 1, Size: 5, Deadline: 1, Release: 1 << 40},
	}}
	cur := corrupt.Replay()
	if got := cur.FilesAt(2); len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		t.Errorf("FilesAt(2) = %v, want files 2,3 in recorded order", got)
	}
	if got := cur.FilesAt(-3); len(got) != 1 || got[0].ID != 1 {
		t.Errorf("FilesAt(-3) = %v, want file 1", got)
	}
	if got := cur.FilesAt(1 << 40); len(got) != 1 || got[0].ID != 4 {
		t.Errorf("FilesAt(1<<40) = %v, want file 4", got)
	}
	if got := cur.FilesAt(3); got != nil {
		t.Errorf("FilesAt(3) = %v, want nil", got)
	}
}

// TestTraceReplayConcurrent: many cursors over one immutable trace may
// replay concurrently (run under -race in CI).
func TestTraceReplayConcurrent(t *testing.T) {
	gen, err := NewUniform(UniformConfig{
		NumDCs: 5, MinFiles: 1, MaxFiles: 3,
		MinSizeGB: 1, MaxSizeGB: 2, MaxDeadline: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := Record(gen, 8)
	want := make([][]netmodel.File, 8)
	for s := range want {
		want[s] = tr.FilesAt(s)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cur := tr.Replay()
			for s := 0; s < 8; s++ {
				if !reflect.DeepEqual(cur.FilesAt(s), want[s]) {
					errs[g] = errDiverged
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: replay diverged from scan", g)
		}
	}
}

var errDiverged = &divergedError{}

type divergedError struct{}

func (*divergedError) Error() string { return "replay diverged" }
