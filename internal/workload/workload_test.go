package workload

import (
	"bytes"
	"testing"
	"testing/quick"

	"github.com/interdc/postcard/internal/netmodel"
)

func TestUniformBounds(t *testing.T) {
	cfg := UniformConfig{
		NumDCs: 6, MinFiles: 1, MaxFiles: 5,
		MinSizeGB: 10, MaxSizeGB: 100, MaxDeadline: 4, Seed: 1,
	}
	gen, err := NewUniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for slot := 0; slot < 50; slot++ {
		files := gen.FilesAt(slot)
		if len(files) < 1 || len(files) > 5 {
			t.Fatalf("slot %d: %d files outside [1,5]", slot, len(files))
		}
		for _, f := range files {
			if seen[f.ID] {
				t.Fatalf("duplicate file ID %d", f.ID)
			}
			seen[f.ID] = true
			if f.Src == f.Dst {
				t.Fatalf("file %d has src == dst", f.ID)
			}
			if int(f.Src) < 0 || int(f.Src) >= 6 || int(f.Dst) < 0 || int(f.Dst) >= 6 {
				t.Fatalf("file %d endpoints out of range", f.ID)
			}
			if f.Size < 10 || f.Size > 100 {
				t.Fatalf("file %d size %v outside [10,100]", f.ID, f.Size)
			}
			if f.Deadline < 1 || f.Deadline > 4 {
				t.Fatalf("file %d deadline %d outside [1,4]", f.ID, f.Deadline)
			}
			if f.Release != slot {
				t.Fatalf("file %d release %d != slot %d", f.ID, f.Release, slot)
			}
		}
	}
}

func TestUniformFixedDeadline(t *testing.T) {
	cfg := UniformConfig{
		NumDCs: 4, MinFiles: 2, MaxFiles: 2,
		MinSizeGB: 1, MaxSizeGB: 2, MaxDeadline: 7, FixedDeadline: true, Seed: 3,
	}
	gen, err := NewUniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range gen.FilesAt(0) {
		if f.Deadline != 7 {
			t.Errorf("deadline %d, want fixed 7", f.Deadline)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	cfg := PaperUniformConfig(3, 42)
	g1, err := NewUniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewUniform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 5; slot++ {
		a, b := g1.FilesAt(slot), g2.FilesAt(slot)
		if len(a) != len(b) {
			t.Fatalf("slot %d: lengths differ", slot)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("slot %d file %d: %+v != %+v", slot, i, a[i], b[i])
			}
		}
	}
}

func TestUniformValidation(t *testing.T) {
	bad := []UniformConfig{
		{NumDCs: 1, MinFiles: 1, MaxFiles: 2, MinSizeGB: 1, MaxSizeGB: 2, MaxDeadline: 1},
		{NumDCs: 3, MinFiles: 5, MaxFiles: 2, MinSizeGB: 1, MaxSizeGB: 2, MaxDeadline: 1},
		{NumDCs: 3, MinFiles: 1, MaxFiles: 2, MinSizeGB: 0, MaxSizeGB: 2, MaxDeadline: 1},
		{NumDCs: 3, MinFiles: 1, MaxFiles: 2, MinSizeGB: 3, MaxSizeGB: 2, MaxDeadline: 1},
		{NumDCs: 3, MinFiles: 1, MaxFiles: 2, MinSizeGB: 1, MaxSizeGB: 2, MaxDeadline: 0},
	}
	for i, cfg := range bad {
		if _, err := NewUniform(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestDiurnalIntensity(t *testing.T) {
	cfg := DiurnalConfig{
		Uniform: UniformConfig{
			NumDCs: 5, MinFiles: 8, MaxFiles: 8,
			MinSizeGB: 1, MaxSizeGB: 2, MaxDeadline: 2, Seed: 9,
		},
		Period: 24, Amplitude: 1,
	}
	gen, err := NewDiurnal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Peak at slot 6 (sin = 1): expect ~8 files. Trough at slot 18: ~0.
	peak := len(gen.FilesAt(6))
	trough := len(gen.FilesAt(18))
	if peak <= trough {
		t.Errorf("peak %d should exceed trough %d", peak, trough)
	}
	if trough > 2 {
		t.Errorf("trough %d files, want near zero", trough)
	}
}

func TestDiurnalValidation(t *testing.T) {
	uni := UniformConfig{NumDCs: 3, MinFiles: 1, MaxFiles: 1, MinSizeGB: 1, MaxSizeGB: 1, MaxDeadline: 1}
	if _, err := NewDiurnal(DiurnalConfig{Uniform: uni, Period: 1, Amplitude: 0.5}); err == nil {
		t.Error("expected error for period < 2")
	}
	if _, err := NewDiurnal(DiurnalConfig{Uniform: uni, Period: 10, Amplitude: 2}); err == nil {
		t.Error("expected error for amplitude > 1")
	}
}

func TestTraceRecordReplay(t *testing.T) {
	gen, err := NewUniform(UniformConfig{
		NumDCs: 4, MinFiles: 1, MaxFiles: 3,
		MinSizeGB: 5, MaxSizeGB: 10, MaxDeadline: 3, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := Record(gen, 8)
	if trace.MaxSlot() > 7 {
		t.Errorf("MaxSlot = %d, want <= 7", trace.MaxSlot())
	}
	count := 0
	for slot := 0; slot < 8; slot++ {
		for _, f := range trace.FilesAt(slot) {
			if f.Release != slot {
				t.Errorf("file %d release %d at slot %d", f.ID, f.Release, slot)
			}
			count++
		}
	}
	if count != len(trace.Files) {
		t.Errorf("replayed %d of %d files", count, len(trace.Files))
	}
	if trace.TotalVolume() <= 0 {
		t.Error("TotalVolume should be positive")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := &Trace{Files: []netmodel.File{
		{ID: 1, Src: 0, Dst: 2, Size: 12.5, Deadline: 3, Release: 0},
		{ID: 2, Src: 1, Dst: 0, Size: 80, Deadline: 8, Release: 4},
	}}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Files) != 2 || got.Files[0] != tr.Files[0] || got.Files[1] != tr.Files[1] {
		t.Errorf("round trip mismatch: %+v", got.Files)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewBufferString("{nope")); err == nil {
		t.Error("expected decode error")
	}
}

func TestUniformPricesProperties(t *testing.T) {
	f := func(seed int64, i, j uint8) bool {
		p := UniformPrices(seed)
		a := netmodel.DC(i % 20)
		b := netmodel.DC(j % 20)
		v := p(a, b)
		if v < 1 || v > 10 {
			return false
		}
		// Deterministic and order-independent.
		return p(a, b) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformPricesVary(t *testing.T) {
	p := UniformPrices(5)
	distinct := map[float64]bool{}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				distinct[p(netmodel.DC(i), netmodel.DC(j))] = true
			}
		}
	}
	if len(distinct) < 15 {
		t.Errorf("only %d distinct prices among 20 links", len(distinct))
	}
}
