package workload

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func poissonConfig(lambda float64, seed int64) PoissonConfig {
	return PoissonConfig{
		Uniform: UniformConfig{
			NumDCs: 8, MinFiles: 1, MaxFiles: 1,
			MinSizeGB: 10, MaxSizeGB: 100, MaxDeadline: 3, Seed: seed,
		},
		Lambda: lambda,
	}
}

// TestPoissonDeterministic checks that a (seed, lambda) pair fully
// determines the trace — the property the benchmark and the simulator rely
// on to replay identical arrival sequences.
func TestPoissonDeterministic(t *testing.T) {
	a, err := NewPoisson(poissonConfig(6, 99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPoisson(poissonConfig(6, 99))
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 20; slot++ {
		fa, fb := a.FilesAt(slot), b.FilesAt(slot)
		if len(fa) != len(fb) {
			t.Fatalf("slot %d: counts %d vs %d", slot, len(fa), len(fb))
		}
		for k := range fa {
			if fa[k] != fb[k] {
				t.Fatalf("slot %d file %d: %+v vs %+v", slot, k, fa[k], fb[k])
			}
		}
	}
}

// TestPoissonArrivalRate checks the empirical mean and the file-shape
// marginals: counts average near lambda, and each file respects the
// uniform size/deadline/endpoint ranges.
func TestPoissonArrivalRate(t *testing.T) {
	const lambda, slots = 12.0, 2000
	gen, err := NewPoisson(poissonConfig(lambda, 7))
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for slot := 0; slot < slots; slot++ {
		files := gen.FilesAt(slot)
		total += len(files)
		for _, f := range files {
			if f.Release != slot {
				t.Fatalf("file %+v released at wrong slot (want %d)", f, slot)
			}
			if f.Size < 10 || f.Size > 100 {
				t.Fatalf("file size %v outside [10, 100]", f.Size)
			}
			if f.Deadline < 1 || f.Deadline > 3 {
				t.Fatalf("deadline %d outside [1, 3]", f.Deadline)
			}
			if f.Src == f.Dst || int(f.Src) >= 8 || int(f.Dst) >= 8 {
				t.Fatalf("bad endpoints in %+v", f)
			}
		}
	}
	mean := float64(total) / slots
	// Std error of the mean is sqrt(lambda/slots) ~ 0.077; allow 5 sigma.
	if math.Abs(mean-lambda) > 5*math.Sqrt(lambda/slots) {
		t.Errorf("empirical arrival rate %v, want ~%v", mean, lambda)
	}
}

// TestPoissonDrawLargeLambda exercises the chunked Knuth sampler beyond
// the exp(-lambda) underflow point: the draw must stay near lambda instead
// of degenerating to zero or looping forever.
func TestPoissonDrawLargeLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const lambda, trials = 1800.0, 50
	sum := 0
	for i := 0; i < trials; i++ {
		sum += poissonDraw(rng, lambda)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-lambda) > 5*math.Sqrt(lambda/trials) {
		t.Errorf("large-lambda draw mean %v, want ~%v", mean, lambda)
	}
}

// TestPoissonValidation checks config rejection.
func TestPoissonValidation(t *testing.T) {
	for _, lambda := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewPoisson(poissonConfig(lambda, 1)); err == nil {
			t.Errorf("lambda %v accepted", lambda)
		}
	}
	bad := poissonConfig(5, 1)
	bad.Uniform.NumDCs = 1
	if _, err := NewPoisson(bad); err == nil {
		t.Error("1-DC workload accepted")
	}
}

// TestPoissonChunkInvariant checks that the sampled count stream is
// independent of the chunking of lambda: for any chunk size, the same
// seeded source must yield the same counts AND leave the source at the
// same position (same number of uniforms consumed), slot after slot.
func TestPoissonChunkInvariant(t *testing.T) {
	lambdas := []float64{0.3, 3, 42, 500, 1250, 1800, 4000}
	chunks := []float64{125, 250, 500, 1000, 2000, math.Inf(1)}
	for _, lambda := range lambdas {
		ref := rand.New(rand.NewSource(11))
		var want []int
		for i := 0; i < 50; i++ {
			want = append(want, poissonDrawChunked(ref, lambda, poissonChunk))
		}
		refNext := ref.Int63()
		for _, chunk := range chunks {
			rng := rand.New(rand.NewSource(11))
			for i, w := range want {
				if got := poissonDrawChunked(rng, lambda, chunk); got != w {
					t.Fatalf("lambda %g chunk %g draw %d: count %d, want %d", lambda, chunk, i, got, w)
				}
			}
			if got := rng.Int63(); got != refNext {
				t.Errorf("lambda %g chunk %g: source position diverged (consumed a different number of uniforms)", lambda, chunk)
			}
		}
	}
}

// TestPoissonGeneratorDeterminismLargeLambda checks end-to-end that two
// generators with the same seed produce identical arrival streams at a
// lambda large enough to span many chunks.
func TestPoissonGeneratorDeterminismLargeLambda(t *testing.T) {
	cfg := poissonConfig(1800, 21)
	a, err := NewPoisson(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPoisson(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 3; slot++ {
		fa, fb := a.FilesAt(slot), b.FilesAt(slot)
		if len(fa) == 0 {
			t.Fatalf("slot %d: empty batch at lambda %g", slot, cfg.Lambda)
		}
		if !reflect.DeepEqual(fa, fb) {
			t.Fatalf("slot %d: same-seed streams diverge", slot)
		}
	}
}
