// Package workload generates the inter-datacenter traffic demands that
// drive the simulator: the paper's uniform workload (Sec. VII), a diurnal
// variant for the backup example, and JSON traces for record/replay so
// that every scheduler sees byte-identical demand.
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"github.com/interdc/postcard/internal/netmodel"
)

// Generator produces the files generated at each slot. FilesAt must be
// called with strictly increasing slots (generators draw from a sequential
// random stream).
type Generator interface {
	FilesAt(slot int) []netmodel.File
}

// UniformConfig parameterizes the paper's evaluation workload: per slot,
// a uniformly random number of files in [MinFiles, MaxFiles], each with a
// uniformly random size in [MinSizeGB, MaxSizeGB], endpoints drawn
// uniformly among distinct datacenters, and deadlines drawn uniformly in
// [1, MaxDeadline] (or fixed at MaxDeadline with FixedDeadline).
type UniformConfig struct {
	NumDCs        int
	MinFiles      int
	MaxFiles      int
	MinSizeGB     float64
	MaxSizeGB     float64
	MaxDeadline   int
	FixedDeadline bool
	Seed          int64
}

// PaperUniformConfig returns the exact workload parameters of Sec. VII for
// the given deadline regime: 20 datacenters, 1-20 files per slot, sizes
// 10-100 GB.
func PaperUniformConfig(maxDeadline int, seed int64) UniformConfig {
	return UniformConfig{
		NumDCs:      netmodel.EvalDCs,
		MinFiles:    1,
		MaxFiles:    20,
		MinSizeGB:   10,
		MaxSizeGB:   100,
		MaxDeadline: maxDeadline,
		Seed:        seed,
	}
}

// Validate checks the configuration.
func (c UniformConfig) Validate() error {
	if c.NumDCs < 2 {
		return fmt.Errorf("workload: need at least 2 datacenters, got %d", c.NumDCs)
	}
	if c.MinFiles < 0 || c.MaxFiles < c.MinFiles {
		return fmt.Errorf("workload: invalid file count range [%d, %d]", c.MinFiles, c.MaxFiles)
	}
	if c.MinSizeGB <= 0 || c.MaxSizeGB < c.MinSizeGB {
		return fmt.Errorf("workload: invalid size range [%g, %g]", c.MinSizeGB, c.MaxSizeGB)
	}
	if c.MaxDeadline < 1 {
		return fmt.Errorf("workload: MaxDeadline %d < 1", c.MaxDeadline)
	}
	return nil
}

// Uniform is the paper's uniform workload generator.
type Uniform struct {
	cfg    UniformConfig
	rng    *rand.Rand
	nextID int
}

// NewUniform creates a Uniform generator.
func NewUniform(cfg UniformConfig) (*Uniform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Uniform{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), nextID: 1}, nil
}

// FilesAt draws the files generated at slot.
func (u *Uniform) FilesAt(slot int) []netmodel.File {
	count := u.cfg.MinFiles
	if u.cfg.MaxFiles > u.cfg.MinFiles {
		count += u.rng.Intn(u.cfg.MaxFiles - u.cfg.MinFiles + 1)
	}
	files := make([]netmodel.File, 0, count)
	for k := 0; k < count; k++ {
		files = append(files, u.draw(slot))
	}
	return files
}

func (u *Uniform) draw(slot int) netmodel.File {
	src := u.rng.Intn(u.cfg.NumDCs)
	dst := (src + 1 + u.rng.Intn(u.cfg.NumDCs-1)) % u.cfg.NumDCs
	size := u.cfg.MinSizeGB + u.rng.Float64()*(u.cfg.MaxSizeGB-u.cfg.MinSizeGB)
	deadline := u.cfg.MaxDeadline
	if !u.cfg.FixedDeadline && u.cfg.MaxDeadline > 1 {
		deadline = 1 + u.rng.Intn(u.cfg.MaxDeadline)
	}
	f := netmodel.File{
		ID:       u.nextID,
		Src:      netmodel.DC(src),
		Dst:      netmodel.DC(dst),
		Size:     size,
		Deadline: deadline,
		Release:  slot,
	}
	u.nextID++
	return f
}

// DiurnalConfig modulates a Uniform workload with a day/night cycle: the
// expected file count follows 1 + Amplitude*sin(2π(slot+Phase)/Period),
// mimicking the strong diurnal pattern reported for inter-datacenter
// traffic (Chen et al., cited in Sec. II-A).
type DiurnalConfig struct {
	Uniform   UniformConfig
	Period    int     // slots per day
	Amplitude float64 // in [0, 1]
	Phase     int
}

// Diurnal is a day/night-modulated workload generator.
type Diurnal struct {
	cfg DiurnalConfig
	uni *Uniform
}

// NewDiurnal creates a Diurnal generator.
func NewDiurnal(cfg DiurnalConfig) (*Diurnal, error) {
	if cfg.Period < 2 {
		return nil, fmt.Errorf("workload: diurnal period %d < 2", cfg.Period)
	}
	if cfg.Amplitude < 0 || cfg.Amplitude > 1 {
		return nil, fmt.Errorf("workload: diurnal amplitude %g outside [0, 1]", cfg.Amplitude)
	}
	uni, err := NewUniform(cfg.Uniform)
	if err != nil {
		return nil, err
	}
	return &Diurnal{cfg: cfg, uni: uni}, nil
}

// FilesAt draws files with the slot's diurnal intensity.
func (d *Diurnal) FilesAt(slot int) []netmodel.File {
	phase := 2 * math.Pi * float64(slot+d.cfg.Phase) / float64(d.cfg.Period)
	intensity := 1 + d.cfg.Amplitude*math.Sin(phase)
	base := d.uni.FilesAt(slot)
	n := int(math.Round(float64(len(base)) * intensity / (1 + d.cfg.Amplitude)))
	if n > len(base) {
		n = len(base)
	}
	return base[:n]
}

// Trace is a recorded workload: the concatenated files of a run, ordered
// by release slot. It serializes to JSON for replay across schedulers and
// processes.
type Trace struct {
	Files []netmodel.File `json:"files"`
}

// Record drains gen for slots [0, slots) into a Trace.
func Record(gen Generator, slots int) *Trace {
	tr := &Trace{}
	for s := 0; s < slots; s++ {
		tr.Files = append(tr.Files, gen.FilesAt(s)...)
	}
	return tr
}

// FilesAt returns the recorded files released at slot. It is stateless
// (and therefore safe for concurrent use on an immutable trace) but scans
// the whole trace per call; replaying a full run is O(files x slots). Use
// Replay for a linear-time per-goroutine cursor.
func (tr *Trace) FilesAt(slot int) []netmodel.File {
	var out []netmodel.File
	for _, f := range tr.Files {
		if f.Release == slot {
			out = append(out, f)
		}
	}
	return out
}

// Replay returns an independent replay cursor over the trace. The cursor
// indexes the files once — a stable sort by release slot, O(files log
// files) — so a full replay is near-linear instead of FilesAt's
// O(files x slots) rescan, and memory stays proportional to the file
// count even for hostile traces with enormous release slots (a dense
// per-slot table would let a crafted JSON trace allocate unboundedly).
// Each cursor is an independent view: concurrent simulations replaying
// the same immutable Trace must each call Replay and use their own cursor
// (the Trace itself is never mutated). Files within a slot come back in
// recorded order, exactly as Trace.FilesAt returns them.
func (tr *Trace) Replay() *TraceCursor {
	sorted := make([]netmodel.File, len(tr.Files))
	copy(sorted, tr.Files)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Release < sorted[j].Release
	})
	return &TraceCursor{sorted: sorted}
}

// TraceCursor is a per-goroutine replay cursor created by Trace.Replay.
// It implements Generator. Share the Trace, not the cursor: create one
// cursor per concurrent replay.
type TraceCursor struct {
	sorted []netmodel.File // stably sorted by Release
}

// FilesAt implements Generator, returning the recorded files released at
// slot in recorded order. Unlike sequential generators it is safe to call
// with arbitrary (even decreasing) slots.
func (c *TraceCursor) FilesAt(slot int) []netmodel.File {
	lo := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i].Release >= slot })
	hi := lo
	for hi < len(c.sorted) && c.sorted[hi].Release == slot {
		hi++
	}
	if lo == hi {
		return nil
	}
	return c.sorted[lo:hi:hi]
}

// MaxSlot reports the last release slot in the trace, or -1 when empty.
func (tr *Trace) MaxSlot() int {
	maxSlot := -1
	for _, f := range tr.Files {
		if f.Release > maxSlot {
			maxSlot = f.Release
		}
	}
	return maxSlot
}

// TotalVolume reports the sum of file sizes in GB.
func (tr *Trace) TotalVolume() float64 {
	total := 0.0
	for _, f := range tr.Files {
		total += f.Size
	}
	return total
}

// WriteJSON serializes the trace.
func (tr *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(tr); err != nil {
		return fmt.Errorf("workload: encoding trace: %w", err)
	}
	return nil
}

// ReadTrace deserializes a trace written by WriteJSON.
func ReadTrace(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	return &tr, nil
}

// UniformPrices returns a price function drawing each directed link's price
// uniformly from [1, 10] (the paper's evaluation setup), deterministic in
// the seed and the link.
func UniformPrices(seed int64) func(i, j netmodel.DC) float64 {
	return func(i, j netmodel.DC) float64 {
		// A small splitmix-style hash keeps prices independent of call
		// order, so every scheduler sees the same network.
		h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + uint64(j)*0x94d049bb133111eb
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		return 1 + 9*(float64(h>>11)/float64(1<<53))
	}
}
