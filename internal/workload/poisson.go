package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/interdc/postcard/internal/netmodel"
)

// PoissonConfig parameterizes a heavy-arrival workload: the number of
// files released per slot is Poisson-distributed with rate Lambda, while
// sizes, endpoints, and deadlines follow the same uniform marginals as the
// paper's evaluation workload. This is the arrival model used for the
// admission-latency benchmark, where the interesting quantity is the tail
// of per-slot batch sizes rather than their mean.
type PoissonConfig struct {
	Uniform UniformConfig // file-shape marginals; MinFiles/MaxFiles ignored
	Lambda  float64       // expected files per slot
}

// Poisson is a Poisson-arrival workload generator.
type Poisson struct {
	cfg PoissonConfig
	uni *Uniform
	rng *rand.Rand
}

// NewPoisson creates a Poisson generator. The count stream and the
// file-shape stream are drawn from the same seeded source, so a (seed,
// lambda) pair fully determines the trace.
func NewPoisson(cfg PoissonConfig) (*Poisson, error) {
	if cfg.Lambda <= 0 || math.IsInf(cfg.Lambda, 0) || math.IsNaN(cfg.Lambda) {
		return nil, fmt.Errorf("workload: poisson lambda %g must be positive and finite", cfg.Lambda)
	}
	shape := cfg.Uniform
	shape.MinFiles, shape.MaxFiles = 0, 0 // counts come from the Poisson draw
	uni, err := NewUniform(shape)
	if err != nil {
		return nil, err
	}
	return &Poisson{cfg: cfg, uni: uni, rng: uni.rng}, nil
}

// FilesAt draws a Poisson-distributed number of files for slot.
func (p *Poisson) FilesAt(slot int) []netmodel.File {
	count := poissonDraw(p.rng, p.cfg.Lambda)
	files := make([]netmodel.File, 0, count)
	for k := 0; k < count; k++ {
		files = append(files, p.uni.draw(slot))
	}
	return files
}

// poissonChunk is the lambda increment per accumulation round of
// poissonDrawChunked. Its value is immaterial to the sampled stream (see
// below); it only bounds how much of lambda each round folds into the
// running target.
const poissonChunk = 500

// poissonDraw samples Poisson(lambda) by Knuth's product-of-uniforms
// method. Expected draws are O(lambda), which is fine for the per-slot
// rates the benchmark uses.
func poissonDraw(rng *rand.Rand, lambda float64) int {
	return poissonDrawChunked(rng, lambda, poissonChunk)
}

// poissonDrawChunked is poissonDraw with an explicit chunk size. The
// product of uniforms is accumulated in log space — logProd tracks
// log(u_0 u_1 ...) against a running target that each round lowers by at
// most chunk — so exp(-lambda) never underflows however large lambda is.
//
// The draw is chunk-invariant: a uniform is consumed exactly while
// logProd is above the final target -lambda, and every intermediate
// target of every partition of lambda is >= -lambda, so the inner loop
// stops early at round boundaries but never consumes an extra uniform or
// skips one. Same seed + same lambda => same count AND same number of
// uniforms consumed, for every chunk size — which is what keeps a seeded
// arrival stream identical across refactors of the chunking. (The
// previous sampler restarted the product per chunk, consuming one extra
// uniform per round, so its streams depended on the chunk constant.)
func poissonDrawChunked(rng *rand.Rand, lambda, chunk float64) int {
	count := 0
	logProd := math.Log(rng.Float64())
	target := 0.0
	for lambda > 0 {
		step := lambda
		if step > chunk {
			step = chunk
		}
		target -= step
		for logProd > target {
			count++
			logProd += math.Log(rng.Float64())
		}
		lambda -= step
	}
	return count
}
