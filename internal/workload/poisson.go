package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/interdc/postcard/internal/netmodel"
)

// PoissonConfig parameterizes a heavy-arrival workload: the number of
// files released per slot is Poisson-distributed with rate Lambda, while
// sizes, endpoints, and deadlines follow the same uniform marginals as the
// paper's evaluation workload. This is the arrival model used for the
// admission-latency benchmark, where the interesting quantity is the tail
// of per-slot batch sizes rather than their mean.
type PoissonConfig struct {
	Uniform UniformConfig // file-shape marginals; MinFiles/MaxFiles ignored
	Lambda  float64       // expected files per slot
}

// Poisson is a Poisson-arrival workload generator.
type Poisson struct {
	cfg PoissonConfig
	uni *Uniform
	rng *rand.Rand
}

// NewPoisson creates a Poisson generator. The count stream and the
// file-shape stream are drawn from the same seeded source, so a (seed,
// lambda) pair fully determines the trace.
func NewPoisson(cfg PoissonConfig) (*Poisson, error) {
	if cfg.Lambda <= 0 || math.IsInf(cfg.Lambda, 0) || math.IsNaN(cfg.Lambda) {
		return nil, fmt.Errorf("workload: poisson lambda %g must be positive and finite", cfg.Lambda)
	}
	shape := cfg.Uniform
	shape.MinFiles, shape.MaxFiles = 0, 0 // counts come from the Poisson draw
	uni, err := NewUniform(shape)
	if err != nil {
		return nil, err
	}
	return &Poisson{cfg: cfg, uni: uni, rng: uni.rng}, nil
}

// FilesAt draws a Poisson-distributed number of files for slot.
func (p *Poisson) FilesAt(slot int) []netmodel.File {
	count := poissonDraw(p.rng, p.cfg.Lambda)
	files := make([]netmodel.File, 0, count)
	for k := 0; k < count; k++ {
		files = append(files, p.uni.draw(slot))
	}
	return files
}

// poissonDraw samples Poisson(lambda) by Knuth's product-of-uniforms
// method, splitting large lambda into chunks so the running product
// exp(-lambda) stays away from underflow. Expected draws are O(lambda),
// which is fine for the per-slot rates the benchmark uses.
func poissonDraw(rng *rand.Rand, lambda float64) int {
	count := 0
	for lambda > 0 {
		step := lambda
		if step > 500 {
			step = 500
		}
		limit := math.Exp(-step)
		prod := rng.Float64()
		for prod > limit {
			count++
			prod *= rng.Float64()
		}
		lambda -= step
	}
	return count
}
