package graph

import (
	"math"
	"math/rand"
	"testing"

	"github.com/interdc/postcard/internal/lp"
)

// minCostFlowModel formulates a min-cost-flow instance as an LP:
// variables are edge flows, conservation at every node, demand routed from
// s to t. ok is false when the instance is structurally infeasible (an
// isolated node with nonzero demand).
func minCostFlowModel(t *testing.T, g *Graph, s, sink int, want float64) (m *lp.Model, ok bool) {
	t.Helper()
	m = lp.NewModel()
	vars := make([]lp.VarID, g.NumEdges())
	for id := 0; id < g.NumEdges(); id++ {
		e := g.EdgeInfo(id)
		vars[id] = m.AddVariable(0, e.Cap, e.Cost, "")
	}
	for v := 0; v < g.NumNodes(); v++ {
		var idx []lp.VarID
		var val []float64
		for id := 0; id < g.NumEdges(); id++ {
			e := g.EdgeInfo(id)
			if e.From == v {
				idx = append(idx, vars[id])
				val = append(val, 1)
			}
			if e.To == v {
				idx = append(idx, vars[id])
				val = append(val, -1)
			}
		}
		rhs := 0.0
		switch v {
		case s:
			rhs = want
		case sink:
			rhs = -want
		}
		if len(idx) == 0 {
			if rhs != 0 {
				return nil, false
			}
			continue
		}
		if _, err := m.AddConstraint(lp.EQ, rhs, idx, val); err != nil {
			t.Fatal(err)
		}
	}
	return m, true
}

// minCostFlowLP solves the LP formulation, returning the optimal cost, or
// ok=false when the LP is infeasible (demand exceeds max flow).
func minCostFlowLP(t *testing.T, g *Graph, s, sink int, want float64) (float64, bool) {
	t.Helper()
	m, ok := minCostFlowModel(t, g, s, sink, want)
	if !ok {
		return 0, false
	}
	sol, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != lp.Optimal {
		return 0, false
	}
	return sol.Objective, true
}

// TestMinCostFlowLPPricingAgreement runs the pricing-rule equivalence
// property on the min-cost-flow cross-check instances: devex and Dantzig
// pricing must agree with each other — and with the combinatorial
// successive-shortest-path optimum — on every feasible instance.
func TestMinCostFlowLPPricingAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	checked := 0
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		g1 := randomFlowNetwork(rng, n)
		// MaxFlow and MinCostFlow mutate residual state; give each its own
		// copy and build the LP from a pristine one.
		g2, g3 := New(n), New(n)
		for id := 0; id < g1.NumEdges(); id++ {
			e := g1.EdgeInfo(id)
			if _, err := g2.AddEdge(e.From, e.To, e.Cap, e.Cost); err != nil {
				t.Fatal(err)
			}
			if _, err := g3.AddEdge(e.From, e.To, e.Cap, e.Cost); err != nil {
				t.Fatal(err)
			}
		}
		mf, err := g1.MaxFlow(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		if mf < 1e-6 {
			continue
		}
		demand := mf / 2
		_, combCost, err := g2.MinCostFlow(0, n-1, demand)
		if err != nil {
			t.Fatal(err)
		}
		m, ok := minCostFlowModel(t, g3, 0, n-1, demand)
		if !ok {
			t.Fatalf("trial %d: LP model infeasible for feasible demand", trial)
		}
		dv, err := m.Solve(&lp.Options{Pricing: lp.PricingDevex})
		if err != nil {
			t.Fatal(err)
		}
		dz, err := m.Solve(&lp.Options{Pricing: lp.PricingDantzig})
		if err != nil {
			t.Fatal(err)
		}
		if dv.Status != lp.Optimal || dz.Status != lp.Optimal {
			t.Fatalf("trial %d: status devex=%v dantzig=%v", trial, dv.Status, dz.Status)
		}
		scale := 1 + math.Abs(combCost)
		if math.Abs(dv.Objective-dz.Objective) > 1e-6*scale {
			t.Fatalf("trial %d: devex %v != dantzig %v", trial, dv.Objective, dz.Objective)
		}
		if math.Abs(dv.Objective-combCost) > 1e-5*scale {
			t.Fatalf("trial %d: LP %v != combinatorial %v", trial, dv.Objective, combCost)
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d instances checked; generator too degenerate", checked)
	}
}

// TestMinCostFlowMatchesLP cross-checks the combinatorial successive-
// shortest-path algorithm against an independent LP formulation of the
// same instances.
func TestMinCostFlowMatchesLP(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	checked := 0
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(5)
		g1 := randomFlowNetwork(rng, n)
		g2 := New(n)
		for id := 0; id < g1.NumEdges(); id++ {
			e := g1.EdgeInfo(id)
			if _, err := g2.AddEdge(e.From, e.To, e.Cap, e.Cost); err != nil {
				t.Fatal(err)
			}
		}
		// Determine a feasible demand: half the max flow.
		mf, err := g1.MaxFlow(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		if mf < 1e-6 {
			continue
		}
		demand := mf / 2
		sent, combCost, err := g2.MinCostFlow(0, n-1, demand)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sent-demand) > 1e-6 {
			t.Fatalf("trial %d: sent %v of feasible demand %v", trial, sent, demand)
		}
		lpCost, ok := minCostFlowLP(t, g2, 0, n-1, demand)
		if !ok {
			t.Fatalf("trial %d: LP infeasible for feasible demand", trial)
		}
		if math.Abs(combCost-lpCost) > 1e-5*(1+math.Abs(lpCost)) {
			t.Fatalf("trial %d: combinatorial cost %v != LP cost %v", trial, combCost, lpCost)
		}
		checked++
	}
	if checked < 15 {
		t.Fatalf("only %d instances checked; generator too degenerate", checked)
	}
}

// TestMaxFlowMatchesLP cross-checks Dinic against the LP max-flow.
func TestMaxFlowMatchesLP(t *testing.T) {
	rng := rand.New(rand.NewSource(315))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(5)
		g := randomFlowNetwork(rng, n)
		mf, err := g.MaxFlow(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		// LP: maximize flow out of source minus flow in.
		m := lp.NewModel()
		m.SetMaximize()
		vars := make([]lp.VarID, g.NumEdges())
		for id := 0; id < g.NumEdges(); id++ {
			e := g.EdgeInfo(id)
			obj := 0.0
			if e.From == 0 {
				obj += 1
			}
			if e.To == 0 {
				obj -= 1
			}
			vars[id] = m.AddVariable(0, e.Cap, obj, "")
		}
		for v := 1; v < n-1; v++ {
			var idx []lp.VarID
			var val []float64
			for id := 0; id < g.NumEdges(); id++ {
				e := g.EdgeInfo(id)
				if e.From == v {
					idx = append(idx, vars[id])
					val = append(val, 1)
				}
				if e.To == v {
					idx = append(idx, vars[id])
					val = append(val, -1)
				}
			}
			if len(idx) == 0 {
				continue
			}
			if _, err := m.AddConstraint(lp.EQ, 0, idx, val); err != nil {
				t.Fatal(err)
			}
		}
		sol, err := m.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != lp.Optimal {
			t.Fatalf("trial %d: LP status %v", trial, sol.Status)
		}
		if math.Abs(sol.Objective-mf) > 1e-6*(1+mf) {
			t.Fatalf("trial %d: Dinic %v != LP %v", trial, mf, sol.Objective)
		}
	}
}
