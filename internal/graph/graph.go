// Package graph provides the directed-graph algorithms used by the
// combinatorial flow-based baselines: shortest paths (Dijkstra and
// Bellman-Ford), Dinic max-flow, and successive-shortest-path min-cost
// flow. Graphs are small (tens of datacenters), so the implementations
// favor clarity and exact invariants over micro-optimization.
package graph

import (
	"container/heap"
	"fmt"
	"math"
)

// Edge is a directed edge with capacity and per-unit cost. Residual state
// lives in Flow; the residual capacity is Cap - Flow for forward edges and
// Flow of the paired edge for backward traversal.
type Edge struct {
	From, To int
	Cap      float64
	Cost     float64
	Flow     float64
}

// Graph is a directed multigraph supporting flow algorithms. Edges are
// stored in pairs: edge 2k is the forward edge, edge 2k+1 its residual
// reverse (capacity 0, negated cost).
type Graph struct {
	n     int
	edges []Edge
	adj   [][]int // node -> indices into edges
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

// NumNodes reports the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges reports the number of forward edges added with AddEdge.
func (g *Graph) NumEdges() int { return len(g.edges) / 2 }

// AddEdge adds a directed edge and returns its identifier. It returns an
// error for out-of-range endpoints or negative capacity.
func (g *Graph) AddEdge(from, to int, capacity, cost float64) (int, error) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return 0, fmt.Errorf("graph: edge (%d,%d) out of range for %d nodes", from, to, g.n)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("graph: negative capacity %v on edge (%d,%d)", capacity, from, to)
	}
	id := len(g.edges)
	g.edges = append(g.edges,
		Edge{From: from, To: to, Cap: capacity, Cost: cost},
		Edge{From: to, To: from, Cap: 0, Cost: -cost},
	)
	g.adj[from] = append(g.adj[from], id)
	g.adj[to] = append(g.adj[to], id+1)
	return id / 2, nil
}

// EdgeFlow reports the flow currently assigned to forward edge id.
func (g *Graph) EdgeFlow(id int) float64 { return g.edges[2*id].Flow }

// EdgeInfo returns a copy of forward edge id.
func (g *Graph) EdgeInfo(id int) Edge { return g.edges[2*id] }

// ResetFlow clears all flow assignments.
func (g *Graph) ResetFlow() {
	for i := range g.edges {
		g.edges[i].Flow = 0
	}
}

// residual reports the residual capacity of internal edge index e.
func (g *Graph) residual(e int) float64 {
	if e%2 == 0 {
		return g.edges[e].Cap - g.edges[e].Flow
	}
	return g.edges[e-1].Flow
}

// push sends f units along internal edge index e.
func (g *Graph) push(e int, f float64) {
	if e%2 == 0 {
		g.edges[e].Flow += f
	} else {
		g.edges[e-1].Flow -= f
	}
}

const flowEps = 1e-9

// MaxFlow computes a maximum s-t flow with Dinic's algorithm, leaving the
// flow assignment on the edges, and returns its value.
func (g *Graph) MaxFlow(s, t int) (float64, error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return 0, fmt.Errorf("graph: endpoints (%d,%d) out of range", s, t)
	}
	if s == t {
		return 0, fmt.Errorf("graph: max-flow source equals sink %d", s)
	}
	total := 0.0
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for {
		// BFS levels on the residual graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range g.adj[v] {
				if g.residual(e) > flowEps && level[g.edges[e].To] < 0 {
					level[g.edges[e].To] = level[v] + 1
					queue = append(queue, g.edges[e].To)
				}
			}
		}
		if level[t] < 0 {
			return total, nil
		}
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dfsAugment(s, t, math.Inf(1), level, iter)
			if f <= flowEps {
				break
			}
			total += f
		}
	}
}

// dfsAugment finds one blocking-flow augmenting path in the level graph.
func (g *Graph) dfsAugment(v, t int, limit float64, level, iter []int) float64 {
	if v == t {
		return limit
	}
	for ; iter[v] < len(g.adj[v]); iter[v]++ {
		e := g.adj[v][iter[v]]
		to := g.edges[e].To
		if g.residual(e) <= flowEps || level[to] != level[v]+1 {
			continue
		}
		f := g.dfsAugment(to, t, math.Min(limit, g.residual(e)), level, iter)
		if f > flowEps {
			g.push(e, f)
			return f
		}
	}
	return 0
}

// MinCostFlow sends up to want units from s to t at minimum total cost
// using successive shortest paths with Johnson potentials. Negative edge
// costs are supported as long as the initial residual graph has no negative
// cycle (an error is returned otherwise). It returns the amount actually
// sent (which is min(want, maxflow)) and its cost, leaving the flow
// assignment on the edges.
func (g *Graph) MinCostFlow(s, t int, want float64) (sent, cost float64, err error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return 0, 0, fmt.Errorf("graph: endpoints (%d,%d) out of range", s, t)
	}
	if s == t {
		return 0, 0, fmt.Errorf("graph: min-cost-flow source equals sink %d", s)
	}
	if want < 0 {
		return 0, 0, fmt.Errorf("graph: negative demand %v", want)
	}
	// Initial potentials via Bellman-Ford to support negative costs.
	pot, negCycle := g.bellmanFord(s)
	if negCycle {
		return 0, 0, fmt.Errorf("graph: negative cycle in residual graph")
	}
	dist := make([]float64, g.n)
	prevEdge := make([]int, g.n)
	for sent < want-flowEps {
		// Dijkstra with reduced costs.
		for i := range dist {
			dist[i] = math.Inf(1)
			prevEdge[i] = -1
		}
		dist[s] = 0
		pq := &priorityQueue{}
		heap.Push(pq, pqItem{node: s, dist: 0})
		for pq.Len() > 0 {
			item := heap.Pop(pq).(pqItem)
			v := item.node
			if item.dist > dist[v]+flowEps {
				continue
			}
			for _, e := range g.adj[v] {
				if g.residual(e) <= flowEps {
					continue
				}
				to := g.edges[e].To
				rc := g.edges[e].Cost + pot[v] - pot[to]
				if rc < 0 && rc > -1e-7 {
					rc = 0 // numerical guard: reduced costs are >= 0 in exact arithmetic
				}
				if nd := dist[v] + rc; nd < dist[to]-flowEps {
					dist[to] = nd
					prevEdge[to] = e
					heap.Push(pq, pqItem{node: to, dist: nd})
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			break // no more augmenting capacity
		}
		for i := range pot {
			if !math.IsInf(dist[i], 1) {
				pot[i] += dist[i]
			}
		}
		// Bottleneck along the path.
		f := want - sent
		for v := t; v != s; {
			e := prevEdge[v]
			if r := g.residual(e); r < f {
				f = r
			}
			v = g.edges[e].From
		}
		for v := t; v != s; {
			e := prevEdge[v]
			g.push(e, f)
			cost += f * g.edges[e].Cost // reverse edges carry negated cost
			v = g.edges[e].From
		}
		sent += f
	}
	return sent, cost, nil
}

// bellmanFord computes shortest distances from s over residual edges,
// reporting whether a negative cycle is reachable. Unreachable nodes get
// potential 0 (safe: their reduced costs are checked lazily).
func (g *Graph) bellmanFord(s int) ([]float64, bool) {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = 0
	for iter := 0; iter < g.n; iter++ {
		changed := false
		for e := range g.edges {
			if g.residual(e) <= flowEps {
				continue
			}
			from, to := g.edges[e].From, g.edges[e].To
			if math.IsInf(dist[from], 1) {
				continue
			}
			if nd := dist[from] + g.edges[e].Cost; nd < dist[to]-1e-12 {
				dist[to] = nd
				changed = true
				if iter == g.n-1 {
					return nil, true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range dist {
		if math.IsInf(dist[i], 1) {
			dist[i] = 0
		}
	}
	return dist, false
}

// ShortestPath returns the minimum-cost path from s to t over edges with
// residual capacity at least minResidual, as a list of forward-edge IDs,
// along with its cost. It returns ok=false when t is unreachable. Costs
// must be nonnegative (Dijkstra).
func (g *Graph) ShortestPath(s, t int, minResidual float64) (path []int, cost float64, ok bool) {
	dist := make([]float64, g.n)
	prevEdge := make([]int, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[s] = 0
	pq := &priorityQueue{}
	heap.Push(pq, pqItem{node: s, dist: 0})
	for pq.Len() > 0 {
		item := heap.Pop(pq).(pqItem)
		v := item.node
		if item.dist > dist[v]+flowEps {
			continue
		}
		for _, e := range g.adj[v] {
			if e%2 == 1 { // forward edges only: this is a path search, not residual
				continue
			}
			if g.residual(e) < minResidual-flowEps {
				continue
			}
			to := g.edges[e].To
			if nd := dist[v] + g.edges[e].Cost; nd < dist[to]-flowEps {
				dist[to] = nd
				prevEdge[to] = e
				heap.Push(pq, pqItem{node: to, dist: nd})
			}
		}
	}
	if math.IsInf(dist[t], 1) {
		return nil, 0, false
	}
	for v := t; v != s; {
		e := prevEdge[v]
		path = append(path, e/2)
		v = g.edges[e].From
	}
	// Reverse into s->t order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[t], true
}

// FlowConservationError checks that the current flow conserves at every
// node except s and t and returns a descriptive error on violation. The
// net outflow of s must equal value within tol.
func (g *Graph) FlowConservationError(s, t int, value, tol float64) error {
	net := make([]float64, g.n)
	for i := 0; i < len(g.edges); i += 2 {
		e := g.edges[i]
		if e.Flow < -tol {
			return fmt.Errorf("graph: negative flow %v on edge (%d,%d)", e.Flow, e.From, e.To)
		}
		if e.Flow > e.Cap+tol {
			return fmt.Errorf("graph: flow %v exceeds capacity %v on edge (%d,%d)", e.Flow, e.Cap, e.From, e.To)
		}
		net[e.From] += e.Flow
		net[e.To] -= e.Flow
	}
	for v := 0; v < g.n; v++ {
		want := 0.0
		switch v {
		case s:
			want = value
		case t:
			want = -value
		}
		if math.Abs(net[v]-want) > tol {
			return fmt.Errorf("graph: conservation violated at node %d: net %v, want %v", v, net[v], want)
		}
	}
	return nil
}

type pqItem struct {
	node int
	dist float64
}

type priorityQueue []pqItem

func (p priorityQueue) Len() int           { return len(p) }
func (p priorityQueue) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p priorityQueue) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *priorityQueue) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *priorityQueue) Pop() any {
	old := *p
	n := len(old)
	item := old[n-1]
	*p = old[:n-1]
	return item
}
