package graph

import (
	"math"
	"math/rand"
	"testing"
)

func mustEdge(t *testing.T, g *Graph, from, to int, capacity, cost float64) int {
	t.Helper()
	id, err := g.AddEdge(from, to, capacity, cost)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", from, to, err)
	}
	return id
}

func TestMaxFlowSimple(t *testing.T) {
	// Classic diamond: s=0, t=3, max flow 15.
	g := New(4)
	mustEdge(t, g, 0, 1, 10, 0)
	mustEdge(t, g, 0, 2, 10, 0)
	mustEdge(t, g, 1, 3, 10, 0)
	mustEdge(t, g, 2, 3, 5, 0)
	f, err := g.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-15) > 1e-9 {
		t.Errorf("max flow = %v, want 15", f)
	}
	if err := g.FlowConservationError(0, 3, f, 1e-9); err != nil {
		t.Errorf("conservation: %v", err)
	}
}

func TestMaxFlowNeedsResidual(t *testing.T) {
	// The classic example where a naive greedy gets stuck without
	// residual (backward) edges: two crossing paths through a middle edge.
	g := New(4)
	mustEdge(t, g, 0, 1, 1, 0)
	mustEdge(t, g, 0, 2, 1, 0)
	mustEdge(t, g, 1, 2, 1, 0)
	mustEdge(t, g, 1, 3, 1, 0)
	mustEdge(t, g, 2, 3, 1, 0)
	f, err := g.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-2) > 1e-9 {
		t.Errorf("max flow = %v, want 2", f)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1, 5, 0)
	f, err := g.MaxFlow(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Errorf("max flow = %v, want 0", f)
	}
}

func TestMaxFlowErrors(t *testing.T) {
	g := New(3)
	if _, err := g.MaxFlow(0, 0); err == nil {
		t.Error("expected error for s == t")
	}
	if _, err := g.MaxFlow(-1, 2); err == nil {
		t.Error("expected error for out-of-range source")
	}
	if _, err := g.AddEdge(0, 1, -1, 0); err == nil {
		t.Error("expected error for negative capacity")
	}
	if _, err := g.AddEdge(0, 9, 1, 0); err == nil {
		t.Error("expected error for out-of-range endpoint")
	}
}

func TestMinCostFlowSimple(t *testing.T) {
	// Two parallel paths: cheap one of capacity 5, expensive one of
	// capacity 10. Sending 8 uses the cheap path fully.
	g := New(4)
	mustEdge(t, g, 0, 1, 5, 1)
	mustEdge(t, g, 1, 3, 5, 1)
	mustEdge(t, g, 0, 2, 10, 4)
	mustEdge(t, g, 2, 3, 10, 4)
	sent, cost, err := g.MinCostFlow(0, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sent-8) > 1e-9 {
		t.Fatalf("sent = %v, want 8", sent)
	}
	want := 5.0*2 + 3.0*8
	if math.Abs(cost-want) > 1e-9 {
		t.Errorf("cost = %v, want %v", cost, want)
	}
	if err := g.FlowConservationError(0, 3, sent, 1e-9); err != nil {
		t.Errorf("conservation: %v", err)
	}
}

func TestMinCostFlowPartial(t *testing.T) {
	g := New(2)
	mustEdge(t, g, 0, 1, 3, 2)
	sent, cost, err := g.MinCostFlow(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sent-3) > 1e-9 || math.Abs(cost-6) > 1e-9 {
		t.Errorf("sent=%v cost=%v, want 3, 6", sent, cost)
	}
}

func TestMinCostFlowPrefersReroute(t *testing.T) {
	// Sending more flow must be able to undo an earlier greedy choice via
	// residual edges.
	g := New(4)
	mustEdge(t, g, 0, 1, 2, 1)
	mustEdge(t, g, 1, 3, 1, 1)
	mustEdge(t, g, 1, 2, 1, 1)
	mustEdge(t, g, 0, 2, 1, 10)
	mustEdge(t, g, 2, 3, 2, 1)
	sent, cost, err := g.MinCostFlow(0, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sent-3) > 1e-9 {
		t.Fatalf("sent = %v, want 3", sent)
	}
	// Optimal: 0-1-3 (1 unit, cost 2), 0-1-2-3 (1 unit, cost 3),
	// 0-2-3 (1 unit, cost 11) -> total 16.
	if math.Abs(cost-16) > 1e-9 {
		t.Errorf("cost = %v, want 16", cost)
	}
}

func TestShortestPath(t *testing.T) {
	g := New(4)
	e01 := mustEdge(t, g, 0, 1, 5, 1)
	e13 := mustEdge(t, g, 1, 3, 5, 3)
	mustEdge(t, g, 0, 2, 5, 2)
	mustEdge(t, g, 2, 3, 5, 3)
	path, cost, ok := g.ShortestPath(0, 3, 0)
	if !ok {
		t.Fatal("no path found")
	}
	if math.Abs(cost-4) > 1e-9 {
		t.Errorf("cost = %v, want 4", cost)
	}
	if len(path) != 2 || path[0] != e01 || path[1] != e13 {
		t.Errorf("path = %v, want [%d %d]", path, e01, e13)
	}
}

func TestShortestPathRespectsResidual(t *testing.T) {
	g := New(3)
	cheap := mustEdge(t, g, 0, 2, 1, 1)
	mustEdge(t, g, 0, 1, 5, 2)
	mustEdge(t, g, 1, 2, 5, 2)
	// Saturate the cheap edge.
	if _, _, err := g.MinCostFlow(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if f := g.EdgeFlow(cheap); math.Abs(f-1) > 1e-9 {
		t.Fatalf("cheap edge flow = %v, want 1", f)
	}
	path, cost, ok := g.ShortestPath(0, 2, 0.5)
	if !ok {
		t.Fatal("no path with residual >= 0.5")
	}
	if len(path) != 2 || math.Abs(cost-4) > 1e-9 {
		t.Errorf("path=%v cost=%v, want the 2-hop path of cost 4", path, cost)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(2)
	if _, _, ok := g.ShortestPath(0, 1, 0); ok {
		t.Error("expected unreachable")
	}
}

// randomFlowNetwork builds a connected random DAG-ish network.
func randomFlowNetwork(rng *rand.Rand, n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < 0.35 {
				capacity := float64(1 + rng.Intn(10))
				cost := float64(1 + rng.Intn(9))
				if _, err := g.AddEdge(i, j, capacity, cost); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func TestMaxFlowRandomInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		g := randomFlowNetwork(rng, n)
		f, err := g.MaxFlow(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		if f < 0 {
			t.Fatalf("negative max flow %v", f)
		}
		if err := g.FlowConservationError(0, n-1, f, 1e-7); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Max flow can not exceed the capacity of the source cut.
		srcCap := 0.0
		for id := 0; id < g.NumEdges(); id++ {
			e := g.EdgeInfo(id)
			if e.From == 0 {
				srcCap += e.Cap
			}
		}
		if f > srcCap+1e-9 {
			t.Fatalf("flow %v exceeds source cut %v", f, srcCap)
		}
	}
}

func TestMinCostFlowMatchesMaxFlowValue(t *testing.T) {
	// Min-cost flow asked for an unreachable amount must deliver exactly
	// the max-flow value.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		g1 := randomFlowNetwork(rng, n)
		g2 := New(n)
		for id := 0; id < g1.NumEdges(); id++ {
			e := g1.EdgeInfo(id)
			if _, err := g2.AddEdge(e.From, e.To, e.Cap, e.Cost); err != nil {
				t.Fatal(err)
			}
		}
		mf, err := g1.MaxFlow(0, n-1)
		if err != nil {
			t.Fatal(err)
		}
		sent, _, err := g2.MinCostFlow(0, n-1, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mf-sent) > 1e-6 {
			t.Fatalf("trial %d: max flow %v != min-cost-flow saturation %v", trial, mf, sent)
		}
	}
}
