package admission

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
)

// reservationTable dumps every bucket of the reservation view into a
// comparable map keyed by "from->to@slot".
func reservationTable(t *testing.T, res *netmodel.Reservations) map[[3]int]float64 {
	t.Helper()
	out := map[[3]int]float64{}
	nw := res.Ledger().Network()
	n := nw.NumDCs()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for s := 0; s < res.Extent(); s++ {
				if v := res.Reserved(netmodel.DC(i), netmodel.DC(j), s); v != 0 {
					out[[3]int{i, j, s}] = v
				}
			}
		}
	}
	return out
}

// TestRollbackAfterRepublish is the regression test for the
// Admit→Republish→Rollback interleaving: after the republish swaps the
// batch's reservations to the LP plan, Rollback must release exactly the
// swapped plan and return the reservation view to its pre-batch state —
// neither leaking LP reservations nor double-releasing the already-freed
// provisional ones.
func TestRollbackAfterRepublish(t *testing.T) {
	nw := triangle(t, 100)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(8))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(ledger, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A pre-existing reservation (e.g. a foreign batch on the same view)
	// that must survive the batch lifecycle untouched.
	if err := ctrl.Reservations().Reserve(1, 2, 0, 7); err != nil {
		t.Fatal(err)
	}
	before := reservationTable(t, ctrl.Reservations())

	files := []netmodel.File{
		{ID: 1, Src: 0, Dst: 1, Size: 40, Deadline: 3, Release: 0},
		{ID: 2, Src: 0, Dst: 1, Size: 30, Deadline: 4, Release: 0},
	}
	for _, f := range files {
		dec, err := ctrl.Admit(f, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Admitted {
			t.Fatalf("file %d rejected", f.ID)
		}
	}
	if err := ctrl.Republish(0); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Stats().Republishes; got != 1 {
		t.Fatalf("republishes = %d, want 1 (LP should accept the batch)", got)
	}
	if err := ctrl.Rollback(); err != nil {
		t.Fatalf("rollback after republish: %v", err)
	}
	after := reservationTable(t, ctrl.Reservations())
	if !reflect.DeepEqual(before, after) {
		t.Errorf("reservations after rollback = %v, want pre-batch %v", after, before)
	}
	// The controller must be reusable: a fresh batch in a later slot.
	dec, err := ctrl.Admit(netmodel.File{ID: 3, Src: 0, Dst: 1, Size: 10, Deadline: 5, Release: 1}, 1)
	if err != nil || !dec.Admitted {
		t.Fatalf("admit after rollback: admitted=%v err=%v", dec.Admitted, err)
	}
}

// TestTakePlanAfterRepublish checks the companion interleaving: TakePlan
// after a republish releases the swapped LP reservations (not the stale
// provisional ones) and leaves only the foreign reservation behind.
func TestTakePlanAfterRepublish(t *testing.T) {
	nw := triangle(t, 100)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(8))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(ledger, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Reservations().Reserve(1, 2, 0, 7); err != nil {
		t.Fatal(err)
	}
	before := reservationTable(t, ctrl.Reservations())
	if _, err := ctrl.Admit(netmodel.File{ID: 1, Src: 0, Dst: 1, Size: 40, Deadline: 3, Release: 0}, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Republish(0); err != nil {
		t.Fatal(err)
	}
	plan, files, err := ctrl.TakePlan()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || plan == nil {
		t.Fatalf("TakePlan returned %d files, plan=%v", len(files), plan)
	}
	after := reservationTable(t, ctrl.Reservations())
	if !reflect.DeepEqual(before, after) {
		t.Errorf("reservations after TakePlan = %v, want pre-batch %v", after, before)
	}
}

// TestRepublishSwapFailureKeepsFastPlan forces the republish swap to fail
// half-way: a foreign reservation placed after Admit saturates a link the
// LP plan needs (the LP solves against the ledger alone, blind to
// reservations). The swap must restore the provisional reservations and
// keep the fast plan, and a subsequent Rollback must return the view to
// the pre-batch state instead of double-releasing.
func TestRepublishSwapFailureKeepsFastPlan(t *testing.T) {
	nw := triangle(t, 100)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(8))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(ledger, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Foreign reservations saturate the cheap detour's first hop for the
	// whole window, so the fast tier must take the expensive direct link —
	// while the LP, pricing against the ledger alone, will pick the detour.
	for s := 0; s < 3; s++ {
		if err := ctrl.Reservations().Reserve(0, 2, s, 100); err != nil {
			t.Fatal(err)
		}
	}
	foreign := reservationTable(t, ctrl.Reservations())
	dec, err := ctrl.Admit(netmodel.File{ID: 1, Src: 0, Dst: 1, Size: 40, Deadline: 3, Release: 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatal("file rejected")
	}
	if len(dec.Plan.Path) != 2 {
		t.Fatalf("fast path %v, want direct 0->1", dec.Plan.Path)
	}
	preSwap := reservationTable(t, ctrl.Reservations())
	if err := ctrl.Republish(0); err != nil {
		t.Fatalf("republish must degrade gracefully, got %v", err)
	}
	if got := ctrl.Stats().Republishes; got != 0 {
		t.Fatalf("republishes = %d, want 0 (swap could not be applied)", got)
	}
	if got := reservationTable(t, ctrl.Reservations()); !reflect.DeepEqual(got, preSwap) {
		t.Errorf("reservations after failed swap = %v, want unchanged %v", got, preSwap)
	}
	// Rollback releases exactly the fast plan, leaving only the foreign
	// reservations behind.
	if err := ctrl.Rollback(); err != nil {
		t.Fatalf("rollback after failed swap: %v", err)
	}
	if got := reservationTable(t, ctrl.Reservations()); !reflect.DeepEqual(got, foreign) {
		t.Errorf("reservations after rollback = %v, want foreign only %v", got, foreign)
	}
}

// TestControllerSnapshotRoundTrip checks that a controller with an open,
// republished batch survives a JSON snapshot/restore cycle: the restored
// controller's TakePlan yields the same schedule, files, and counters.
func TestControllerSnapshotRoundTrip(t *testing.T) {
	nw := triangle(t, 100)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(8))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(ledger, nil)
	if err != nil {
		t.Fatal(err)
	}
	files := []netmodel.File{
		{ID: 1, Src: 0, Dst: 1, Size: 40, Deadline: 3, Release: 0},
		{ID: 2, Src: 1, Dst: 2, Size: 20, Deadline: 4, Release: 0},
	}
	for _, f := range files {
		if _, err := ctrl.Admit(f, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := ctrl.Republish(0); err != nil {
		t.Fatal(err)
	}

	raw, err := json.Marshal(ctrl.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap ControllerSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}

	// Restore over a ledger rebuilt from its own snapshot, as the server does.
	ledger2, err := netmodel.LedgerFromSnapshot(nw, ledger.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	ctrl2, err := RestoreController(ledger2, nil, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(reservationTable(t, ctrl.Reservations()), reservationTable(t, ctrl2.Reservations())) {
		t.Error("restored reservations differ")
	}
	if ctrl.Stats() != ctrl2.Stats() {
		t.Errorf("restored stats %+v, want %+v", ctrl2.Stats(), ctrl.Stats())
	}
	p1, f1, err := ctrl.TakePlan()
	if err != nil {
		t.Fatal(err)
	}
	p2, f2, err := ctrl2.TakePlan()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f2) {
		t.Errorf("restored files %v, want %v", f2, f1)
	}
	if !reflect.DeepEqual(p1.Actions(), p2.Actions()) {
		t.Errorf("restored plan %v, want %v", p2.Actions(), p1.Actions())
	}
}
