package admission

import (
	"fmt"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
)

// ControllerSnapshot is the serializable state of a Controller: the open
// batch (slot, files, merged plan, provisional cost), the cumulative
// admission counters, the reservation buckets, and the background solver's
// warm-start state. Restoring it over a ledger rebuilt from its own
// snapshot resumes admission mid-horizon with decisions and republished
// plans identical to an uninterrupted controller.
type ControllerSnapshot struct {
	Slot      int                            `json:"slot"`
	Files     []netmodel.File                `json:"files,omitempty"`
	Plan      []schedule.Action              `json:"plan,omitempty"`
	BatchCost float64                        `json:"batch_cost"`
	Stats     Stats                          `json:"stats"`
	Reserved  *netmodel.ReservationsSnapshot `json:"reserved,omitempty"`
	Solver    *core.SolverSnapshot           `json:"solver,omitempty"`
}

// Snapshot captures the controller's full state. The returned value shares
// nothing with the controller.
func (c *Controller) Snapshot() *ControllerSnapshot {
	snap := &ControllerSnapshot{
		Slot:      c.slot,
		Files:     append([]netmodel.File(nil), c.files...),
		BatchCost: c.batchCost,
		Stats:     c.stats,
		Reserved:  c.res.Snapshot(),
	}
	if c.plan != nil {
		snap.Plan = c.plan.Actions()
	}
	if c.solver != nil {
		snap.Solver = c.solver.Snapshot()
	}
	return snap
}

// RestoreController rebuilds a controller over the (already restored)
// ledger from a snapshot captured by Controller.Snapshot. The ledger must
// describe the same network and committed state the snapshot was captured
// under; the reservation buckets, open batch, counters, and solver
// warm-start state are restored so the next Republish/TakePlan behaves
// exactly as the snapshotted controller's would have.
func RestoreController(ledger *netmodel.Ledger, cfg *Config, snap *ControllerSnapshot) (*Controller, error) {
	if snap == nil {
		return nil, fmt.Errorf("admission: nil controller snapshot")
	}
	c, err := NewController(ledger, cfg)
	if err != nil {
		return nil, err
	}
	if snap.Reserved != nil {
		if err := c.res.RestoreSnapshot(snap.Reserved); err != nil {
			return nil, fmt.Errorf("admission: restoring reservations: %w", err)
		}
	}
	c.slot = snap.Slot
	c.files = append([]netmodel.File(nil), snap.Files...)
	c.batchCost = snap.BatchCost
	c.stats = snap.Stats
	if len(snap.Plan) > 0 {
		c.plan = &schedule.Schedule{}
		for _, a := range snap.Plan {
			c.plan.Add(a)
		}
	}
	if snap.Solver != nil {
		c.solver = core.NewSolver(c.cfg.Solver)
		c.solver.Restore(ledger.Network(), snap.Solver)
	}
	return c, nil
}
