package admission

import (
	"math"
	"math/rand"
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
)

// randomSparseNetwork builds a connected (ring + chords) network so the
// fast tier is exercised beyond complete graphs, mirroring the optimizer's
// property suite in internal/core.
func randomSparseNetwork(t *testing.T, rng *rand.Rand, n int, capacity float64) *netmodel.Network {
	t.Helper()
	nw, err := netmodel.NewNetwork(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if err := nw.SetLink(netmodel.DC(i), netmodel.DC(j), 1+9*rng.Float64(), capacity); err != nil {
			t.Fatal(err)
		}
		if err := nw.SetLink(netmodel.DC(j), netmodel.DC(i), 1+9*rng.Float64(), capacity); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < n/2; k++ {
		i := rng.Intn(n)
		j := rng.Intn(n)
		if i == j || nw.HasLink(netmodel.DC(i), netmodel.DC(j)) {
			continue
		}
		if err := nw.SetLink(netmodel.DC(i), netmodel.DC(j), 1+9*rng.Float64(), capacity); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

// seedLedger records random pre-existing traffic so headroom and residuals
// are non-trivial.
func seedLedger(t *testing.T, rng *rand.Rand, ledger *netmodel.Ledger, slots int) {
	t.Helper()
	nw := ledger.Network()
	nw.Links(func(l netmodel.Link, _, capacity float64) {
		for s := 0; s < slots; s++ {
			if rng.Float64() < 0.5 {
				continue
			}
			if err := ledger.Add(l.From, l.To, s, rng.Float64()*capacity*0.6); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// randomFile draws a routable demand for the network.
func randomFile(rng *rand.Rand, n, id, slot int) netmodel.File {
	src := rng.Intn(n)
	dst := (src + 1 + rng.Intn(n-1)) % n
	return netmodel.File{
		ID: id, Src: netmodel.DC(src), Dst: netmodel.DC(dst),
		Size: 2 + 18*rng.Float64(), Deadline: 1 + rng.Intn(4), Release: slot,
	}
}

// TestAdmittedPlansFeasible is the fast tier's core safety property: every
// admitted plan, on its own, is accepted by the independent schedule
// verifier against the capacities available at decision time (residual
// minus the batch's earlier reservations), i.e. it is capacity-feasible
// per slot, conserves traffic, and delivers the whole file inside its
// deadline window. Batches are committed slot by slot so later slots admit
// against real ledger state.
func TestAdmittedPlansFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(3)
		nw := randomSparseNetwork(t, rng, n, 20+20*rng.Float64())
		ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(12))
		if err != nil {
			t.Fatal(err)
		}
		seedLedger(t, rng, ledger, 4)
		ctrl, err := NewController(ledger, nil)
		if err != nil {
			t.Fatal(err)
		}
		id := 1
		for slot := 0; slot < 4; slot++ {
			for k := 0; k < 1+rng.Intn(3); k++ {
				f := randomFile(rng, n, id, slot)
				id++
				// Snapshot availability before this file's reservations so
				// the verifier checks the plan against exactly what the
				// admission decision was allowed to use.
				avail := ctrl.Reservations().Clone()
				dec, err := ctrl.Admit(f, slot)
				if err != nil {
					t.Fatalf("trial %d slot %d: %v", trial, slot, err)
				}
				if !dec.Admitted {
					if !dec.Exhaustive {
						t.Errorf("trial %d: rejection of file %d not exhaustive (%d expansions)",
							trial, f.ID, dec.Expansions)
					}
					continue
				}
				err = schedule.Verify(dec.Plan.Schedule, nw, []netmodel.File{f}, schedule.VerifyConfig{
					Residual: func(i, j netmodel.DC, s int) float64 { return avail.Available(i, j, s) },
				})
				if err != nil {
					t.Errorf("trial %d: admitted plan for file %d fails verification: %v", trial, f.ID, err)
				}
				for _, a := range dec.Plan.Schedule.Actions() {
					if a.Slot < f.Release || a.Slot >= f.Release+f.Deadline {
						t.Errorf("trial %d: file %d action %v outside deadline window", trial, f.ID, a)
					}
				}
			}
			plan, _, err := ctrl.TakePlan()
			if err != nil {
				t.Fatalf("trial %d slot %d: taking plan: %v", trial, slot, err)
			}
			if err := plan.Apply(ledger); err != nil {
				t.Fatalf("trial %d slot %d: committing: %v", trial, slot, err)
			}
			if got := ctrl.Reservations().TotalReserved(); got != 0 {
				t.Fatalf("trial %d slot %d: %v GB still reserved after TakePlan", trial, slot, got)
			}
		}
	}
}

// TestAdmissionHeadroomAtLowPercentile pins the q < 100 invariant: the fast
// tier only fills paid headroom, so committing an admitted batch can never
// raise the ledger's charge — the cost per slot after Apply equals the cost
// before, and every admitted plan reports a zero charge delta.
func TestAdmissionHeadroomAtLowPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(3)
		nw := randomSparseNetwork(t, rng, n, 25)
		ledger, err := netmodel.NewLedger(nw, netmodel.Charging{Q: 95, PeriodSlots: 12})
		if err != nil {
			t.Fatal(err)
		}
		seedLedger(t, rng, ledger, 8)
		ctrl, err := NewController(ledger, nil)
		if err != nil {
			t.Fatal(err)
		}
		id := 1
		for slot := 0; slot < 3; slot++ {
			before := ledger.CostPerSlot()
			for k := 0; k < 2+rng.Intn(3); k++ {
				f := randomFile(rng, n, id, slot)
				id++
				dec, err := ctrl.Admit(f, slot)
				if err != nil {
					t.Fatalf("trial %d: %v", trial, err)
				}
				if !dec.Admitted {
					continue
				}
				if dec.Plan.ChargeDelta != 0 {
					t.Errorf("trial %d: q<100 admission of file %d reports charge delta %v",
						trial, f.ID, dec.Plan.ChargeDelta)
				}
				// Per-action check: nothing exceeds the headroom that was
				// free when the batch started (reservations included).
				for _, a := range dec.Plan.Schedule.Actions() {
					if a.IsHold() {
						continue
					}
					if head := ledger.PaidHeadroom(a.From, a.To, a.Slot); a.Amount > head+1e-9*(1+a.Amount) {
						t.Errorf("trial %d: action %v exceeds paid headroom %v", trial, a, head)
					}
				}
			}
			plan, _, err := ctrl.TakePlan()
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.Apply(ledger); err != nil {
				t.Fatal(err)
			}
			after := ledger.CostPerSlot()
			if after > before+1e-9*(1+math.Abs(before)) {
				t.Errorf("trial %d slot %d: committing admitted batch raised charge %v -> %v",
					trial, slot, before, after)
			}
		}
	}
}

// TestChargeDeltaExactAt100 pins the fast tier's cost accounting under peak
// charging: the per-file charge deltas of a batch telescope, so their sum
// equals the actual increase in ledger cost per slot once the batch is
// committed.
func TestChargeDeltaExactAt100(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(3)
		nw := randomSparseNetwork(t, rng, n, 30)
		ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(12))
		if err != nil {
			t.Fatal(err)
		}
		seedLedger(t, rng, ledger, 5)
		ctrl, err := NewController(ledger, nil)
		if err != nil {
			t.Fatal(err)
		}
		sumDelta := 0.0
		before := ledger.CostPerSlot()
		for k := 0; k < 4; k++ {
			f := randomFile(rng, n, k+1, 0)
			dec, err := ctrl.Admit(f, 0)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Admitted {
				sumDelta += dec.Plan.ChargeDelta
			}
		}
		plan, _, err := ctrl.TakePlan()
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Apply(ledger); err != nil {
			t.Fatal(err)
		}
		got := ledger.CostPerSlot() - before
		if math.Abs(got-sumDelta) > 1e-6*(1+math.Abs(got)) {
			t.Errorf("trial %d: batch charge deltas sum to %v but ledger cost rose by %v",
				trial, sumDelta, got)
		}
	}
}
