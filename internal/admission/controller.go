package admission

import (
	"fmt"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
)

// DefaultMaxExpansions bounds the best-first path search per admission.
// The frontier holds simple-path prefixes, so on the evaluation networks
// (complete graphs of 8-20 datacenters, deadlines of a few slots) the
// search drains far below this bound and every rejection is exhaustive.
const DefaultMaxExpansions = 4096

// Config tunes the admission tier.
type Config struct {
	// MaxExpansions bounds the partial paths the per-file search may pop
	// before giving up (a non-exhaustive rejection). 0 selects
	// DefaultMaxExpansions.
	MaxExpansions int
	// Solver configures the background re-optimizer's core.Solver; nil
	// selects the optimizer defaults.
	Solver *core.Config
}

func (c *Config) withDefaults() Config {
	out := Config{}
	if c != nil {
		out = *c
	}
	if out.MaxExpansions <= 0 {
		out.MaxExpansions = DefaultMaxExpansions
	}
	return out
}

// Stats counts the admission tier's cumulative work. Admits and Rejects
// count fast-path decisions (a batch re-admitted after the simulation
// engine sheds a file counts again — they measure decision traffic, not
// unique files). FastCost totals the provisional cost-per-slot increase of
// batches actually taken (republished batches contribute their improved LP
// delta); RepublishDelta totals the cost per slot the re-optimizer shaved
// off the fast tier's provisional plans.
type Stats struct {
	Admits         int
	Rejects        int
	Republishes    int
	FastCost       float64
	RepublishDelta float64
}

// Decision is the outcome of one Admit call.
type Decision struct {
	// Admitted reports whether a feasible placement was found and reserved.
	Admitted bool
	// Plan is the provisional placement; nil when rejected.
	Plan *Plan
	// Expansions counts partial paths the search popped.
	Expansions int
	// Exhaustive reports whether a rejection covered the entire simple-path
	// space up to the hop bound (always true for admissions).
	Exhaustive bool
}

// Controller is the two-tier admission control point over one ledger: the
// fast tier answers Admit per arriving file, reserving capacity in a
// Reservations view (never in the ledger itself); Republish re-solves the
// admitted batch with the incremental LP solver and atomically swaps the
// reservations to the improved plan; TakePlan hands the batch's final
// schedule to the caller for commitment. A Controller is not safe for
// concurrent use.
type Controller struct {
	cfg    Config
	res    *netmodel.Reservations
	q100   bool
	solver *core.Solver

	slot      int // current batch's slot, -1 when no batch is open
	files     []netmodel.File
	plan      *schedule.Schedule
	batchCost float64 // provisional cost/slot delta of the open batch

	stats Stats
}

// NewController creates an admission controller over the ledger.
func NewController(ledger *netmodel.Ledger, cfg *Config) (*Controller, error) {
	if ledger == nil {
		return nil, fmt.Errorf("admission: nil ledger")
	}
	return &Controller{
		cfg:  cfg.withDefaults(),
		res:  netmodel.NewReservations(ledger),
		q100: ledger.Scheme().Q >= 100,
		slot: -1,
	}, nil
}

// Reservations exposes the live reservation view (for inspection; callers
// must not mutate it).
func (c *Controller) Reservations() *netmodel.Reservations { return c.res }

// Stats returns the cumulative admission counters.
func (c *Controller) Stats() Stats { return c.stats }

// SolverStats returns the background re-optimizer's cumulative LP counters
// (the zero value when no republish has run yet).
func (c *Controller) SolverStats() core.SolveStats {
	if c.solver == nil {
		return core.SolveStats{}
	}
	return c.solver.Stats()
}

// Pending reports the files admitted into the currently open batch.
func (c *Controller) Pending() []netmodel.File {
	return append([]netmodel.File(nil), c.files...)
}

// BatchPlan returns the open batch's current merged schedule — the
// provisional single-path plans, or the LP plan after a successful
// Republish — as a sorted action list. Empty when no batch is open.
func (c *Controller) BatchPlan() []schedule.Action {
	if c.plan == nil {
		return nil
	}
	return c.plan.Actions()
}

// BatchCost reports the open batch's provisional cost-per-slot delta.
func (c *Controller) BatchCost() float64 { return c.batchCost }

// Admit answers the fast-path admission decision for one arriving file at
// slot now: it searches for the cheapest feasible single-path placement
// under the unreserved capacities (headroom-only under q < 100) and, when
// one exists, reserves its slot-by-slot capacity and adds the file to the
// open batch. A rejection reserves nothing and leaves the batch intact.
// Batches are per slot: the previous slot's batch must have been taken
// (TakePlan) or rolled back before admitting into a new slot.
func (c *Controller) Admit(f netmodel.File, now int) (Decision, error) {
	if err := f.Validate(c.res.Ledger().Network()); err != nil {
		return Decision{}, err
	}
	if f.Release < now {
		return Decision{}, fmt.Errorf("admission: file %d released at %d, admitted at %d", f.ID, f.Release, now)
	}
	if c.slot != now {
		if len(c.files) > 0 {
			return Decision{}, fmt.Errorf("admission: batch for slot %d still open at slot %d", c.slot, now)
		}
		c.slot = now
	}
	plan, expansions, exhaustive := planFile(c.res, f, c.cfg.MaxExpansions, c.q100)
	if plan == nil {
		c.stats.Rejects++
		return Decision{Expansions: expansions, Exhaustive: exhaustive}, nil
	}
	if err := c.reserveSchedule(plan.Schedule); err != nil {
		return Decision{}, fmt.Errorf("admission: reserving plan for file %d: %w", f.ID, err)
	}
	c.files = append(c.files, f)
	if c.plan == nil {
		c.plan = &schedule.Schedule{}
	}
	mergeSchedule(c.plan, plan.Schedule)
	c.batchCost += plan.ChargeDelta
	c.stats.Admits++
	return Decision{Admitted: true, Plan: plan, Expansions: expansions, Exhaustive: true}, nil
}

// Republish re-solves the open batch with the incremental LP solver and,
// when the LP improves on the provisional plans, atomically swaps the
// batch's reservations and schedule to the LP's. The solver prices against
// the ledger — which never contains reservations — so the whole batch is
// re-planned from the committed state. The batch's provisional plans prove
// the LP feasible, so a non-optimal status is defensive: the fast plan is
// kept and no error is returned.
//
// The swap is failure-atomic: the reservation state is restored to the
// pre-swap buckets whenever any step fails, so c.plan and the live
// reservations never disagree. Without that restore, a swap that released
// the provisional reservations but could not reserve the LP plan (e.g. a
// foreign reservation was placed on the view after Admit) left the
// controller pointing at a plan whose reservations were already freed —
// and the server drain path's Rollback/TakePlan then double-released them.
func (c *Controller) Republish(now int) error {
	if len(c.files) == 0 {
		return nil
	}
	if now != c.slot {
		return fmt.Errorf("admission: republish at slot %d for batch of slot %d", now, c.slot)
	}
	if c.solver == nil {
		c.solver = core.NewSolver(c.cfg.Solver)
	}
	res, err := c.solver.Solve(c.res.Ledger(), c.files, now)
	if err != nil {
		return fmt.Errorf("admission: republish solve: %w", err)
	}
	if res.Status != lp.Optimal {
		return nil
	}
	lpDelta := res.CostPerSlot - c.res.Ledger().CostPerSlot()
	saved := c.res.Clone()
	if err := c.releaseSchedule(c.plan); err != nil {
		c.restoreReservations(saved)
		return fmt.Errorf("admission: releasing fast-tier reservations: %w", err)
	}
	if err := c.reserveSchedule(res.Schedule); err != nil {
		// The LP plan no longer fits the reservation view (it was solved
		// against the ledger alone). Restore the provisional reservations
		// and keep the fast plan — the same defensive outcome as a
		// non-optimal solve.
		c.restoreReservations(saved)
		return nil
	}
	c.stats.Republishes++
	c.stats.RepublishDelta += c.batchCost - lpDelta
	c.batchCost = lpDelta
	c.plan = res.Schedule
	return nil
}

// TakePlan closes the open batch: reservations are released (the caller is
// about to commit the schedule to the ledger, which supersedes them) and
// the batch's schedule and files are returned. The returned schedule is
// never nil. After a Republish the released reservations are the swapped
// LP plan's, which by Republish's atomicity always match c.plan; a release
// failure restores the pre-release buckets and keeps the batch open.
func (c *Controller) TakePlan() (*schedule.Schedule, []netmodel.File, error) {
	plan, files := c.plan, c.files
	if plan == nil {
		plan = &schedule.Schedule{}
	}
	saved := c.res.Clone()
	if err := c.releaseSchedule(c.plan); err != nil {
		c.restoreReservations(saved)
		return nil, nil, fmt.Errorf("admission: closing batch: %w", err)
	}
	c.stats.FastCost += c.batchCost
	c.plan, c.files, c.batchCost = nil, nil, 0
	return plan, files, nil
}

// Rollback discards the open batch, releasing all its reservations — the
// swapped LP plan's after a Republish, the provisional single-path ones
// before. The admit/reject counters keep the decisions; the discarded
// batch contributes nothing to FastCost. A release failure restores the
// pre-release buckets and keeps the batch open, exactly like TakePlan.
func (c *Controller) Rollback() error {
	saved := c.res.Clone()
	if err := c.releaseSchedule(c.plan); err != nil {
		c.restoreReservations(saved)
		return fmt.Errorf("admission: rollback: %w", err)
	}
	c.plan, c.files, c.batchCost = nil, nil, 0
	return nil
}

// restoreReservations rolls the live reservation view back to a saved
// clone. CopyFrom cannot fail here: the clone shares c.res's ledger.
func (c *Controller) restoreReservations(saved *netmodel.Reservations) {
	if err := c.res.CopyFrom(saved); err != nil {
		panic("admission: restoring reservation snapshot: " + err.Error())
	}
}

// reserveSchedule reserves every transfer action of s; on failure the
// already-reserved prefix is released so a failed reserve changes nothing.
func (c *Controller) reserveSchedule(s *schedule.Schedule) error {
	if s == nil {
		return nil
	}
	actions := s.Actions()
	for k, a := range actions {
		if a.IsHold() {
			continue
		}
		if err := c.res.Reserve(a.From, a.To, a.Slot, a.Amount); err != nil {
			for _, b := range actions[:k] {
				if b.IsHold() {
					continue
				}
				_ = c.res.Release(b.From, b.To, b.Slot, b.Amount)
			}
			return err
		}
	}
	return nil
}

// releaseSchedule releases every transfer action of s.
func (c *Controller) releaseSchedule(s *schedule.Schedule) error {
	if s == nil {
		return nil
	}
	for _, a := range s.Actions() {
		if a.IsHold() {
			continue
		}
		if err := c.res.Release(a.From, a.To, a.Slot, a.Amount); err != nil {
			return err
		}
	}
	return nil
}

// mergeSchedule appends every action of src to dst.
func mergeSchedule(dst, src *schedule.Schedule) {
	for _, a := range src.Actions() {
		dst.Add(a)
	}
}
