package admission

import (
	"math"
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
)

// triangle builds a 3-DC network where the direct link 0->1 is expensive
// and the detour 0->2->1 is cheap, so path choice is observable.
func triangle(t *testing.T, capacity float64) *netmodel.Network {
	t.Helper()
	nw, err := netmodel.NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	links := []struct {
		from, to netmodel.DC
		price    float64
	}{
		{0, 1, 10}, {0, 2, 1}, {2, 1, 1}, {1, 0, 5}, {2, 0, 5}, {1, 2, 5},
	}
	for _, l := range links {
		if err := nw.SetLink(l.from, l.to, l.price, capacity); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

// TestAdmitPrefersCheapPath checks the search order: with a deadline long
// enough for the detour, the fast tier routes around the expensive direct
// link.
func TestAdmitPrefersCheapPath(t *testing.T) {
	nw := triangle(t, 100)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(8))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(ledger, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := netmodel.File{ID: 1, Src: 0, Dst: 1, Size: 50, Deadline: 3, Release: 0}
	dec, err := ctrl.Admit(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatal("feasible file rejected")
	}
	want := []netmodel.DC{0, 2, 1}
	if len(dec.Plan.Path) != len(want) {
		t.Fatalf("path %v, want %v", dec.Plan.Path, want)
	}
	for i := range want {
		if dec.Plan.Path[i] != want[i] {
			t.Fatalf("path %v, want %v", dec.Plan.Path, want)
		}
	}
	// Detour carries the file over two 1-priced links: peak 50 on each.
	if want := 100.0; math.Abs(dec.Plan.ChargeDelta-want) > 1e-9 {
		t.Errorf("charge delta %v, want %v", dec.Plan.ChargeDelta, want)
	}
	// Deadline 1 forces the direct link instead.
	g := netmodel.File{ID: 2, Src: 0, Dst: 1, Size: 50, Deadline: 1, Release: 0}
	dec, err = ctrl.Admit(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted || len(dec.Plan.Path) != 2 {
		t.Fatalf("urgent file: admitted=%v path=%v, want direct", dec.Admitted, dec.Plan.Path)
	}
}

// TestAdmitRejectsExhaustively checks the rejection contract: a file whose
// window capacity cannot carry it on any path is rejected with Exhaustive
// set, and nothing stays reserved.
func TestAdmitRejectsExhaustively(t *testing.T) {
	nw := triangle(t, 10)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(8))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(ledger, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := netmodel.File{ID: 1, Src: 0, Dst: 1, Size: 25, Deadline: 2, Release: 0}
	dec, err := ctrl.Admit(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Admitted {
		t.Fatal("25 GB in 2 slots over 10 GB/slot links was admitted")
	}
	if !dec.Exhaustive {
		t.Errorf("rejection not exhaustive (%d expansions)", dec.Expansions)
	}
	if got := ctrl.Reservations().TotalReserved(); got != 0 {
		t.Errorf("%v GB reserved after rejection", got)
	}
	st := ctrl.Stats()
	if st.Rejects != 1 || st.Admits != 0 {
		t.Errorf("stats %+v, want 1 reject", st)
	}
}

// TestRepublishShrinksReservation is the focused reservation-release
// accounting test for the republish protocol: the fast tier's single-path
// plan over-reserves relative to the LP optimum (which may split the file),
// and a republish must swap the reservations to exactly the LP plan's
// per-link per-slot volumes — releasing the over-reservation mid-horizon —
// with nothing left behind after TakePlan.
func TestRepublishShrinksReservation(t *testing.T) {
	nw := triangle(t, 100)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(8))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(ledger, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := netmodel.File{ID: 1, Src: 0, Dst: 1, Size: 60, Deadline: 3, Release: 0}
	dec, err := ctrl.Admit(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatal("feasible file rejected")
	}
	fastCost := ctrl.Stats().FastCost // still zero: batch is open
	if fastCost != 0 {
		t.Fatalf("FastCost %v before batch close", fastCost)
	}
	if err := ctrl.Republish(0); err != nil {
		t.Fatal(err)
	}
	st := ctrl.Stats()
	if st.Republishes != 1 {
		t.Fatalf("stats %+v, want 1 republish", st)
	}
	if st.RepublishDelta < -1e-9 {
		t.Errorf("republish made the plan worse: delta %v", st.RepublishDelta)
	}
	plan, files, err := ctrl.TakePlan()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 || files[0].ID != 1 {
		t.Fatalf("batch files %v", files)
	}
	if got := ctrl.Reservations().TotalReserved(); got != 0 {
		t.Errorf("%v GB reserved after TakePlan", got)
	}
	// The republished plan must stand alone: verified independently and
	// committable.
	err = schedule.Verify(plan, nw, files, schedule.VerifyConfig{
		Residual: func(i, j netmodel.DC, s int) float64 { return ledger.Residual(i, j, s) },
	})
	if err != nil {
		t.Fatalf("republished plan fails verification: %v", err)
	}
	if err := plan.Apply(ledger); err != nil {
		t.Fatal(err)
	}
}

// TestRepublishReservationMatchesLP pins the mid-swap state: after
// Republish, the live reservations equal the LP schedule's transfer volumes
// exactly, per link and slot — the fast tier's over-reservation has been
// released back.
func TestRepublishReservationMatchesLP(t *testing.T) {
	nw := triangle(t, 100)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(8))
	if err != nil {
		t.Fatal(err)
	}
	// Pre-charge the cheap detour so the LP and the fast tier disagree.
	for s := 0; s < 2; s++ {
		if err := ledger.Add(0, 2, s, 30); err != nil {
			t.Fatal(err)
		}
		if err := ledger.Add(2, 1, s, 30); err != nil {
			t.Fatal(err)
		}
	}
	ctrl, err := NewController(ledger, nil)
	if err != nil {
		t.Fatal(err)
	}
	f := netmodel.File{ID: 1, Src: 0, Dst: 1, Size: 80, Deadline: 2, Release: 0}
	dec, err := ctrl.Admit(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatal("feasible file rejected")
	}
	if err := ctrl.Republish(0); err != nil {
		t.Fatal(err)
	}
	// Reservations must now mirror the republished plan exactly.
	plan, _, err := ctrl.TakePlan()
	if err != nil {
		t.Fatal(err)
	}
	// TakePlan released everything; re-derive what the reservations were by
	// re-reserving the plan and comparing per-link volumes.
	res := ctrl.Reservations()
	nw.Links(func(l netmodel.Link, _, _ float64) {
		for s := 0; s < 4; s++ {
			if got := res.Reserved(l.From, l.To, s); got != 0 {
				t.Errorf("link %v slot %d: %v GB reserved after TakePlan", l, s, got)
			}
		}
	})
	for _, a := range plan.Actions() {
		if a.IsHold() {
			continue
		}
		if err := res.Reserve(a.From, a.To, a.Slot, a.Amount); err != nil {
			t.Fatalf("republished plan does not fit residual capacity: %v", err)
		}
	}
	nw.Links(func(l netmodel.Link, _, _ float64) {
		for s := 0; s < 4; s++ {
			want := plan.TransferVolume(l.From, l.To, s)
			if got := res.Reserved(l.From, l.To, s); math.Abs(got-want) > 1e-9 {
				t.Errorf("link %v slot %d: reserved %v, plan %v", l, s, got, want)
			}
		}
	})
}

// TestRollbackReleasesEverything checks the engine-facing contract: after
// a mid-batch rejection the adapter rolls the batch back, and the
// controller must return to a clean slate accepting a new batch.
func TestRollbackReleasesEverything(t *testing.T) {
	nw := triangle(t, 40)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(8))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(ledger, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := netmodel.File{ID: 1, Src: 0, Dst: 1, Size: 30, Deadline: 2, Release: 0}
	if dec, err := ctrl.Admit(a, 0); err != nil || !dec.Admitted {
		t.Fatalf("admit: %v admitted=%v", err, dec.Admitted)
	}
	if err := ctrl.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Reservations().TotalReserved(); got != 0 {
		t.Fatalf("%v GB reserved after rollback", got)
	}
	if st := ctrl.Stats(); st.FastCost != 0 {
		t.Errorf("rolled-back batch contributed FastCost %v", st.FastCost)
	}
	// A fresh batch at a later slot must work.
	b := netmodel.File{ID: 2, Src: 0, Dst: 1, Size: 30, Deadline: 2, Release: 1}
	if dec, err := ctrl.Admit(b, 1); err != nil || !dec.Admitted {
		t.Fatalf("admit after rollback: %v admitted=%v", err, dec.Admitted)
	}
	plan, _, err := ctrl.TakePlan()
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Apply(ledger); err != nil {
		t.Fatal(err)
	}
}
