// Package admission implements the allocate-on-arrival fast tier of the
// two-tier scheduler (DCRoute-style, see PAPERS.md): each incoming file is
// answered admit/reject in O(links x horizon) with a provisional
// single-path store-and-forward schedule that fills paid headroom first,
// while a background re-optimizer wraps the incremental core.Solver and
// republishes the LP-optimal plan for the admitted batch between slots,
// releasing the fast tier's over-reservations. No LP runs on the hot path.
package admission

import (
	"container/heap"

	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
)

// Plan is the fast tier's provisional placement for one admitted file: a
// single source->destination path and a slot-by-slot store-and-forward
// schedule along it (complete with holdover actions, so the independent
// schedule verifier accepts it stand-alone).
type Plan struct {
	File netmodel.File
	// Path is the chosen simple path from File.Src to File.Dst.
	Path []netmodel.DC
	// Schedule routes the whole file along Path within its deadline.
	Schedule *schedule.Schedule
	// ChargeDelta is the increase in ledger cost per slot that committing
	// this plan on top of the current reservations would cause (always 0
	// under q < 100 charging, where the fast tier only fills headroom).
	ChargeDelta float64
	// Expansions counts partial paths the best-first search popped.
	Expansions int
	// Exhaustive reports whether the search covered the entire simple-path
	// space up to the hop bound (as opposed to stopping at MaxExpansions).
	Exhaustive bool
}

// ftol is the relative delivery tolerance of the greedy path evaluator:
// a path counts as feasible when it delivers at least Size - ftol*(1+Size).
// It is kept two orders of magnitude below the schedule verifier's default
// so marginal shortfalls stay invisible downstream.
const ftol = 1e-9

// deliveryTol returns the absolute delivery tolerance for a file size.
func deliveryTol(size float64) float64 { return ftol * (1 + size) }

// usableAt reports the per-slot capacity the fast tier may allocate on a
// link: under 100th-percentile charging the full unreserved residual (any
// excess over the charged peak is costed by ChargeDelta), under q < 100
// only the free headroom, so admitted plans can never raise the charge.
func usableAt(res *netmodel.Reservations, i, j netmodel.DC, slot int, q100 bool) float64 {
	if q100 {
		return res.Available(i, j, slot)
	}
	return res.FreeHeadroom(i, j, slot)
}

// linkEst summarizes one link over a file's window for the path search.
type linkEst struct {
	feasible bool    // window capacity can carry the whole file
	cost     float64 // estimated marginal charge of routing the file across
}

// estimateLink computes the search estimate for routing f across link i->j:
// infeasible when the window's usable capacity cannot carry the file at all
// (a single-path placement must push the full size across every hop), and
// otherwise the price times the volume that will not fit under free
// headroom — an order-of-magnitude cost proxy, not an exact charge.
func estimateLink(res *netmodel.Reservations, i, j netmodel.DC, f netmodel.File, q100 bool) linkEst {
	deadlineLayer := f.Release + f.Deadline
	total, free := 0.0, 0.0
	for s := f.Release; s < deadlineLayer; s++ {
		u := usableAt(res, i, j, s, q100)
		total += u
		h := res.FreeHeadroom(i, j, s)
		if h > u {
			h = u
		}
		free += h
	}
	if total < f.Size-deliveryTol(f.Size) {
		return linkEst{}
	}
	over := f.Size - free
	if over < 0 {
		over = 0
	}
	return linkEst{feasible: true, cost: res.Ledger().Network().Price(i, j) * over}
}

// searchNode is a partial path in the best-first search frontier.
type searchNode struct {
	cost float64
	path []netmodel.DC
}

// nodeLess orders the frontier by (estimated cost, hops, lexicographic
// path), making the search — and therefore every admission decision —
// fully deterministic.
func nodeLess(a, b *searchNode) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if len(a.path) != len(b.path) {
		return len(a.path) < len(b.path)
	}
	for i := range a.path {
		if a.path[i] != b.path[i] {
			return a.path[i] < b.path[i]
		}
	}
	return false
}

type searchHeap []*searchNode

func (h searchHeap) Len() int            { return len(h) }
func (h searchHeap) Less(i, j int) bool  { return nodeLess(h[i], h[j]) }
func (h searchHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *searchHeap) Push(x any)         { *h = append(*h, x.(*searchNode)) }
func (h *searchHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// hopDistTo computes BFS hop distances from every datacenter to dst over
// the network's directed links (traversed backwards), for pruning prefixes
// that cannot reach the destination within the hop budget. Unreachable
// nodes report a distance larger than any hop bound.
func hopDistTo(nw *netmodel.Network, dst netmodel.DC) []int {
	n := nw.NumDCs()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = n + 1
	}
	dist[dst] = 0
	queue := []netmodel.DC{dst}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := 0; u < n; u++ {
			d := netmodel.DC(u)
			if dist[u] > dist[v]+1 && nw.HasLink(d, v) {
				dist[u] = dist[v] + 1
				queue = append(queue, d)
			}
		}
	}
	return dist
}

// planFile searches for the cheapest feasible single-path placement of f
// under the current reservations. It returns (plan, expansions, exhaustive):
// plan is nil when no candidate path within the search budget can carry the
// file; exhaustive reports whether the rejection covered the entire
// simple-path space up to the hop bound.
func planFile(res *netmodel.Reservations, f netmodel.File, maxExpansions int, q100 bool) (*Plan, int, bool) {
	nw := res.Ledger().Network()
	n := nw.NumDCs()
	maxHops := f.Deadline
	if n-1 < maxHops {
		maxHops = n - 1
	}
	dist := hopDistTo(nw, f.Dst)
	if dist[f.Src] > maxHops {
		return nil, 0, true
	}

	// Link estimates are memoized per directed link: the window is fixed,
	// so each link is summarized at most once per admission.
	ests := make(map[int]linkEst, n)
	estOf := func(i, j netmodel.DC) linkEst {
		k := int(i)*n + int(j)
		e, ok := ests[k]
		if !ok {
			e = estimateLink(res, i, j, f, q100)
			ests[k] = e
		}
		return e
	}

	frontier := &searchHeap{{path: []netmodel.DC{f.Src}}}
	expansions := 0
	for frontier.Len() > 0 {
		if expansions >= maxExpansions {
			return nil, expansions, false
		}
		node := heap.Pop(frontier).(*searchNode)
		expansions++
		last := node.path[len(node.path)-1]
		if last == f.Dst {
			sends, ok := simulatePath(res, f, node.path, q100)
			if !ok {
				continue
			}
			trimSends(sends, f.Size)
			plan := emitPlan(f, node.path, sends)
			plan.ChargeDelta = chargeDelta(res, f, node.path, sends)
			plan.Expansions = expansions
			return plan, expansions, true
		}
		hops := len(node.path) - 1
		inPath := func(d netmodel.DC) bool {
			for _, p := range node.path {
				if p == d {
					return true
				}
			}
			return false
		}
		for v := 0; v < n; v++ {
			next := netmodel.DC(v)
			if inPath(next) || !nw.HasLink(last, next) {
				continue
			}
			if hops+1+dist[v] > maxHops {
				continue
			}
			e := estOf(last, next)
			if !e.feasible {
				continue
			}
			path := make([]netmodel.DC, len(node.path)+1)
			copy(path, node.path)
			path[len(node.path)] = next
			heap.Push(frontier, &searchNode{cost: node.cost + e.cost, path: path})
		}
	}
	return nil, expansions, true
}

// simulatePath runs the exact greedy forward simulation of f along path:
// every hop forwards as much of its stock as the slot's usable capacity
// allows, downstream hops first so data moves at most one hop per slot.
// With free, uncapacitated storage this greedy is a maximum flow by the
// deadline on the fixed path, so it is an exact feasibility test. It
// returns the per-hop per-slot send profile (indexed [hop][slot-Release])
// and whether the path can deliver the whole file.
func simulatePath(res *netmodel.Reservations, f netmodel.File, path []netmodel.DC, q100 bool) ([][]float64, bool) {
	hops := len(path) - 1
	horizon := f.Deadline
	sends := make([][]float64, hops)
	for i := range sends {
		sends[i] = make([]float64, horizon)
	}
	stocks := make([]float64, hops+1)
	stocks[0] = f.Size
	for off := 0; off < horizon; off++ {
		slot := f.Release + off
		for i := hops - 1; i >= 0; i-- {
			amt := stocks[i]
			if u := usableAt(res, path[i], path[i+1], slot, q100); u < amt {
				amt = u
			}
			if amt <= 0 {
				continue
			}
			sends[i][off] = amt
			stocks[i] -= amt
			stocks[i+1] += amt
		}
	}
	return sends, stocks[hops] >= f.Size-deliveryTol(f.Size)
}

// trimSends prunes the greedy send profile down to exactly the file size
// per hop, dropping the latest surplus sends. Keeping the earliest sends
// preserves joint feasibility: the trimmed cumulative profile of hop i is
// min(greedy cumulative, size), and the greedy profiles already satisfy
// cum_i(s-1) >= cum_{i+1}(s), an inequality min(., size) preserves.
func trimSends(sends [][]float64, size float64) {
	for _, hop := range sends {
		cum := 0.0
		for s, amt := range hop {
			if cum+amt <= size {
				cum += amt
				continue
			}
			hop[s] = size - cum
			cum = size
		}
	}
}

// emitPlan replays the trimmed send profile into a verifier-complete
// schedule: transfer actions for every send plus holdover actions for every
// remaining stock, including the destination holding delivered data until
// the slot before the deadline layer (the verifier requires every live
// balance to move every slot, holds included).
func emitPlan(f netmodel.File, path []netmodel.DC, sends [][]float64) *Plan {
	hops := len(path) - 1
	s := &schedule.Schedule{}
	stocks := make([]float64, hops+1)
	stocks[0] = f.Size
	pre := make([]float64, hops+1)
	for off := 0; off < f.Deadline; off++ {
		slot := f.Release + off
		copy(pre, stocks)
		for i := hops - 1; i >= 0; i-- {
			amt := sends[i][off]
			if amt > 0 {
				s.Add(schedule.Action{FileID: f.ID, From: path[i], To: path[i+1], Slot: slot, Amount: amt})
				stocks[i] -= amt
				stocks[i+1] += amt
			}
			if hold := pre[i] - amt; hold > 0 {
				s.Add(schedule.Action{FileID: f.ID, From: path[i], To: path[i], Slot: slot, Amount: hold})
			}
		}
		if pre[hops] > 0 {
			s.Add(schedule.Action{FileID: f.ID, From: path[hops], To: path[hops], Slot: slot, Amount: pre[hops]})
		}
	}
	return &Plan{File: f, Path: path, Schedule: s}
}

// chargeDelta computes the exact increase in ledger cost per slot that
// committing the send profile on top of the current reservations causes
// under 100th-percentile charging: per link, price times the growth of the
// planned peak (ledger volume + reservations + sends) over the paid-for
// peak. Peaks are taken over the union of the charging period, the file
// window and the reservation extent, so per-file deltas telescope exactly
// across a batch. Under q < 100 the fast tier only fills headroom and the
// delta is zero by construction.
func chargeDelta(res *netmodel.Reservations, f netmodel.File, path []netmodel.DC, sends [][]float64) float64 {
	l := res.Ledger()
	if l.Scheme().Q < 100 {
		return 0
	}
	span := l.EffectivePeriodSlots()
	if e := res.Extent(); e > span {
		span = e
	}
	if dl := f.Release + f.Deadline; dl > span {
		span = dl
	}
	delta := 0.0
	for i := 0; i+1 < len(path); i++ {
		from, to := path[i], path[i+1]
		before, after := l.ChargedVolume(from, to), 0.0
		for s := 0; s < span; s++ {
			planned := res.PlannedVolume(from, to, s)
			if planned > before {
				before = planned
			}
			off := s - f.Release
			if off >= 0 && off < f.Deadline {
				planned += sends[i][off]
			}
			if planned > after {
				after = planned
			}
		}
		if after > before {
			delta += l.Network().Price(from, to) * (after - before)
		}
	}
	return delta
}
