package admission

import (
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
	"github.com/interdc/postcard/internal/workload"
)

// bruteReserved is the checker's own reservation tally, built only from
// admitted plans' actions — fully independent of the Reservations type
// under test.
type bruteReserved map[[3]int]float64

func (br bruteReserved) add(s *schedule.Schedule) {
	for _, a := range s.Actions() {
		if a.IsHold() {
			continue
		}
		br[[3]int{int(a.From), int(a.To), a.Slot}] += a.Amount
	}
}

// bruteUsable recomputes the fast tier's per-slot allocation cap from the
// ledger's public surface and the checker's own tally.
func bruteUsable(ledger *netmodel.Ledger, br bruteReserved, i, j netmodel.DC, slot int, q100 bool) float64 {
	cap := ledger.Residual(i, j, slot)
	if !q100 {
		if h := ledger.PaidHeadroom(i, j, slot); h < cap {
			cap = h
		}
	}
	cap -= br[[3]int{int(i), int(j), slot}]
	if cap < 0 {
		return 0
	}
	return cap
}

// brutePathDelivers greedily pushes the file along one fixed path,
// earliest-possible forwarding — with free storage this is the maximum
// deliverable volume on that path.
func brutePathDelivers(ledger *netmodel.Ledger, br bruteReserved, f netmodel.File, path []netmodel.DC, q100 bool) float64 {
	hops := len(path) - 1
	stocks := make([]float64, hops+1)
	stocks[0] = f.Size
	for off := 0; off < f.Deadline; off++ {
		slot := f.Release + off
		for i := hops - 1; i >= 0; i-- {
			amt := stocks[i]
			if u := bruteUsable(ledger, br, path[i], path[i+1], slot, q100); u < amt {
				amt = u
			}
			if amt > 0 {
				stocks[i] -= amt
				stocks[i+1] += amt
			}
		}
	}
	return stocks[hops]
}

// bruteBestDelivery enumerates every simple path from src to dst up to
// maxHops hops by DFS and returns the best greedy delivery among them.
func bruteBestDelivery(ledger *netmodel.Ledger, br bruteReserved, f netmodel.File, q100 bool) float64 {
	nw := ledger.Network()
	n := nw.NumDCs()
	maxHops := f.Deadline
	if n-1 < maxHops {
		maxHops = n - 1
	}
	best := 0.0
	inPath := make([]bool, n)
	var dfs func(path []netmodel.DC)
	dfs = func(path []netmodel.DC) {
		last := path[len(path)-1]
		if last == f.Dst {
			if d := brutePathDelivers(ledger, br, f, path, q100); d > best {
				best = d
			}
			return
		}
		if len(path)-1 >= maxHops {
			return
		}
		for v := 0; v < n; v++ {
			d := netmodel.DC(v)
			if inPath[v] || !nw.HasLink(last, d) {
				continue
			}
			inPath[v] = true
			dfs(append(path, d))
			inPath[v] = false
		}
	}
	inPath[f.Src] = true
	dfs([]netmodel.DC{f.Src})
	return best
}

// FuzzAdmissionFeasibility fuzzes random arrival sequences on random
// networks against the brute-force checker: every admitted plan must be
// independently verifiable and capacity-feasible, and every exhaustive
// rejection must coincide with the brute-force finding no single-path
// feasible placement either.
func FuzzAdmissionFeasibility(f *testing.F) {
	f.Add(int64(1), []byte{100, 20, 8, 0x12, 0x34, 0x56})
	f.Add(int64(7), []byte{95, 12, 30, 0xff, 0x01, 0x80, 0x44, 0x20})
	f.Add(int64(42), []byte{100, 6, 15, 0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		if len(data) < 3 {
			t.Skip()
		}
		q := 100.0
		if data[0]%2 == 1 {
			q = 95
		}
		capacity := 5 + float64(data[1]%26)
		n := 3 + int(data[2]%3)
		body := data[3:]
		if len(body) > 24 {
			body = body[:24]
		}
		nw, err := netmodel.Complete(n, workload.UniformPrices(seed), capacity)
		if err != nil {
			t.Fatal(err)
		}
		ledger, err := netmodel.NewLedger(nw, netmodel.Charging{Q: q, PeriodSlots: 8})
		if err != nil {
			t.Fatal(err)
		}
		// Pre-seed ledger traffic from the first bytes so headroom differs
		// per link and slot.
		for k, b := range body {
			i := netmodel.DC(int(b) % n)
			j := netmodel.DC((int(b)/n + 1 + int(i)) % n)
			if i == j {
				continue
			}
			if err := ledger.Add(i, j, k%4, float64(b%64)/64*capacity); err != nil {
				t.Fatal(err)
			}
		}
		ctrl, err := NewController(ledger, nil)
		if err != nil {
			t.Fatal(err)
		}
		q100 := q >= 100
		br := make(bruteReserved)
		slot, id := 0, 1
		for k := 0; k+2 < len(body); k += 3 {
			// Advance the slot occasionally, committing the open batch.
			if body[k]%5 == 0 && id > 1 {
				plan, _, err := ctrl.TakePlan()
				if err != nil {
					t.Fatal(err)
				}
				if err := plan.Apply(ledger); err != nil {
					t.Fatal(err)
				}
				br = make(bruteReserved) // committed traffic now lives in the ledger
				slot++
			}
			src := int(body[k]) % n
			dst := (src + 1 + int(body[k+1])%(n-1)) % n
			file := netmodel.File{
				ID: id, Src: netmodel.DC(src), Dst: netmodel.DC(dst),
				Size:     1 + float64(body[k+1]%100)/100*1.2*capacity,
				Deadline: 1 + int(body[k+2]%3),
				Release:  slot,
			}
			id++
			tol := deliveryTol(file.Size)
			dec, err := ctrl.Admit(file, slot)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Admitted {
				// Admitted => a single-path feasible placement exists under
				// the independently tracked capacities.
				if best := bruteBestDelivery(ledger, br, file, q100); best < file.Size-2*tol {
					t.Fatalf("admitted file %+v but brute force delivers only %v", file, best)
				}
				// And the plan itself must stand alone.
				brBefore := br
				err := schedule.Verify(dec.Plan.Schedule, nw, []netmodel.File{file}, schedule.VerifyConfig{
					Residual: func(i, j netmodel.DC, s int) float64 {
						return bruteUsable(ledger, brBefore, i, j, s, true)
					},
				})
				if err != nil {
					t.Fatalf("admitted plan for %+v fails verification: %v", file, err)
				}
				br.add(dec.Plan.Schedule)
			} else if dec.Exhaustive {
				// Exhaustive rejection => no single path can carry the file.
				if best := bruteBestDelivery(ledger, br, file, q100); best >= file.Size-tol/2 {
					t.Fatalf("rejected file %+v but brute force delivers %v of %v",
						file, best, file.Size)
				}
			}
		}
		plan, _, err := ctrl.TakePlan()
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Apply(ledger); err != nil {
			t.Fatal(err)
		}
		if got := ctrl.Reservations().TotalReserved(); got != 0 {
			t.Fatalf("%v GB still reserved after final commit", got)
		}
	})
}
