package sim

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/stats"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/sim -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenResult builds a fully deterministic FigureResult by hand (real
// experiments carry wall-clock solve times; here Elapsed is pinned) so the
// rendered Table and SeriesCSV are stable byte-for-byte.
func goldenResult() *FigureResult {
	return &FigureResult{
		Setting: netmodel.EvalSetting{
			Name: "limited capacity, urgent", Figure: 6, Capacity: 30, MaxT: 3,
		},
		Scale: Scale{
			Name: "golden", DCs: 8, Slots: 5, Runs: 3,
			FilesMin: 1, FilesMax: 5, SizeMinGB: 10, SizeMaxGB: 100, Seed: 2012,
		},
		Schedulers: []SchedulerSummary{
			{
				Name: "postcard",
				Final: stats.Summary{
					N: 3, Mean: 2450.125, StdDev: 110.5, CI95Half: 274.4875,
					Min: 2300.25, Max: 2520.5,
				},
				MeanSeries:    []float64{180.5, 655.25, 1200, 1980.625, 2450.125},
				DroppedFiles:  0,
				DroppedVolume: 0,
				Elapsed:       1234 * time.Millisecond,
				Solver: core.SolveStats{
					Solves: 15, WarmSolves: 12, GraphReuses: 12,
					Iterations: 4210, Phase1Iter: 380,
					PresolveCols: 96, PresolveRows: 64,
					SparseSolves: 900, DenseSolves: 300,
					SolveNNZ: 2400, SolveDim: 9600,
					DevexResets: 21, DualRecomputes: 154,
					VarUniverse: 7200, PrunedVars: 1800, PrunedRows: 450,
					ColGenRounds: 38, ColGenColumns: 960, ColGenUniverse: 5400,
				},
			},
			{
				Name: "flow-based",
				Final: stats.Summary{
					N: 3, Mean: 2890.75, StdDev: 150.25, CI95Half: 373.25,
					Min: 2700, Max: 3000.5,
				},
				MeanSeries:    []float64{210.125, 790.5, 1455.375, 2310.0625, 2890.75},
				DroppedFiles:  2,
				DroppedVolume: 155.75,
				Elapsed:       567 * time.Millisecond,
			},
		},
	}
}

// checkGolden compares got against testdata/<name>, rewriting the file
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output drifted from golden file (run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestFigureTableGolden pins the rendered experiment table byte-for-byte.
func TestFigureTableGolden(t *testing.T) {
	checkGolden(t, "figure6-table.golden", goldenResult().Table())
}

// TestSeriesCSVGolden pins the per-slot cost series CSV byte-for-byte.
func TestSeriesCSVGolden(t *testing.T) {
	checkGolden(t, "figure6-series.golden.csv", goldenResult().SeriesCSV())
}

// TestSolverTableGolden pins the rendered LP-work table byte-for-byte,
// including the model-sparsity columns (pruned%, cg-rnds, gen%). The
// flow-based row reports no solver work, so the golden file also pins the
// skip behavior: only instrumented schedulers appear.
func TestSolverTableGolden(t *testing.T) {
	checkGolden(t, "figure6-solver.golden", goldenResult().SolverTable())
}
