package sim

import (
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/workload"
)

// TestAllSchedulersOneTrace replays one identical workload through every
// scheduler and checks cross-cutting invariants: runs complete, costs are
// positive and non-decreasing over time, the two LP-based flow variants
// order correctly, and the optimal flow LP never loses to the greedy
// heuristic.
func TestAllSchedulersOneTrace(t *testing.T) {
	nw, err := netmodel.Complete(6, workload.UniformPrices(23), 60)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewUniform(workload.UniformConfig{
		NumDCs: 6, MinFiles: 1, MaxFiles: 3,
		MinSizeGB: 10, MaxSizeGB: 60, MaxDeadline: 4, FixedDeadline: true, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	const slots = 8
	trace := workload.Record(gen, slots)

	names := []string{"postcard", "postcard-nostore", "flow-based", "flow-two-phase", "flow-greedy", "direct"}
	finals := make(map[string]float64, len(names))
	for _, name := range names {
		var sched Scheduler
		switch name {
		case "postcard":
			sched = &Postcard{}
		case "postcard-nostore":
			sched = &Postcard{Label: name}
		case "flow-based":
			sched = &Flow{Variant: FlowLP}
		case "flow-two-phase":
			sched = &Flow{Variant: FlowTwoPhase}
		case "flow-greedy":
			sched = &Flow{Variant: FlowGreedy}
		case "direct":
			sched = &Flow{Variant: FlowDirect}
		}
		ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(slots))
		if err != nil {
			t.Fatal(err)
		}
		rs, err := Run(ledger, sched, trace, slots)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rs.FinalCostPerSlot <= 0 {
			t.Errorf("%s: nonpositive final cost %v", name, rs.FinalCostPerSlot)
		}
		for i := 1; i < len(rs.CostSeries); i++ {
			if rs.CostSeries[i] < rs.CostSeries[i-1]-1e-9 {
				t.Errorf("%s: cost series not monotone at %d", name, i)
			}
		}
		finals[name] = rs.FinalCostPerSlot
	}
	// The single LP dominates the two-phase decomposition slot by slot,
	// but online commitment order can occasionally invert the final cost;
	// allow a small margin.
	if finals["flow-based"] > finals["flow-two-phase"]*1.15 {
		t.Errorf("flow LP (%v) much worse than two-phase (%v)", finals["flow-based"], finals["flow-two-phase"])
	}
	if finals["flow-based"] > finals["flow-greedy"]*1.15 {
		t.Errorf("flow LP (%v) much worse than greedy (%v)", finals["flow-based"], finals["flow-greedy"])
	}
	// Direct never beats the optimal flow LP (direct is one feasible flow).
	if finals["flow-based"] > finals["direct"]+1e-6 {
		t.Errorf("flow LP (%v) worse than direct (%v)", finals["flow-based"], finals["direct"])
	}
	t.Logf("final costs: %v", finals)
}
