package sim

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/stats"
	"github.com/interdc/postcard/internal/workload"
)

// Scale sets the size of an evaluation experiment. The paper's scale is
// expensive (thousands of LP solves); CIScale keeps the same qualitative
// regimes at a size that runs in seconds.
type Scale struct {
	Name      string
	DCs       int
	Slots     int
	Runs      int
	FilesMin  int
	FilesMax  int
	SizeMinGB float64
	SizeMaxGB float64
	Seed      int64
	// Workers bounds the number of (run, scheduler) simulation cells
	// RunFigure executes concurrently. 0 or 1 means sequential. The
	// aggregated FigureResult is identical for every Workers value (see
	// RunFigure); only wall-clock time changes.
	Workers int
}

// PaperScale is the exact configuration of Sec. VII: 20 datacenters, 100
// slots, 10 runs, 1-20 files per slot of 10-100 GB.
func PaperScale() Scale {
	return Scale{
		Name:      "paper",
		DCs:       netmodel.EvalDCs,
		Slots:     netmodel.EvalSlots,
		Runs:      netmodel.EvalRuns,
		FilesMin:  1,
		FilesMax:  20,
		SizeMinGB: 10,
		SizeMaxGB: 100,
		Seed:      2012,
	}
}

// CIScale is a reduced configuration preserving the paper's regimes
// (ample versus limited capacity relative to per-file rates, urgent versus
// delay-tolerant deadlines) while keeping the LPs small. The per-slot file
// count is kept high relative to the link count so that cheap links see
// the contention that drives the paper's limited-capacity results.
func CIScale() Scale {
	return Scale{
		Name:      "ci",
		DCs:       8,
		Slots:     16,
		Runs:      3,
		FilesMin:  1,
		FilesMax:  5,
		SizeMinGB: 10,
		SizeMaxGB: 100,
		Seed:      2012,
	}
}

// DCScale is the solver-scaling configuration behind the PR 9 experiments:
// a Figure 4-style run (ample capacity, urgent deadlines) at an arbitrary
// datacenter count, sized so that the LP dimension — which grows with the
// link count, i.e. quadratically in DCs on the complete evaluation
// topology — is the only thing that changes between points. Slots and runs
// are kept small because one 128-DC slot already prices tens of thousands
// of candidate edges per file; the per-slot workload is fixed (not scaled
// with DCs) so solver time isolates model size, not demand volume.
func DCScale(dcs int) Scale {
	return Scale{
		Name:      fmt.Sprintf("dc%d", dcs),
		DCs:       dcs,
		Slots:     4,
		Runs:      1,
		FilesMin:  4,
		FilesMax:  8,
		SizeMinGB: 10,
		SizeMaxGB: 100,
		Seed:      2012,
	}
}

// Validate checks the scale.
func (s Scale) Validate() error {
	if s.DCs < 2 || s.Slots < 1 || s.Runs < 1 {
		return fmt.Errorf("sim: invalid scale %+v", s)
	}
	if s.FilesMin < 0 || s.FilesMax < s.FilesMin || s.SizeMinGB <= 0 || s.SizeMaxGB < s.SizeMinGB {
		return fmt.Errorf("sim: invalid workload ranges in scale %+v", s)
	}
	if s.Workers < 0 {
		return fmt.Errorf("sim: negative worker count %d in scale %+v", s.Workers, s)
	}
	return nil
}

// FigureConfig describes one evaluation figure to regenerate.
type FigureConfig struct {
	Setting    netmodel.EvalSetting
	Scale      Scale
	Schedulers []Scheduler
	// UniformDeadlines draws each file's deadline uniformly from
	// [1, Setting.MaxT] instead of fixing it at Setting.MaxT. The default
	// (fixed) follows the paper's "more urgent files (max T_k = 3)"
	// phrasing; note that under uniform draws, a deadline-1 file larger
	// than one link's per-slot capacity is undeliverable in the
	// time-slotted model (one slot = one hop) and will be shed.
	UniformDeadlines bool
	// Progress, when non-nil, receives human-readable progress lines.
	// Invocations are serialized (never concurrent), but with
	// Scale.Workers > 1 they arrive from worker goroutines in completion
	// order rather than (run, scheduler) order.
	Progress func(format string, args ...any)
}

// SchedulerSummary aggregates one scheduler's results across runs.
type SchedulerSummary struct {
	Name          string
	Final         stats.Summary // final cost per slot across runs (the figure's bar)
	MeanSeries    []float64     // cost per slot over time, averaged across runs
	DroppedFiles  int
	DroppedVolume float64
	Elapsed       time.Duration
	// Solver sums the per-run LP work deltas for schedulers that report
	// them (see SolverStatsReporter); the zero value otherwise.
	Solver core.SolveStats
}

// FigureResult is the regenerated data behind one evaluation figure.
type FigureResult struct {
	Setting    netmodel.EvalSetting
	Scale      Scale
	Schedulers []SchedulerSummary
}

// DefaultSchedulers returns the two schedulers the paper's figures compare.
func DefaultSchedulers() []Scheduler {
	return []Scheduler{&Postcard{}, &Flow{Variant: FlowLP}}
}

// effectiveWorkers resolves the worker count for an experiment with the
// given number of (run, scheduler) cells: Scale.Workers bounded below by 1
// and above by the cell count, and forced to 1 when any scheduler cannot
// be cloned (parallel cells must not share scheduler state).
func (cfg *FigureConfig) effectiveWorkers(cells int) int {
	w := cfg.Scale.Workers
	if w < 1 {
		w = 1
	}
	if w > cells {
		w = cells
	}
	if w > 1 {
		for _, s := range cfg.Schedulers {
			if _, ok := s.(CloneableScheduler); !ok {
				return 1
			}
		}
	}
	return w
}

// schedulerForCell returns the scheduler instance a cell should run:
// an independent clone when executing in parallel, the caller's instance
// itself when sequential (preserving the historical behavior of stateful
// custom schedulers under Workers <= 1).
func schedulerForCell(s Scheduler, parallel bool) Scheduler {
	if !parallel {
		return s
	}
	return s.(CloneableScheduler).CloneScheduler()
}

// cellResult is the outcome of one (run, scheduler) simulation cell.
type cellResult struct {
	stats *RunStats
	err   error
}

// runCell executes one (run, scheduler) cell: it rebuilds the run's
// deterministic network (prices are a pure function of the run seed, so
// every cell of a run sees a bit-identical network without sharing one),
// opens a fresh ledger, and replays the run's shared immutable trace
// through a private cursor.
func runCell(cfg *FigureConfig, run int, sched Scheduler, trace *workload.Trace) (*RunStats, error) {
	seed := cfg.Scale.Seed + int64(run)*7919
	nw, err := netmodel.Complete(cfg.Scale.DCs, workload.UniformPrices(seed), cfg.Setting.Capacity)
	if err != nil {
		return nil, err
	}
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(cfg.Scale.Slots))
	if err != nil {
		return nil, err
	}
	rs, err := Run(ledger, sched, trace.Replay(), cfg.Scale.Slots)
	if err != nil {
		return nil, fmt.Errorf("sim: fig %d run %d scheduler %s: %w",
			cfg.Setting.Figure, run, sched.Name(), err)
	}
	return rs, nil
}

// recordTrace generates the deterministic workload trace of one run.
func recordTrace(cfg *FigureConfig, run int) (*workload.Trace, error) {
	seed := cfg.Scale.Seed + int64(run)*7919
	gen, err := workload.NewUniform(workload.UniformConfig{
		NumDCs:        cfg.Scale.DCs,
		MinFiles:      cfg.Scale.FilesMin,
		MaxFiles:      cfg.Scale.FilesMax,
		MinSizeGB:     cfg.Scale.SizeMinGB,
		MaxSizeGB:     cfg.Scale.SizeMaxGB,
		MaxDeadline:   cfg.Setting.MaxT,
		FixedDeadline: !cfg.UniformDeadlines,
		Seed:          seed + 1,
	})
	if err != nil {
		return nil, err
	}
	return workload.Record(gen, cfg.Scale.Slots), nil
}

// RunFigure regenerates one evaluation figure: Scale.Runs independent
// simulations of Scale.Slots slots each, with per-run random prices in
// [1, 10], per-run workloads, and every scheduler replaying the identical
// trace on its own ledger.
//
// When Scale.Workers > 1 the (run, scheduler) cells execute on a worker
// pool: every cell gets its own network, ledger, trace-replay cursor, and
// scheduler clone (see CloneableScheduler), and the per-cell results are
// reduced in fixed (run, scheduler) order afterwards, so the aggregated
// FigureResult is bit-identical to a sequential run — only wall-clock time
// and the interleaving of Progress lines change. Progress callbacks are
// serialized through a mutex and never invoked concurrently. Schedulers
// that do not implement CloneableScheduler force sequential execution.
func RunFigure(cfg FigureConfig) (*FigureResult, error) {
	if err := cfg.Scale.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Schedulers) == 0 {
		cfg.Schedulers = DefaultSchedulers()
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}
	var progressMu sync.Mutex
	sayProgress := func(format string, args ...any) {
		progressMu.Lock()
		defer progressMu.Unlock()
		progress(format, args...)
	}

	nSched := len(cfg.Schedulers)
	cells := cfg.Scale.Runs * nSched
	workers := cfg.effectiveWorkers(cells)
	parallel := workers > 1

	// Per-run traces are generated up front (cheap RNG draws, each run's
	// stream is independent) and shared read-only across that run's cells.
	traces := make([]*workload.Trace, cfg.Scale.Runs)
	for run := range traces {
		tr, err := recordTrace(&cfg, run)
		if err != nil {
			return nil, err
		}
		traces[run] = tr
	}

	// Fan out over cells. results is indexed run*nSched+si so the reduce
	// below can walk it in the exact order the sequential loop used.
	results := make([]cellResult, cells)
	var failed atomic.Bool
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cell := range jobs {
				if failed.Load() {
					continue // drain remaining cells after a failure
				}
				run, si := cell/nSched, cell%nSched
				sched := schedulerForCell(cfg.Schedulers[si], parallel)
				rs, err := runCell(&cfg, run, sched, traces[run])
				results[cell] = cellResult{stats: rs, err: err}
				if err != nil {
					failed.Store(true)
					continue
				}
				sayProgress("fig %d run %d/%d %-14s cost/slot %.1f (%.1fs)",
					cfg.Setting.Figure, run+1, cfg.Scale.Runs, sched.Name(),
					rs.FinalCostPerSlot, rs.Elapsed.Seconds())
			}
		}()
	}
	for cell := 0; cell < cells; cell++ {
		jobs <- cell
	}
	close(jobs)
	wg.Wait()
	// Surface the first error in (run, scheduler) order, matching where
	// the sequential loop would have stopped.
	for cell := 0; cell < cells; cell++ {
		if err := results[cell].err; err != nil {
			return nil, err
		}
	}

	// Deterministic reduction: fixed (run, scheduler) order, identical to
	// the sequential accumulation (float addition is order-sensitive).
	type agg struct {
		finals  stats.Accumulator
		series  []float64
		dropped int
		dropVol float64
		elapsed time.Duration
		solver  core.SolveStats
	}
	aggs := make([]agg, nSched)
	for i := range aggs {
		aggs[i].series = make([]float64, cfg.Scale.Slots)
	}
	for run := 0; run < cfg.Scale.Runs; run++ {
		for si := range cfg.Schedulers {
			rs := results[run*nSched+si].stats
			aggs[si].finals.Add(rs.FinalCostPerSlot)
			for t, c := range rs.CostSeries {
				aggs[si].series[t] += c
			}
			aggs[si].dropped += rs.DroppedFiles
			aggs[si].dropVol += rs.DroppedVolume
			aggs[si].elapsed += rs.Elapsed
			aggs[si].solver = aggs[si].solver.Add(rs.Solver)
		}
	}
	res := &FigureResult{Setting: cfg.Setting, Scale: cfg.Scale}
	for si, sched := range cfg.Schedulers {
		mean := make([]float64, cfg.Scale.Slots)
		for t := range mean {
			mean[t] = aggs[si].series[t] / float64(cfg.Scale.Runs)
		}
		res.Schedulers = append(res.Schedulers, SchedulerSummary{
			Name:          sched.Name(),
			Final:         aggs[si].finals.Summarize(),
			MeanSeries:    mean,
			DroppedFiles:  aggs[si].dropped,
			DroppedVolume: aggs[si].dropVol,
			Elapsed:       aggs[si].elapsed,
			Solver:        aggs[si].solver,
		})
	}
	return res, nil
}

// Table renders the figure's data as an aligned text table: one row per
// scheduler with the mean cost per interval and its 95% confidence
// interval, matching what the paper plots as bars with error bars.
func (r *FigureResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d (%s): capacity %g GB/slot, max T %d, %d DCs, %d slots, %d runs\n",
		r.Setting.Figure, r.Setting.Name, r.Setting.Capacity, r.Setting.MaxT,
		r.Scale.DCs, r.Scale.Slots, r.Scale.Runs)
	fmt.Fprintf(&b, "%-16s %14s %14s %10s %12s\n",
		"scheduler", "avg cost/slot", "95% CI ±", "dropped", "solve time")
	for _, s := range r.Schedulers {
		fmt.Fprintf(&b, "%-16s %14.2f %14.2f %10d %12s\n",
			s.Name, s.Final.Mean, s.Final.CI95Half, s.DroppedFiles, s.Elapsed.Round(10*time.Millisecond))
	}
	return b.String()
}

// SolverTable renders the aggregated LP solver counters for every
// scheduler that performed instrumented solves (Solver.Solves > 0), one row
// per scheduler: solve count, warm-start acceptance, graph skeleton reuses,
// simplex iterations with the phase-1 share, the columns/rows the presolve
// pass removed, basis-solve telemetry, and the model-sparsity counters —
// pruned% (share of the unpruned variable universe removed by deadline
// reachability), cg-rnds (column-generation rounds) and gen% (share of the
// delayed universe actually materialized; 100% means generation is not
// restricting anything). It returns the empty string when no scheduler
// reported solver work, so plain (cold) runs render exactly as before.
func (r *FigureResult) SolverTable() string {
	anyLP, anyPath, anyAdm, anyBackend := false, false, false, false
	for _, s := range r.Schedulers {
		if s.Solver.Solves > 0 {
			anyLP = true
		}
		if s.Solver.PathSolves > 0 {
			anyPath = true
		}
		if s.Solver.Admits+s.Solver.Rejects > 0 {
			anyAdm = true
		}
		if s.Solver.ParallelScans+s.Solver.SpecFtrans > 0 {
			anyBackend = true
		}
	}
	if !anyLP {
		return r.admissionTable(anyAdm)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "LP solver work (fig %d):\n", r.Setting.Figure)
	fmt.Fprintf(&b, "%-16s %8s %8s %8s %10s %10s %10s %10s %8s %8s %8s %8s %8s %8s %8s\n",
		"scheduler", "solves", "warm", "reuses", "iters", "phase1", "pre-cols", "pre-rows",
		"sparse%", "density", "dvx-rst", "d-recmp", "pruned%", "cg-rnds", "gen%")
	for _, s := range r.Schedulers {
		if s.Solver.Solves == 0 {
			continue
		}
		st := s.Solver
		hit, density := 0.0, 0.0
		if n := st.SparseSolves + st.DenseSolves; n > 0 {
			hit = 100 * float64(st.SparseSolves) / float64(n)
		}
		if st.SolveDim > 0 {
			density = float64(st.SolveNNZ) / float64(st.SolveDim)
		}
		pruned, gen := 0.0, 0.0
		if u := st.VarUniverse + st.PrunedVars; u > 0 {
			pruned = 100 * float64(st.PrunedVars) / float64(u)
		}
		if st.ColGenUniverse > 0 {
			gen = 100 * float64(st.ColGenColumns) / float64(st.ColGenUniverse)
		}
		fmt.Fprintf(&b, "%-16s %8d %8d %8d %10d %10d %10d %10d %7.1f%% %8.3f %8d %8d %7.1f%% %8d %7.1f%%\n",
			s.Name, st.Solves, st.WarmSolves, st.GraphReuses,
			st.Iterations, st.Phase1Iter, st.PresolveCols, st.PresolveRows,
			hit, density, st.DevexResets, st.DualRecomputes,
			pruned, st.ColGenRounds, gen)
	}
	return b.String() + r.backendTable(anyBackend) + r.pathTable(anyPath) + r.admissionTable(anyAdm)
}

// backendTable renders the LP compute-backend counters for every scheduler
// that did parallel backend work (ParallelScans + SpecFtrans > 0), one row
// per scheduler: devex pricing scans, the share that fanned out across the
// worker pool, the speculative FTRANs issued for top-k priced candidates,
// and the share that the next iteration actually consumed. It deliberately
// omits the worker count — every counter here is worker-count-independent,
// and the table must be too, so per-worker-count outputs stay byte
// identical. It returns the empty string under the serial backend (which
// never moves these counters), so pre-backend runs render exactly as before.
func (r *FigureResult) backendTable(anyBackend bool) string {
	if !anyBackend {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "LP backend (fig %d):\n", r.Setting.Figure)
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %8s\n",
		"scheduler", "scans", "par-scan%", "spec-ftran", "hit%")
	for _, s := range r.Schedulers {
		st := s.Solver
		if st.ParallelScans+st.SpecFtrans == 0 {
			continue
		}
		parFrac, hitRate := 0.0, 0.0
		if st.DevexScans > 0 {
			parFrac = 100 * float64(st.ParallelScans) / float64(st.DevexScans)
		}
		if st.SpecFtrans > 0 {
			hitRate = 100 * float64(st.SpecFtranHits) / float64(st.SpecFtrans)
		}
		fmt.Fprintf(&b, "%-16s %10d %9.1f%% %10d %7.1f%%\n",
			s.Name, st.DevexScans, parFrac, st.SpecFtrans, hitRate)
	}
	return b.String()
}

// pathTable renders the Dantzig–Wolfe path-pricing counters for every
// scheduler that ran the path master (Solver.PathSolves > 0), one row per
// scheduler: path solves, arc-model fallbacks (slots where positive
// artificials sent the verdict back to the arc formulation), the lazy
// cap/charge rows the pricing rounds materialized, and the columns the warm
// solver recycled from earlier slots' optimal bases. It returns the empty
// string when no scheduler used path pricing, so arc-mode runs render
// exactly as before.
func (r *FigureResult) pathTable(anyPath bool) string {
	if !anyPath {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "path pricing (fig %d):\n", r.Setting.Figure)
	fmt.Fprintf(&b, "%-16s %10s %10s %10s %10s\n",
		"scheduler", "solves", "fallbacks", "lazy-rows", "recycled")
	for _, s := range r.Schedulers {
		st := s.Solver
		if st.PathSolves == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-16s %10d %10d %10d %10d\n",
			s.Name, st.PathSolves, st.PathFallbacks, st.ColGenRows, st.PathRecycled)
	}
	return b.String()
}

// admissionTable renders the admission fast-tier counters for every
// scheduler that made fast-path decisions (Admits + Rejects > 0), one row
// per scheduler: decisions, background republishes, the provisional
// cost-per-slot the fast tier committed, and the cost the re-optimizer
// shaved off it. It returns the empty string when no scheduler made
// fast-path decisions, so pure LP runs render exactly as before.
func (r *FigureResult) admissionTable(anyAdm bool) string {
	if !anyAdm {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "admission fast tier (fig %d):\n", r.Setting.Figure)
	fmt.Fprintf(&b, "%-18s %8s %8s %10s %12s %12s\n",
		"scheduler", "admits", "rejects", "republish", "fast-cost", "repub-save")
	for _, s := range r.Schedulers {
		st := s.Solver
		if st.Admits+st.Rejects == 0 {
			continue
		}
		fmt.Fprintf(&b, "%-18s %8d %8d %10d %12.2f %12.2f\n",
			s.Name, st.Admits, st.Rejects, st.Republishes, st.FastCost, st.RepublishDelta)
	}
	return b.String()
}

// SeriesCSV renders the mean cost-per-slot time series as CSV with one
// column per scheduler, for external plotting.
func (r *FigureResult) SeriesCSV() string {
	var b strings.Builder
	b.WriteString("slot")
	for _, s := range r.Schedulers {
		fmt.Fprintf(&b, ",%s", s.Name)
	}
	b.WriteByte('\n')
	for t := 0; t < r.Scale.Slots; t++ {
		fmt.Fprintf(&b, "%d", t)
		for _, s := range r.Schedulers {
			fmt.Fprintf(&b, ",%.3f", s.MeanSeries[t])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
