package sim

import (
	"math"
	"testing"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/workload"
)

// TestPrunedMatchesFullObjectiveCIScale is the sparse-construction
// correctness gate: at every slot of CI-scale online runs of Figs 4-7, the
// default solver — deadline-reachability pruning plus delayed column
// generation — must report the same LP status and the same optimal
// objective as the fully materialized, unpruned model of the identical
// ledger state, up to the Epsilon tie-breaking term. (Both switches are
// lossless by construction: pruned variables can never carry feasible flow,
// and generation terminates only when the restricted master's duals price
// every delayed column unattractive.) The two solvers may commit different
// vertices of the same optimal face, so the comparison happens on a shared
// ledger before each commit, with the sparse plan applied. Figs 4 and 6 run
// all CI-scale runs; the heavier tolerant settings 5 and 7 run one.
func TestPrunedMatchesFullObjectiveCIScale(t *testing.T) {
	full := &core.Config{DisableColGen: true, DisablePruning: true}
	for _, figure := range []int{4, 5, 6, 7} {
		setting, err := netmodel.SettingByFigure(figure)
		if err != nil {
			t.Fatal(err)
		}
		scale := CIScale()
		if figure == 5 || figure == 7 {
			if testing.Short() {
				continue
			}
			scale.Runs = 1
		}
		cfg := FigureConfig{Setting: setting, Scale: scale}
		for run := 0; run < cfg.Scale.Runs; run++ {
			trace, err := recordTrace(&cfg, run)
			if err != nil {
				t.Fatal(err)
			}
			seed := cfg.Scale.Seed + int64(run)*7919
			nw, err := netmodel.Complete(cfg.Scale.DCs, workload.UniformPrices(seed), setting.Capacity)
			if err != nil {
				t.Fatal(err)
			}
			ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(cfg.Scale.Slots))
			if err != nil {
				t.Fatal(err)
			}
			gen := trace.Replay()
			generated := 0
			for slot := 0; slot < cfg.Scale.Slots; slot++ {
				remaining := gen.FilesAt(slot)
				for {
					dense, err := core.Solve(ledger, remaining, slot, full)
					if err != nil {
						t.Fatalf("fig %d run %d slot %d: full model: %v", figure, run, slot, err)
					}
					sparse, err := core.Solve(ledger, remaining, slot, nil)
					if err != nil {
						t.Fatalf("fig %d run %d slot %d: sparse model: %v", figure, run, slot, err)
					}
					if sparse.Status != dense.Status {
						t.Fatalf("fig %d run %d slot %d: sparse status %v, full %v",
							figure, run, slot, sparse.Status, dense.Status)
					}
					if sparse.VarUniverse+sparse.PrunedVars != dense.VarUniverse {
						t.Errorf("fig %d run %d slot %d: pruned universe %d + pruned %d != full universe %d",
							figure, run, slot, sparse.VarUniverse, sparse.PrunedVars, dense.VarUniverse)
					}
					generated += sparse.ColGenColumns
					if dense.Status == lp.Optimal {
						tol := 1e-3 * (1 + math.Abs(dense.CostPerSlot))
						if math.Abs(sparse.CostPerSlot-dense.CostPerSlot) > tol {
							t.Errorf("fig %d run %d slot %d: sparse objective %v, full %v",
								figure, run, slot, sparse.CostPerSlot, dense.CostPerSlot)
						}
						if err := sparse.Schedule.Apply(ledger); err != nil {
							t.Fatalf("fig %d run %d slot %d: committing sparse plan: %v", figure, run, slot, err)
						}
						break
					}
					// Infeasible slot: shed exactly as the engine does and
					// compare the retry too.
					if len(remaining) == 0 {
						t.Fatalf("fig %d run %d slot %d: infeasible with no files", figure, run, slot)
					}
					shed := shedOrder(remaining)[0]
					next := remaining[:0:0]
					for _, f := range remaining {
						if f.ID != shed.ID {
							next = append(next, f)
						}
					}
					remaining = next
				}
			}
			if generated == 0 {
				t.Errorf("fig %d run %d: column generation never materialized a column", figure, run)
			}
		}
	}
}
