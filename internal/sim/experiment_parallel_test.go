package sim

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
)

// runFigureAt runs one figure at the CI scale with the given worker count.
func runFigureAt(t *testing.T, workers int) *FigureResult {
	t.Helper()
	setting, err := netmodel.SettingByFigure(6)
	if err != nil {
		t.Fatal(err)
	}
	scale := CIScale()
	scale.Workers = workers
	res, err := RunFigure(FigureConfig{
		Setting:    setting,
		Scale:      scale,
		Schedulers: []Scheduler{&Postcard{}, &Flow{Variant: FlowLP}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunFigureParallelMatchesSequential is the driver's determinism
// guarantee: at CI scale, Workers: 8 and Workers: 1 must produce
// byte-identical aggregates — final-cost summaries, mean cost series, and
// drop counts. Only Elapsed (wall clock) may differ.
func TestRunFigureParallelMatchesSequential(t *testing.T) {
	seq := runFigureAt(t, 1)
	par := runFigureAt(t, 8)
	if len(seq.Schedulers) != len(par.Schedulers) {
		t.Fatalf("scheduler count %d vs %d", len(seq.Schedulers), len(par.Schedulers))
	}
	for i := range seq.Schedulers {
		s, p := seq.Schedulers[i], par.Schedulers[i]
		if s.Name != p.Name {
			t.Fatalf("scheduler %d: name %q vs %q", i, s.Name, p.Name)
		}
		// stats.Summary holds only comparable scalars; == is bitwise
		// equality of every float, which is exactly the guarantee.
		if s.Final != p.Final {
			t.Errorf("%s: final summary diverged:\nsequential %+v\nparallel   %+v", s.Name, s.Final, p.Final)
		}
		if len(s.MeanSeries) != len(p.MeanSeries) {
			t.Fatalf("%s: series length %d vs %d", s.Name, len(s.MeanSeries), len(p.MeanSeries))
		}
		for tt := range s.MeanSeries {
			if s.MeanSeries[tt] != p.MeanSeries[tt] {
				t.Errorf("%s: mean series diverged at slot %d: %v vs %v",
					s.Name, tt, s.MeanSeries[tt], p.MeanSeries[tt])
			}
		}
		if s.DroppedFiles != p.DroppedFiles || s.DroppedVolume != p.DroppedVolume {
			t.Errorf("%s: drops diverged: (%d, %v) vs (%d, %v)",
				s.Name, s.DroppedFiles, s.DroppedVolume, p.DroppedFiles, p.DroppedVolume)
		}
	}
	// The rendered artifacts must agree too (they exclude solve time).
	if seq.SeriesCSV() != par.SeriesCSV() {
		t.Error("SeriesCSV diverged between sequential and parallel runs")
	}
}

// TestRunFigureManyWorkersRace is a small, -race-targeted stress: many
// workers on a tight cell grid, with a progress callback that appends to a
// shared slice (legal because progress must be serialized by the driver).
func TestRunFigureManyWorkersRace(t *testing.T) {
	setting := netmodel.EvalSetting{Name: "race", Figure: 6, Capacity: 30, MaxT: 3}
	var lines []string
	res, err := RunFigure(FigureConfig{
		Setting: setting,
		Scale: Scale{
			Name: "race", DCs: 5, Slots: 4, Runs: 4,
			FilesMin: 1, FilesMax: 3, SizeMinGB: 10, SizeMaxGB: 60, Seed: 99,
			Workers: 16,
		},
		Schedulers: []Scheduler{&Postcard{}, &Flow{Variant: FlowLP}},
		Progress: func(format string, args ...any) {
			lines = append(lines, fmt.Sprintf(format, args...))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(lines); got != 8 {
		t.Errorf("progress lines = %d, want 8 (one per cell)", got)
	}
	for _, s := range res.Schedulers {
		if s.Final.N != 4 {
			t.Errorf("%s: %d runs aggregated, want 4", s.Name, s.Final.N)
		}
	}
}

// notCloneable is a Scheduler without CloneScheduler; it also counts its
// invocations so the fallback path can be observed to run it sequentially.
type notCloneable struct {
	mu    sync.Mutex
	calls int
	inner Postcard
}

func (n *notCloneable) Name() string { return "not-cloneable" }

func (n *notCloneable) Schedule(ledger *netmodel.Ledger, files []netmodel.File, slot int) (*schedule.Schedule, error) {
	n.mu.Lock()
	n.calls++
	n.mu.Unlock()
	return n.inner.Schedule(ledger, files, slot)
}

// TestRunFigureNonCloneableFallsBackSequential: a scheduler that cannot be
// cloned must force sequential execution (no shared-state hazard), and the
// experiment must still complete with the caller's instance.
func TestRunFigureNonCloneableFallsBackSequential(t *testing.T) {
	setting := netmodel.EvalSetting{Name: "fallback", Figure: 6, Capacity: 30, MaxT: 3}
	cfg := FigureConfig{
		Setting: setting,
		Scale: Scale{
			Name: "fallback", DCs: 4, Slots: 3, Runs: 2,
			FilesMin: 1, FilesMax: 2, SizeMinGB: 10, SizeMaxGB: 40, Seed: 7,
			Workers: 8,
		},
		Schedulers: []Scheduler{&notCloneable{}, &Postcard{}},
	}
	if got := cfg.effectiveWorkers(4); got != 1 {
		t.Fatalf("effectiveWorkers = %d with a non-cloneable scheduler, want 1", got)
	}
	res, err := RunFigure(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nc := cfg.Schedulers[0].(*notCloneable)
	if nc.calls == 0 {
		t.Error("non-cloneable scheduler instance was never invoked")
	}
	if res.Schedulers[0].Name != "not-cloneable" {
		t.Errorf("summary name %q", res.Schedulers[0].Name)
	}
}

// TestEffectiveWorkersBounds pins the worker-resolution rules.
func TestEffectiveWorkersBounds(t *testing.T) {
	cfg := FigureConfig{Schedulers: DefaultSchedulers()}
	cases := []struct {
		workers, cells, want int
	}{
		{0, 10, 1}, // unset -> sequential
		{1, 10, 1}, // explicit sequential
		{4, 10, 4}, // plain
		{16, 6, 6}, // capped at the cell count
		{16, 1, 1}, // single cell
	}
	for _, tc := range cases {
		cfg.Scale.Workers = tc.workers
		if got := cfg.effectiveWorkers(tc.cells); got != tc.want {
			t.Errorf("effectiveWorkers(workers=%d, cells=%d) = %d, want %d",
				tc.workers, tc.cells, got, tc.want)
		}
	}
}

// TestSchedulerClonesAreIndependent: clones must not share Config or LP
// option pointers with the original (the whole point of cloning).
func TestSchedulerClonesAreIndependent(t *testing.T) {
	pc := &Postcard{
		Label:  "pc",
		Config: &core.Config{Epsilon: 1e-5, LP: &lp.Options{MaxIterations: 123}},
	}
	cl := pc.CloneScheduler().(*Postcard)
	if cl.Name() != "pc" {
		t.Errorf("clone name %q", cl.Name())
	}
	if cl.Config == pc.Config || cl.Config.LP == pc.Config.LP {
		t.Error("postcard clone shares Config or LP pointers with the original")
	}
	if cl.Config.Epsilon != 1e-5 || cl.Config.LP.MaxIterations != 123 {
		t.Errorf("postcard clone config not copied: %+v", cl.Config)
	}

	fl := &Flow{Variant: FlowTwoPhase}
	fcl := fl.CloneScheduler().(*Flow)
	if fcl.Variant != FlowTwoPhase || fcl.Config != nil {
		t.Errorf("flow clone mismatch: %+v", fcl)
	}

	// Every built-in scheduler must be cloneable, or parallel experiment
	// runs silently degrade to sequential.
	for _, s := range DefaultSchedulers() {
		if _, ok := s.(CloneableScheduler); !ok {
			t.Errorf("default scheduler %s is not CloneableScheduler", s.Name())
		}
	}
}

// TestScaleValidatesWorkers: negative worker counts must be rejected.
func TestScaleValidatesWorkers(t *testing.T) {
	s := CIScale()
	s.Workers = -1
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "worker") {
		t.Errorf("Validate() = %v, want negative-workers error", err)
	}
	s.Workers = 8
	if err := s.Validate(); err != nil {
		t.Errorf("Validate() = %v for Workers 8", err)
	}
}
