// Package sim runs the paper's online time-slotted simulation: at every
// slot, newly generated files are handed to a scheduler, which commits a
// routing-and-scheduling plan to a shared charging ledger. The package
// provides the scheduler adapters for Postcard and every baseline, the
// per-run engine, and the multi-run experiment driver that regenerates the
// evaluation figures (Sec. VII).
package sim

import (
	"errors"
	"fmt"
	"sort"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/flowbased"
	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
)

// ErrInfeasible marks demand that cannot be scheduled under the residual
// capacities. The engine reacts by shedding files (see Run).
var ErrInfeasible = errors.New("sim: demand infeasible under residual capacity")

// Scheduler decides, at one slot, how the newly generated files are routed
// and scheduled given everything already committed in the ledger. The
// returned schedule must not have been applied to the ledger yet.
type Scheduler interface {
	// Name identifies the scheduler in experiment output.
	Name() string
	// Schedule plans the given files at slot. Implementations must wrap
	// ErrInfeasible when the demand cannot fit.
	Schedule(ledger *netmodel.Ledger, files []netmodel.File, slot int) (*schedule.Schedule, error)
}

// CloneableScheduler is implemented by schedulers that can produce an
// independent copy of themselves. The parallel experiment driver clones
// one scheduler instance per (run, scheduler) cell so no two goroutines
// ever share scheduler state; schedulers that do not implement it force
// RunFigure to fall back to sequential execution (see RunFigure).
type CloneableScheduler interface {
	Scheduler
	// CloneScheduler returns a scheduler equivalent to the receiver that
	// shares no mutable state with it.
	CloneScheduler() Scheduler
}

// SolverStatsReporter is implemented by schedulers that track cumulative LP
// solver work. The engine snapshots the counters around each run and stores
// the difference in RunStats.Solver; the experiment driver then sums the
// per-run deltas in fixed order, so the aggregated figures stay bit
// identical for any worker count.
type SolverStatsReporter interface {
	// SolverStats returns the cumulative counters since the scheduler was
	// created.
	SolverStats() core.SolveStats
}

// Postcard is the Scheduler adapter for the paper's optimizer.
type Postcard struct {
	// Config tunes the optimizer; nil selects defaults.
	Config *core.Config
	// Label overrides Name; defaults to "postcard" ("postcard-warm" when
	// WarmStart is set).
	Label string
	// WarmStart enables the incremental core.Solver: consecutive slots
	// reuse the time-expanded graph skeleton and warm-start each LP from
	// the previous slot's basis (with the LP presolve pass enabled). Costs
	// match the cold path up to the optimizer's Epsilon tie-breaking term;
	// see core.Solver.
	WarmStart bool

	solver *core.Solver    // lazily created when WarmStart is set
	stats  core.SolveStats // cold-path counters (WarmStart uses solver.Stats)
}

// Name implements Scheduler.
func (p *Postcard) Name() string {
	if p.Label != "" {
		return p.Label
	}
	if p.WarmStart {
		return "postcard-warm"
	}
	return "postcard"
}

// CloneScheduler implements CloneableScheduler: the copy deep-copies the
// optimizer configuration (including LP options) so concurrent cells can
// never observe each other through a shared Config pointer. The clone
// starts with a fresh (empty) solver cache; since core.Solver resets itself
// whenever the network changes identity — and every simulation cell builds
// its own network — a cloned warm scheduler produces bit-identical runs to
// a sequentially reused one.
func (p *Postcard) CloneScheduler() Scheduler {
	out := &Postcard{Label: p.Label, WarmStart: p.WarmStart}
	if p.Config != nil {
		cfg := *p.Config
		if p.Config.LP != nil {
			lpOpts := *p.Config.LP
			cfg.LP = &lpOpts
		}
		out.Config = &cfg
	}
	return out
}

// Schedule implements Scheduler.
func (p *Postcard) Schedule(ledger *netmodel.Ledger, files []netmodel.File, slot int) (*schedule.Schedule, error) {
	var (
		res *core.Result
		err error
	)
	if p.WarmStart {
		if p.solver == nil {
			p.solver = core.NewSolver(p.Config)
		}
		res, err = p.solver.Solve(ledger, files, slot)
	} else {
		res, err = core.Solve(ledger, files, slot, p.Config)
		if err == nil && len(files) > 0 {
			p.stats.Solves++
			p.stats.Iterations += res.Iterations
			p.stats.Phase1Iter += res.Phase1Iter
			p.stats.PresolveCols += res.PresolveCols
			p.stats.PresolveRows += res.PresolveRows
			p.stats.SparseSolves += res.SparseSolves
			p.stats.DenseSolves += res.DenseSolves
			p.stats.SolveNNZ += res.SolveNNZ
			p.stats.SolveDim += res.SolveDim
			p.stats.DevexResets += res.DevexResets
			p.stats.DualRecomputes += res.DualRecomputes
			p.stats.VarUniverse += res.VarUniverse
			p.stats.PrunedVars += res.PrunedVars
			p.stats.PrunedRows += res.PrunedRows
			p.stats.ColGenRounds += res.ColGenRounds
			p.stats.ColGenColumns += res.ColGenColumns
			p.stats.ColGenRows += res.ColGenRows
			p.stats.ColGenUniverse += res.ColGenUniverse
			p.stats.PathFallbacks += res.PathFallbacks
			p.stats.PathRecycled += res.PathRecycled
			p.stats.DevexScans += res.DevexScans
			p.stats.ParallelScans += res.ParallelScans
			p.stats.SpecFtrans += res.SpecFtrans
			p.stats.SpecFtranHits += res.SpecFtranHits
			if res.BackendWorkers > p.stats.BackendWorkers {
				p.stats.BackendWorkers = res.BackendWorkers
			}
			if p.Config != nil && p.Config.Pricing == core.PricingPath {
				p.stats.PathSolves++
			}
		}
	}
	if err != nil {
		var ue *core.UnroutableError
		if errors.As(err, &ue) {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return nil, err
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("%w: postcard LP status %v", ErrInfeasible, res.Status)
	}
	return res.Schedule, nil
}

// SolverStats implements SolverStatsReporter. With WarmStart the counters
// are the incremental core.Solver's; otherwise the adapter counts its cold
// solves directly (WarmSolves and GraphReuses stay zero by construction),
// so cold-versus-warm iteration totals are comparable through one surface.
func (p *Postcard) SolverStats() core.SolveStats {
	if p.solver != nil {
		return p.solver.Stats()
	}
	return p.stats
}

// FlowVariant selects a flow-based baseline implementation.
type FlowVariant int

// Flow-based scheduler variants.
const (
	// FlowLP is the optimal single-LP flow model (used in the figures).
	FlowLP FlowVariant = iota + 1
	// FlowTwoPhase is the paper's literal two-phase decomposition.
	FlowTwoPhase
	// FlowGreedy is the cheapest-available-path heuristic.
	FlowGreedy
	// FlowDirect sends every file on its direct link (no routing at all).
	FlowDirect
)

// String names the variant.
func (v FlowVariant) String() string {
	switch v {
	case FlowLP:
		return "flow-based"
	case FlowTwoPhase:
		return "flow-two-phase"
	case FlowGreedy:
		return "flow-greedy"
	case FlowDirect:
		return "direct"
	default:
		return fmt.Sprintf("FlowVariant(%d)", int(v))
	}
}

// Flow is the Scheduler adapter for the flow-based baselines.
type Flow struct {
	Variant FlowVariant
	// Config tunes the LP-based variants; nil selects defaults.
	Config *flowbased.Config
}

// Name implements Scheduler.
func (f *Flow) Name() string { return f.Variant.String() }

// CloneScheduler implements CloneableScheduler; see Postcard.CloneScheduler.
func (f *Flow) CloneScheduler() Scheduler {
	out := &Flow{Variant: f.Variant}
	if f.Config != nil {
		cfg := *f.Config
		if f.Config.LP != nil {
			lpOpts := *f.Config.LP
			cfg.LP = &lpOpts
		}
		out.Config = &cfg
	}
	return out
}

// Schedule implements Scheduler.
func (f *Flow) Schedule(ledger *netmodel.Ledger, files []netmodel.File, slot int) (*schedule.Schedule, error) {
	var (
		res *flowbased.Result
		err error
	)
	switch f.Variant {
	case FlowLP:
		res, err = flowbased.Solve(ledger, files, slot, f.Config)
	case FlowTwoPhase:
		res, err = flowbased.SolveTwoPhase(ledger, files, slot, f.Config)
	case FlowGreedy:
		res, err = flowbased.SolveGreedy(ledger, files, slot)
	case FlowDirect:
		res, err = flowbased.Direct(ledger, files, slot)
	default:
		return nil, fmt.Errorf("sim: unknown flow variant %d", int(f.Variant))
	}
	if err != nil {
		var ue *flowbased.UnroutedError
		if errors.As(err, &ue) {
			return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
		}
		return nil, err
	}
	if res.Status != lp.Optimal {
		return nil, fmt.Errorf("%w: %s LP status %v", ErrInfeasible, f.Name(), res.Status)
	}
	return res.Schedule, nil
}

// shedOrder returns files sorted by descending desired rate, the order in
// which the engine sheds demand when a slot is infeasible: the most
// bandwidth-hungry file is dropped first.
func shedOrder(files []netmodel.File) []netmodel.File {
	out := make([]netmodel.File, len(files))
	copy(out, files)
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].DesiredRate(), out[j].DesiredRate()
		if ri != rj {
			return ri > rj
		}
		return out[i].ID < out[j].ID
	})
	return out
}
