package sim

import (
	"math"
	"strings"
	"testing"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/workload"
)

// warmColdFigure runs one CI-scale figure with the cold and warm Postcard
// schedulers side by side on identical traces.
func warmColdFigure(t *testing.T, figure, workers int) *FigureResult {
	t.Helper()
	setting, err := netmodel.SettingByFigure(figure)
	if err != nil {
		t.Fatal(err)
	}
	scale := CIScale()
	scale.Workers = workers
	res, err := RunFigure(FigureConfig{
		Setting:    setting,
		Scale:      scale,
		Schedulers: []Scheduler{&Postcard{}, &Postcard{WarmStart: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWarmMatchesColdObjectiveCIScale is the tentpole's correctness gate: at
// every slot of a CI-scale Fig 4 (ample capacity) and Fig 6 (limited
// capacity) online run, the warm-started incremental solver must report the
// same LP status and the same optimal objective as a cold solve of the
// identical ledger state, up to the Epsilon tie-breaking term. (The two may
// commit different vertices of the same optimal face, so trajectories — not
// objectives — are allowed to drift; the comparison therefore happens on a
// shared ledger before each commit, with the warm plan applied.)
func TestWarmMatchesColdObjectiveCIScale(t *testing.T) {
	for _, figure := range []int{4, 6} {
		setting, err := netmodel.SettingByFigure(figure)
		if err != nil {
			t.Fatal(err)
		}
		cfg := FigureConfig{Setting: setting, Scale: CIScale()}
		for run := 0; run < cfg.Scale.Runs; run++ {
			trace, err := recordTrace(&cfg, run)
			if err != nil {
				t.Fatal(err)
			}
			seed := cfg.Scale.Seed + int64(run)*7919
			nw, err := netmodel.Complete(cfg.Scale.DCs, workload.UniformPrices(seed), setting.Capacity)
			if err != nil {
				t.Fatal(err)
			}
			ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(cfg.Scale.Slots))
			if err != nil {
				t.Fatal(err)
			}
			solver := core.NewSolver(nil)
			gen := trace.Replay()
			for slot := 0; slot < cfg.Scale.Slots; slot++ {
				remaining := gen.FilesAt(slot)
				for {
					cold, err := core.Solve(ledger, remaining, slot, nil)
					if err != nil {
						t.Fatalf("fig %d run %d slot %d: cold: %v", figure, run, slot, err)
					}
					warm, err := solver.Solve(ledger, remaining, slot)
					if err != nil {
						t.Fatalf("fig %d run %d slot %d: warm: %v", figure, run, slot, err)
					}
					if warm.Status != cold.Status {
						t.Fatalf("fig %d run %d slot %d: warm status %v, cold %v",
							figure, run, slot, warm.Status, cold.Status)
					}
					if cold.Status == lp.Optimal {
						tol := 1e-3 * (1 + math.Abs(cold.CostPerSlot))
						if math.Abs(warm.CostPerSlot-cold.CostPerSlot) > tol {
							t.Errorf("fig %d run %d slot %d: warm objective %v, cold %v",
								figure, run, slot, warm.CostPerSlot, cold.CostPerSlot)
						}
						if err := warm.Schedule.Apply(ledger); err != nil {
							t.Fatalf("fig %d run %d slot %d: committing warm plan: %v", figure, run, slot, err)
						}
						break
					}
					// Infeasible slot: shed exactly as the engine does and
					// compare the retry too.
					if len(remaining) == 0 {
						t.Fatalf("fig %d run %d slot %d: infeasible with no files", figure, run, slot)
					}
					shed := shedOrder(remaining)[0]
					next := remaining[:0:0]
					for _, f := range remaining {
						if f.ID != shed.ID {
							next = append(next, f)
						}
					}
					remaining = next
				}
			}
			st := solver.Stats()
			if st.Solves == 0 {
				t.Fatalf("fig %d run %d: warm solver reported no solves", figure, run)
			}
			if st.WarmSolves < st.Solves/2 {
				t.Errorf("fig %d run %d: only %d of %d solves warm-started", figure, run, st.WarmSolves, st.Solves)
			}
			if st.GraphReuses == 0 {
				t.Errorf("fig %d run %d: graph skeleton never reused", figure, run)
			}
		}
	}
}

// TestWarmParallelMatchesSequential extends the driver's determinism
// guarantee to the stateful warm scheduler: Workers 8 and Workers 1 must
// agree bit-for-bit on aggregates AND on the summed solver counters, because
// every cell clones a fresh solver cache and the per-run deltas are reduced
// in fixed order.
func TestWarmParallelMatchesSequential(t *testing.T) {
	seq := warmColdFigure(t, 6, 1)
	par := warmColdFigure(t, 6, 8)
	for i := range seq.Schedulers {
		s, p := seq.Schedulers[i], par.Schedulers[i]
		if s.Name != p.Name {
			t.Fatalf("scheduler %d: name %q vs %q", i, s.Name, p.Name)
		}
		if s.Final != p.Final {
			t.Errorf("%s: final summary diverged:\nsequential %+v\nparallel   %+v", s.Name, s.Final, p.Final)
		}
		for tt := range s.MeanSeries {
			if s.MeanSeries[tt] != p.MeanSeries[tt] {
				t.Errorf("%s: mean series diverged at slot %d: %v vs %v",
					s.Name, tt, s.MeanSeries[tt], p.MeanSeries[tt])
			}
		}
		if s.Solver != p.Solver {
			t.Errorf("%s: solver counters diverged:\nsequential %+v\nparallel   %+v", s.Name, s.Solver, p.Solver)
		}
	}
	if seq.SeriesCSV() != par.SeriesCSV() {
		t.Error("SeriesCSV diverged between sequential and parallel warm runs")
	}
}

// TestRunStatsSolverDelta pins the engine's snapshot semantics: RunStats.
// Solver is the work of that run alone, so driving the same warm scheduler
// instance through two consecutive runs yields two comparable deltas whose
// sum equals the scheduler's cumulative counters — not two nested cumulative
// snapshots.
func TestRunStatsSolverDelta(t *testing.T) {
	sched := &Postcard{WarmStart: true}
	setting, err := netmodel.SettingByFigure(4)
	if err != nil {
		t.Fatal(err)
	}
	scale := CIScale()
	cfg := FigureConfig{Setting: setting, Scale: scale}
	var runs []*RunStats
	for run := 0; run < 2; run++ {
		trace, err := recordTrace(&cfg, run)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := runCell(&cfg, run, sched, trace)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, rs)
	}
	if runs[0].Solver.Solves == 0 || runs[1].Solver.Solves == 0 {
		t.Fatalf("runs reported no solver work: %+v, %+v", runs[0].Solver, runs[1].Solver)
	}
	sum := runs[0].Solver.Add(runs[1].Solver)
	if got := sched.SolverStats(); got != sum {
		t.Errorf("per-run deltas do not sum to the cumulative counters:\nsum        %+v\ncumulative %+v", sum, got)
	}
}

// TestSolverTableRendering checks the instrumentation surface: the table
// lists exactly the schedulers that performed instrumented solves (both
// Postcard adapters, cold and warm), and is empty — preserving the
// historical byte-stable output — when no scheduler reports solver work.
func TestSolverTableRendering(t *testing.T) {
	res := warmColdFigure(t, 6, 2)
	table := res.SolverTable()
	if table == "" {
		t.Fatal("SolverTable empty despite instrumented scheduler work")
	}
	if !strings.Contains(table, "postcard-warm") {
		t.Errorf("SolverTable missing warm scheduler:\n%s", table)
	}
	if !strings.Contains(table, "postcard ") {
		t.Errorf("SolverTable missing cold scheduler (it counts its solves too):\n%s", table)
	}
	for i, s := range res.Schedulers {
		if s.Solver.Solves == 0 {
			t.Errorf("scheduler %d (%s) reported no solves", i, s.Name)
		}
	}
	cold, warm := res.Schedulers[0].Solver, res.Schedulers[1].Solver
	if cold.WarmSolves != 0 || cold.GraphReuses != 0 {
		t.Errorf("cold adapter claims warm work: %+v", cold)
	}
	if warm.Iterations >= cold.Iterations {
		t.Errorf("warm starting did not reduce simplex iterations: warm %d, cold %d",
			warm.Iterations, cold.Iterations)
	}

	// A figure with only flow-based schedulers reports no solver work.
	setting, err := netmodel.SettingByFigure(6)
	if err != nil {
		t.Fatal(err)
	}
	scale := CIScale()
	scale.Runs = 1
	flows, err := RunFigure(FigureConfig{
		Setting:    setting,
		Scale:      scale,
		Schedulers: []Scheduler{&Flow{Variant: FlowLP}, &Flow{Variant: FlowDirect}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := flows.SolverTable(); got != "" {
		t.Errorf("SolverTable for uninstrumented schedulers = %q, want empty", got)
	}
}
