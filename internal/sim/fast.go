package sim

import (
	"fmt"

	"github.com/interdc/postcard/internal/admission"
	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
)

// Fast is the Scheduler adapter for the two-tier admission scheduler: each
// file of a slot's batch is admitted (or rejected) by the allocate-on-
// arrival fast path, then the background re-optimizer republishes the
// LP-optimal plan for the batch before it is committed. With NoRepublish
// the provisional fast-tier plans are committed as-is — the pure heuristic
// whose optimality gap TestFastTierGapCIScale pins.
type Fast struct {
	// Config tunes the admission tier; nil selects defaults.
	Config *admission.Config
	// Label overrides Name; defaults to "postcard-fast" ("postcard-fast-only"
	// when NoRepublish is set).
	Label string
	// NoRepublish skips the background LP re-optimization, committing the
	// fast tier's provisional single-path plans unchanged.
	NoRepublish bool

	ledger *netmodel.Ledger // ledger the live controller is bound to
	ctrl   *admission.Controller
	base   core.SolveStats // counters folded in from retired controllers
}

// Name implements Scheduler.
func (p *Fast) Name() string {
	if p.Label != "" {
		return p.Label
	}
	if p.NoRepublish {
		return "postcard-fast-only"
	}
	return "postcard-fast"
}

// CloneScheduler implements CloneableScheduler: the copy deep-copies the
// admission configuration (including the re-optimizer's solver and LP
// options) and starts with a fresh controller, so cloned cells run
// bit-identically to a sequentially reused instance (every run binds a new
// ledger, which retires the previous controller anyway).
func (p *Fast) CloneScheduler() Scheduler {
	out := &Fast{Label: p.Label, NoRepublish: p.NoRepublish}
	if p.Config != nil {
		cfg := *p.Config
		if p.Config.Solver != nil {
			solver := *p.Config.Solver
			if p.Config.Solver.LP != nil {
				lpOpts := *p.Config.Solver.LP
				solver.LP = &lpOpts
			}
			cfg.Solver = &solver
		}
		out.Config = &cfg
	}
	return out
}

// ctrlStats maps the live controller's cumulative admission and LP counters
// into one SolveStats.
func (p *Fast) ctrlStats() core.SolveStats {
	st := p.ctrl.SolverStats()
	adm := p.ctrl.Stats()
	st.Admits = adm.Admits
	st.Rejects = adm.Rejects
	st.Republishes = adm.Republishes
	st.FastCost = adm.FastCost
	st.RepublishDelta = adm.RepublishDelta
	return st
}

// Schedule implements Scheduler: every file is admitted through the fast
// path (any rejection rolls the batch back and reports ErrInfeasible, so
// the engine's shedding policy stays in charge of drops), the batch is
// republished unless NoRepublish, and the final plan is handed back for
// the engine to commit.
func (p *Fast) Schedule(ledger *netmodel.Ledger, files []netmodel.File, slot int) (*schedule.Schedule, error) {
	if p.ctrl == nil || p.ledger != ledger {
		if p.ctrl != nil {
			p.base = p.base.Add(p.ctrlStats())
		}
		ctrl, err := admission.NewController(ledger, p.Config)
		if err != nil {
			return nil, err
		}
		p.ctrl, p.ledger = ctrl, ledger
	}
	for _, f := range files {
		dec, err := p.ctrl.Admit(f, slot)
		if err != nil {
			return nil, err
		}
		if !dec.Admitted {
			if err := p.ctrl.Rollback(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%w: fast tier rejected file %d (%d expansions, exhaustive=%v)",
				ErrInfeasible, f.ID, dec.Expansions, dec.Exhaustive)
		}
	}
	if !p.NoRepublish {
		if err := p.ctrl.Republish(slot); err != nil {
			return nil, err
		}
	}
	plan, _, err := p.ctrl.TakePlan()
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// SolverStats implements SolverStatsReporter: the admission counters of
// every controller this adapter has driven (one per ledger) plus the
// background re-optimizer's LP work, through the same surface the LP
// schedulers report on.
func (p *Fast) SolverStats() core.SolveStats {
	if p.ctrl == nil {
		return p.base
	}
	return p.base.Add(p.ctrlStats())
}
