package sim

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/stats"
)

// fastFigure runs one CI-scale figure with the warm LP reference and both
// fast-tier variants (pure fast path, and fast path with background
// republish) on identical traces.
func fastFigure(t *testing.T, figure, workers int) *FigureResult {
	t.Helper()
	setting, err := netmodel.SettingByFigure(figure)
	if err != nil {
		t.Fatal(err)
	}
	scale := CIScale()
	scale.Workers = workers
	res, err := RunFigure(FigureConfig{
		Setting:    setting,
		Scale:      scale,
		Schedulers: []Scheduler{&Postcard{WarmStart: true}, &Fast{NoRepublish: true}, &Fast{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFastParallelMatchesSequential extends the driver's determinism
// guarantee to the stateful admission scheduler, mirroring
// TestWarmParallelMatchesSequential: Workers 8 and Workers 1 must agree
// bit-for-bit on aggregates AND on the summed admission/solver counters,
// because every cell clones a fresh controller and the per-run deltas are
// reduced in fixed order.
func TestFastParallelMatchesSequential(t *testing.T) {
	seq := fastFigure(t, 6, 1)
	par := fastFigure(t, 6, 8)
	for i := range seq.Schedulers {
		s, p := seq.Schedulers[i], par.Schedulers[i]
		if s.Name != p.Name {
			t.Fatalf("scheduler %d: name %q vs %q", i, s.Name, p.Name)
		}
		if s.Final != p.Final {
			t.Errorf("%s: final summary diverged:\nsequential %+v\nparallel   %+v", s.Name, s.Final, p.Final)
		}
		for tt := range s.MeanSeries {
			if s.MeanSeries[tt] != p.MeanSeries[tt] {
				t.Errorf("%s: mean series diverged at slot %d: %v vs %v",
					s.Name, tt, s.MeanSeries[tt], p.MeanSeries[tt])
			}
		}
		if s.Solver != p.Solver {
			t.Errorf("%s: solver counters diverged:\nsequential %+v\nparallel   %+v", s.Name, s.Solver, p.Solver)
		}
	}
	if seq.SeriesCSV() != par.SeriesCSV() {
		t.Error("SeriesCSV diverged between sequential and parallel fast runs")
	}
	fast := seq.Schedulers[2].Solver
	if fast.Admits == 0 || fast.Republishes == 0 {
		t.Errorf("fast scheduler reported no admission work: %+v", fast)
	}
}

// TestFastMatchesWarmAmple checks the republish contract where it is
// exactly testable: on the ample-capacity regime (fig 4) nothing is shed,
// so the republished fast tier commits the same LP-optimal plans as the
// warm LP scheduler and their final costs coincide.
func TestFastMatchesWarmAmple(t *testing.T) {
	res := fastFigure(t, 4, 4)
	warm, fast := res.Schedulers[0], res.Schedulers[2]
	if fast.DroppedFiles != 0 {
		t.Fatalf("fast tier dropped %d files on ample capacity", fast.DroppedFiles)
	}
	tol := 1e-6 * (1 + math.Abs(warm.Final.Mean))
	if math.Abs(fast.Final.Mean-warm.Final.Mean) > tol {
		t.Errorf("republished fast tier cost %v, warm LP %v", fast.Final.Mean, warm.Final.Mean)
	}
	if fast.Solver.RepublishDelta <= 0 {
		t.Errorf("republish saved nothing: %+v", fast.Solver)
	}
}

// gapTable renders the fast-tier optimality-gap table TestFastTierGapCIScale
// pins: per figure regime, the warm LP reference cost, both fast-tier
// variants' costs, their relative gaps, and the files each dropped (drops
// make raw costs incomparable, so they are part of the pinned surface).
func gapTable(results map[int]*FigureResult, figures []int) string {
	var b strings.Builder
	b.WriteString("fast-tier optimality gap vs warm LP (ci scale)\n")
	fmt.Fprintf(&b, "%-4s %-28s %12s %12s %8s %6s %12s %8s %6s\n",
		"fig", "regime", "lp-cost", "fast-only", "gap%", "drops", "fast+repub", "gap%", "drops")
	for _, fig := range figures {
		r := results[fig]
		lp, only, full := r.Schedulers[0], r.Schedulers[1], r.Schedulers[2]
		gapOnly := 100 * (only.Final.Mean - lp.Final.Mean) / lp.Final.Mean
		gapFull := 100 * (full.Final.Mean - lp.Final.Mean) / lp.Final.Mean
		fmt.Fprintf(&b, "%-4d %-28s %12.2f %12.2f %7.1f%% %6d %12.2f %7.1f%% %6d\n",
			fig, r.Setting.Name, lp.Final.Mean,
			only.Final.Mean, gapOnly, only.DroppedFiles,
			full.Final.Mean, gapFull, full.DroppedFiles)
	}
	return b.String()
}

// TestFastTierGapCIScale pins the fast-tier vs LP objective gap across the
// four figure regimes in a golden table, so a regression in the admission
// heuristic's quality fails CI exactly like the solver goldens do. Every
// quantity in the table is bit-deterministic (fixed seeds, fixed-order
// reduction; TestFastParallelMatchesSequential covers worker independence).
func TestFastTierGapCIScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full four-regime online run in -short mode")
	}
	figures := []int{4, 5, 6, 7}
	results := make(map[int]*FigureResult, len(figures))
	for _, fig := range figures {
		results[fig] = fastFigure(t, fig, 4)
	}
	checkGolden(t, "fast-gap-ci.golden", gapTable(results, figures))

	// Beyond the pinned bytes, assert the qualitative acceptance bounds:
	// with republish the fast tier is LP-matching wherever nothing is shed.
	for _, fig := range figures {
		r := results[fig]
		lp, full := r.Schedulers[0], r.Schedulers[2]
		if full.DroppedFiles == 0 {
			tol := 1e-6 * (1 + lp.Final.Mean)
			if math.Abs(full.Final.Mean-lp.Final.Mean) > tol {
				t.Errorf("fig %d: republished cost %v != LP %v with no drops",
					fig, full.Final.Mean, lp.Final.Mean)
			}
		}
	}
}

// goldenFastResult builds a deterministic FigureResult with admission
// counters, pinning the admission block SolverTable appends.
func goldenFastResult() *FigureResult {
	r := goldenResult()
	r.Schedulers = append(r.Schedulers, SchedulerSummary{
		Name: "postcard-fast",
		Final: stats.Summary{
			N: 3, Mean: 2501.5, StdDev: 120.25, CI95Half: 298.75,
			Min: 2350.125, Max: 2600,
		},
		MeanSeries:   []float64{185.25, 660.5, 1210.75, 1990.5, 2501.5},
		DroppedFiles: 3,
		Elapsed:      345 * time.Millisecond,
		Solver: core.SolveStats{
			Solves: 14, WarmSolves: 11, GraphReuses: 11,
			Iterations: 3980, Phase1Iter: 290,
			Admits: 151, Rejects: 3, Republishes: 14,
			FastCost: 6315.25, RepublishDelta: 8412.5,
		},
	})
	return r
}

// TestAdmissionTableGolden pins the admission fast-tier block of
// SolverTable byte-for-byte. The LP-only schedulers report no admission
// decisions, so the golden also pins that they are skipped — and the
// existing figure6-solver.golden separately pins that pure LP runs render
// exactly as before the admission tier existed.
func TestAdmissionTableGolden(t *testing.T) {
	checkGolden(t, "figure6-admission.golden", goldenFastResult().SolverTable())
}
