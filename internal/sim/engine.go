package sim

import (
	"errors"
	"fmt"
	"time"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/workload"
)

// RunStats summarizes one simulation run of a single scheduler.
type RunStats struct {
	// CostSeries[t] is the cost per interval (sum over links of price *
	// charged volume) after all files generated up to slot t are committed.
	CostSeries []float64
	// FinalCostPerSlot is the last element of CostSeries (0 for 0 slots).
	FinalCostPerSlot float64
	// ScheduledFiles and ScheduledVolume count committed demand.
	ScheduledFiles  int
	ScheduledVolume float64
	// DroppedFiles and DroppedVolume count demand shed because no feasible
	// plan existed even after shedding (see Run).
	DroppedFiles  int
	DroppedVolume float64
	// Elapsed is the total scheduling time.
	Elapsed time.Duration
	// Solver is the LP work this run performed, when the scheduler reports
	// it (see SolverStatsReporter); the zero value otherwise. It is a
	// per-run delta, not a cumulative counter, so per-run values sum
	// deterministically across any execution order.
	Solver core.SolveStats
}

// DropRate reports the fraction of offered volume that was shed.
func (s *RunStats) DropRate() float64 {
	total := s.ScheduledVolume + s.DroppedVolume
	if total == 0 {
		return 0
	}
	return s.DroppedVolume / total
}

// Run executes one online simulation: for each slot in [0, slots), files
// are drawn from gen and handed to sched with the current ledger state;
// the resulting plan is committed. When a slot's demand is infeasible the
// engine sheds the most bandwidth-hungry file and retries, recording the
// shed volume (the paper's evaluation never hits this on its settings, but
// an engine must not wedge on pathological draws).
//
// The ledger must be empty (or deliberately pre-seeded); it is mutated in
// place so the caller can inspect it afterwards.
func Run(ledger *netmodel.Ledger, sched Scheduler, gen workload.Generator, slots int) (*RunStats, error) {
	if slots < 0 {
		return nil, fmt.Errorf("sim: negative slot count %d", slots)
	}
	stats := &RunStats{CostSeries: make([]float64, 0, slots)}
	var solverBase core.SolveStats
	reporter, hasReporter := sched.(SolverStatsReporter)
	if hasReporter {
		solverBase = reporter.SolverStats()
	}
	start := time.Now()
	for t := 0; t < slots; t++ {
		files := gen.FilesAt(t)
		remaining := files
		for {
			plan, err := sched.Schedule(ledger, remaining, t)
			if err == nil {
				if err := plan.Apply(ledger); err != nil {
					return nil, fmt.Errorf("sim: committing slot %d: %w", t, err)
				}
				for _, f := range remaining {
					stats.ScheduledFiles++
					stats.ScheduledVolume += f.Size
				}
				break
			}
			if !errors.Is(err, ErrInfeasible) {
				return nil, fmt.Errorf("sim: slot %d: %w", t, err)
			}
			if len(remaining) == 0 {
				return nil, fmt.Errorf("sim: slot %d infeasible with no files: %w", t, err)
			}
			// Shed the most demanding file and retry.
			ordered := shedOrder(remaining)
			shed := ordered[0]
			stats.DroppedFiles++
			stats.DroppedVolume += shed.Size
			next := make([]netmodel.File, 0, len(remaining)-1)
			for _, f := range remaining {
				if f.ID != shed.ID {
					next = append(next, f)
				}
			}
			remaining = next
		}
		stats.CostSeries = append(stats.CostSeries, ledger.CostPerSlot())
	}
	stats.Elapsed = time.Since(start)
	if hasReporter {
		stats.Solver = reporter.SolverStats().Sub(solverBase)
	}
	if n := len(stats.CostSeries); n > 0 {
		stats.FinalCostPerSlot = stats.CostSeries[n-1]
	}
	return stats, nil
}
