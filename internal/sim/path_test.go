package sim

import (
	"math"
	"testing"
	"time"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/stats"
	"github.com/interdc/postcard/internal/workload"
)

// TestPathMatchesArcObjectiveCIScale is the online correctness gate for
// Dantzig–Wolfe path pricing, mirroring the sparse-construction gate in
// colgen_test.go: at every slot of CI-scale online runs, the path master
// must report the same LP status and optimal objective as the arc-based
// default of the identical ledger state, up to the Epsilon tie-breaking
// term. The two formulations may commit different vertices of the same
// optimal face, so the comparison happens on a shared ledger before each
// commit, with the path plan applied. Fig 4 (ample capacity) runs all
// CI-scale runs; the contended Fig 6 setting runs one and is skipped in
// -short mode.
func TestPathMatchesArcObjectiveCIScale(t *testing.T) {
	pathCfg := &core.Config{Pricing: core.PricingPath}
	for _, figure := range []int{4, 6} {
		setting, err := netmodel.SettingByFigure(figure)
		if err != nil {
			t.Fatal(err)
		}
		scale := CIScale()
		if figure == 6 {
			if testing.Short() {
				continue
			}
			scale.Runs = 1
		}
		cfg := FigureConfig{Setting: setting, Scale: scale}
		for run := 0; run < cfg.Scale.Runs; run++ {
			trace, err := recordTrace(&cfg, run)
			if err != nil {
				t.Fatal(err)
			}
			seed := cfg.Scale.Seed + int64(run)*7919
			nw, err := netmodel.Complete(cfg.Scale.DCs, workload.UniformPrices(seed), setting.Capacity)
			if err != nil {
				t.Fatal(err)
			}
			ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(cfg.Scale.Slots))
			if err != nil {
				t.Fatal(err)
			}
			gen := trace.Replay()
			columns, fallbacks := 0, 0
			for slot := 0; slot < cfg.Scale.Slots; slot++ {
				remaining := gen.FilesAt(slot)
				for {
					arc, err := core.Solve(ledger, remaining, slot, nil)
					if err != nil {
						t.Fatalf("fig %d run %d slot %d: arc model: %v", figure, run, slot, err)
					}
					path, err := core.Solve(ledger, remaining, slot, pathCfg)
					if err != nil {
						t.Fatalf("fig %d run %d slot %d: path model: %v", figure, run, slot, err)
					}
					if path.Status != arc.Status {
						t.Fatalf("fig %d run %d slot %d: path status %v, arc %v",
							figure, run, slot, path.Status, arc.Status)
					}
					columns += path.ColGenColumns
					fallbacks += path.PathFallbacks
					if arc.Status == lp.Optimal {
						tol := 1e-3 * (1 + math.Abs(arc.CostPerSlot))
						if math.Abs(path.CostPerSlot-arc.CostPerSlot) > tol {
							t.Errorf("fig %d run %d slot %d: path objective %v, arc %v",
								figure, run, slot, path.CostPerSlot, arc.CostPerSlot)
						}
						if err := path.Schedule.Apply(ledger); err != nil {
							t.Fatalf("fig %d run %d slot %d: committing path plan: %v", figure, run, slot, err)
						}
						break
					}
					// Infeasible slot: shed exactly as the engine does and
					// compare the retry too.
					if len(remaining) == 0 {
						t.Fatalf("fig %d run %d slot %d: infeasible with no files", figure, run, slot)
					}
					shed := shedOrder(remaining)[0]
					next := remaining[:0:0]
					for _, f := range remaining {
						if f.ID != shed.ID {
							next = append(next, f)
						}
					}
					remaining = next
				}
			}
			if columns == 0 {
				t.Errorf("fig %d run %d: path pricing never materialized a column", figure, run)
			}
			t.Logf("fig %d run %d: %d path columns, %d arc fallbacks", figure, run, columns, fallbacks)
		}
	}
}

// TestDC64PathPricingSmoke is the scaling smoke behind the dc64-smoke CI
// job: one Figure 4-style run at 64 datacenters (4032 links per slot on the
// complete evaluation topology) driven end to end through the incremental
// solver in path-pricing mode. The assertion is that the run completes,
// every slot solved through the path master, and pricing actually
// restricted the model (columns generated ≪ the delayed arc universe).
func TestDC64PathPricingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("64-DC smoke skipped in -short mode")
	}
	setting, err := netmodel.SettingByFigure(4)
	if err != nil {
		t.Fatal(err)
	}
	sched := &Postcard{
		Label:     "postcard-path",
		WarmStart: true,
		Config:    &core.Config{Pricing: core.PricingPath},
	}
	res, err := RunFigure(FigureConfig{
		Setting:    setting,
		Scale:      DCScale(64),
		Schedulers: []Scheduler{sched},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Schedulers[0].Solver
	if st.PathSolves == 0 {
		t.Fatal("no path solves recorded at 64 DCs")
	}
	if st.ColGenColumns == 0 {
		t.Error("path pricing generated no columns at 64 DCs")
	}
	if st.ColGenUniverse > 0 && st.ColGenColumns >= st.ColGenUniverse {
		t.Errorf("path pricing materialized %d columns against a %d-edge universe; generation restricted nothing",
			st.ColGenColumns, st.ColGenUniverse)
	}
	t.Logf("64 DCs: %d solves (%d fallbacks), %d columns / %d universe, %d lazy rows, %v",
		st.PathSolves, st.PathFallbacks, st.ColGenColumns, st.ColGenUniverse,
		st.ColGenRows, res.Schedulers[0].Elapsed)
}

// goldenDC64Result hand-builds the FigureResult of the 64-DC scaling run
// (deterministic counters, pinned Elapsed) so the rendered solver table —
// including the path-pricing section that only appears when PathSolves > 0
// — is stable byte-for-byte.
func goldenDC64Result() *FigureResult {
	return &FigureResult{
		Setting: netmodel.EvalSetting{
			Name: "ample capacity, urgent", Figure: 4, Capacity: 100, MaxT: 3,
		},
		Scale: DCScale(64),
		Schedulers: []SchedulerSummary{
			{
				Name: "postcard-path",
				Final: stats.Summary{
					N: 1, Mean: 5321.5, StdDev: 0, CI95Half: 0,
					Min: 5321.5, Max: 5321.5,
				},
				MeanSeries: []float64{1210.25, 2645.5, 4010.75, 5321.5},
				Elapsed:    2718 * time.Millisecond,
				Solver: core.SolveStats{
					Solves: 4, WarmSolves: 3, GraphReuses: 3,
					Iterations: 1840, Phase1Iter: 0,
					SparseSolves: 410, DenseSolves: 95,
					SolveNNZ: 5100, SolveDim: 20400,
					DevexResets: 6, DualRecomputes: 58,
					VarUniverse: 290304, PrunedVars: 96768,
					ColGenRounds: 19, ColGenColumns: 87, ColGenRows: 203,
					ColGenUniverse: 290304,
					PathSolves:     4, PathFallbacks: 0, PathRecycled: 12,
					BackendWorkers: 4, DevexScans: 1840,
					ParallelScans: 1104, SpecFtrans: 388, SpecFtranHits: 291,
				},
			},
		},
	}
}

// TestDC64SolverTableGolden pins the rendered solver table of the 64-DC
// path-pricing figure byte-for-byte: the LP-work row plus the appended
// backend section (scans, parallel fraction, speculative-FTRAN hit rate —
// no worker count, since the table must be identical at every pool width)
// and path-pricing section (solves, fallbacks, lazy rows, recycled
// columns). Arc-only serial results omit both sections entirely, which
// figure6-solver.golden already pins.
func TestDC64SolverTableGolden(t *testing.T) {
	checkGolden(t, "dc64-solver.golden", goldenDC64Result().SolverTable())
}
