package sim

import (
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
)

// TestLongHorizonHighContentionRegression replays the configuration that
// once made the optimizer emit a schedule rejected by the independent
// verifier (solver-noise actions surviving extraction): ample capacity,
// fixed deadline 8, up to 8 files per slot, seed 2012. The run must
// complete with no errors and no shed files.
func TestLongHorizonHighContentionRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("long online run in -short mode")
	}
	setting := netmodel.EvalSetting{Name: "regression", Figure: 5, Capacity: 100, MaxT: 8}
	res, err := RunFigure(FigureConfig{
		Setting: setting,
		Scale: Scale{
			Name: "regression", DCs: 8, Slots: 10, Runs: 1,
			FilesMin: 1, FilesMax: 6, SizeMinGB: 10, SizeMaxGB: 100, Seed: 2012,
		},
		Schedulers: []Scheduler{&Postcard{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulers[0].DroppedFiles != 0 {
		t.Errorf("dropped %d files on an ample-capacity run", res.Schedulers[0].DroppedFiles)
	}
}
