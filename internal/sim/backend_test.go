package sim

import (
	"testing"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/netmodel"
)

// TestBackendWorkerCountBitIdentity is the online end of the parallel LP
// backend's determinism contract: a full Figure 4 run on the parallel
// backend must produce the identical rendered solver table — every counter,
// including the backend section — and the identical final cost at every
// worker-pool width. The table deliberately never prints the worker count,
// so byte equality is the strongest possible check here.
//
// CI-scale LPs sit below the parallel scan's size threshold, so the fanned
// pricing path is exercised by the lp package's own equivalence tests and
// fuzz; what this run drives across worker counts is the speculative-FTRAN
// machinery (batching, collection, invalidation across refactorizations),
// which is not size-gated and is the part with cross-iteration state.
func TestBackendWorkerCountBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("figure run skipped in -short mode")
	}
	setting, err := netmodel.SettingByFigure(4)
	if err != nil {
		t.Fatal(err)
	}
	scale := CIScale()
	scale.Runs = 1
	var refTable string
	var refCost float64
	for _, w := range []int{1, 2, 3, 8} {
		sched := &Postcard{
			WarmStart: true,
			Config:    &core.Config{LPBackend: "parallel", LPWorkers: w},
		}
		res, err := RunFigure(FigureConfig{
			Setting:    setting,
			Scale:      scale,
			Schedulers: []Scheduler{sched},
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		table := res.SolverTable()
		cost := res.Schedulers[0].Final.Mean
		st := res.Schedulers[0].Solver
		if st.SpecFtrans == 0 {
			t.Fatalf("workers=%d: parallel backend never speculated an FTRAN (DevexScans=%d)", w, st.DevexScans)
		}
		if st.BackendWorkers != w {
			t.Fatalf("workers=%d: BackendWorkers=%d", w, st.BackendWorkers)
		}
		if w == 1 {
			refTable, refCost = table, cost
			continue
		}
		if cost != refCost {
			t.Errorf("workers=%d: final cost %v, workers=1 cost %v", w, cost, refCost)
		}
		if table != refTable {
			t.Errorf("workers=%d: solver table differs from workers=1:\n--- w=%d ---\n%s\n--- w=1 ---\n%s",
				w, w, table, refTable)
		}
	}
}
