package sim

import (
	"math"
	"testing"

	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/workload"
)

func testScale() Scale {
	return Scale{
		Name: "test", DCs: 5, Slots: 6, Runs: 2,
		FilesMin: 1, FilesMax: 3, SizeMinGB: 10, SizeMaxGB: 60, Seed: 99,
	}
}

func TestRunPostcardSmoke(t *testing.T) {
	nw, err := netmodel.Complete(5, workload.UniformPrices(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(10))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewUniform(workload.UniformConfig{
		NumDCs: 5, MinFiles: 1, MaxFiles: 3,
		MinSizeGB: 10, MaxSizeGB: 50, MaxDeadline: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(ledger, &Postcard{}, gen, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.CostSeries) != 6 {
		t.Fatalf("series length %d, want 6", len(rs.CostSeries))
	}
	// Cost is a running max aggregate: non-decreasing.
	for i := 1; i < len(rs.CostSeries); i++ {
		if rs.CostSeries[i] < rs.CostSeries[i-1]-1e-9 {
			t.Errorf("cost series decreased at %d: %v -> %v", i, rs.CostSeries[i-1], rs.CostSeries[i])
		}
	}
	if rs.FinalCostPerSlot != rs.CostSeries[5] {
		t.Errorf("FinalCostPerSlot mismatch")
	}
	if rs.DroppedFiles != 0 {
		t.Errorf("dropped %d files on an ample-capacity run", rs.DroppedFiles)
	}
	if rs.ScheduledFiles == 0 || rs.ScheduledVolume <= 0 {
		t.Error("nothing scheduled")
	}
	if rs.DropRate() != 0 {
		t.Errorf("DropRate = %v, want 0", rs.DropRate())
	}
}

func TestRunShedsWhenInfeasible(t *testing.T) {
	// Tiny capacity: 2 GB/slot between 2 DCs, but 10 GB files with
	// deadline 1. Everything must be shed, and the engine must not wedge.
	nw, err := netmodel.Complete(2, func(_, _ netmodel.DC) float64 { return 1 }, 2)
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(4))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewUniform(workload.UniformConfig{
		NumDCs: 2, MinFiles: 1, MaxFiles: 1,
		MinSizeGB: 10, MaxSizeGB: 10, MaxDeadline: 1, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(ledger, &Postcard{}, gen, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rs.DroppedFiles != 3 {
		t.Errorf("dropped %d, want 3", rs.DroppedFiles)
	}
	if rs.DropRate() != 1 {
		t.Errorf("DropRate = %v, want 1", rs.DropRate())
	}
}

func TestSchedulerNames(t *testing.T) {
	cases := map[Scheduler]string{
		&Postcard{}:                  "postcard",
		&Postcard{WarmStart: true}:   "postcard-warm",
		&Postcard{Label: "pc-x"}:     "pc-x",
		&Flow{Variant: FlowLP}:       "flow-based",
		&Flow{Variant: FlowTwoPhase}: "flow-two-phase",
		&Flow{Variant: FlowGreedy}:   "flow-greedy",
		&Flow{Variant: FlowDirect}:   "direct",
	}
	for s, want := range cases {
		if got := s.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestRunFigureSmoke(t *testing.T) {
	setting := netmodel.EvalSetting{Name: "test", Figure: 4, Capacity: 100, MaxT: 3}
	res, err := RunFigure(FigureConfig{
		Setting:    setting,
		Scale:      testScale(),
		Schedulers: []Scheduler{&Postcard{}, &Flow{Variant: FlowLP}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedulers) != 2 {
		t.Fatalf("schedulers = %d, want 2", len(res.Schedulers))
	}
	for _, s := range res.Schedulers {
		if s.Final.N != 2 {
			t.Errorf("%s: %d runs, want 2", s.Name, s.Final.N)
		}
		if s.Final.Mean <= 0 {
			t.Errorf("%s: nonpositive mean cost %v", s.Name, s.Final.Mean)
		}
		if len(s.MeanSeries) != 6 {
			t.Errorf("%s: series length %d, want 6", s.Name, len(s.MeanSeries))
		}
	}
	table := res.Table()
	if table == "" || res.SeriesCSV() == "" {
		t.Error("empty table or CSV output")
	}
	for _, want := range []string{"postcard", "flow-based", "Figure 4"} {
		if !contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// TestSameTraceAcrossSchedulers ensures the experiment driver feeds every
// scheduler the identical workload: with one scheduler listed twice, the
// two summaries must agree exactly.
func TestSameTraceAcrossSchedulers(t *testing.T) {
	setting := netmodel.EvalSetting{Name: "twin", Figure: 6, Capacity: 30, MaxT: 3}
	sc := testScale()
	sc.Runs = 1
	res, err := RunFigure(FigureConfig{
		Setting: setting,
		Scale:   sc,
		Schedulers: []Scheduler{
			&Postcard{Label: "pc-a"},
			&Postcard{Label: "pc-b"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, b := res.Schedulers[0], res.Schedulers[1]
	if math.Abs(a.Final.Mean-b.Final.Mean) > 1e-9 {
		t.Errorf("identical schedulers diverged: %v vs %v", a.Final.Mean, b.Final.Mean)
	}
}

// TestPostcardNeverWorseThanDirectOnline: on an ample-capacity run the
// optimal LP at each step commits a plan no more expensive than the direct
// plan evaluated on the same ledger (both are feasible plans of the same
// per-slot problem).
func TestPostcardNeverWorseThanDirectOnline(t *testing.T) {
	nw, err := netmodel.Complete(4, workload.UniformPrices(3), 1000)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewUniform(workload.UniformConfig{
		NumDCs: 4, MinFiles: 1, MaxFiles: 2,
		MinSizeGB: 5, MaxSizeGB: 20, MaxDeadline: 3, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Record(gen, 5)
	ledgerP, err := netmodel.NewLedger(nw, netmodel.MaxCharging(5))
	if err != nil {
		t.Fatal(err)
	}
	ledgerD, err := netmodel.NewLedger(nw, netmodel.MaxCharging(5))
	if err != nil {
		t.Fatal(err)
	}
	rsP, err := Run(ledgerP, &Postcard{}, trace, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the same trace for direct.
	rsD, err := Run(ledgerD, &Flow{Variant: FlowDirect}, trace, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rsP.FinalCostPerSlot > rsD.FinalCostPerSlot+1e-6 {
		t.Errorf("postcard %v worse than direct %v", rsP.FinalCostPerSlot, rsD.FinalCostPerSlot)
	}
}

func TestStoragePolicyAblation(t *testing.T) {
	// Endpoint-only storage can never beat full store-and-forward on the
	// same trace (it is a restriction of the same LP).
	nw, files, err := netmodel.Fig3Topology(0)
	if err != nil {
		t.Fatal(err)
	}
	full, err := netmodel.NewLedger(nw, netmodel.MaxCharging(10))
	if err != nil {
		t.Fatal(err)
	}
	endp := full.Clone()
	pcFull := &Postcard{}
	pcEndp := &Postcard{Config: &core.Config{Storage: core.StorageEndpointsOnly}}
	sFull, err := pcFull.Schedule(full, files, 0)
	if err != nil {
		t.Fatal(err)
	}
	sEndp, err := pcEndp.Schedule(endp, files, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sFull.Apply(full); err != nil {
		t.Fatal(err)
	}
	if err := sEndp.Apply(endp); err != nil {
		t.Fatal(err)
	}
	if full.CostPerSlot() > endp.CostPerSlot()+1e-6 {
		t.Errorf("full storage %v worse than endpoint-only %v", full.CostPerSlot(), endp.CostPerSlot())
	}
}

func TestRunRejectsNegativeSlots(t *testing.T) {
	nw, err := netmodel.Complete(2, func(_, _ netmodel.DC) float64 { return 1 }, 10)
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ledger, &Postcard{}, &workload.Trace{}, -1); err == nil {
		t.Error("expected error for negative slots")
	}
}

func TestScaleValidation(t *testing.T) {
	bad := Scale{DCs: 1, Slots: 1, Runs: 1, FilesMin: 0, FilesMax: 1, SizeMinGB: 1, SizeMaxGB: 2}
	if err := bad.Validate(); err == nil {
		t.Error("expected error for 1 DC")
	}
	if err := PaperScale().Validate(); err != nil {
		t.Errorf("paper scale invalid: %v", err)
	}
	if err := CIScale().Validate(); err != nil {
		t.Errorf("ci scale invalid: %v", err)
	}
}
