// Package timegraph constructs the time-expanded graph at the heart of
// Postcard (Sec. V): one virtual copy of every datacenter per time layer,
// a copy of every overlay link between consecutive layers, and a zero-cost
// infinite-capacity storage self-loop per datacenter modeling
// store-and-forward. Deadline constraints become structural: a file's
// variables exist only inside its subgraph of layers.
package timegraph

import (
	"fmt"
	"io"

	"github.com/interdc/postcard/internal/netmodel"
)

// Edge is one edge of the time-expanded graph, connecting node (From,Slot)
// to node (To,Slot+1). Storage edges have From == To, infinite capacity and
// zero price.
type Edge struct {
	Index   int
	From    netmodel.DC
	To      netmodel.DC
	Slot    int
	Storage bool
	Price   float64
	BaseCap float64 // base link capacity in GB/slot; +Inf for storage
}

// Graph is a time-expanded graph over layers [Start, Start+Horizon]. There
// are Horizon "slots" of edges: slot s connects layer s to layer s+1.
type Graph struct {
	nw      *netmodel.Network
	start   int
	horizon int
	edges   []Edge
	// lookup[(slot-start)*n*n + i*n + j] -> edge index + 1 (0 = absent)
	lookup []int
}

// Build constructs the time-expanded graph of nw over horizon slots
// beginning at slot start.
func Build(nw *netmodel.Network, start, horizon int) (*Graph, error) {
	if start < 0 {
		return nil, fmt.Errorf("timegraph: negative start slot %d", start)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("timegraph: horizon %d < 1", horizon)
	}
	n := nw.NumDCs()
	g := &Graph{
		nw:      nw,
		start:   start,
		horizon: horizon,
		lookup:  make([]int, horizon*n*n),
	}
	for s := start; s < start+horizon; s++ {
		nw.Links(func(l netmodel.Link, price, capacity float64) {
			g.addEdge(Edge{
				From: l.From, To: l.To, Slot: s,
				Price: price, BaseCap: capacity,
			})
		})
		for i := 0; i < n; i++ {
			g.addEdge(Edge{
				From: netmodel.DC(i), To: netmodel.DC(i), Slot: s,
				Storage: true, BaseCap: inf(),
			})
		}
	}
	return g, nil
}

func inf() float64 { return 1e308 }

func (g *Graph) addEdge(e Edge) {
	e.Index = len(g.edges)
	g.edges = append(g.edges, e)
	g.lookup[g.lookupIdx(e.From, e.To, e.Slot)] = e.Index + 1
}

func (g *Graph) lookupIdx(i, j netmodel.DC, slot int) int {
	n := g.nw.NumDCs()
	return (slot-g.start)*n*n + int(i)*n + int(j)
}

// Rebase shifts the graph so its first layer becomes newStart, reusing the
// already-allocated edge and lookup storage instead of rebuilding. The graph
// keeps its horizon; only every edge's Slot moves by the same delta. Because
// prices and base capacities are static properties of the overlay, a rebased
// graph is indistinguishable from one freshly built at newStart — this is
// what lets the incremental per-slot solver keep one time-expanded skeleton
// alive across consecutive slots.
func (g *Graph) Rebase(newStart int) error {
	if newStart < 0 {
		return fmt.Errorf("timegraph: negative start slot %d", newStart)
	}
	delta := newStart - g.start
	if delta == 0 {
		return nil
	}
	for i := range g.edges {
		g.edges[i].Slot += delta
	}
	g.start = newStart
	return nil
}

// Network returns the underlying overlay network.
func (g *Graph) Network() *netmodel.Network { return g.nw }

// Start reports the first layer (slot index) of the graph.
func (g *Graph) Start() int { return g.start }

// Horizon reports the number of edge slots.
func (g *Graph) Horizon() int { return g.horizon }

// NumEdges reports the number of edges (transfer + storage) in the graph.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given index.
func (g *Graph) Edge(idx int) Edge { return g.edges[idx] }

// Edges invokes fn for every edge in index order.
func (g *Graph) Edges(fn func(e Edge)) {
	for _, e := range g.edges {
		fn(e)
	}
}

// EdgeAt returns the edge (i -> j at slot), if it exists. Storage edges are
// addressed with i == j.
func (g *Graph) EdgeAt(i, j netmodel.DC, slot int) (Edge, bool) {
	if slot < g.start || slot >= g.start+g.horizon {
		return Edge{}, false
	}
	n := g.nw.NumDCs()
	if int(i) < 0 || int(i) >= n || int(j) < 0 || int(j) >= n {
		return Edge{}, false
	}
	id := g.lookup[g.lookupIdx(i, j, slot)]
	if id == 0 {
		return Edge{}, false
	}
	return g.edges[id-1], true
}

// FileWindow reports the slot range [first, last] during which file f may
// occupy edges, clamped to the graph. ok is false when the file cannot fit
// in this graph at all (released outside the horizon).
func (g *Graph) FileWindow(f netmodel.File) (first, last int, ok bool) {
	first = f.Release
	last = f.Release + f.Deadline - 1
	if hi := g.start + g.horizon - 1; last > hi {
		last = hi
	}
	if first < g.start {
		first = g.start
	}
	if first > last {
		return 0, 0, false
	}
	return first, last, true
}

// Reachability holds per-datacenter hop distances used to prune a file's
// subgraph: FromSrc[i] is the minimum number of link hops from the file's
// source to datacenter i, ToDst[i] the minimum from i to the destination.
// Unreachable datacenters hold a value larger than any layer count.
type Reachability struct {
	FromSrc []int
	ToDst   []int
}

const unreachable = 1 << 30

// FileReachability computes hop distances for file f on the overlay.
func (g *Graph) FileReachability(f netmodel.File) Reachability {
	return Reachability{
		FromSrc: g.bfs(f.Src, false),
		ToDst:   g.bfs(f.Dst, true),
	}
}

// bfs runs breadth-first search over the overlay links, forward from d
// (reverse=false) or along reversed links toward d (reverse=true).
func (g *Graph) bfs(d netmodel.DC, reverse bool) []int {
	n := g.nw.NumDCs()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = unreachable
	}
	dist[d] = 0
	queue := []netmodel.DC{d}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := 0; u < n; u++ {
			var connected bool
			if reverse {
				connected = g.nw.HasLink(netmodel.DC(u), v)
			} else {
				connected = g.nw.HasLink(v, netmodel.DC(u))
			}
			if connected && dist[u] == unreachable {
				dist[u] = dist[v] + 1
				queue = append(queue, netmodel.DC(u))
			}
		}
	}
	return dist
}

// Permissive returns a Reachability over n datacenters that prunes
// nothing: every hop distance is zero, so Allowed degenerates to the pure
// deadline-window check. Equivalence gates and fuzzers use it to build the
// unpruned model that reachability pruning must match exactly.
func Permissive(n int) Reachability {
	return Reachability{
		FromSrc: make([]int, n),
		ToDst:   make([]int, n),
	}
}

// Allowed reports whether file f may occupy datacenter dc at layer
// (i.e. hold data there at the beginning of slot layer): the datacenter
// must be reachable from the source within the elapsed slots and the
// destination must remain reachable within the remaining slots.
func (r Reachability) Allowed(f netmodel.File, dc netmodel.DC, layer int) bool {
	elapsed := layer - f.Release
	remaining := f.Release + f.Deadline - layer
	if elapsed < 0 || remaining < 0 {
		return false
	}
	return r.FromSrc[dc] <= elapsed && r.ToDst[dc] <= remaining
}

// DOT writes the time-expanded graph in Graphviz format, one rank per
// layer. Storage edges are drawn dashed.
func (g *Graph) DOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph timeexpanded {"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "  rankdir=LR;"); err != nil {
		return err
	}
	n := g.nw.NumDCs()
	for layer := g.start; layer <= g.start+g.horizon; layer++ {
		if _, err := fmt.Fprintf(w, "  { rank=same; "); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if _, err := fmt.Fprintf(w, "\"d%d@%d\"; ", i, layer); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, "}"); err != nil {
			return err
		}
	}
	var dotErr error
	g.Edges(func(e Edge) {
		if dotErr != nil {
			return
		}
		style := ""
		if e.Storage {
			style = " [style=dashed]"
		} else {
			style = fmt.Sprintf(" [label=\"a=%g\"]", e.Price)
		}
		_, dotErr = fmt.Fprintf(w, "  \"d%d@%d\" -> \"d%d@%d\"%s;\n",
			int(e.From), e.Slot, int(e.To), e.Slot+1, style)
	})
	if dotErr != nil {
		return dotErr
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
