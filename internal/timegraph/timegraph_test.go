package timegraph

import (
	"strings"
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
)

func completeNet(t *testing.T, n int) *netmodel.Network {
	t.Helper()
	nw, err := netmodel.Complete(n, func(i, j netmodel.DC) float64 { return float64(i) + float64(j) + 1 }, 5)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBuildCounts(t *testing.T) {
	nw := completeNet(t, 4)
	g, err := Build(nw, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Per slot: 12 transfer links + 4 storage loops; 4 slots.
	if got, want := g.NumEdges(), 4*(12+4); got != want {
		t.Errorf("NumEdges = %d, want %d", got, want)
	}
	if g.Start() != 3 || g.Horizon() != 4 {
		t.Errorf("Start/Horizon = %d/%d, want 3/4", g.Start(), g.Horizon())
	}
}

func TestBuildValidation(t *testing.T) {
	nw := completeNet(t, 3)
	if _, err := Build(nw, -1, 2); err == nil {
		t.Error("expected error for negative start")
	}
	if _, err := Build(nw, 0, 0); err == nil {
		t.Error("expected error for zero horizon")
	}
}

func TestEdgeAt(t *testing.T) {
	nw := completeNet(t, 3)
	g, err := Build(nw, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := g.EdgeAt(0, 1, 2)
	if !ok {
		t.Fatal("edge 0->1@2 missing")
	}
	if e.Storage || e.Price != nw.Price(0, 1) || e.Slot != 2 {
		t.Errorf("unexpected edge %+v", e)
	}
	s, ok := g.EdgeAt(1, 1, 4)
	if !ok {
		t.Fatal("storage edge 1@4 missing")
	}
	if !s.Storage || s.Price != 0 {
		t.Errorf("storage edge %+v should be free", s)
	}
	if _, ok := g.EdgeAt(0, 1, 5); ok {
		t.Error("edge beyond horizon should be absent")
	}
	if _, ok := g.EdgeAt(0, 1, 1); ok {
		t.Error("edge before start should be absent")
	}
	if _, ok := g.EdgeAt(-1, 1, 2); ok {
		t.Error("edge with bad DC should be absent")
	}
}

func TestEdgeIndexRoundTrip(t *testing.T) {
	nw := completeNet(t, 3)
	g, err := Build(nw, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	g.Edges(func(e Edge) {
		got := g.Edge(e.Index)
		if got != e {
			t.Errorf("Edge(%d) = %+v, want %+v", e.Index, got, e)
		}
		e2, ok := g.EdgeAt(e.From, e.To, e.Slot)
		if !ok || e2.Index != e.Index {
			t.Errorf("EdgeAt(%v,%v,%d) mismatch", e.From, e.To, e.Slot)
		}
	})
}

func TestFileWindow(t *testing.T) {
	nw := completeNet(t, 3)
	g, err := Build(nw, 5, 4) // slots 5..8
	if err != nil {
		t.Fatal(err)
	}
	f := netmodel.File{ID: 1, Src: 0, Dst: 1, Size: 1, Deadline: 3, Release: 5}
	first, last, ok := g.FileWindow(f)
	if !ok || first != 5 || last != 7 {
		t.Errorf("window = [%d,%d] ok=%v, want [5,7] true", first, last, ok)
	}
	// Deadline exceeding the horizon is clamped.
	f.Deadline = 10
	first, last, ok = g.FileWindow(f)
	if !ok || first != 5 || last != 8 {
		t.Errorf("clamped window = [%d,%d] ok=%v, want [5,8] true", first, last, ok)
	}
	// Released after the horizon: no window.
	f.Release = 20
	if _, _, ok := g.FileWindow(f); ok {
		t.Error("expected no window for file released beyond horizon")
	}
}

func TestReachabilityCompleteGraph(t *testing.T) {
	nw := completeNet(t, 4)
	g, err := Build(nw, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := netmodel.File{ID: 1, Src: 0, Dst: 3, Size: 1, Deadline: 3, Release: 0}
	r := g.FileReachability(f)
	// At layer 0 only the source may hold data.
	for i := 0; i < 4; i++ {
		want := i == 0
		if got := r.Allowed(f, netmodel.DC(i), 0); got != want {
			t.Errorf("Allowed(dc %d, layer 0) = %v, want %v", i, got, want)
		}
	}
	// At the deadline layer only the destination may hold data.
	for i := 0; i < 4; i++ {
		want := i == 3
		if got := r.Allowed(f, netmodel.DC(i), 3); got != want {
			t.Errorf("Allowed(dc %d, layer 3) = %v, want %v", i, got, want)
		}
	}
	// Mid-window all datacenters are reachable in a complete graph.
	for i := 0; i < 4; i++ {
		if !r.Allowed(f, netmodel.DC(i), 1) {
			t.Errorf("Allowed(dc %d, layer 1) = false, want true", i)
		}
	}
	// Outside the window nothing is allowed.
	if r.Allowed(f, 0, 4) || r.Allowed(f, 3, -1) {
		t.Error("allowed outside file window")
	}
}

func TestReachabilitySparseChain(t *testing.T) {
	// Chain 0 -> 1 -> 2: reaching node 2 takes two hops.
	nw, err := netmodel.NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(0, 1, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(1, 2, 1, 5); err != nil {
		t.Fatal(err)
	}
	g, err := Build(nw, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	f := netmodel.File{ID: 1, Src: 0, Dst: 2, Size: 1, Deadline: 3, Release: 0}
	r := g.FileReachability(f)
	if r.Allowed(f, 2, 1) {
		t.Error("node 2 cannot be reached by layer 1 over a chain")
	}
	if !r.Allowed(f, 2, 2) {
		t.Error("node 2 must be reachable by layer 2")
	}
	if r.Allowed(f, 0, 3) {
		t.Error("holding at the source at the deadline layer cannot reach the destination")
	}
	// Node 1 at layer 2: destination still one hop away with one slot left.
	if !r.Allowed(f, 1, 2) {
		t.Error("node 1 at layer 2 should be allowed")
	}
}

func TestDOTOutput(t *testing.T) {
	nw := completeNet(t, 2)
	g, err := Build(nw, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.DOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph", "\"d0@0\" -> \"d1@1\"", "style=dashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}
