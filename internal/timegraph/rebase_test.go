package timegraph

import (
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
)

// TestRebaseMatchesFreshBuild pins the Rebase contract: a graph built at
// slot 0 and rebased to slot t must be edge-for-edge identical to a graph
// freshly built at t, and every EdgeAt/FileWindow query must agree.
func TestRebaseMatchesFreshBuild(t *testing.T) {
	nw, err := netmodel.NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	mustLink := func(i, j int, price, capacity float64) {
		t.Helper()
		if err := nw.SetLink(netmodel.DC(i), netmodel.DC(j), price, capacity); err != nil {
			t.Fatal(err)
		}
	}
	mustLink(0, 1, 2, 10)
	mustLink(1, 2, 3, 20)
	mustLink(0, 2, 7, 5)

	const horizon = 4
	g, err := Build(nw, 0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	for _, newStart := range []int{5, 2, 0} {
		if err := g.Rebase(newStart); err != nil {
			t.Fatalf("Rebase(%d): %v", newStart, err)
		}
		fresh, err := Build(nw, newStart, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if g.Start() != newStart || g.Horizon() != horizon {
			t.Fatalf("rebased graph is [%d,+%d), want [%d,+%d)", g.Start(), g.Horizon(), newStart, horizon)
		}
		if g.NumEdges() != fresh.NumEdges() {
			t.Fatalf("rebased graph has %d edges, fresh build has %d", g.NumEdges(), fresh.NumEdges())
		}
		for idx := 0; idx < g.NumEdges(); idx++ {
			if got, want := g.Edge(idx), fresh.Edge(idx); got != want {
				t.Fatalf("edge %d after Rebase(%d): %+v, fresh %+v", idx, newStart, got, want)
			}
		}
		// Spot-check lookups inside, at the boundary of, and outside the window.
		for slot := newStart - 1; slot <= newStart+horizon; slot++ {
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					ge, gok := g.EdgeAt(netmodel.DC(i), netmodel.DC(j), slot)
					fe, fok := fresh.EdgeAt(netmodel.DC(i), netmodel.DC(j), slot)
					if gok != fok || ge != fe {
						t.Fatalf("EdgeAt(%d,%d,%d): rebased (%+v,%v), fresh (%+v,%v)", i, j, slot, ge, gok, fe, fok)
					}
				}
			}
		}
		f := netmodel.File{ID: 1, Src: 0, Dst: 2, Size: 4, Release: newStart + 1, Deadline: 2}
		gf, gl, gok := g.FileWindow(f)
		ff, fl, fok := fresh.FileWindow(f)
		if gf != ff || gl != fl || gok != fok {
			t.Fatalf("FileWindow after Rebase(%d): (%d,%d,%v), fresh (%d,%d,%v)", newStart, gf, gl, gok, ff, fl, fok)
		}
	}
	if err := g.Rebase(-1); err == nil {
		t.Fatal("Rebase(-1) accepted a negative start slot")
	}
}
