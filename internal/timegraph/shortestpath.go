package timegraph

import (
	"math"

	"github.com/interdc/postcard/internal/netmodel"
)

// SlotEdges returns the edges of slot s — every transfer edge followed by
// the per-datacenter storage edges, in index order — or nil when s lies
// outside the graph. Build lays edges out slot-contiguously and Rebase
// preserves the layout, so the returned slice is a view into the graph's
// own storage.
func (g *Graph) SlotEdges(s int) []Edge {
	if s < g.start || s >= g.start+g.horizon {
		return nil
	}
	per := len(g.edges) / g.horizon
	off := (s - g.start) * per
	return g.edges[off : off+per]
}

// PathFinder computes minimum-weight source→deadline paths on the
// time-expanded DAG — the Dantzig–Wolfe pricing subproblem. The graph is
// layered (every edge goes from layer s to layer s+1), so one
// label-correcting sweep in layer order is exact for arbitrary edge
// weights, including the negative reduced costs pricing produces; no
// Dijkstra ordering or negative-cycle handling is needed. The zero value is
// ready to use, and the internal labels are recycled across calls, so one
// PathFinder per worker goroutine prices any number of files without
// allocating.
type PathFinder struct {
	dist []float64
	pred []int32
	path []int
}

// ShortestPath returns a minimum-weight path for file f from its source at
// the release layer to its destination at the deadline layer (clamped to
// the graph), as a sequence of edge indices in traversal order. The weight
// callback prices each candidate edge — reduced cost for transfer edges,
// zero or +Inf for storage edges depending on the holdover policy — and
// returns math.Inf(1) to forbid an edge outright. Deadline-window pruning
// is inherent: a layered path from (src, release) to (dst, deadline) can
// only visit datacenters whose hop distances fit the elapsed and remaining
// slots, exactly the Reachability.Allowed condition.
//
// ok is false when no admissible path exists. The returned slice is reused
// by the next call on the same PathFinder; callers that keep paths copy
// them out. Ties between equal-weight paths break toward the lowest edge
// index at every layer, so the result is deterministic for given weights.
func (p *PathFinder) ShortestPath(g *Graph, f netmodel.File, weight func(e *Edge) float64) (path []int, w float64, ok bool) {
	n := g.nw.NumDCs()
	first := f.Release
	if first < g.start {
		first = g.start
	}
	endLayer := f.Release + f.Deadline
	if clamp := g.start + g.horizon; endLayer > clamp {
		endLayer = clamp
	}
	if first > endLayer {
		return nil, 0, false
	}
	layers := endLayer - first + 1
	size := layers * n
	if cap(p.dist) < size {
		p.dist = make([]float64, size)
		p.pred = make([]int32, size)
	} else {
		p.dist = p.dist[:size]
		p.pred = p.pred[:size]
	}
	pinf := math.Inf(1)
	for i := range p.dist {
		p.dist[i] = pinf
		p.pred[i] = 0
	}
	p.dist[int(f.Src)] = 0
	for layer := first; layer < endLayer; layer++ {
		base := (layer - first) * n
		next := base + n
		slot := g.SlotEdges(layer)
		for i := range slot {
			e := &slot[i]
			from := p.dist[base+int(e.From)]
			if math.IsInf(from, 1) {
				continue
			}
			cw := weight(e)
			if math.IsInf(cw, 1) {
				continue
			}
			if d := from + cw; d < p.dist[next+int(e.To)] {
				p.dist[next+int(e.To)] = d
				p.pred[next+int(e.To)] = int32(e.Index) + 1
			}
		}
	}
	goal := (layers-1)*n + int(f.Dst)
	if math.IsInf(p.dist[goal], 1) {
		return nil, 0, false
	}
	p.path = p.path[:0]
	for node := goal; ; {
		pe := p.pred[node]
		if pe == 0 {
			break
		}
		e := &g.edges[pe-1]
		p.path = append(p.path, e.Index)
		node = (e.Slot-first)*n + int(e.From)
	}
	// The walk above runs destination→source; traversal order is the reverse.
	for i, j := 0, len(p.path)-1; i < j; i, j = i+1, j-1 {
		p.path[i], p.path[j] = p.path[j], p.path[i]
	}
	return p.path, p.dist[goal], true
}
