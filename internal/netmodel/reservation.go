package netmodel

import (
	"fmt"
	"math"
)

// resTol absorbs float dust when reservations are compared against residual
// capacity or released back: a release that undershoots its reservation by
// less than this relative tolerance snaps the remainder to zero instead of
// leaving unreclaimable slivers behind.
const resTol = 1e-9

// Reservations is an in-memory reservation view over a Ledger: capacity
// claimed slot-by-slot on top of the traffic already recorded, without
// writing anything into the ledger itself. The admission fast tier reserves
// link-slot capacity here while a batch is provisional, and the background
// re-optimizer releases over-reservations when it republishes an improved
// plan; because the ledger never sees reservations, an LP re-solve against
// the ledger naturally prices the whole batch from scratch.
//
// Reservations is not safe for concurrent use.
type Reservations struct {
	ledger   *Ledger
	reserved [][]float64 // [linkIndex][slot], grown on demand
	maxSlot  int         // highest slot with a live reservation bucket, -1 when none
}

// NewReservations creates an empty reservation view over the ledger.
func NewReservations(l *Ledger) *Reservations {
	n := l.nw.NumDCs()
	return &Reservations{ledger: l, reserved: make([][]float64, n*n), maxSlot: -1}
}

// Ledger returns the underlying ledger.
func (r *Reservations) Ledger() *Ledger { return r.ledger }

// Reserved reports the capacity currently reserved on link i->j at slot.
func (r *Reservations) Reserved(i, j DC, slot int) float64 {
	if !r.ledger.nw.HasLink(i, j) {
		return 0
	}
	k := r.ledger.nw.idx(i, j)
	if slot < 0 || slot >= len(r.reserved[k]) {
		return 0
	}
	return r.reserved[k][slot]
}

// Extent reports one past the highest slot that has ever held a
// reservation, or 0 when none has. It only grows: released buckets keep
// counting, so peak computations over [0, Extent) stay consistent across a
// reserve/release cycle.
func (r *Reservations) Extent() int { return r.maxSlot + 1 }

// Available reports the capacity of link i->j at slot that is neither
// recorded in the ledger nor reserved: Residual minus Reserved, clamped at
// zero.
func (r *Reservations) Available(i, j DC, slot int) float64 {
	a := r.ledger.Residual(i, j, slot) - r.Reserved(i, j, slot)
	if a < 0 {
		return 0
	}
	return a
}

// FreeHeadroom reports how much more traffic link i->j could carry at slot
// without raising its charge, after accounting for capacity already
// reserved: PaidHeadroom minus Reserved, clamped at zero. Since PaidHeadroom
// is capped by the residual, FreeHeadroom never exceeds Available.
func (r *Reservations) FreeHeadroom(i, j DC, slot int) float64 {
	h := r.ledger.PaidHeadroom(i, j, slot) - r.Reserved(i, j, slot)
	if h < 0 {
		return 0
	}
	return h
}

// PlannedVolume reports the link's slot volume as the fast tier sees it:
// recorded ledger traffic plus live reservations.
func (r *Reservations) PlannedVolume(i, j DC, slot int) float64 {
	return r.ledger.VolumeAt(i, j, slot) + r.Reserved(i, j, slot)
}

// Reserve claims amount GB on link i->j at slot. It fails when the amount
// is invalid, the link does not exist, or the claim exceeds Available
// beyond tolerance; a failed Reserve changes nothing.
func (r *Reservations) Reserve(i, j DC, slot int, amount float64) error {
	if amount < 0 || math.IsNaN(amount) || math.IsInf(amount, 0) {
		return fmt.Errorf("netmodel: invalid reservation amount %v on %d->%d", amount, i, j)
	}
	if !r.ledger.nw.HasLink(i, j) {
		return fmt.Errorf("netmodel: reservation on non-existent link %d->%d", i, j)
	}
	if slot < 0 {
		return fmt.Errorf("netmodel: reservation at negative slot %d", slot)
	}
	if amount == 0 {
		return nil
	}
	if avail := r.Available(i, j, slot); amount > avail+resTol*(1+amount) {
		return fmt.Errorf("netmodel: reserving %.6g GB on %d->%d slot %d exceeds available %.6g",
			amount, i, j, slot, avail)
	}
	k := r.ledger.nw.idx(i, j)
	for len(r.reserved[k]) <= slot {
		r.reserved[k] = append(r.reserved[k], 0)
	}
	r.reserved[k][slot] += amount
	if slot > r.maxSlot {
		r.maxSlot = slot
	}
	return nil
}

// Release returns amount GB of reservation on link i->j at slot to the
// pool. Releasing more than is reserved (beyond tolerance) is an error; a
// release that leaves less than tolerance behind snaps the bucket to zero,
// so repeated reserve/release cycles cannot strand float dust as phantom
// reserved capacity.
func (r *Reservations) Release(i, j DC, slot int, amount float64) error {
	if amount < 0 || math.IsNaN(amount) || math.IsInf(amount, 0) {
		return fmt.Errorf("netmodel: invalid release amount %v on %d->%d", amount, i, j)
	}
	if !r.ledger.nw.HasLink(i, j) {
		return fmt.Errorf("netmodel: release on non-existent link %d->%d", i, j)
	}
	if amount == 0 {
		return nil
	}
	have := r.Reserved(i, j, slot)
	if amount > have+resTol*(1+amount) {
		return fmt.Errorf("netmodel: releasing %.6g GB on %d->%d slot %d but only %.6g reserved",
			amount, i, j, slot, have)
	}
	k := r.ledger.nw.idx(i, j)
	rest := have - amount
	if rest < resTol*(1+have) {
		rest = 0
	}
	r.reserved[k][slot] = rest
	return nil
}

// TotalReserved reports the sum of all live reservations in GB.
func (r *Reservations) TotalReserved() float64 {
	total := 0.0
	for _, vs := range r.reserved {
		for _, v := range vs {
			total += v
		}
	}
	return total
}

// Clone returns a deep copy sharing the same underlying ledger.
func (r *Reservations) Clone() *Reservations {
	cp := &Reservations{ledger: r.ledger, reserved: make([][]float64, len(r.reserved)), maxSlot: r.maxSlot}
	for k, vs := range r.reserved {
		if len(vs) == 0 {
			continue
		}
		cp.reserved[k] = append([]float64(nil), vs...)
	}
	return cp
}
