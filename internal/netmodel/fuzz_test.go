package netmodel

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"testing"
)

// FuzzReadInstance fuzzes the JSON instance decoder: arbitrary input must
// either fail with an error or yield an Instance that re-encodes and
// re-decodes to the identical structure, and that Build either rejects or
// materializes without panicking. The seed corpus includes the shipped
// cmd/postcard-solve fixture plus handwritten edge cases.
func FuzzReadInstance(f *testing.F) {
	if data, err := os.ReadFile("../../cmd/postcard-solve/testdata/relay.json"); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"datacenters":2,"links":[{"from":0,"to":1,"price":1,"capacity":5}],"files":[{"id":1,"src":0,"dst":1,"size":3,"deadline":2,"release":0}]}`))
	f.Add([]byte(`{"datacenters":0,"links":null,"files":null}`))
	f.Add([]byte(`{"datacenters":3,"links":[{"from":-1,"to":9,"price":-2,"capacity":-3}]}`))
	f.Add([]byte(`{"datacenters":2,"files":[{"id":1,"src":0,"dst":1,"size":1e308,"deadline":1},{"id":1,"src":0,"dst":1,"size":1,"deadline":1}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"datacenters":2,"unknown":true}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := ReadInstance(bytes.NewReader(data))
		if err != nil {
			if inst != nil {
				t.Fatalf("ReadInstance returned both an instance and error %v", err)
			}
			return
		}
		// Round-trip: what we decoded must encode and decode losslessly
		// (JSON numbers round-trip exactly through Go's float formatting).
		var buf bytes.Buffer
		if err := inst.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON failed on decoded instance: %v", err)
		}
		again, err := ReadInstance(&buf)
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(inst, again) {
			t.Fatalf("round-trip mismatch:\nfirst  %+v\nsecond %+v", inst, again)
		}
		// Build must validate instead of panicking or returning corrupt
		// structures. Bounded: Build allocates O(datacenters^2), so huge
		// DC counts (decoder-legal but absurd) are skipped, not built.
		if inst.Datacenters > 64 || len(inst.Links) > 4096 || len(inst.Files) > 4096 {
			return
		}
		nw, files, err := inst.Build()
		if err != nil {
			return
		}
		if nw == nil || nw.NumDCs() != inst.Datacenters {
			t.Fatalf("Build returned nw=%v for %d datacenters", nw, inst.Datacenters)
		}
		if len(files) != len(inst.Files) {
			t.Fatalf("Build returned %d files, instance has %d", len(files), len(inst.Files))
		}
		for _, file := range files {
			if err := file.Validate(nw); err != nil {
				t.Fatalf("Build let an invalid file through: %v", err)
			}
		}
	})
}

// FuzzChargedVolume fuzzes the percentile charging scheme: for any percentile
// q in (0, 100], any period, and any recorded volumes, the charged volume
// must be the element of the zero-padded sorted volume multiset at the exact
// rank ceil(q/100 * effectivePeriod) — never off by one (the float-ceiling
// bug this pins down over-ranked 40 integer (q, period) combinations).
func FuzzChargedVolume(f *testing.F) {
	f.Add(7.0, 100, int64(1), 100)
	f.Add(14.0, 50, int64(2), 50)
	f.Add(28.0, 25, int64(3), 25)
	f.Add(100.0, 10, int64(4), 6)
	f.Add(50.0, 10, int64(5), 0)
	f.Add(0.5, 300, int64(6), 12)
	f.Add(99.999, 3, int64(7), 5) // recorded beyond the period

	f.Fuzz(func(t *testing.T, qRaw float64, periodRaw int, seed int64, usedRaw int) {
		q := qRaw
		if math.IsNaN(q) || math.IsInf(q, 0) {
			return
		}
		q = math.Mod(math.Abs(q), 100)
		if q == 0 {
			q = 100
		}
		period := periodRaw%300 + 1
		if period < 1 {
			period += 300
		}
		used := usedRaw % (period + 8)
		if used < 0 {
			used = -used
		}
		rng := rand.New(rand.NewSource(seed))
		vols := make([]float64, used)
		for i := range vols {
			vols[i] = math.Floor(rng.Float64()*1000) / 8
		}
		c := Charging{Q: q, PeriodSlots: period}
		if err := c.Validate(); err != nil {
			t.Fatalf("scheme q=%v period=%d failed validation: %v", q, period, err)
		}
		got := c.ChargedVolume(vols)

		eff := period
		if used > eff {
			eff = used
		}
		padded := make([]float64, eff)
		copy(padded, vols)
		sort.Float64s(padded)
		var want float64
		switch {
		case used == 0:
			want = 0
		case q >= 100:
			want = padded[eff-1]
		default:
			want = padded[exactRankRef(q, eff)-1]
		}
		if got != want {
			t.Fatalf("q=%v period=%d used=%d: charged %v, want multiset element %v at exact rank",
				q, period, used, got, want)
		}
		// The charge is always an element of the padded multiset.
		idx := sort.SearchFloat64s(padded, got)
		if idx >= len(padded) || padded[idx] != got {
			t.Fatalf("charged volume %v is not an element of the padded multiset", got)
		}
	})
}
