package netmodel

import (
	"bytes"
	"os"
	"reflect"
	"testing"
)

// FuzzReadInstance fuzzes the JSON instance decoder: arbitrary input must
// either fail with an error or yield an Instance that re-encodes and
// re-decodes to the identical structure, and that Build either rejects or
// materializes without panicking. The seed corpus includes the shipped
// cmd/postcard-solve fixture plus handwritten edge cases.
func FuzzReadInstance(f *testing.F) {
	if data, err := os.ReadFile("../../cmd/postcard-solve/testdata/relay.json"); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"datacenters":2,"links":[{"from":0,"to":1,"price":1,"capacity":5}],"files":[{"id":1,"src":0,"dst":1,"size":3,"deadline":2,"release":0}]}`))
	f.Add([]byte(`{"datacenters":0,"links":null,"files":null}`))
	f.Add([]byte(`{"datacenters":3,"links":[{"from":-1,"to":9,"price":-2,"capacity":-3}]}`))
	f.Add([]byte(`{"datacenters":2,"files":[{"id":1,"src":0,"dst":1,"size":1e308,"deadline":1},{"id":1,"src":0,"dst":1,"size":1,"deadline":1}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"datacenters":2,"unknown":true}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := ReadInstance(bytes.NewReader(data))
		if err != nil {
			if inst != nil {
				t.Fatalf("ReadInstance returned both an instance and error %v", err)
			}
			return
		}
		// Round-trip: what we decoded must encode and decode losslessly
		// (JSON numbers round-trip exactly through Go's float formatting).
		var buf bytes.Buffer
		if err := inst.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON failed on decoded instance: %v", err)
		}
		again, err := ReadInstance(&buf)
		if err != nil {
			t.Fatalf("re-decoding our own encoding failed: %v", err)
		}
		if !reflect.DeepEqual(inst, again) {
			t.Fatalf("round-trip mismatch:\nfirst  %+v\nsecond %+v", inst, again)
		}
		// Build must validate instead of panicking or returning corrupt
		// structures. Bounded: Build allocates O(datacenters^2), so huge
		// DC counts (decoder-legal but absurd) are skipped, not built.
		if inst.Datacenters > 64 || len(inst.Links) > 4096 || len(inst.Files) > 4096 {
			return
		}
		nw, files, err := inst.Build()
		if err != nil {
			return
		}
		if nw == nil || nw.NumDCs() != inst.Datacenters {
			t.Fatalf("Build returned nw=%v for %d datacenters", nw, inst.Datacenters)
		}
		if len(files) != len(inst.Files) {
			t.Fatalf("Build returned %d files, instance has %d", len(files), len(inst.Files))
		}
		for _, file := range files {
			if err := file.Validate(nw); err != nil {
				t.Fatalf("Build let an invalid file through: %v", err)
			}
		}
	})
}
