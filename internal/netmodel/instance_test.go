package netmodel

import (
	"bytes"
	"strings"
	"testing"
)

func TestInstanceRoundTrip(t *testing.T) {
	nw, files, err := Fig3Topology(2)
	if err != nil {
		t.Fatal(err)
	}
	inst := InstanceOf(nw, files)
	var buf bytes.Buffer
	if err := inst.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	nw2, files2, err := got.Build()
	if err != nil {
		t.Fatal(err)
	}
	if nw2.NumDCs() != nw.NumDCs() || nw2.NumLinks() != nw.NumLinks() {
		t.Errorf("network shape changed: %d/%d vs %d/%d",
			nw2.NumDCs(), nw2.NumLinks(), nw.NumDCs(), nw.NumLinks())
	}
	nw.Links(func(l Link, price, capacity float64) {
		if nw2.Price(l.From, l.To) != price || nw2.Capacity(l.From, l.To) != capacity {
			t.Errorf("link %v changed", l)
		}
	})
	if len(files2) != len(files) {
		t.Fatalf("files = %d, want %d", len(files2), len(files))
	}
	for i := range files {
		if files2[i] != files[i] {
			t.Errorf("file %d changed: %+v != %+v", i, files2[i], files[i])
		}
	}
}

func TestReadInstanceRejectsUnknownFields(t *testing.T) {
	in := `{"datacenters": 2, "links": [], "files": [], "bogus": 1}`
	if _, err := ReadInstance(strings.NewReader(in)); err == nil {
		t.Error("expected error for unknown field")
	}
}

func TestInstanceBuildValidation(t *testing.T) {
	cases := []Instance{
		{Datacenters: 0},
		{Datacenters: 2, Links: []InstanceLink{{From: 0, To: 5, Price: 1, Capacity: 1}}},
		{Datacenters: 2, Links: []InstanceLink{{From: 0, To: 1, Price: 1, Capacity: 1}},
			Files: []InstanceFile{{ID: 1, Src: 0, Dst: 0, Size: 1, Deadline: 1}}},
		{Datacenters: 2, Links: []InstanceLink{{From: 0, To: 1, Price: 1, Capacity: 1}},
			Files: []InstanceFile{
				{ID: 1, Src: 0, Dst: 1, Size: 1, Deadline: 1},
				{ID: 1, Src: 1, Dst: 0, Size: 1, Deadline: 1},
			}},
	}
	for i, inst := range cases {
		if _, _, err := inst.Build(); err == nil {
			t.Errorf("case %d: expected build error", i)
		}
	}
}

func TestReadInstanceGarbage(t *testing.T) {
	if _, err := ReadInstance(strings.NewReader("{")); err == nil {
		t.Error("expected decode error")
	}
}
