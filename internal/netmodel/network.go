// Package netmodel models the inter-datacenter overlay network of the
// paper: datacenters connected by directed overlay links, each link with a
// per-slot capacity and a price per traffic unit, plus the percentile-based
// charging schemes ISPs apply to the per-slot traffic volumes.
//
// Units follow the paper's time-slotted model: time advances in slots of
// equal duration (the ISP's 5-minute accounting interval), sizes and
// volumes are in GB, and link capacities are expressed in GB per slot, so a
// "rate" and a "volume per slot" coincide.
package netmodel

import (
	"fmt"
	"math"
)

// DC identifies a datacenter by index.
type DC int

// Link is a directed overlay link between two datacenters.
type Link struct {
	From, To DC
}

// String renders the link as "i->j".
func (l Link) String() string { return fmt.Sprintf("%d->%d", int(l.From), int(l.To)) }

// Network is a directed inter-datacenter overlay. Links are directed;
// a complete network has n*(n-1) of them. The zero capacity marks a
// non-existent link.
type Network struct {
	n        int
	price    []float64 // dense n*n, price per GB
	capacity []float64 // dense n*n, GB per slot
	exists   []bool
}

// NewNetwork creates a network with n datacenters and no links.
func NewNetwork(n int) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("netmodel: network needs at least one datacenter, got %d", n)
	}
	return &Network{
		n:        n,
		price:    make([]float64, n*n),
		capacity: make([]float64, n*n),
		exists:   make([]bool, n*n),
	}, nil
}

// NumDCs reports the number of datacenters.
func (nw *Network) NumDCs() int { return nw.n }

func (nw *Network) idx(i, j DC) int { return int(i)*nw.n + int(j) }

// SetLink installs (or overwrites) the directed link i->j with the given
// price per GB and capacity in GB/slot.
func (nw *Network) SetLink(i, j DC, price, capacity float64) error {
	if err := nw.checkDC(i); err != nil {
		return err
	}
	if err := nw.checkDC(j); err != nil {
		return err
	}
	if i == j {
		return fmt.Errorf("netmodel: self-link %d->%d not allowed (storage is implicit)", i, j)
	}
	if price < 0 || capacity < 0 {
		return fmt.Errorf("netmodel: negative price %v or capacity %v on %d->%d", price, capacity, i, j)
	}
	k := nw.idx(i, j)
	nw.price[k] = price
	nw.capacity[k] = capacity
	nw.exists[k] = true
	return nil
}

func (nw *Network) checkDC(d DC) error {
	if int(d) < 0 || int(d) >= nw.n {
		return fmt.Errorf("netmodel: datacenter %d out of range [0, %d)", int(d), nw.n)
	}
	return nil
}

// HasLink reports whether the directed link i->j exists.
func (nw *Network) HasLink(i, j DC) bool {
	if i == j || int(i) < 0 || int(j) < 0 || int(i) >= nw.n || int(j) >= nw.n {
		return false
	}
	return nw.exists[nw.idx(i, j)]
}

// Price reports the cost per GB on link i->j. Zero when absent.
func (nw *Network) Price(i, j DC) float64 {
	if !nw.HasLink(i, j) {
		return 0
	}
	return nw.price[nw.idx(i, j)]
}

// Capacity reports the base capacity of link i->j in GB/slot. Zero when
// absent.
func (nw *Network) Capacity(i, j DC) float64 {
	if !nw.HasLink(i, j) {
		return 0
	}
	return nw.capacity[nw.idx(i, j)]
}

// Links invokes fn for every existing directed link.
func (nw *Network) Links(fn func(l Link, price, capacity float64)) {
	for i := 0; i < nw.n; i++ {
		for j := 0; j < nw.n; j++ {
			if i == j || !nw.exists[i*nw.n+j] {
				continue
			}
			k := i*nw.n + j
			fn(Link{From: DC(i), To: DC(j)}, nw.price[k], nw.capacity[k])
		}
	}
}

// NumLinks reports the number of existing directed links.
func (nw *Network) NumLinks() int {
	c := 0
	for _, e := range nw.exists {
		if e {
			c++
		}
	}
	return c
}

// Complete builds a complete directed network where every ordered pair of
// distinct datacenters is connected. price is consulted per directed pair;
// capacity is uniform (the evaluation settings of Sec. VII).
func Complete(n int, price func(i, j DC) float64, capacity float64) (*Network, error) {
	nw, err := NewNetwork(n)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if err := nw.SetLink(DC(i), DC(j), price(DC(i), DC(j)), capacity); err != nil {
				return nil, err
			}
		}
	}
	return nw, nil
}

// File is the paper's four-tuple (s_k, d_k, F_k, T_k) plus bookkeeping: a
// block of data that must travel from Src to Dst within Deadline slots of
// its Release slot. Size is in GB.
type File struct {
	ID       int
	Src, Dst DC
	Size     float64
	Deadline int // maximum tolerable transfer time T_k, in slots (>= 1)
	Release  int // slot at which the file becomes available (t)
}

// Validate checks the file against a network.
func (f File) Validate(nw *Network) error {
	if err := nw.checkDC(f.Src); err != nil {
		return fmt.Errorf("netmodel: file %d source: %w", f.ID, err)
	}
	if err := nw.checkDC(f.Dst); err != nil {
		return fmt.Errorf("netmodel: file %d destination: %w", f.ID, err)
	}
	if f.Src == f.Dst {
		return fmt.Errorf("netmodel: file %d has identical source and destination %d", f.ID, f.Src)
	}
	if f.Size <= 0 || math.IsNaN(f.Size) || math.IsInf(f.Size, 0) {
		return fmt.Errorf("netmodel: file %d has invalid size %v", f.ID, f.Size)
	}
	if f.Deadline < 1 {
		return fmt.Errorf("netmodel: file %d has deadline %d < 1 slot", f.ID, f.Deadline)
	}
	if f.Release < 0 {
		return fmt.Errorf("netmodel: file %d has negative release slot %d", f.ID, f.Release)
	}
	return nil
}

// DesiredRate is the constant transmission rate of the flow-based model
// (Sec. II-B): size divided by maximum tolerable transfer time, in GB/slot.
func (f File) DesiredRate() float64 { return f.Size / float64(f.Deadline) }
