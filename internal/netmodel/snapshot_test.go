package netmodel

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func snapshotNetwork(t *testing.T) *Network {
	t.Helper()
	nw, err := NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []struct {
		from, to DC
		price    float64
	}{{0, 1, 2}, {0, 2, 1}, {2, 1, 1}, {1, 0, 3}} {
		if err := nw.SetLink(l.from, l.to, l.price, 50); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

// TestLedgerSnapshotRoundTrip checks that a ledger survives a JSON
// snapshot/restore cycle bit-exactly: volumes, charged volumes, and the
// recorded extent all match, including awkward float values.
func TestLedgerSnapshotRoundTrip(t *testing.T) {
	nw := snapshotNetwork(t)
	l, err := NewLedger(nw, Charging{Q: 95, PeriodSlots: 12})
	if err != nil {
		t.Fatal(err)
	}
	adds := []struct {
		i, j DC
		slot int
		amt  float64
	}{
		{0, 1, 0, 0.1}, {0, 1, 3, 1.0 / 3.0}, {0, 2, 1, 7e-17}, {2, 1, 5, 41.25},
	}
	for _, a := range adds {
		if err := l.Add(a.i, a.j, a.slot, a.amt); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := json.Marshal(l.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap LedgerSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	l2, err := LedgerFromSnapshot(nw, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(l.volumes, l2.volumes) {
		t.Errorf("restored volumes differ:\n got %v\nwant %v", l2.volumes, l.volumes)
	}
	if l2.maxSlot != l.maxSlot {
		t.Errorf("restored maxSlot %d, want %d", l2.maxSlot, l.maxSlot)
	}
	if got, want := l2.CostPerSlot(), l.CostPerSlot(); got != want {
		t.Errorf("restored CostPerSlot %v, want %v", got, want)
	}
	// Snapshots of identical ledgers are byte-identical (deterministic
	// link order), which keeps snapshot diffing meaningful.
	raw2, err := json.Marshal(l2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(raw2) {
		t.Errorf("re-snapshot differs:\n got %s\nwant %s", raw2, raw)
	}
}

// TestLedgerSnapshotValidation checks the restore guards: unknown links,
// non-finite or negative values, and an understated max_slot are rejected.
func TestLedgerSnapshotValidation(t *testing.T) {
	nw := snapshotNetwork(t)
	cases := []struct {
		name string
		snap LedgerSnapshot
		want string
	}{
		{"nil handled by caller", LedgerSnapshot{Q: 100, PeriodSlots: 4}, ""},
		{"bad scheme", LedgerSnapshot{Q: 0, PeriodSlots: 4}, "percentile"},
		{"unknown link", LedgerSnapshot{Q: 100, PeriodSlots: 4, Links: []LinkSeries{{From: 1, To: 2, Slots: []float64{1}}}}, "non-existent link"},
		{"negative volume", LedgerSnapshot{Q: 100, PeriodSlots: 4, MaxSlot: 0, Links: []LinkSeries{{From: 0, To: 1, Slots: []float64{-1}}}}, "invalid value"},
		{"NaN volume", LedgerSnapshot{Q: 100, PeriodSlots: 4, MaxSlot: 0, Links: []LinkSeries{{From: 0, To: 1, Slots: []float64{math.NaN()}}}}, "invalid value"},
		{"understated max_slot", LedgerSnapshot{Q: 100, PeriodSlots: 4, MaxSlot: 0, Links: []LinkSeries{{From: 0, To: 1, Slots: []float64{1, 2, 3}}}}, "max_slot"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LedgerFromSnapshot(nw, &tc.snap)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want containing %q", err, tc.want)
			}
		})
	}
	if _, err := LedgerFromSnapshot(nw, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

// TestReservationsSnapshotRoundTrip checks the reservation view's
// snapshot/restore and the CopyFrom in-place restore path.
func TestReservationsSnapshotRoundTrip(t *testing.T) {
	nw := snapshotNetwork(t)
	l, err := NewLedger(nw, MaxCharging(8))
	if err != nil {
		t.Fatal(err)
	}
	r := NewReservations(l)
	if err := r.Reserve(0, 1, 2, 12.5); err != nil {
		t.Fatal(err)
	}
	if err := r.Reserve(2, 1, 4, 1.0/3.0); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap ReservationsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	r2 := NewReservations(l)
	if err := r2.RestoreSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.reserved, r2.reserved) || r.maxSlot != r2.maxSlot {
		t.Errorf("restored reservations differ: %v/%d vs %v/%d", r2.reserved, r2.maxSlot, r.reserved, r.maxSlot)
	}

	// CopyFrom restores in place over the same ledger...
	r3 := NewReservations(l)
	if err := r3.Reserve(1, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := r3.CopyFrom(r); err != nil {
		t.Fatal(err)
	}
	// CopyFrom may keep truncated buckets where the source had none (it
	// reuses allocations), so compare the canonical snapshot form.
	if !reflect.DeepEqual(r3.Snapshot(), r.Snapshot()) {
		t.Errorf("CopyFrom did not overwrite buckets: %+v vs %+v", r3.Snapshot(), r.Snapshot())
	}
	// ...and refuses to cross ledgers.
	other, err := NewLedger(nw, MaxCharging(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := NewReservations(other).CopyFrom(r); err == nil {
		t.Error("CopyFrom across ledgers accepted")
	}
}
