package netmodel

import "fmt"

// Fig1Topology builds the motivating three-datacenter example of the
// paper's Fig. 1: D2 must send a 6 MB file to D3 within 15 minutes (three
// 5-minute slots). The direct link D2->D3 costs 10 per unit, while the
// relay route D2->D1 (price 1) and D1->D3 (price 3) is far cheaper.
// Capacities are effectively unconstrained, as in the paper. Sizes are
// modeled in MB (the unit only needs to be consistent).
//
// Datacenter indices: D1 = 0, D2 = 1, D3 = 2.
func Fig1Topology() (*Network, File, error) {
	nw, err := NewNetwork(3)
	if err != nil {
		return nil, File{}, err
	}
	const bigCap = 1000 // "1 Gbps ... not a constraint in this example"
	type spec struct {
		i, j  DC
		price float64
	}
	links := []spec{
		{1, 2, 10}, {2, 1, 10}, // D2 <-> D3
		{1, 0, 1}, {0, 1, 1}, // D2 <-> D1
		{0, 2, 3}, {2, 0, 3}, // D1 <-> D3
	}
	for _, l := range links {
		if err := nw.SetLink(l.i, l.j, l.price, bigCap); err != nil {
			return nil, File{}, err
		}
	}
	file := File{ID: 1, Src: 1, Dst: 2, Size: 6, Deadline: 3, Release: 0}
	return nw, file, nil
}

// Fig3Topology builds the four-datacenter worked example of the paper's
// Fig. 3: all links have capacity 5, and two files must be transferred
// starting at slot t: File 1 from D2 to D4 (size 8, deadline 4) and File 2
// from D1 to D4 (size 10, deadline 2).
//
// The paper's figure labels each link with a price "a" but the text does
// not list the values. The prices below are reverse-engineered so that all
// three numbers reported in the text hold exactly: sending both files
// directly costs 2*11 + 5*6 = 52 per interval; the flow-based optimum
// (File 2 on D1->D4, File 1 forced onto D2->D3->D4) costs
// 5*6 + 2*(2+8) = 50; and the Postcard optimum — File 2 on the direct
// link, File 1 trickled over D2->D1 at 8/3 GB per slot, held at D1, and
// forwarded over the already-paid D1->D4 link in the last two slots —
// costs 5*6 + (8/3)*1 = 32.67. They also satisfy every ordering the text
// states: D1->D4 is File 2's cheapest path (6 < 2+8 < 1+11), D2->D1->D4 is
// File 1's cheapest path (1+6=7), and D2->D3->D4 (2+8=10) is File 1's
// cheapest *available* path once D1->D4 is saturated (direct costs 11).
//
// Datacenter indices: D1 = 0, D2 = 1, D3 = 2, D4 = 3.
func Fig3Topology(release int) (*Network, []File, error) {
	nw, err := NewNetwork(4)
	if err != nil {
		return nil, nil, err
	}
	const linkCap = 5
	type spec struct {
		i, j  DC
		price float64
	}
	links := []spec{
		{0, 1, 1}, {1, 0, 1}, // D1 <-> D2: cheap backbone hop
		{0, 3, 6}, {3, 0, 6}, // D1 <-> D4: cheapest route to D4
		{0, 2, 2}, {2, 0, 2}, // D1 <-> D3
		{1, 3, 11}, {3, 1, 11}, // D2 <-> D4: expensive direct link
		{1, 2, 2}, {2, 1, 2}, // D2 <-> D3
		{2, 3, 8}, {3, 2, 8}, // D3 <-> D4
	}
	for _, l := range links {
		if err := nw.SetLink(l.i, l.j, l.price, linkCap); err != nil {
			return nil, nil, err
		}
	}
	files := []File{
		{ID: 1, Src: 1, Dst: 3, Size: 8, Deadline: 4, Release: release},
		{ID: 2, Src: 0, Dst: 3, Size: 10, Deadline: 2, Release: release},
	}
	return nw, files, nil
}

// Paper evaluation constants (Sec. VII).
const (
	// EvalDCs is the number of datacenters in the paper's simulations.
	EvalDCs = 20
	// EvalSlots is the number of time slots per simulation run.
	EvalSlots = 100
	// EvalRuns is the number of independent runs per setting.
	EvalRuns = 10
	// EvalAmpleCapacity is the per-link capacity of the "sufficient
	// capacity" settings, in GB per slot.
	EvalAmpleCapacity = 100
	// EvalLimitedCapacity is the per-link capacity of the "limited
	// capacity" settings, in GB per slot.
	EvalLimitedCapacity = 30
	// EvalUrgentMaxT and EvalTolerantMaxT are the two deadline regimes.
	EvalUrgentMaxT   = 3
	EvalTolerantMaxT = 8
)

// EvalSetting describes one of the paper's four simulation settings.
type EvalSetting struct {
	Name     string
	Figure   int     // paper figure number (4-7)
	Capacity float64 // GB per slot on every link
	MaxT     int     // maximum tolerable transfer time drawn per file
}

// EvalSettings returns the paper's four evaluation settings in figure
// order.
func EvalSettings() []EvalSetting {
	return []EvalSetting{
		{Name: "ample-urgent", Figure: 4, Capacity: EvalAmpleCapacity, MaxT: EvalUrgentMaxT},
		{Name: "ample-tolerant", Figure: 5, Capacity: EvalAmpleCapacity, MaxT: EvalTolerantMaxT},
		{Name: "limited-urgent", Figure: 6, Capacity: EvalLimitedCapacity, MaxT: EvalUrgentMaxT},
		{Name: "limited-tolerant", Figure: 7, Capacity: EvalLimitedCapacity, MaxT: EvalTolerantMaxT},
	}
}

// SettingByFigure returns the evaluation setting for a paper figure number.
func SettingByFigure(fig int) (EvalSetting, error) {
	for _, s := range EvalSettings() {
		if s.Figure == fig {
			return s, nil
		}
	}
	return EvalSetting{}, fmt.Errorf("netmodel: no evaluation setting for figure %d", fig)
}
