package netmodel

import (
	"fmt"
	"math"
	"sort"
)

// Charging is a q-th percentile charging scheme (Sec. II-A): per-slot
// traffic volumes over a charging period of PeriodSlots slots are sorted
// ascending, and the volume at the ceil(q/100 * PeriodSlots)-th position
// (1-based) is the charged volume. Q = 100 charges the peak, which is the
// scheme the paper's formulation and evaluation use.
type Charging struct {
	Q           float64 // percentile in (0, 100]
	PeriodSlots int     // number of accounting slots in the charging period
}

// MaxCharging is the 100th-percentile scheme over the given period.
func MaxCharging(periodSlots int) Charging {
	return Charging{Q: 100, PeriodSlots: periodSlots}
}

// Validate checks the scheme parameters.
func (c Charging) Validate() error {
	if c.Q <= 0 || c.Q > 100 {
		return fmt.Errorf("netmodel: percentile %v outside (0, 100]", c.Q)
	}
	if c.PeriodSlots < 1 {
		return fmt.Errorf("netmodel: charging period of %d slots", c.PeriodSlots)
	}
	return nil
}

// percentileRank computes the exact 1-based rank ceil(q/100 * period) of a
// q-th percentile over period slots, clamped to [1, period].
//
// The naive float expression math.Ceil(q/100*float64(period)) over-ranks 40
// integer (q, period) combinations in [1,100]x[1,300] — e.g. q=7, period=100
// evaluates 0.07*100 to 7.000000000000001 and rounds the rank up to 8,
// charging the wrong slot's volume. Integral percentiles therefore use exact
// integer arithmetic, and fractional ones an epsilon-guarded ceiling.
func percentileRank(q float64, period int) int {
	var rank int
	if q == math.Trunc(q) {
		rank = (int(q)*period + 99) / 100
	} else {
		v := q / 100 * float64(period)
		rank = int(math.Ceil(v - 1e-9*(1+math.Abs(v))))
	}
	if rank < 1 {
		rank = 1
	}
	if rank > period {
		rank = period
	}
	return rank
}

// ChargedVolume computes the charged volume for one link given the per-slot
// volumes observed so far. Slots beyond len(volumes) and up to PeriodSlots
// count as zero-traffic slots, exactly as an ISP meter would record them.
// When more than PeriodSlots volumes are recorded the period is extended to
// cover them (see Ledger for the ledger-wide consistent treatment).
func (c Charging) ChargedVolume(volumes []float64) float64 {
	return c.chargedVolume(volumes, c.PeriodSlots)
}

// chargedVolume is ChargedVolume over an explicit period, which must be at
// least c.PeriodSlots; recorded slots beyond it still extend it.
//
// The arbitrary-q configuration surface (the postcard-server -q flag, or a
// Charging literal that skipped Validate) can reach this with percentiles
// Validate would reject, so the edges are guarded here rather than assumed
// away: q <= 0 (or NaN) charges nothing — every sample sits at or above the
// 0th percentile, so no slot's volume is attributable — and a ledger with
// fewer recorded samples than the percentile rank pads with the zero-traffic
// slots an ISP meter would have recorded (rank <= zeros charges 0).
func (c Charging) chargedVolume(volumes []float64, period int) float64 {
	if len(volumes) == 0 || c.Q <= 0 || math.IsNaN(c.Q) {
		return 0
	}
	if c.Q >= 100 {
		peak := 0.0
		for _, v := range volumes {
			if v > peak {
				peak = v
			}
		}
		return peak
	}
	if len(volumes) > period {
		period = len(volumes)
	}
	rank := percentileRank(c.Q, period) // 1-based
	zeros := period - len(volumes)
	if rank <= zeros {
		return 0
	}
	sorted := make([]float64, len(volumes))
	copy(sorted, volumes)
	sort.Float64s(sorted)
	return sorted[rank-zeros-1]
}

// Ledger records, per directed link, the traffic volume of every slot, and
// exposes the charging-relevant aggregates the optimizer needs: the charged
// volume so far (X_ij(t-1) in the paper) and per-slot usage.
type Ledger struct {
	nw      *Network
	scheme  Charging
	volumes [][]float64 // [linkIndex][slot], grown on demand
	maxSlot int         // highest slot with recorded traffic, -1 when none
}

// NewLedger creates an empty ledger for the network under the scheme.
func NewLedger(nw *Network, scheme Charging) (*Ledger, error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	n := nw.NumDCs()
	return &Ledger{nw: nw, scheme: scheme, volumes: make([][]float64, n*n), maxSlot: -1}, nil
}

// Network returns the network the ledger charges for.
func (l *Ledger) Network() *Network { return l.nw }

// Scheme returns the charging scheme in force.
func (l *Ledger) Scheme() Charging { return l.scheme }

// Add records amount GB of traffic on link i->j during slot. Negative
// amounts and traffic on non-existent links are rejected.
func (l *Ledger) Add(i, j DC, slot int, amount float64) error {
	if amount < 0 || math.IsNaN(amount) || math.IsInf(amount, 0) {
		return fmt.Errorf("netmodel: invalid traffic amount %v on %d->%d", amount, i, j)
	}
	if !l.nw.HasLink(i, j) {
		return fmt.Errorf("netmodel: traffic on non-existent link %d->%d", i, j)
	}
	if slot < 0 {
		return fmt.Errorf("netmodel: negative slot %d", slot)
	}
	if amount == 0 {
		return nil
	}
	k := l.nw.idx(i, j)
	for len(l.volumes[k]) <= slot {
		l.volumes[k] = append(l.volumes[k], 0)
	}
	l.volumes[k][slot] += amount
	if slot > l.maxSlot {
		l.maxSlot = slot
	}
	return nil
}

// EffectivePeriodSlots reports the charging period actually in force: the
// scheme's PeriodSlots, extended when traffic has been recorded beyond it.
// Recording past the nominal period is permitted (an over-running
// simulation keeps metering) and extends the period uniformly for every
// link, so percentile ranks and TotalCost stay mutually consistent.
func (l *Ledger) EffectivePeriodSlots() int {
	if p := l.maxSlot + 1; p > l.scheme.PeriodSlots {
		return p
	}
	return l.scheme.PeriodSlots
}

// VolumeAt reports the volume recorded on link i->j during slot. It is 0
// for non-existent links.
func (l *Ledger) VolumeAt(i, j DC, slot int) float64 {
	if !l.nw.HasLink(i, j) {
		return 0
	}
	k := l.nw.idx(i, j)
	if slot < 0 || slot >= len(l.volumes[k]) {
		return 0
	}
	return l.volumes[k][slot]
}

// ChargedVolume reports the charged volume of link i->j over the slots
// recorded so far — the running X_ij of the paper under the 100th
// percentile, or the percentile estimate under general q. Non-existent
// links charge 0. The percentile is taken over EffectivePeriodSlots, so a
// link with fewer recorded slots than another is padded with zeros to the
// same ledger-wide period.
func (l *Ledger) ChargedVolume(i, j DC) float64 {
	if !l.nw.HasLink(i, j) {
		return 0
	}
	return l.scheme.chargedVolume(l.volumes[l.nw.idx(i, j)], l.EffectivePeriodSlots())
}

// CostPerSlot reports the cost per time interval with the current charged
// volumes: sum over links of price(i,j) * X_ij. The paper's objective is
// this quantity multiplied by the number of slots in the charging period.
func (l *Ledger) CostPerSlot() float64 {
	total := 0.0
	l.nw.Links(func(link Link, price, _ float64) {
		total += price * l.ChargedVolume(link.From, link.To)
	})
	return total
}

// TotalCost reports the cost over the whole charging period: CostPerSlot
// times EffectivePeriodSlots. When traffic was recorded beyond the nominal
// period the extension is costed consistently with the extended percentile
// ranks ChargedVolume uses, rather than silently mixing an extended
// percentile with the nominal period length.
func (l *Ledger) TotalCost() float64 {
	return l.CostPerSlot() * float64(l.EffectivePeriodSlots())
}

// Residual reports the unreserved capacity of link i->j at slot, in GB:
// base capacity minus the volume already recorded for that slot. It is
// never negative.
func (l *Ledger) Residual(i, j DC, slot int) float64 {
	r := l.nw.Capacity(i, j) - l.VolumeAt(i, j, slot)
	if r < 0 {
		return 0
	}
	return r
}

// PaidHeadroom reports how much more traffic link i->j could carry at slot
// without raising its charge, clamped by the residual capacity. This is the
// "already paid" volume the flow-based decomposition fills first.
//
// Under the 100th percentile this is max(0, X_ij - volume(slot)). Under
// general q the same safety argument generalizes per order statistics:
// raising any slot's volume up to the charged (rank-th) volume X cannot
// move the rank-th order statistic, and raising a slot already strictly
// above X cannot move it either; only growing a slot sitting exactly at X
// risks raising the charge, so such slots report zero headroom.
func (l *Ledger) PaidHeadroom(i, j DC, slot int) float64 {
	if !l.nw.HasLink(i, j) {
		return 0
	}
	charged := l.ChargedVolume(i, j)
	vol := l.VolumeAt(i, j, slot)
	r := l.Residual(i, j, slot)
	var head float64
	switch {
	case vol < charged:
		head = charged - vol
	case vol > charged:
		// Already above the percentile: this slot's volume no longer
		// influences the rank-th order statistic (q < 100 only; under
		// q = 100 the charge is the peak and vol > charged cannot occur).
		head = r
	default:
		head = 0
	}
	if head > r {
		head = r
	}
	return head
}

// Clone returns a deep copy of the ledger, used for what-if evaluation.
func (l *Ledger) Clone() *Ledger {
	cp := &Ledger{nw: l.nw, scheme: l.scheme, volumes: make([][]float64, len(l.volumes)), maxSlot: l.maxSlot}
	for k, vs := range l.volumes {
		if len(vs) == 0 {
			continue
		}
		cp.volumes[k] = append([]float64(nil), vs...)
	}
	return cp
}

// PiecewiseLinearCost is a non-decreasing piecewise-linear cost function
// c(x), the general form of ISP cost functions cited by the paper
// (Goldberg et al.). Breakpoints hold the x-coordinates in increasing
// order; Slopes[i] applies between Breakpoints[i] and Breakpoints[i+1]
// (the last slope extends to infinity). The function starts at c(0) = Base.
type PiecewiseLinearCost struct {
	Base        float64
	Breakpoints []float64 // ascending, first typically 0
	Slopes      []float64 // len == len(Breakpoints), all >= 0
}

// LinearCost is the flat-price special case c(x) = a*x used throughout the
// paper's formulation and evaluation.
func LinearCost(a float64) PiecewiseLinearCost {
	return PiecewiseLinearCost{Breakpoints: []float64{0}, Slopes: []float64{a}}
}

// Validate checks monotonicity requirements.
func (p PiecewiseLinearCost) Validate() error {
	if len(p.Breakpoints) == 0 || len(p.Breakpoints) != len(p.Slopes) {
		return fmt.Errorf("netmodel: piecewise cost needs equal, nonzero breakpoints and slopes")
	}
	for i, s := range p.Slopes {
		if s < 0 {
			return fmt.Errorf("netmodel: negative slope %v at segment %d", s, i)
		}
	}
	for i := 1; i < len(p.Breakpoints); i++ {
		if p.Breakpoints[i] <= p.Breakpoints[i-1] {
			return fmt.Errorf("netmodel: breakpoints not increasing at %d", i)
		}
	}
	return nil
}

// At evaluates c(x). Values below the first breakpoint cost Base.
func (p PiecewiseLinearCost) At(x float64) float64 {
	c := p.Base
	for i, b := range p.Breakpoints {
		if x <= b {
			break
		}
		end := x
		if i+1 < len(p.Breakpoints) && p.Breakpoints[i+1] < x {
			end = p.Breakpoints[i+1]
		}
		c += p.Slopes[i] * (end - b)
	}
	return c
}
