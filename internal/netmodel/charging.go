package netmodel

import (
	"fmt"
	"math"
	"sort"
)

// Charging is a q-th percentile charging scheme (Sec. II-A): per-slot
// traffic volumes over a charging period of PeriodSlots slots are sorted
// ascending, and the volume at the ceil(q/100 * PeriodSlots)-th position
// (1-based) is the charged volume. Q = 100 charges the peak, which is the
// scheme the paper's formulation and evaluation use.
type Charging struct {
	Q           float64 // percentile in (0, 100]
	PeriodSlots int     // number of accounting slots in the charging period
}

// MaxCharging is the 100th-percentile scheme over the given period.
func MaxCharging(periodSlots int) Charging {
	return Charging{Q: 100, PeriodSlots: periodSlots}
}

// Validate checks the scheme parameters.
func (c Charging) Validate() error {
	if c.Q <= 0 || c.Q > 100 {
		return fmt.Errorf("netmodel: percentile %v outside (0, 100]", c.Q)
	}
	if c.PeriodSlots < 1 {
		return fmt.Errorf("netmodel: charging period of %d slots", c.PeriodSlots)
	}
	return nil
}

// ChargedVolume computes the charged volume for one link given the per-slot
// volumes observed so far. Slots beyond len(volumes) and up to PeriodSlots
// count as zero-traffic slots, exactly as an ISP meter would record them.
func (c Charging) ChargedVolume(volumes []float64) float64 {
	if len(volumes) == 0 {
		return 0
	}
	if c.Q >= 100 {
		peak := 0.0
		for _, v := range volumes {
			if v > peak {
				peak = v
			}
		}
		return peak
	}
	period := c.PeriodSlots
	if len(volumes) > period {
		period = len(volumes)
	}
	rank := int(math.Ceil(c.Q / 100 * float64(period))) // 1-based
	zeros := period - len(volumes)
	if rank <= zeros {
		return 0
	}
	sorted := make([]float64, len(volumes))
	copy(sorted, volumes)
	sort.Float64s(sorted)
	return sorted[rank-zeros-1]
}

// Ledger records, per directed link, the traffic volume of every slot, and
// exposes the charging-relevant aggregates the optimizer needs: the charged
// volume so far (X_ij(t-1) in the paper) and per-slot usage.
type Ledger struct {
	nw      *Network
	scheme  Charging
	volumes [][]float64 // [linkIndex][slot], grown on demand
}

// NewLedger creates an empty ledger for the network under the scheme.
func NewLedger(nw *Network, scheme Charging) (*Ledger, error) {
	if err := scheme.Validate(); err != nil {
		return nil, err
	}
	n := nw.NumDCs()
	return &Ledger{nw: nw, scheme: scheme, volumes: make([][]float64, n*n)}, nil
}

// Network returns the network the ledger charges for.
func (l *Ledger) Network() *Network { return l.nw }

// Scheme returns the charging scheme in force.
func (l *Ledger) Scheme() Charging { return l.scheme }

// Add records amount GB of traffic on link i->j during slot. Negative
// amounts and traffic on non-existent links are rejected.
func (l *Ledger) Add(i, j DC, slot int, amount float64) error {
	if amount < 0 || math.IsNaN(amount) || math.IsInf(amount, 0) {
		return fmt.Errorf("netmodel: invalid traffic amount %v on %d->%d", amount, i, j)
	}
	if !l.nw.HasLink(i, j) {
		return fmt.Errorf("netmodel: traffic on non-existent link %d->%d", i, j)
	}
	if slot < 0 {
		return fmt.Errorf("netmodel: negative slot %d", slot)
	}
	if amount == 0 {
		return nil
	}
	k := l.nw.idx(i, j)
	for len(l.volumes[k]) <= slot {
		l.volumes[k] = append(l.volumes[k], 0)
	}
	l.volumes[k][slot] += amount
	return nil
}

// VolumeAt reports the volume recorded on link i->j during slot.
func (l *Ledger) VolumeAt(i, j DC, slot int) float64 {
	k := l.nw.idx(i, j)
	if slot < 0 || slot >= len(l.volumes[k]) {
		return 0
	}
	return l.volumes[k][slot]
}

// ChargedVolume reports the charged volume of link i->j over the slots
// recorded so far — the running X_ij of the paper under the 100th
// percentile, or the percentile estimate under general q.
func (l *Ledger) ChargedVolume(i, j DC) float64 {
	return l.scheme.ChargedVolume(l.volumes[l.nw.idx(i, j)])
}

// CostPerSlot reports the cost per time interval with the current charged
// volumes: sum over links of price(i,j) * X_ij. The paper's objective is
// this quantity multiplied by the number of slots in the charging period.
func (l *Ledger) CostPerSlot() float64 {
	total := 0.0
	l.nw.Links(func(link Link, price, _ float64) {
		total += price * l.ChargedVolume(link.From, link.To)
	})
	return total
}

// TotalCost reports the cost over the whole charging period: CostPerSlot
// times the period length.
func (l *Ledger) TotalCost() float64 {
	return l.CostPerSlot() * float64(l.scheme.PeriodSlots)
}

// Residual reports the unreserved capacity of link i->j at slot, in GB:
// base capacity minus the volume already recorded for that slot. It is
// never negative.
func (l *Ledger) Residual(i, j DC, slot int) float64 {
	r := l.nw.Capacity(i, j) - l.VolumeAt(i, j, slot)
	if r < 0 {
		return 0
	}
	return r
}

// PaidHeadroom reports how much more traffic link i->j could carry at slot
// without raising its 100th-percentile charge: max(0, X_ij - volume(slot)),
// additionally clamped by the residual capacity. This is the "already paid"
// volume the flow-based decomposition fills first.
func (l *Ledger) PaidHeadroom(i, j DC, slot int) float64 {
	head := l.ChargedVolume(i, j) - l.VolumeAt(i, j, slot)
	if head < 0 {
		head = 0
	}
	if r := l.Residual(i, j, slot); head > r {
		head = r
	}
	return head
}

// Clone returns a deep copy of the ledger, used for what-if evaluation.
func (l *Ledger) Clone() *Ledger {
	cp := &Ledger{nw: l.nw, scheme: l.scheme, volumes: make([][]float64, len(l.volumes))}
	for k, vs := range l.volumes {
		if len(vs) == 0 {
			continue
		}
		cp.volumes[k] = append([]float64(nil), vs...)
	}
	return cp
}

// PiecewiseLinearCost is a non-decreasing piecewise-linear cost function
// c(x), the general form of ISP cost functions cited by the paper
// (Goldberg et al.). Breakpoints hold the x-coordinates in increasing
// order; Slopes[i] applies between Breakpoints[i] and Breakpoints[i+1]
// (the last slope extends to infinity). The function starts at c(0) = Base.
type PiecewiseLinearCost struct {
	Base        float64
	Breakpoints []float64 // ascending, first typically 0
	Slopes      []float64 // len == len(Breakpoints), all >= 0
}

// LinearCost is the flat-price special case c(x) = a*x used throughout the
// paper's formulation and evaluation.
func LinearCost(a float64) PiecewiseLinearCost {
	return PiecewiseLinearCost{Breakpoints: []float64{0}, Slopes: []float64{a}}
}

// Validate checks monotonicity requirements.
func (p PiecewiseLinearCost) Validate() error {
	if len(p.Breakpoints) == 0 || len(p.Breakpoints) != len(p.Slopes) {
		return fmt.Errorf("netmodel: piecewise cost needs equal, nonzero breakpoints and slopes")
	}
	for i, s := range p.Slopes {
		if s < 0 {
			return fmt.Errorf("netmodel: negative slope %v at segment %d", s, i)
		}
	}
	for i := 1; i < len(p.Breakpoints); i++ {
		if p.Breakpoints[i] <= p.Breakpoints[i-1] {
			return fmt.Errorf("netmodel: breakpoints not increasing at %d", i)
		}
	}
	return nil
}

// At evaluates c(x). Values below the first breakpoint cost Base.
func (p PiecewiseLinearCost) At(x float64) float64 {
	c := p.Base
	for i, b := range p.Breakpoints {
		if x <= b {
			break
		}
		end := x
		if i+1 < len(p.Breakpoints) && p.Breakpoints[i+1] < x {
			end = p.Breakpoints[i+1]
		}
		c += p.Slopes[i] * (end - b)
	}
	return c
}
