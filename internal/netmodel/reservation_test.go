package netmodel

import (
	"math"
	"testing"
)

func reservationFixture(t *testing.T) (*Ledger, *Reservations) {
	t.Helper()
	nw, err := NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []struct{ from, to DC }{{0, 1}, {1, 2}, {0, 2}} {
		if err := nw.SetLink(l.from, l.to, 2, 50); err != nil {
			t.Fatal(err)
		}
	}
	ledger, err := NewLedger(nw, MaxCharging(8))
	if err != nil {
		t.Fatal(err)
	}
	return ledger, NewReservations(ledger)
}

// TestReservationAccounting pins the basic arithmetic: Available tracks
// Residual minus Reserved, Reserve refuses over-commitment, and Release
// refuses giving back more than is held.
func TestReservationAccounting(t *testing.T) {
	ledger, res := reservationFixture(t)
	if err := ledger.Add(0, 1, 2, 20); err != nil {
		t.Fatal(err)
	}
	if got := res.Available(0, 1, 2); got != 30 {
		t.Fatalf("Available = %v, want 30", got)
	}
	if err := res.Reserve(0, 1, 2, 25); err != nil {
		t.Fatal(err)
	}
	if got := res.Available(0, 1, 2); got != 5 {
		t.Fatalf("Available after reserve = %v, want 5", got)
	}
	if got := res.Reserved(0, 1, 2); got != 25 {
		t.Fatalf("Reserved = %v, want 25", got)
	}
	if err := res.Reserve(0, 1, 2, 6); err == nil {
		t.Fatal("over-reservation accepted")
	}
	if err := res.Release(0, 1, 2, 26); err == nil {
		t.Fatal("over-release accepted")
	}
	if err := res.Release(0, 1, 2, 10); err != nil {
		t.Fatal(err)
	}
	if got := res.Reserved(0, 1, 2); got != 15 {
		t.Fatalf("Reserved after partial release = %v, want 15", got)
	}
	if err := res.Reserve(0, 2, 0, -1); err == nil {
		t.Fatal("negative reservation accepted")
	}
	if err := res.Reserve(1, 0, 0, 1); err == nil {
		t.Fatal("reservation on non-existent link accepted")
	}
}

// TestReservationReleaseSnapsDust is the satellite fix test: a republish
// that shrinks a file's reservation mid-horizon releases it in many small
// action-sized pieces, and the float dust left by the subtraction chain
// must snap to exactly zero instead of lingering as phantom reserved
// capacity that blocks future admissions.
func TestReservationReleaseSnapsDust(t *testing.T) {
	_, res := reservationFixture(t)
	parts := []float64{10.1, 7.3, 2.6, 13.7, 16.3}
	total := 0.0
	for _, p := range parts {
		if err := res.Reserve(0, 1, 0, p); err != nil {
			t.Fatal(err)
		}
		total += p
	}
	// Release in a different decomposition, as a republished plan would.
	for i := 0; i < 10; i++ {
		if err := res.Release(0, 1, 0, total/10); err != nil {
			t.Fatalf("release piece %d: %v", i, err)
		}
	}
	if got := res.Reserved(0, 1, 0); got != 0 {
		t.Fatalf("Reserved after full release = %g, want exactly 0", got)
	}
	// The full capacity must be reservable again.
	if err := res.Reserve(0, 1, 0, 50); err != nil {
		t.Fatalf("full capacity not reservable after release cycle: %v", err)
	}
}

// TestReservationBeyondNominalPeriod covers the ledger-extension
// interaction (the off-by-one-prone path per PR 2): reservations at slots
// beyond the nominal charging period must account correctly without
// extending the ledger's effective period — reservations are provisional
// and never metered.
func TestReservationBeyondNominalPeriod(t *testing.T) {
	ledger, res := reservationFixture(t)
	if got := ledger.EffectivePeriodSlots(); got != 8 {
		t.Fatalf("EffectivePeriodSlots = %d, want 8", got)
	}
	if err := res.Reserve(0, 1, 11, 40); err != nil {
		t.Fatal(err)
	}
	if got := ledger.EffectivePeriodSlots(); got != 8 {
		t.Errorf("reservation extended the charging period to %d slots", got)
	}
	if got := res.Extent(); got != 12 {
		t.Errorf("Extent = %d, want 12", got)
	}
	if got := res.Available(0, 1, 11); got != 10 {
		t.Errorf("Available beyond period = %v, want 10", got)
	}
	if err := res.Release(0, 1, 11, 40); err != nil {
		t.Fatal(err)
	}
	// Extent only grows, so peak computations stay comparable across the
	// reserve/release cycle.
	if got := res.Extent(); got != 12 {
		t.Errorf("Extent shrank to %d after release", got)
	}
}

// TestFreeHeadroomTracksReservations checks the q<100-relevant surface:
// FreeHeadroom is PaidHeadroom net of reservations, clamped at zero, and
// never exceeds Available.
func TestFreeHeadroomTracksReservations(t *testing.T) {
	ledger, res := reservationFixture(t)
	// Build headroom: slot 0 carries 30, so X = 30 and slot 1 has 30 free.
	if err := ledger.Add(0, 1, 0, 30); err != nil {
		t.Fatal(err)
	}
	if got := res.FreeHeadroom(0, 1, 1); got != 30 {
		t.Fatalf("FreeHeadroom = %v, want 30", got)
	}
	if err := res.Reserve(0, 1, 1, 12); err != nil {
		t.Fatal(err)
	}
	if got := res.FreeHeadroom(0, 1, 1); got != 18 {
		t.Fatalf("FreeHeadroom after reserve = %v, want 18", got)
	}
	if err := res.Reserve(0, 1, 1, 25); err != nil {
		t.Fatal(err)
	}
	if got := res.FreeHeadroom(0, 1, 1); got != 0 {
		t.Fatalf("FreeHeadroom over-reserved = %v, want 0 (clamped)", got)
	}
	if av, fh := res.Available(0, 1, 1), res.FreeHeadroom(0, 1, 1); fh > av {
		t.Fatalf("FreeHeadroom %v exceeds Available %v", fh, av)
	}
}

// TestReservationClone checks deep-copy independence.
func TestReservationClone(t *testing.T) {
	_, res := reservationFixture(t)
	if err := res.Reserve(0, 1, 3, 10); err != nil {
		t.Fatal(err)
	}
	cp := res.Clone()
	if err := cp.Reserve(0, 1, 3, 5); err != nil {
		t.Fatal(err)
	}
	if got := res.Reserved(0, 1, 3); got != 10 {
		t.Errorf("original mutated through clone: %v", got)
	}
	if got := cp.Reserved(0, 1, 3); math.Abs(got-15) > 1e-12 {
		t.Errorf("clone Reserved = %v, want 15", got)
	}
}
