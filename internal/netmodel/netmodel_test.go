package netmodel

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewNetworkRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := NewNetwork(n); err == nil {
			t.Errorf("NewNetwork(%d): expected error", n)
		}
	}
}

func TestSetLinkValidation(t *testing.T) {
	nw, err := NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(0, 0, 1, 1); err == nil {
		t.Error("expected error for self-link")
	}
	if err := nw.SetLink(0, 5, 1, 1); err == nil {
		t.Error("expected error for out-of-range DC")
	}
	if err := nw.SetLink(0, 1, -1, 1); err == nil {
		t.Error("expected error for negative price")
	}
	if err := nw.SetLink(0, 1, 1, -1); err == nil {
		t.Error("expected error for negative capacity")
	}
	if err := nw.SetLink(0, 1, 2.5, 7); err != nil {
		t.Fatalf("SetLink: %v", err)
	}
	if !nw.HasLink(0, 1) || nw.HasLink(1, 0) {
		t.Error("link direction not respected")
	}
	if got := nw.Price(0, 1); got != 2.5 {
		t.Errorf("Price = %v, want 2.5", got)
	}
	if got := nw.Capacity(0, 1); got != 7 {
		t.Errorf("Capacity = %v, want 7", got)
	}
	if got := nw.Price(1, 0); got != 0 {
		t.Errorf("absent link price = %v, want 0", got)
	}
}

func TestCompleteNetwork(t *testing.T) {
	nw, err := Complete(5, func(i, j DC) float64 { return float64(i*10) + float64(j) }, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := nw.NumLinks(); got != 20 {
		t.Errorf("NumLinks = %d, want 20", got)
	}
	if got := nw.Price(3, 1); got != 31 {
		t.Errorf("Price(3,1) = %v, want 31", got)
	}
	count := 0
	nw.Links(func(l Link, price, capacity float64) {
		if l.From == l.To {
			t.Errorf("self link %v emitted", l)
		}
		if capacity != 30 {
			t.Errorf("capacity = %v, want 30", capacity)
		}
		count++
	})
	if count != 20 {
		t.Errorf("Links visited %d, want 20", count)
	}
}

func TestFileValidate(t *testing.T) {
	nw, err := Complete(3, func(_, _ DC) float64 { return 1 }, 10)
	if err != nil {
		t.Fatal(err)
	}
	valid := File{ID: 1, Src: 0, Dst: 2, Size: 5, Deadline: 2, Release: 0}
	if err := valid.Validate(nw); err != nil {
		t.Errorf("valid file rejected: %v", err)
	}
	bad := []File{
		{ID: 2, Src: 0, Dst: 0, Size: 5, Deadline: 2},
		{ID: 3, Src: 0, Dst: 2, Size: -1, Deadline: 2},
		{ID: 4, Src: 0, Dst: 2, Size: 5, Deadline: 0},
		{ID: 5, Src: 0, Dst: 9, Size: 5, Deadline: 2},
		{ID: 6, Src: 0, Dst: 2, Size: 5, Deadline: 2, Release: -1},
		{ID: 7, Src: 0, Dst: 2, Size: math.NaN(), Deadline: 2},
	}
	for _, f := range bad {
		if err := f.Validate(nw); err == nil {
			t.Errorf("file %d: expected validation error", f.ID)
		}
	}
}

func TestDesiredRate(t *testing.T) {
	f := File{Size: 6, Deadline: 3}
	if got := f.DesiredRate(); got != 2 {
		t.Errorf("DesiredRate = %v, want 2", got)
	}
}

func TestCharging100thIsRunningMax(t *testing.T) {
	c := MaxCharging(100)
	vols := []float64{3, 7, 2, 7, 1}
	if got := c.ChargedVolume(vols); got != 7 {
		t.Errorf("charged = %v, want 7", got)
	}
	if got := c.ChargedVolume(nil); got != 0 {
		t.Errorf("charged empty = %v, want 0", got)
	}
}

func TestChargingPercentileDropsPeaks(t *testing.T) {
	// 10-slot period, 90th percentile: the single largest slot is free.
	c := Charging{Q: 90, PeriodSlots: 10}
	vols := []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 100}
	if got := c.ChargedVolume(vols); got != 1 {
		t.Errorf("charged = %v, want 1 (peak dropped)", got)
	}
}

func TestChargingPercentileZeroPadding(t *testing.T) {
	// Only 2 of 10 slots have traffic; the 50th percentile lands on a
	// zero-padded slot.
	c := Charging{Q: 50, PeriodSlots: 10}
	if got := c.ChargedVolume([]float64{5, 9}); got != 0 {
		t.Errorf("charged = %v, want 0", got)
	}
	// 95th percentile of 10 slots is the 10th sorted value: the max here.
	c = Charging{Q: 95, PeriodSlots: 10}
	if got := c.ChargedVolume([]float64{5, 9}); got != 9 {
		t.Errorf("charged = %v, want 9", got)
	}
}

func TestChargingMatchesNaiveSort(t *testing.T) {
	f := func(seed int64, qRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := math.Mod(math.Abs(qRaw), 100)
		if q == 0 {
			q = 100
		}
		period := 1 + rng.Intn(30)
		used := rng.Intn(period + 1)
		vols := make([]float64, used)
		for i := range vols {
			vols[i] = rng.Float64() * 50
		}
		c := Charging{Q: q, PeriodSlots: period}
		got := c.ChargedVolume(vols)
		// Reference: pad, sort, index at the exact rank ceil(q/100*period),
		// computed with rational arithmetic so the reference itself cannot
		// suffer the float over-ranking bug percentileRank guards against.
		padded := make([]float64, period)
		copy(padded, vols)
		sort.Float64s(padded)
		want := padded[exactRankRef(q, period)-1]
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestChargingMonotoneInTraffic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		period := 1 + rng.Intn(20)
		vols := make([]float64, rng.Intn(period+1))
		for i := range vols {
			vols[i] = rng.Float64() * 10
		}
		c := Charging{Q: 1 + 99*rng.Float64(), PeriodSlots: period}
		before := c.ChargedVolume(vols)
		// Adding traffic to any slot can never reduce the charge.
		if len(vols) == 0 {
			return true
		}
		k := rng.Intn(len(vols))
		vols[k] += rng.Float64() * 10
		after := c.ChargedVolume(vols)
		return after >= before-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func newTestLedger(t *testing.T) *Ledger {
	t.Helper()
	nw, err := Complete(3, func(_, _ DC) float64 { return 2 }, 10)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLedger(nw, MaxCharging(100))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestLedgerAddAndCharge(t *testing.T) {
	l := newTestLedger(t)
	if err := l.Add(0, 1, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(0, 1, 2, 6); err != nil {
		t.Fatal(err)
	}
	if got := l.VolumeAt(0, 1, 2); got != 6 {
		t.Errorf("VolumeAt = %v, want 6", got)
	}
	if got := l.ChargedVolume(0, 1); got != 6 {
		t.Errorf("ChargedVolume = %v, want 6", got)
	}
	if got := l.ChargedVolume(1, 0); got != 0 {
		t.Errorf("reverse link charged = %v, want 0", got)
	}
	// cost per slot: 2 * 6 on one link only.
	if got := l.CostPerSlot(); math.Abs(got-12) > 1e-12 {
		t.Errorf("CostPerSlot = %v, want 12", got)
	}
	if got := l.TotalCost(); math.Abs(got-1200) > 1e-12 {
		t.Errorf("TotalCost = %v, want 1200", got)
	}
}

func TestLedgerRejectsBadInput(t *testing.T) {
	l := newTestLedger(t)
	if err := l.Add(0, 0, 0, 1); err == nil {
		t.Error("expected error for self-link traffic")
	}
	if err := l.Add(0, 1, -1, 1); err == nil {
		t.Error("expected error for negative slot")
	}
	if err := l.Add(0, 1, 0, -1); err == nil {
		t.Error("expected error for negative amount")
	}
	if err := l.Add(0, 1, 0, math.Inf(1)); err == nil {
		t.Error("expected error for infinite amount")
	}
}

func TestLedgerResidualAndHeadroom(t *testing.T) {
	l := newTestLedger(t) // capacity 10 per link
	if err := l.Add(0, 1, 0, 7); err != nil {
		t.Fatal(err)
	}
	if got := l.Residual(0, 1, 0); got != 3 {
		t.Errorf("Residual slot 0 = %v, want 3", got)
	}
	if got := l.Residual(0, 1, 1); got != 10 {
		t.Errorf("Residual slot 1 = %v, want 10", got)
	}
	// X = 7; slot 1 has no traffic, so 7 units ride free there.
	if got := l.PaidHeadroom(0, 1, 1); got != 7 {
		t.Errorf("PaidHeadroom slot 1 = %v, want 7", got)
	}
	// Slot 0 is at the peak: no free headroom.
	if got := l.PaidHeadroom(0, 1, 0); got != 0 {
		t.Errorf("PaidHeadroom slot 0 = %v, want 0", got)
	}
}

func TestLedgerClone(t *testing.T) {
	l := newTestLedger(t)
	if err := l.Add(0, 1, 0, 5); err != nil {
		t.Fatal(err)
	}
	cp := l.Clone()
	if err := cp.Add(0, 1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if got := l.VolumeAt(0, 1, 0); got != 5 {
		t.Errorf("original mutated by clone: %v", got)
	}
	if got := cp.VolumeAt(0, 1, 0); got != 10 {
		t.Errorf("clone VolumeAt = %v, want 10", got)
	}
}

func TestPiecewiseLinearCost(t *testing.T) {
	p := PiecewiseLinearCost{
		Base:        5,
		Breakpoints: []float64{0, 10, 20},
		Slopes:      []float64{1, 2, 0.5},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0, 5}, {5, 10}, {10, 15}, {15, 25}, {20, 35}, {30, 40},
	}
	for _, c := range cases {
		if got := p.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestPiecewiseLinearCostValidate(t *testing.T) {
	bad := []PiecewiseLinearCost{
		{},
		{Breakpoints: []float64{0, 1}, Slopes: []float64{1}},
		{Breakpoints: []float64{0, 0}, Slopes: []float64{1, 1}},
		{Breakpoints: []float64{0, 1}, Slopes: []float64{1, -1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	if LinearCost(3).Validate() != nil {
		t.Error("LinearCost should validate")
	}
	if got := LinearCost(3).At(7); got != 21 {
		t.Errorf("LinearCost(3).At(7) = %v, want 21", got)
	}
}

func TestFig1Topology(t *testing.T) {
	nw, file, err := Fig1Topology()
	if err != nil {
		t.Fatal(err)
	}
	if err := file.Validate(nw); err != nil {
		t.Fatal(err)
	}
	if got := nw.Price(1, 2); got != 10 {
		t.Errorf("direct price = %v, want 10", got)
	}
	if got := nw.Price(1, 0) + nw.Price(0, 2); got != 4 {
		t.Errorf("relay price = %v, want 4", got)
	}
}

func TestFig3Topology(t *testing.T) {
	nw, files, err := Fig3Topology(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files = %d, want 2", len(files))
	}
	for _, f := range files {
		if err := f.Validate(nw); err != nil {
			t.Errorf("file %d: %v", f.ID, err)
		}
		if f.Release != 3 {
			t.Errorf("file %d release = %d, want 3", f.ID, f.Release)
		}
	}
	// Desired rates from the paper: r1 = 2, r2 = 5.
	if r := files[0].DesiredRate(); r != 2 {
		t.Errorf("r1 = %v, want 2", r)
	}
	if r := files[1].DesiredRate(); r != 5 {
		t.Errorf("r2 = %v, want 5", r)
	}
	// Direct transfer of both files costs 52 per interval.
	direct := nw.Price(1, 3)*files[0].DesiredRate() + nw.Price(0, 3)*files[1].DesiredRate()
	if math.Abs(direct-52) > 1e-12 {
		t.Errorf("direct cost = %v, want 52", direct)
	}
	// Flow-based: file 2 on D1->D4, file 1 on D2->D3->D4 costs 50.
	flowCost := nw.Price(0, 3)*5 + (nw.Price(1, 2)+nw.Price(2, 3))*2
	if math.Abs(flowCost-50) > 1e-12 {
		t.Errorf("flow-based cost = %v, want 50", flowCost)
	}
}

func TestEvalSettings(t *testing.T) {
	settings := EvalSettings()
	if len(settings) != 4 {
		t.Fatalf("settings = %d, want 4", len(settings))
	}
	for _, s := range settings {
		got, err := SettingByFigure(s.Figure)
		if err != nil {
			t.Errorf("SettingByFigure(%d): %v", s.Figure, err)
		}
		if got != s {
			t.Errorf("SettingByFigure(%d) = %+v, want %+v", s.Figure, got, s)
		}
	}
	if _, err := SettingByFigure(99); err == nil {
		t.Error("expected error for unknown figure")
	}
}
