package netmodel

import (
	"fmt"
	"math"
)

// This file is the snapshot serialization layer of the netmodel state the
// postcard-server daemon persists across restarts: the charging ledger's
// per-link volume series and the admission tier's reservation buckets.
// Snapshots are plain JSON-marshalable values; float64 series round-trip
// bit-exactly through encoding/json (shortest round-trip formatting), which
// is what lets a restored server resume its remaining horizon with plans
// identical to an uninterrupted run.

// LinkSeries is one directed link's per-slot float series inside a
// snapshot (traffic volumes for a ledger, reserved capacity for a
// reservation view). Slots[k] is the value at absolute slot k.
type LinkSeries struct {
	From  int       `json:"from"`
	To    int       `json:"to"`
	Slots []float64 `json:"slots"`
}

// LedgerSnapshot is the serializable state of a Ledger: the charging
// scheme plus every link's recorded volume series. The network itself is
// not included — it is restored separately (e.g. from an Instance) and
// handed to LedgerFromSnapshot.
type LedgerSnapshot struct {
	Q           float64      `json:"q"`
	PeriodSlots int          `json:"period_slots"`
	MaxSlot     int          `json:"max_slot"`
	Links       []LinkSeries `json:"links,omitempty"`
}

// Snapshot captures the ledger's full state. Links are emitted in
// ascending (from, to) order, so identical ledgers produce byte-identical
// snapshots.
func (l *Ledger) Snapshot() *LedgerSnapshot {
	snap := &LedgerSnapshot{Q: l.scheme.Q, PeriodSlots: l.scheme.PeriodSlots, MaxSlot: l.maxSlot}
	snap.Links = seriesOf(l.nw, l.volumes)
	return snap
}

// LedgerFromSnapshot rebuilds a ledger over nw from a snapshot captured by
// Ledger.Snapshot. The network must contain every link the snapshot
// references; volumes are restored bit-exactly.
func LedgerFromSnapshot(nw *Network, snap *LedgerSnapshot) (*Ledger, error) {
	if snap == nil {
		return nil, fmt.Errorf("netmodel: nil ledger snapshot")
	}
	l, err := NewLedger(nw, Charging{Q: snap.Q, PeriodSlots: snap.PeriodSlots})
	if err != nil {
		return nil, err
	}
	maxLen, err := restoreSeries(nw, l.volumes, snap.Links, "ledger")
	if err != nil {
		return nil, err
	}
	if snap.MaxSlot < maxLen-1 {
		return nil, fmt.Errorf("netmodel: ledger snapshot max_slot %d below recorded slot %d", snap.MaxSlot, maxLen-1)
	}
	l.maxSlot = snap.MaxSlot
	return l, nil
}

// ReservationsSnapshot is the serializable state of a Reservations view.
type ReservationsSnapshot struct {
	MaxSlot int          `json:"max_slot"`
	Links   []LinkSeries `json:"links,omitempty"`
}

// Snapshot captures the reservation buckets and extent, in ascending
// (from, to) link order.
func (r *Reservations) Snapshot() *ReservationsSnapshot {
	return &ReservationsSnapshot{MaxSlot: r.maxSlot, Links: seriesOf(r.ledger.nw, r.reserved)}
}

// RestoreSnapshot overwrites the reservation view's buckets with the
// snapshot's. The underlying ledger is unchanged; the snapshot must only
// reference links of its network and non-negative amounts.
func (r *Reservations) RestoreSnapshot(snap *ReservationsSnapshot) error {
	if snap == nil {
		return fmt.Errorf("netmodel: nil reservations snapshot")
	}
	fresh := make([][]float64, len(r.reserved))
	maxLen, err := restoreSeries(r.ledger.nw, fresh, snap.Links, "reservations")
	if err != nil {
		return err
	}
	if snap.MaxSlot < maxLen-1 {
		return fmt.Errorf("netmodel: reservations snapshot max_slot %d below recorded slot %d", snap.MaxSlot, maxLen-1)
	}
	r.reserved = fresh
	r.maxSlot = snap.MaxSlot
	return nil
}

// CopyFrom overwrites r's buckets and extent with a deep copy of o's.
// Both views must sit over the same ledger; the admission controller uses
// this to restore a pre-swap state after a failed republish, so a batch's
// reservations always match its recorded plan exactly.
func (r *Reservations) CopyFrom(o *Reservations) error {
	if r.ledger != o.ledger {
		return fmt.Errorf("netmodel: CopyFrom across different ledgers")
	}
	for k, vs := range o.reserved {
		if len(vs) == 0 {
			r.reserved[k] = r.reserved[k][:0]
			continue
		}
		r.reserved[k] = append(r.reserved[k][:0], vs...)
	}
	r.maxSlot = o.maxSlot
	return nil
}

// seriesOf converts a dense [linkIndex][slot] table into the snapshot's
// sparse link list, ascending (from, to).
func seriesOf(nw *Network, table [][]float64) []LinkSeries {
	var out []LinkSeries
	for i := 0; i < nw.n; i++ {
		for j := 0; j < nw.n; j++ {
			vs := table[i*nw.n+j]
			if len(vs) == 0 {
				continue
			}
			out = append(out, LinkSeries{From: i, To: j, Slots: append([]float64(nil), vs...)})
		}
	}
	return out
}

// restoreSeries writes the snapshot's link list back into a dense table,
// validating links against the network and values for finiteness and sign.
// It reports the longest restored series (0 when none).
func restoreSeries(nw *Network, table [][]float64, links []LinkSeries, what string) (int, error) {
	maxLen := 0
	for _, ls := range links {
		if !nw.HasLink(DC(ls.From), DC(ls.To)) {
			return 0, fmt.Errorf("netmodel: %s snapshot references non-existent link %d->%d", what, ls.From, ls.To)
		}
		for _, v := range ls.Slots {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("netmodel: %s snapshot has invalid value %g on %d->%d", what, v, ls.From, ls.To)
			}
		}
		table[nw.idx(DC(ls.From), DC(ls.To))] = append([]float64(nil), ls.Slots...)
		if len(ls.Slots) > maxLen {
			maxLen = len(ls.Slots)
		}
	}
	return maxLen, nil
}
