package netmodel

import (
	"encoding/json"
	"fmt"
	"io"
)

// Instance is the JSON-serializable description of one offline problem:
// a network plus a set of files. It is the interchange format of
// cmd/postcard-solve and of test fixtures.
type Instance struct {
	Datacenters int            `json:"datacenters"`
	Links       []InstanceLink `json:"links"`
	Files       []InstanceFile `json:"files"`
}

// InstanceLink describes one directed link.
type InstanceLink struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Price    float64 `json:"price"`
	Capacity float64 `json:"capacity"`
}

// InstanceFile describes one file (the paper's four-tuple plus release).
type InstanceFile struct {
	ID       int     `json:"id"`
	Src      int     `json:"src"`
	Dst      int     `json:"dst"`
	Size     float64 `json:"size"`
	Deadline int     `json:"deadline"`
	Release  int     `json:"release"`
}

// ReadInstance decodes an Instance from JSON.
func ReadInstance(r io.Reader) (*Instance, error) {
	var inst Instance
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&inst); err != nil {
		return nil, fmt.Errorf("netmodel: decoding instance: %w", err)
	}
	return &inst, nil
}

// WriteJSON encodes the instance with indentation.
func (inst *Instance) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(inst); err != nil {
		return fmt.Errorf("netmodel: encoding instance: %w", err)
	}
	return nil
}

// Build materializes the instance into a Network and validated Files.
func (inst *Instance) Build() (*Network, []File, error) {
	nw, err := NewNetwork(inst.Datacenters)
	if err != nil {
		return nil, nil, err
	}
	for _, l := range inst.Links {
		if err := nw.SetLink(DC(l.From), DC(l.To), l.Price, l.Capacity); err != nil {
			return nil, nil, err
		}
	}
	files := make([]File, 0, len(inst.Files))
	for _, f := range inst.Files {
		file := File{
			ID:       f.ID,
			Src:      DC(f.Src),
			Dst:      DC(f.Dst),
			Size:     f.Size,
			Deadline: f.Deadline,
			Release:  f.Release,
		}
		if err := file.Validate(nw); err != nil {
			return nil, nil, err
		}
		files = append(files, file)
	}
	seen := make(map[int]bool, len(files))
	for _, f := range files {
		if seen[f.ID] {
			return nil, nil, fmt.Errorf("netmodel: duplicate file ID %d in instance", f.ID)
		}
		seen[f.ID] = true
	}
	return nw, files, nil
}

// InstanceOf captures an existing network and file set as an Instance.
func InstanceOf(nw *Network, files []File) *Instance {
	inst := &Instance{Datacenters: nw.NumDCs()}
	nw.Links(func(l Link, price, capacity float64) {
		inst.Links = append(inst.Links, InstanceLink{
			From: int(l.From), To: int(l.To), Price: price, Capacity: capacity,
		})
	})
	for _, f := range files {
		inst.Files = append(inst.Files, InstanceFile{
			ID: f.ID, Src: int(f.Src), Dst: int(f.Dst),
			Size: f.Size, Deadline: f.Deadline, Release: f.Release,
		})
	}
	return inst
}
