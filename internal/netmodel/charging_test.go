package netmodel

import (
	"math"
	"math/big"
	"math/rand"
	"sort"
	"testing"
)

// exactRankRef computes the 1-based rank ceil(q/100 * period) with rational
// arithmetic, independently of percentileRank's float paths. It applies the
// same documented guard band for fractional q — values within
// 1e-9*(1+v) of an integer count as that integer — which for integral q is
// far below the 1/100 granularity of the exact value and therefore inert.
func exactRankRef(q float64, period int) int {
	v := new(big.Rat).Mul(new(big.Rat).SetFloat64(q), big.NewRat(int64(period), 100))
	guard := new(big.Rat).Mul(big.NewRat(1, 1e9), new(big.Rat).Add(big.NewRat(1, 1), v))
	v.Sub(v, guard)
	rank := new(big.Int).Div(v.Num(), v.Denom()) // floor (denominator > 0)
	if new(big.Int).Mul(rank, v.Denom()).Cmp(v.Num()) != 0 {
		rank.Add(rank, big.NewInt(1)) // ceil
	}
	k := int(rank.Int64())
	if k < 1 {
		k = 1
	}
	if k > period {
		k = period
	}
	return k
}

// TestPercentileRankExactSweep checks percentileRank against exact rational
// arithmetic for every integer (q, period) in [1,100] x [1,300] — the grid
// over which the former float expression math.Ceil(q/100*period) over-ranks
// exactly 40 combinations — and documents the bug by asserting the naive
// formula really does disagree on those 40, including (7,100), (14,50) and
// (28,25).
func TestPercentileRankExactSweep(t *testing.T) {
	naiveMismatch := map[[2]int]bool{}
	for q := 1; q <= 100; q++ {
		for period := 1; period <= 300; period++ {
			want := (q*period + 99) / 100 // exact integer ceil(q*period/100)
			if want < 1 {
				want = 1
			}
			if ref := exactRankRef(float64(q), period); ref != want {
				t.Fatalf("reference disagrees with integer ceil at q=%d period=%d: %d vs %d", q, period, ref, want)
			}
			if got := percentileRank(float64(q), period); got != want {
				t.Errorf("percentileRank(%d, %d) = %d, want %d", q, period, got, want)
			}
			naive := int(math.Ceil(float64(q) / 100 * float64(period)))
			if naive != want {
				naiveMismatch[[2]int{q, period}] = true
			}
		}
	}
	if len(naiveMismatch) != 40 {
		t.Errorf("naive float formula mismatches on %d pairs, want 40", len(naiveMismatch))
	}
	for _, pair := range [][2]int{{7, 100}, {14, 50}, {28, 25}} {
		if !naiveMismatch[pair] {
			t.Errorf("expected naive formula to over-rank at (q=%d, period=%d)", pair[0], pair[1])
		}
	}
}

// TestChargedVolumeRankRegression pins the end-to-end effect of the rank fix:
// at (q=7, period=100) with 100 distinct volumes the charge is the 7th
// smallest, not the 8th the buggy ceiling selected.
func TestChargedVolumeRankRegression(t *testing.T) {
	cases := []struct {
		q      float64
		period int
	}{
		{7, 100}, {14, 50}, {28, 25}, {55, 100}, {56, 200},
	}
	for _, c := range cases {
		vols := make([]float64, c.period)
		for i := range vols {
			vols[i] = float64(i + 1) // sorted: padded[k-1] = k
		}
		rng := rand.New(rand.NewSource(42))
		rng.Shuffle(len(vols), func(i, j int) { vols[i], vols[j] = vols[j], vols[i] })
		want := float64((int(c.q)*c.period + 99) / 100)
		got := Charging{Q: c.q, PeriodSlots: c.period}.ChargedVolume(vols)
		if got != want {
			t.Errorf("q=%v period=%d: charged %v, want %v", c.q, c.period, got, want)
		}
	}
}

// TestPercentileRankFractional spot-checks fractional percentiles, including
// values sitting exactly on and just off integer ranks.
func TestPercentileRankFractional(t *testing.T) {
	cases := []struct {
		q      float64
		period int
		want   int
	}{
		{12.5, 8, 1},   // exact integer product: 1.0
		{12.5, 16, 2},  // exact: 2.0
		{37.5, 8, 3},   // exact: 3.0
		{50.5, 10, 6},  // 5.05 -> 6
		{99.9, 10, 10}, // 9.99 -> 10
		{0.1, 300, 1},  // 0.3 -> 1
		{33.4, 3, 2},   // 1.002 -> 2
		{66.7, 3, 3},   // 2.001 -> 3
		{0.001, 5, 1},  // clamps up to 1
		{99.99, 1, 1},  // clamps down to period
	}
	for _, c := range cases {
		if got := percentileRank(c.q, c.period); got != c.want {
			t.Errorf("percentileRank(%v, %d) = %d, want %d", c.q, c.period, got, c.want)
		}
		if ref := exactRankRef(c.q, c.period); ref != c.want {
			t.Errorf("exactRankRef(%v, %d) = %d, want %d", c.q, c.period, ref, c.want)
		}
	}
}

// TestLedgerPeriodExtension pins the chosen over-period semantics: recording
// traffic beyond the nominal charging period extends the period uniformly
// for every link, and TotalCost multiplies by the same extended period the
// percentile ranks use.
func TestLedgerPeriodExtension(t *testing.T) {
	nw, err := Complete(3, func(_, _ DC) float64 { return 2 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLedger(nw, Charging{Q: 100, PeriodSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := l.EffectivePeriodSlots(); got != 2 {
		t.Fatalf("empty ledger period = %d, want nominal 2", got)
	}
	if err := l.Add(0, 1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if got := l.EffectivePeriodSlots(); got != 2 {
		t.Fatalf("in-period recording changed period to %d", got)
	}
	// Slot 4 is beyond the 2-slot nominal period: the period extends to 5.
	if err := l.Add(0, 1, 4, 7); err != nil {
		t.Fatal(err)
	}
	if got := l.EffectivePeriodSlots(); got != 5 {
		t.Fatalf("extended period = %d, want 5", got)
	}
	// TotalCost = CostPerSlot * extended period, not the nominal 2.
	wantCost := 2.0 * 7 * 5 // price * peak * extended slots
	if got := l.TotalCost(); math.Abs(got-wantCost) > 1e-12 {
		t.Errorf("TotalCost = %v, want %v", got, wantCost)
	}
	// The extension is ledger-wide: a percentile link with only in-period
	// traffic is padded to the same extended period. Q=75 over the nominal
	// 2 slots has rank 2, charging the one busy slot; over the extended 5
	// slots the rank is 4, which lands on a padded zero.
	lp, err := NewLedger(nw, Charging{Q: 75, PeriodSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := lp.Add(1, 2, 0, 9); err != nil {
		t.Fatal(err)
	}
	if got := lp.ChargedVolume(1, 2); got != 9 {
		t.Fatalf("rank 2 of 2 slots: charged = %v, want 9", got)
	}
	if err := lp.Add(0, 1, 4, 1); err != nil { // other link extends the period
		t.Fatal(err)
	}
	if got := lp.ChargedVolume(1, 2); got != 0 {
		t.Errorf("after ledger-wide extension to 5 slots, rank 4 should hit padding: charged = %v, want 0", got)
	}
	// Both links now charge via rank ceil(0.75*5) = 4 over 5 padded slots,
	// which lands on a zero for each, so the period-extended total is 0.
	if got := lp.TotalCost(); got != 0 {
		t.Errorf("TotalCost = %v, want 0 under extended percentile", got)
	}
}

// TestLedgerNonExistentLinkGuards pins that read-side accessors return 0 for
// absent links and out-of-range DCs instead of panicking or misindexing.
func TestLedgerNonExistentLinkGuards(t *testing.T) {
	nw, err := NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(0, 1, 1, 10); err != nil {
		t.Fatal(err)
	}
	l, err := NewLedger(nw, MaxCharging(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Add(0, 1, 0, 4); err != nil {
		t.Fatal(err)
	}
	type probe struct{ i, j DC }
	for _, p := range []probe{{1, 0}, {2, 1}, {0, 0}, {-1, 1}, {0, 99}, {99, -5}} {
		if got := l.ChargedVolume(p.i, p.j); got != 0 {
			t.Errorf("ChargedVolume(%d,%d) = %v, want 0", p.i, p.j, got)
		}
		if got := l.VolumeAt(p.i, p.j, 0); got != 0 {
			t.Errorf("VolumeAt(%d,%d,0) = %v, want 0", p.i, p.j, got)
		}
		if got := l.PaidHeadroom(p.i, p.j, 0); got != 0 {
			t.Errorf("PaidHeadroom(%d,%d,0) = %v, want 0", p.i, p.j, got)
		}
	}
	// The real link still reads through.
	if got := l.ChargedVolume(0, 1); got != 4 {
		t.Errorf("ChargedVolume(0,1) = %v, want 4", got)
	}
}

// TestPaidHeadroomPercentile pins PaidHeadroom's general-q semantics: below
// the charged volume the headroom tops the slot up to it; strictly above,
// the slot no longer influences the rank-th order statistic and the full
// residual is free; exactly at it, zero.
func TestPaidHeadroomPercentile(t *testing.T) {
	nw, err := Complete(2, func(_, _ DC) float64 { return 1 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLedger(nw, Charging{Q: 50, PeriodSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	for slot, v := range []float64{2, 4, 6, 8} {
		if err := l.Add(0, 1, slot, v); err != nil {
			t.Fatal(err)
		}
	}
	// rank = ceil(0.5*4) = 2 -> charged = 2nd smallest = 4.
	if got := l.ChargedVolume(0, 1); got != 4 {
		t.Fatalf("charged = %v, want 4", got)
	}
	cases := []struct {
		slot int
		want float64
	}{
		{0, 2},  // vol 2 < charged 4: top up to the charge
		{1, 0},  // exactly at the charge: growing it would raise the charge
		{2, 94}, // vol 6 > charged: full residual 100-6
		{3, 92}, // vol 8 > charged: full residual 100-8
	}
	for _, c := range cases {
		if got := l.PaidHeadroom(0, 1, c.slot); got != c.want {
			t.Errorf("PaidHeadroom slot %d = %v, want %v", c.slot, got, c.want)
		}
	}
}

// TestPaidHeadroomNeverRaisesCharge property-checks the safety contract
// under random percentile schemes: adding the reported headroom to that
// slot's volume never raises the charged volume.
func TestPaidHeadroomNeverRaisesCharge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		nw, err := Complete(2, func(_, _ DC) float64 { return 1 }, 50)
		if err != nil {
			t.Fatal(err)
		}
		q := 1 + 99*rng.Float64()
		if trial%5 == 0 {
			q = float64(1 + rng.Intn(100)) // exercise the integral path too
		}
		period := 1 + rng.Intn(12)
		l, err := NewLedger(nw, Charging{Q: q, PeriodSlots: period})
		if err != nil {
			t.Fatal(err)
		}
		used := rng.Intn(period + 1)
		for slot := 0; slot < used; slot++ {
			if err := l.Add(0, 1, slot, math.Floor(rng.Float64()*32)); err != nil {
				t.Fatal(err)
			}
		}
		slot := rng.Intn(period)
		head := l.PaidHeadroom(0, 1, slot)
		if head < 0 {
			t.Fatalf("trial %d: negative headroom %v", trial, head)
		}
		if head > l.Residual(0, 1, slot) {
			t.Fatalf("trial %d: headroom %v exceeds residual", trial, head)
		}
		if head == 0 {
			continue
		}
		before := l.ChargedVolume(0, 1)
		if err := l.Add(0, 1, slot, head); err != nil {
			t.Fatal(err)
		}
		after := l.ChargedVolume(0, 1)
		if after > before+1e-9 {
			t.Fatalf("trial %d (q=%v period=%d slot=%d head=%v): charge rose %v -> %v",
				trial, q, period, slot, head, before, after)
		}
	}
}

// TestPaidHeadroomPeakUnchanged re-pins the 100th-percentile behaviour the
// flow-based decomposition depends on: headroom is exactly X - volume.
func TestPaidHeadroomPeakUnchanged(t *testing.T) {
	nw, err := Complete(2, func(_, _ DC) float64 { return 1 }, 10)
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLedger(nw, MaxCharging(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Add(0, 1, 0, 7); err != nil {
		t.Fatal(err)
	}
	if got := l.PaidHeadroom(0, 1, 1); got != 7 {
		t.Errorf("empty slot headroom = %v, want 7", got)
	}
	if got := l.PaidHeadroom(0, 1, 0); got != 0 {
		t.Errorf("peak slot headroom = %v, want 0", got)
	}
	if err := l.Add(0, 1, 1, 3); err != nil {
		t.Fatal(err)
	}
	if got := l.PaidHeadroom(0, 1, 1); got != 4 {
		t.Errorf("partially used slot headroom = %v, want 4", got)
	}
}

// TestChargedVolumeIsMultisetElement pins that the charge is always an
// element of the zero-padded volume multiset (or 0/peak in the edge cases),
// selected at the exact rank.
func TestChargedVolumeIsMultisetElement(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 1000; trial++ {
		q := 1 + 99*rng.Float64()
		if trial%3 == 0 {
			q = float64(1 + rng.Intn(100))
		}
		period := 1 + rng.Intn(40)
		used := rng.Intn(period + 4) // sometimes beyond the period
		vols := make([]float64, used)
		for i := range vols {
			vols[i] = rng.Float64() * 20
		}
		c := Charging{Q: q, PeriodSlots: period}
		got := c.ChargedVolume(vols)
		eff := period
		if used > eff {
			eff = used
		}
		padded := make([]float64, eff)
		copy(padded, vols)
		sort.Float64s(padded)
		var want float64
		if used == 0 {
			want = 0
		} else if q >= 100 {
			want = padded[eff-1]
		} else {
			want = padded[exactRankRef(q, eff)-1]
		}
		if got != want {
			t.Fatalf("trial %d (q=%v period=%d used=%d): charged %v, want %v",
				trial, q, period, used, got, want)
		}
	}
}

// TestChargedVolumeEdgeCases pins the guards on the arbitrary-q surface the
// postcard-server config exposes: q at or below zero (and NaN) charges
// nothing, percentiles landing between the last two samples charge the
// correct order statistic, and ledgers with fewer recorded samples than the
// percentile rank pad with zero-traffic slots.
func TestChargedVolumeEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		q       float64
		period  int
		volumes []float64
		want    float64
	}{
		{"q zero charges nothing", 0, 10, []float64{5, 1, 9}, 0},
		{"q negative charges nothing", -3, 10, []float64{5, 1, 9}, 0},
		{"q NaN charges nothing", math.NaN(), 10, []float64{5, 1, 9}, 0},
		{"empty series charges nothing", 95, 10, nil, 0},
		// period 10, q=95 → rank ceil(9.5)=10: the top sample.
		{"rank lands on last sample", 95, 10, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 10},
		// period 10, q=85 → rank ceil(8.5)=9: between the last two samples
		// the charge is the second-largest, not an interpolation.
		{"rank between last two samples", 85, 10, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 9},
		// period 10, q=90 → rank 9; only 3 recorded samples pad with 7
		// zeros, so rank 9 selects sorted[9-7-1] = the middle sample.
		{"fewer samples than rank", 90, 10, []float64{5, 1, 9}, 5},
		// period 10, q=50 → rank 5 ≤ 7 zeros: charge is a padded zero.
		{"rank inside zero padding", 50, 10, []float64{5, 1, 9}, 0},
		// rank exactly equals the zero count + 1: first real sample.
		{"rank just past zero padding", 80, 10, []float64{5, 1, 9}, 1},
		// tiny positive q clamps the rank to 1, never 0.
		{"tiny q clamps rank to one", 1e-9, 10, []float64{5, 1, 9}, 0},
		{"q at 100 is the peak", 100, 10, []float64{5, 1, 9}, 9},
		{"q above 100 is the peak", 250, 10, []float64{5, 1, 9}, 9},
		// recording beyond the period extends it: 12 samples over a
		// nominal 10-slot period, q=95 → rank ceil(11.4)=12: the top.
		{"period extension", 95, 10, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, 12},
		{"single sample single slot", 50, 1, []float64{4}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := Charging{Q: tc.q, PeriodSlots: tc.period}
			if got := c.ChargedVolume(tc.volumes); got != tc.want {
				t.Errorf("Charging{Q:%v, Period:%d}.ChargedVolume(%v) = %v, want %v",
					tc.q, tc.period, tc.volumes, got, tc.want)
			}
		})
	}
}
