// Package stats provides the small statistical toolkit used by the
// simulation harness: streaming accumulators, sample summaries, Student-t
// confidence intervals, and percentile selection matching the semantics of
// percentile-based ISP charging schemes.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator is a streaming mean/variance accumulator using Welford's
// algorithm. The zero value is ready to use.
type Accumulator struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (a *Accumulator) Add(x float64) {
	if a.n == 0 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	a.n++
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// N reports the number of observations added so far.
func (a *Accumulator) N() int { return a.n }

// Mean reports the sample mean. It is 0 for an empty accumulator.
func (a *Accumulator) Mean() float64 { return a.mean }

// Min reports the smallest observation. It is 0 for an empty accumulator.
func (a *Accumulator) Min() float64 { return a.min }

// Max reports the largest observation. It is 0 for an empty accumulator.
func (a *Accumulator) Max() float64 { return a.max }

// Variance reports the unbiased sample variance (n-1 denominator).
// It is 0 when fewer than two observations have been added.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev reports the unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr reports the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n < 1 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Summary captures the point estimate and 95% confidence half-width of a
// set of runs, as plotted with error bars in the paper's Figs. 4-7.
type Summary struct {
	N        int     // number of observations
	Mean     float64 // sample mean
	StdDev   float64 // unbiased sample standard deviation
	CI95Half float64 // half-width of the 95% Student-t confidence interval
	Min      float64 // smallest observation
	Max      float64 // largest observation
}

// Summarize computes a Summary from the accumulated observations.
func (a *Accumulator) Summarize() Summary {
	return Summary{
		N:        a.n,
		Mean:     a.mean,
		StdDev:   a.StdDev(),
		CI95Half: TCritical95(a.n-1) * a.StdErr(),
		Min:      a.min,
		Max:      a.max,
	}
}

// String renders the summary as "mean ± ci95".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean, s.CI95Half, s.N)
}

// tTable95 holds two-sided 97.5% Student-t critical values for degrees of
// freedom 1..30. Beyond 30 the normal approximation is used.
var tTable95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom. It returns 0 for df < 1 (a confidence interval
// is undefined with a single observation).
func TCritical95(df int) float64 {
	switch {
	case df < 1:
		return 0
	case df <= len(tTable95):
		return tTable95[df-1]
	default:
		return 1.96
	}
}

// Mean returns the arithmetic mean of xs, or 0 when xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Summarize computes a Summary over a slice of observations.
func Summarize(xs []float64) Summary {
	var acc Accumulator
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Summarize()
}

// Percentile returns the q-th percentile (0 < q <= 100) of xs using the
// charging-scheme convention from the paper: values are sorted ascending
// and the element at (ceil(q/100*n))-th position (1-based) is returned.
// With q=100 this is the maximum. It returns an error for empty input or
// q outside (0, 100].
func Percentile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: percentile of empty slice")
	}
	if q <= 0 || q > 100 {
		return 0, fmt.Errorf("stats: percentile q=%v out of range (0, 100]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	idx := int(math.Ceil(q / 100 * float64(len(sorted))))
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1], nil
}
