package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d, want 8", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(a.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", a.Min(), a.Max())
	}
}

func TestAccumulatorEmptyAndSingle(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("empty accumulator should report zeros")
	}
	a.Add(3)
	if a.Variance() != 0 {
		t.Errorf("single-sample variance = %v, want 0", a.Variance())
	}
	s := a.Summarize()
	if s.CI95Half != 0 {
		t.Errorf("single-sample CI = %v, want 0", s.CI95Half)
	}
}

func TestSummarizeMatchesAccumulator(t *testing.T) {
	xs := []float64{1.5, 2.5, 3.5, 10}
	s := Summarize(xs)
	if s.N != 4 || math.Abs(s.Mean-4.375) > 1e-12 {
		t.Errorf("summary %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestTCritical95(t *testing.T) {
	cases := map[int]float64{1: 12.706, 2: 4.303, 9: 2.262, 30: 2.042, 100: 1.96}
	for df, want := range cases {
		if got := TCritical95(df); got != want {
			t.Errorf("TCritical95(%d) = %v, want %v", df, got, want)
		}
	}
	if TCritical95(0) != 0 {
		t.Error("df=0 should yield 0")
	}
}

func TestCIShrinksWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var small, large Accumulator
	for i := 0; i < 5; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 500; i++ {
		large.Add(rng.NormFloat64())
	}
	if small.Summarize().CI95Half <= large.Summarize().CI95Half {
		t.Error("CI should shrink with more samples")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct {
		q    float64
		want float64
	}{{100, 5}, {80, 4}, {20, 1}, {1, 1}, {60, 3}}
	for _, c := range cases {
		got, err := Percentile(xs, c.q)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.q, err)
		}
		if got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := Percentile(xs, 0); err == nil {
		t.Error("expected error for q=0")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("expected error for q>100")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestAccumulatorMatchesNaiveFormulas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		var a Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			a.Add(xs[i])
		}
		mean := Mean(xs)
		ss := 0.0
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naiveVar := ss / float64(n-1)
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Variance()-naiveVar) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPercentile100IsMax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		maxV := math.Inf(-1)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			if xs[i] > maxV {
				maxV = xs[i]
			}
		}
		got, err := Percentile(xs, 100)
		return err == nil && got == maxV
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
