// Package profiling centralizes the pprof flag handling of the postcard
// CLIs. Every command wires Start's stop function into its run() error
// path, so a profile that could not be written — a failed Close included —
// fails the command with a non-zero exit instead of silently producing a
// truncated or missing profile.
package profiling

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start enables CPU profiling to cpuPath and schedules a heap profile to
// memPath; either path may be empty to skip that profile. The returned
// stop function finishes both profiles and reports every failure,
// including file Close errors; it is idempotent, so it is safe to both
// defer it and call it explicitly. Callers should propagate stop's error
// into their exit status:
//
//	func run() (err error) {
//		stop, err := profiling.Start(*cpuProfile, *memProfile)
//		if err != nil {
//			return err
//		}
//		defer func() {
//			if perr := stop(); perr != nil && err == nil {
//				err = perr
//			}
//		}()
//		...
//	}
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
		cpuFile = f
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		var errs []error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("closing CPU profile: %w", err))
			}
		}
		if memPath != "" {
			if err := writeHeapProfile(memPath); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}, nil
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating heap profile: %w", err)
	}
	runtime.GC() // settle the heap so the profile reflects retained memory
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("writing heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing heap profile: %w", err)
	}
	return nil
}
