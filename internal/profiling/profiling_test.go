package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

// TestStartWritesProfiles checks the happy path: both profiles exist and
// are non-empty after stop, and stop is idempotent.
func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	mem := filepath.Join(dir, "mem.prof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestStartEmptyPathsIsNoop checks that empty paths produce no files and
// no errors — the default, flags-unset case.
func TestStartEmptyPathsIsNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStartErrors checks the failure paths the CLIs must turn into a
// non-zero exit: an uncreatable CPU profile fails Start, and an
// unwritable heap profile path fails stop.
func TestStartErrors(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.prof"), ""); err == nil {
		t.Error("uncreatable CPU profile path accepted")
	}
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem.prof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Error("uncreatable heap profile path did not fail stop")
	}
}
