// Package extensions implements the two companion problems the paper
// derives from the same time-expansion approach (Sec. VI):
//
//   - MaxBulk: NetStitcher-style bulk transfer maximization — move as much
//     delay-tolerant "background" volume as possible using only leftover
//     bandwidth that is already paid for, at zero marginal cost
//     (objective (11) with paid-headroom capacities);
//   - MaxUnderBudget: transfer volume maximization under a hard budget on
//     traffic costs (objective (11) plus the budget constraint
//     sum a_ij * X_ij * I <= B), together with AdmitFiles, a greedy
//     whole-file admission loop answering the paper's "maximum number of
//     files" question.
//
// Unlike NetStitcher, which moves a single file, both problems handle
// multiple files with distinct deadlines, as in the paper.
package extensions

import (
	"fmt"
	"math"
	"sort"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
	"github.com/interdc/postcard/internal/timegraph"
)

// Config tunes the extension solvers. The zero value selects defaults.
type Config struct {
	// Epsilon is the tie-breaking traffic-minimization weight, default 1e-6.
	Epsilon float64
	// LP overrides solver options.
	LP *lp.Options
}

func (c *Config) withDefaults() Config {
	out := Config{}
	if c != nil {
		out = *c
	}
	if out.Epsilon <= 0 {
		out.Epsilon = 1e-6
	}
	return out
}

// Result is the outcome of an extension optimization.
type Result struct {
	// Schedule realizes the (possibly partial) transfers.
	Schedule *schedule.Schedule
	// Delivered maps file ID to the delivered volume in GB.
	Delivered map[int]float64
	// TotalDelivered is the objective value: the sum of Delivered.
	TotalDelivered float64
	// CostPerSlot is the charged cost per interval after committing the
	// schedule (unchanged for MaxBulk by construction).
	CostPerSlot float64
	// Status is the LP outcome.
	Status lp.Status
}

// capacityFunc abstracts the per-edge capacity the two problems differ on.
type capacityFunc func(i, j netmodel.DC, slot int) float64

// MaxBulk maximizes the bulk volume delivered within each file's deadline
// using only the paid headroom of every link and slot: capacity that the
// charging scheme has already billed but that current commitments leave
// idle. The resulting plan is free: committing it does not change the
// charged cost.
func MaxBulk(ledger *netmodel.Ledger, files []netmodel.File, t int, cfg *Config) (*Result, error) {
	conf := cfg.withDefaults()
	return solveMaxVolume(ledger, files, t, conf,
		func(i, j netmodel.DC, slot int) float64 { return ledger.PaidHeadroom(i, j, slot) },
		nil)
}

// MaxUnderBudget maximizes delivered volume subject to the charged cost per
// interval staying at or below budgetPerSlot (the paper's budget B divided
// by the charging-period length). Full residual capacities are available;
// the budget is what limits spending.
func MaxUnderBudget(ledger *netmodel.Ledger, files []netmodel.File, t int, budgetPerSlot float64, cfg *Config) (*Result, error) {
	if budgetPerSlot < 0 || math.IsNaN(budgetPerSlot) {
		return nil, fmt.Errorf("extensions: invalid budget %v", budgetPerSlot)
	}
	conf := cfg.withDefaults()
	return solveMaxVolume(ledger, files, t, conf,
		func(i, j netmodel.DC, slot int) float64 { return ledger.Residual(i, j, slot) },
		&budgetPerSlot)
}

// solveMaxVolume builds and solves the shared time-expanded LP.
func solveMaxVolume(ledger *netmodel.Ledger, files []netmodel.File, t int, conf Config,
	capacity capacityFunc, budgetPerSlot *float64) (*Result, error) {

	nw := ledger.Network()
	if len(files) == 0 {
		return &Result{
			Schedule:    &schedule.Schedule{},
			Delivered:   map[int]float64{},
			CostPerSlot: ledger.CostPerSlot(),
			Status:      lp.Optimal,
		}, nil
	}
	horizon := 0
	for _, f := range files {
		if err := f.Validate(nw); err != nil {
			return nil, err
		}
		if f.Release < t {
			return nil, fmt.Errorf("extensions: file %d released at %d before solve slot %d", f.ID, f.Release, t)
		}
		if end := f.Release + f.Deadline - t; end > horizon {
			horizon = end
		}
	}
	tg, err := timegraph.Build(nw, t, horizon)
	if err != nil {
		return nil, err
	}
	m := lp.NewModel()
	m.SetMaximize()
	// Delivered volume per file.
	delivered := make([]lp.VarID, len(files))
	for k, f := range files {
		delivered[k] = m.AddVariable(0, f.Size, 1, fmt.Sprintf("delivered_f%d", f.ID))
	}
	// Transfer variables over each file's pruned subgraph.
	mvars := make([][]lp.VarID, len(files))
	reach := make([]timegraph.Reachability, len(files))
	for k, f := range files {
		reach[k] = tg.FileReachability(f)
		mvars[k] = make([]lp.VarID, tg.NumEdges())
		for i := range mvars[k] {
			mvars[k][i] = -1
		}
		first, last, ok := tg.FileWindow(f)
		if !ok || reach[k].FromSrc[f.Dst] > f.Deadline {
			continue // structurally undeliverable: delivered is forced to 0 below
		}
		r := reach[k]
		tg.Edges(func(e timegraph.Edge) {
			if e.Slot < first || e.Slot > last {
				return
			}
			if !r.Allowed(f, e.From, e.Slot) || !r.Allowed(f, e.To, e.Slot+1) {
				return
			}
			obj := 0.0
			if !e.Storage {
				obj = -conf.Epsilon
			}
			mvars[k][e.Index] = m.AddVariable(0, f.Size, obj,
				fmt.Sprintf("M_f%d_%d>%d@%d", f.ID, int(e.From), int(e.To), e.Slot))
		})
	}
	// Optional budget machinery.
	var xvars map[netmodel.Link]lp.VarID
	if budgetPerSlot != nil {
		xvars = make(map[netmodel.Link]lp.VarID)
		var bidx []lp.VarID
		var bval []float64
		nw.Links(func(l netmodel.Link, price, _ float64) {
			v := m.AddVariable(ledger.ChargedVolume(l.From, l.To), math.Inf(1), 0, fmt.Sprintf("X_%s", l))
			xvars[l] = v
			bidx = append(bidx, v)
			bval = append(bval, price)
		})
		if _, err := m.AddConstraint(lp.LE, *budgetPerSlot, bidx, bval); err != nil {
			return nil, err
		}
	}
	// Capacity (and charge epigraph rows under a budget).
	var rowErr error
	tg.Edges(func(e timegraph.Edge) {
		if rowErr != nil || e.Storage {
			return
		}
		var idx []lp.VarID
		var val []float64
		for k := range files {
			if v := mvars[k][e.Index]; v >= 0 {
				idx = append(idx, v)
				val = append(val, 1)
			}
		}
		if len(idx) == 0 {
			return
		}
		if _, err := m.AddConstraint(lp.LE, capacity(e.From, e.To, e.Slot), idx, val); err != nil {
			rowErr = err
			return
		}
		if xvars != nil {
			committed := ledger.VolumeAt(e.From, e.To, e.Slot)
			idx = append(idx, xvars[netmodel.Link{From: e.From, To: e.To}])
			val = append(val, -1)
			if _, err := m.AddConstraint(lp.LE, -committed, idx, val); err != nil {
				rowErr = err
			}
		}
	})
	if rowErr != nil {
		return nil, rowErr
	}
	// Conservation with the delivered variable as source supply and
	// destination demand.
	n := nw.NumDCs()
	for k, f := range files {
		first, last, ok := tg.FileWindow(f)
		if !ok || reach[k].FromSrc[f.Dst] > f.Deadline {
			// Force zero delivery.
			if _, err := m.AddConstraint(lp.EQ, 0, []lp.VarID{delivered[k]}, []float64{1}); err != nil {
				return nil, err
			}
			continue
		}
		deadlineLayer := f.Release + f.Deadline
		if clamp := tg.Start() + tg.Horizon(); deadlineLayer > clamp {
			deadlineLayer = clamp
		}
		r := reach[k]
		for layer := first; layer <= deadlineLayer; layer++ {
			for dc := 0; dc < n; dc++ {
				d := netmodel.DC(dc)
				if !r.Allowed(f, d, layer) {
					continue
				}
				var idx []lp.VarID
				var val []float64
				if layer <= last {
					for to := 0; to < n; to++ {
						if e, ok := tg.EdgeAt(d, netmodel.DC(to), layer); ok {
							if v := mvars[k][e.Index]; v >= 0 {
								idx = append(idx, v)
								val = append(val, 1)
							}
						}
					}
				}
				if layer > first {
					for from := 0; from < n; from++ {
						if e, ok := tg.EdgeAt(netmodel.DC(from), d, layer-1); ok {
							if v := mvars[k][e.Index]; v >= 0 {
								idx = append(idx, v)
								val = append(val, -1)
							}
						}
					}
				}
				switch {
				case layer == f.Release && d == f.Src:
					idx = append(idx, delivered[k])
					val = append(val, -1)
				case layer == deadlineLayer && d == f.Dst:
					idx = append(idx, delivered[k])
					val = append(val, 1)
				}
				if len(idx) == 0 {
					continue
				}
				if _, err := m.AddConstraint(lp.EQ, 0, idx, val); err != nil {
					return nil, err
				}
			}
		}
	}
	sol, err := m.Solve(conf.LP)
	if err != nil {
		return nil, fmt.Errorf("extensions: solving max-volume LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return &Result{Status: sol.Status}, nil
	}
	res := &Result{
		Schedule:  &schedule.Schedule{},
		Delivered: make(map[int]float64, len(files)),
		Status:    lp.Optimal,
	}
	const tol = 1e-5
	var effective []netmodel.File
	for k, f := range files {
		dv := sol.Value(delivered[k])
		if dv < 0 {
			dv = 0
		}
		res.Delivered[f.ID] = dv
		res.TotalDelivered += dv
		if dv > tol {
			ef := f
			ef.Size = dv
			effective = append(effective, ef)
		}
		for idx, v := range mvars[k] {
			if v < 0 {
				continue
			}
			if amount := sol.Value(v); amount > tol {
				e := tg.Edge(idx)
				res.Schedule.Add(schedule.Action{
					FileID: f.ID, From: e.From, To: e.To, Slot: e.Slot, Amount: amount,
				})
			}
		}
	}
	// Independent verification against the partial-delivery file set.
	vc := schedule.VerifyConfig{
		Residual: func(i, j netmodel.DC, slot int) float64 { return ledger.Residual(i, j, slot) },
		Tol:      1e-4,
	}
	if err := schedule.Verify(res.Schedule, nw, effective, vc); err != nil {
		return nil, fmt.Errorf("extensions: invalid schedule produced: %w", err)
	}
	clone := ledger.Clone()
	if err := res.Schedule.Apply(clone); err != nil {
		return nil, err
	}
	res.CostPerSlot = clone.CostPerSlot()
	return res, nil
}

// AdmitFiles answers the paper's budget question in whole files: it
// greedily admits files (smallest first) as long as the admitted set can be
// delivered in full within budgetPerSlot, and returns the admitted IDs with
// the final plan. Greedy by size is a heuristic — the exact problem is an
// integer program — but it matches the provider's goal of satisfying as
// many requests as possible.
func AdmitFiles(ledger *netmodel.Ledger, files []netmodel.File, t int, budgetPerSlot float64, cfg *Config) ([]int, *Result, error) {
	order := make([]netmodel.File, len(files))
	copy(order, files)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Size != order[j].Size {
			return order[i].Size < order[j].Size
		}
		return order[i].ID < order[j].ID
	})
	var admitted []netmodel.File
	var admittedIDs []int
	var best *Result
	for _, f := range order {
		trial := append(append([]netmodel.File(nil), admitted...), f)
		res, err := MaxUnderBudget(ledger, trial, t, budgetPerSlot, cfg)
		if err != nil {
			return nil, nil, err
		}
		if res.Status != lp.Optimal {
			continue
		}
		// Admission requires full delivery of every trial file.
		full := true
		for _, tf := range trial {
			if res.Delivered[tf.ID] < tf.Size-1e-5*(1+tf.Size) {
				full = false
				break
			}
		}
		if !full {
			continue
		}
		admitted = trial
		admittedIDs = append(admittedIDs, f.ID)
		best = res
	}
	if best == nil {
		best = &Result{
			Schedule:    &schedule.Schedule{},
			Delivered:   map[int]float64{},
			CostPerSlot: ledger.CostPerSlot(),
			Status:      lp.Optimal,
		}
	}
	sort.Ints(admittedIDs)
	return admittedIDs, best, nil
}
