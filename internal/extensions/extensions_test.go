package extensions

import (
	"math"
	"testing"

	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
)

func newLedger(t *testing.T, nw *netmodel.Network) *netmodel.Ledger {
	t.Helper()
	l, err := netmodel.NewLedger(nw, netmodel.MaxCharging(100))
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestMaxBulkNoHeadroomDeliversNothing(t *testing.T) {
	nw, err := netmodel.Complete(3, func(_, _ netmodel.DC) float64 { return 2 }, 50)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw) // empty: nothing has been paid for yet
	files := []netmodel.File{{ID: 1, Src: 0, Dst: 1, Size: 10, Deadline: 3, Release: 0}}
	res, err := MaxBulk(ledger, files, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.TotalDelivered > 1e-9 {
		t.Errorf("delivered %v with zero paid headroom, want 0", res.TotalDelivered)
	}
}

func TestMaxBulkRidesPaidLinks(t *testing.T) {
	nw, err := netmodel.Complete(3, func(_, _ netmodel.DC) float64 { return 2 }, 50)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	// Pay for 20 GB/slot on 0->1 by a past burst at slot 0.
	if err := ledger.Add(0, 1, 0, 20); err != nil {
		t.Fatal(err)
	}
	baseCost := ledger.CostPerSlot()
	files := []netmodel.File{{ID: 1, Src: 0, Dst: 1, Size: 100, Deadline: 3, Release: 1}}
	res, err := MaxBulk(ledger, files, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Slots 1,2,3 each offer 20 GB of free headroom: 60 GB deliverable.
	if math.Abs(res.TotalDelivered-60) > 1e-5 {
		t.Errorf("delivered %v, want 60", res.TotalDelivered)
	}
	// Bulk transfers must be free.
	if math.Abs(res.CostPerSlot-baseCost) > 1e-6 {
		t.Errorf("cost changed from %v to %v; bulk must be free", baseCost, res.CostPerSlot)
	}
}

func TestMaxBulkMultiHopHeadroom(t *testing.T) {
	// Headroom on 0->2 and 2->1 lets bulk data relay through DC 2,
	// including a store-and-forward wait when the second hop's headroom
	// appears one slot later.
	nw, err := netmodel.Complete(3, func(_, _ netmodel.DC) float64 { return 1 }, 50)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	if err := ledger.Add(0, 2, 0, 10); err != nil {
		t.Fatal(err)
	}
	if err := ledger.Add(2, 1, 0, 10); err != nil {
		t.Fatal(err)
	}
	files := []netmodel.File{{ID: 1, Src: 0, Dst: 1, Size: 100, Deadline: 3, Release: 1}}
	res, err := MaxBulk(ledger, files, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 0->2 usable slots 1..3 (30 GB in), but data entering at slot 3
	// arrives at layer 4 == deadline layer and cannot hop again; 2->1
	// usable slots 1..3 but nothing is at DC2 until layer 2. Deliverable:
	// in at slots 1,2 (20), out at slots 2,3 (20).
	if math.Abs(res.TotalDelivered-20) > 1e-5 {
		t.Errorf("delivered %v, want 20", res.TotalDelivered)
	}
}

func TestMaxUnderBudgetZeroBudget(t *testing.T) {
	nw, err := netmodel.Complete(3, func(_, _ netmodel.DC) float64 { return 2 }, 50)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	files := []netmodel.File{{ID: 1, Src: 0, Dst: 1, Size: 10, Deadline: 2, Release: 0}}
	res, err := MaxUnderBudget(ledger, files, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal || res.TotalDelivered > 1e-9 {
		t.Errorf("zero budget: status %v delivered %v, want optimal 0", res.Status, res.TotalDelivered)
	}
}

func TestMaxUnderBudgetScalesWithBudget(t *testing.T) {
	nw, err := netmodel.Complete(3, func(_, _ netmodel.DC) float64 { return 2 }, 50)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	files := []netmodel.File{{ID: 1, Src: 0, Dst: 1, Size: 40, Deadline: 2, Release: 0}}
	// Direct path price 2: delivering v GB over 2 slots costs 2*(v/2) = v
	// per slot at best (peak v/2 on the direct link).
	small, err := MaxUnderBudget(ledger, files, 0, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	big, err := MaxUnderBudget(ledger, files, 0, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if small.TotalDelivered >= big.TotalDelivered {
		t.Errorf("delivered %v with small budget vs %v with big", small.TotalDelivered, big.TotalDelivered)
	}
	if math.Abs(big.TotalDelivered-40) > 1e-5 {
		t.Errorf("big budget should deliver everything, got %v", big.TotalDelivered)
	}
	// Budget must be respected.
	if small.CostPerSlot > 10+1e-6 {
		t.Errorf("cost %v exceeds budget 10", small.CostPerSlot)
	}
	// With budget 10 the best is 10 GB of charge-per-slot worth: peak 5
	// on the direct link -> 10 GB delivered... unless relaying wins; it
	// cannot be cheaper than the cheapest path price.
	if small.TotalDelivered > 10+1e-5 {
		t.Errorf("delivered %v exceeds what budget 10 can buy", small.TotalDelivered)
	}
}

func TestMaxUnderBudgetInfeasibleWhenAlreadyOverBudget(t *testing.T) {
	nw, err := netmodel.Complete(2, func(_, _ netmodel.DC) float64 { return 5 }, 50)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	if err := ledger.Add(0, 1, 0, 10); err != nil { // already costs 50/slot
		t.Fatal(err)
	}
	files := []netmodel.File{{ID: 1, Src: 0, Dst: 1, Size: 1, Deadline: 1, Release: 1}}
	res, err := MaxUnderBudget(ledger, files, 1, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Infeasible {
		t.Errorf("status = %v, want infeasible (sunk cost 50 > budget 10)", res.Status)
	}
}

func TestMaxUnderBudgetRejectsNegativeBudget(t *testing.T) {
	nw, err := netmodel.Complete(2, func(_, _ netmodel.DC) float64 { return 1 }, 10)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	if _, err := MaxUnderBudget(ledger, nil, 0, -1, nil); err == nil {
		t.Error("expected error for negative budget")
	}
}

func TestAdmitFilesGreedy(t *testing.T) {
	nw, err := netmodel.Complete(3, func(_, _ netmodel.DC) float64 { return 1 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	files := []netmodel.File{
		{ID: 1, Src: 0, Dst: 1, Size: 10, Deadline: 2, Release: 0},
		{ID: 2, Src: 0, Dst: 1, Size: 30, Deadline: 2, Release: 0},
		{ID: 3, Src: 1, Dst: 2, Size: 6, Deadline: 2, Release: 0},
	}
	// Budget 12/slot. Cheapest delivery of file k costs ~Size/Deadline per
	// slot on its direct link (price 1). Sizes per slot: 5, 15, 3.
	// Greedy admits 3 (3) then 1 (5+3=8); adding 2 needs 15 more -> over.
	ids, res, err := AdmitFiles(ledger, files, 0, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("admitted %v, want [1 3]", ids)
	}
	if res.CostPerSlot > 12+1e-6 {
		t.Errorf("cost %v exceeds budget", res.CostPerSlot)
	}
	for _, id := range ids {
		var want float64
		for _, f := range files {
			if f.ID == id {
				want = f.Size
			}
		}
		if got := res.Delivered[id]; math.Abs(got-want) > 1e-5 {
			t.Errorf("file %d delivered %v, want %v", id, got, want)
		}
	}
}

func TestAdmitFilesNoneFit(t *testing.T) {
	nw, err := netmodel.Complete(2, func(_, _ netmodel.DC) float64 { return 10 }, 100)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	files := []netmodel.File{{ID: 1, Src: 0, Dst: 1, Size: 50, Deadline: 1, Release: 0}}
	ids, res, err := AdmitFiles(ledger, files, 0, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Errorf("admitted %v, want none", ids)
	}
	if res.Schedule.Len() != 0 {
		t.Error("expected empty schedule")
	}
}

func TestEmptyFilesExtensions(t *testing.T) {
	nw, err := netmodel.Complete(2, func(_, _ netmodel.DC) float64 { return 1 }, 10)
	if err != nil {
		t.Fatal(err)
	}
	ledger := newLedger(t, nw)
	for name, fn := range map[string]func() (*Result, error){
		"bulk":   func() (*Result, error) { return MaxBulk(ledger, nil, 0, nil) },
		"budget": func() (*Result, error) { return MaxUnderBudget(ledger, nil, 0, 5, nil) },
	} {
		res, err := fn()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Status != lp.Optimal || res.TotalDelivered != 0 {
			t.Errorf("%s: %+v", name, res)
		}
	}
}
