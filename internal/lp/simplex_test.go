package lp

import (
	"math"
	"math/rand"
	"testing"
)

func pinf() float64 { return math.Inf(1) }
func ninf() float64 { return math.Inf(-1) }

// solveBoth runs both solvers and fails the test on solver errors.
func solveBoth(t *testing.T, m *Model) (*Solution, *Solution) {
	t.Helper()
	s, err := m.Solve(nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	d, err := m.SolveDense()
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	return s, d
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 2y s.t. x + y <= 4, x <= 2, x,y >= 0 -> x=2, y=2, obj=10.
	m := NewModel()
	m.SetMaximize()
	x := m.AddVariable(0, pinf(), 3, "x")
	y := m.AddVariable(0, pinf(), 2, "y")
	mustCon(t, m, LE, 4, []VarID{x, y}, []float64{1, 1})
	mustCon(t, m, LE, 2, []VarID{x}, []float64{1})
	s, d := solveBoth(t, m)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if math.Abs(s.Objective-10) > 1e-8 {
		t.Errorf("objective = %v, want 10", s.Objective)
	}
	if math.Abs(s.Value(x)-2) > 1e-8 || math.Abs(s.Value(y)-2) > 1e-8 {
		t.Errorf("x=%v y=%v, want 2, 2", s.Value(x), s.Value(y))
	}
	if math.Abs(d.Objective-10) > 1e-8 {
		t.Errorf("dense objective = %v, want 10", d.Objective)
	}
}

func TestSimpleMinimizeWithEquality(t *testing.T) {
	// min x + 2y s.t. x + y = 3, y >= 1 -> x=2, y=1, obj=4.
	m := NewModel()
	x := m.AddVariable(0, pinf(), 1, "x")
	y := m.AddVariable(1, pinf(), 2, "y")
	mustCon(t, m, EQ, 3, []VarID{x, y}, []float64{1, 1})
	s, d := solveBoth(t, m)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-4) > 1e-8 {
		t.Errorf("objective = %v, want 4", s.Objective)
	}
	if math.Abs(d.Objective-4) > 1e-8 {
		t.Errorf("dense objective = %v, want 4", d.Objective)
	}
}

func TestUpperBoundedVariables(t *testing.T) {
	// max x + y, x in [0,1], y in [0,2], x + y <= 2.5 -> obj 2.5.
	m := NewModel()
	m.SetMaximize()
	x := m.AddVariable(0, 1, 1, "x")
	y := m.AddVariable(0, 2, 1, "y")
	mustCon(t, m, LE, 2.5, []VarID{x, y}, []float64{1, 1})
	s, _ := solveBoth(t, m)
	if s.Status != Optimal || math.Abs(s.Objective-2.5) > 1e-8 {
		t.Fatalf("got %v obj %v, want optimal 2.5", s.Status, s.Objective)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x subject to x >= -5 via a constraint (variable itself free).
	m := NewModel()
	x := m.AddVariable(ninf(), pinf(), 1, "x")
	mustCon(t, m, GE, -5, []VarID{x}, []float64{1})
	s, d := solveBoth(t, m)
	if s.Status != Optimal || math.Abs(s.Objective+5) > 1e-8 {
		t.Fatalf("got %v obj %v, want optimal -5", s.Status, s.Objective)
	}
	if d.Status != Optimal || math.Abs(d.Objective+5) > 1e-8 {
		t.Fatalf("dense got %v obj %v, want optimal -5", d.Status, d.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 1, 1, "x")
	mustCon(t, m, GE, 5, []VarID{x}, []float64{1})
	s, d := solveBoth(t, m)
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
	if d.Status != Infeasible {
		t.Errorf("dense status = %v, want infeasible", d.Status)
	}
}

func TestInfeasibleEqualitySystem(t *testing.T) {
	// x + y = 1 and x + y = 2 cannot both hold.
	m := NewModel()
	x := m.AddVariable(ninf(), pinf(), 0, "x")
	y := m.AddVariable(ninf(), pinf(), 0, "y")
	mustCon(t, m, EQ, 1, []VarID{x, y}, []float64{1, 1})
	mustCon(t, m, EQ, 2, []VarID{x, y}, []float64{1, 1})
	s, d := solveBoth(t, m)
	if s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
	if d.Status != Infeasible {
		t.Errorf("dense status = %v, want infeasible", d.Status)
	}
}

func TestUnbounded(t *testing.T) {
	m := NewModel()
	m.SetMaximize()
	x := m.AddVariable(0, pinf(), 1, "x")
	y := m.AddVariable(0, pinf(), 0, "y")
	mustCon(t, m, GE, 1, []VarID{x, y}, []float64{1, 1})
	s, d := solveBoth(t, m)
	if s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
	if d.Status != Unbounded {
		t.Errorf("dense status = %v, want unbounded", d.Status)
	}
}

func TestNoConstraints(t *testing.T) {
	// Pure bound optimization: min -x with x in [0, 7] -> x = 7.
	m := NewModel()
	x := m.AddVariable(0, 7, -1, "x")
	s, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Value(x)-7) > 1e-9 {
		t.Fatalf("got %v x=%v, want optimal x=7", s.Status, s.Value(x))
	}
}

func TestFixedVariables(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(3, 3, 1, "x") // fixed at 3
	y := m.AddVariable(0, pinf(), 1, "y")
	mustCon(t, m, GE, 5, []VarID{x, y}, []float64{1, 1})
	s, _ := solveBoth(t, m)
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Value(x)-3) > 1e-9 || math.Abs(s.Value(y)-2) > 1e-8 {
		t.Errorf("x=%v y=%v, want 3, 2", s.Value(x), s.Value(y))
	}
}

func TestNegativeRHSAndGE(t *testing.T) {
	// min x + y s.t. -x - y <= -4  (i.e. x + y >= 4), x,y in [0, 10].
	m := NewModel()
	x := m.AddVariable(0, 10, 1, "x")
	y := m.AddVariable(0, 10, 1, "y")
	mustCon(t, m, LE, -4, []VarID{x, y}, []float64{-1, -1})
	s, d := solveBoth(t, m)
	if s.Status != Optimal || math.Abs(s.Objective-4) > 1e-8 {
		t.Fatalf("got %v obj=%v, want optimal 4", s.Status, s.Objective)
	}
	if math.Abs(d.Objective-4) > 1e-8 {
		t.Errorf("dense obj=%v, want 4", d.Objective)
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classically degenerate instance (many constraints active at the
	// optimum). The solver must terminate and find the optimum.
	m := NewModel()
	m.SetMaximize()
	x := m.AddVariable(0, pinf(), 10, "x")
	y := m.AddVariable(0, pinf(), -57, "y")
	z := m.AddVariable(0, pinf(), -9, "z")
	w := m.AddVariable(0, pinf(), -24, "w")
	mustCon(t, m, LE, 0, []VarID{x, y, z, w}, []float64{0.5, -5.5, -2.5, 9})
	mustCon(t, m, LE, 0, []VarID{x, y, z, w}, []float64{0.5, -1.5, -0.5, 1})
	mustCon(t, m, LE, 1, []VarID{x}, []float64{1})
	s, d := solveBoth(t, m)
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if math.Abs(s.Objective-d.Objective) > 1e-6 {
		t.Errorf("sparse obj %v != dense obj %v", s.Objective, d.Objective)
	}
	if math.Abs(s.Objective-1) > 1e-6 {
		t.Errorf("objective = %v, want 1", s.Objective)
	}
}

func TestDualsAndReducedCosts(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x,y >= 0 -> x=4, obj=8, dual of the
	// covering row = 2, reduced cost of y = 1.
	m := NewModel()
	x := m.AddVariable(0, pinf(), 2, "x")
	y := m.AddVariable(0, pinf(), 3, "y")
	mustCon(t, m, GE, 4, []VarID{x, y}, []float64{1, 1})
	s, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective-8) > 1e-8 {
		t.Fatalf("got %v obj %v, want optimal 8", s.Status, s.Objective)
	}
	if math.Abs(s.Dual[0]-2) > 1e-8 {
		t.Errorf("dual = %v, want 2", s.Dual[0])
	}
	if math.Abs(s.ReducedObj[y]-1) > 1e-8 {
		t.Errorf("reduced cost of y = %v, want 1", s.ReducedObj[y])
	}
}

func TestValidateAcceptsSolverOutput(t *testing.T) {
	m := NewModel()
	m.SetMaximize()
	x := m.AddVariable(0, 10, 5, "x")
	y := m.AddVariable(2, 8, 4, "y")
	z := m.AddVariable(0, pinf(), 3, "z")
	mustCon(t, m, LE, 15, []VarID{x, y, z}, []float64{1, 2, 1})
	mustCon(t, m, GE, 3, []VarID{x, z}, []float64{1, 1})
	mustCon(t, m, EQ, 6, []VarID{y, z}, []float64{1, 1})
	s, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if err := m.Validate(s.X, 1e-7); err != nil {
		t.Errorf("Validate rejected optimal point: %v", err)
	}
}

func TestEmptyDomainRejected(t *testing.T) {
	m := NewModel()
	m.AddVariable(5, 2, 1, "bad")
	if _, err := m.Solve(nil); err == nil {
		t.Error("expected error for lo > hi")
	}
}

func TestAddConstraintErrors(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 1, 1, "x")
	if _, err := m.AddConstraint(LE, 1, []VarID{x}, []float64{1, 2}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := m.AddConstraint(Sense(0), 1, []VarID{x}, []float64{1}); err == nil {
		t.Error("expected invalid-sense error")
	}
	if _, err := m.AddConstraint(LE, math.NaN(), []VarID{x}, []float64{1}); err == nil {
		t.Error("expected NaN-rhs error")
	}
	if _, err := m.AddConstraint(LE, 1, []VarID{99}, []float64{1}); err == nil {
		t.Error("expected unknown-variable error")
	}
	if _, err := m.AddConstraint(LE, 1, []VarID{x}, []float64{math.Inf(1)}); err == nil {
		t.Error("expected inf-coefficient error")
	}
}

func TestDuplicateCoefficientsMerged(t *testing.T) {
	m := NewModel()
	m.SetMaximize()
	x := m.AddVariable(0, pinf(), 1, "x")
	// x + x <= 4 should behave as 2x <= 4.
	mustCon(t, m, LE, 4, []VarID{x, x}, []float64{1, 1})
	s, _ := solveBoth(t, m)
	if s.Status != Optimal || math.Abs(s.Value(x)-2) > 1e-8 {
		t.Fatalf("got %v x=%v, want optimal x=2", s.Status, s.Value(x))
	}
}

// mustCon adds a constraint or fails the test.
func mustCon(t *testing.T, m *Model, sense Sense, rhs float64, idx []VarID, val []float64) ConID {
	t.Helper()
	id, err := m.AddConstraint(sense, rhs, idx, val)
	if err != nil {
		t.Fatalf("AddConstraint: %v", err)
	}
	return id
}

// --- randomized cross-check between the two solvers ---

// randomModel builds a random LP with mixed bounds and senses.
func randomModel(rng *rand.Rand) *Model {
	m := NewModel()
	n := 1 + rng.Intn(6)
	if rng.Intn(2) == 0 {
		m.SetMaximize()
	}
	vars := make([]VarID, n)
	for j := 0; j < n; j++ {
		lo, hi := 0.0, pinf()
		switch rng.Intn(4) {
		case 0:
			hi = float64(1 + rng.Intn(10))
		case 1:
			lo, hi = -float64(rng.Intn(5)), float64(1+rng.Intn(10))
		case 2:
			lo, hi = ninf(), float64(rng.Intn(8))
		}
		obj := float64(rng.Intn(11) - 5)
		vars[j] = m.AddVariable(lo, hi, obj, "")
	}
	rows := rng.Intn(6)
	for i := 0; i < rows; i++ {
		var idx []VarID
		var val []float64
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.6 {
				idx = append(idx, vars[j])
				val = append(val, float64(rng.Intn(9)-4))
			}
		}
		if len(idx) == 0 {
			idx = append(idx, vars[rng.Intn(n)])
			val = append(val, 1)
		}
		sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
		rhs := float64(rng.Intn(21) - 10)
		if _, err := m.AddConstraint(sense, rhs, idx, val); err != nil {
			panic(err)
		}
	}
	return m
}

func TestRandomCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2012))
	agreeOpt := 0
	for trial := 0; trial < 400; trial++ {
		m := randomModel(rng)
		s, err := m.Solve(nil)
		if err != nil {
			t.Fatalf("trial %d: Solve: %v", trial, err)
		}
		d, err := m.SolveDense()
		if err != nil {
			t.Fatalf("trial %d: SolveDense: %v", trial, err)
		}
		if s.Status == IterLimit || d.Status == IterLimit {
			continue
		}
		if s.Status != d.Status {
			t.Fatalf("trial %d: status mismatch sparse=%v dense=%v", trial, s.Status, d.Status)
		}
		if s.Status != Optimal {
			continue
		}
		agreeOpt++
		if err := m.Validate(s.X, 1e-6); err != nil {
			t.Fatalf("trial %d: sparse solution infeasible: %v", trial, err)
		}
		diff := math.Abs(s.Objective - d.Objective)
		scale := 1 + math.Max(math.Abs(s.Objective), math.Abs(d.Objective))
		if diff/scale > 1e-6 {
			t.Fatalf("trial %d: objective mismatch sparse=%v dense=%v", trial, s.Objective, d.Objective)
		}
	}
	if agreeOpt < 50 {
		t.Fatalf("only %d optimal instances; generator too degenerate", agreeOpt)
	}
}

func TestRandomReducedCostSigns(t *testing.T) {
	// At an optimum of a minimization problem, nonbasic-at-lower variables
	// must have nonnegative reduced costs and nonbasic-at-upper variables
	// nonpositive ones. We verify the observable consequence: perturbation
	// along any feasible coordinate direction cannot improve the objective.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 150; trial++ {
		m := randomModel(rng)
		s, err := m.Solve(nil)
		if err != nil || s.Status != Optimal {
			continue
		}
		const tol = 1e-6
		for j, d := range s.ReducedObj {
			xj := s.X[j]
			atLower := math.Abs(xj-m.lo[j]) < 1e-7
			atUpper := math.Abs(xj-m.hi[j]) < 1e-7
			dj := d
			if m.maximize {
				dj = -dj // convert back to minimization convention
			}
			if atLower && !atUpper && dj < -tol {
				t.Fatalf("trial %d: var %d at lower with negative reduced cost %v", trial, j, dj)
			}
			if atUpper && !atLower && dj > tol {
				t.Fatalf("trial %d: var %d at upper with positive reduced cost %v", trial, j, dj)
			}
		}
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	// A transportation-style LP: 30 sources, 30 sinks.
	rng := rand.New(rand.NewSource(5))
	build := func() *Model {
		m := NewModel()
		const k = 30
		supply := make([]float64, k)
		demand := make([]float64, k)
		total := 0.0
		for i := 0; i < k; i++ {
			supply[i] = float64(1 + rng.Intn(20))
			total += supply[i]
		}
		rem := total
		for j := 0; j < k-1; j++ {
			demand[j] = rem / float64(k-j) // spread demand evenly-ish
			rem -= demand[j]
		}
		demand[k-1] = rem
		xs := make([][]VarID, k)
		for i := 0; i < k; i++ {
			xs[i] = make([]VarID, k)
			for j := 0; j < k; j++ {
				xs[i][j] = m.AddVariable(0, pinf(), float64(1+rng.Intn(9)), "")
			}
		}
		for i := 0; i < k; i++ {
			idx := make([]VarID, k)
			val := make([]float64, k)
			for j := 0; j < k; j++ {
				idx[j], val[j] = xs[i][j], 1
			}
			if _, err := m.AddConstraint(EQ, supply[i], idx, val); err != nil {
				panic(err)
			}
		}
		for j := 0; j < k; j++ {
			idx := make([]VarID, k)
			val := make([]float64, k)
			for i := 0; i < k; i++ {
				idx[i], val[i] = xs[i][j], 1
			}
			if _, err := m.AddConstraint(EQ, demand[j], idx, val); err != nil {
				panic(err)
			}
		}
		return m
	}
	m := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := m.Solve(nil)
		if err != nil {
			b.Fatal(err)
		}
		if s.Status != Optimal {
			b.Fatalf("status %v", s.Status)
		}
	}
}
