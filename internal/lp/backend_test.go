package lp

import (
	"math/rand"
	"testing"

	"github.com/interdc/postcard/internal/lp/backend"
)

// solveWithBackend solves m on the named backend, failing the test on a
// solver error.
func solveWithBackend(t *testing.T, m *Model, name string, workers int) *Solution {
	t.Helper()
	sol, err := m.Solve(&Options{Backend: name, BackendWorkers: workers})
	if err != nil {
		t.Fatalf("Solve(backend=%s, workers=%d): %v", name, workers, err)
	}
	return sol
}

// assertBitIdentical asserts that two solves of the same model followed the
// exact same pivot trajectory: identical status, iteration counts, solve
// counters, and bit-for-bit equal primal/dual vectors. The backend-specific
// counters (ParallelScans, SpecFtrans, SpecFtranHits, BackendWorkers) are
// deliberately excluded — they describe how the work was executed, not what
// was computed.
func assertBitIdentical(t *testing.T, label string, a, b *Solution) {
	t.Helper()
	if a.Status != b.Status {
		t.Fatalf("%s: status %v vs %v", label, a.Status, b.Status)
	}
	if a.Objective != b.Objective {
		t.Fatalf("%s: objective %v vs %v (not bit-identical)", label, a.Objective, b.Objective)
	}
	if a.Iterations != b.Iterations || a.Phase1Iter != b.Phase1Iter {
		t.Fatalf("%s: iterations %d/%d vs %d/%d", label, a.Iterations, a.Phase1Iter, b.Iterations, b.Phase1Iter)
	}
	if a.Factorized != b.Factorized {
		t.Fatalf("%s: factorizations %d vs %d", label, a.Factorized, b.Factorized)
	}
	if a.SparseSolves != b.SparseSolves || a.DenseSolves != b.DenseSolves ||
		a.SolveNNZ != b.SolveNNZ || a.SolveDim != b.SolveDim {
		t.Fatalf("%s: solve counters (%d,%d,%d,%d) vs (%d,%d,%d,%d)", label,
			a.SparseSolves, a.DenseSolves, a.SolveNNZ, a.SolveDim,
			b.SparseSolves, b.DenseSolves, b.SolveNNZ, b.SolveDim)
	}
	if a.DevexResets != b.DevexResets || a.DualRecomputes != b.DualRecomputes ||
		a.DevexScans != b.DevexScans {
		t.Fatalf("%s: devex counters (%d,%d,%d) vs (%d,%d,%d)", label,
			a.DevexResets, a.DualRecomputes, a.DevexScans,
			b.DevexResets, b.DualRecomputes, b.DevexScans)
	}
	for j := range a.X {
		if a.X[j] != b.X[j] {
			t.Fatalf("%s: X[%d] = %v vs %v (not bit-identical)", label, j, a.X[j], b.X[j])
		}
	}
	for i := range a.Dual {
		if a.Dual[i] != b.Dual[i] {
			t.Fatalf("%s: Dual[%d] = %v vs %v (not bit-identical)", label, i, a.Dual[i], b.Dual[i])
		}
	}
}

// TestSerialVsParallelBitIdentity is the backend determinism contract as a
// test: the parallel backend must reproduce the serial backend's pivot
// trajectory bit-for-bit — not merely the same objective — at every worker
// count, because the range-partitioned scans reduce with a fixed tie-break
// and the row walks preserve serial accumulation order.
func TestSerialVsParallelBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		m := randomFlowModel(rng)
		ref := solveWithBackend(t, m, backend.NameSerial, 1)
		for _, w := range []int{1, 2, 3, 4, 7} {
			got := solveWithBackend(t, m, backend.NameParallel, w)
			assertBitIdentical(t, "serial vs parallel", ref, got)
			if got.BackendWorkers != w {
				t.Fatalf("trial %d: BackendWorkers = %d, want %d", trial, got.BackendWorkers, w)
			}
			if got.ParallelScans > got.DevexScans {
				t.Fatalf("trial %d: ParallelScans %d > DevexScans %d", trial, got.ParallelScans, got.DevexScans)
			}
			if got.SpecFtranHits > got.SpecFtrans {
				t.Fatalf("trial %d: SpecFtranHits %d > SpecFtrans %d", trial, got.SpecFtranHits, got.SpecFtrans)
			}
		}
	}
}

// largeFlowModel builds a min-cost-flow LP big enough to cross the parallel
// backend's fan-out threshold (cf.n + cf.m > 4096 columns including
// slacks), the regime where PriceDevex, PivotRow and DualDelta actually
// dispatch to the worker pool instead of taking their small-problem serial
// branches.
func largeFlowModel(rng *rand.Rand) *Model {
	n := 110
	src, sink := 0, n-1
	demand := 1 + float64(rng.Intn(20))
	m := NewModel()
	type arc struct {
		from, to int
		v        VarID
	}
	var arcs []arc
	add := func(from, to int, cap, cost float64) {
		v := m.AddVariable(0, cap, cost, "")
		arcs = append(arcs, arc{from, to, v})
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < 0.35 {
				add(i, j, float64(1+rng.Intn(15)), float64(rng.Intn(10)))
			}
		}
	}
	add(src, sink, demand, 1000) // feasibility backstop, as in randomFlowModel
	for v := 0; v < n; v++ {
		var idx []VarID
		var val []float64
		for _, a := range arcs {
			if a.from == v {
				idx = append(idx, a.v)
				val = append(val, 1)
			}
			if a.to == v {
				idx = append(idx, a.v)
				val = append(val, -1)
			}
		}
		rhs := 0.0
		switch v {
		case src:
			rhs = demand
		case sink:
			rhs = -demand
		}
		if len(idx) == 0 {
			continue
		}
		if _, err := m.AddConstraint(EQ, rhs, idx, val); err != nil {
			panic(err)
		}
	}
	return m
}

// TestSerialVsParallelBitIdentityLarge is the fan-out regime's equivalence
// check: on models above the parallel size threshold the range-partitioned
// scans, pivot-row assembly and dual-delta walks actually run on the worker
// pool, and must still reproduce the serial trajectory bit-for-bit.
func TestSerialVsParallelBitIdentityLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 2; trial++ {
		m := largeFlowModel(rng)
		ref := solveWithBackend(t, m, backend.NameSerial, 1)
		for _, w := range []int{2, 5} {
			got := solveWithBackend(t, m, backend.NameParallel, w)
			assertBitIdentical(t, "large serial vs parallel", ref, got)
			if got.ParallelScans == 0 {
				t.Fatalf("trial %d workers=%d: model never crossed the fan-out threshold (DevexScans=%d)",
					trial, w, got.DevexScans)
			}
		}
	}
}

// TestParallelCountersWorkerIndependent pins that every backend counter —
// including the parallel-only ones — is a pure function of the problem, not
// of the pool size: fan-out thresholds are size-only and the speculation
// batch is a fixed constant.
func TestParallelCountersWorkerIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		m := randomFlowModel(rng)
		ref := solveWithBackend(t, m, backend.NameParallel, 1)
		for _, w := range []int{2, 4, 8} {
			got := solveWithBackend(t, m, backend.NameParallel, w)
			if got.ParallelScans != ref.ParallelScans ||
				got.SpecFtrans != ref.SpecFtrans ||
				got.SpecFtranHits != ref.SpecFtranHits {
				t.Fatalf("trial %d: backend counters vary with workers: w=1 (%d,%d,%d) vs w=%d (%d,%d,%d)",
					trial, ref.ParallelScans, ref.SpecFtrans, ref.SpecFtranHits,
					w, got.ParallelScans, got.SpecFtrans, got.SpecFtranHits)
			}
		}
	}
}

// TestSerialBackendReportsNoParallelWork pins the default backend's counter
// shape: the serial backend never fans out or speculates, so the only
// backend counter it moves is DevexScans. The SolverTable backend sub-table
// keys off exactly this (it renders only when parallel work happened), so
// pre-backend goldens stay byte-identical.
func TestSerialBackendReportsNoParallelWork(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomFlowModel(rng)
	sol := solveWithBackend(t, m, backend.NameSerial, 4)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if sol.BackendWorkers != 1 {
		t.Fatalf("BackendWorkers = %d, want 1", sol.BackendWorkers)
	}
	if sol.DevexScans == 0 {
		t.Fatal("DevexScans = 0; devex scans not counted")
	}
	if sol.ParallelScans != 0 || sol.SpecFtrans != 0 || sol.SpecFtranHits != 0 {
		t.Fatalf("serial backend reported parallel work: scans=%d spec=%d hits=%d",
			sol.ParallelScans, sol.SpecFtrans, sol.SpecFtranHits)
	}
}

// TestUnknownBackendErrors pins the failure mode for a bad backend name:
// the solve fails up front with a descriptive error instead of silently
// falling back.
func TestUnknownBackendErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomFlowModel(rng)
	if _, err := m.Solve(&Options{Backend: "vectorized"}); err == nil {
		t.Fatal("Solve with unknown backend succeeded, want error")
	}
}

// FuzzSerialVsParallelSimplex drives the serial-vs-parallel equivalence
// property from fuzzed model shapes and worker counts: whatever network LP
// the seed generates, both backends must agree bit-for-bit on the solution
// and trajectory. This is the backend analogue of the devex-vs-Dantzig and
// sparse-vs-dense equivalence fuzzes.
func FuzzSerialVsParallelSimplex(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(7), uint8(3))
	f.Add(int64(42), uint8(8))
	f.Add(int64(1234), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, workersRaw uint8) {
		workers := 1 + int(workersRaw)%8
		rng := rand.New(rand.NewSource(seed))
		m := randomFlowModel(rng)
		ref := solveWithBackend(t, m, backend.NameSerial, 1)
		got := solveWithBackend(t, m, backend.NameParallel, workers)
		assertBitIdentical(t, "fuzz serial vs parallel", ref, got)
	})
}
