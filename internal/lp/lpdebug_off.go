//go:build !lpdebug

package lp

// debugCheckDuals is a no-op unless the build carries -tags lpdebug, in
// which case the maintained reduced-cost vector is audited against an
// honest recomputation every iteration (see lpdebug_on.go).
func (s *simplex) debugCheckDuals(bool) {}
