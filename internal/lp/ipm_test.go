package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestIPMSimpleMaximize(t *testing.T) {
	m := NewModel()
	m.SetMaximize()
	x := m.AddVariable(0, pinf(), 3, "x")
	y := m.AddVariable(0, pinf(), 2, "y")
	mustCon(t, m, LE, 4, []VarID{x, y}, []float64{1, 1})
	mustCon(t, m, LE, 2, []VarID{x}, []float64{1})
	s, err := m.SolveInteriorPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective-10) > 1e-6 {
		t.Errorf("objective = %v, want 10", s.Objective)
	}
	if math.Abs(s.Value(x)-2) > 1e-5 || math.Abs(s.Value(y)-2) > 1e-5 {
		t.Errorf("x=%v y=%v, want 2, 2", s.Value(x), s.Value(y))
	}
}

func TestIPMEqualityAndBounds(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 10, 1, "x")
	y := m.AddVariable(1, 8, 2, "y")
	mustCon(t, m, EQ, 6, []VarID{x, y}, []float64{1, 1})
	s, err := m.SolveInteriorPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	// min x + 2y with x + y = 6, y >= 1 -> x = 5, y = 1, obj = 7.
	if math.Abs(s.Objective-7) > 1e-6 {
		t.Errorf("objective = %v, want 7", s.Objective)
	}
}

func TestIPMFreeVariable(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(ninf(), pinf(), 1, "x")
	mustCon(t, m, GE, -5, []VarID{x}, []float64{1})
	s, err := m.SolveInteriorPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective+5) > 1e-6 {
		t.Errorf("objective = %v, want -5", s.Objective)
	}
}

func TestIPMUpperBoundedVariable(t *testing.T) {
	m := NewModel()
	m.SetMaximize()
	x := m.AddVariable(0, 1, 1, "x")
	y := m.AddVariable(0, 2, 1, "y")
	mustCon(t, m, LE, 2.5, []VarID{x, y}, []float64{1, 1})
	s, err := m.SolveInteriorPoint(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective-2.5) > 1e-6 {
		t.Errorf("objective = %v, want 2.5", s.Objective)
	}
}

func TestIPMFailsOnPathology(t *testing.T) {
	// Unbounded: the IPM must return an error, not a wrong answer.
	m := NewModel()
	m.SetMaximize()
	x := m.AddVariable(0, pinf(), 1, "x")
	y := m.AddVariable(0, pinf(), 0, "y")
	mustCon(t, m, GE, 1, []VarID{x, y}, []float64{1, 1})
	if _, err := m.SolveInteriorPoint(&IPMOptions{MaxIterations: 50}); err == nil {
		t.Error("expected non-convergence error for an unbounded model")
	}
}

// TestIPMMatchesSimplexRandom cross-checks the interior-point method
// against the simplex on random LPs with bounded optima.
func TestIPMMatchesSimplexRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	agree := 0
	for trial := 0; trial < 200; trial++ {
		m := randomModel(rng)
		sx, err := m.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if sx.Status != Optimal {
			continue // IPM does not classify infeasible/unbounded
		}
		ip, err := m.SolveInteriorPoint(nil)
		if err != nil {
			// The IPM may fail on degenerate corner cases; tolerate a few
			// but count agreement below.
			continue
		}
		diff := math.Abs(sx.Objective - ip.Objective)
		scale := 1 + math.Max(math.Abs(sx.Objective), math.Abs(ip.Objective))
		if diff/scale > 1e-5 {
			t.Fatalf("trial %d: simplex %v != ipm %v", trial, sx.Objective, ip.Objective)
		}
		if err := m.Validate(ip.X, 1e-5); err != nil {
			t.Fatalf("trial %d: ipm point infeasible: %v", trial, err)
		}
		agree++
	}
	if agree < 60 {
		t.Fatalf("only %d agreeing optimal instances", agree)
	}
}

// TestIPMTransportation solves a structured LP large enough to exercise
// the normal-equation path meaningfully.
func TestIPMTransportation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const k = 12
	m := NewModel()
	vars := make([][]VarID, k)
	supply := make([]float64, k)
	demand := make([]float64, k)
	total := 0.0
	for i := 0; i < k; i++ {
		supply[i] = float64(1 + rng.Intn(20))
		total += supply[i]
	}
	rem := total
	for j := 0; j < k-1; j++ {
		demand[j] = math.Floor(rem / float64(k-j))
		rem -= demand[j]
	}
	demand[k-1] = rem
	for i := 0; i < k; i++ {
		vars[i] = make([]VarID, k)
		for j := 0; j < k; j++ {
			vars[i][j] = m.AddVariable(0, pinf(), float64(1+rng.Intn(9)), "")
		}
	}
	for i := 0; i < k; i++ {
		idx := make([]VarID, k)
		val := make([]float64, k)
		for j := 0; j < k; j++ {
			idx[j], val[j] = vars[i][j], 1
		}
		mustCon(t, m, EQ, supply[i], idx, val)
	}
	for j := 0; j < k; j++ {
		idx := make([]VarID, k)
		val := make([]float64, k)
		for i := 0; i < k; i++ {
			idx[i], val[i] = vars[i][j], 1
		}
		mustCon(t, m, EQ, demand[j], idx, val)
	}
	sx, err := m.Solve(nil)
	if err != nil || sx.Status != Optimal {
		t.Fatalf("simplex failed: %v %v", err, sx.Status)
	}
	ip, err := m.SolveInteriorPoint(nil)
	if err != nil {
		t.Fatalf("ipm: %v", err)
	}
	if math.Abs(sx.Objective-ip.Objective) > 1e-4*(1+sx.Objective) {
		t.Errorf("simplex %v != ipm %v", sx.Objective, ip.Objective)
	}
}

func BenchmarkIPMTransportation(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	const k = 15
	m := NewModel()
	for i := 0; i < k*k; i++ {
		m.AddVariable(0, pinf(), float64(1+rng.Intn(9)), "")
	}
	for i := 0; i < k; i++ {
		idx := make([]VarID, k)
		val := make([]float64, k)
		for j := 0; j < k; j++ {
			idx[j], val[j] = VarID(i*k+j), 1
		}
		if _, err := m.AddConstraint(EQ, 10, idx, val); err != nil {
			b.Fatal(err)
		}
	}
	for j := 0; j < k; j++ {
		idx := make([]VarID, k)
		val := make([]float64, k)
		for i := 0; i < k; i++ {
			idx[i], val[i] = VarID(i*k+j), 1
		}
		if _, err := m.AddConstraint(EQ, 10, idx, val); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveInteriorPoint(nil); err != nil {
			b.Fatal(err)
		}
	}
}
