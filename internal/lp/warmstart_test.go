package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestWarmStartSameModelZeroIterations re-solves a model from its own
// optimal basis: the simplex must recognize optimality without pivoting.
func TestWarmStartSameModelZeroIterations(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 10, 1, "x")
	y := m.AddVariable(0, 10, 2, "y")
	mustCon(t, m, GE, 6, []VarID{x, y}, []float64{1, 1})
	mustCon(t, m, LE, 8, []VarID{x}, []float64{1})
	cold, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Status != Optimal || cold.Basis == nil {
		t.Fatalf("cold solve: status %v, basis %v", cold.Status, cold.Basis)
	}
	warm, err := m.Solve(&Options{InitialBasis: cold.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted {
		t.Fatal("warm start rejected its own optimal basis")
	}
	if warm.Status != Optimal || math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("warm: status %v obj %v, cold obj %v", warm.Status, warm.Objective, cold.Objective)
	}
	if warm.Iterations != 0 {
		t.Errorf("warm re-solve of an optimal basis took %d iterations, want 0", warm.Iterations)
	}
	if warm.Phase1Iter != 0 {
		t.Errorf("warm re-solve spent %d phase-1 iterations, want 0", warm.Phase1Iter)
	}
}

// TestWarmStartRandomSameModel property-checks warm restarts across random
// optimal models: same objective, no pivots needed.
func TestWarmStartRandomSameModel(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	checked := 0
	for trial := 0; trial < 250; trial++ {
		m := randomModel(rng)
		cold, err := m.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if cold.Status != Optimal {
			continue
		}
		warm, err := m.Solve(&Options{InitialBasis: cold.Basis})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != Optimal {
			t.Fatalf("trial %d: warm status %v", trial, warm.Status)
		}
		scale := 1 + math.Abs(cold.Objective)
		if math.Abs(warm.Objective-cold.Objective) > 1e-6*scale {
			t.Fatalf("trial %d: warm obj %v != cold obj %v", trial, warm.Objective, cold.Objective)
		}
		if warm.WarmStarted && warm.Iterations > 2 {
			t.Errorf("trial %d: warm restart of optimal basis took %d iterations", trial, warm.Iterations)
		}
		checked++
	}
	if checked < 60 {
		t.Fatalf("only %d optimal instances checked", checked)
	}
}

// TestWarmStartShiftedRHS warms a solve whose right-hand sides moved a
// little — the consecutive-slot pattern — and checks it reaches the same
// optimum as a cold solve, in (aggregate) fewer simplex iterations.
func TestWarmStartShiftedRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	warmIters, coldIters := 0, 0
	checked := 0
	for trial := 0; trial < 200; trial++ {
		m := randomModel(rng)
		base, err := m.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if base.Status != Optimal {
			continue
		}
		// Shift every rhs by a small amount, as a new slot's charge floors
		// and release volumes would.
		m2 := NewModel()
		if m.maximize {
			m2.SetMaximize()
		}
		for j := range m.obj {
			m2.AddVariable(m.lo[j], m.hi[j], m.obj[j], "")
		}
		for _, r := range m.rows {
			idx := make([]VarID, len(r.idx))
			for p, j := range r.idx {
				idx[p] = VarID(j)
			}
			if _, err := m2.AddConstraint(r.sense, r.rhs+0.25*(rng.Float64()-0.5), idx, r.val); err != nil {
				t.Fatal(err)
			}
		}
		cold, err := m2.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := m2.Solve(&Options{InitialBasis: base.Basis})
		if err != nil {
			t.Fatal(err)
		}
		if cold.Status == IterLimit || warm.Status == IterLimit {
			continue
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v, cold %v", trial, warm.Status, cold.Status)
		}
		if cold.Status == Optimal {
			scale := 1 + math.Abs(cold.Objective)
			if math.Abs(warm.Objective-cold.Objective) > 1e-6*scale {
				t.Fatalf("trial %d: warm obj %v != cold obj %v", trial, warm.Objective, cold.Objective)
			}
			if err := m2.Validate(warm.X, 1e-6); err != nil {
				t.Fatalf("trial %d: warm solution infeasible: %v", trial, err)
			}
		}
		warmIters += warm.Iterations
		coldIters += cold.Iterations
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d instances checked", checked)
	}
	if warmIters > coldIters {
		t.Errorf("warm starts took %d total iterations vs %d cold — no reuse benefit", warmIters, coldIters)
	}
}

// TestWarmStartRejectsUnusableBases feeds deliberately broken snapshots:
// every one must be rejected (or repaired) and the solve still reach the
// cold optimum.
func TestWarmStartRejectsUnusableBases(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 5, 1, "x")
	y := m.AddVariable(0, 5, 1, "y")
	mustCon(t, m, GE, 4, []VarID{x, y}, []float64{1, 1})
	mustCon(t, m, LE, 9, []VarID{x, y}, []float64{2, 1})
	cold, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := []*Basis{
		{NumVars: 1, NumRows: 2, Status: []BasisStatus{BasisBasic, BasisBasic, BasisAtLower}},
		{NumVars: 2, NumRows: 2, Status: []BasisStatus{BasisAtLower, BasisAtLower, BasisAtLower, BasisAtLower}}, // no basics
		{NumVars: 2, NumRows: 2, Status: []BasisStatus{BasisBasic, BasisBasic, BasisBasic, BasisBasic}},         // too many
		{NumVars: 2, NumRows: 2, Status: []BasisStatus{0, BasisBasic, BasisBasic, BasisAtLower}},                // invalid status
		{NumVars: 2, NumRows: 2, Status: []BasisStatus{BasisBasic, BasisBasic, BasisAtLower}},                   // short slice
	}
	for k, b := range bad {
		s, err := m.Solve(&Options{InitialBasis: b})
		if err != nil {
			t.Fatalf("case %d: %v", k, err)
		}
		if s.WarmStarted {
			t.Errorf("case %d: unusable basis was accepted", k)
		}
		if s.Status != Optimal || math.Abs(s.Objective-cold.Objective) > 1e-9 {
			t.Errorf("case %d: status %v obj %v, want optimal %v", k, s.Status, s.Objective, cold.Objective)
		}
	}
}

// TestWarmStartSingularBasisRepairsOrFallsBack marks two linearly dependent
// structural columns basic; the factorization's singularity repair (or the
// cold fallback) must still deliver the optimum.
func TestWarmStartSingularBasisRepairsOrFallsBack(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 10, 1, "x")
	y := m.AddVariable(0, 10, 2, "y")
	mustCon(t, m, GE, 3, []VarID{x, y}, []float64{1, 1})
	mustCon(t, m, LE, 8, []VarID{x, y}, []float64{1, 1}) // same coefficient row
	cold, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	singular := &Basis{NumVars: 2, NumRows: 2, Status: []BasisStatus{
		BasisBasic, BasisBasic, // columns [1;1] and [1;1]: singular pair
		BasisAtLower, BasisAtLower,
	}}
	s, err := m.Solve(&Options{InitialBasis: singular})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("status %v obj %v, want optimal %v", s.Status, s.Objective, cold.Objective)
	}
}

// TestWarmStartAfterInfeasible checks the shedding-retry pattern: an
// infeasible solve still returns a basis, and that basis warm-starts the
// relaxed model.
func TestWarmStartAfterInfeasible(t *testing.T) {
	build := func(rhs float64) (*Model, []VarID) {
		m := NewModel()
		x := m.AddVariable(0, 2, 1, "x")
		y := m.AddVariable(0, 2, 1, "y")
		mustCon(t, m, GE, rhs, []VarID{x, y}, []float64{1, 1})
		return m, []VarID{x, y}
	}
	tight, _ := build(10) // x+y >= 10 with x,y <= 2: infeasible
	s1, err := tight.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Status != Infeasible {
		t.Fatalf("tight model status %v, want infeasible", s1.Status)
	}
	if s1.Basis == nil {
		t.Fatal("infeasible solve dropped its basis; shedding retries cannot warm-start")
	}
	relaxed, _ := build(3)
	s2, err := relaxed.Solve(&Options{InitialBasis: s1.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Status != Optimal || math.Abs(s2.Objective-3) > 1e-7 {
		t.Fatalf("relaxed warm solve: status %v obj %v, want optimal 3", s2.Status, s2.Objective)
	}
}

// TestBasisNormalize checks the basic-count repair used when a basis is
// assembled from heterogeneous sources (cross-model mapping, presolve
// projection).
func TestBasisNormalize(t *testing.T) {
	// Too many basics: the surplus is demoted from the end (logicals first).
	b := &Basis{NumVars: 2, NumRows: 2, Status: []BasisStatus{
		BasisBasic, BasisBasic, BasisBasic, BasisBasic,
	}}
	b.Normalize()
	want := []BasisStatus{BasisBasic, BasisBasic, BasisAtLower, BasisAtLower}
	for p, st := range want {
		if b.Status[p] != st {
			t.Fatalf("demote: Status[%d] = %v, want %v (full: %v)", p, b.Status[p], st, b.Status)
		}
	}
	// Too few basics: logicals are promoted from the first row.
	b = &Basis{NumVars: 2, NumRows: 2, Status: []BasisStatus{
		BasisAtLower, BasisAtUpper, BasisAtLower, BasisAtLower,
	}}
	b.Normalize()
	want = []BasisStatus{BasisAtLower, BasisAtUpper, BasisBasic, BasisBasic}
	for p, st := range want {
		if b.Status[p] != st {
			t.Fatalf("promote: Status[%d] = %v, want %v (full: %v)", p, b.Status[p], st, b.Status)
		}
	}
	// Already consistent: untouched; nil passes through.
	before := append([]BasisStatus(nil), want...)
	b.Normalize()
	for p := range before {
		if b.Status[p] != before[p] {
			t.Fatalf("no-op Normalize changed Status[%d]", p)
		}
	}
	if (*Basis)(nil).Normalize() != nil {
		t.Error("nil Normalize should be nil")
	}
	// A normalized basis must pass the warm-start count check and still
	// reach the optimum.
	m := NewModel()
	x := m.AddVariable(0, 5, -1, "x")
	y := m.AddVariable(0, 5, -2, "y")
	mustCon(t, m, LE, 6, []VarID{x, y}, []float64{1, 1})
	mustCon(t, m, LE, 4, []VarID{y}, []float64{1})
	over := &Basis{NumVars: 2, NumRows: 2, Status: []BasisStatus{
		BasisBasic, BasisBasic, BasisBasic, BasisBasic,
	}}
	s, err := m.Solve(&Options{InitialBasis: over.Normalize()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective-(-10)) > 1e-9 {
		t.Fatalf("normalized warm solve: status %v obj %v, want optimal -10", s.Status, s.Objective)
	}
}

// TestBasisClone checks deep-copy semantics.
func TestBasisClone(t *testing.T) {
	b := &Basis{NumVars: 1, NumRows: 1, Status: []BasisStatus{BasisBasic, BasisAtLower}}
	cp := b.Clone()
	cp.Status[0] = BasisAtUpper
	if b.Status[0] != BasisBasic {
		t.Error("Clone aliases the status slice")
	}
	if (*Basis)(nil).Clone() != nil {
		t.Error("nil Clone should be nil")
	}
}
