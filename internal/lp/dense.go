package lp

import "math"

// SolveDense optimizes the model with a classic two-phase full-tableau
// simplex on the standard form (bounds rewritten as rows, free variables
// split). It is deliberately implemented with none of the machinery of the
// sparse solver so the two can cross-check each other in tests. Intended
// for small models only: memory and time are O(rows·cols) per pivot.
func (m *Model) SolveDense() (*Solution, error) {
	nOrig := len(m.obj)
	// Variable substitutions: x_j = shift_j + sign_j * x'_j (+ optional
	// second column for free variables: x_j = x'_j - x''_j).
	type subst struct {
		col1  int
		col2  int // -1 unless the variable is free in both directions
		shift float64
		sign  float64
	}
	subs := make([]subst, nOrig)
	nCols := 0
	type extraRow struct {
		col int
		rhs float64
	}
	var upperRows []extraRow // x'_col ≤ rhs
	for j := 0; j < nOrig; j++ {
		lo, hi := m.lo[j], m.hi[j]
		switch {
		case !math.IsInf(lo, -1):
			subs[j] = subst{col1: nCols, col2: -1, shift: lo, sign: 1}
			nCols++
			if !math.IsInf(hi, 1) {
				upperRows = append(upperRows, extraRow{col: subs[j].col1, rhs: hi - lo})
			}
		case !math.IsInf(hi, 1):
			subs[j] = subst{col1: nCols, col2: -1, shift: hi, sign: -1}
			nCols++
		default:
			subs[j] = subst{col1: nCols, col2: nCols + 1, shift: 0, sign: 1}
			nCols += 2
		}
	}
	nRows := len(m.rows) + len(upperRows)
	// Dense A, b, and cost c over substituted columns (before slacks).
	a := make([][]float64, nRows)
	for i := range a {
		a[i] = make([]float64, nCols)
	}
	b := make([]float64, nRows)
	senses := make([]Sense, nRows)
	for i, r := range m.rows {
		rhs := r.rhs
		for p, j := range r.idx {
			v := r.val[p]
			sb := subs[j]
			rhs -= v * sb.shift
			a[i][sb.col1] += v * sb.sign
			if sb.col2 >= 0 {
				a[i][sb.col2] -= v
			}
		}
		b[i] = rhs
		senses[i] = r.sense
	}
	for k, er := range upperRows {
		i := len(m.rows) + k
		a[i][er.col] = 1
		b[i] = er.rhs
		senses[i] = LE
	}
	c := make([]float64, nCols)
	for j := 0; j < nOrig; j++ {
		cj := m.obj[j]
		if m.maximize {
			cj = -cj
		}
		sb := subs[j]
		c[sb.col1] += cj * sb.sign
		if sb.col2 >= 0 {
			c[sb.col2] -= cj
		}
	}
	// Normalize to b >= 0 and append slack/surplus + artificial columns.
	for i := 0; i < nRows; i++ {
		if b[i] < 0 {
			for j := range a[i] {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
			switch senses[i] {
			case LE:
				senses[i] = GE
			case GE:
				senses[i] = LE
			}
		}
	}
	slackOf := make([]int, nRows)
	for i := range slackOf {
		slackOf[i] = -1
	}
	totalCols := nCols
	for i := 0; i < nRows; i++ {
		if senses[i] == LE || senses[i] == GE {
			slackOf[i] = totalCols
			totalCols++
		}
	}
	artOf := make([]int, nRows)
	nArt := 0
	for i := 0; i < nRows; i++ {
		if senses[i] == LE {
			artOf[i] = -1
		} else {
			artOf[i] = totalCols + nArt
			nArt++
		}
	}
	width := totalCols + nArt
	tab := make([][]float64, nRows)
	basis := make([]int, nRows)
	for i := 0; i < nRows; i++ {
		tab[i] = make([]float64, width+1)
		copy(tab[i], a[i])
		if s := slackOf[i]; s >= 0 {
			if senses[i] == LE {
				tab[i][s] = 1
			} else {
				tab[i][s] = -1
			}
		}
		if art := artOf[i]; art >= 0 {
			tab[i][art] = 1
			basis[i] = art
		} else {
			basis[i] = slackOf[i]
		}
		tab[i][width] = b[i]
	}

	const tol = 1e-9
	// blockArtificials makes rows whose basic variable is an artificial block
	// the ratio test at step 0 so the artificial is pivoted out instead of
	// drifting away from zero (only meaningful once phase 1 is done).
	pivotTableau := func(costs []float64, maxIter int, forbid func(j int) bool, blockArtificials bool) Status {
		// z-row maintenance: reduced costs d_j = costs_j - cB·col_j,
		// recomputed each iteration for simplicity (dense reference).
		for iter := 0; iter < maxIter; iter++ {
			var d []float64
			d = make([]float64, width)
			for j := 0; j < width; j++ {
				if forbid != nil && forbid(j) {
					d[j] = math.Inf(1)
					continue
				}
				dj := costs[j]
				for i := 0; i < nRows; i++ {
					dj -= costs[basis[i]] * tab[i][j]
				}
				d[j] = dj
			}
			// Bland's rule: first improving column (guaranteed finite).
			enter := -1
			for j := 0; j < width; j++ {
				if !math.IsInf(d[j], 1) && d[j] < -tol {
					enter = j
					break
				}
			}
			if enter < 0 {
				return Optimal
			}
			leave, best := -1, math.Inf(1)
			for i := 0; i < nRows; i++ {
				if blockArtificials && basis[i] >= totalCols && math.Abs(tab[i][enter]) > tol {
					// Kick the artificial out at a zero-length step.
					best, leave = 0, i
					break
				}
				if tab[i][enter] > tol {
					ratio := tab[i][width] / tab[i][enter]
					if ratio < best-tol || (ratio < best+tol && (leave < 0 || basis[i] < basis[leave])) {
						best, leave = ratio, i
					}
				}
			}
			if leave < 0 {
				return Unbounded
			}
			// Gauss-Jordan pivot on (leave, enter).
			pv := tab[leave][enter]
			for j := 0; j <= width; j++ {
				tab[leave][j] /= pv
			}
			for i := 0; i < nRows; i++ {
				if i == leave {
					continue
				}
				f := tab[i][enter]
				if f == 0 {
					continue
				}
				for j := 0; j <= width; j++ {
					tab[i][j] -= f * tab[leave][j]
				}
			}
			basis[leave] = enter
		}
		return IterLimit
	}

	maxIter := 2000 + 50*(nRows+width)
	// Phase 1: minimize the artificial sum.
	if nArt > 0 {
		phase1 := make([]float64, width)
		for i := 0; i < nRows; i++ {
			if artOf[i] >= 0 {
				phase1[artOf[i]] = 1
			}
		}
		if st := pivotTableau(phase1, maxIter, nil, false); st == IterLimit {
			return &Solution{Status: IterLimit}, nil
		}
		sum := 0.0
		for i := 0; i < nRows; i++ {
			if basis[i] >= totalCols {
				sum += tab[i][width]
			}
		}
		if sum > 1e-6 {
			return &Solution{Status: Infeasible}, nil
		}
	}
	// Phase 2: original costs, artificials forbidden.
	fullCost := make([]float64, width)
	copy(fullCost, c)
	st := pivotTableau(fullCost, maxIter, func(j int) bool { return j >= totalCols }, true)
	sol := &Solution{Status: st, X: make([]float64, nOrig)}
	if st != Optimal {
		return sol, nil
	}
	xsub := make([]float64, width)
	for i := 0; i < nRows; i++ {
		xsub[basis[i]] = tab[i][width]
	}
	for j := 0; j < nOrig; j++ {
		sb := subs[j]
		v := sb.shift + sb.sign*xsub[sb.col1]
		if sb.col2 >= 0 {
			v -= xsub[sb.col2]
		}
		sol.X[j] = v
	}
	sol.Objective = m.ObjectiveValue(sol.X)
	return sol, nil
}
