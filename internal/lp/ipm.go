package lp

import (
	"fmt"
	"math"
)

// IPMOptions controls the interior-point solver. The zero value selects
// defaults.
type IPMOptions struct {
	MaxIterations int     // default 100
	Tol           float64 // relative residual/gap tolerance, default 1e-8
}

func (o *IPMOptions) withDefaults() IPMOptions {
	out := IPMOptions{}
	if o != nil {
		out = *o
	}
	if out.MaxIterations <= 0 {
		out.MaxIterations = 100
	}
	if out.Tol <= 0 {
		out.Tol = 1e-8
	}
	return out
}

// SolveInteriorPoint optimizes the model with a Mehrotra predictor-corrector
// primal-dual interior-point method — the class of algorithm the paper
// names for solving the Postcard program ("classic algorithms such as ...
// interior-point methods"). The model is converted to the standard form
// min c·x, Ax = b, x ≥ 0 (bound shifts, free-variable splits, upper bounds
// as extra rows) and the Newton systems are solved via dense Cholesky
// factorizations of the normal equations, which limits this solver to
// small and medium instances; the revised simplex (Solve) remains the
// production path. It reports Optimal with a primal solution, or an error
// when it fails to converge (including infeasible and unbounded models,
// which it does not classify).
func (m *Model) SolveInteriorPoint(opts *IPMOptions) (*Solution, error) {
	opt := opts.withDefaults()
	sf, err := m.buildStandardForm()
	if err != nil {
		return nil, err
	}
	x, y, err := sf.mehrotra(opt)
	if err != nil {
		return nil, err
	}
	sol := &Solution{
		Status: Optimal,
		X:      make([]float64, len(m.obj)),
		Dual:   make([]float64, len(m.rows)),
	}
	for j := range m.obj {
		sb := sf.subs[j]
		v := sb.shift + sb.sign*x[sb.col1]
		if sb.col2 >= 0 {
			v -= x[sb.col2]
		}
		sol.X[j] = v
	}
	for i := range m.rows {
		d := y[i]
		if m.maximize {
			d = -d
		}
		sol.Dual[i] = d
	}
	sol.Objective = m.ObjectiveValue(sol.X)
	return sol, nil
}

// stdSubst records how an original variable maps into standard form.
type stdSubst struct {
	col1  int
	col2  int // second column for free variables, else -1
	shift float64
	sign  float64
}

// stdForm is min c·x, Ax = b, x >= 0 with a dense row-major A (the IPM is
// a small-scale cross-checking solver; density is fine).
type stdForm struct {
	mRows, nCols int
	a            [][]float64
	b            []float64
	c            []float64
	subs         []stdSubst
}

// buildStandardForm rewrites the model into stdForm. Inequality rows get
// slack columns; two-sided variable bounds become extra rows.
func (m *Model) buildStandardForm() (*stdForm, error) {
	nOrig := len(m.obj)
	subs := make([]stdSubst, nOrig)
	nCols := 0
	type upperRow struct {
		col int
		rhs float64
	}
	var uppers []upperRow
	for j := 0; j < nOrig; j++ {
		lo, hi := m.lo[j], m.hi[j]
		if lo > hi {
			return nil, fmt.Errorf("lp: variable %s has empty domain [%g, %g]", m.VarName(VarID(j)), lo, hi)
		}
		switch {
		case !math.IsInf(lo, -1):
			subs[j] = stdSubst{col1: nCols, col2: -1, shift: lo, sign: 1}
			nCols++
			if !math.IsInf(hi, 1) {
				uppers = append(uppers, upperRow{col: subs[j].col1, rhs: hi - lo})
			}
		case !math.IsInf(hi, 1):
			subs[j] = stdSubst{col1: nCols, col2: -1, shift: hi, sign: -1}
			nCols++
		default:
			subs[j] = stdSubst{col1: nCols, col2: nCols + 1, sign: 1}
			nCols += 2
		}
	}
	// Columns: substituted variables, then slacks for inequality rows,
	// then slacks for upper-bound rows.
	nSlack := 0
	for _, r := range m.rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	total := nCols + nSlack + len(uppers)
	mRows := len(m.rows) + len(uppers)
	sf := &stdForm{
		mRows: mRows,
		nCols: total,
		a:     make([][]float64, mRows),
		b:     make([]float64, mRows),
		c:     make([]float64, total),
		subs:  subs,
	}
	for i := range sf.a {
		sf.a[i] = make([]float64, total)
	}
	for j := 0; j < nOrig; j++ {
		cj := m.obj[j]
		if m.maximize {
			cj = -cj
		}
		sb := subs[j]
		sf.c[sb.col1] += cj * sb.sign
		if sb.col2 >= 0 {
			sf.c[sb.col2] -= cj
		}
	}
	slack := nCols
	for i, r := range m.rows {
		rhs := r.rhs
		for p, j := range r.idx {
			v := r.val[p]
			sb := subs[j]
			rhs -= v * sb.shift
			sf.a[i][sb.col1] += v * sb.sign
			if sb.col2 >= 0 {
				sf.a[i][sb.col2] -= v
			}
		}
		sf.b[i] = rhs
		switch r.sense {
		case LE:
			sf.a[i][slack] = 1
			slack++
		case GE:
			sf.a[i][slack] = -1
			slack++
		}
	}
	for k, ur := range uppers {
		i := len(m.rows) + k
		sf.a[i][ur.col] = 1
		sf.a[i][nCols+nSlack+k] = 1
		sf.b[i] = ur.rhs
	}
	return sf, nil
}

// mehrotra runs the predictor-corrector iteration, returning the primal
// point and row duals.
func (sf *stdForm) mehrotra(opt IPMOptions) ([]float64, []float64, error) {
	mR, n := sf.mRows, sf.nCols
	if n == 0 {
		return nil, make([]float64, mR), nil
	}
	x := make([]float64, n)
	z := make([]float64, n)
	y := make([]float64, mR)

	// Mehrotra starting point from least-squares heuristics.
	dOnes := make([]float64, n)
	for j := range dOnes {
		dOnes[j] = 1
	}
	chol, err := sf.factorNormal(dOnes)
	if err != nil {
		return nil, nil, fmt.Errorf("lp: ipm starting point: %w", err)
	}
	// x~ = Aᵀ (A Aᵀ)⁻¹ b
	tmp := make([]float64, mR)
	copy(tmp, sf.b)
	chol.solve(tmp)
	sf.mulAT(tmp, x)
	// y~ = (A Aᵀ)⁻¹ A c ; z~ = c - Aᵀ y~
	sf.mulA(sf.c, tmp)
	chol.solve(tmp)
	copy(y, tmp)
	at := make([]float64, n)
	sf.mulAT(y, at)
	for j := range z {
		z[j] = sf.c[j] - at[j]
	}
	shiftPositive(x)
	shiftPositive(z)

	bNorm := 1 + norm2(sf.b)
	cNorm := 1 + norm2(sf.c)
	rb := make([]float64, mR)
	rc := make([]float64, n)
	dxA := make([]float64, n)
	dzA := make([]float64, n)
	dyA := make([]float64, mR)
	dx := make([]float64, n)
	dz := make([]float64, n)
	dy := make([]float64, mR)
	d := make([]float64, n)
	rhs := make([]float64, mR)
	v := make([]float64, n)

	for iter := 0; iter < opt.MaxIterations; iter++ {
		// Residuals.
		sf.mulA(x, rb)
		for i := range rb {
			rb[i] -= sf.b[i]
		}
		sf.mulAT(y, at)
		for j := range rc {
			rc[j] = at[j] + z[j] - sf.c[j]
		}
		gap := dot(x, z) / float64(n)
		obj := dot(sf.c, x)
		if norm2(rb)/bNorm < opt.Tol && norm2(rc)/cNorm < opt.Tol &&
			gap*float64(n)/(1+math.Abs(obj)) < opt.Tol {
			return x, y, nil
		}
		// Affine predictor: v = X Z e.
		for j := range v {
			v[j] = x[j] * z[j]
			d[j] = x[j] / z[j]
		}
		chol, err = sf.factorNormal(d)
		if err != nil {
			return nil, nil, fmt.Errorf("lp: ipm normal equations: %w", err)
		}
		sf.newtonSolve(chol, d, rb, rc, v, x, z, dxA, dyA, dzA, rhs, at)
		alphaP := stepLength(x, dxA)
		alphaD := stepLength(z, dzA)
		gapAff := 0.0
		for j := range x {
			gapAff += (x[j] + alphaP*dxA[j]) * (z[j] + alphaD*dzA[j])
		}
		gapAff /= float64(n)
		sigma := math.Pow(gapAff/gap, 3)
		if sigma > 1 {
			sigma = 1
		}
		// Corrector: v = X Z e + dXaff dZaff e - sigma*mu e.
		mu := gap
		for j := range v {
			v[j] = x[j]*z[j] + dxA[j]*dzA[j] - sigma*mu
		}
		sf.newtonSolve(chol, d, rb, rc, v, x, z, dx, dy, dz, rhs, at)
		aP := 0.9995 * stepLength(x, dx)
		aD := 0.9995 * stepLength(z, dz)
		if aP > 1 {
			aP = 1
		}
		if aD > 1 {
			aD = 1
		}
		for j := range x {
			x[j] += aP * dx[j]
			z[j] += aD * dz[j]
		}
		for i := range y {
			y[i] += aD * dy[i]
		}
		if gap > 1e14 || math.IsNaN(gap) {
			return nil, nil, fmt.Errorf("lp: interior-point diverged (model infeasible or unbounded?)")
		}
	}
	return nil, nil, fmt.Errorf("lp: interior-point did not converge in %d iterations", opt.MaxIterations)
}

// newtonSolve solves one Newton system given the factorized normal matrix:
//
//	A dx = -rb;  Aᵀ dy + dz = -rc;  Z dx + X dz = -v.
func (sf *stdForm) newtonSolve(chol *cholesky, d, rb, rc, v, x, z, dx, dy, dz, rhs, scratchN []float64) {
	// rhs = -rb - A (D rc - Z⁻¹ v)
	for j := range scratchN {
		scratchN[j] = d[j]*rc[j] - v[j]/z[j]
	}
	sf.mulA(scratchN, rhs)
	for i := range rhs {
		rhs[i] = -rb[i] - rhs[i]
	}
	chol.solve(rhs)
	copy(dy, rhs)
	// dx = D (Aᵀ dy + rc) - Z⁻¹ v ... with sign: dx = D(Aᵀdy + rc) - Z⁻¹v
	sf.mulAT(dy, scratchN)
	for j := range dx {
		dx[j] = d[j]*(scratchN[j]+rc[j]) - v[j]/z[j]
	}
	// dz = -X⁻¹ (v + Z dx)
	for j := range dz {
		dz[j] = -(v[j] + z[j]*dx[j]) / x[j]
	}
}

// mulA computes out = A * in (in length n, out length m).
func (sf *stdForm) mulA(in, out []float64) {
	for i := 0; i < sf.mRows; i++ {
		sum := 0.0
		row := sf.a[i]
		for j, v := range row {
			if v != 0 {
				sum += v * in[j]
			}
		}
		out[i] = sum
	}
}

// mulAT computes out = Aᵀ * in (in length m, out length n).
func (sf *stdForm) mulAT(in, out []float64) {
	for j := range out {
		out[j] = 0
	}
	for i := 0; i < sf.mRows; i++ {
		vi := in[i]
		if vi == 0 {
			continue
		}
		row := sf.a[i]
		for j, v := range row {
			if v != 0 {
				out[j] += v * vi
			}
		}
	}
}

// factorNormal builds and factors M = A D Aᵀ + ridge I.
func (sf *stdForm) factorNormal(d []float64) (*cholesky, error) {
	mR := sf.mRows
	mat := make([][]float64, mR)
	for i := range mat {
		mat[i] = make([]float64, mR)
	}
	for i := 0; i < mR; i++ {
		for k := i; k < mR; k++ {
			sum := 0.0
			ri, rk := sf.a[i], sf.a[k]
			for j := 0; j < sf.nCols; j++ {
				if ri[j] != 0 && rk[j] != 0 {
					sum += ri[j] * rk[j] * d[j]
				}
			}
			mat[i][k] = sum
			mat[k][i] = sum
		}
		mat[i][i] += 1e-12 * (1 + mat[i][i])
	}
	return newCholesky(mat)
}

// cholesky is a dense LLᵀ factorization.
type cholesky struct {
	n int
	l [][]float64
}

func newCholesky(mat [][]float64) (*cholesky, error) {
	n := len(mat)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := mat[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					// Rank deficiency (redundant rows): lift the pivot.
					sum = 1e-10
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return &cholesky{n: n, l: l}, nil
}

// solve overwrites b with M⁻¹ b.
func (c *cholesky) solve(b []float64) {
	for i := 0; i < c.n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= c.l[i][k] * b[k]
		}
		b[i] = sum / c.l[i][i]
	}
	for i := c.n - 1; i >= 0; i-- {
		sum := b[i]
		for k := i + 1; k < c.n; k++ {
			sum -= c.l[k][i] * b[k]
		}
		b[i] = sum / c.l[i][i]
	}
}

// shiftPositive applies Mehrotra's shift making a vector safely positive.
func shiftPositive(v []float64) {
	minV := math.Inf(1)
	for _, x := range v {
		if x < minV {
			minV = x
		}
	}
	delta := math.Max(-1.5*minV, 0) + 0.1
	for i := range v {
		v[i] += delta
	}
}

// stepLength returns the largest alpha in (0, 1] with v + alpha*dv >= 0.
func stepLength(v, dv []float64) float64 {
	alpha := 1.0
	for i := range v {
		if dv[i] < 0 {
			if a := -v[i] / dv[i]; a < alpha {
				alpha = a
			}
		}
	}
	return alpha
}

func norm2(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x * x
	}
	return math.Sqrt(sum)
}

func dot(a, b []float64) float64 {
	sum := 0.0
	for i := range a {
		sum += a[i] * b[i]
	}
	return sum
}
