package backend

import "github.com/interdc/postcard/internal/lp/sparse"

// serial is the default backend: the simplex hot kernels exactly as they
// ran before the backend seam existed, on the calling goroutine. It never
// speculates, so Collect always misses and ftran performs the same base
// solve, in the same place, as the pre-seam solver.
type serial struct {
	counters Counters
}

func (s *serial) Name() string { return NameSerial }

func (s *serial) Workers() int { return 1 }

func (s *serial) PriceDevex(in *PriceInput) (q int, dq, dir float64) {
	s.counters.DevexScans++
	best := scanRange(in, 0, len(in.D), nil)
	return best.j, best.dj, best.dir
}

func (s *serial) PivotRow(at *sparse.CSR, rho []float64, rhoIdx []int, alpha []float64, mark []bool, idx []int) []int {
	return pivotRowSerial(at, rho, rhoIdx, alpha, mark, idx)
}

func (s *serial) DualDelta(at *sparse.CSR, rho []float64, rhoIdx []int, d []float64) {
	dualDeltaSerial(at, rho, rhoIdx, d)
}

func (s *serial) Speculate(lu *sparse.LU, a *sparse.Matrix, limit, skip int) {}

func (s *serial) Collect(q int, lu *sparse.LU) (x []float64, pat []int, sparseOK, hit bool) {
	return nil, nil, false, false
}

func (s *serial) Counters() Counters { return s.counters }

func (s *serial) Close() {}
