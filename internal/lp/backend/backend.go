// Package backend holds the pluggable compute backends for the revised
// simplex's per-iteration hot kernels: the devex pricing scan, pivot-row
// assembly over the CSR mirror, the phase-1 dual-delta row walk, and
// speculative base FTRANs for runner-up pricing candidates.
//
// Two implementations exist. The serial backend is a verbatim port of the
// historical in-simplex loops and is the default. The parallel backend fans
// the same kernels across a persistent goroutine pool over disjoint column
// ranges and reduces deterministically, with a fixed tie-break on column
// index, so the pivot trajectory — and therefore every solver counter and
// solution byte — is identical to the serial backend for every worker
// count.
//
// The determinism contract every backend must satisfy:
//
//   - PriceDevex returns exactly the column the serial full scan returns:
//     the lowest-index column among those maximizing d_j²/γ_j (the scan
//     keeps the first strict maximum, so ties resolve to the lowest index;
//     a parallel reduction must merge range winners in ascending range
//     order with a strictly-greater comparison to reproduce that).
//   - PivotRow and DualDelta must accumulate each alpha[j] (resp. d[j]) in
//     ascending rhoIdx order, so floating-point sums are bit-identical to
//     the serial row walk. Partitioning by column ranges preserves this;
//     partitioning by rows would not.
//   - Speculate/Collect may only serve a base solve computed against the
//     exact *sparse.LU object the caller presents (pointer identity):
//     refactorization builds a new LU, so stale speculation invalidates
//     itself. A served result must be bit-identical to a fresh
//     LU.SolveSparseRHS of the same column, which holds because the solve
//     is a pure function of the immutable factors.
//   - All counters must be independent of the worker count: fan-out
//     thresholds depend only on problem size, and the speculation batch is
//     a fixed K, so serial-vs-parallel table diffs are byte-empty.
package backend

import (
	"fmt"
	"runtime"

	"github.com/interdc/postcard/internal/lp/sparse"
)

// VStatus is the simplex status of one variable. The values mirror the
// solver's historical private constants so status slices pass through the
// seam without copying.
type VStatus byte

// Variable statuses.
const (
	Basic VStatus = iota + 1
	AtLower
	AtUpper
	Free // nonbasic free variable resting at zero
)

// SpecBatch is the fixed number of runner-up pricing candidates whose base
// FTRANs a backend may speculate per iteration. It is a constant — not a
// function of the worker count — so the SpecFtrans counter is identical
// for every pool size.
const SpecBatch = 4

// PriceInput bundles the read-only state of one devex pricing scan. All
// slices are owned by the caller and must not be written by the backend.
type PriceInput struct {
	D     []float64 // maintained reduced costs, length n+m
	W     []float64 // devex reference weights, length n+m
	Lo    []float64 // variable lower bounds
	Hi    []float64 // variable upper bounds
	VStat []VStatus // variable statuses
	Tol   float64   // optimality tolerance
}

// Counters is the per-backend instrumentation, threaded through
// Solution → core.Result → core.SolveStats. Every field is a monotone
// counter whose value is independent of the worker count.
type Counters struct {
	DevexScans    int // full devex pricing scans performed
	ParallelScans int // scans that fanned out across the worker pool
	SpecFtrans    int // speculative base FTRANs computed
	SpecFtranHits int // entering-column FTRANs served from the speculative cache
}

// Backend executes the simplex hot kernels. Implementations are bound to
// one solve's dimensions (m rows, total columns) and must be Closed when
// the solve finishes.
type Backend interface {
	// Name reports the registry name ("serial" or "parallel").
	Name() string
	// Workers reports the goroutine count kernels fan across (1 for serial).
	Workers() int

	// PriceDevex runs the full devex pricing scan and returns the entering
	// column (q == -1 at optimality), its maintained reduced cost, and the
	// movement direction. Implementations may additionally record runner-up
	// candidates for Speculate.
	PriceDevex(in *PriceInput) (q int, dq, dir float64)

	// PivotRow assembles alpha = rhoᵀA over the CSR row mirror: for every
	// row i in rhoIdx with rho[i] != 0, alpha[j] += rho[i]·a_ij. First
	// touches of a column j set mark[j], zero alpha[j], and append j to
	// idx; the grown idx is returned. alpha/mark are pattern-clean on
	// entry (the caller's clearAlpha invariant).
	PivotRow(at *sparse.CSR, rho []float64, rhoIdx []int, alpha []float64, mark []bool, idx []int) []int

	// DualDelta applies d[j] -= rho[i]·a_ij over the CSR rows in rhoIdx —
	// the phase-1 maintained-dual repair walk.
	DualDelta(at *sparse.CSR, rho []float64, rhoIdx []int, d []float64)

	// Speculate starts batched base solves B⁻¹a_j for the runner-up
	// candidates of the most recent PriceDevex call, excluding column
	// skip, against the given factorization. It must not block on the
	// solves. Serial backends may make it a no-op.
	Speculate(lu *sparse.LU, a *sparse.Matrix, limit, skip int)

	// Collect returns the speculative base solve of column q if one was
	// computed against exactly this lu (pointer identity). On a hit with
	// sparseOK, x holds values at the positions listed in pat (other
	// positions untouched since the slot was zeroed); with !sparseOK, x is
	// the fully-written dense result. The returned slices are valid until
	// the next Speculate call.
	Collect(q int, lu *sparse.LU) (x []float64, pat []int, sparseOK, hit bool)

	// Counters returns the accumulated instrumentation.
	Counters() Counters

	// Close releases pool resources. The backend must not be used after.
	Close()
}

// New builds the named backend for an m-row solve with total columns.
// Valid names are "" (serial), "serial", and "parallel"; workers <= 0
// selects GOMAXPROCS. The worker count only affects wall-clock: results
// and counters are bit-identical across counts.
func New(name string, workers, m, total int) (Backend, error) {
	switch name {
	case "", NameSerial:
		return &serial{}, nil
	case NameParallel:
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		return newParallel(workers, m, total), nil
	default:
		return nil, fmt.Errorf("lp: unknown backend %q (known: %s, %s)", name, NameSerial, NameParallel)
	}
}

// Backend registry names.
const (
	NameSerial   = "serial"
	NameParallel = "parallel"
)

// Names lists the registered backend names.
func Names() []string { return []string{NameSerial, NameParallel} }

// cand is one pricing candidate: its devex score, column, maintained
// reduced cost, and movement direction.
type cand struct {
	score   float64
	j       int
	dj, dir float64
}

// scanRange is the devex pricing kernel over columns [lo, hi): the exact
// loop the simplex historically ran over the full range. It returns the
// first strict maximizer of d_j²/γ_j within the range (score zero, j == -1
// when no candidate qualifies) and, when top is non-nil, records the
// range's best SpecBatch candidates.
func scanRange(in *PriceInput, lo, hi int, top *topK) cand {
	best := cand{j: -1}
	tol := in.Tol
	for j := lo; j < hi; j++ {
		st := in.VStat[j]
		if st == Basic || in.Lo[j] == in.Hi[j] {
			continue
		}
		dj := in.D[j]
		var cdir float64
		switch st {
		case AtLower:
			if dj >= -tol {
				continue
			}
			cdir = 1
		case AtUpper:
			if dj <= tol {
				continue
			}
			cdir = -1
		default: // Free
			if dj < -tol {
				cdir = 1
			} else if dj > tol {
				cdir = -1
			} else {
				continue
			}
		}
		score := dj * dj / in.W[j]
		if score > best.score {
			best = cand{score: score, j: j, dj: dj, dir: cdir}
		}
		if top != nil {
			top.offer(cand{score: score, j: j, dj: dj, dir: cdir})
		}
	}
	return best
}

// topK keeps the SpecBatch best candidates seen so far, ordered by
// descending score with ties broken toward the lower column index (offers
// arrive in ascending column order and equal scores never displace or pass
// an incumbent, which realizes that tie-break without comparing indices).
type topK struct {
	n int
	c [SpecBatch]cand
}

func (t *topK) reset() { t.n = 0 }

func (t *topK) offer(x cand) {
	if t.n < len(t.c) {
		t.c[t.n] = x
		t.n++
	} else if t.c[t.n-1].score < x.score {
		t.c[t.n-1] = x
	} else {
		return
	}
	for i := t.n - 1; i > 0 && t.c[i-1].score < t.c[i].score; i-- {
		t.c[i-1], t.c[i] = t.c[i], t.c[i-1]
	}
}

// pivotRowSerial is the historical pivot-row assembly walk, shared by the
// serial backend and the parallel backend's small-problem path.
func pivotRowSerial(at *sparse.CSR, rho []float64, rhoIdx []int, alpha []float64, mark []bool, idx []int) []int {
	for _, i := range rhoIdx {
		ri := rho[i]
		if ri == 0 {
			continue
		}
		cols, vals := at.RowSlices(i)
		for p, j := range cols {
			if !mark[j] {
				mark[j] = true
				idx = append(idx, j)
				alpha[j] = 0
			}
			alpha[j] += ri * vals[p]
		}
	}
	return idx
}

// dualDeltaSerial is the historical phase-1 dual repair walk.
func dualDeltaSerial(at *sparse.CSR, rho []float64, rhoIdx []int, d []float64) {
	for _, i := range rhoIdx {
		vi := rho[i]
		if vi == 0 {
			continue
		}
		cols, vals := at.RowSlices(i)
		for p, j := range cols {
			d[j] -= vi * vals[p]
		}
	}
}
