package backend

import (
	"sort"
	"sync"

	"github.com/interdc/postcard/internal/lp/sparse"
)

// Fan-out thresholds. Both depend only on problem size — never on the
// worker count — so whether a kernel ran parallel (and every counter that
// records it) is identical for every pool size.
const (
	// minParallelCols is the column count below which the pricing scan,
	// pivot-row assembly, and dual-delta walk stay on the calling
	// goroutine: the dispatch handshake costs more than the scan.
	minParallelCols = 4096
	// minFanRows is the BTRAN pattern size below which the CSR row walks
	// stay serial: a near-empty rho touches too few entries to split.
	minFanRows = 8
)

// job is one unit of pool work: a kernel kind plus a worker or slot index.
type job struct {
	kind int8
	idx  int
}

const (
	jobScan int8 = iota + 1
	jobPivotRow
	jobDualDelta
	jobSpec
)

// specSlot holds one speculative base FTRAN: the column and factorization
// it was computed against, a private workspace, and the result in the
// slot-owned dense buffer x (pattern pat on the sparse path).
type specSlot struct {
	col   int
	lu    *sparse.LU
	a     *sparse.Matrix
	limit int
	x     []float64
	pat   []int
	ok    bool
	done  bool // base solve has run (always true for eager batches)
	ws    sparse.PatternWorkspace
}

// parallel fans the simplex hot kernels across a persistent goroutine
// pool. All dispatch state is preallocated in newParallel, so steady-state
// kernel calls allocate nothing; synchronous kernels join on scanWG before
// returning, while speculative FTRANs run detached under specWG and join
// lazily at the next Collect or Speculate.
type parallel struct {
	workers int
	m       int
	total   int
	lazy    bool  // single-worker pool: kernels run inline, speculation defers to Collect
	ranges  []int // workers+1 column-range boundaries

	jobs   chan job
	scanWG sync.WaitGroup
	specWG sync.WaitGroup
	closed bool

	// pricing scan state
	in      *PriceInput
	best    []cand // per-worker range winner
	top     []topK // per-worker runner-up candidates
	merge   []cand // runner merge buffer, cap workers*SpecBatch
	runners [SpecBatch]int
	runnerN int

	// pivot-row / dual-delta state
	at     *sparse.CSR
	rho    []float64
	rhoIdx []int
	alpha  []float64
	mark   []bool
	seg    [][]int // per-worker alphaIdx segments
	d      []float64

	// speculation state
	spec  [SpecBatch]specSlot
	specN int

	counters Counters
}

func newParallel(workers, m, total int) *parallel {
	p := &parallel{
		workers: workers,
		m:       m,
		total:   total,
		lazy:    workers == 1,
		ranges:  make([]int, workers+1),
		jobs:    make(chan job, workers+SpecBatch),
		best:    make([]cand, workers),
		top:     make([]topK, workers),
		merge:   make([]cand, 0, workers*SpecBatch),
		seg:     make([][]int, workers),
	}
	for w := 0; w <= workers; w++ {
		p.ranges[w] = w * total / workers
	}
	for w := 0; w < workers; w++ {
		width := p.ranges[w+1] - p.ranges[w]
		p.seg[w] = make([]int, 0, width)
	}
	for i := range p.spec {
		p.spec[i].x = make([]float64, m)
		p.spec[i].ws.Ensure(m)
		p.spec[i].ok = true // empty slot: nothing to zero on first reuse
	}
	// A single-worker pool never overlaps anything; running its kernels
	// inline on the caller (see dispatch) skips the goroutine and the
	// per-kernel channel handshake entirely.
	if !p.lazy {
		for w := 0; w < workers; w++ {
			go p.worker()
		}
	}
	return p
}

func (p *parallel) Name() string { return NameParallel }

func (p *parallel) Workers() int { return p.workers }

func (p *parallel) worker() {
	for jb := range p.jobs {
		switch jb.kind {
		case jobScan:
			p.best[jb.idx] = scanRange(p.in, p.ranges[jb.idx], p.ranges[jb.idx+1], &p.top[jb.idx])
			p.scanWG.Done()
		case jobPivotRow:
			p.pivotRowRange(jb.idx)
			p.scanWG.Done()
		case jobDualDelta:
			p.dualDeltaRange(jb.idx)
			p.scanWG.Done()
		case jobSpec:
			sl := &p.spec[jb.idx]
			idx, val := sl.a.ColumnSlices(sl.col)
			sl.pat, sl.ok = sl.lu.SolveSparseRHS(idx, val, sl.x, &sl.ws, sl.limit)
			p.specWG.Done()
		}
	}
}

// dispatch fans one synchronous kernel across every worker and joins. A
// single-worker pool runs its one range inline on the caller — same code,
// same single range [0, total), no handshake — so the kernel's result (and
// every counter recorded by the caller) is identical either way.
func (p *parallel) dispatch(kind int8) {
	if p.lazy {
		switch kind {
		case jobScan:
			p.best[0] = scanRange(p.in, p.ranges[0], p.ranges[1], &p.top[0])
		case jobPivotRow:
			p.pivotRowRange(0)
		case jobDualDelta:
			p.dualDeltaRange(0)
		}
		return
	}
	p.scanWG.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.jobs <- job{kind: kind, idx: w}
	}
	p.scanWG.Wait()
}

func (p *parallel) PriceDevex(in *PriceInput) (q int, dq, dir float64) {
	p.counters.DevexScans++
	if p.total < minParallelCols {
		// Too small to amortize the handshake; same scan, same runners, on
		// the calling goroutine. The threshold is size-only, so this branch
		// — and every counter — is taken identically for any worker count.
		p.top[0].reset()
		best := scanRange(in, 0, p.total, &p.top[0])
		p.mergeRunners(1)
		return best.j, best.dj, best.dir
	}
	p.counters.ParallelScans++
	for w := 0; w < p.workers; w++ {
		p.top[w].reset()
	}
	p.in = in
	p.dispatch(jobScan)
	// Deterministic arg-max reduction: range winners merge in ascending
	// range order under a strictly-greater comparison, reproducing the
	// serial scan's lowest-index tie-break exactly.
	best := cand{j: -1}
	for w := 0; w < p.workers; w++ {
		if p.best[w].j >= 0 && p.best[w].score > best.score {
			best = p.best[w]
		}
	}
	p.mergeRunners(p.workers)
	return best.j, best.dj, best.dir
}

// mergeRunners reduces the per-worker top-K lists into the global runner
// list: every range's top SpecBatch contains the global top SpecBatch, so
// sorting the union by (score desc, column asc) and truncating yields a
// result independent of how the ranges were cut.
func (p *parallel) mergeRunners(workers int) {
	buf := p.merge[:0]
	for w := 0; w < workers; w++ {
		buf = append(buf, p.top[w].c[:p.top[w].n]...)
	}
	for i := 1; i < len(buf); i++ {
		x := buf[i]
		k := i
		for k > 0 && (buf[k-1].score < x.score || (buf[k-1].score == x.score && buf[k-1].j > x.j)) {
			buf[k] = buf[k-1]
			k--
		}
		buf[k] = x
	}
	p.merge = buf
	n := len(buf)
	if n > SpecBatch {
		n = SpecBatch
	}
	for i := 0; i < n; i++ {
		p.runners[i] = buf[i].j
	}
	p.runnerN = n
}

func (p *parallel) pivotRowRange(w int) {
	lo, hi := p.ranges[w], p.ranges[w+1]
	seg := p.seg[w][:0]
	for _, i := range p.rhoIdx {
		ri := p.rho[i]
		if ri == 0 {
			continue
		}
		cols, vals := p.at.RowSlices(i)
		for c := sort.SearchInts(cols, lo); c < len(cols) && cols[c] < hi; c++ {
			j := cols[c]
			if !p.mark[j] {
				p.mark[j] = true
				seg = append(seg, j)
				p.alpha[j] = 0
			}
			p.alpha[j] += ri * vals[c]
		}
	}
	p.seg[w] = seg
}

func (p *parallel) dualDeltaRange(w int) {
	lo, hi := p.ranges[w], p.ranges[w+1]
	for _, i := range p.rhoIdx {
		vi := p.rho[i]
		if vi == 0 {
			continue
		}
		cols, vals := p.at.RowSlices(i)
		for c := sort.SearchInts(cols, lo); c < len(cols) && cols[c] < hi; c++ {
			p.d[cols[c]] -= vi * vals[c]
		}
	}
}

// PivotRow partitions by column ranges, never by rows: each worker walks
// all of rhoIdx in order and binary-searches its column sub-range within
// each CSR row, so every alpha[j] accumulates its terms in exactly the
// serial order and the floating-point result is bit-identical. Only the
// order of alphaIdx differs (worker segments concatenate in range order),
// which no consumer depends on — the devex weight and reduced-cost updates
// are independent per column and the ratio test reads the FTRAN pattern,
// not alpha.
func (p *parallel) PivotRow(at *sparse.CSR, rho []float64, rhoIdx []int, alpha []float64, mark []bool, idx []int) []int {
	if len(rhoIdx) < minFanRows || p.total < minParallelCols {
		return pivotRowSerial(at, rho, rhoIdx, alpha, mark, idx)
	}
	p.at, p.rho, p.rhoIdx, p.alpha, p.mark = at, rho, rhoIdx, alpha, mark
	p.dispatch(jobPivotRow)
	for w := 0; w < p.workers; w++ {
		idx = append(idx, p.seg[w]...)
	}
	return idx
}

func (p *parallel) DualDelta(at *sparse.CSR, rho []float64, rhoIdx []int, d []float64) {
	if len(rhoIdx) < minFanRows || p.total < minParallelCols {
		dualDeltaSerial(at, rho, rhoIdx, d)
		return
	}
	p.at, p.rho, p.rhoIdx, p.d = at, rho, rhoIdx, d
	p.dispatch(jobDualDelta)
}

// Speculate launches detached base solves for the most recent scan's
// runner-up candidates (minus the column that actually entered). The jobs
// only read the immutable factors and constraint matrix and write
// slot-private buffers, so they overlap safely with the caller's ratio
// test, pivot, and even a refactorization — which replaces the LU object
// and thereby invalidates the batch through Collect's pointer check.
//
// A single-worker pool has no spare core to burn on misses, so it records
// the batch without solving and Collect runs the solve only when the
// candidate actually enters ("lazy" mode). A lazy hit computes the exact
// same SolveSparseRHS against the same LU, and both SpecFtrans (counted at
// issue) and SpecFtranHits (the hit condition never reads the result) are
// unchanged — so counters and solution bytes stay identical to every other
// worker count; only the wasted work disappears.
func (p *parallel) Speculate(lu *sparse.LU, a *sparse.Matrix, limit, skip int) {
	if p.runnerN == 0 {
		return
	}
	p.specWG.Wait() // join the previous batch before reusing its slots
	n := 0
	for i := 0; i < p.runnerN && n < len(p.spec); i++ {
		col := p.runners[i]
		if col == skip {
			continue
		}
		sl := &p.spec[n]
		// Restore the slot's all-zero dst invariant from the previous solve.
		if sl.ok {
			for _, k := range sl.pat {
				sl.x[k] = 0
			}
		} else {
			for k := range sl.x {
				sl.x[k] = 0
			}
		}
		sl.col, sl.lu, sl.a, sl.limit = col, lu, a, limit
		sl.pat, sl.ok, sl.done = nil, true, !p.lazy
		n++
	}
	p.specN = n
	p.counters.SpecFtrans += n
	if p.lazy {
		return
	}
	p.specWG.Add(n)
	for i := 0; i < n; i++ {
		p.jobs <- job{kind: jobSpec, idx: i}
	}
}

func (p *parallel) Collect(q int, lu *sparse.LU) (x []float64, pat []int, sparseOK, hit bool) {
	if p.specN == 0 {
		return nil, nil, false, false
	}
	p.specWG.Wait()
	for i := 0; i < p.specN; i++ {
		sl := &p.spec[i]
		if sl.col == q && sl.lu == lu {
			p.counters.SpecFtranHits++
			if !sl.done {
				// Lazy hit: run the deferred base solve now. Identical
				// inputs, identical factors — bit-identical result.
				idx, val := sl.a.ColumnSlices(sl.col)
				sl.pat, sl.ok = sl.lu.SolveSparseRHS(idx, val, sl.x, &sl.ws, sl.limit)
				sl.done = true
			}
			return sl.x, sl.pat, sl.ok, true
		}
	}
	return nil, nil, false, false
}

func (p *parallel) Counters() Counters { return p.counters }

func (p *parallel) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.specWG.Wait()
	close(p.jobs)
}
