package lp

import "sort"

// ColumnSource prices a universe of delayed columns — variables that belong
// to the full model but have not been materialized into the restricted
// master — against the duals of a solved restriction, and grafts selected
// columns onto the model. Candidates are addressed by a dense index in
// [0, Len()); the driver guarantees Materialize is called at most once per
// candidate, in strictly increasing model-column order within a batch, so a
// deterministic source yields bit-deterministic solves.
type ColumnSource interface {
	// Len reports the size of the delayed-column universe. It must not
	// change over the life of a SolveColGen call.
	Len() int
	// Price returns the reduced cost candidate c would have under the row
	// duals y (indexed by ConID, minimization sign convention:
	// rc = obj - sum_i coef_i * y[cons_i]). It must not materialize
	// anything.
	Price(c int, y []float64) float64
	// Materialize appends candidate c to the model via Model.AddColumn.
	Materialize(m *Model, c int) (VarID, error)
}

// colGenBatch bounds how many violated columns one pricing round may
// materialize. Batching keeps the restricted master small when the first
// duals make large swaths of the universe look attractive; the most
// negative reduced costs enter first.
const colGenBatch = 512

// SolveColGen solves the full model implied by m plus every column of src
// by delayed column generation: it solves the restricted master m, prices
// the uninstantiated universe against the optimal duals, materializes
// violated columns in batches (extending the warm-start basis with the new
// columns resting at their lower bound, so re-solves skip phase 1), and
// repeats until no delayed column prices out attractive. At that point the
// restricted optimum is optimal for the full model — the duals certify
// dual feasibility of every column, materialized or not — so the result is
// exactly what materializing the whole universe up front would produce,
// built from a fraction of the columns.
//
// An infeasible restriction proves nothing about the full model (the
// missing columns may be what feasibility needs), and an infeasible simplex
// exposes no duals to price against; the driver falls back to materializing
// the entire remaining universe and re-solving warm from the phase-1 basis,
// so infeasibility verdicts are always full-model verdicts. Unbounded and
// iteration-limited outcomes return as-is (a ray of the restriction is a
// ray of the full model).
//
// The returned Solution aggregates work counters (iterations, basis-solve
// and pricing telemetry) across all rounds, reports presolve reductions for
// the final round, and describes the generation itself in ColGenRounds,
// ColGenColumns and ColGenUniverse.
func SolveColGen(m *Model, src ColumnSource, opts *Options) (*Solution, error) {
	universe := src.Len()
	if universe == 0 {
		return m.Solve(opts)
	}
	priceTol := 1e-7
	if opts != nil && opts.OptTol > 0 {
		priceTol = opts.OptTol
	}
	cur := Options{}
	if opts != nil {
		cur = *opts
	}
	// Pricing is only sound against an exact dual certificate of the
	// restricted master. The presolve postsolve preserves the duality
	// identity but not exactness: when a singleton row is folded into a
	// column's bound and that column is later removed as empty, the folded
	// row's dual is unrecoverable and reported as zero, which makes every
	// delayed column priced through that row look unattractive and
	// terminates generation at a suboptimal restriction. The masters are
	// small — generation itself removes the columns presolve would have —
	// so rounds always solve the un-presolved model.
	cur.Presolve = false
	materialized := make([]bool, universe)
	remaining := universe
	var batch []int
	acc := struct {
		iterations, phase1, factorized             int
		sparseSolves, denseSolves, nnz, dim        int
		devexResets, dualRecomputes                int
		rounds, added                              int
		warmStarted                                bool
	}{}
	addBatch := func(sol *Solution, cands []int) error {
		// Ascending candidate order == ascending model-column order, which
		// keeps the source's column bookkeeping append-only.
		sort.Ints(cands)
		for _, c := range cands {
			if _, err := src.Materialize(m, c); err != nil {
				return err
			}
			materialized[c] = true
		}
		remaining -= len(cands)
		acc.added += len(cands)
		cur.InitialBasis = extendBasis(sol.Basis, len(cands))
		return nil
	}
	for {
		sol, err := m.Solve(&cur)
		if err != nil {
			return nil, err
		}
		acc.rounds++
		acc.iterations += sol.Iterations
		acc.phase1 += sol.Phase1Iter
		acc.factorized += sol.Factorized
		acc.sparseSolves += sol.SparseSolves
		acc.denseSolves += sol.DenseSolves
		acc.nnz += sol.SolveNNZ
		acc.dim += sol.SolveDim
		acc.devexResets += sol.DevexResets
		acc.dualRecomputes += sol.DualRecomputes
		if acc.rounds == 1 {
			acc.warmStarted = sol.WarmStarted
		}
		done := false
		switch sol.Status {
		case Optimal:
			if remaining == 0 {
				done = true
				break
			}
			batch = batch[:0]
			for c := 0; c < universe; c++ {
				if !materialized[c] && src.Price(c, sol.Dual) < -priceTol {
					batch = append(batch, c)
				}
			}
			if len(batch) == 0 {
				done = true
				break
			}
			if len(batch) > colGenBatch {
				// Keep the most attractive columns; ties break on candidate
				// index so the cut is deterministic.
				rc := make(map[int]float64, len(batch))
				for _, c := range batch {
					rc[c] = src.Price(c, sol.Dual)
				}
				sort.Slice(batch, func(a, b int) bool {
					ra, rb := rc[batch[a]], rc[batch[b]]
					if ra != rb {
						return ra < rb
					}
					return batch[a] < batch[b]
				})
				batch = batch[:colGenBatch]
			}
			if err := addBatch(sol, batch); err != nil {
				return nil, err
			}
		case Infeasible:
			if remaining == 0 {
				done = true
				break
			}
			batch = batch[:0]
			for c := 0; c < universe; c++ {
				if !materialized[c] {
					batch = append(batch, c)
				}
			}
			if err := addBatch(sol, batch); err != nil {
				return nil, err
			}
		default:
			done = true
		}
		if done {
			sol.Iterations = acc.iterations
			sol.Phase1Iter = acc.phase1
			sol.Factorized = acc.factorized
			sol.SparseSolves = acc.sparseSolves
			sol.DenseSolves = acc.denseSolves
			sol.SolveNNZ = acc.nnz
			sol.SolveDim = acc.dim
			sol.DevexResets = acc.devexResets
			sol.DualRecomputes = acc.dualRecomputes
			sol.WarmStarted = acc.warmStarted
			sol.ColGenRounds = acc.rounds
			sol.ColGenColumns = acc.added
			sol.ColGenUniverse = universe
			return sol, nil
		}
	}
}

// extendBasis grows a basis snapshot by extra structural columns resting at
// their lower bound. The basic count is unchanged, so a snapshot the simplex
// accepted for the restriction is accepted for the extension too — and the
// implied basic point is the restriction's own, which stays primal feasible
// (the new columns contribute nothing at their bound), so the re-solve
// resumes from dual pricing instead of re-running phase 1.
func extendBasis(b *Basis, extra int) *Basis {
	if b == nil {
		return nil
	}
	out := &Basis{
		NumVars: b.NumVars + extra,
		NumRows: b.NumRows,
		Status:  make([]BasisStatus, 0, len(b.Status)+extra),
	}
	out.Status = append(out.Status, b.Status[:b.NumVars]...)
	for i := 0; i < extra; i++ {
		out.Status = append(out.Status, BasisAtLower)
	}
	out.Status = append(out.Status, b.Status[b.NumVars:]...)
	return out
}
