package lp

import "sort"

// ColumnSource prices a universe of delayed columns — variables that belong
// to the full model but have not been materialized into the restricted
// master — against the duals of a solved restriction, and grafts selected
// columns onto the model. Candidates are addressed by a dense index in
// [0, Len()); the driver guarantees Materialize is called at most once per
// candidate, in strictly increasing model-column order within a batch, so a
// deterministic source yields bit-deterministic solves.
//
// ColumnSource is the fixed-row special case of PricingOracle: every
// candidate hangs off rows the restriction already contains. Sources that
// need to create rows alongside their columns (whole-path Dantzig–Wolfe
// columns over lazily materialized capacity rows) implement PricingOracle
// directly and use SolvePriced.
type ColumnSource interface {
	// Len reports the size of the delayed-column universe. It must not
	// change over the life of a SolveColGen call.
	Len() int
	// Price returns the reduced cost candidate c would have under the row
	// duals y (indexed by ConID, minimization sign convention:
	// rc = obj - sum_i coef_i * y[cons_i]). It must not materialize
	// anything.
	Price(c int, y []float64) float64
	// Materialize appends candidate c to the model via Model.AddColumn.
	Materialize(m *Model, c int) (VarID, error)
}

// colGenBatch bounds how many violated columns one pricing round may
// materialize. Batching keeps the restricted master small when the first
// duals make large swaths of the universe look attractive; the most
// negative reduced costs enter first.
const colGenBatch = 512

// columnSourceOracle adapts the dense-universe ColumnSource contract onto
// the PricingOracle round protocol, preserving SolveColGen's exact batching
// behavior: all violated candidates, capped at colGenBatch by most negative
// reduced cost with index tie-breaks, materialized in ascending candidate
// order; an infeasible restriction materializes the entire remaining
// universe. It never adds rows.
type columnSourceOracle struct {
	src          ColumnSource
	materialized []bool
	remaining    int
	batch        []int
}

func (o *columnSourceOracle) Universe() int { return len(o.materialized) }

func (o *columnSourceOracle) add(m *Model, cands []int) (int, error) {
	// Ascending candidate order == ascending model-column order, which
	// keeps the source's column bookkeeping append-only.
	sort.Ints(cands)
	for _, c := range cands {
		if _, err := o.src.Materialize(m, c); err != nil {
			return 0, err
		}
		o.materialized[c] = true
	}
	o.remaining -= len(cands)
	return len(cands), nil
}

func (o *columnSourceOracle) PriceBatch(m *Model, y []float64, tol float64) (int, int, error) {
	if o.remaining == 0 {
		return 0, 0, nil
	}
	o.batch = o.batch[:0]
	universe := len(o.materialized)
	for c := 0; c < universe; c++ {
		if !o.materialized[c] && o.src.Price(c, y) < -tol {
			o.batch = append(o.batch, c)
		}
	}
	if len(o.batch) == 0 {
		return 0, 0, nil
	}
	if len(o.batch) > colGenBatch {
		// Keep the most attractive columns; ties break on candidate
		// index so the cut is deterministic.
		rc := make(map[int]float64, len(o.batch))
		for _, c := range o.batch {
			rc[c] = o.src.Price(c, y)
		}
		sort.Slice(o.batch, func(a, b int) bool {
			ra, rb := rc[o.batch[a]], rc[o.batch[b]]
			if ra != rb {
				return ra < rb
			}
			return o.batch[a] < o.batch[b]
		})
		o.batch = o.batch[:colGenBatch]
	}
	cols, err := o.add(m, o.batch)
	return cols, 0, err
}

func (o *columnSourceOracle) MaterializeRest(m *Model) (int, int, bool, error) {
	if o.remaining == 0 {
		return 0, 0, true, nil
	}
	o.batch = o.batch[:0]
	universe := len(o.materialized)
	for c := 0; c < universe; c++ {
		if !o.materialized[c] {
			o.batch = append(o.batch, c)
		}
	}
	cols, err := o.add(m, o.batch)
	return cols, 0, true, err
}

// SolveColGen solves the full model implied by m plus every column of src
// by delayed column generation: it solves the restricted master m, prices
// the uninstantiated universe against the optimal duals, materializes
// violated columns in batches (extending the warm-start basis with the new
// columns resting at their lower bound, so re-solves skip phase 1), and
// repeats until no delayed column prices out attractive. At that point the
// restricted optimum is optimal for the full model — the duals certify
// dual feasibility of every column, materialized or not — so the result is
// exactly what materializing the whole universe up front would produce,
// built from a fraction of the columns.
//
// An infeasible restriction proves nothing about the full model (the
// missing columns may be what feasibility needs), and an infeasible simplex
// exposes no duals to price against; the driver falls back to materializing
// the entire remaining universe and re-solving warm from the phase-1 basis,
// so infeasibility verdicts are always full-model verdicts. Unbounded and
// iteration-limited outcomes return as-is (a ray of the restriction is a
// ray of the full model).
//
// SolveColGen is a thin shim over SolvePriced with the ColumnSource adapted
// onto the PricingOracle round protocol; the returned Solution aggregates
// work counters across all rounds exactly as SolvePriced documents.
func SolveColGen(m *Model, src ColumnSource, opts *Options) (*Solution, error) {
	universe := src.Len()
	if universe == 0 {
		return m.Solve(opts)
	}
	oracle := &columnSourceOracle{
		src:          src,
		materialized: make([]bool, universe),
		remaining:    universe,
	}
	return SolvePriced(m, oracle, opts)
}
