package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestStrongDualityIdentity checks the optimality certificate on random
// optimal instances: with duals y and reduced costs d, the identity
// c·x = y·b + Σ_j d_j·x_j must hold (complementary slackness makes both
// sides collapse onto the optimal objective).
func TestStrongDualityIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		m := randomModel(rng)
		s, err := m.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != Optimal {
			continue
		}
		// Evaluate in minimization convention.
		sign := 1.0
		if m.maximize {
			sign = -1
		}
		lhs := sign * s.Objective
		rhs := 0.0
		for i, r := range m.rows {
			rhs += sign * s.Dual[i] * r.rhs
		}
		for j := range s.X {
			rhs += sign * s.ReducedObj[j] * s.X[j]
		}
		scale := 1 + math.Abs(lhs)
		if math.Abs(lhs-rhs) > 1e-4*scale {
			t.Fatalf("trial %d: duality identity broken: c·x=%v, y·b+d·x=%v", trial, lhs, rhs)
		}
		checked++
	}
	if checked < 60 {
		t.Fatalf("only %d optimal instances checked", checked)
	}
}

// TestComplementarySlackness: on optimal solutions, a strictly interior
// variable must have (near-)zero reduced cost and a slack constraint a
// (near-)zero dual.
func TestComplementarySlackness(t *testing.T) {
	rng := rand.New(rand.NewSource(809))
	for trial := 0; trial < 200; trial++ {
		m := randomModel(rng)
		s, err := m.Solve(nil)
		if err != nil {
			t.Fatal(err)
		}
		if s.Status != Optimal {
			continue
		}
		const tol = 1e-5
		for j, x := range s.X {
			interior := (math.IsInf(m.lo[j], -1) || x > m.lo[j]+1e-6) &&
				(math.IsInf(m.hi[j], 1) || x < m.hi[j]-1e-6)
			if interior && math.Abs(s.ReducedObj[j]) > tol*(1+math.Abs(m.obj[j])) {
				t.Fatalf("trial %d: interior variable %d has reduced cost %v", trial, j, s.ReducedObj[j])
			}
		}
		for i, r := range m.rows {
			lhs := 0.0
			for p, j := range r.idx {
				lhs += r.val[p] * s.X[j]
			}
			slack := math.Abs(lhs - r.rhs)
			if r.sense != EQ && slack > 1e-5*(1+math.Abs(r.rhs)) {
				if math.Abs(s.Dual[i]) > tol*10 {
					t.Fatalf("trial %d: slack row %d (gap %v) has dual %v", trial, i, slack, s.Dual[i])
				}
			}
		}
	}
}
