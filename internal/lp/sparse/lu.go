package sparse

import "fmt"

// Repair records a basis repair performed during factorization: the matrix
// column at position Pos was numerically singular (its eliminated column had
// no usable pivot), so it was replaced by the unit column of row Row. The
// caller is expected to update its own bookkeeping accordingly (the revised
// simplex swaps the offending basic variable for the logical variable of
// Row).
type Repair struct {
	Pos int // column position in the factorized matrix
	Row int // row whose unit column was substituted
}

// LU is a sparse LU factorization P*B = L*U produced by Factorize, where L
// is unit lower triangular (implicit diagonal), U is upper triangular with
// its diagonal stored separately, and P is the row permutation chosen by
// partial pivoting. Row indices of L and U are expressed in pivot-position
// space once factorization completes.
type LU struct {
	n int

	lColPtr []int
	lRow    []int
	lVal    []float64

	uColPtr []int
	uRow    []int
	uVal    []float64
	uDiag   []float64

	// Row-major patterns of L and U (pattern only, no values), built once at
	// the end of factorization. The sparse-RHS transposed solves use them to
	// run Gilbert-Peierls reachability in the transposed direction: row j of
	// L (resp. U) lists the columns k whose column contains row j, i.e. the
	// successors of node j in the dependency DAG of the Lᵀ (resp. Uᵀ)
	// triangular solve.
	lRowPtr []int
	lRowCol []int
	uRowPtr []int
	uRowCol []int

	pinv []int // original row -> pivot position
	perm []int // pivot position -> original row

	repairs []Repair
}

// N reports the dimension of the factorized matrix.
func (f *LU) N() int { return f.n }

// Repairs reports the basis repairs performed, in factorization order. An
// empty slice means the matrix was numerically nonsingular.
func (f *LU) Repairs() []Repair { return f.repairs }

// LNNZ reports the number of stored off-diagonal entries of L.
func (f *LU) LNNZ() int { return len(f.lRow) }

// UNNZ reports the number of stored entries of U including the diagonal.
func (f *LU) UNNZ() int { return len(f.uRow) + f.n }

// Factorize computes a sparse LU factorization of the n x n matrix whose
// k-th column is returned by column (as parallel row-index and value
// slices, which Factorize does not retain). Partial pivoting selects the
// largest-magnitude eligible entry; a column whose largest eligible entry
// is below pivTol is treated as singular and repaired by substituting a
// unit column (see Repair). Factorize follows the left-looking
// Gilbert-Peierls algorithm: each column is obtained by a sparse triangular
// solve against the already-computed columns of L, with the nonzero pattern
// predicted by a depth-first reachability pass.
func Factorize(n int, column func(k int) ([]int, []float64), pivTol float64) (*LU, error) {
	if n < 0 {
		return nil, fmt.Errorf("sparse: negative dimension %d", n)
	}
	if pivTol <= 0 {
		pivTol = 1e-11
	}
	f := &LU{
		n:       n,
		lColPtr: make([]int, 1, n+1),
		uColPtr: make([]int, 1, n+1),
		uDiag:   make([]float64, 0, n),
		pinv:    make([]int, n),
		perm:    make([]int, n),
	}
	for i := range f.pinv {
		f.pinv[i] = -1
		f.perm[i] = -1
	}

	x := make([]float64, n)     // dense numeric workspace, reset after each column
	mark := make([]bool, n)     // DFS visited flags, reset after each column
	topo := make([]int, 0, 64)  // post-order node list (reverse = topological)
	stack := make([]int, 0, 64) // explicit DFS stack: node
	cursor := make([]int, n)    // per-node edge cursor for iterative DFS
	freeRowScan := 0            // cursor for locating unpivoted rows on repair

	for k := 0; k < n; k++ {
		rows, vals := column(k)
		if len(rows) != len(vals) {
			return nil, fmt.Errorf("sparse: column %d has mismatched slices (%d rows, %d vals)", k, len(rows), len(vals))
		}
		// Symbolic: reachability of the column pattern through L's DAG.
		topo = topo[:0]
		for _, r := range rows {
			if r < 0 || r >= n {
				return nil, fmt.Errorf("sparse: column %d row index %d out of range", k, r)
			}
			if mark[r] {
				continue
			}
			// Iterative DFS from r.
			stack = append(stack[:0], r)
			mark[r] = true
			cursor[r] = 0
			for len(stack) > 0 {
				j := stack[len(stack)-1]
				adv := false
				if pj := f.pinv[j]; pj >= 0 {
					lo, hi := f.lColPtr[pj], f.lColPtr[pj+1]
					for c := lo + cursor[j]; c < hi; c++ {
						i := f.lRow[c]
						cursor[j] = c - lo + 1
						if !mark[i] {
							mark[i] = true
							cursor[i] = 0
							stack = append(stack, i)
							adv = true
							break
						}
					}
				}
				if !adv {
					stack = stack[:len(stack)-1]
					topo = append(topo, j)
				}
			}
		}
		// Numeric scatter of the right-hand side.
		for p, r := range rows {
			x[r] += vals[p]
		}
		// Numeric solve in topological order (reverse of post-order).
		for t := len(topo) - 1; t >= 0; t-- {
			j := topo[t]
			pj := f.pinv[j]
			if pj < 0 {
				continue
			}
			xj := x[j]
			if xj == 0 {
				continue
			}
			for c := f.lColPtr[pj]; c < f.lColPtr[pj+1]; c++ {
				x[f.lRow[c]] -= f.lVal[c] * xj
			}
		}
		// Partition: pivotal entries feed U, eligible rows compete for the pivot.
		ipiv, pmax := -1, 0.0
		for _, j := range topo {
			if f.pinv[j] >= 0 {
				continue
			}
			if a := abs(x[j]); a > pmax {
				pmax, ipiv = a, j
			}
		}
		if ipiv < 0 || pmax < pivTol {
			// Singular column: substitute the unit column of the first
			// still-unpivoted row.
			for freeRowScan < n && f.pinv[freeRowScan] >= 0 {
				freeRowScan++
			}
			if freeRowScan >= n {
				return nil, fmt.Errorf("sparse: no unpivoted row available for repair at column %d", k)
			}
			r := freeRowScan
			f.pinv[r] = k
			f.perm[k] = r
			f.uDiag = append(f.uDiag, 1)
			f.uColPtr = append(f.uColPtr, len(f.uRow))
			f.lColPtr = append(f.lColPtr, len(f.lRow))
			f.repairs = append(f.repairs, Repair{Pos: k, Row: r})
			clearWorkspace(x, mark, topo)
			continue
		}
		pivVal := x[ipiv]
		f.pinv[ipiv] = k
		f.perm[k] = ipiv
		f.uDiag = append(f.uDiag, pivVal)
		for _, j := range topo {
			if j == ipiv {
				continue
			}
			v := x[j]
			if v == 0 {
				continue
			}
			if pj := f.pinv[j]; pj >= 0 {
				f.uRow = append(f.uRow, pj) // already pivot-position space
				f.uVal = append(f.uVal, v)
			} else {
				f.lRow = append(f.lRow, j) // original space; remapped below
				f.lVal = append(f.lVal, v/pivVal)
			}
		}
		f.uColPtr = append(f.uColPtr, len(f.uRow))
		f.lColPtr = append(f.lColPtr, len(f.lRow))
		clearWorkspace(x, mark, topo)
	}
	// Remap L's row indices from original space to pivot positions.
	for p, r := range f.lRow {
		f.lRow[p] = f.pinv[r]
	}
	f.buildRowPatterns()
	return f, nil
}

// buildRowPatterns assembles the row-major patterns of L and U (in pivot
// space) that the transposed sparse solves traverse.
func (f *LU) buildRowPatterns() {
	f.lRowPtr, f.lRowCol = transposePattern(f.n, f.lColPtr, f.lRow)
	f.uRowPtr, f.uRowCol = transposePattern(f.n, f.uColPtr, f.uRow)
}

// transposePattern converts a CSC pattern into the corresponding CSR
// pattern: for each row r, the list of columns k whose column contains r.
// Column lists come out sorted ascending.
func transposePattern(n int, colPtr, rowIdx []int) (rowPtr, rowCol []int) {
	rowPtr = make([]int, n+1)
	for _, r := range rowIdx {
		rowPtr[r+1]++
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	rowCol = make([]int, len(rowIdx))
	next := make([]int, n)
	copy(next, rowPtr[:n])
	for k := 0; k < n; k++ {
		for c := colPtr[k]; c < colPtr[k+1]; c++ {
			r := rowIdx[c]
			rowCol[next[r]] = k
			next[r]++
		}
	}
	return rowPtr, rowCol
}

// FactorizeBasis factorizes the square basis matrix whose k-th column is
// column basis[k] of a. It is the entry point the revised simplex uses both
// for cold refactorizations and for factorizing a caller-supplied warm
// basis: the column order is exactly the basis order, so pivot-position
// bookkeeping in the returned LU matches the simplex's row positions. Each
// basis entry must index a column of a; a's row count must equal
// len(basis).
func FactorizeBasis(a *Matrix, basis []int, pivTol float64) (*LU, error) {
	if a.Rows != len(basis) {
		return nil, fmt.Errorf("sparse: basis of %d columns for a matrix with %d rows", len(basis), a.Rows)
	}
	for k, j := range basis {
		if j < 0 || j >= a.Cols {
			return nil, fmt.Errorf("sparse: basis position %d references column %d of a %dx%d matrix",
				k, j, a.Rows, a.Cols)
		}
	}
	return Factorize(len(basis), func(k int) ([]int, []float64) {
		return a.ColumnSlices(basis[k])
	}, pivTol)
}

func clearWorkspace(x []float64, mark []bool, pattern []int) {
	for _, j := range pattern {
		x[j] = 0
		mark[j] = false
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Solve computes x = B⁻¹ b, writing the result into dst (which must have
// length n and may alias neither b nor internal state). scratch must also
// have length n; it is fully overwritten.
func (f *LU) Solve(b, dst, scratch []float64) {
	w := scratch
	for i := 0; i < f.n; i++ {
		w[f.pinv[i]] = b[i]
	}
	f.lSolve(w)
	f.uSolve(w)
	copy(dst, w)
}

// lSolve solves L*x = w in place, with w in pivot-position space.
func (f *LU) lSolve(w []float64) {
	for k := 0; k < f.n; k++ {
		xk := w[k]
		if xk == 0 {
			continue
		}
		for c := f.lColPtr[k]; c < f.lColPtr[k+1]; c++ {
			w[f.lRow[c]] -= f.lVal[c] * xk
		}
	}
}

// uSolve solves U*x = w in place, with w in pivot-position space.
func (f *LU) uSolve(w []float64) {
	for k := f.n - 1; k >= 0; k-- {
		xk := w[k] / f.uDiag[k]
		w[k] = xk
		if xk == 0 {
			continue
		}
		for c := f.uColPtr[k]; c < f.uColPtr[k+1]; c++ {
			w[f.uRow[c]] -= f.uVal[c] * xk
		}
	}
}

// SolveT computes y = B⁻ᵀ c, writing the result into dst (length n).
// scratch must have length n; it is fully overwritten.
func (f *LU) SolveT(c, dst, scratch []float64) {
	w := scratch
	copy(w, c)
	// Uᵀ w' = c  (Uᵀ is lower triangular).
	for k := 0; k < f.n; k++ {
		sum := w[k]
		for p := f.uColPtr[k]; p < f.uColPtr[k+1]; p++ {
			sum -= f.uVal[p] * w[f.uRow[p]]
		}
		w[k] = sum / f.uDiag[k]
	}
	// Lᵀ z = w'  (Lᵀ is unit upper triangular).
	for k := f.n - 1; k >= 0; k-- {
		sum := w[k]
		for p := f.lColPtr[k]; p < f.lColPtr[k+1]; p++ {
			sum -= f.lVal[p] * w[f.lRow[p]]
		}
		w[k] = sum
	}
	// Undo the row permutation: y_i = z_{pinv[i]}.
	for i := 0; i < f.n; i++ {
		dst[i] = w[f.pinv[i]]
	}
}
