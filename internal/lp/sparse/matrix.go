// Package sparse implements the compressed sparse-column matrices, sparse
// LU factorization, and triangular solves that back the LP solver. It is a
// self-contained, stdlib-only kernel in the spirit of CSparse: column-major
// storage, Gilbert-Peierls left-looking LU with partial pivoting, and
// dense-workspace triangular solves tuned for the basis matrices that arise
// from network-flow-like linear programs.
package sparse

import (
	"fmt"
	"sort"
)

// Matrix is an immutable sparse matrix in compressed sparse-column (CSC)
// form. Column j occupies positions ColPtr[j]..ColPtr[j+1] of RowIdx and
// Val. Row indices within a column are sorted ascending with no duplicates.
type Matrix struct {
	Rows   int
	Cols   int
	ColPtr []int     // length Cols+1
	RowIdx []int     // length nnz
	Val    []float64 // length nnz
}

// Triplet is a single (row, col, value) entry used when assembling a Matrix.
type Triplet struct {
	Row int
	Col int
	Val float64
}

// NewFromTriplets assembles a rows x cols CSC matrix from coordinate-form
// entries. Duplicate entries are summed; explicit zeros are kept (callers
// that care can prune). It returns an error when an index is out of range.
func NewFromTriplets(rows, cols int, entries []Triplet) (*Matrix, error) {
	for _, e := range entries {
		if e.Row < 0 || e.Row >= rows || e.Col < 0 || e.Col >= cols {
			return nil, fmt.Errorf("sparse: triplet (%d,%d) out of range for %dx%d matrix",
				e.Row, e.Col, rows, cols)
		}
	}
	// Count column occupancies.
	counts := make([]int, cols+1)
	for _, e := range entries {
		counts[e.Col+1]++
	}
	colPtr := make([]int, cols+1)
	for j := 0; j < cols; j++ {
		colPtr[j+1] = colPtr[j] + counts[j+1]
	}
	rowIdx := make([]int, len(entries))
	val := make([]float64, len(entries))
	next := make([]int, cols)
	copy(next, colPtr[:cols])
	for _, e := range entries {
		p := next[e.Col]
		rowIdx[p] = e.Row
		val[p] = e.Val
		next[e.Col]++
	}
	m := &Matrix{Rows: rows, Cols: cols, ColPtr: colPtr, RowIdx: rowIdx, Val: val}
	m.sortAndDedup()
	return m, nil
}

// sortAndDedup sorts row indices within each column and merges duplicates.
// Columns that are already strictly increasing — the common case when the
// triplets came from a row-major sweep of deduplicated rows, since the
// counting scatter in NewFromTriplets is stable — need neither sorting nor
// merging, so a fully sorted matrix returns after one O(nnz) scan without
// allocating.
func (m *Matrix) sortAndDedup() {
	sorted := true
scan:
	for j := 0; j < m.Cols; j++ {
		for p := m.ColPtr[j] + 1; p < m.ColPtr[j+1]; p++ {
			if m.RowIdx[p-1] >= m.RowIdx[p] {
				sorted = false
				break scan
			}
		}
	}
	if sorted {
		return
	}
	outPtr := make([]int, m.Cols+1)
	outIdx := m.RowIdx[:0]
	outVal := m.Val[:0]
	type ent struct {
		row int
		val float64
	}
	var scratch []ent
	writePos := 0
	for j := 0; j < m.Cols; j++ {
		start, end := m.ColPtr[j], m.ColPtr[j+1]
		scratch = scratch[:0]
		for p := start; p < end; p++ {
			scratch = append(scratch, ent{m.RowIdx[p], m.Val[p]})
		}
		sort.Slice(scratch, func(a, b int) bool { return scratch[a].row < scratch[b].row })
		outPtr[j] = writePos
		for i := 0; i < len(scratch); {
			row := scratch[i].row
			sum := 0.0
			for i < len(scratch) && scratch[i].row == row {
				sum += scratch[i].val
				i++
			}
			outIdx = append(outIdx[:writePos], row)
			outVal = append(outVal[:writePos], sum)
			writePos++
		}
	}
	outPtr[m.Cols] = writePos
	m.ColPtr = outPtr
	m.RowIdx = outIdx[:writePos]
	m.Val = outVal[:writePos]
}

// NNZ reports the number of stored entries.
func (m *Matrix) NNZ() int { return len(m.RowIdx) }

// ColumnNNZ reports the number of stored entries in column j.
func (m *Matrix) ColumnNNZ(j int) int { return m.ColPtr[j+1] - m.ColPtr[j] }

// Column invokes fn for every stored entry (row, value) of column j.
func (m *Matrix) Column(j int, fn func(row int, val float64)) {
	for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
		fn(m.RowIdx[p], m.Val[p])
	}
}

// ColumnSlices returns the row-index and value slices of column j. The
// returned slices alias the matrix and must not be mutated.
func (m *Matrix) ColumnSlices(j int) ([]int, []float64) {
	return m.RowIdx[m.ColPtr[j]:m.ColPtr[j+1]], m.Val[m.ColPtr[j]:m.ColPtr[j+1]]
}

// At returns the value at (i, j), 0 when the entry is not stored. It is
// O(log nnz(col j)) and intended for tests and small matrices.
func (m *Matrix) At(i, j int) float64 {
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	idx := sort.SearchInts(m.RowIdx[lo:hi], i)
	if lo+idx < hi && m.RowIdx[lo+idx] == i {
		return m.Val[lo+idx]
	}
	return 0
}

// MulVec computes y = A*x into the provided slice, which must have length
// Rows. x must have length Cols.
func (m *Matrix) MulVec(x, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < m.Cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			y[m.RowIdx[p]] += m.Val[p] * xj
		}
	}
}

// MulTVec computes y = Aᵀ*x into the provided slice, which must have length
// Cols. x must have length Rows.
func (m *Matrix) MulTVec(x, y []float64) {
	for j := 0; j < m.Cols; j++ {
		sum := 0.0
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			sum += m.Val[p] * x[m.RowIdx[p]]
		}
		y[j] = sum
	}
}

// CSR is an immutable row-major (compressed sparse-row) mirror of a
// Matrix. Row i occupies positions RowPtr[i]..RowPtr[i+1] of ColIdx and
// Val, with column indices sorted ascending. The revised simplex keeps a
// CSR mirror of the constraint matrix alongside the CSC original so the
// pivot row of B⁻¹A can be assembled by walking only the rows touched by a
// sparse BTRAN result, instead of scanning every column.
type CSR struct {
	Rows   int
	Cols   int
	RowPtr []int     // length Rows+1
	ColIdx []int     // length nnz
	Val    []float64 // length nnz
}

// ToCSR builds the row-major mirror of the matrix. The result shares no
// storage with the receiver.
func (m *Matrix) ToCSR() *CSR {
	c := &CSR{
		Rows:   m.Rows,
		Cols:   m.Cols,
		RowPtr: make([]int, m.Rows+1),
		ColIdx: make([]int, len(m.RowIdx)),
		Val:    make([]float64, len(m.Val)),
	}
	for _, i := range m.RowIdx {
		c.RowPtr[i+1]++
	}
	for i := 0; i < m.Rows; i++ {
		c.RowPtr[i+1] += c.RowPtr[i]
	}
	next := make([]int, m.Rows)
	copy(next, c.RowPtr[:m.Rows])
	// Scanning columns in ascending order leaves each row's column indices
	// sorted ascending.
	for j := 0; j < m.Cols; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			i := m.RowIdx[p]
			c.ColIdx[next[i]] = j
			c.Val[next[i]] = m.Val[p]
			next[i]++
		}
	}
	return c
}

// RowSlices returns the column-index and value slices of row i. The
// returned slices alias the CSR and must not be mutated.
func (c *CSR) RowSlices(i int) ([]int, []float64) {
	return c.ColIdx[c.RowPtr[i]:c.RowPtr[i+1]], c.Val[c.RowPtr[i]:c.RowPtr[i+1]]
}

// RowNNZ reports the number of stored entries in row i.
func (c *CSR) RowNNZ(i int) int { return c.RowPtr[i+1] - c.RowPtr[i] }

// Dense expands the matrix to a dense row-major [][]float64. For tests.
func (m *Matrix) Dense() [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
	}
	for j := 0; j < m.Cols; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			d[m.RowIdx[p]][j] = m.Val[p]
		}
	}
	return d
}
