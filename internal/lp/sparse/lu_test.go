package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// columnsOf adapts a Matrix to the column provider used by Factorize.
func columnsOf(m *Matrix) func(int) ([]int, []float64) {
	return func(k int) ([]int, []float64) { return m.ColumnSlices(k) }
}

// randomNonsingular builds a random sparse matrix that is nonsingular by
// construction: a dense-ish random band plus a strong diagonal.
func randomNonsingular(rng *rand.Rand, n int, density float64) *Matrix {
	var trip []Triplet
	for i := 0; i < n; i++ {
		trip = append(trip, Triplet{Row: i, Col: i, Val: 4 + rng.Float64()})
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				trip = append(trip, Triplet{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	m, err := NewFromTriplets(n, n, trip)
	if err != nil {
		panic(err)
	}
	return m
}

func TestLUSolveIdentity(t *testing.T) {
	n := 4
	var trip []Triplet
	for i := 0; i < n; i++ {
		trip = append(trip, Triplet{Row: i, Col: i, Val: 1})
	}
	m, err := NewFromTriplets(n, n, trip)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factorize(n, columnsOf(m), 0)
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	b := []float64{1, 2, 3, 4}
	x := make([]float64, n)
	scratch := make([]float64, n)
	f.Solve(b, x, scratch)
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], b[i])
		}
	}
}

func TestLUSolveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(30)
		m := randomNonsingular(rng, n, 0.25)
		f, err := Factorize(n, columnsOf(m), 1e-12)
		if err != nil {
			t.Fatalf("trial %d: Factorize: %v", trial, err)
		}
		if len(f.Repairs()) != 0 {
			t.Fatalf("trial %d: unexpected repairs %v", trial, f.Repairs())
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		scratch := make([]float64, n)
		f.Solve(b, x, scratch)
		// Check A*x == b.
		ax := make([]float64, n)
		m.MulVec(x, ax)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8*(1+math.Abs(b[i])) {
				t.Fatalf("trial %d n=%d: residual at row %d: %v vs %v", trial, n, i, ax[i], b[i])
			}
		}
	}
}

func TestLUSolveTransposeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(30)
		m := randomNonsingular(rng, n, 0.25)
		f, err := Factorize(n, columnsOf(m), 1e-12)
		if err != nil {
			t.Fatalf("trial %d: Factorize: %v", trial, err)
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		y := make([]float64, n)
		scratch := make([]float64, n)
		f.SolveT(c, y, scratch)
		// Check Aᵀ*y == c.
		aty := make([]float64, n)
		m.MulTVec(y, aty)
		for i := range c {
			if math.Abs(aty[i]-c[i]) > 1e-8*(1+math.Abs(c[i])) {
				t.Fatalf("trial %d n=%d: transpose residual at %d: %v vs %v", trial, n, i, aty[i], c[i])
			}
		}
	}
}

func TestLUPermutedIdentity(t *testing.T) {
	// A permutation matrix exercises pivoting without any arithmetic.
	n := 6
	perm := []int{3, 0, 5, 1, 4, 2}
	var trip []Triplet
	for j, i := range perm {
		trip = append(trip, Triplet{Row: i, Col: j, Val: 1})
	}
	m, err := NewFromTriplets(n, n, trip)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factorize(n, columnsOf(m), 0)
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	b := []float64{1, 2, 3, 4, 5, 6}
	x := make([]float64, n)
	scratch := make([]float64, n)
	f.Solve(b, x, scratch)
	ax := make([]float64, n)
	m.MulVec(x, ax)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-12 {
			t.Errorf("A*x[%d] = %v, want %v", i, ax[i], b[i])
		}
	}
}

func TestLUSingularRepaired(t *testing.T) {
	// Two identical columns: the second must be repaired.
	n := 3
	trip := []Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 2},
		{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 1, Val: 2},
		{Row: 2, Col: 2, Val: 5},
	}
	m, err := NewFromTriplets(n, n, trip)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Factorize(n, columnsOf(m), 1e-10)
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	if len(f.Repairs()) != 1 {
		t.Fatalf("Repairs = %v, want exactly one", f.Repairs())
	}
	// The repaired factorization must solve the repaired matrix exactly:
	// column Pos of A replaced by the unit column of Row.
	rep := f.Repairs()[0]
	d := m.Dense()
	for i := 0; i < n; i++ {
		d[i][rep.Pos] = 0
	}
	d[rep.Row][rep.Pos] = 1
	b := []float64{1, -2, 3}
	x := make([]float64, n)
	scratch := make([]float64, n)
	f.Solve(b, x, scratch)
	for i := 0; i < n; i++ {
		got := 0.0
		for j := 0; j < n; j++ {
			got += d[i][j] * x[j]
		}
		if math.Abs(got-b[i]) > 1e-9 {
			t.Errorf("repaired A*x[%d] = %v, want %v", i, got, b[i])
		}
	}
}

func TestLUZeroDimension(t *testing.T) {
	f, err := Factorize(0, func(int) ([]int, []float64) { return nil, nil }, 0)
	if err != nil {
		t.Fatalf("Factorize(0): %v", err)
	}
	if f.N() != 0 {
		t.Errorf("N = %d, want 0", f.N())
	}
	f.Solve(nil, nil, nil)
	f.SolveT(nil, nil, nil)
}

func TestLUAllZeroMatrixFullyRepaired(t *testing.T) {
	n := 4
	f, err := Factorize(n, func(int) ([]int, []float64) { return nil, nil }, 1e-10)
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	if got := len(f.Repairs()); got != n {
		t.Fatalf("Repairs = %d, want %d", got, n)
	}
	// Repaired matrix is a permutation of the identity; solving must work.
	b := []float64{1, 2, 3, 4}
	x := make([]float64, n)
	scratch := make([]float64, n)
	f.Solve(b, x, scratch)
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	if math.Abs(sum-10) > 1e-12 {
		t.Errorf("solution sum = %v, want 10", sum)
	}
}

func BenchmarkLUFactorize200(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := randomNonsingular(rng, 200, 0.02)
	cols := columnsOf(m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factorize(200, cols, 1e-12); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLUSolve200(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 200
	m := randomNonsingular(rng, n, 0.02)
	f, err := Factorize(n, columnsOf(m), 1e-12)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	scratch := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Solve(rhs, x, scratch)
	}
}

// TestFactorizeBasis checks the basis-selection entry point: factorizing
// columns [2, 0] of a 2x3 matrix must reproduce B = [a_2, a_0] and solve
// against it, and malformed bases must be rejected.
func TestFactorizeBasis(t *testing.T) {
	a, err := NewFromTriplets(2, 3, []Triplet{
		{0, 0, 2}, {1, 0, 1},
		{0, 1, 1},
		{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	lu, err := FactorizeBasis(a, []int{2, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// B = [[0, 2], [3, 1]]; solve B x = [2, 4] -> x = [10/9... ] check via residual.
	x := make([]float64, 2)
	scratch := make([]float64, 2)
	lu.Solve([]float64{2, 4}, x, scratch)
	if r0 := 0*x[0] + 2*x[1] - 2; r0 > 1e-12 || r0 < -1e-12 {
		t.Errorf("residual row 0 = %v", r0)
	}
	if r1 := 3*x[0] + 1*x[1] - 4; r1 > 1e-12 || r1 < -1e-12 {
		t.Errorf("residual row 1 = %v", r1)
	}
	if _, err := FactorizeBasis(a, []int{0}, 0); err == nil {
		t.Error("expected error for basis/row-count mismatch")
	}
	if _, err := FactorizeBasis(a, []int{0, 5}, 0); err == nil {
		t.Error("expected error for out-of-range basis column")
	}
}
