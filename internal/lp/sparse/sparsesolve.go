package sparse

// Hyper-sparse triangular solves. When the right-hand side of B x = b (or
// Bᵀ y = c) has only a handful of nonzeros — the normal case for the FTRAN
// of an entering simplex column and the BTRAN of a pivot-row unit vector on
// network bases — the nonzero pattern of the solution can be predicted by a
// Gilbert-Peierls depth-first reachability pass over the pattern of L and U,
// and the numeric substitution then touches only that pattern instead of all
// n positions. Both solves fall back to the dense substitution path when the
// predicted pattern exceeds a caller-chosen limit, so worst-case cost never
// exceeds the dense solve by more than the aborted symbolic pass.

// PatternWorkspace holds the reusable scratch buffers for the sparse-RHS
// solves. The zero value is ready for use; buffers grow on demand and are
// retained across calls, so steady-state solves allocate nothing. A
// workspace must not be shared between concurrent solves. Between calls all
// numeric buffers are zero and all marks are clear; the solve methods
// restore that invariant before returning.
type PatternWorkspace struct {
	x      []float64 // dense numeric workspace in pivot space
	b      []float64 // dense RHS scratch for the dense fallback
	mark   []bool    // DFS visited flags
	cursor []int     // per-node edge cursor for the iterative DFS
	stack  []int     // explicit DFS stack
	topo   []int     // post-order of the first triangular phase
	topo2  []int     // post-order of the second triangular phase
	seed   []int     // permuted seed pattern
	pat    []int     // result pattern handed back to the caller
}

// Ensure sizes the workspace for dimension-n solves. The float64 and int
// scratch each live in one contiguous slab carved into fixed-capacity
// sub-slices (three-index slicing pins every capacity, so append never
// crosses a neighbor): two cache-adjacent n-vectors for the numeric
// substitutions, six for the pattern walk. Each sub-slice has capacity
// exactly n — the DFS visits each node at most once per phase, so none of
// the appends can outgrow its segment.
func (ws *PatternWorkspace) Ensure(n int) {
	if len(ws.x) >= n {
		return
	}
	fs := make([]float64, 2*n)
	ws.x = fs[0*n : 1*n : 1*n]
	ws.b = fs[1*n : 2*n : 2*n]
	is := make([]int, 6*n)
	ws.cursor = is[0*n : 1*n : 1*n]
	ws.stack = is[1*n : 1*n : 2*n]
	ws.topo = is[2*n : 2*n : 3*n]
	ws.topo2 = is[3*n : 3*n : 4*n]
	ws.seed = is[4*n : 4*n : 5*n]
	ws.pat = is[5*n : 5*n : 6*n]
	ws.mark = make([]bool, n)
}

// reach appends to topo the post-order of every node reachable from seeds
// through the adjacency lists (node j's successors are adj[ptr[j]:ptr[j+1]]).
// The reverse of the returned order is a topological order of the reached
// sub-DAG. Visited nodes are flagged in ws.mark; the caller clears them
// through the returned topo. When more than limit nodes accumulate the walk
// stops between seed components and ok is false — every marked node is still
// listed in topo, so cleanup remains pattern-bounded.
func (ws *PatternWorkspace) reach(seeds []int, ptr, adj []int, topo []int, limit int) (out []int, ok bool) {
	for _, r := range seeds {
		if ws.mark[r] {
			continue
		}
		if len(topo) > limit {
			return topo, false
		}
		ws.stack = append(ws.stack[:0], r)
		ws.mark[r] = true
		ws.cursor[r] = 0
		for len(ws.stack) > 0 {
			j := ws.stack[len(ws.stack)-1]
			adv := false
			lo, hi := ptr[j], ptr[j+1]
			for c := lo + ws.cursor[j]; c < hi; c++ {
				i := adj[c]
				ws.cursor[j] = c - lo + 1
				if !ws.mark[i] {
					ws.mark[i] = true
					ws.cursor[i] = 0
					ws.stack = append(ws.stack, i)
					adv = true
					break
				}
			}
			if !adv {
				ws.stack = ws.stack[:len(ws.stack)-1]
				topo = append(topo, j)
			}
		}
	}
	return topo, len(topo) <= limit
}

func (ws *PatternWorkspace) clearMarks(nodes []int) {
	for _, j := range nodes {
		ws.mark[j] = false
	}
}

// zeroX clears the dense numeric workspace in full (used after a dense
// fallback, when the touched pattern is no longer known).
func (ws *PatternWorkspace) zeroX() {
	for i := range ws.x {
		ws.x[i] = 0
	}
}

// solveDenseFromSparse is the dense fallback of SolveSparseRHS: scatter the
// sparse RHS and run the ordinary dense substitution. dst is fully written.
func (f *LU) solveDenseFromSparse(bIdx []int, bVal []float64, dst []float64, ws *PatternWorkspace) {
	for p, i := range bIdx {
		ws.b[i] += bVal[p]
	}
	f.Solve(ws.b, dst, ws.x)
	for _, i := range bIdx {
		ws.b[i] = 0
	}
	ws.zeroX()
}

// solveTDenseFromSparse is the dense fallback of SolveTSparseRHS.
func (f *LU) solveTDenseFromSparse(cIdx []int, cVal []float64, dst []float64, ws *PatternWorkspace) {
	for p, k := range cIdx {
		ws.b[k] += cVal[p]
	}
	f.SolveT(ws.b, dst, ws.x)
	for _, k := range cIdx {
		ws.b[k] = 0
	}
	ws.zeroX()
}

// SolveSparseRHS computes x = B⁻¹ b for a right-hand side given sparsely as
// parallel (bIdx, bVal) slices in original row space (duplicates are
// summed). On the sparse path (ok true) the nonzero values are scattered
// into dst — which must be zero on entry — and the returned pattern lists
// every position of dst that may now be nonzero; the pattern slice aliases
// the workspace and is valid until the next solve using ws. When the
// predicted pattern would exceed limit positions (or limit <= 0) the dense
// substitution runs instead: ok is false, dst is fully overwritten, and no
// pattern is returned.
func (f *LU) SolveSparseRHS(bIdx []int, bVal []float64, dst []float64, ws *PatternWorkspace, limit int) (pat []int, ok bool) {
	ws.Ensure(f.n)
	if limit <= 0 || len(bIdx) > limit {
		f.solveDenseFromSparse(bIdx, bVal, dst, ws)
		return nil, false
	}
	// Symbolic phase 1: reachability of the permuted RHS pattern through
	// L's column DAG (node k feeds the rows of L column k, all > k).
	ws.seed = ws.seed[:0]
	for _, i := range bIdx {
		ws.seed = append(ws.seed, f.pinv[i])
	}
	ws.topo = ws.topo[:0]
	var fits bool
	ws.topo, fits = ws.reach(ws.seed, f.lColPtr, f.lRow, ws.topo, limit)
	if !fits {
		ws.clearMarks(ws.topo)
		f.solveDenseFromSparse(bIdx, bVal, dst, ws)
		return nil, false
	}
	// Numeric L-solve over the pattern, in topological (reverse post-) order.
	for p, i := range bIdx {
		ws.x[f.pinv[i]] += bVal[p]
	}
	for t := len(ws.topo) - 1; t >= 0; t-- {
		k := ws.topo[t]
		xk := ws.x[k]
		if xk == 0 {
			continue
		}
		for c := f.lColPtr[k]; c < f.lColPtr[k+1]; c++ {
			ws.x[f.lRow[c]] -= f.lVal[c] * xk
		}
	}
	// Symbolic phase 2: reachability through U's column DAG (node k feeds
	// the rows of U column k, all < k). The phase-1 pattern seeds it, so its
	// marks are cleared first; phase 2 re-marks every phase-1 node.
	ws.clearMarks(ws.topo)
	ws.topo2 = ws.topo2[:0]
	ws.topo2, fits = ws.reach(ws.topo, f.uColPtr, f.uRow, ws.topo2, limit)
	if !fits {
		// The L-solve already ran; finish with the dense U substitution.
		ws.clearMarks(ws.topo2)
		f.uSolve(ws.x)
		copy(dst, ws.x)
		ws.zeroX()
		return nil, false
	}
	for t := len(ws.topo2) - 1; t >= 0; t-- {
		k := ws.topo2[t]
		xk := ws.x[k] / f.uDiag[k]
		ws.x[k] = xk
		if xk == 0 {
			continue
		}
		for c := f.uColPtr[k]; c < f.uColPtr[k+1]; c++ {
			ws.x[f.uRow[c]] -= f.uVal[c] * xk
		}
	}
	// Gather: pivot positions are exactly the caller's basis positions.
	ws.pat = ws.pat[:0]
	for _, k := range ws.topo2 {
		ws.mark[k] = false
		dst[k] = ws.x[k]
		ws.x[k] = 0
		ws.pat = append(ws.pat, k)
	}
	return ws.pat, true
}

// SolveTSparseRHS computes y = B⁻ᵀ c for a right-hand side given sparsely
// in pivot-position space (the space of SolveT's input vector; duplicates
// are summed). On the sparse path (ok true) the nonzero values are
// scattered into dst — which must be zero on entry — in original row space,
// with the returned pattern listing every possibly-nonzero position of dst.
// The dense fallback mirrors SolveSparseRHS.
func (f *LU) SolveTSparseRHS(cIdx []int, cVal []float64, dst []float64, ws *PatternWorkspace, limit int) (pat []int, ok bool) {
	ws.Ensure(f.n)
	if limit <= 0 || len(cIdx) > limit {
		f.solveTDenseFromSparse(cIdx, cVal, dst, ws)
		return nil, false
	}
	// Symbolic phase 1 (Uᵀ w = c, forward): node j feeds every column k
	// whose U column contains row j — the row pattern of U.
	ws.topo = ws.topo[:0]
	var fits bool
	ws.topo, fits = ws.reach(cIdx, f.uRowPtr, f.uRowCol, ws.topo, limit)
	if !fits {
		ws.clearMarks(ws.topo)
		f.solveTDenseFromSparse(cIdx, cVal, dst, ws)
		return nil, false
	}
	for p, k := range cIdx {
		ws.x[k] += cVal[p]
	}
	// Numeric pull: w_k = (c_k - Σ_{j<k} U_jk w_j) / U_kk in topological
	// order; unreached j contribute zeros.
	for t := len(ws.topo) - 1; t >= 0; t-- {
		k := ws.topo[t]
		sum := ws.x[k]
		for c := f.uColPtr[k]; c < f.uColPtr[k+1]; c++ {
			sum -= f.uVal[c] * ws.x[f.uRow[c]]
		}
		ws.x[k] = sum / f.uDiag[k]
	}
	// Symbolic phase 2 (Lᵀ z = w, backward): node j feeds every column k
	// whose L column contains row j — the row pattern of L.
	ws.clearMarks(ws.topo)
	ws.topo2 = ws.topo2[:0]
	ws.topo2, fits = ws.reach(ws.topo, f.lRowPtr, f.lRowCol, ws.topo2, limit)
	if !fits {
		// The Uᵀ substitution already ran; finish the Lᵀ part densely.
		ws.clearMarks(ws.topo2)
		for k := f.n - 1; k >= 0; k-- {
			sum := ws.x[k]
			for c := f.lColPtr[k]; c < f.lColPtr[k+1]; c++ {
				sum -= f.lVal[c] * ws.x[f.lRow[c]]
			}
			ws.x[k] = sum
		}
		for i := 0; i < f.n; i++ {
			dst[i] = ws.x[f.pinv[i]]
		}
		ws.zeroX()
		return nil, false
	}
	for t := len(ws.topo2) - 1; t >= 0; t-- {
		k := ws.topo2[t]
		sum := ws.x[k]
		for c := f.lColPtr[k]; c < f.lColPtr[k+1]; c++ {
			sum -= f.lVal[c] * ws.x[f.lRow[c]]
		}
		ws.x[k] = sum
	}
	// Gather through the row permutation: y_i = z_{pinv[i]}.
	ws.pat = ws.pat[:0]
	for _, k := range ws.topo2 {
		ws.mark[k] = false
		i := f.perm[k]
		dst[i] = ws.x[k]
		ws.x[k] = 0
		ws.pat = append(ws.pat, i)
	}
	return ws.pat, true
}
