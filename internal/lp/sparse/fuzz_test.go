package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSparseTriangularSolve cross-checks the hyper-sparse Gilbert-Peierls
// solves against the dense substitution reference on randomly generated
// factorizations and sparse right-hand sides. The fuzzer drives the matrix
// shape, density, RHS support, and the pattern limit (so both the sparse
// path and every dense-fallback branch are exercised), and checks three
// invariants:
//
//  1. the sparse result matches the dense Solve/SolveT result elementwise,
//  2. on the sparse path, every position outside the returned pattern is
//     untouched (still zero), and
//  3. the workspace is restored to its resting state (marks clear, numeric
//     buffers zero) so the next solve starts clean.
func FuzzSparseTriangularSolve(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(30), uint8(2), uint8(100), false)
	f.Add(int64(2), uint8(30), uint8(10), uint8(1), uint8(4), true)
	f.Add(int64(3), uint8(1), uint8(0), uint8(1), uint8(1), false)
	f.Add(int64(4), uint8(50), uint8(60), uint8(12), uint8(0), true)
	f.Add(int64(5), uint8(17), uint8(5), uint8(17), uint8(3), false)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, densRaw, nnzRaw, limitRaw uint8, transpose bool) {
		n := 1 + int(nRaw)%60
		density := float64(densRaw%100) / 100
		nnz := 1 + int(nnzRaw)%n
		limit := int(limitRaw) % (2 * n)

		rng := rand.New(rand.NewSource(seed))
		m := randomNonsingular(rng, n, density)
		lu, err := Factorize(n, columnsOf(m), 1e-12)
		if err != nil {
			t.Skip("factorization failed; not the property under test")
		}
		if len(lu.Repairs()) != 0 {
			t.Skip("repaired basis; dense/sparse comparison undefined")
		}

		// Sparse RHS with deliberate duplicates now and then.
		idx := make([]int, 0, nnz)
		val := make([]float64, 0, nnz)
		for k := 0; k < nnz; k++ {
			idx = append(idx, rng.Intn(n))
			val = append(val, rng.NormFloat64())
		}

		// Dense reference.
		bDense := make([]float64, n)
		for p, i := range idx {
			bDense[i] += val[p]
		}
		want := make([]float64, n)
		scratch := make([]float64, n)
		if transpose {
			lu.SolveT(bDense, want, scratch)
		} else {
			lu.Solve(bDense, want, scratch)
		}

		// Sparse path under test.
		var ws PatternWorkspace
		dst := make([]float64, n)
		var pat []int
		var ok bool
		if transpose {
			pat, ok = lu.SolveTSparseRHS(idx, val, dst, &ws, limit)
		} else {
			pat, ok = lu.SolveSparseRHS(idx, val, dst, &ws, limit)
		}

		inPat := make([]bool, n)
		if ok {
			for _, i := range pat {
				if i < 0 || i >= n {
					t.Fatalf("pattern position %d out of range [0,%d)", i, n)
				}
				inPat[i] = true
			}
		}
		scale := 0.0
		for _, v := range want {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		tol := 1e-8 * (1 + scale)
		for i := 0; i < n; i++ {
			if math.Abs(dst[i]-want[i]) > tol {
				t.Fatalf("n=%d nnz=%d limit=%d transpose=%v ok=%v: dst[%d] = %g, dense reference %g",
					n, nnz, limit, transpose, ok, i, dst[i], want[i])
			}
			if ok && !inPat[i] && dst[i] != 0 {
				t.Fatalf("position %d outside the returned pattern was written (%g)", i, dst[i])
			}
		}

		// Workspace resting-state invariant.
		for i, v := range ws.x {
			if v != 0 {
				t.Fatalf("workspace x[%d] = %g after solve, want 0", i, v)
			}
		}
		for i, v := range ws.b {
			if v != 0 {
				t.Fatalf("workspace b[%d] = %g after solve, want 0", i, v)
			}
		}
		for i, mk := range ws.mark {
			if mk {
				t.Fatalf("workspace mark[%d] still set after solve", i)
			}
		}

		// The workspace must be reusable: a second solve with the same inputs
		// must reproduce the result exactly.
		dst2 := make([]float64, n)
		if transpose {
			_, _ = lu.SolveTSparseRHS(idx, val, dst2, &ws, limit)
		} else {
			_, _ = lu.SolveSparseRHS(idx, val, dst2, &ws, limit)
		}
		for i := range dst {
			if dst[i] != dst2[i] {
				t.Fatalf("solve not reproducible with reused workspace: dst[%d] %g vs %g", i, dst[i], dst2[i])
			}
		}
	})
}
