package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFromTripletsBasic(t *testing.T) {
	m, err := NewFromTriplets(3, 2, []Triplet{
		{Row: 0, Col: 0, Val: 1},
		{Row: 2, Col: 0, Val: 3},
		{Row: 1, Col: 1, Val: -2},
	})
	if err != nil {
		t.Fatalf("NewFromTriplets: %v", err)
	}
	if got := m.NNZ(); got != 3 {
		t.Fatalf("NNZ = %d, want 3", got)
	}
	if got := m.At(2, 0); got != 3 {
		t.Errorf("At(2,0) = %v, want 3", got)
	}
	if got := m.At(0, 1); got != 0 {
		t.Errorf("At(0,1) = %v, want 0", got)
	}
}

func TestNewFromTripletsDuplicatesSummed(t *testing.T) {
	m, err := NewFromTriplets(2, 2, []Triplet{
		{Row: 0, Col: 1, Val: 1.5},
		{Row: 0, Col: 1, Val: 2.5},
		{Row: 1, Col: 0, Val: 1},
	})
	if err != nil {
		t.Fatalf("NewFromTriplets: %v", err)
	}
	if got := m.At(0, 1); got != 4 {
		t.Errorf("duplicate sum At(0,1) = %v, want 4", got)
	}
	if got := m.NNZ(); got != 2 {
		t.Errorf("NNZ = %d, want 2 after dedup", got)
	}
}

func TestNewFromTripletsRejectsOutOfRange(t *testing.T) {
	cases := []Triplet{
		{Row: -1, Col: 0, Val: 1},
		{Row: 0, Col: 5, Val: 1},
		{Row: 3, Col: 0, Val: 1},
	}
	for _, c := range cases {
		if _, err := NewFromTriplets(3, 3, []Triplet{c}); err == nil {
			t.Errorf("expected error for triplet %+v", c)
		}
	}
}

func TestColumnSortedAscending(t *testing.T) {
	m, err := NewFromTriplets(5, 1, []Triplet{
		{Row: 4, Col: 0, Val: 4},
		{Row: 0, Col: 0, Val: 0.5},
		{Row: 2, Col: 0, Val: 2},
	})
	if err != nil {
		t.Fatalf("NewFromTriplets: %v", err)
	}
	prev := -1
	m.Column(0, func(row int, _ float64) {
		if row <= prev {
			t.Errorf("rows not strictly ascending: %d after %d", row, prev)
		}
		prev = row
	})
}

func randomMatrix(rng *rand.Rand, rows, cols int, density float64) *Matrix {
	var trip []Triplet
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				trip = append(trip, Triplet{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	m, err := NewFromTriplets(rows, cols, trip)
	if err != nil {
		panic(err)
	}
	return m
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := randomMatrix(rng, rows, cols, 0.4)
		d := m.Dense()
		x := make([]float64, cols)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		y := make([]float64, rows)
		m.MulVec(x, y)
		for i := 0; i < rows; i++ {
			want := 0.0
			for j := 0; j < cols; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-12 {
				t.Fatalf("trial %d: MulVec[%d] = %v, want %v", trial, i, y[i], want)
			}
		}
	}
}

func TestMulTVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := randomMatrix(rng, rows, cols, 0.4)
		d := m.Dense()
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, cols)
		m.MulTVec(x, y)
		for j := 0; j < cols; j++ {
			want := 0.0
			for i := 0; i < rows; i++ {
				want += d[i][j] * x[i]
			}
			if math.Abs(y[j]-want) > 1e-12 {
				t.Fatalf("trial %d: MulTVec[%d] = %v, want %v", trial, j, y[j], want)
			}
		}
	}
}

// TestMulVecLinearity property: A(ax + by) = a*Ax + b*Ay.
func TestMulVecLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := randomMatrix(rng, 6, 5, 0.5)
	f := func(seed int64, a, b float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 8)
		b = math.Mod(b, 8)
		r := rand.New(rand.NewSource(seed))
		x := make([]float64, 5)
		y := make([]float64, 5)
		comb := make([]float64, 5)
		for j := range x {
			x[j], y[j] = r.NormFloat64(), r.NormFloat64()
			comb[j] = a*x[j] + b*y[j]
		}
		ax := make([]float64, 6)
		ay := make([]float64, 6)
		ac := make([]float64, 6)
		m.MulVec(x, ax)
		m.MulVec(y, ay)
		m.MulVec(comb, ac)
		for i := range ac {
			if math.Abs(ac[i]-(a*ax[i]+b*ay[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
