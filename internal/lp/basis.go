package lp

import "math"

// BasisStatus is the resting status of one variable in a stored simplex
// basis snapshot.
type BasisStatus byte

// Basis statuses. The zero value is invalid, which makes uninitialized
// snapshots detectable.
const (
	BasisBasic   BasisStatus = iota + 1 // variable is in the basis
	BasisAtLower                        // nonbasic at its lower bound
	BasisAtUpper                        // nonbasic at its upper bound
	BasisFree                           // nonbasic free variable resting at zero
)

// Basis is a snapshot of the simplex resting state over the computational
// form of a model: one status per structural variable (in AddVariable
// order) followed by one per logical/slack variable (in AddConstraint
// order). A Basis returned by Solve can be passed back as
// Options.InitialBasis to warm-start a subsequent solve of the same model
// — or of a structurally similar one with shifted bounds and right-hand
// sides, which is how consecutive-slot Postcard LPs reuse each other's
// work. Warm-starting is always safe: a snapshot that does not fit the
// model (wrong shape, wrong basic count, numerically singular basis) is
// silently discarded in favour of the usual cold start.
type Basis struct {
	NumVars int           // structural variables the snapshot was taken over
	NumRows int           // constraints the snapshot was taken over
	Status  []BasisStatus // length NumVars + NumRows
}

// Clone returns a deep copy of the basis.
func (b *Basis) Clone() *Basis {
	if b == nil {
		return nil
	}
	return &Basis{
		NumVars: b.NumVars,
		NumRows: b.NumRows,
		Status:  append([]BasisStatus(nil), b.Status...),
	}
}

// Normalize adjusts the snapshot in place so that exactly NumRows positions
// are basic — the count tryWarmStart requires. Surplus basics are demoted to
// BasisAtLower starting from the last logical position (tryWarmStart
// re-normalizes statuses that do not fit a variable's actual bounds); when
// basics are missing, logical positions are promoted starting from the first
// row. Callers assembling a basis from heterogeneous sources — e.g. mapping
// one model's final basis onto a structurally similar successor — use it to
// guarantee the snapshot passes the warm-start count check; the LU
// factorization's singularity repair then handles any remaining rank
// deficiency. It returns the receiver, and nil receivers pass through.
func (b *Basis) Normalize() *Basis {
	if b == nil {
		return nil
	}
	basics := 0
	for _, st := range b.Status {
		if st == BasisBasic {
			basics++
		}
	}
	// Demote: logicals from the end first, then structurals from the end.
	for p := len(b.Status) - 1; p >= 0 && basics > b.NumRows; p-- {
		if b.Status[p] == BasisBasic {
			b.Status[p] = BasisAtLower
			basics--
		}
	}
	// Promote: logicals from the first row upward.
	for p := b.NumVars; p < len(b.Status) && basics < b.NumRows; p++ {
		if b.Status[p] != BasisBasic {
			b.Status[p] = BasisBasic
			basics++
		}
	}
	return b
}

// captureBasis snapshots the current simplex resting state.
func (s *simplex) captureBasis() *Basis {
	total := s.cf.n + s.cf.m
	b := &Basis{NumVars: s.cf.n, NumRows: s.cf.m, Status: make([]BasisStatus, total)}
	for j := 0; j < total; j++ {
		switch s.vstat[j] {
		case vBasic:
			b.Status[j] = BasisBasic
		case vAtLower:
			b.Status[j] = BasisAtLower
		case vAtUpper:
			b.Status[j] = BasisAtUpper
		default:
			b.Status[j] = BasisFree
		}
	}
	return b
}

// tryWarmStart seeds the simplex from a stored basis snapshot. It returns
// false — leaving the caller to perform the ordinary cold start — when the
// snapshot does not match the model's shape, does not carry exactly m basic
// variables, or factorizes so poorly that the singularity repairs break the
// basis bookkeeping. Nonbasic statuses that no longer fit the current
// bounds (e.g. AtLower on a variable whose lower bound became -inf) are
// normalized to the nearest finite bound rather than rejected.
func (s *simplex) tryWarmStart(b *Basis) bool {
	cf := s.cf
	total := cf.n + cf.m
	if b == nil || b.NumVars != cf.n || b.NumRows != cf.m || len(b.Status) != total {
		return false
	}
	nBasic := 0
	for j := 0; j < total; j++ {
		switch b.Status[j] {
		case BasisBasic:
			s.vstat[j] = vBasic
			nBasic++
		case BasisAtLower:
			switch {
			case !math.IsInf(cf.lo[j], -1):
				s.vstat[j] = vAtLower
			case !math.IsInf(cf.hi[j], 1):
				s.vstat[j] = vAtUpper
			default:
				s.vstat[j] = vFree
			}
		case BasisAtUpper:
			switch {
			case !math.IsInf(cf.hi[j], 1):
				s.vstat[j] = vAtUpper
			case !math.IsInf(cf.lo[j], -1):
				s.vstat[j] = vAtLower
			default:
				s.vstat[j] = vFree
			}
		case BasisFree:
			s.vstat[j] = vFree
		default:
			return false
		}
	}
	if nBasic != cf.m {
		return false
	}
	// Fill the basis with logicals first: a basic logical always pivots its
	// own row during factorization, so any singularity repair can only ever
	// substitute a row whose logical is nonbasic — the repair bookkeeping
	// below then never produces duplicate basis entries.
	pos := 0
	for j := cf.n; j < total; j++ {
		if s.vstat[j] == vBasic {
			s.basis[pos] = j
			pos++
		}
	}
	for j := 0; j < cf.n; j++ {
		if s.vstat[j] == vBasic {
			s.basis[pos] = j
			pos++
		}
	}
	if err := s.refactorize(); err != nil {
		return false
	}
	// Singularity repairs may have evicted basics in favour of logicals that
	// were already basic elsewhere; verify the basis is still a bijection.
	seen := make([]bool, total)
	for _, bj := range s.basis {
		if seen[bj] || s.vstat[bj] != vBasic {
			return false
		}
		seen[bj] = true
	}
	count := 0
	for j := 0; j < total; j++ {
		if s.vstat[j] == vBasic {
			count++
		}
	}
	return count == cf.m
}
