package lp

import (
	"math"
	"testing"
)

func TestIterLimitReported(t *testing.T) {
	m := NewModel()
	m.SetMaximize()
	x := m.AddVariable(0, pinf(), 3, "x")
	y := m.AddVariable(0, pinf(), 2, "y")
	mustCon(t, m, LE, 4, []VarID{x, y}, []float64{1, 1})
	mustCon(t, m, LE, 2, []VarID{x}, []float64{1})
	s, err := m.Solve(&Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != IterLimit {
		t.Errorf("status = %v, want iteration-limit", s.Status)
	}
}

func TestPerturbDisabledStillOptimal(t *testing.T) {
	m := NewModel()
	m.SetMaximize()
	x := m.AddVariable(0, 10, 5, "x")
	y := m.AddVariable(2, 8, 4, "y")
	mustCon(t, m, LE, 15, []VarID{x, y}, []float64{1, 2})
	s, err := m.Solve(&Options{Perturb: -1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	d, err := m.SolveDense()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Objective-d.Objective) > 1e-7 {
		t.Errorf("objective %v != dense %v", s.Objective, d.Objective)
	}
}

func TestPerturbationDoesNotMoveObjective(t *testing.T) {
	// The reported objective must use the unperturbed costs: a model whose
	// optimum is exactly representable must come back bit-clean (modulo
	// tiny arithmetic noise far below the perturbation scale).
	m := NewModel()
	x := m.AddVariable(0, 4, 1, "x")
	y := m.AddVariable(0, 4, 1, "y")
	mustCon(t, m, GE, 6, []VarID{x, y}, []float64{1, 1})
	s, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || math.Abs(s.Objective-6) > 1e-9 {
		t.Errorf("objective = %v, want exactly 6", s.Objective)
	}
}

func TestSolutionSnapsToBounds(t *testing.T) {
	// Variables that should rest exactly at a bound must be reported
	// exactly at it despite the EXPAND anti-degeneracy overshoot.
	m := NewModel()
	x := m.AddVariable(0, 5, 1, "x")
	y := m.AddVariable(0, 5, 2, "y")
	mustCon(t, m, GE, 5, []VarID{x, y}, []float64{1, 1})
	s, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if s.Value(x) != 5 || s.Value(y) != 0 {
		t.Errorf("x=%v y=%v, want exactly 5, 0", s.Value(x), s.Value(y))
	}
}

func TestStatusStrings(t *testing.T) {
	cases := map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
		Status(99): "Status(99)",
	}
	for st, want := range cases {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(st), got, want)
		}
	}
	senses := map[Sense]string{LE: "<=", GE: ">=", EQ: "=", Sense(9): "Sense(9)"}
	for sn, want := range senses {
		if got := sn.String(); got != want {
			t.Errorf("Sense %d = %q, want %q", int(sn), got, want)
		}
	}
}

func TestVarName(t *testing.T) {
	m := NewModel()
	a := m.AddVariable(0, 1, 0, "alpha")
	b := m.AddVariable(0, 1, 0, "")
	if got := m.VarName(a); got != "alpha" {
		t.Errorf("VarName = %q", got)
	}
	if got := m.VarName(b); got != "x1" {
		t.Errorf("VarName = %q, want x1", got)
	}
}

func TestValidateErrors(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 1, 0, "x")
	mustCon(t, m, EQ, 1, []VarID{x}, []float64{1})
	if err := m.Validate([]float64{0.5, 1}, 1e-9); err == nil {
		t.Error("expected length error")
	}
	if err := m.Validate([]float64{2}, 1e-9); err == nil {
		t.Error("expected bound violation")
	}
	if err := m.Validate([]float64{0.5}, 1e-9); err == nil {
		t.Error("expected EQ violation")
	}
	if err := m.Validate([]float64{1}, 1e-9); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
}

func TestObjectiveValue(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 10, 3, "x")
	y := m.AddVariable(0, 10, -2, "y")
	if got := m.ObjectiveValue([]float64{2, 5}); got != -4 {
		t.Errorf("ObjectiveValue = %v, want -4", got)
	}
	_ = x
	_ = y
}

// TestHighlyDegenerateAssignment is a regression for the phase-2 stall: an
// assignment-polytope LP (maximally degenerate) with many symmetric optima
// must terminate well inside the iteration budget.
func TestHighlyDegenerateAssignment(t *testing.T) {
	const k = 12
	m := NewModel()
	vars := make([][]VarID, k)
	for i := 0; i < k; i++ {
		vars[i] = make([]VarID, k)
		for j := 0; j < k; j++ {
			cost := 1.0
			if i == j {
				cost = 0.5
			}
			vars[i][j] = m.AddVariable(0, 1, cost, "")
		}
	}
	for i := 0; i < k; i++ {
		idx := make([]VarID, k)
		val := make([]float64, k)
		for j := 0; j < k; j++ {
			idx[j], val[j] = vars[i][j], 1
		}
		mustCon(t, m, EQ, 1, idx, val)
	}
	for j := 0; j < k; j++ {
		idx := make([]VarID, k)
		val := make([]float64, k)
		for i := 0; i < k; i++ {
			idx[i], val[i] = vars[i][j], 1
		}
		mustCon(t, m, EQ, 1, idx, val)
	}
	s, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if math.Abs(s.Objective-0.5*k) > 1e-6 {
		t.Errorf("objective = %v, want %v", s.Objective, 0.5*k)
	}
	if s.Iterations > 5000 {
		t.Errorf("took %d iterations on a %dx%d assignment LP", s.Iterations, k, k)
	}
}

// TestPerturbationDoesNotFakeUnbounded is a regression test: a variable
// with zero objective and an infinite bound direction used to pick up a
// tiny positive perturbed cost, making the perturbed problem look
// unbounded even though the honest problem is bounded. The solver must
// strip the perturbation and conclude Optimal.
func TestPerturbationDoesNotFakeUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(-4, 4, 4, "x")
	m.AddVariable(ninf(), 4, 0, "ray") // zero cost, unbounded below
	y := m.AddVariable(-2, 5, -1, "y")
	z := m.AddVariable(-2, 10, -4, "z")
	mustCon(t, m, LE, 1, []VarID{x}, []float64{0}) // vacuous
	s, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal (perturbation faked unboundedness)", s.Status)
	}
	if math.Abs(s.Objective-(-61)) > 1e-7 {
		t.Errorf("objective = %v, want -61", s.Objective)
	}
	_ = y
	_ = z
}
