//go:build lpdebug

package lp

import (
	"fmt"
	"math"
	"os"
)

// debugCheckDuals audits the maintained reduced-cost vector against an
// honest dense recomputation from the current factorization and eta file.
// It is compiled only under -tags lpdebug; the drift tolerance is generous
// because the maintained updates legitimately accumulate rounding between
// refactorizations — the check is after gross bookkeeping mistakes (wrong
// pivot-row pattern, missed phase-1 cost change), not ulp noise.
func (s *simplex) debugCheckDuals(phase1 bool) {
	if !s.dValid || s.dPhase1 != phase1 {
		return
	}
	m := s.cf.m
	cB := make([]float64, m)
	if phase1 {
		for p := 0; p < m; p++ {
			cB[p] = s.phase1CostAt(p)
		}
	} else {
		for p := 0; p < m; p++ {
			cB[p] = s.cf.c[s.basis[p]]
		}
	}
	// Dense BTRAN on private buffers so solver state is untouched.
	rhs := make([]float64, m)
	copy(rhs, cB)
	for i := len(s.etas) - 1; i >= 0; i-- {
		e := &s.etas[i]
		sum := 0.0
		for p := e.start; p < e.end; p++ {
			sum += s.etaVal[p] * rhs[s.etaIdx[p]]
		}
		rhs[e.r] = (rhs[e.r] - sum) / e.pivot
	}
	y := make([]float64, m)
	scratch := make([]float64, m)
	s.lu.SolveT(rhs, y, scratch)

	cmax := 1.0
	for _, c := range s.cf.c {
		if a := math.Abs(c); a > cmax {
			cmax = a
		}
	}
	tol := 1e-6 * cmax * float64(1+len(s.etas))
	total := s.cf.n + s.cf.m
	worst, worstJ := 0.0, -1
	for j := 0; j < total; j++ {
		if s.vstat[j] == vBasic {
			continue
		}
		cj := 0.0
		if !phase1 {
			cj = s.cf.c[j]
		}
		honest := cj
		s.cf.a.Column(j, func(row int, val float64) { honest -= val * y[row] })
		if drift := math.Abs(honest - s.d[j]); drift > worst {
			worst, worstJ = drift, j
		}
	}
	if worst > tol {
		if os.Getenv("LPDEBUG_DUMP") != "" {
			for j := 0; j < total; j++ {
				if s.vstat[j] == vBasic {
					continue
				}
				cj := 0.0
				if !phase1 {
					cj = s.cf.c[j]
				}
				honest := cj
				s.cf.a.Column(j, func(row int, val float64) { honest -= val * y[row] })
				fmt.Fprintf(os.Stderr, "  col %d vstat %d honest %.6g maintained %.6g\n", j, s.vstat[j], honest, s.d[j])
			}
			fmt.Fprintf(os.Stderr, "  basis %v cB %v honest-cB %v xB %v\n", s.basis, s.cB, cB, s.xB)
		}
		fmt.Fprintf(os.Stderr,
			"lpdebug: maintained reduced-cost drift %.3e at column %d (tol %.3e, phase1=%v, iter %d, %d etas)\n",
			worst, worstJ, tol, phase1, s.iters, len(s.etas))
		panic("lpdebug: maintained reduced costs drifted beyond tolerance")
	}
}
