package lp

import (
	"fmt"
	"math"

	"github.com/interdc/postcard/internal/lp/sparse"
)

// Variable status within the simplex.
type vstatus byte

const (
	vBasic vstatus = iota + 1
	vAtLower
	vAtUpper
	vFree // nonbasic free variable resting at zero
)

// compForm is the computational form of a model: min c·x subject to
// A·x = b, lo ≤ x ≤ hi, where A includes one logical (slack) column per row
// appended after the n structural columns.
type compForm struct {
	m, n int // rows, structural columns; A has n+m columns
	a    *sparse.Matrix
	b    []float64
	c    []float64 // minimization costs used for pivoting (perturbed)
	c0   []float64 // original minimization costs, for objective reporting
	lo   []float64
	hi   []float64
}

// perturb adds a deterministic pseudo-random tiny amount to every cost to
// break the massive dual degeneracy of network LPs. The original costs are
// kept in c0 for reporting.
func (cf *compForm) perturb(scale float64) {
	cf.c0 = append([]float64(nil), cf.c...)
	if scale <= 0 {
		return
	}
	for j := range cf.c {
		h := uint64(j)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		h ^= h >> 30
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		u := float64(h>>11) / float64(1<<53) // in [0, 1)
		cf.c[j] += scale * (0.5 + u) * (1 + math.Abs(cf.c[j]))
	}
}

// buildCompForm converts the model into computational form. Maximization is
// handled by negating costs; Solve flips the objective value back.
func (m *Model) buildCompForm() (*compForm, error) {
	nRows, nCols := len(m.rows), len(m.obj)
	for j := 0; j < nCols; j++ {
		if m.lo[j] > m.hi[j] {
			return nil, fmt.Errorf("lp: variable %s has empty domain [%g, %g]",
				m.VarName(VarID(j)), m.lo[j], m.hi[j])
		}
	}
	nnz := 0
	for _, r := range m.rows {
		nnz += len(r.idx)
	}
	trip := make([]sparse.Triplet, 0, nnz+nRows)
	cf := &compForm{
		m:  nRows,
		n:  nCols,
		b:  make([]float64, nRows),
		c:  make([]float64, nCols+nRows),
		lo: make([]float64, nCols+nRows),
		hi: make([]float64, nCols+nRows),
	}
	copy(cf.lo, m.lo)
	copy(cf.hi, m.hi)
	for j, c := range m.obj {
		if m.maximize {
			cf.c[j] = -c
		} else {
			cf.c[j] = c
		}
	}
	for i, r := range m.rows {
		cf.b[i] = r.rhs
		for p, j := range r.idx {
			trip = append(trip, sparse.Triplet{Row: i, Col: j, Val: r.val[p]})
		}
		lj := nCols + i
		trip = append(trip, sparse.Triplet{Row: i, Col: lj, Val: 1})
		switch r.sense {
		case LE:
			cf.lo[lj], cf.hi[lj] = 0, math.Inf(1)
		case GE:
			cf.lo[lj], cf.hi[lj] = math.Inf(-1), 0
		case EQ:
			cf.lo[lj], cf.hi[lj] = 0, 0
		}
	}
	a, err := sparse.NewFromTriplets(nRows, nCols+nRows, trip)
	if err != nil {
		return nil, fmt.Errorf("lp: building constraint matrix: %w", err)
	}
	cf.a = a
	return cf, nil
}

type eta struct {
	idx   []int // rows of the update column, pivot row excluded
	val   []float64
	r     int     // pivot row
	pivot float64 // update column's pivot-row entry
}

// simplex holds the mutable state of one revised-simplex solve.
type simplex struct {
	cf  *compForm
	opt Options

	basis []int     // basic variable per row position
	vstat []vstatus // per variable
	xB    []float64 // values of basic variables by row position

	lu   *sparse.LU
	etas []eta

	// dense workspaces, all of length m
	w       []float64 // FTRAN result (entering column in basis coordinates)
	y       []float64 // BTRAN result (simplex multipliers)
	cB      []float64 // basic cost vector for BTRAN
	scratch []float64
	rhs     []float64

	iters       int
	phase1Iters int
	factorCount int
	warmStarted bool
	perturbOff  bool // cost perturbation has been stripped mid-solve
	bland       bool
	stallCount  int
	goodSteps   int // consecutive non-degenerate steps while in Bland mode
	pricePos    int // rotating cursor for partial pricing
}

// nbValue reports the resting value of nonbasic variable j.
func (s *simplex) nbValue(j int) float64 {
	switch s.vstat[j] {
	case vAtLower:
		return s.cf.lo[j]
	case vAtUpper:
		return s.cf.hi[j]
	default:
		return 0
	}
}

// refactorize rebuilds the LU factorization of the current basis, applies
// any singularity repairs to the basis bookkeeping, clears the eta file,
// and recomputes basic variable values from scratch.
func (s *simplex) refactorize() error {
	lu, err := sparse.FactorizeBasis(s.cf.a, s.basis, s.opt.PivotTol*1e-2)
	if err != nil {
		return fmt.Errorf("lp: basis factorization: %w", err)
	}
	for _, rep := range lu.Repairs() {
		evicted := s.basis[rep.Pos]
		logical := s.cf.n + rep.Row
		if evicted == logical {
			continue
		}
		// Park the evicted variable at its nearest finite bound.
		switch {
		case !math.IsInf(s.cf.lo[evicted], -1):
			s.vstat[evicted] = vAtLower
		case !math.IsInf(s.cf.hi[evicted], 1):
			s.vstat[evicted] = vAtUpper
		default:
			s.vstat[evicted] = vFree
		}
		// The logical may have been nonbasic elsewhere; it becomes basic here.
		s.vstat[logical] = vBasic
		s.basis[rep.Pos] = logical
	}
	s.lu = lu
	s.etas = s.etas[:0]
	s.factorCount++
	s.computeXB()
	return nil
}

// computeXB recomputes xB = B⁻¹ (b - N·x_N) from scratch.
func (s *simplex) computeXB() {
	copy(s.rhs, s.cf.b)
	total := s.cf.n + s.cf.m
	for j := 0; j < total; j++ {
		if s.vstat[j] == vBasic {
			continue
		}
		xj := s.nbValue(j)
		if xj == 0 {
			continue
		}
		s.cf.a.Column(j, func(row int, val float64) {
			s.rhs[row] -= val * xj
		})
	}
	s.lu.Solve(s.rhs, s.xB, s.scratch)
	for _, e := range s.etas {
		applyEtaForward(e, s.xB)
	}
}

func applyEtaForward(e eta, x []float64) {
	xr := x[e.r] / e.pivot
	if xr == 0 {
		x[e.r] = 0
		return
	}
	x[e.r] = xr
	for p, i := range e.idx {
		x[i] -= e.val[p] * xr
	}
}

func applyEtaTranspose(e eta, y []float64) {
	sum := 0.0
	for p, i := range e.idx {
		sum += e.val[p] * y[i]
	}
	y[e.r] = (y[e.r] - sum) / e.pivot
}

// ftran computes w = B⁻¹ a_q for structural-or-logical column q.
func (s *simplex) ftran(q int) {
	for i := range s.rhs {
		s.rhs[i] = 0
	}
	s.cf.a.Column(q, func(row int, val float64) { s.rhs[row] = val })
	s.lu.Solve(s.rhs, s.w, s.scratch)
	for i := range s.etas {
		applyEtaForward(s.etas[i], s.w)
	}
}

// btran computes y = B⁻ᵀ cB.
func (s *simplex) btran() {
	copy(s.rhs, s.cB)
	for i := len(s.etas) - 1; i >= 0; i-- {
		applyEtaTranspose(s.etas[i], s.rhs)
	}
	s.lu.SolveT(s.rhs, s.y, s.scratch)
}

// reducedCost computes d_j = c_j - y·a_j with the supplied cost of j.
func (s *simplex) reducedCost(j int, cj float64) float64 {
	d := cj
	s.cf.a.Column(j, func(row int, val float64) { d -= val * s.y[row] })
	return d
}

// candidate evaluates nonbasic variable j for entry, returning its reduced
// cost and movement direction when it can improve the (phase-dependent)
// objective.
func (s *simplex) candidate(j int, phase1 bool) (d, dir float64, ok bool) {
	st := s.vstat[j]
	if st == vBasic || s.cf.lo[j] == s.cf.hi[j] {
		return 0, 0, false
	}
	cj := 0.0
	if !phase1 {
		cj = s.cf.c[j]
	}
	d = s.reducedCost(j, cj)
	switch st {
	case vAtLower:
		if d < -s.opt.OptTol {
			return d, 1, true
		}
	case vAtUpper:
		if d > s.opt.OptTol {
			return d, -1, true
		}
	case vFree:
		if d < -s.opt.OptTol {
			return d, 1, true
		}
		if d > s.opt.OptTol {
			return d, -1, true
		}
	}
	return 0, 0, false
}

// price selects an entering variable. phase1 selects against the implicit
// infeasibility costs (zero for all nonbasic variables); phase 2 uses true
// costs. It returns the variable, its reduced cost, and the movement
// direction (+1 increase, -1 decrease), or q == -1 at optimality.
//
// The normal mode uses partial (rotating-window Dantzig) pricing: columns
// are scanned from a rotating cursor and the best candidate within a window
// is taken; the full wrap-around scan only happens near optimality. Bland
// mode scans from index zero and takes the first candidate, as the
// anti-cycling rule requires.
func (s *simplex) price(phase1 bool) (q int, dq, dir float64) {
	q = -1
	total := s.cf.n + s.cf.m
	if s.bland {
		for j := 0; j < total; j++ {
			if d, cdir, ok := s.candidate(j, phase1); ok {
				return j, d, cdir
			}
		}
		return -1, 0, 0
	}
	window := total/8 + 50
	best := s.opt.OptTol
	for scanned := 0; scanned < total; scanned++ {
		j := s.pricePos
		s.pricePos++
		if s.pricePos >= total {
			s.pricePos = 0
		}
		if d, cdir, ok := s.candidate(j, phase1); ok {
			if a := math.Abs(d); a > best {
				best, q, dq, dir = a, j, d, cdir
			}
		}
		if q >= 0 && scanned >= window {
			break
		}
	}
	return q, dq, dir
}

// ratioResult describes the outcome of a ratio test.
type ratioResult struct {
	t       float64 // step length
	r       int     // leaving row position, or -1 for a bound flip
	leaveAt vstatus // bound at which the leaving variable rests
	flip    bool    // entering variable moved to its opposite bound
	unbound bool    // no blocking constraint exists
}

// ratioTest determines how far the entering variable q can move in
// direction dir.
//
// Phase 2 (feasible, non-Bland) uses a Harris-style two-pass test: pass one
// computes the maximum step with all bounds relaxed by the feasibility
// tolerance; pass two picks, among the rows whose strict ratio fits within
// that step, the one with the largest pivot magnitude. Tolerating
// tolerance-sized bound violations in exchange for large pivots is what
// keeps the eta file numerically stable on degenerate network LPs.
//
// Phase 1 and Bland mode use the classic smallest-ratio test; in phase 1,
// basic variables that are currently infeasible block only when they reach
// the bound they violate (at which point they become feasible).
func (s *simplex) ratioTest(q int, dir float64, phase1 bool) ratioResult {
	if !phase1 && !s.bland {
		return s.ratioTestHarris(q, dir)
	}
	res := ratioResult{t: math.Inf(1), r: -1}
	ftol := s.opt.FeasTol
	// Bound flip of the entering variable itself.
	if !math.IsInf(s.cf.lo[q], -1) && !math.IsInf(s.cf.hi[q], 1) {
		res.t = s.cf.hi[q] - s.cf.lo[q]
		res.flip = true
	}
	bestPivot := 0.0
	for p := 0; p < s.cf.m; p++ {
		wp := s.w[p]
		if math.Abs(wp) < s.opt.PivotTol {
			continue
		}
		delta := -dir * wp // rate of change of xB[p] per unit step
		bj := s.basis[p]
		xj, loj, hij := s.xB[p], s.cf.lo[bj], s.cf.hi[bj]
		var tp float64
		var at vstatus
		switch {
		case phase1 && xj < loj-ftol:
			if delta <= 0 {
				continue // moving further below: no block in phase 1
			}
			tp, at = (loj-xj)/delta, vAtLower
		case phase1 && xj > hij+ftol:
			if delta >= 0 {
				continue
			}
			tp, at = (hij-xj)/delta, vAtUpper
		case delta < 0:
			if math.IsInf(loj, -1) {
				continue
			}
			tp, at = (xj-loj)/(-delta), vAtLower
		case delta > 0:
			if math.IsInf(hij, 1) {
				continue
			}
			tp, at = (hij-xj)/delta, vAtUpper
		default:
			continue
		}
		if tp < 1e-9 {
			// Clamp tiny ratios to an exact zero so degenerate ties are
			// recognized as ties; Bland's rule needs this to terminate.
			tp = 0
		}
		better := false
		switch {
		case tp < res.t-1e-12:
			better = true
		case tp <= res.t+1e-12 && res.r >= 0:
			if s.bland {
				better = bj < s.basis[res.r]
			} else {
				better = math.Abs(wp) > bestPivot
			}
		case tp <= res.t+1e-12 && res.flip:
			better = true // prefer a pivot over a flip at equal length
		}
		if better {
			res.t, res.r, res.leaveAt, res.flip = tp, p, at, false
			bestPivot = math.Abs(wp)
		}
	}
	if math.IsInf(res.t, 1) {
		res.unbound = true
	}
	return res
}

// ratioTestHarris is the two-pass phase-2 ratio test described at ratioTest.
func (s *simplex) ratioTestHarris(q int, dir float64) ratioResult {
	ftol := s.opt.FeasTol
	// Pass 1: maximum step with bounds relaxed by ftol.
	tmax := math.Inf(1)
	for p := 0; p < s.cf.m; p++ {
		wp := s.w[p]
		if math.Abs(wp) < s.opt.PivotTol {
			continue
		}
		delta := -dir * wp
		bj := s.basis[p]
		xj, loj, hij := s.xB[p], s.cf.lo[bj], s.cf.hi[bj]
		var tp float64
		switch {
		case delta < 0:
			if math.IsInf(loj, -1) {
				continue
			}
			tp = (xj - loj + ftol) / (-delta)
		default:
			if math.IsInf(hij, 1) {
				continue
			}
			tp = (hij + ftol - xj) / delta
		}
		if tp < tmax {
			tmax = tp
		}
	}
	// Bound flip of the entering variable: exact, preferred when shortest.
	if !math.IsInf(s.cf.lo[q], -1) && !math.IsInf(s.cf.hi[q], 1) {
		if flipT := s.cf.hi[q] - s.cf.lo[q]; flipT <= tmax {
			return ratioResult{t: flipT, r: -1, flip: true}
		}
	}
	if math.IsInf(tmax, 1) {
		return ratioResult{t: tmax, r: -1, unbound: true}
	}
	// Pass 2: largest pivot among rows whose strict ratio fits in tmax.
	res := ratioResult{t: 0, r: -1}
	bestPivot := 0.0
	for p := 0; p < s.cf.m; p++ {
		wp := s.w[p]
		if math.Abs(wp) < s.opt.PivotTol {
			continue
		}
		delta := -dir * wp
		bj := s.basis[p]
		xj, loj, hij := s.xB[p], s.cf.lo[bj], s.cf.hi[bj]
		var tp float64
		var at vstatus
		switch {
		case delta < 0:
			if math.IsInf(loj, -1) {
				continue
			}
			tp, at = (xj-loj)/(-delta), vAtLower
		default:
			if math.IsInf(hij, 1) {
				continue
			}
			tp, at = (hij-xj)/delta, vAtUpper
		}
		if tp < 0 {
			tp = 0
		}
		if tp <= tmax && math.Abs(wp) > bestPivot {
			bestPivot = math.Abs(wp)
			res.t, res.r, res.leaveAt = tp, p, at
		}
	}
	if res.r >= 0 {
		// EXPAND-style minimum step: force strictly positive progress by
		// letting the leaving variable overshoot its bound by at most
		// ftol/2 (all other rows stay within ftol by the pass-1 bound).
		// Degenerate zero-length pivots are what make network LPs stall.
		if minStep := 0.5 * ftol / bestPivot; res.t < minStep {
			if minStep > tmax {
				minStep = tmax
			}
			if res.t < minStep {
				res.t = minStep
			}
		}
	}
	if res.r < 0 {
		// Every candidate's strict ratio exceeded tmax (can only happen
		// through rounding); fall back to the smallest strict ratio.
		for p := 0; p < s.cf.m; p++ {
			wp := s.w[p]
			if math.Abs(wp) < s.opt.PivotTol {
				continue
			}
			delta := -dir * wp
			bj := s.basis[p]
			xj, loj, hij := s.xB[p], s.cf.lo[bj], s.cf.hi[bj]
			var tp float64
			var at vstatus
			switch {
			case delta < 0:
				if math.IsInf(loj, -1) {
					continue
				}
				tp, at = (xj-loj)/(-delta), vAtLower
			default:
				if math.IsInf(hij, 1) {
					continue
				}
				tp, at = (hij-xj)/delta, vAtUpper
			}
			if tp < 0 {
				tp = 0
			}
			if res.r < 0 || tp < res.t {
				res.t, res.r, res.leaveAt = tp, p, at
			}
		}
		if res.r < 0 {
			return ratioResult{t: math.Inf(1), r: -1, unbound: true}
		}
	}
	return res
}

// pivot applies the step chosen by the ratio test.
func (s *simplex) pivot(q int, dir float64, res ratioResult) error {
	t := res.t
	enterVal := s.nbValue(q) // capture before any status change
	// Move all basic variables along the direction.
	if t != 0 {
		for p := 0; p < s.cf.m; p++ {
			if s.w[p] != 0 {
				s.xB[p] -= dir * s.w[p] * t
			}
		}
	}
	if res.flip {
		if s.vstat[q] == vAtLower {
			s.vstat[q] = vAtUpper
		} else {
			s.vstat[q] = vAtLower
		}
		return nil
	}
	r := res.r
	leaving := s.basis[r]
	s.vstat[leaving] = res.leaveAt
	s.vstat[q] = vBasic
	s.basis[r] = q
	s.xB[r] = enterVal + dir*t
	// Record the eta transformation for subsequent FTRAN/BTRAN.
	e := eta{r: r, pivot: s.w[r]}
	for i, wi := range s.w {
		if i != r && wi != 0 {
			e.idx = append(e.idx, i)
			e.val = append(e.val, wi)
		}
	}
	s.etas = append(s.etas, e)
	if len(s.etas) >= s.opt.RefactorEvery {
		return s.refactorize()
	}
	return nil
}

// infeasibility reports the total bound violation of the basic variables.
func (s *simplex) infeasibility() float64 {
	sum := 0.0
	for p := 0; p < s.cf.m; p++ {
		bj := s.basis[p]
		if v := s.cf.lo[bj] - s.xB[p]; v > 0 {
			sum += v
		}
		if v := s.xB[p] - s.cf.hi[bj]; v > 0 {
			sum += v
		}
	}
	return sum
}

// phase1Costs fills cB with the gradient of the infeasibility sum.
func (s *simplex) phase1Costs() {
	ftol := s.opt.FeasTol
	for p := 0; p < s.cf.m; p++ {
		bj := s.basis[p]
		switch {
		case s.xB[p] < s.cf.lo[bj]-ftol:
			s.cB[p] = -1
		case s.xB[p] > s.cf.hi[bj]+ftol:
			s.cB[p] = 1
		default:
			s.cB[p] = 0
		}
	}
}

// noteStep updates anti-cycling state after a step of length t. Bland mode
// engages after a long degenerate stall and disengages only after a run of
// genuinely progressing steps, so a stall-progress-stall oscillation cannot
// defeat it.
func (s *simplex) noteStep(t float64) {
	if t <= 1e-10 {
		s.stallCount++
		s.goodSteps = 0
		if s.stallCount > 300 {
			s.bland = true
		}
		return
	}
	if s.bland {
		s.goodSteps++
		if s.goodSteps >= 20 {
			s.bland = false
			s.stallCount = 0
			s.goodSteps = 0
		}
		return
	}
	s.stallCount = 0
}

// clearPerturbation strips the deterministic cost perturbation mid-solve,
// restoring the honest costs. It reports whether anything changed; the
// latch guarantees it fires at most once per solve, so the phase-2 loop
// cannot spin on it.
func (s *simplex) clearPerturbation() bool {
	if s.perturbOff {
		return false
	}
	s.perturbOff = true
	changed := false
	for j := range s.cf.c {
		if s.cf.c[j] != s.cf.c0[j] {
			changed = true
			break
		}
	}
	copy(s.cf.c, s.cf.c0)
	return changed
}

// Solve optimizes the model with the sparse revised simplex and returns the
// solution. The model is not modified. Status is always set on the returned
// Solution when err is nil.
//
// With Options.Presolve the model is reduced first and the solution mapped
// back; with Options.InitialBasis the simplex is seeded from the snapshot
// (falling back to a cold start when the snapshot does not fit).
func (m *Model) Solve(opts *Options) (*Solution, error) {
	if opts != nil && opts.Presolve {
		return m.solvePresolved(opts)
	}
	return m.solveDirect(opts)
}

// solveDirect runs the simplex on the model as-is.
func (m *Model) solveDirect(opts *Options) (*Solution, error) {
	cf, err := m.buildCompForm()
	if err != nil {
		return nil, err
	}
	opt := opts.withDefaults(cf.m, cf.n)
	cf.perturb(opt.Perturb)
	s := &simplex{
		cf:      cf,
		opt:     opt,
		basis:   make([]int, cf.m),
		vstat:   make([]vstatus, cf.n+cf.m),
		xB:      make([]float64, cf.m),
		w:       make([]float64, cf.m),
		y:       make([]float64, cf.m),
		cB:      make([]float64, cf.m),
		scratch: make([]float64, cf.m),
		rhs:     make([]float64, cf.m),
	}
	if opt.InitialBasis != nil && s.tryWarmStart(opt.InitialBasis) {
		s.warmStarted = true
	} else {
		// Cold start from the all-logical basis; structurals rest at a
		// finite bound.
		for j := 0; j < cf.n; j++ {
			switch {
			case !math.IsInf(cf.lo[j], -1):
				s.vstat[j] = vAtLower
			case !math.IsInf(cf.hi[j], 1):
				s.vstat[j] = vAtUpper
			default:
				s.vstat[j] = vFree
			}
		}
		for i := 0; i < cf.m; i++ {
			s.basis[i] = cf.n + i
			s.vstat[cf.n+i] = vBasic
		}
		if err := s.refactorize(); err != nil {
			return nil, err
		}
	}

	status, err := s.run()
	if err != nil {
		return nil, err
	}
	return s.solution(m, status), nil
}

// run executes both simplex phases and returns the final status. Phase 2
// re-enters phase 1 when accumulated rounding pushes basic variables
// materially outside their bounds (bounded number of times, as a safety
// net against numerical wandering).
func (s *simplex) run() (Status, error) {
	const maxPhaseRestarts = 25
	restarts := 0
	for {
		st, done, err := s.runPhase1()
		if err != nil || done {
			return st, err
		}
		st, done, err = s.runPhase2()
		if err != nil || done {
			return st, err
		}
		// Phase 2 detected drift; go around again.
		restarts++
		if restarts > maxPhaseRestarts {
			return IterLimit, nil
		}
	}
}

// runPhase1 drives out primal infeasibility. done is false only when the
// caller should proceed to phase 2. Infeasibility is only ever declared
// from the dual criterion (no improving direction); numerical drift
// discovered after a refactorization sends the loop back to pivoting.
func (s *simplex) runPhase1() (Status, bool, error) {
	exitTol := s.opt.FeasTol * float64(1+s.cf.m)
	for {
		if s.iters >= s.opt.MaxIterations {
			return IterLimit, true, nil
		}
		if s.infeasibility() <= exitTol {
			// Clean up drift and confirm on honestly recomputed values.
			if err := s.refactorize(); err != nil {
				return 0, true, err
			}
			if s.infeasibility() <= 2*exitTol {
				break
			}
			continue // drift was hiding real infeasibility: keep pivoting
		}
		s.phase1Costs()
		s.btran()
		q, _, dir := s.price(true)
		if q < 0 {
			// No improving direction: the dual certificate of phase-1
			// optimality. Recompute honestly before concluding.
			if err := s.refactorize(); err != nil {
				return 0, true, err
			}
			if s.infeasibility() > 2*exitTol {
				return Infeasible, true, nil
			}
			break
		}
		s.ftran(q)
		res := s.ratioTest(q, dir, true)
		if res.unbound {
			// A descent direction for a nonnegative objective cannot be
			// unbounded; treat as numerical breakdown and refactorize once.
			if err := s.refactorize(); err != nil {
				return 0, true, err
			}
			if res2 := s.ratioTest(q, dir, true); !res2.unbound {
				res = res2
			} else {
				return 0, true, fmt.Errorf("lp: phase-1 ratio test found no blocking bound")
			}
		}
		if err := s.pivot(q, dir, res); err != nil {
			return 0, true, err
		}
		s.noteStep(res.t)
		s.iters++
		s.phase1Iters++
	}
	s.bland, s.stallCount, s.goodSteps = false, 0, 0
	return 0, false, nil
}

// runPhase2 optimizes the true costs. done is false only when feasibility
// drifted beyond tolerance and phase 1 must be re-entered.
func (s *simplex) runPhase2() (Status, bool, error) {
	driftLimit := math.Sqrt(s.opt.FeasTol) * float64(1+s.cf.m)
	for {
		if s.iters >= s.opt.MaxIterations {
			return IterLimit, true, nil
		}
		if s.iters%16 == 0 && s.infeasibility() > driftLimit {
			if err := s.refactorize(); err != nil {
				return 0, true, err
			}
			if s.infeasibility() > driftLimit {
				return 0, false, nil // genuinely drifted: redo phase 1
			}
		}
		for p := 0; p < s.cf.m; p++ {
			s.cB[p] = s.cf.c[s.basis[p]]
		}
		s.btran()
		q, _, dir := s.price(false)
		if q < 0 {
			return Optimal, true, nil
		}
		s.ftran(q)
		res := s.ratioTest(q, dir, false)
		if res.unbound {
			// An unbounded certificate under perturbed costs may be an
			// artifact: a truly zero-cost ray picks up a tiny perturbed
			// cost and looks improving. Strip the perturbation and
			// re-price with the honest costs before concluding.
			if s.clearPerturbation() {
				continue
			}
			return Unbounded, true, nil
		}
		if err := s.pivot(q, dir, res); err != nil {
			return 0, true, err
		}
		s.noteStep(res.t)
		s.iters++
	}
}

// solution extracts a Solution in the original model's terms.
func (s *simplex) solution(m *Model, status Status) *Solution {
	sol := &Solution{
		Status:      status,
		X:           make([]float64, s.cf.n),
		Dual:        make([]float64, s.cf.m),
		ReducedObj:  make([]float64, s.cf.n),
		Iterations:  s.iters,
		Phase1Iter:  s.phase1Iters,
		Factorized:  s.factorCount,
		Basis:       s.captureBasis(),
		WarmStarted: s.warmStarted,
	}
	if status != Optimal && status != IterLimit {
		return sol
	}
	for j := 0; j < s.cf.n; j++ {
		if s.vstat[j] != vBasic {
			sol.X[j] = s.nbValue(j)
		}
	}
	for p, bj := range s.basis {
		if bj < s.cf.n {
			sol.X[bj] = s.xB[p]
		}
	}
	// Snap values that the EXPAND anti-degeneracy step nudged marginally
	// past a bound back onto it.
	snapTol := 8 * s.opt.FeasTol
	for j := 0; j < s.cf.n; j++ {
		if lo := s.cf.lo[j]; !math.IsInf(lo, -1) && math.Abs(sol.X[j]-lo) <= snapTol*(1+math.Abs(lo)) {
			sol.X[j] = lo
			continue
		}
		if hi := s.cf.hi[j]; !math.IsInf(hi, 1) && math.Abs(sol.X[j]-hi) <= snapTol*(1+math.Abs(hi)) {
			sol.X[j] = hi
		}
	}
	// Duals and reduced costs from the final basis with the original
	// (unperturbed) costs.
	for p := 0; p < s.cf.m; p++ {
		s.cB[p] = s.cf.c0[s.basis[p]]
	}
	s.btran()
	copy(sol.Dual, s.y)
	for j := 0; j < s.cf.n; j++ {
		if s.vstat[j] == vBasic {
			continue
		}
		sol.ReducedObj[j] = s.reducedCost(j, s.cf.c0[j])
	}
	obj := 0.0
	for j := 0; j < s.cf.n; j++ {
		obj += s.cf.c0[j] * sol.X[j]
	}
	if m.maximize {
		obj = -obj
		for i := range sol.Dual {
			sol.Dual[i] = -sol.Dual[i]
		}
		for j := range sol.ReducedObj {
			sol.ReducedObj[j] = -sol.ReducedObj[j]
		}
	}
	sol.Objective = obj
	return sol
}
