package lp

import (
	"fmt"
	"math"

	"github.com/interdc/postcard/internal/lp/backend"
	"github.com/interdc/postcard/internal/lp/sparse"
)

// Variable status within the simplex. The type (and its values) live in
// the backend package so status slices cross the compute seam uncopied.
type vstatus = backend.VStatus

const (
	vBasic   = backend.Basic
	vAtLower = backend.AtLower
	vAtUpper = backend.AtUpper
	vFree    = backend.Free // nonbasic free variable resting at zero
)

// compForm is the computational form of a model: min c·x subject to
// A·x = b, lo ≤ x ≤ hi, where A includes one logical (slack) column per row
// appended after the n structural columns.
type compForm struct {
	m, n int // rows, structural columns; A has n+m columns
	a    *sparse.Matrix
	b    []float64
	c    []float64 // minimization costs used for pivoting (perturbed)
	c0   []float64 // original minimization costs, for objective reporting
	lo   []float64
	hi   []float64
}

// perturb adds a deterministic pseudo-random tiny amount to every cost to
// break the massive dual degeneracy of network LPs. The original costs are
// kept in c0 for reporting.
func (cf *compForm) perturb(scale float64) {
	cf.c0 = append([]float64(nil), cf.c...)
	if scale <= 0 {
		return
	}
	for j := range cf.c {
		h := uint64(j)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
		h ^= h >> 30
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		u := float64(h>>11) / float64(1<<53) // in [0, 1)
		cf.c[j] += scale * (0.5 + u) * (1 + math.Abs(cf.c[j]))
	}
}

// buildCompForm converts the model into computational form. Maximization is
// handled by negating costs; Solve flips the objective value back.
func (m *Model) buildCompForm() (*compForm, error) {
	nRows, nCols := len(m.rows), len(m.obj)
	for j := 0; j < nCols; j++ {
		if m.lo[j] > m.hi[j] {
			return nil, fmt.Errorf("lp: variable %s has empty domain [%g, %g]",
				m.VarName(VarID(j)), m.lo[j], m.hi[j])
		}
	}
	nnz := 0
	for _, r := range m.rows {
		nnz += len(r.idx)
	}
	trip := make([]sparse.Triplet, 0, nnz+nRows)
	cf := &compForm{
		m:  nRows,
		n:  nCols,
		b:  make([]float64, nRows),
		c:  make([]float64, nCols+nRows),
		lo: make([]float64, nCols+nRows),
		hi: make([]float64, nCols+nRows),
	}
	copy(cf.lo, m.lo)
	copy(cf.hi, m.hi)
	for j, c := range m.obj {
		if m.maximize {
			cf.c[j] = -c
		} else {
			cf.c[j] = c
		}
	}
	for i, r := range m.rows {
		cf.b[i] = r.rhs
		for p, j := range r.idx {
			trip = append(trip, sparse.Triplet{Row: i, Col: j, Val: r.val[p]})
		}
		lj := nCols + i
		trip = append(trip, sparse.Triplet{Row: i, Col: lj, Val: 1})
		switch r.sense {
		case LE:
			cf.lo[lj], cf.hi[lj] = 0, math.Inf(1)
		case GE:
			cf.lo[lj], cf.hi[lj] = math.Inf(-1), 0
		case EQ:
			cf.lo[lj], cf.hi[lj] = 0, 0
		}
	}
	a, err := sparse.NewFromTriplets(nRows, nCols+nRows, trip)
	if err != nil {
		return nil, fmt.Errorf("lp: building constraint matrix: %w", err)
	}
	cf.a = a
	return cf, nil
}

// eta is one product-form basis update. Its nonzero off-pivot rows live in
// the simplex's pooled etaIdx/etaVal arrays at [start, end); the pools are
// truncated (capacity retained) on every refactorization, so steady-state
// pivots allocate nothing once the pools have grown to their working size.
type eta struct {
	start, end int // slice of the pooled etaIdx/etaVal arrays
	r          int // pivot row
	pivot      float64
}

// simplex holds the mutable state of one revised-simplex solve.
type simplex struct {
	cf  *compForm
	opt Options

	basis []int     // basic variable per row position
	vstat []vstatus // per variable
	xB    []float64 // values of basic variables by row position

	lu     *sparse.LU
	at     *sparse.CSR // row-major mirror of cf.a for pivot-row assembly
	etas   []eta
	etaIdx []int
	etaVal []float64

	// FTRAN result (entering column in basis coordinates), pattern-tracked:
	// w is zero and wMark false everywhere outside wIdx.
	w     []float64
	wIdx  []int
	wMark []bool

	// dense workspaces, all of length m
	y       []float64 // BTRAN result (simplex multipliers), dense path
	cB      []float64 // basic cost vector; maintained incrementally in phase 1
	scratch []float64
	rhs     []float64

	// sparse BTRAN result (rho = B⁻ᵀ e_r or a correction vector), in original
	// row space, pattern-tracked: zero outside rhoIdx.
	rho    []float64
	rhoIdx []int
	// basis-position-space intermediate of the eta-transpose stage.
	btv     []float64
	btvIdx  []int
	btvMark []bool
	posVal  []float64
	uIdx    [1]int
	uVal    [1]float64

	// pivot row of B⁻¹A over all columns, pattern-tracked.
	alpha     []float64
	alphaIdx  []int
	alphaMark []bool

	// maintained reduced costs and devex reference weights, length n+m.
	d          []float64
	devexW     []float64
	dValid     bool
	dPhase1    bool // the maintained d vector is for phase-1 costs
	devexStale bool // reference framework needs a reset before next pricing

	// phase-1 incremental cost-change scratch.
	deltaIdx []int
	deltaVal []float64

	ws sparse.PatternWorkspace

	// compute backend for the hot kernels, plus the reusable scan input.
	be   backend.Backend
	scan backend.PriceInput

	useDevex bool

	iters       int
	phase1Iters int
	factorCount int
	warmStarted bool
	perturbOff  bool // cost perturbation has been stripped mid-solve
	bland       bool
	stallCount  int
	goodSteps   int // consecutive non-degenerate steps while in Bland mode
	pricePos    int // rotating cursor for partial pricing

	// hyper-sparse instrumentation
	sparseSolves int
	denseSolves  int
	solveNNZ     int
	solveDim     int
	devexResets  int
	dRecomputes  int
}

// newSimplex allocates all solver state for the computational form. Every
// buffer a steady-state iteration appends to is pre-sized here, so iterations
// after warm-up perform no allocations (asserted by TestIterationAllocs).
// The backend is owned by the caller, who must Close it after the solve.
func newSimplex(cf *compForm, opt Options, be backend.Backend) *simplex {
	total := cf.n + cf.m
	s := &simplex{
		cf:         cf,
		opt:        opt,
		at:         cf.a.ToCSR(),
		basis:      make([]int, cf.m),
		vstat:      make([]vstatus, total),
		xB:         make([]float64, cf.m),
		w:          make([]float64, cf.m),
		wIdx:       make([]int, 0, cf.m),
		wMark:      make([]bool, cf.m),
		y:          make([]float64, cf.m),
		cB:         make([]float64, cf.m),
		scratch:    make([]float64, cf.m),
		rhs:        make([]float64, cf.m),
		rho:        make([]float64, cf.m),
		rhoIdx:     make([]int, 0, cf.m),
		btv:        make([]float64, cf.m),
		btvIdx:     make([]int, 0, cf.m),
		btvMark:    make([]bool, cf.m),
		posVal:     make([]float64, 0, cf.m),
		alpha:      make([]float64, total),
		alphaIdx:   make([]int, 0, total),
		alphaMark:  make([]bool, total),
		d:          make([]float64, total),
		devexW:     make([]float64, total),
		deltaIdx:   make([]int, 0, cf.m),
		deltaVal:   make([]float64, 0, cf.m),
		be:         be,
		useDevex:   opt.Pricing == PricingDevex,
		devexStale: true, // weights start uninitialized
	}
	s.scan = backend.PriceInput{
		D:     s.d,
		W:     s.devexW,
		Lo:    cf.lo,
		Hi:    cf.hi,
		VStat: s.vstat,
		Tol:   opt.OptTol,
	}
	return s
}

// sparseLimit is the pattern-size cutoff for the hyper-sparse triangular
// solves: predicted patterns denser than ~30% of the dimension fall back to
// the dense substitution, whose sequential sweeps beat pattern chasing once
// most positions are touched anyway.
func (s *simplex) sparseLimit() int {
	lim := (3 * s.cf.m) / 10
	if lim < 16 {
		lim = 16
	}
	return lim
}

// nbValue reports the resting value of nonbasic variable j.
func (s *simplex) nbValue(j int) float64 {
	switch s.vstat[j] {
	case vAtLower:
		return s.cf.lo[j]
	case vAtUpper:
		return s.cf.hi[j]
	default:
		return 0
	}
}

// refactorize rebuilds the LU factorization of the current basis, applies
// any singularity repairs to the basis bookkeeping, clears the eta file,
// recomputes basic variable values from scratch, and invalidates the
// maintained reduced costs (which are defined against the dropped etas and
// possibly-repaired basis).
func (s *simplex) refactorize() error {
	lu, err := sparse.FactorizeBasis(s.cf.a, s.basis, s.opt.PivotTol*1e-2)
	if err != nil {
		return fmt.Errorf("lp: basis factorization: %w", err)
	}
	for _, rep := range lu.Repairs() {
		evicted := s.basis[rep.Pos]
		logical := s.cf.n + rep.Row
		if evicted == logical {
			continue
		}
		// Park the evicted variable at its nearest finite bound.
		switch {
		case !math.IsInf(s.cf.lo[evicted], -1):
			s.vstat[evicted] = vAtLower
		case !math.IsInf(s.cf.hi[evicted], 1):
			s.vstat[evicted] = vAtUpper
		default:
			s.vstat[evicted] = vFree
		}
		// The logical may have been nonbasic elsewhere; it becomes basic here.
		s.vstat[logical] = vBasic
		s.basis[rep.Pos] = logical
	}
	s.lu = lu
	s.etas = s.etas[:0]
	s.etaIdx = s.etaIdx[:0]
	s.etaVal = s.etaVal[:0]
	s.factorCount++
	s.dValid = false
	if len(lu.Repairs()) > 0 {
		s.devexStale = true // repairs changed the basis discontinuously
	}
	s.computeXB()
	return nil
}

// computeXB recomputes xB = B⁻¹ (b - N·x_N) from scratch through the
// sparse-RHS solve (warm-started bases of nearly-empty slots have very few
// nonzero right-hand positions; dense ones fall back). It is only called
// with an empty eta file (from refactorize).
func (s *simplex) computeXB() {
	copy(s.rhs, s.cf.b)
	total := s.cf.n + s.cf.m
	for j := 0; j < total; j++ {
		if s.vstat[j] == vBasic {
			continue
		}
		xj := s.nbValue(j)
		if xj == 0 {
			continue
		}
		s.cf.a.Column(j, func(row int, val float64) {
			s.rhs[row] -= val * xj
		})
	}
	s.deltaIdx = s.deltaIdx[:0]
	s.deltaVal = s.deltaVal[:0]
	for i, v := range s.rhs {
		if v != 0 {
			s.deltaIdx = append(s.deltaIdx, i)
			s.deltaVal = append(s.deltaVal, v)
		}
	}
	for i := range s.xB {
		s.xB[i] = 0
	}
	_, ok := s.lu.SolveSparseRHS(s.deltaIdx, s.deltaVal, s.xB, &s.ws, s.sparseLimit())
	s.noteSolve(ok, len(s.deltaIdx))
}

// noteSolve records one triangular solve in the hyper-sparse counters. n is
// the result-pattern size on the sparse path; a dense fall-back counts the
// full basis dimension.
func (s *simplex) noteSolve(ok bool, n int) {
	if ok {
		s.sparseSolves++
		s.solveNNZ += n
	} else {
		s.denseSolves++
		s.solveNNZ += s.cf.m
	}
	s.solveDim += s.cf.m
}

// ftran computes w = B⁻¹ a_q for structural-or-logical column q, leaving the
// touched positions in wIdx/wMark. w must be clear (all-zero, pattern empty)
// on entry; callers restore that invariant with clearW.
func (s *simplex) ftran(q int) {
	var ok bool
	if bx, bpat, bok, hit := s.be.Collect(q, s.lu); hit {
		// The backend speculated this base solve against the exact same
		// factorization; replaying it is bit-identical to solving afresh
		// (the eta file is applied below at use time either way), and the
		// hyper-sparse counters record exactly what the fresh solve would.
		ok = bok
		if ok {
			s.wIdx = s.wIdx[:0]
			for _, i := range bpat {
				s.w[i] = bx[i]
				s.wIdx = append(s.wIdx, i)
			}
		} else {
			copy(s.w, bx)
			s.wIdx = s.wIdx[:0]
			for i, v := range s.w {
				if v != 0 {
					s.wIdx = append(s.wIdx, i)
				}
			}
		}
	} else {
		idx, val := s.cf.a.ColumnSlices(q)
		var pat []int
		pat, ok = s.lu.SolveSparseRHS(idx, val, s.w, &s.ws, s.sparseLimit())
		if ok {
			s.wIdx = append(s.wIdx[:0], pat...)
		} else {
			// The dense fallback overwrote all of w; harvest the exact nonzeros
			// so downstream pattern consumers see a uniform representation.
			s.wIdx = s.wIdx[:0]
			for i, v := range s.w {
				if v != 0 {
					s.wIdx = append(s.wIdx, i)
				}
			}
		}
	}
	s.noteSolve(ok, len(s.wIdx))
	for _, i := range s.wIdx {
		s.wMark[i] = true
	}
	// Product-form updates, spreading the pattern as they fill in.
	for k := range s.etas {
		e := &s.etas[k]
		if !s.wMark[e.r] {
			continue // w[e.r] is exactly zero: the eta cannot act
		}
		xr := s.w[e.r] / e.pivot
		s.w[e.r] = xr
		if xr == 0 {
			continue
		}
		for p := e.start; p < e.end; p++ {
			i := s.etaIdx[p]
			s.w[i] -= s.etaVal[p] * xr
			if !s.wMark[i] {
				s.wMark[i] = true
				s.wIdx = append(s.wIdx, i)
			}
		}
	}
}

// clearW restores the all-zero w invariant by wiping only the active pattern.
func (s *simplex) clearW() {
	for _, i := range s.wIdx {
		s.w[i] = 0
		s.wMark[i] = false
	}
	s.wIdx = s.wIdx[:0]
}

// btran computes y = B⁻ᵀ cB with the dense substitution path. It backs the
// legacy (Dantzig/Bland) pricing loop, the periodic reduced-cost recompute,
// and the final dual extraction.
func (s *simplex) btran() {
	copy(s.rhs, s.cB)
	for i := len(s.etas) - 1; i >= 0; i-- {
		e := &s.etas[i]
		sum := 0.0
		for p := e.start; p < e.end; p++ {
			sum += s.etaVal[p] * s.rhs[s.etaIdx[p]]
		}
		s.rhs[e.r] = (s.rhs[e.r] - sum) / e.pivot
	}
	s.lu.SolveT(s.rhs, s.y, s.scratch)
}

// btranSparse computes rho = B⁻ᵀ v for a sparse v given in basis-position
// space (duplicates summed), leaving the result in original row space with
// its pattern in rhoIdx. rho must be clear on entry; callers restore the
// invariant with clearRho.
func (s *simplex) btranSparse(idx []int, val []float64) {
	// Stage 1: eta transposes, still in basis-position space. Each eta only
	// rewrites position e.r, so the pattern can grow by at most one per eta.
	s.btvIdx = s.btvIdx[:0]
	for p, k := range idx {
		if !s.btvMark[k] {
			s.btvMark[k] = true
			s.btvIdx = append(s.btvIdx, k)
			s.btv[k] = 0
		}
		s.btv[k] += val[p]
	}
	for i := len(s.etas) - 1; i >= 0; i-- {
		e := &s.etas[i]
		sum := 0.0
		for p := e.start; p < e.end; p++ {
			sum += s.etaVal[p] * s.btv[s.etaIdx[p]]
		}
		if s.btvMark[e.r] {
			s.btv[e.r] = (s.btv[e.r] - sum) / e.pivot
		} else if sum != 0 {
			s.btvMark[e.r] = true
			s.btvIdx = append(s.btvIdx, e.r)
			s.btv[e.r] = -sum / e.pivot
		}
	}
	s.posVal = s.posVal[:0]
	for _, k := range s.btvIdx {
		s.posVal = append(s.posVal, s.btv[k])
	}
	// Stage 2: the factorized transposed solve.
	pat, ok := s.lu.SolveTSparseRHS(s.btvIdx, s.posVal, s.rho, &s.ws, s.sparseLimit())
	for _, k := range s.btvIdx {
		s.btv[k] = 0
		s.btvMark[k] = false
	}
	s.btvIdx = s.btvIdx[:0]
	if ok {
		s.rhoIdx = append(s.rhoIdx[:0], pat...)
	} else {
		s.rhoIdx = s.rhoIdx[:0]
		for i, v := range s.rho {
			if v != 0 {
				s.rhoIdx = append(s.rhoIdx, i)
			}
		}
	}
	s.noteSolve(ok, len(s.rhoIdx))
}

func (s *simplex) clearRho() {
	for _, i := range s.rhoIdx {
		s.rho[i] = 0
	}
	s.rhoIdx = s.rhoIdx[:0]
}

// btranUnit computes rho = B⁻ᵀ e_r: the r-th row of B⁻¹, whose inner
// products with the columns of A form the simplex pivot row.
func (s *simplex) btranUnit(r int) {
	s.uIdx[0], s.uVal[0] = r, 1
	s.btranSparse(s.uIdx[:], s.uVal[:])
}

// pivotRowAlpha assembles alpha = rhoᵀ A over all columns by walking the CSR
// rows touched by the sparse BTRAN result — the hyper-sparse replacement for
// scanning every column of A. The walk itself runs on the compute backend
// (the parallel backend partitions it by column ranges, which preserves the
// per-column accumulation order and therefore the exact floating-point
// values; only the alphaIdx ordering may differ, which no consumer reads).
func (s *simplex) pivotRowAlpha() {
	s.alphaIdx = s.be.PivotRow(s.at, s.rho, s.rhoIdx, s.alpha, s.alphaMark, s.alphaIdx[:0])
}

func (s *simplex) clearAlpha() {
	for _, j := range s.alphaIdx {
		s.alpha[j] = 0
		s.alphaMark[j] = false
	}
	s.alphaIdx = s.alphaIdx[:0]
}

// reducedCost computes d_j = c_j - y·a_j with the supplied cost of j.
func (s *simplex) reducedCost(j int, cj float64) float64 {
	d := cj
	s.cf.a.Column(j, func(row int, val float64) { d -= val * s.y[row] })
	return d
}

// candidate evaluates nonbasic variable j for entry, returning its reduced
// cost and movement direction when it can improve the (phase-dependent)
// objective.
func (s *simplex) candidate(j int, phase1 bool) (d, dir float64, ok bool) {
	st := s.vstat[j]
	if st == vBasic || s.cf.lo[j] == s.cf.hi[j] {
		return 0, 0, false
	}
	cj := 0.0
	if !phase1 {
		cj = s.cf.c[j]
	}
	d = s.reducedCost(j, cj)
	switch st {
	case vAtLower:
		if d < -s.opt.OptTol {
			return d, 1, true
		}
	case vAtUpper:
		if d > s.opt.OptTol {
			return d, -1, true
		}
	case vFree:
		if d < -s.opt.OptTol {
			return d, 1, true
		}
		if d > s.opt.OptTol {
			return d, -1, true
		}
	}
	return 0, 0, false
}

// price selects an entering variable for the legacy paths. phase1 selects
// against the implicit infeasibility costs (zero for all nonbasic
// variables); phase 2 uses true costs. It returns the variable, its reduced
// cost, and the movement direction (+1 increase, -1 decrease), or q == -1 at
// optimality. It requires s.y to hold current simplex multipliers.
//
// The normal mode uses partial (rotating-window Dantzig) pricing: columns
// are scanned from a rotating cursor and the best candidate within a window
// is taken; the full wrap-around scan only happens near optimality. Bland
// mode scans from index zero and takes the first candidate, as the
// anti-cycling rule requires.
func (s *simplex) price(phase1 bool) (q int, dq, dir float64) {
	q = -1
	total := s.cf.n + s.cf.m
	if s.bland {
		for j := 0; j < total; j++ {
			if d, cdir, ok := s.candidate(j, phase1); ok {
				return j, d, cdir
			}
		}
		return -1, 0, 0
	}
	window := total/8 + 50
	best := s.opt.OptTol
	for scanned := 0; scanned < total; scanned++ {
		j := s.pricePos
		s.pricePos++
		if s.pricePos >= total {
			s.pricePos = 0
		}
		if d, cdir, ok := s.candidate(j, phase1); ok {
			if a := math.Abs(d); a > best {
				best, q, dq, dir = a, j, d, cdir
			}
		}
		if q >= 0 && scanned >= window {
			break
		}
	}
	return q, dq, dir
}

// ensureDuals guarantees the maintained reduced-cost vector matches the
// requested phase, recomputing it from scratch when a refactorization, a
// phase switch, a Bland episode, or a cost change invalidated it, and
// rebuilding the devex reference framework when it has gone stale. Weight
// resets are deliberately decoupled from dual recomputes: a routine
// refactorization does not change the basis, so the reference framework —
// which approximates steepest-edge norms accumulated over many pivots —
// survives it; wiping it every RefactorEvery pivots would discard exactly
// the information that steers devex out of degenerate plateaus.
func (s *simplex) ensureDuals(phase1 bool) {
	if s.devexStale || s.dPhase1 != phase1 {
		s.resetDevexWeights()
	}
	if s.dValid && s.dPhase1 == phase1 {
		return
	}
	s.recomputeD(phase1)
}

// resetDevexWeights restarts the devex reference framework from the current
// basis (all weights one).
func (s *simplex) resetDevexWeights() {
	for j := range s.devexW {
		s.devexW[j] = 1
	}
	s.devexStale = false
	s.devexResets++
}

// recomputeD rebuilds the maintained reduced costs d_j = c_j − y·a_j for
// every nonbasic variable with an honest dense BTRAN. This is the periodic
// drift bound: it runs at least once per refactorization cycle.
func (s *simplex) recomputeD(phase1 bool) {
	if phase1 {
		s.phase1Costs()
	} else {
		for p := 0; p < s.cf.m; p++ {
			s.cB[p] = s.cf.c[s.basis[p]]
		}
	}
	s.btran()
	total := s.cf.n + s.cf.m
	for j := 0; j < total; j++ {
		if s.vstat[j] == vBasic {
			s.d[j] = 0
			continue
		}
		cj := 0.0
		if !phase1 {
			cj = s.cf.c[j]
		}
		s.d[j] = s.reducedCost(j, cj)
	}
	s.dValid, s.dPhase1 = true, phase1
	s.dRecomputes++
}

// priceDevex selects the entering variable by devex pricing over the
// maintained reduced costs: the candidate maximizing d_j²/γ_j, where γ_j is
// the devex reference weight approximating ‖B⁻¹a_j‖². No columns of A are
// touched — this is a single pass over two dense arrays, which is what
// makes full-scan (rather than windowed) pricing affordable here.
func (s *simplex) priceDevex() (q int, dq, dir float64) {
	return s.be.PriceDevex(&s.scan)
}

// priceMaintainedWindow selects the entering variable with the legacy
// rotating-window partial Dantzig rule, but reading the maintained
// reduced-cost vector instead of recomputing multipliers. It is the phase-1
// pricing rule: on the massively degenerate phase-1 problems of network LPs
// the devex criterion herds the iterate onto a plateau it cannot leave
// (hundreds of consecutive zero-length steps, then a Bland crawl), while the
// rotating window's enforced diversification walks off such plateaus in a
// handful of iterations. Phase 1 is a small fraction of total work — and is
// skipped almost entirely on warm starts — so the simpler rule costs little,
// and it still prices in O(window) over a dense array thanks to the
// maintained vector.
func (s *simplex) priceMaintainedWindow() (q int, dq, dir float64) {
	q = -1
	tol := s.opt.OptTol
	total := s.cf.n + s.cf.m
	window := total/8 + 50
	best := tol
	for scanned := 0; scanned < total; scanned++ {
		j := s.pricePos
		s.pricePos++
		if s.pricePos >= total {
			s.pricePos = 0
		}
		st := s.vstat[j]
		if st == vBasic || s.cf.lo[j] == s.cf.hi[j] {
			continue
		}
		dj := s.d[j]
		var cdir float64
		switch st {
		case vAtLower:
			if dj >= -tol {
				continue
			}
			cdir = 1
		case vAtUpper:
			if dj <= tol {
				continue
			}
			cdir = -1
		default: // vFree
			if dj < -tol {
				cdir = 1
			} else if dj > tol {
				cdir = -1
			} else {
				continue
			}
		}
		if a := math.Abs(dj); a > best {
			best, q, dq, dir = a, j, dj, cdir
		}
		if q >= 0 && scanned >= window {
			break
		}
	}
	return q, dq, dir
}

// phase1CostAt is the phase-1 cost of the basic variable at row position p:
// the gradient of its bound violation.
func (s *simplex) phase1CostAt(p int) float64 {
	ftol := s.opt.FeasTol
	bj := s.basis[p]
	switch {
	case s.xB[p] < s.cf.lo[bj]-ftol:
		return -1
	case s.xB[p] > s.cf.hi[bj]+ftol:
		return 1
	default:
		return 0
	}
}

// phase1Costs fills cB with the gradient of the infeasibility sum.
func (s *simplex) phase1Costs() {
	for p := 0; p < s.cf.m; p++ {
		s.cB[p] = s.phase1CostAt(p)
	}
}

// phase1DualDelta repairs the maintained phase-1 reduced costs after a step:
// phase-1 costs depend on which basic variables violate their bounds, and a
// step only moves the basic variables in the FTRAN pattern, so the cost
// change ΔcB is confined to wIdx. The correction Δd = −(B⁻ᵀ ΔcB)ᵀ A is one
// sparse BTRAN plus CSR row walks — the same machinery as the pivot row. It
// must run after the pivot (against the updated basis) and before clearW.
func (s *simplex) phase1DualDelta() {
	s.deltaIdx = s.deltaIdx[:0]
	s.deltaVal = s.deltaVal[:0]
	for _, p := range s.wIdx {
		nc := s.phase1CostAt(p)
		if nc != s.cB[p] {
			s.deltaIdx = append(s.deltaIdx, p)
			s.deltaVal = append(s.deltaVal, nc-s.cB[p])
			s.cB[p] = nc
		}
	}
	if len(s.deltaIdx) == 0 {
		return
	}
	s.btranSparse(s.deltaIdx, s.deltaVal)
	s.be.DualDelta(s.at, s.rho, s.rhoIdx, s.d)
	s.clearRho()
}

// pivotDevex performs one maintained-dual pivot: it derives the pivot row
// from a sparse BTRAN of the leaving row's unit vector, updates the devex
// weights and the reduced costs of every column the pivot row touches,
// applies the basis change, and (in phase 1) repairs d for the infeasibility
// costs that the step toggled. dq is the maintained reduced cost of q that
// pricing selected.
func (s *simplex) pivotDevex(q int, dq, dir float64, res ratioResult, phase1 bool) error {
	if res.flip {
		// A bound flip leaves the basis — and therefore every reduced cost —
		// unchanged; only the phase-1 costs can move with xB.
		if err := s.pivot(q, dir, res); err != nil {
			return err
		}
		if phase1 && s.dValid {
			s.phase1DualDelta()
		}
		s.clearW()
		return nil
	}
	r := res.r
	if s.dValid {
		alphaQ := s.w[r]
		s.btranUnit(r)
		s.pivotRowAlpha()
		thetaD := dq / alphaQ
		gq := s.devexW[q]
		if gq > 1e7 {
			// The reference framework has drifted far from the current
			// basis; schedule a restart (classic devex restart criterion).
			s.devexStale = true
		}
		leaving := s.basis[r]
		for _, j := range s.alphaIdx {
			if s.vstat[j] == vBasic || j == q {
				continue
			}
			aj := s.alpha[j]
			s.d[j] -= thetaD * aj
			ratio := aj / alphaQ
			if g := ratio * ratio * gq; g > s.devexW[j] {
				s.devexW[j] = g
			}
		}
		s.d[q] = 0
		// The leaving variable's reduced cost becomes c_l − y'·a_l =
		// (c_l − y·a_l) − θ_d. In phase 2 the parenthesis is zero (a basic
		// variable prices out exactly); in phase 1 the variable's cost as a
		// nonbasic (zero) differs from its basic infeasibility gradient
		// cB[r], leaving a −cB[r] residue.
		dLeave := -thetaD
		if phase1 {
			dLeave -= s.cB[r]
		}
		s.d[leaving] = dLeave
		if g := gq / (alphaQ * alphaQ); g > 1 {
			s.devexW[leaving] = g
		} else {
			s.devexW[leaving] = 1
		}
		s.clearAlpha()
		s.clearRho()
		if phase1 {
			// The swap update above installed q's nonbasic phase-1 cost
			// (zero) as row r's basic cost; sync the maintained cB so
			// phase1DualDelta below measures its correction against that,
			// not against the departed variable's old cost.
			s.cB[r] = 0
		}
	}
	if err := s.pivot(q, dir, res); err != nil {
		return err
	}
	if phase1 && s.dValid {
		s.phase1DualDelta()
	}
	s.clearW()
	return nil
}

// ratioResult describes the outcome of a ratio test.
type ratioResult struct {
	t       float64 // step length
	r       int     // leaving row position, or -1 for a bound flip
	leaveAt vstatus // bound at which the leaving variable rests
	flip    bool    // entering variable moved to its opposite bound
	unbound bool    // no blocking constraint exists
}

// ratioTest determines how far the entering variable q can move in
// direction dir. All passes iterate the FTRAN pattern wIdx rather than every
// row: w is exactly zero off-pattern, and zero entries cannot block.
//
// Phase 2 (feasible, non-Bland) uses a Harris-style two-pass test: pass one
// computes the maximum step with all bounds relaxed by the feasibility
// tolerance; pass two picks, among the rows whose strict ratio fits within
// that step, the one with the largest pivot magnitude. Tolerating
// tolerance-sized bound violations in exchange for large pivots is what
// keeps the eta file numerically stable on degenerate network LPs.
//
// Phase 1 and Bland mode use the classic smallest-ratio test; in phase 1,
// basic variables that are currently infeasible block only when they reach
// the bound they violate (at which point they become feasible).
func (s *simplex) ratioTest(q int, dir float64, phase1 bool) ratioResult {
	if !phase1 && !s.bland {
		return s.ratioTestHarris(q, dir)
	}
	res := ratioResult{t: math.Inf(1), r: -1}
	ftol := s.opt.FeasTol
	// Bound flip of the entering variable itself.
	if !math.IsInf(s.cf.lo[q], -1) && !math.IsInf(s.cf.hi[q], 1) {
		res.t = s.cf.hi[q] - s.cf.lo[q]
		res.flip = true
	}
	bestPivot := 0.0
	for _, p := range s.wIdx {
		wp := s.w[p]
		if math.Abs(wp) < s.opt.PivotTol {
			continue
		}
		delta := -dir * wp // rate of change of xB[p] per unit step
		bj := s.basis[p]
		xj, loj, hij := s.xB[p], s.cf.lo[bj], s.cf.hi[bj]
		var tp float64
		var at vstatus
		switch {
		case phase1 && xj < loj-ftol:
			if delta <= 0 {
				continue // moving further below: no block in phase 1
			}
			tp, at = (loj-xj)/delta, vAtLower
		case phase1 && xj > hij+ftol:
			if delta >= 0 {
				continue
			}
			tp, at = (hij-xj)/delta, vAtUpper
		case delta < 0:
			if math.IsInf(loj, -1) {
				continue
			}
			tp, at = (xj-loj)/(-delta), vAtLower
		case delta > 0:
			if math.IsInf(hij, 1) {
				continue
			}
			tp, at = (hij-xj)/delta, vAtUpper
		default:
			continue
		}
		if tp < 1e-9 {
			// Clamp tiny ratios to an exact zero so degenerate ties are
			// recognized as ties; Bland's rule needs this to terminate.
			tp = 0
		}
		better := false
		switch {
		case tp < res.t-1e-12:
			better = true
		case tp <= res.t+1e-12 && res.r >= 0:
			if s.bland {
				better = bj < s.basis[res.r]
			} else {
				better = math.Abs(wp) > bestPivot
			}
		case tp <= res.t+1e-12 && res.flip:
			better = true // prefer a pivot over a flip at equal length
		}
		if better {
			res.t, res.r, res.leaveAt, res.flip = tp, p, at, false
			bestPivot = math.Abs(wp)
		}
	}
	if math.IsInf(res.t, 1) {
		res.unbound = true
	}
	return res
}

// ratioTestHarris is the two-pass phase-2 ratio test described at ratioTest.
func (s *simplex) ratioTestHarris(q int, dir float64) ratioResult {
	ftol := s.opt.FeasTol
	// Pass 1: maximum step with bounds relaxed by ftol.
	tmax := math.Inf(1)
	for _, p := range s.wIdx {
		wp := s.w[p]
		if math.Abs(wp) < s.opt.PivotTol {
			continue
		}
		delta := -dir * wp
		bj := s.basis[p]
		xj, loj, hij := s.xB[p], s.cf.lo[bj], s.cf.hi[bj]
		var tp float64
		switch {
		case delta < 0:
			if math.IsInf(loj, -1) {
				continue
			}
			tp = (xj - loj + ftol) / (-delta)
		default:
			if math.IsInf(hij, 1) {
				continue
			}
			tp = (hij + ftol - xj) / delta
		}
		if tp < tmax {
			tmax = tp
		}
	}
	// Bound flip of the entering variable: exact, preferred when shortest.
	if !math.IsInf(s.cf.lo[q], -1) && !math.IsInf(s.cf.hi[q], 1) {
		if flipT := s.cf.hi[q] - s.cf.lo[q]; flipT <= tmax {
			return ratioResult{t: flipT, r: -1, flip: true}
		}
	}
	if math.IsInf(tmax, 1) {
		return ratioResult{t: tmax, r: -1, unbound: true}
	}
	// Pass 2: largest pivot among rows whose strict ratio fits in tmax.
	res := ratioResult{t: 0, r: -1}
	bestPivot := 0.0
	for _, p := range s.wIdx {
		wp := s.w[p]
		if math.Abs(wp) < s.opt.PivotTol {
			continue
		}
		delta := -dir * wp
		bj := s.basis[p]
		xj, loj, hij := s.xB[p], s.cf.lo[bj], s.cf.hi[bj]
		var tp float64
		var at vstatus
		switch {
		case delta < 0:
			if math.IsInf(loj, -1) {
				continue
			}
			tp, at = (xj-loj)/(-delta), vAtLower
		default:
			if math.IsInf(hij, 1) {
				continue
			}
			tp, at = (hij-xj)/delta, vAtUpper
		}
		if tp < 0 {
			tp = 0
		}
		if tp <= tmax && math.Abs(wp) > bestPivot {
			bestPivot = math.Abs(wp)
			res.t, res.r, res.leaveAt = tp, p, at
		}
	}
	if res.r >= 0 {
		// EXPAND-style minimum step: force strictly positive progress by
		// letting the leaving variable overshoot its bound by at most
		// ftol/2 (all other rows stay within ftol by the pass-1 bound).
		// Degenerate zero-length pivots are what make network LPs stall.
		if minStep := 0.5 * ftol / bestPivot; res.t < minStep {
			if minStep > tmax {
				minStep = tmax
			}
			if res.t < minStep {
				res.t = minStep
			}
		}
	}
	if res.r < 0 {
		// Every candidate's strict ratio exceeded tmax (can only happen
		// through rounding); fall back to the smallest strict ratio.
		for _, p := range s.wIdx {
			wp := s.w[p]
			if math.Abs(wp) < s.opt.PivotTol {
				continue
			}
			delta := -dir * wp
			bj := s.basis[p]
			xj, loj, hij := s.xB[p], s.cf.lo[bj], s.cf.hi[bj]
			var tp float64
			var at vstatus
			switch {
			case delta < 0:
				if math.IsInf(loj, -1) {
					continue
				}
				tp, at = (xj-loj)/(-delta), vAtLower
			default:
				if math.IsInf(hij, 1) {
					continue
				}
				tp, at = (hij-xj)/delta, vAtUpper
			}
			if tp < 0 {
				tp = 0
			}
			if res.r < 0 || tp < res.t {
				res.t, res.r, res.leaveAt = tp, p, at
			}
		}
		if res.r < 0 {
			return ratioResult{t: math.Inf(1), r: -1, unbound: true}
		}
	}
	return res
}

// pivot applies the step chosen by the ratio test, recording the eta in the
// pooled store. Only the FTRAN pattern is touched.
func (s *simplex) pivot(q int, dir float64, res ratioResult) error {
	t := res.t
	enterVal := s.nbValue(q) // capture before any status change
	// Move all basic variables along the direction.
	if t != 0 {
		for _, p := range s.wIdx {
			if wp := s.w[p]; wp != 0 {
				s.xB[p] -= dir * wp * t
			}
		}
	}
	if res.flip {
		if s.vstat[q] == vAtLower {
			s.vstat[q] = vAtUpper
		} else {
			s.vstat[q] = vAtLower
		}
		return nil
	}
	r := res.r
	leaving := s.basis[r]
	s.vstat[leaving] = res.leaveAt
	s.vstat[q] = vBasic
	s.basis[r] = q
	s.xB[r] = enterVal + dir*t
	// Record the eta transformation for subsequent FTRAN/BTRAN.
	start := len(s.etaIdx)
	for _, i := range s.wIdx {
		if i != r && s.w[i] != 0 {
			s.etaIdx = append(s.etaIdx, i)
			s.etaVal = append(s.etaVal, s.w[i])
		}
	}
	s.etas = append(s.etas, eta{start: start, end: len(s.etaIdx), r: r, pivot: s.w[r]})
	if len(s.etas) >= s.opt.RefactorEvery {
		return s.refactorize()
	}
	return nil
}

// infeasibility reports the total bound violation of the basic variables.
func (s *simplex) infeasibility() float64 {
	sum := 0.0
	for p := 0; p < s.cf.m; p++ {
		bj := s.basis[p]
		if v := s.cf.lo[bj] - s.xB[p]; v > 0 {
			sum += v
		}
		if v := s.xB[p] - s.cf.hi[bj]; v > 0 {
			sum += v
		}
	}
	return sum
}

// noteStep updates anti-cycling state after a step of length t. Bland mode
// engages after a long degenerate stall and disengages only after a run of
// genuinely progressing steps, so a stall-progress-stall oscillation cannot
// defeat it.
func (s *simplex) noteStep(t float64) {
	if t <= 1e-10 {
		s.stallCount++
		s.goodSteps = 0
		if s.stallCount > 300 && !s.bland {
			s.bland = true
			s.devexStale = true // restart the reference framework afterwards
		}
		return
	}
	if s.bland {
		s.goodSteps++
		if s.goodSteps >= 20 {
			s.bland = false
			s.stallCount = 0
			s.goodSteps = 0
		}
		return
	}
	s.stallCount = 0
}

// clearPerturbation strips the deterministic cost perturbation mid-solve,
// restoring the honest costs. It reports whether anything changed; the
// latch guarantees it fires at most once per solve, so the phase-2 loop
// cannot spin on it.
func (s *simplex) clearPerturbation() bool {
	if s.perturbOff {
		return false
	}
	s.perturbOff = true
	changed := false
	for j := range s.cf.c {
		if s.cf.c[j] != s.cf.c0[j] {
			changed = true
			break
		}
	}
	copy(s.cf.c, s.cf.c0)
	if changed {
		s.dValid = false // maintained reduced costs priced the old costs
	}
	return changed
}

// Solve optimizes the model with the sparse revised simplex and returns the
// solution. The model is not modified. Status is always set on the returned
// Solution when err is nil.
//
// With Options.Presolve the model is reduced first and the solution mapped
// back; with Options.InitialBasis the simplex is seeded from the snapshot
// (falling back to a cold start when the snapshot does not fit).
func (m *Model) Solve(opts *Options) (*Solution, error) {
	if opts != nil && opts.Presolve {
		return m.solvePresolved(opts)
	}
	return m.solveDirect(opts)
}

// solveDirect runs the simplex on the model as-is.
func (m *Model) solveDirect(opts *Options) (*Solution, error) {
	cf, err := m.buildCompForm()
	if err != nil {
		return nil, err
	}
	opt := opts.withDefaults(cf.m, cf.n)
	cf.perturb(opt.Perturb)
	be, err := backend.New(opt.Backend, opt.BackendWorkers, cf.m, cf.n+cf.m)
	if err != nil {
		return nil, err
	}
	defer be.Close()
	s := newSimplex(cf, opt, be)
	if opt.InitialBasis != nil && s.tryWarmStart(opt.InitialBasis) {
		s.warmStarted = true
	} else if err := s.coldStart(); err != nil {
		return nil, err
	}

	status, err := s.run()
	if err != nil {
		return nil, err
	}
	return s.solution(m, status), nil
}

// coldStart installs the all-logical basis; structurals rest at a finite
// bound.
func (s *simplex) coldStart() error {
	cf := s.cf
	for j := 0; j < cf.n; j++ {
		switch {
		case !math.IsInf(cf.lo[j], -1):
			s.vstat[j] = vAtLower
		case !math.IsInf(cf.hi[j], 1):
			s.vstat[j] = vAtUpper
		default:
			s.vstat[j] = vFree
		}
	}
	for i := 0; i < cf.m; i++ {
		s.basis[i] = cf.n + i
		s.vstat[cf.n+i] = vBasic
	}
	return s.refactorize()
}

// run executes both simplex phases and returns the final status. Phase 2
// re-enters phase 1 when accumulated rounding pushes basic variables
// materially outside their bounds (bounded number of times, as a safety
// net against numerical wandering).
func (s *simplex) run() (Status, error) {
	const maxPhaseRestarts = 25
	restarts := 0
	for {
		st, done, err := s.runPhase1()
		if err != nil || done {
			return st, err
		}
		st, done, err = s.runPhase2()
		if err != nil || done {
			return st, err
		}
		// Phase 2 detected drift; go around again.
		restarts++
		if restarts > maxPhaseRestarts {
			return IterLimit, nil
		}
	}
}

// runPhase1 drives out primal infeasibility. done is false only when the
// caller should proceed to phase 2. Infeasibility is only ever declared
// from the dual criterion (no improving direction); numerical drift
// discovered after a refactorization sends the loop back to pivoting. The
// devex path additionally re-verifies a no-direction verdict on honestly
// recomputed reduced costs before concluding, since the maintained vector
// it priced may have drifted.
func (s *simplex) runPhase1() (Status, bool, error) {
	exitTol := s.opt.FeasTol * float64(1+s.cf.m)
	confirmed := false
	for {
		if s.iters >= s.opt.MaxIterations {
			return IterLimit, true, nil
		}
		if s.infeasibility() <= exitTol {
			// Clean up drift and confirm on honestly recomputed values.
			if err := s.refactorize(); err != nil {
				return 0, true, err
			}
			if s.infeasibility() <= 2*exitTol {
				break
			}
			continue // drift was hiding real infeasibility: keep pivoting
		}
		if s.useDevex && !s.bland {
			s.ensureDuals(true)
			s.debugCheckDuals(true)
			q, dq, dir := s.priceMaintainedWindow()
			if q < 0 {
				// No improving direction: the dual certificate of phase-1
				// optimality. Recompute honestly before concluding.
				if err := s.refactorize(); err != nil {
					return 0, true, err
				}
				if s.infeasibility() <= 2*exitTol {
					break
				}
				if !confirmed {
					confirmed = true // refactorize invalidated d: re-price
					continue
				}
				return Infeasible, true, nil
			}
			confirmed = false
			s.ftran(q)
			res := s.ratioTest(q, dir, true)
			if res.unbound {
				// A descent direction for a nonnegative objective cannot be
				// unbounded; treat as numerical breakdown and refactorize once.
				if err := s.refactorize(); err != nil {
					return 0, true, err
				}
				if res2 := s.ratioTest(q, dir, true); !res2.unbound {
					res = res2
				} else {
					return 0, true, fmt.Errorf("lp: phase-1 ratio test found no blocking bound")
				}
			}
			if err := s.pivotDevex(q, dq, dir, res, true); err != nil {
				return 0, true, err
			}
			s.noteStep(res.t)
			s.iters++
			s.phase1Iters++
			continue
		}
		// Legacy path: Bland anti-cycling and Dantzig pricing recompute the
		// multipliers densely every iteration.
		s.phase1Costs()
		s.btran()
		q, _, dir := s.price(true)
		if q < 0 {
			if err := s.refactorize(); err != nil {
				return 0, true, err
			}
			if s.infeasibility() > 2*exitTol {
				return Infeasible, true, nil
			}
			break
		}
		s.ftran(q)
		res := s.ratioTest(q, dir, true)
		if res.unbound {
			if err := s.refactorize(); err != nil {
				return 0, true, err
			}
			if res2 := s.ratioTest(q, dir, true); !res2.unbound {
				res = res2
			} else {
				return 0, true, fmt.Errorf("lp: phase-1 ratio test found no blocking bound")
			}
		}
		if err := s.pivot(q, dir, res); err != nil {
			return 0, true, err
		}
		s.dValid = false // pivoted without maintaining d
		s.clearW()
		s.noteStep(res.t)
		s.iters++
		s.phase1Iters++
	}
	s.bland, s.stallCount, s.goodSteps = false, 0, 0
	return 0, false, nil
}

// runPhase2 optimizes the true costs. done is false only when feasibility
// drifted beyond tolerance and phase 1 must be re-entered. On the devex
// path a claimed optimum (or unbounded ray) is confirmed once against
// honestly recomputed reduced costs before it is returned, bounding the
// damage maintained-dual drift can do.
func (s *simplex) runPhase2() (Status, bool, error) {
	driftLimit := math.Sqrt(s.opt.FeasTol) * float64(1+s.cf.m)
	confirmed := false
	unboundConfirmed := false
	for {
		if s.iters >= s.opt.MaxIterations {
			return IterLimit, true, nil
		}
		if s.iters%16 == 0 && s.infeasibility() > driftLimit {
			if err := s.refactorize(); err != nil {
				return 0, true, err
			}
			if s.infeasibility() > driftLimit {
				return 0, false, nil // genuinely drifted: redo phase 1
			}
		}
		if s.useDevex && !s.bland {
			s.ensureDuals(false)
			s.debugCheckDuals(false)
			q, dq, dir := s.priceDevex()
			if q < 0 {
				if !confirmed {
					confirmed = true
					if err := s.refactorize(); err != nil {
						return 0, true, err
					}
					continue // d invalidated: recompute and re-price
				}
				return Optimal, true, nil
			}
			confirmed = false
			s.ftran(q)
			// Launch speculative base FTRANs for this scan's runner-up
			// candidates; they overlap the ratio test and pivot below and are
			// collected by the next iteration's ftran if one of the runners
			// wins the next scan against the same factorization.
			s.be.Speculate(s.lu, s.cf.a, s.sparseLimit(), q)
			res := s.ratioTest(q, dir, false)
			if res.unbound {
				s.clearW()
				// An unbounded certificate under perturbed costs may be an
				// artifact: a truly zero-cost ray picks up a tiny perturbed
				// cost and looks improving. Strip the perturbation and
				// re-price with the honest costs before concluding; with
				// maintained duals, additionally confirm on recomputed d.
				if s.clearPerturbation() {
					continue
				}
				if !unboundConfirmed {
					unboundConfirmed = true
					if err := s.refactorize(); err != nil {
						return 0, true, err
					}
					continue
				}
				return Unbounded, true, nil
			}
			unboundConfirmed = false
			if err := s.pivotDevex(q, dq, dir, res, false); err != nil {
				return 0, true, err
			}
			s.noteStep(res.t)
			s.iters++
			continue
		}
		// Legacy path (Bland or Dantzig pricing).
		for p := 0; p < s.cf.m; p++ {
			s.cB[p] = s.cf.c[s.basis[p]]
		}
		s.btran()
		q, _, dir := s.price(false)
		if q < 0 {
			return Optimal, true, nil
		}
		s.ftran(q)
		res := s.ratioTest(q, dir, false)
		if res.unbound {
			s.clearW()
			if s.clearPerturbation() {
				continue
			}
			return Unbounded, true, nil
		}
		if err := s.pivot(q, dir, res); err != nil {
			return 0, true, err
		}
		s.dValid = false // pivoted without maintaining d
		s.clearW()
		s.noteStep(res.t)
		s.iters++
	}
}

// solution extracts a Solution in the original model's terms.
func (s *simplex) solution(m *Model, status Status) *Solution {
	sol := &Solution{
		Status:         status,
		X:              make([]float64, s.cf.n),
		Dual:           make([]float64, s.cf.m),
		ReducedObj:     make([]float64, s.cf.n),
		Iterations:     s.iters,
		Phase1Iter:     s.phase1Iters,
		Factorized:     s.factorCount,
		Basis:          s.captureBasis(),
		WarmStarted:    s.warmStarted,
		SparseSolves:   s.sparseSolves,
		DenseSolves:    s.denseSolves,
		SolveNNZ:       s.solveNNZ,
		SolveDim:       s.solveDim,
		DevexResets:    s.devexResets,
		DualRecomputes: s.dRecomputes,
		BackendWorkers: s.be.Workers(),
	}
	bc := s.be.Counters()
	sol.DevexScans = bc.DevexScans
	sol.ParallelScans = bc.ParallelScans
	sol.SpecFtrans = bc.SpecFtrans
	sol.SpecFtranHits = bc.SpecFtranHits
	if status != Optimal && status != IterLimit {
		return sol
	}
	for j := 0; j < s.cf.n; j++ {
		if s.vstat[j] != vBasic {
			sol.X[j] = s.nbValue(j)
		}
	}
	for p, bj := range s.basis {
		if bj < s.cf.n {
			sol.X[bj] = s.xB[p]
		}
	}
	// Snap values that the EXPAND anti-degeneracy step nudged marginally
	// past a bound back onto it.
	snapTol := 8 * s.opt.FeasTol
	for j := 0; j < s.cf.n; j++ {
		if lo := s.cf.lo[j]; !math.IsInf(lo, -1) && math.Abs(sol.X[j]-lo) <= snapTol*(1+math.Abs(lo)) {
			sol.X[j] = lo
			continue
		}
		if hi := s.cf.hi[j]; !math.IsInf(hi, 1) && math.Abs(sol.X[j]-hi) <= snapTol*(1+math.Abs(hi)) {
			sol.X[j] = hi
		}
	}
	// Duals and reduced costs from the final basis with the original
	// (unperturbed) costs.
	for p := 0; p < s.cf.m; p++ {
		s.cB[p] = s.cf.c0[s.basis[p]]
	}
	s.btran()
	copy(sol.Dual, s.y)
	for j := 0; j < s.cf.n; j++ {
		if s.vstat[j] == vBasic {
			continue
		}
		sol.ReducedObj[j] = s.reducedCost(j, s.cf.c0[j])
	}
	obj := 0.0
	for j := 0; j < s.cf.n; j++ {
		obj += s.cf.c0[j] * sol.X[j]
	}
	if m.maximize {
		obj = -obj
		for i := range sol.Dual {
			sol.Dual[i] = -sol.Dual[i]
		}
		for j := range sol.ReducedObj {
			sol.ReducedObj[j] = -sol.ReducedObj[j]
		}
	}
	sol.Objective = obj
	return sol
}
