package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestPresolveReducesAndMatches builds a model with one fixed column, one
// singleton row, one vacuous row and one unconstrained column, and checks
// the presolved solve removes them and still reports the direct optimum in
// original variables.
func TestPresolveReducesAndMatches(t *testing.T) {
	m := NewModel()
	f := m.AddVariable(3, 3, 2, "fixed")    // fixed column: substituted out
	x := m.AddVariable(0, 10, 1, "x")       // singleton row folds x <= 4
	y := m.AddVariable(0, 10, 1.5, "y")     // stays
	u := m.AddVariable(0, 7, 5, "unconstr") // no rows: rests at lower bound
	mustCon(t, m, LE, 4, []VarID{x}, []float64{1})
	mustCon(t, m, GE, 9, []VarID{x, y, f}, []float64{1, 1, 1}) // with f=3: x+y >= 6
	mustCon(t, m, LE, 2, []VarID{f}, []float64{0})             // vacuous 0 <= 2
	direct, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := m.Solve(&Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Status != Optimal {
		t.Fatalf("presolved status %v", pre.Status)
	}
	if math.Abs(pre.Objective-direct.Objective) > 1e-7 {
		t.Fatalf("presolved obj %v, direct %v", pre.Objective, direct.Objective)
	}
	if pre.PresolveCols < 2 { // fixed + unconstrained
		t.Errorf("PresolveCols = %d, want >= 2", pre.PresolveCols)
	}
	if pre.PresolveRows < 2 { // singleton + vacuous
		t.Errorf("PresolveRows = %d, want >= 2", pre.PresolveRows)
	}
	if pre.Value(f) != 3 {
		t.Errorf("fixed variable came back as %v, want 3", pre.Value(f))
	}
	if pre.Value(u) != 0 {
		t.Errorf("unconstrained variable came back as %v, want 0", pre.Value(u))
	}
	if err := m.Validate(pre.X, 1e-6); err != nil {
		t.Fatalf("presolved solution infeasible in original model: %v", err)
	}
	if len(pre.X) != 4 || len(pre.Dual) != 3 || len(pre.ReducedObj) != 4 {
		t.Fatalf("postsolve shapes: X=%d Dual=%d ReducedObj=%d", len(pre.X), len(pre.Dual), len(pre.ReducedObj))
	}
	// Duality identity over the ORIGINAL rows and variables.
	rhs := 0.0
	for i, r := range m.rows {
		rhs += pre.Dual[i] * r.rhs
	}
	for j := range pre.X {
		rhs += pre.ReducedObj[j] * pre.X[j]
	}
	if math.Abs(pre.Objective-rhs) > 1e-6*(1+math.Abs(pre.Objective)) {
		t.Errorf("duality identity broken after postsolve: obj=%v, y·b+d·x=%v", pre.Objective, rhs)
	}
}

// TestPresolveDetectsInfeasibleSingleton pins that contradictory singleton
// rows are caught without running the simplex.
func TestPresolveDetectsInfeasibleSingleton(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 10, 1, "x")
	mustCon(t, m, GE, 5, []VarID{x}, []float64{1})
	mustCon(t, m, LE, 2, []VarID{x}, []float64{1})
	direct, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := m.Solve(&Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Status != Infeasible || pre.Status != Infeasible {
		t.Fatalf("direct=%v presolved=%v, want both infeasible", direct.Status, pre.Status)
	}
	if pre.Iterations != 0 {
		t.Errorf("presolve-detected infeasibility ran %d simplex iterations", pre.Iterations)
	}
}

// TestPresolveDetectsVacuousInfeasible pins detection of a row whose
// variables all vanish but whose rhs cannot be satisfied.
func TestPresolveDetectsVacuousInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 10, 1, "x")
	mustCon(t, m, LE, -3, []VarID{x}, []float64{0}) // 0 <= -3
	direct, err := m.Solve(nil)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := m.Solve(&Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Status != Infeasible || pre.Status != Infeasible {
		t.Fatalf("direct=%v presolved=%v, want both infeasible", direct.Status, pre.Status)
	}
}

// TestPresolveUnboundedColumnLeftToSimplex: a column with an improving
// unbounded direction and no constraints must not be "fixed" by presolve —
// the solve must still report unbounded.
func TestPresolveUnboundedColumnLeftToSimplex(t *testing.T) {
	m := NewModel()
	m.AddVariable(0, pinf(), -1, "runaway")
	pre, err := m.Solve(&Options{Presolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if pre.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", pre.Status)
	}
}

// TestPresolveRandomEquivalence cross-checks presolved and direct solves on
// random models: identical status, matching objective, feasible primal
// point, intact duality identity, and a postsolved basis that warm-starts
// the next presolved solve.
func TestPresolveRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	optimal, reduced := 0, 0
	for trial := 0; trial < 400; trial++ {
		m := presolveRandomModel(rng)
		direct, err := m.Solve(nil)
		if err != nil {
			t.Fatalf("trial %d: direct: %v", trial, err)
		}
		pre, err := m.Solve(&Options{Presolve: true})
		if err != nil {
			t.Fatalf("trial %d: presolved: %v", trial, err)
		}
		if direct.Status == IterLimit || pre.Status == IterLimit {
			continue
		}
		if direct.Status != pre.Status {
			t.Fatalf("trial %d: status direct=%v presolved=%v", trial, direct.Status, pre.Status)
		}
		if pre.PresolveCols > 0 || pre.PresolveRows > 0 {
			reduced++
		}
		if direct.Status != Optimal {
			continue
		}
		optimal++
		scale := 1 + math.Abs(direct.Objective)
		if math.Abs(pre.Objective-direct.Objective) > 1e-6*scale {
			t.Fatalf("trial %d: obj presolved=%v direct=%v", trial, pre.Objective, direct.Objective)
		}
		if err := m.Validate(pre.X, 1e-6); err != nil {
			t.Fatalf("trial %d: presolved point infeasible: %v", trial, err)
		}
		rhs := 0.0
		for i, r := range m.rows {
			rhs += pre.Dual[i] * r.rhs
		}
		for j := range pre.X {
			rhs += pre.ReducedObj[j] * pre.X[j]
		}
		if math.Abs(pre.Objective-rhs) > 1e-4*scale {
			t.Fatalf("trial %d: duality identity broken: obj=%v, y·b+d·x=%v", trial, pre.Objective, rhs)
		}
		if pre.Basis == nil {
			t.Fatalf("trial %d: presolved solve has no basis", trial)
		}
		if nv, nr := len(m.obj), len(m.rows); pre.Basis.NumVars != nv || pre.Basis.NumRows != nr {
			t.Fatalf("trial %d: postsolved basis is %dx%d, model is %dx%d",
				trial, pre.Basis.NumVars, pre.Basis.NumRows, nv, nr)
		}
		// Round trip: the postsolved basis must warm-start the same
		// presolved model back to the same optimum.
		again, err := m.Solve(&Options{Presolve: true, InitialBasis: pre.Basis})
		if err != nil {
			t.Fatalf("trial %d: warm presolved: %v", trial, err)
		}
		if again.Status != Optimal || math.Abs(again.Objective-direct.Objective) > 1e-6*scale {
			t.Fatalf("trial %d: warm presolved status %v obj %v, want %v",
				trial, again.Status, again.Objective, direct.Objective)
		}
	}
	if optimal < 60 {
		t.Fatalf("only %d optimal instances", optimal)
	}
	if reduced < 30 {
		t.Fatalf("presolve only fired on %d instances; generator too tame", reduced)
	}
}

// presolveRandomModel biases randomModel's distribution toward structures
// presolve can act on: fixed columns, singleton rows, vacuous rows.
func presolveRandomModel(rng *rand.Rand) *Model {
	m := randomModel(rng)
	n := len(m.obj)
	if n > 0 && rng.Intn(2) == 0 { // add a fixed column used by a row
		v := float64(rng.Intn(5))
		f := m.AddVariable(v, v, float64(rng.Intn(7)-3), "")
		j := VarID(rng.Intn(n))
		if _, err := m.AddConstraint(LE, float64(5+rng.Intn(10)), []VarID{f, j}, []float64{1, 1}); err != nil {
			panic(err)
		}
	}
	if n > 0 && rng.Intn(2) == 0 { // singleton row
		sense := []Sense{LE, GE}[rng.Intn(2)]
		coef := float64(rng.Intn(5) - 2)
		if coef == 0 {
			coef = 1
		}
		if _, err := m.AddConstraint(sense, float64(rng.Intn(13)-4), []VarID{VarID(rng.Intn(n))}, []float64{coef}); err != nil {
			panic(err)
		}
	}
	if rng.Intn(3) == 0 && n > 0 { // vacuous row (zero coefficient)
		if _, err := m.AddConstraint(LE, float64(rng.Intn(6)), []VarID{VarID(rng.Intn(n))}, []float64{0}); err != nil {
			panic(err)
		}
	}
	return m
}
