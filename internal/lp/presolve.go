package lp

import "math"

// The presolve pass shrinks a model before the simplex runs and carries a
// postsolve map so the returned Solution — primal values, duals, reduced
// costs and the warm-start Basis — is expressed in the original model's
// variables and constraints. Three families of reductions run to a
// fixpoint:
//
//   - fixed columns (lo == hi) are substituted into rows and the objective,
//   - singleton rows (one active variable) are folded into that variable's
//     bounds and dropped,
//   - vacuous rows (no active variables) are checked for consistency and
//     dropped, and columns with no active rows are fixed at their
//     cost-minimizing finite bound.
//
// The reductions are deliberately conservative: anything presolve cannot
// prove is left for the simplex, and a column whose cost-improving
// direction is unbounded is kept so the solver itself certifies
// unboundedness against a feasible point.

// singletonFold records one singleton row folded into a variable bound,
// kept for postsolve dual attribution.
type singletonFold struct {
	row     int     // original row index
	col     int     // original column index
	coef    float64 // the row's coefficient on col
	bound   float64 // folded bound value rhs'/coef
	isUpper bool    // folded an upper bound (else a lower bound)
	both    bool    // EQ row: folded both bounds
}

// presolved is the reduction record mapping a reduced solve back to the
// original model.
type presolved struct {
	orig *Model
	red  *Model

	colMap     []int // original col -> reduced col, -1 when removed
	rowMap     []int // original row -> reduced row, -1 when removed
	keptCols   []int // reduced col -> original col
	keptRows   []int // reduced row -> original row
	removedCol []bool
	fixedVal   []float64     // value of each removed column
	fixedStat  []BasisStatus // resting status of each removed column
	folds      []singletonFold

	infeasible bool // presolve proved the model infeasible
}

// presolve computes the reduction. It returns nil when the model resists
// reduction bookkeeping (a should-not-happen safety hatch; the caller then
// solves the original model directly).
func (m *Model) presolve() *presolved {
	n, mr := len(m.obj), len(m.rows)
	ps := &presolved{
		orig:       m,
		colMap:     make([]int, n),
		rowMap:     make([]int, mr),
		removedCol: make([]bool, n),
		fixedVal:   make([]float64, n),
		fixedStat:  make([]BasisStatus, n),
	}
	lo := append([]float64(nil), m.lo...)
	hi := append([]float64(nil), m.hi...)
	for j := range lo {
		if lo[j] > hi[j] {
			return nil // let buildCompForm produce its usual error
		}
	}
	rhs := make([]float64, mr)
	removedRow := make([]bool, mr)
	type ent struct {
		other int // col for row entries, row for col entries
		coef  float64
	}
	rowEnts := make([][]ent, mr)
	colEnts := make([][]ent, n)
	rowActive := make([]int, mr)
	colActive := make([]int, n)
	for i, r := range m.rows {
		rhs[i] = r.rhs
		for p, j := range r.idx {
			if r.val[p] == 0 {
				continue
			}
			rowEnts[i] = append(rowEnts[i], ent{j, r.val[p]})
			colEnts[j] = append(colEnts[j], ent{i, r.val[p]})
		}
		rowActive[i] = len(rowEnts[i])
	}
	for j := range colEnts {
		colActive[j] = len(colEnts[j])
	}

	fixCol := func(j int, v float64, stat BasisStatus) {
		ps.removedCol[j] = true
		ps.fixedVal[j] = v
		ps.fixedStat[j] = stat
		for _, ce := range colEnts[j] {
			if removedRow[ce.other] {
				continue
			}
			rhs[ce.other] -= ce.coef * v
			rowActive[ce.other]--
		}
	}
	dropRow := func(i int) {
		removedRow[i] = true
		for _, re := range rowEnts[i] {
			if !ps.removedCol[re.other] {
				colActive[re.other]--
			}
		}
	}

	changed := true
	for pass := 0; changed && pass < 20 && !ps.infeasible; pass++ {
		changed = false
		// Fixed columns: substitute out.
		for j := 0; j < n; j++ {
			if ps.removedCol[j] || lo[j] != hi[j] {
				continue
			}
			fixCol(j, lo[j], BasisAtLower)
			changed = true
		}
		// Rows: vacuous rows checked and dropped, singleton rows folded.
		for i := 0; i < mr && !ps.infeasible; i++ {
			if removedRow[i] {
				continue
			}
			if rowActive[i] == 0 {
				tol := 1e-7 * (1 + math.Abs(m.rows[i].rhs))
				switch m.rows[i].sense {
				case LE:
					ps.infeasible = rhs[i] < -tol
				case GE:
					ps.infeasible = rhs[i] > tol
				case EQ:
					ps.infeasible = math.Abs(rhs[i]) > tol
				}
				if !ps.infeasible {
					dropRow(i)
					changed = true
				}
				continue
			}
			if rowActive[i] != 1 {
				continue
			}
			var j int
			var a float64
			for _, re := range rowEnts[i] {
				if !ps.removedCol[re.other] {
					j, a = re.other, re.coef
					break
				}
			}
			v := rhs[i] / a
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue // pathological scaling: leave the row alone
			}
			sense := m.rows[i].sense
			foldsUpper := sense == EQ || (sense == LE) == (a > 0)
			foldsLower := sense == EQ || !foldsUpper
			if foldsUpper && v < hi[j] {
				hi[j] = v
			}
			if foldsLower && v > lo[j] {
				lo[j] = v
			}
			if lo[j] > hi[j] {
				if lo[j]-hi[j] > 1e-7*(1+math.Abs(lo[j])+math.Abs(hi[j])) {
					ps.infeasible = true
					continue
				}
				mid := 0.5 * (lo[j] + hi[j]) // crossing within tolerance
				lo[j], hi[j] = mid, mid
			}
			ps.folds = append(ps.folds, singletonFold{
				row: i, col: j, coef: a, bound: v,
				isUpper: foldsUpper && sense != EQ, both: sense == EQ,
			})
			dropRow(i)
			changed = true
		}
		// Columns with no active rows: fix at the cost-minimizing finite
		// bound; keep columns whose improving direction is unbounded.
		for j := 0; j < n && !ps.infeasible; j++ {
			if ps.removedCol[j] || colActive[j] > 0 {
				continue
			}
			ceff := m.obj[j]
			if m.maximize {
				ceff = -ceff
			}
			switch {
			case ceff > 0 && !math.IsInf(lo[j], -1):
				fixCol(j, lo[j], BasisAtLower)
			case ceff < 0 && !math.IsInf(hi[j], 1):
				fixCol(j, hi[j], BasisAtUpper)
			case ceff == 0 && !math.IsInf(lo[j], -1):
				fixCol(j, lo[j], BasisAtLower)
			case ceff == 0 && !math.IsInf(hi[j], 1):
				fixCol(j, hi[j], BasisAtUpper)
			case ceff == 0:
				fixCol(j, 0, BasisFree)
			default:
				continue // unbounded improving direction: simplex certifies
			}
			changed = true
		}
	}
	if ps.infeasible {
		return ps
	}

	// Assemble the reduced model over the surviving columns and rows.
	red := NewModel()
	if m.maximize {
		red.SetMaximize()
	}
	for j := 0; j < n; j++ {
		if ps.removedCol[j] {
			ps.colMap[j] = -1
			continue
		}
		ps.colMap[j] = len(ps.keptCols)
		ps.keptCols = append(ps.keptCols, j)
		red.AddVariable(lo[j], hi[j], m.obj[j], m.names[j])
	}
	for i := 0; i < mr; i++ {
		if removedRow[i] {
			ps.rowMap[i] = -1
			continue
		}
		ps.rowMap[i] = len(ps.keptRows)
		ps.keptRows = append(ps.keptRows, i)
		var idx []VarID
		var val []float64
		for _, re := range rowEnts[i] {
			if ps.removedCol[re.other] {
				continue
			}
			idx = append(idx, VarID(ps.colMap[re.other]))
			val = append(val, re.coef)
		}
		if _, err := red.AddConstraint(m.rows[i].sense, rhs[i], idx, val); err != nil {
			return nil // substitution overflowed the rhs: fall back
		}
	}
	ps.red = red
	return ps
}

// mapBasisIn projects a full-space basis snapshot onto the reduced model:
// statuses of removed columns and dropped rows are discarded, and the
// projection is re-normalized so it carries exactly the right number of
// basics (dropping a basic column or row would otherwise make the inner
// solve reject the snapshot wholesale).
func (ps *presolved) mapBasisIn(b *Basis) *Basis {
	if b == nil {
		return nil
	}
	n, mr := len(ps.orig.obj), len(ps.orig.rows)
	if b.NumVars != n || b.NumRows != mr || len(b.Status) != n+mr {
		return nil
	}
	nr, mrr := len(ps.keptCols), len(ps.keptRows)
	out := &Basis{NumVars: nr, NumRows: mrr, Status: make([]BasisStatus, nr+mrr)}
	for jr, j := range ps.keptCols {
		out.Status[jr] = b.Status[j]
	}
	for ir, i := range ps.keptRows {
		out.Status[nr+ir] = b.Status[n+i]
	}
	return out.Normalize()
}

// mapBasisOut lifts a reduced-space basis snapshot back to the original
// computational form: removed columns rest at their fixed bound, dropped
// rows' logicals are basic (the basis matrix stays nonsingular because those
// unit columns extend any nonsingular reduced basis block-triangularly).
func (ps *presolved) mapBasisOut(b *Basis) *Basis {
	n, mr := len(ps.orig.obj), len(ps.orig.rows)
	out := &Basis{NumVars: n, NumRows: mr, Status: make([]BasisStatus, n+mr)}
	for j := 0; j < n; j++ {
		if ps.removedCol[j] {
			out.Status[j] = ps.fixedStat[j]
		}
	}
	nr := len(ps.keptCols)
	for jr, j := range ps.keptCols {
		out.Status[j] = b.Status[jr]
	}
	for i := 0; i < mr; i++ {
		out.Status[n+i] = BasisBasic
	}
	for ir, i := range ps.keptRows {
		out.Status[n+i] = b.Status[nr+ir]
	}
	return out
}

// postsolve expresses the reduced solution in the original model's terms.
// The duality identity Objective = Dual·b + ReducedObj·X is preserved:
// dropped vacuous rows carry zero duals; a dropped singleton row whose
// folded bound is binding receives the dual d_j/a_ij absorbed from the
// variable's reduced cost; removed columns get reduced costs recomputed
// against the final dual vector.
func (ps *presolved) postsolve(r *Solution) *Solution {
	m := ps.orig
	n, mr := len(m.obj), len(m.rows)
	sol := &Solution{
		Status:       r.Status,
		X:            make([]float64, n),
		Dual:         make([]float64, mr),
		ReducedObj:   make([]float64, n),
		Iterations:   r.Iterations,
		Phase1Iter:   r.Phase1Iter,
		Factorized:   r.Factorized,
		WarmStarted:  r.WarmStarted,
		PresolveCols: n - len(ps.keptCols),
		PresolveRows: mr - len(ps.keptRows),

		SparseSolves:   r.SparseSolves,
		DenseSolves:    r.DenseSolves,
		SolveNNZ:       r.SolveNNZ,
		SolveDim:       r.SolveDim,
		DevexResets:    r.DevexResets,
		DualRecomputes: r.DualRecomputes,
	}
	if r.Basis != nil {
		sol.Basis = ps.mapBasisOut(r.Basis)
	}
	if r.Status != Optimal && r.Status != IterLimit {
		return sol
	}
	for j := 0; j < n; j++ {
		if ps.removedCol[j] {
			sol.X[j] = ps.fixedVal[j]
		}
	}
	for jr, j := range ps.keptCols {
		sol.X[j] = r.X[jr]
		sol.ReducedObj[j] = r.ReducedObj[jr]
	}
	for ir, i := range ps.keptRows {
		sol.Dual[i] = r.Dual[ir]
	}
	// Dual attribution for folded singleton rows, in fold order: the first
	// fold whose bound is the one actually binding absorbs the variable's
	// reduced cost.
	for _, f := range ps.folds {
		jr := ps.colMap[f.col]
		if jr < 0 {
			continue
		}
		d := sol.ReducedObj[f.col]
		if d == 0 {
			continue
		}
		if math.Abs(sol.X[f.col]-f.bound) > 1e-7*(1+math.Abs(f.bound)) {
			continue
		}
		switch {
		case f.both:
			if ps.red.lo[jr] != f.bound || ps.red.hi[jr] != f.bound {
				continue
			}
		case f.isUpper:
			if ps.red.hi[jr] != f.bound {
				continue
			}
		default:
			if ps.red.lo[jr] != f.bound {
				continue
			}
		}
		sol.Dual[f.row] = d / f.coef
		sol.ReducedObj[f.col] = 0
	}
	// Reduced costs of removed columns against the final duals.
	for j := 0; j < n; j++ {
		if ps.removedCol[j] {
			sol.ReducedObj[j] = m.obj[j]
		}
	}
	for i, row := range m.rows {
		yi := sol.Dual[i]
		if yi == 0 {
			continue
		}
		for p, j := range row.idx {
			if ps.removedCol[j] {
				sol.ReducedObj[j] -= row.val[p] * yi
			}
		}
	}
	sol.Objective = m.ObjectiveValue(sol.X)
	return sol
}

// solvePresolved runs presolve, solves the reduced model, and maps the
// solution back. When presolve proves infeasibility no simplex runs at all;
// when presolve cannot complete its bookkeeping the original model is
// solved directly.
func (m *Model) solvePresolved(opts *Options) (*Solution, error) {
	ps := m.presolve()
	if ps == nil {
		return m.solveDirect(opts)
	}
	n, mr := len(m.obj), len(m.rows)
	if ps.infeasible {
		return &Solution{
			Status:       Infeasible,
			X:            make([]float64, n),
			Dual:         make([]float64, mr),
			ReducedObj:   make([]float64, n),
			PresolveCols: n,
			PresolveRows: mr,
		}, nil
	}
	ropts := *opts
	ropts.Presolve = false
	ropts.InitialBasis = ps.mapBasisIn(opts.InitialBasis)
	rsol, err := ps.red.solveDirect(&ropts)
	if err != nil {
		return m.solveDirect(opts)
	}
	return ps.postsolve(rsol), nil
}
