// Package lp provides linear-programming modeling and solving with no
// dependencies outside the standard library. It exists because Postcard's
// per-slot optimization (and both of the paper's baselines) are linear
// programs, and the Go ecosystem offers no stdlib LP support.
//
// The package contains two independent solvers:
//
//   - Solve: a sparse bounded-variable revised simplex (two-phase, LU basis
//     factorization with eta updates) that scales to the time-expanded
//     graphs of the paper's evaluation, and
//   - SolveDense: a compact dense tableau simplex kept as an independent
//     reference implementation for cross-checking.
//
// Models are built incrementally with AddVariable and AddConstraint and are
// immutable during Solve. Variables carry lower/upper bounds (use
// math.Inf(±1) for unbounded) and objective coefficients.
package lp

import (
	"fmt"
	"math"
)

// Sense is the relational sense of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota + 1 // a·x ≤ rhs
	GE                  // a·x ≥ rhs
	EQ                  // a·x = rhs
)

// String renders the sense as its mathematical symbol.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Status is the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal    Status = iota + 1 // an optimal solution was found
	Infeasible                   // no point satisfies all constraints
	Unbounded                    // the objective is unbounded over the feasible set
	IterLimit                    // the iteration budget was exhausted
)

// String renders the status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// VarID identifies a variable within a Model.
type VarID int

// ConID identifies a constraint within a Model.
type ConID int

type row struct {
	idx   []int
	val   []float64
	sense Sense
	rhs   float64
}

// Model is a linear program under construction. The zero value is an empty
// minimization model ready for use.
type Model struct {
	maximize bool
	obj      []float64
	lo       []float64
	hi       []float64
	names    []string
	rows     []row

	// Duplicate-merge scratch for AddConstraint: stamp[j] == epoch marks
	// variable j as already present in the row under construction, pos[j]
	// holds its position there. Retained across calls (and across Reset) so
	// steady-state constraint assembly allocates nothing.
	stamp []int
	pos   []int
	epoch int
}

// NewModel returns an empty minimization model.
func NewModel() *Model { return &Model{} }

// Reset empties the model in place, retaining every backing allocation
// (variable arrays, constraint rows and their coefficient slices, the
// duplicate-merge scratch) so the next build of a similarly sized model
// allocates little to nothing. Incremental per-slot solvers use it to
// recycle one Model across consecutive LP constructions.
func (m *Model) Reset() {
	m.maximize = false
	m.obj = m.obj[:0]
	m.lo = m.lo[:0]
	m.hi = m.hi[:0]
	m.names = m.names[:0]
	m.rows = m.rows[:0]
}

// SetMaximize switches the objective direction to maximization.
func (m *Model) SetMaximize() { m.maximize = true }

// NumVariables reports the number of variables added so far.
func (m *Model) NumVariables() int { return len(m.obj) }

// NumConstraints reports the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.rows) }

// AddVariable adds a variable with bounds [lo, hi] and the given objective
// coefficient, returning its identifier. Use math.Inf(-1) and math.Inf(1)
// for free directions. name is used only in diagnostics and may be empty.
func (m *Model) AddVariable(lo, hi, obj float64, name string) VarID {
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.obj = append(m.obj, obj)
	m.names = append(m.names, name)
	return VarID(len(m.obj) - 1)
}

// VarName reports the diagnostic name of v, or "x<id>" when none was given.
func (m *Model) VarName(v VarID) string {
	if int(v) < len(m.names) && m.names[v] != "" {
		return m.names[v]
	}
	return fmt.Sprintf("x%d", int(v))
}

// AddConstraint adds the linear constraint sum(val[i]*x[idx[i]]) sense rhs.
// The idx/val slices are copied. Duplicate variable references within one
// constraint are summed (first-mention order). It returns an error for
// malformed input.
func (m *Model) AddConstraint(sense Sense, rhs float64, idx []VarID, val []float64) (ConID, error) {
	if len(idx) != len(val) {
		return 0, fmt.Errorf("lp: constraint has %d indices but %d values", len(idx), len(val))
	}
	if sense != LE && sense != GE && sense != EQ {
		return 0, fmt.Errorf("lp: invalid sense %v", sense)
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return 0, fmt.Errorf("lp: invalid rhs %v", rhs)
	}
	for i, v := range idx {
		if int(v) < 0 || int(v) >= len(m.obj) {
			return 0, fmt.Errorf("lp: constraint references unknown variable %d", int(v))
		}
		if math.IsNaN(val[i]) || math.IsInf(val[i], 0) {
			return 0, fmt.Errorf("lp: invalid coefficient %v for variable %d", val[i], int(v))
		}
	}
	// Reuse a previously allocated row slot (and its coefficient slices)
	// when extending within capacity, so a Reset model rebuilds without
	// per-row allocations.
	var r *row
	if len(m.rows) < cap(m.rows) {
		m.rows = m.rows[:len(m.rows)+1]
		r = &m.rows[len(m.rows)-1]
		r.idx = r.idx[:0]
		r.val = r.val[:0]
	} else {
		m.rows = append(m.rows, row{})
		r = &m.rows[len(m.rows)-1]
	}
	r.sense, r.rhs = sense, rhs
	if len(m.stamp) < len(m.obj) {
		m.stamp = append(m.stamp, make([]int, len(m.obj)-len(m.stamp))...)
		m.pos = append(m.pos, make([]int, len(m.obj)-len(m.pos))...)
	}
	m.epoch++
	for i, v := range idx {
		j := int(v)
		if m.stamp[j] == m.epoch {
			r.val[m.pos[j]] += val[i]
			continue
		}
		m.stamp[j] = m.epoch
		m.pos[j] = len(r.idx)
		r.idx = append(r.idx, j)
		r.val = append(r.val, val[i])
	}
	return ConID(len(m.rows) - 1), nil
}

// ReserveRow grows constraint c's coefficient storage to hold at least
// total entries without reallocating. Column generation appends entries to
// existing rows one column at a time (AddColumn); a builder that knows the
// row's full variable-universe support can reserve it up front so the
// per-column appends never reallocate. The row's current entries are kept.
func (m *Model) ReserveRow(c ConID, total int) {
	if int(c) < 0 || int(c) >= len(m.rows) {
		return
	}
	r := &m.rows[c]
	if cap(r.idx) >= total {
		return
	}
	idx := make([]int, len(r.idx), total)
	val := make([]float64, len(r.val), total)
	copy(idx, r.idx)
	copy(val, r.val)
	r.idx, r.val = idx, val
}

// AddColumn appends a variable together with its constraint coefficients:
// the new column gets bounds [lo, hi], objective coefficient obj, and the
// entry coef[i] in existing row cons[i]. This is the delayed-column path of
// column generation — the row set is fixed up front and priced-out columns
// are grafted onto it between solves. The cons entries must be distinct.
func (m *Model) AddColumn(lo, hi, obj float64, name string, cons []ConID, coef []float64) (VarID, error) {
	if len(cons) != len(coef) {
		return 0, fmt.Errorf("lp: column has %d rows but %d coefficients", len(cons), len(coef))
	}
	for i, c := range cons {
		if int(c) < 0 || int(c) >= len(m.rows) {
			return 0, fmt.Errorf("lp: column references unknown constraint %d", int(c))
		}
		if math.IsNaN(coef[i]) || math.IsInf(coef[i], 0) {
			return 0, fmt.Errorf("lp: invalid coefficient %v for constraint %d", coef[i], int(c))
		}
		for p := 0; p < i; p++ {
			if cons[p] == c {
				return 0, fmt.Errorf("lp: column references constraint %d twice", int(c))
			}
		}
	}
	v := m.AddVariable(lo, hi, obj, name)
	for i, c := range cons {
		r := &m.rows[c]
		r.idx = append(r.idx, int(v))
		r.val = append(r.val, coef[i])
	}
	return v, nil
}

// Solution is the result of solving a Model.
type Solution struct {
	Status     Status
	Objective  float64   // objective value in the model's own direction
	X          []float64 // primal values, one per variable
	Dual       []float64 // dual values, one per constraint (minimization sign convention)
	ReducedObj []float64 // reduced costs, one per variable (minimization sign convention)
	Iterations int       // simplex iterations performed across both phases
	Phase1Iter int       // iterations spent reaching feasibility
	Factorized int       // number of basis refactorizations

	// Basis is the final simplex resting state, suitable for seeding a
	// subsequent solve via Options.InitialBasis. It is captured for every
	// solve that ran the simplex (including infeasible ones, whose basis
	// still warm-starts a relaxed retry). Under Options.Presolve it is
	// expressed in the original model's computational form.
	Basis *Basis
	// WarmStarted reports whether the solve actually started from
	// Options.InitialBasis (false when the snapshot was rejected and the
	// solver fell back to a cold start).
	WarmStarted bool
	// PresolveCols and PresolveRows count the variables and constraints the
	// presolve pass removed before the simplex ran (zero without
	// Options.Presolve).
	PresolveCols int
	PresolveRows int

	// SparseSolves and DenseSolves count the basis triangular solves (FTRAN
	// of entering columns, BTRAN of pivot-row unit vectors and phase-1 cost
	// corrections, and right-hand-side solves) that took the hyper-sparse
	// Gilbert-Peierls pattern path versus the dense substitution fallback.
	SparseSolves int
	DenseSolves  int
	// SolveNNZ totals the result-pattern sizes of those solves (a dense
	// fallback counts the full basis dimension) and SolveDim totals the
	// basis dimensions they ran against, so the aggregate result density is
	// SolveNNZ/SolveDim. Both are integers — aggregation across solves,
	// slots and runs is exact and order-independent.
	SolveNNZ int
	SolveDim int
	// DevexResets counts resets of the devex reference framework (weights
	// back to one), which happen whenever the reduced costs are recomputed
	// from scratch: refactorizations, phase switches, and Bland episodes.
	DevexResets int
	// DualRecomputes counts full recomputations of the maintained
	// reduced-cost vector — the periodic honest recompute that bounds the
	// drift of the incremental per-pivot updates.
	DualRecomputes int

	// BackendWorkers is the worker count of the compute backend that ran
	// the solve (1 for the serial backend). It is a configuration gauge,
	// not a counter: it never affects the numbers below, which are
	// bit-identical for every worker count.
	BackendWorkers int
	// DevexScans counts full devex pricing scans; ParallelScans counts the
	// subset that fanned out across the backend's worker pool (always zero
	// for the serial backend; decided by a size-only threshold otherwise).
	DevexScans    int
	ParallelScans int
	// SpecFtrans counts speculative base FTRANs launched for runner-up
	// pricing candidates and SpecFtranHits the entering-column solves that
	// were served from that speculative batch instead of being recomputed.
	SpecFtrans    int
	SpecFtranHits int

	// ColGenRounds, ColGenColumns, ColGenRows and ColGenUniverse are filled
	// by SolvePriced (and thus SolveColGen): the number of restricted-master
	// solves performed, the number of delayed columns materialized into the
	// model, the number of rows the oracle created lazily alongside them
	// (zero for fixed-row ColumnSource generation), and the size of the
	// delayed universe that was priced implicitly. All zero for a plain
	// Solve.
	ColGenRounds   int
	ColGenColumns  int
	ColGenRows     int
	ColGenUniverse int
}

// Value reports the primal value of v.
func (s *Solution) Value(v VarID) float64 { return s.X[v] }

// Pricing selects the rule Solve uses to pick the entering variable.
type Pricing int

// Pricing rules.
const (
	// PricingDevex (the default) prices with devex reference weights over a
	// reduced-cost vector maintained incrementally across pivots: each
	// iteration is a single pass over two dense arrays plus one sparse BTRAN
	// of the pivot row, instead of per-candidate column scans. Devex's
	// approximate steepest-edge criterion is the iteration-count lever on
	// the massively degenerate network LPs Postcard solves.
	PricingDevex Pricing = iota
	// PricingDantzig is the legacy rotating-window partial Dantzig rule,
	// recomputing multipliers densely every iteration. Kept as a
	// cross-check and fallback.
	PricingDantzig
)

// Options controls the simplex solver. The zero value selects defaults.
type Options struct {
	MaxIterations int     // default 50000 + 20*(rows+cols)
	FeasTol       float64 // primal feasibility tolerance, default 1e-7
	OptTol        float64 // dual feasibility (optimality) tolerance, default 1e-7
	PivotTol      float64 // minimum acceptable pivot magnitude, default 1e-8
	RefactorEvery int     // eta updates between refactorizations, default 64
	// Pricing selects the entering-variable rule; the zero value is
	// PricingDevex.
	Pricing Pricing
	// Perturb is the relative magnitude of the deterministic cost
	// perturbation applied to fight degeneracy (network LPs stall badly
	// without it). The reported objective always uses the unperturbed
	// costs. Default 1e-7; set negative to disable.
	Perturb float64

	// InitialBasis, when non-nil, seeds the simplex with a previously
	// captured basis snapshot (Solution.Basis), skipping most of phase 1
	// when the snapshot is close to optimal for the new data. A snapshot
	// that does not fit the model or factorizes singular is silently
	// ignored and the solve cold-starts; correctness never depends on the
	// snapshot's quality.
	InitialBasis *Basis

	// Presolve enables a reduction pass before the simplex: fixed columns
	// are substituted out, singleton rows are folded into variable bounds,
	// vacuous rows and unconstrained columns are dropped. The returned
	// Solution (including duals, reduced costs and Basis) is expressed in
	// the original model via the postsolve map.
	Presolve bool

	// Backend selects the compute backend for the simplex hot kernels:
	// "" or "serial" (default) runs them on the calling goroutine exactly
	// as the pre-backend solver did; "parallel" fans pricing scans,
	// pivot-row assembly and speculative FTRANs across a goroutine pool.
	// Both backends produce bit-identical results. Unknown names fail the
	// solve with an error.
	Backend string
	// BackendWorkers sets the parallel backend's pool size; <= 0 selects
	// GOMAXPROCS. Ignored by the serial backend. The worker count affects
	// only wall-clock time, never results or counters.
	BackendWorkers int
}

func (o *Options) withDefaults(rows, cols int) Options {
	out := Options{}
	if o != nil {
		out = *o
	}
	if out.MaxIterations <= 0 {
		out.MaxIterations = 50000 + 20*(rows+cols)
	}
	if out.FeasTol <= 0 {
		out.FeasTol = 1e-7
	}
	if out.OptTol <= 0 {
		out.OptTol = 1e-7
	}
	if out.PivotTol <= 0 {
		out.PivotTol = 1e-8
	}
	if out.RefactorEvery <= 0 {
		out.RefactorEvery = 32
	}
	if out.Perturb == 0 {
		out.Perturb = 1e-7
	}
	if out.Perturb < 0 {
		out.Perturb = 0
	}
	return out
}

// Validate checks a primal point for feasibility against the model within
// tol, returning a descriptive error for the first violation found. It is
// used by tests and by schedule verifiers.
func (m *Model) Validate(x []float64, tol float64) error {
	if len(x) != len(m.obj) {
		return fmt.Errorf("lp: point has %d values for %d variables", len(x), len(m.obj))
	}
	for j := range x {
		if x[j] < m.lo[j]-tol || x[j] > m.hi[j]+tol {
			return fmt.Errorf("lp: variable %s = %g outside bounds [%g, %g]",
				m.VarName(VarID(j)), x[j], m.lo[j], m.hi[j])
		}
	}
	for i, r := range m.rows {
		lhs := 0.0
		for p, j := range r.idx {
			lhs += r.val[p] * x[j]
		}
		scale := 1.0 + math.Abs(r.rhs)
		switch r.sense {
		case LE:
			if lhs > r.rhs+tol*scale {
				return fmt.Errorf("lp: constraint %d violated: %g <= %g", i, lhs, r.rhs)
			}
		case GE:
			if lhs < r.rhs-tol*scale {
				return fmt.Errorf("lp: constraint %d violated: %g >= %g", i, lhs, r.rhs)
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol*scale {
				return fmt.Errorf("lp: constraint %d violated: %g = %g", i, lhs, r.rhs)
			}
		}
	}
	return nil
}

// ObjectiveValue evaluates the model's objective at x in the model's own
// optimization direction.
func (m *Model) ObjectiveValue(x []float64) float64 {
	v := 0.0
	for j, c := range m.obj {
		v += c * x[j]
	}
	return v
}
