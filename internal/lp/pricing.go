package lp

// PricingOracle is the generalized delayed-generation contract behind
// SolvePriced. Where ColumnSource enumerates a dense candidate universe and
// materializes one 4-row arc column at a time, a PricingOracle owns the
// whole pricing round: given the duals of a solved restriction it decides
// which columns enter, appends any rows those columns need first (lazily
// created capacity or charging rows a path column crosses), and reports how
// much the model grew so the driver can extend the warm-start basis. This
// supports implicit universes — a Dantzig–Wolfe path oracle prices
// exponentially many source→deadline paths through a shortest-path
// subproblem without ever enumerating them — and lets the oracle fan the
// per-commodity subproblems across worker goroutines, as long as the
// materialization it performs is deterministic for given duals.
type PricingOracle interface {
	// Universe reports the size of the delayed universe being priced — the
	// number of explicit delayed candidates, or the size of the implicit
	// variable space a decomposition prices by subproblem. It is fixed for
	// the life of a SolvePriced call; zero means there is nothing to price
	// and the restriction already is the full model.
	Universe() int

	// PriceBatch runs one pricing round against the row duals y (indexed by
	// ConID, minimization sign convention; rows the restriction does not
	// contain have dual zero by construction). The oracle materializes the
	// columns it selects — every column with reduced cost below -tol it
	// wants to enter this round, possibly capped by an internal batch
	// policy — appending required new rows before the columns that
	// reference them, and returns how many columns and rows it added.
	// cols == 0 reports the universe priced out: no delayed column is
	// attractive under y, so the restriction's optimum is the full model's.
	PriceBatch(m *Model, y []float64, tol float64) (cols, rows int, err error)

	// MaterializeRest materializes every remaining delayed column at once.
	// The driver calls it when the restriction is infeasible — an infeasible
	// restriction proves nothing about the full model, and an infeasible
	// simplex exposes no duals to price against — so that the subsequent
	// re-solve delivers a full-model verdict. Oracles over an implicit
	// universe that cannot be exhausted return ok == false; the driver then
	// returns the infeasible solution as-is and the caller must treat it as
	// a restricted (not full-model) verdict. Oracles that keep their
	// restriction feasible by construction (e.g. with artificial columns)
	// never see this call.
	MaterializeRest(m *Model) (cols, rows int, ok bool, err error)
}

// SolvePriced solves the full model implied by m plus the oracle's delayed
// universe by column generation: solve the restricted master, hand the
// optimal duals to the oracle, extend the warm-start basis by whatever the
// oracle materialized (new columns resting at their lower bound, new rows'
// logicals basic), and repeat until the oracle reports the universe priced
// out. Appending new rows with basic logicals is safe precisely because
// rows are created lazily on first use: every column already materialized
// has a zero coefficient in a row created after it, so the row's activity
// at the current basic point comes only from pre-existing columns the
// oracle verified slack — the extended snapshot stays primal feasible and
// the re-solve resumes from dual pricing instead of phase 1.
//
// Pricing is only sound against an exact dual certificate of the restricted
// master, so rounds always solve with presolve disabled: the postsolve
// preserves the duality identity but not exactness — when a singleton row
// is folded into a column's bound and that column is later removed as
// empty, the folded row's dual is unrecoverable and reported as zero, which
// makes every delayed column priced through that row look unattractive and
// terminates generation at a suboptimal restriction.
//
// Unbounded and iteration-limited outcomes return as-is (a ray of the
// restriction is a ray of the full model). The returned Solution aggregates
// work counters across all rounds and describes the generation itself in
// ColGenRounds, ColGenColumns, ColGenRows and ColGenUniverse.
func SolvePriced(m *Model, oracle PricingOracle, opts *Options) (*Solution, error) {
	universe := oracle.Universe()
	if universe == 0 {
		return m.Solve(opts)
	}
	priceTol := 1e-7
	if opts != nil && opts.OptTol > 0 {
		priceTol = opts.OptTol
	}
	cur := Options{}
	if opts != nil {
		cur = *opts
	}
	cur.Presolve = false
	acc := struct {
		iterations, phase1, factorized      int
		sparseSolves, denseSolves, nnz, dim int
		devexResets, dualRecomputes         int
		devexScans, parallelScans           int
		specFtrans, specFtranHits           int
		backendWorkers                      int
		rounds, cols, rows                  int
		warmStarted                         bool
	}{}
	for {
		sol, err := m.Solve(&cur)
		if err != nil {
			return nil, err
		}
		acc.rounds++
		acc.iterations += sol.Iterations
		acc.phase1 += sol.Phase1Iter
		acc.factorized += sol.Factorized
		acc.sparseSolves += sol.SparseSolves
		acc.denseSolves += sol.DenseSolves
		acc.nnz += sol.SolveNNZ
		acc.dim += sol.SolveDim
		acc.devexResets += sol.DevexResets
		acc.dualRecomputes += sol.DualRecomputes
		acc.devexScans += sol.DevexScans
		acc.parallelScans += sol.ParallelScans
		acc.specFtrans += sol.SpecFtrans
		acc.specFtranHits += sol.SpecFtranHits
		if sol.BackendWorkers > acc.backendWorkers {
			acc.backendWorkers = sol.BackendWorkers
		}
		if acc.rounds == 1 {
			acc.warmStarted = sol.WarmStarted
		}
		done := false
		switch sol.Status {
		case Optimal:
			cols, rows, err := oracle.PriceBatch(m, sol.Dual, priceTol)
			if err != nil {
				return nil, err
			}
			if cols == 0 {
				done = true
				break
			}
			acc.cols += cols
			acc.rows += rows
			cur.InitialBasis = extendBasis(sol.Basis, cols, rows)
		case Infeasible:
			cols, rows, ok, err := oracle.MaterializeRest(m)
			if err != nil {
				return nil, err
			}
			if !ok || cols+rows == 0 {
				done = true
				break
			}
			acc.cols += cols
			acc.rows += rows
			cur.InitialBasis = extendBasis(sol.Basis, cols, rows)
		default:
			done = true
		}
		if done {
			sol.Iterations = acc.iterations
			sol.Phase1Iter = acc.phase1
			sol.Factorized = acc.factorized
			sol.SparseSolves = acc.sparseSolves
			sol.DenseSolves = acc.denseSolves
			sol.SolveNNZ = acc.nnz
			sol.SolveDim = acc.dim
			sol.DevexResets = acc.devexResets
			sol.DualRecomputes = acc.dualRecomputes
			sol.DevexScans = acc.devexScans
			sol.ParallelScans = acc.parallelScans
			sol.SpecFtrans = acc.specFtrans
			sol.SpecFtranHits = acc.specFtranHits
			sol.BackendWorkers = acc.backendWorkers
			sol.WarmStarted = acc.warmStarted
			sol.ColGenRounds = acc.rounds
			sol.ColGenColumns = acc.cols
			sol.ColGenRows = acc.rows
			sol.ColGenUniverse = universe
			return sol, nil
		}
	}
}

// extendBasis grows a basis snapshot by extraCols structural columns resting
// at their lower bound and extraRows constraints whose logicals enter basic.
// New columns at their bound contribute nothing, and a lazily created row's
// activity comes only from columns materialized before it (later columns
// have zero coefficients there), which the oracle guarantees leave it slack
// — so the implied basic point is the restriction's own and stays primal
// feasible, letting the re-solve skip phase 1. The basic count grows by
// exactly extraRows, matching the extended model's row count.
func extendBasis(b *Basis, extraCols, extraRows int) *Basis {
	if b == nil {
		return nil
	}
	out := &Basis{
		NumVars: b.NumVars + extraCols,
		NumRows: b.NumRows + extraRows,
		Status:  make([]BasisStatus, 0, len(b.Status)+extraCols+extraRows),
	}
	out.Status = append(out.Status, b.Status[:b.NumVars]...)
	for i := 0; i < extraCols; i++ {
		out.Status = append(out.Status, BasisAtLower)
	}
	out.Status = append(out.Status, b.Status[b.NumVars:]...)
	for i := 0; i < extraRows; i++ {
		out.Status = append(out.Status, BasisBasic)
	}
	return out
}
