package lp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/interdc/postcard/internal/lp/backend"
)

// solveWithPricing solves m under the given pricing rule, failing the test
// on a solver error.
func solveWithPricing(t *testing.T, m *Model, p Pricing) *Solution {
	t.Helper()
	sol, err := m.Solve(&Options{Pricing: p})
	if err != nil {
		t.Fatalf("Solve(%v): %v", p, err)
	}
	return sol
}

// TestDevexMatchesDantzigRandom is the pricing-rule equivalence property:
// devex and Dantzig pricing follow different pivot trajectories but must
// agree on the optimization outcome — identical status, objectives equal to
// within tolerance, and both primal points feasible.
func TestDevexMatchesDantzigRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(424))
	agreeOpt := 0
	for trial := 0; trial < 400; trial++ {
		m := randomModel(rng)
		dv := solveWithPricing(t, m, PricingDevex)
		dz := solveWithPricing(t, m, PricingDantzig)
		if dv.Status == IterLimit || dz.Status == IterLimit {
			continue
		}
		if dv.Status != dz.Status {
			t.Fatalf("trial %d: status mismatch devex=%v dantzig=%v", trial, dv.Status, dz.Status)
		}
		if dv.Status != Optimal {
			continue
		}
		agreeOpt++
		if err := m.Validate(dv.X, 1e-6); err != nil {
			t.Fatalf("trial %d: devex solution infeasible: %v", trial, err)
		}
		if err := m.Validate(dz.X, 1e-6); err != nil {
			t.Fatalf("trial %d: dantzig solution infeasible: %v", trial, err)
		}
		diff := math.Abs(dv.Objective - dz.Objective)
		scale := 1 + math.Max(math.Abs(dv.Objective), math.Abs(dz.Objective))
		if diff/scale > 1e-6 {
			t.Fatalf("trial %d: objective mismatch devex=%v dantzig=%v", trial, dv.Objective, dz.Objective)
		}
	}
	if agreeOpt < 50 {
		t.Fatalf("only %d optimal instances; generator too degenerate", agreeOpt)
	}
}

// randomFlowModel builds a min-cost-flow LP over a random digraph: one edge
// variable per arc with capacity bounds, flow conservation at every node,
// and a guaranteed-feasible demand thanks to an expensive direct arc from
// source to sink. These massively degenerate network LPs are the structure
// Postcard's time-expanded graphs produce, and the regime where pricing
// rules diverge hardest in trajectory.
func randomFlowModel(rng *rand.Rand) *Model {
	n := 5 + rng.Intn(8)
	src, sink := 0, n-1
	demand := 1 + float64(rng.Intn(20))

	m := NewModel()
	type arc struct {
		from, to int
		v        VarID
	}
	var arcs []arc
	add := func(from, to int, cap, cost float64) {
		v := m.AddVariable(0, cap, cost, "")
		arcs = append(arcs, arc{from, to, v})
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < 0.35 {
				add(i, j, float64(1+rng.Intn(15)), float64(rng.Intn(10)))
			}
		}
	}
	// Feasibility backstop: a direct arc wide enough for the whole demand,
	// priced far above everything else so it is only used when needed.
	add(src, sink, demand, 1000)

	for v := 0; v < n; v++ {
		var idx []VarID
		var val []float64
		for _, a := range arcs {
			if a.from == v {
				idx = append(idx, a.v)
				val = append(val, 1)
			}
			if a.to == v {
				idx = append(idx, a.v)
				val = append(val, -1)
			}
		}
		rhs := 0.0
		switch v {
		case src:
			rhs = demand
		case sink:
			rhs = -demand
		}
		if len(idx) == 0 {
			continue
		}
		if _, err := m.AddConstraint(EQ, rhs, idx, val); err != nil {
			panic(err)
		}
	}
	return m
}

// TestDevexMatchesDantzigNetworkLPs runs the pricing equivalence property
// on structured network LPs, where degeneracy makes the two rules take
// wildly different pivot paths.
func TestDevexMatchesDantzigNetworkLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		m := randomFlowModel(rng)
		dv := solveWithPricing(t, m, PricingDevex)
		dz := solveWithPricing(t, m, PricingDantzig)
		if dv.Status != Optimal || dz.Status != Optimal {
			t.Fatalf("trial %d: network LP not optimal: devex=%v dantzig=%v", trial, dv.Status, dz.Status)
		}
		if err := m.Validate(dv.X, 1e-6); err != nil {
			t.Fatalf("trial %d: devex solution infeasible: %v", trial, err)
		}
		diff := math.Abs(dv.Objective - dz.Objective)
		scale := 1 + math.Max(math.Abs(dv.Objective), math.Abs(dz.Objective))
		if diff/scale > 1e-6 {
			t.Fatalf("trial %d: objective mismatch devex=%v dantzig=%v", trial, dv.Objective, dz.Objective)
		}
	}
}

// TestDevexReportsSparseCounters checks that the new Solution counters are
// populated and internally consistent on a network LP: every triangular
// solve is tallied exactly once, the aggregate result size never exceeds
// the dimension total, and devex bookkeeping ran.
func TestDevexReportsSparseCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randomFlowModel(rng)
	sol := solveWithPricing(t, m, PricingDevex)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	tot := sol.SparseSolves + sol.DenseSolves
	if tot == 0 {
		t.Fatal("no triangular solves recorded")
	}
	if sol.SolveDim <= 0 || sol.SolveNNZ <= 0 || sol.SolveNNZ > sol.SolveDim {
		t.Fatalf("inconsistent solve totals: nnz %d, dim %d", sol.SolveNNZ, sol.SolveDim)
	}
	if sol.DevexResets == 0 {
		t.Fatal("devex framework never initialized (DevexResets = 0)")
	}
	if sol.DualRecomputes == 0 {
		t.Fatal("maintained reduced costs never computed (DualRecomputes = 0)")
	}
}

// TestSteadyStateIterationAllocs pins the zero-allocation property of the
// per-iteration simplex kernels: once the solver's pooled buffers are warm,
// FTRAN of an entering column, BTRAN of a pivot-row unit vector, pivot-row
// assembly over the CSR mirror, and devex pricing must not allocate. This
// is the property that keeps large time-expanded solves out of the
// allocator; a regression here shows up as GC pressure long before it
// shows up as wrong answers.
// It holds for every backend: the parallel pool preallocates all dispatch
// state and per-slot speculation buffers, so fanning out must be as
// allocation-free as the serial loops at any worker count.
func TestSteadyStateIterationAllocs(t *testing.T) {
	cases := []struct {
		name    string
		backend string
		workers int
		large   bool
	}{
		{"serial", backend.NameSerial, 1, false},
		{"parallel-w1", backend.NameParallel, 1, false},
		{"parallel-w2", backend.NameParallel, 2, false},
		{"parallel-w4", backend.NameParallel, 4, false},
		{"parallel-w8", backend.NameParallel, 8, false},
		// Above the fan-out threshold the kernels dispatch to the worker
		// pool; the fanned paths must be as allocation-free as the serial
		// branches.
		{"parallel-w4-large", backend.NameParallel, 4, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(12))
			m := randomFlowModel(rng)
			if tc.large {
				m = largeFlowModel(rng)
			}
			cf, err := m.buildCompForm()
			if err != nil {
				t.Fatal(err)
			}
			// A huge refactorization interval keeps the eta file growing
			// instead of periodically resetting, exercising the pooled eta
			// storage; the pool reaches its high-water mark during the
			// warm-up solve.
			opt := (&Options{
				RefactorEvery:  1 << 20,
				Backend:        tc.backend,
				BackendWorkers: tc.workers,
			}).withDefaults(cf.m, cf.n)
			cf.perturb(opt.Perturb)
			be, err := backend.New(opt.Backend, opt.BackendWorkers, cf.m, cf.n+cf.m)
			if err != nil {
				t.Fatal(err)
			}
			defer be.Close()
			s := newSimplex(cf, opt, be)
			if err := s.coldStart(); err != nil {
				t.Fatal(err)
			}
			if _, err := s.run(); err != nil {
				t.Fatal(err)
			}

			// Warm every kernel once so lazily grown workspace buffers reach
			// their steady-state sizes before measuring.
			kernels := func() {
				s.ftran(0)
				s.clearW()
				s.btranUnit(0)
				s.pivotRowAlpha()
				s.clearAlpha()
				s.clearRho()
				s.priceDevex()
				s.be.Speculate(s.lu, s.cf.a, s.sparseLimit(), -1)
				s.priceMaintainedWindow()
			}
			kernels()

			if allocs := testing.AllocsPerRun(200, kernels); allocs != 0 {
				t.Fatalf("steady-state iteration kernels allocate %.1f times per run, want 0", allocs)
			}
		})
	}
}
