// Package schedule defines the routing-and-scheduling plans produced by the
// Postcard optimizer and the baseline schedulers, together with an
// independent feasibility verifier. A schedule lists, per file and per time
// slot, how much data moves over which link (or is held in place — the
// paper's holdover M_ii). The verifier re-checks traffic conservation,
// capacity, and deadlines without reusing any optimizer machinery, so
// optimizer bugs cannot hide behind their own bookkeeping.
package schedule

import (
	"fmt"
	"math"
	"sort"

	"github.com/interdc/postcard/internal/netmodel"
)

// Action moves Amount GB of file FileID from From to To during Slot.
// From == To is a holdover: the data stays stored at that datacenter for
// the slot (zero cost, no link usage).
type Action struct {
	FileID int
	From   netmodel.DC
	To     netmodel.DC
	Slot   int
	Amount float64
}

// IsHold reports whether the action is a storage holdover.
func (a Action) IsHold() bool { return a.From == a.To }

// String renders the action compactly.
func (a Action) String() string {
	if a.IsHold() {
		return fmt.Sprintf("file %d: hold %.3g at D%d during slot %d", a.FileID, a.Amount, int(a.From), a.Slot)
	}
	return fmt.Sprintf("file %d: send %.3g on D%d->D%d during slot %d", a.FileID, a.Amount, int(a.From), int(a.To), a.Slot)
}

// Schedule is an ordered collection of actions.
type Schedule struct {
	actions []Action
}

// Add appends an action. Zero amounts are dropped.
func (s *Schedule) Add(a Action) {
	if a.Amount == 0 {
		return
	}
	s.actions = append(s.actions, a)
}

// Len reports the number of actions.
func (s *Schedule) Len() int { return len(s.actions) }

// Actions returns the actions sorted by (slot, file, from, to). The
// returned slice is a copy.
func (s *Schedule) Actions() []Action {
	out := make([]Action, len(s.actions))
	copy(out, s.actions)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Slot != out[j].Slot {
			return out[i].Slot < out[j].Slot
		}
		if out[i].FileID != out[j].FileID {
			return out[i].FileID < out[j].FileID
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// TransferVolume reports the total non-holdover volume scheduled on link
// i->j during slot, summed over files.
func (s *Schedule) TransferVolume(i, j netmodel.DC, slot int) float64 {
	total := 0.0
	for _, a := range s.actions {
		if !a.IsHold() && a.From == i && a.To == j && a.Slot == slot {
			total += a.Amount
		}
	}
	return total
}

// HoldVolume reports the total volume held at datacenter d during slot.
func (s *Schedule) HoldVolume(d netmodel.DC, slot int) float64 {
	total := 0.0
	for _, a := range s.actions {
		if a.IsHold() && a.From == d && a.Slot == slot {
			total += a.Amount
		}
	}
	return total
}

// TotalTransferred reports the total link-GB moved (excluding holds).
func (s *Schedule) TotalTransferred() float64 {
	total := 0.0
	for _, a := range s.actions {
		if !a.IsHold() {
			total += a.Amount
		}
	}
	return total
}

// MaxSlot reports the largest slot referenced, or -1 for an empty schedule.
func (s *Schedule) MaxSlot() int {
	maxSlot := -1
	for _, a := range s.actions {
		if a.Slot > maxSlot {
			maxSlot = a.Slot
		}
	}
	return maxSlot
}

// Apply records every transfer action onto the ledger (holds are free and
// not recorded). It is not atomic: on error the ledger may hold a prefix,
// so callers should treat an error as fatal for the run.
func (s *Schedule) Apply(ledger *netmodel.Ledger) error {
	for _, a := range s.actions {
		if a.IsHold() {
			continue
		}
		if err := ledger.Add(a.From, a.To, a.Slot, a.Amount); err != nil {
			return fmt.Errorf("schedule: applying %v: %w", a, err)
		}
	}
	return nil
}

// VerifyConfig parameterizes Verify.
type VerifyConfig struct {
	// Residual reports the available capacity of link i->j at slot, in GB,
	// before this schedule is applied. Nil means unconstrained.
	Residual func(i, j netmodel.DC, slot int) float64
	// Tol is the numerical tolerance in GB; defaults to 1e-6.
	Tol float64
}

// Verify checks the schedule end to end against the network and file set:
//
//  1. every action references a known file, an existing link (or a valid
//     holdover), lies inside the file's [release, release+deadline) window,
//     and has a nonnegative amount;
//  2. per file, traffic is conserved: everything leaving the source at the
//     release layer equals the file size, everything reaching the
//     destination by the deadline layer equals the file size, and at every
//     intermediate (datacenter, layer) inflow equals outflow;
//  3. the per-slot, per-link sum over files respects Residual.
//
// It is implemented by replaying node balances, independent of the LP.
func Verify(s *Schedule, nw *netmodel.Network, files []netmodel.File, cfg VerifyConfig) error {
	tol := cfg.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	byID := make(map[int]netmodel.File, len(files))
	for _, f := range files {
		if _, dup := byID[f.ID]; dup {
			return fmt.Errorf("schedule: duplicate file ID %d", f.ID)
		}
		byID[f.ID] = f
	}
	// balance[fileID][dc] at the "current layer" while sweeping slots.
	type key struct {
		file int
		dc   netmodel.DC
	}
	balance := make(map[key]float64, len(files))
	for _, f := range files {
		balance[key{f.ID, f.Src}] = f.Size
	}
	actions := s.Actions()
	// Group actions by slot.
	bySlot := make(map[int][]Action)
	minSlot, maxSlot := math.MaxInt32, -1
	for _, a := range actions {
		f, ok := byID[a.FileID]
		if !ok {
			return fmt.Errorf("schedule: action references unknown file %d", a.FileID)
		}
		if a.Amount < -tol {
			return fmt.Errorf("schedule: negative amount in %v", a)
		}
		if !a.IsHold() && !nw.HasLink(a.From, a.To) {
			return fmt.Errorf("schedule: action on non-existent link: %v", a)
		}
		if a.Slot < f.Release || a.Slot >= f.Release+f.Deadline {
			return fmt.Errorf("schedule: %v outside file window [%d, %d)", a, f.Release, f.Release+f.Deadline)
		}
		bySlot[a.Slot] = append(bySlot[a.Slot], a)
		if a.Slot < minSlot {
			minSlot = a.Slot
		}
		if a.Slot > maxSlot {
			maxSlot = a.Slot
		}
	}
	for _, f := range files {
		if f.Release < minSlot {
			minSlot = f.Release
		}
		if f.Release+f.Deadline-1 > maxSlot {
			maxSlot = f.Release + f.Deadline - 1
		}
	}
	if maxSlot < 0 {
		maxSlot = minSlot - 1 // no slots to sweep
	}
	// Sweep slots forward, moving balances.
	for slot := minSlot; slot <= maxSlot; slot++ {
		// Link usage this slot for the capacity check.
		linkUse := make(map[netmodel.Link]float64)
		// Outflow per (file, dc) this slot.
		out := make(map[key]float64)
		for _, a := range bySlot[slot] {
			out[key{a.FileID, a.From}] += a.Amount
			if !a.IsHold() {
				linkUse[netmodel.Link{From: a.From, To: a.To}] += a.Amount
			}
		}
		if cfg.Residual != nil {
			for l, use := range linkUse {
				if avail := cfg.Residual(l.From, l.To, slot); use > avail+tol {
					return fmt.Errorf("schedule: link %v slot %d carries %.6g > residual %.6g", l, slot, use, avail)
				}
			}
		}
		// Every file must move its entire balance every slot it is live
		// (holdovers count as movement), except after its deadline layer.
		for k, have := range balance {
			f := byID[k.file]
			if slot < f.Release || slot >= f.Release+f.Deadline {
				continue
			}
			moved := out[k]
			if math.Abs(moved-have) > tol {
				return fmt.Errorf("schedule: file %d at D%d slot %d moves %.6g of balance %.6g",
					k.file, int(k.dc), slot, moved, have)
			}
		}
		// Detect moves of data that is not there.
		for k, moved := range out {
			if have := balance[k]; moved > have+tol {
				return fmt.Errorf("schedule: file %d moves %.6g from D%d at slot %d but only %.6g present",
					k.file, moved, int(k.dc), slot, have)
			}
		}
		// Advance balances to the next layer.
		for k := range balance {
			f := byID[k.file]
			if slot < f.Release || slot >= f.Release+f.Deadline {
				continue
			}
			balance[k] -= out[key{k.file, k.dc}]
			if balance[k] < tol {
				delete(balance, k)
			}
		}
		for _, a := range bySlot[slot] {
			balance[key{a.FileID, a.To}] += a.Amount
		}
	}
	// Everything must have arrived.
	for _, f := range files {
		got := balance[key{f.ID, f.Dst}]
		if math.Abs(got-f.Size) > tol*(1+f.Size) {
			return fmt.Errorf("schedule: file %d delivered %.6g of %.6g GB to D%d",
				f.ID, got, f.Size, int(f.Dst))
		}
		delete(balance, key{f.ID, f.Dst})
	}
	for k, v := range balance {
		if v > tol {
			return fmt.Errorf("schedule: %.6g GB of file %d stranded at D%d", v, k.file, int(k.dc))
		}
	}
	return nil
}
