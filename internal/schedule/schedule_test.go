package schedule

import (
	"math"
	"strings"
	"testing"

	"github.com/interdc/postcard/internal/netmodel"
)

func testNet(t *testing.T) *netmodel.Network {
	t.Helper()
	nw, err := netmodel.Complete(3, func(_, _ netmodel.DC) float64 { return 1 }, 10)
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func fileA() netmodel.File {
	return netmodel.File{ID: 1, Src: 0, Dst: 2, Size: 6, Deadline: 3, Release: 0}
}

// goodSchedule pipelines file A: 0->1 during slots 0,1 (3 GB each), holds
// nothing at the source, forwards 1->2 during slots 1,2.
func goodSchedule() *Schedule {
	s := &Schedule{}
	s.Add(Action{FileID: 1, From: 0, To: 1, Slot: 0, Amount: 3})
	s.Add(Action{FileID: 1, From: 0, To: 0, Slot: 0, Amount: 3}) // hold rest at src
	s.Add(Action{FileID: 1, From: 0, To: 1, Slot: 1, Amount: 3})
	s.Add(Action{FileID: 1, From: 1, To: 2, Slot: 1, Amount: 3})
	s.Add(Action{FileID: 1, From: 1, To: 2, Slot: 2, Amount: 3})
	s.Add(Action{FileID: 1, From: 2, To: 2, Slot: 2, Amount: 3}) // hold early arrival at dst
	return s
}

func TestVerifyAcceptsPipelinedSchedule(t *testing.T) {
	nw := testNet(t)
	if err := Verify(goodSchedule(), nw, []netmodel.File{fileA()}, VerifyConfig{}); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestVerifyRejectsShortDelivery(t *testing.T) {
	nw := testNet(t)
	s := goodSchedule()
	// Remove the final forwarding hop: 3 GB stranded at DC1.
	var pruned Schedule
	for _, a := range s.Actions() {
		if a.From == 1 && a.To == 2 && a.Slot == 2 {
			continue
		}
		pruned.Add(a)
	}
	err := Verify(&pruned, nw, []netmodel.File{fileA()}, VerifyConfig{})
	if err == nil {
		t.Fatal("expected verification failure for stranded data")
	}
}

func TestVerifyRejectsDeadlineViolation(t *testing.T) {
	nw := testNet(t)
	s := goodSchedule()
	s.Add(Action{FileID: 1, From: 0, To: 1, Slot: 5, Amount: 1})
	if err := Verify(s, nw, []netmodel.File{fileA()}, VerifyConfig{}); err == nil {
		t.Fatal("expected verification failure for action beyond deadline")
	}
}

func TestVerifyRejectsUnknownFile(t *testing.T) {
	nw := testNet(t)
	s := &Schedule{}
	s.Add(Action{FileID: 99, From: 0, To: 1, Slot: 0, Amount: 1})
	if err := Verify(s, nw, []netmodel.File{fileA()}, VerifyConfig{}); err == nil {
		t.Fatal("expected verification failure for unknown file")
	}
}

func TestVerifyRejectsMissingLink(t *testing.T) {
	nw, err := netmodel.NewNetwork(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLink(0, 1, 1, 10); err != nil {
		t.Fatal(err)
	}
	s := &Schedule{}
	s.Add(Action{FileID: 1, From: 1, To: 0, Slot: 0, Amount: 1})
	file := netmodel.File{ID: 1, Src: 1, Dst: 0, Size: 1, Deadline: 1, Release: 0}
	if err := Verify(s, nw, []netmodel.File{file}, VerifyConfig{}); err == nil {
		t.Fatal("expected verification failure for missing link")
	}
}

func TestVerifyRejectsCapacityOverflow(t *testing.T) {
	nw := testNet(t)
	file := netmodel.File{ID: 1, Src: 0, Dst: 1, Size: 6, Deadline: 1, Release: 0}
	s := &Schedule{}
	s.Add(Action{FileID: 1, From: 0, To: 1, Slot: 0, Amount: 6})
	tight := func(i, j netmodel.DC, slot int) float64 { return 4 }
	err := Verify(s, nw, []netmodel.File{file}, VerifyConfig{Residual: tight})
	if err == nil || !strings.Contains(err.Error(), "residual") {
		t.Fatalf("expected residual violation, got %v", err)
	}
}

func TestVerifyRejectsMovingAbsentData(t *testing.T) {
	nw := testNet(t)
	file := netmodel.File{ID: 1, Src: 0, Dst: 2, Size: 2, Deadline: 2, Release: 0}
	s := &Schedule{}
	// DC1 forwards at slot 0 although the data only arrives at layer 1.
	s.Add(Action{FileID: 1, From: 1, To: 2, Slot: 0, Amount: 2})
	s.Add(Action{FileID: 1, From: 0, To: 1, Slot: 0, Amount: 2})
	s.Add(Action{FileID: 1, From: 1, To: 2, Slot: 1, Amount: 2})
	if err := Verify(s, nw, []netmodel.File{file}, VerifyConfig{}); err == nil {
		t.Fatal("expected verification failure for premature forwarding")
	}
}

func TestVerifyRejectsDuplicateFileIDs(t *testing.T) {
	nw := testNet(t)
	files := []netmodel.File{fileA(), fileA()}
	if err := Verify(&Schedule{}, nw, files, VerifyConfig{}); err == nil {
		t.Fatal("expected duplicate-ID error")
	}
}

func TestVerifyRejectsNegativeAmount(t *testing.T) {
	nw := testNet(t)
	s := &Schedule{}
	s.Add(Action{FileID: 1, From: 0, To: 1, Slot: 0, Amount: -2})
	if err := Verify(s, nw, []netmodel.File{fileA()}, VerifyConfig{}); err == nil {
		t.Fatal("expected negative-amount error")
	}
}

func TestVerifyEmptyScheduleNoFiles(t *testing.T) {
	nw := testNet(t)
	if err := Verify(&Schedule{}, nw, nil, VerifyConfig{}); err != nil {
		t.Errorf("empty schedule with no files should verify: %v", err)
	}
}

func TestVerifyEmptyScheduleWithFilesFails(t *testing.T) {
	nw := testNet(t)
	if err := Verify(&Schedule{}, nw, []netmodel.File{fileA()}, VerifyConfig{}); err == nil {
		t.Fatal("expected failure: file never delivered")
	}
}

func TestAccessors(t *testing.T) {
	s := goodSchedule()
	if got := s.TransferVolume(0, 1, 0); got != 3 {
		t.Errorf("TransferVolume = %v, want 3", got)
	}
	if got := s.TransferVolume(0, 0, 0); got != 0 {
		t.Errorf("holds must not count as transfers, got %v", got)
	}
	if got := s.HoldVolume(0, 0); got != 3 {
		t.Errorf("HoldVolume = %v, want 3", got)
	}
	if got := s.TotalTransferred(); got != 12 {
		t.Errorf("TotalTransferred = %v, want 12", got)
	}
	if got := s.MaxSlot(); got != 2 {
		t.Errorf("MaxSlot = %v, want 2", got)
	}
	if (&Schedule{}).MaxSlot() != -1 {
		t.Error("empty MaxSlot should be -1")
	}
	if got := s.Len(); got != 6 {
		t.Errorf("Len = %d, want 6", got)
	}
	s.Add(Action{FileID: 1, From: 0, To: 1, Slot: 0, Amount: 0})
	if got := s.Len(); got != 6 {
		t.Errorf("zero-amount action stored; Len = %d", got)
	}
}

func TestActionsSortedAndCopied(t *testing.T) {
	s := &Schedule{}
	s.Add(Action{FileID: 2, From: 1, To: 2, Slot: 1, Amount: 1})
	s.Add(Action{FileID: 1, From: 0, To: 1, Slot: 0, Amount: 1})
	got := s.Actions()
	if got[0].Slot != 0 || got[1].Slot != 1 {
		t.Errorf("not sorted by slot: %v", got)
	}
	got[0].Amount = 99
	if s.Actions()[0].Amount == 99 {
		t.Error("Actions must return a copy")
	}
}

func TestApplyRecordsTransfersOnly(t *testing.T) {
	nw := testNet(t)
	ledger, err := netmodel.NewLedger(nw, netmodel.MaxCharging(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := goodSchedule().Apply(ledger); err != nil {
		t.Fatal(err)
	}
	if got := ledger.VolumeAt(0, 1, 0); got != 3 {
		t.Errorf("VolumeAt(0,1,0) = %v, want 3", got)
	}
	// Holds are free and unrecorded; link 0->0 does not even exist.
	if got := ledger.ChargedVolume(1, 2); math.Abs(got-3) > 1e-12 {
		t.Errorf("ChargedVolume(1,2) = %v, want 3", got)
	}
}

func TestActionString(t *testing.T) {
	hold := Action{FileID: 1, From: 2, To: 2, Slot: 3, Amount: 1.5}
	if !strings.Contains(hold.String(), "hold") {
		t.Errorf("hold string: %s", hold.String())
	}
	send := Action{FileID: 1, From: 0, To: 2, Slot: 3, Amount: 1.5}
	if !strings.Contains(send.String(), "send") {
		t.Errorf("send string: %s", send.String())
	}
}
