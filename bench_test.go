package postcard_test

// Benchmark harness regenerating every figure of the paper's evaluation
// (Sec. VII) plus ablations over the design choices documented in
// DESIGN.md. Each BenchmarkFigN runs the corresponding evaluation setting
// (capacity/deadline regime) end to end — workload generation, online
// per-slot optimization for both Postcard and the flow-based baseline, and
// charging — at a benchmark-sized scale, and reports the measured average
// cost per interval for both schedulers as custom metrics. The full-scale
// reproduction is `go run ./cmd/postcard-figs` (optionally -scale paper).

import (
	"flag"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/interdc/postcard"
	"github.com/interdc/postcard/internal/cliutil"
)

// benchScale is small enough for testing.B iteration but preserves the
// relative regimes of the paper's four settings. Runs is 2 so that the
// experiment has 4 (run, scheduler) cells — enough independent work for
// BenchmarkFig4Parallel to fan out over a multicore runner.
func benchScale() postcard.Scale {
	return postcard.Scale{
		Name: "bench", DCs: 6, Slots: 6, Runs: 2,
		FilesMin: 2, FilesMax: 5, SizeMinGB: 10, SizeMaxGB: 100, Seed: 2012,
	}
}

// applyEnvLPBackend routes the POSTCARD_LP_BACKEND / POSTCARD_LP_WORKERS
// environment variables onto a scheduler set through the same
// internal/cliutil plumbing the four binaries use for -lp-backend /
// -lp-workers. scripts/bench.sh sets them to run the benchmark suite once
// per backend (`-backends serial,parallel`); with neither variable set
// this is a no-op and every scheduler keeps its default (serial) backend.
// Costs and solver counters are backend-invariant by the determinism
// contract, so the only signal that may move between backends is ns/op.
func applyEnvLPBackend(b *testing.B, scheds []postcard.Scheduler) {
	b.Helper()
	name := os.Getenv("POSTCARD_LP_BACKEND")
	workers := os.Getenv("POSTCARD_LP_WORKERS")
	if name == "" && workers == "" {
		return
	}
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	lpb := cliutil.AddLPBackendFlags(fs)
	var args []string
	if name != "" {
		args = append(args, "-lp-backend="+name)
	}
	if workers != "" {
		args = append(args, "-lp-workers="+workers)
	}
	if err := fs.Parse(args); err != nil {
		b.Fatalf("parsing POSTCARD_LP_* environment: %v", err)
	}
	lpb.Apply(scheds...)
}

// benchFigure runs one evaluation figure per b.N iteration at the given
// scale and reports each scheduler's average cost per interval (plus its LP
// iteration total, for schedulers that report solver work). A fresh
// scheduler set is built per iteration so stateful schedulers (e.g. the
// warm-started adapter) never carry counters across iterations.
func benchFigure(b *testing.B, figure int, scale postcard.Scale, mkSchedulers func() []postcard.Scheduler) {
	b.Helper()
	setting, err := postcard.SettingByFigure(figure)
	if err != nil {
		b.Fatal(err)
	}
	if mkSchedulers == nil {
		mkSchedulers = func() []postcard.Scheduler {
			return []postcard.Scheduler{
				&postcard.PostcardScheduler{},
				&postcard.FlowScheduler{Variant: postcard.FlowLP},
			}
		}
	}
	inner := mkSchedulers
	mkSchedulers = func() []postcard.Scheduler {
		scheds := inner()
		applyEnvLPBackend(b, scheds)
		return scheds
	}
	var last *postcard.FigureResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := postcard.RunFigure(postcard.FigureConfig{
			Setting:    setting,
			Scale:      scale,
			Schedulers: mkSchedulers(),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	for _, s := range last.Schedulers {
		b.ReportMetric(s.Final.Mean, s.Name+"-cost/slot")
		if s.Solver.Solves > 0 {
			b.ReportMetric(float64(s.Solver.Iterations), s.Name+"-lp-iters")
		}
		if tot := s.Solver.SparseSolves + s.Solver.DenseSolves; tot > 0 {
			b.ReportMetric(100*float64(s.Solver.SparseSolves)/float64(tot), s.Name+"-sparse-hit%")
		}
		if u := s.Solver.VarUniverse + s.Solver.PrunedVars; u > 0 {
			b.ReportMetric(100*float64(s.Solver.PrunedVars)/float64(u), s.Name+"-pruned%")
		}
		if s.Solver.ColGenUniverse > 0 {
			b.ReportMetric(float64(s.Solver.ColGenRounds), s.Name+"-colgen-rounds")
			b.ReportMetric(float64(s.Solver.ColGenColumns), s.Name+"-colgen-cols")
			b.ReportMetric(100*float64(s.Solver.ColGenColumns)/float64(s.Solver.ColGenUniverse), s.Name+"-colgen-gen%")
		}
		if s.Solver.PathSolves > 0 {
			b.ReportMetric(float64(s.Solver.ColGenRows), s.Name+"-lazy-rows")
			b.ReportMetric(float64(s.Solver.PathFallbacks), s.Name+"-path-fallbacks")
		}
	}
}

// BenchmarkFig4 regenerates Fig. 4: ample capacity (100 GB/slot), urgent
// files (T = 3). The paper's result: flow-based beats Postcard.
func BenchmarkFig4(b *testing.B) { benchFigure(b, 4, benchScale(), nil) }

// BenchmarkFig4Parallel runs the identical Fig. 4 experiment with the
// worker pool enabled (one worker per CPU). Results are bit-identical to
// BenchmarkFig4; comparing the two ns/op numbers measures the wall-clock
// speedup of run-level parallelism (near-linear up to the 4-cell fan-out
// on a multicore machine, ~1x on a single core).
func BenchmarkFig4Parallel(b *testing.B) {
	scale := benchScale()
	scale.Workers = runtime.GOMAXPROCS(0)
	benchFigure(b, 4, scale, nil)
}

// BenchmarkFig4WarmStart runs Fig. 4 with the cold and the warm-started
// incremental Postcard solvers side by side on identical traces. The
// postcard-lp-iters versus postcard-warm-lp-iters metrics quantify the
// simplex-iteration reduction of cross-slot basis reuse (objectives agree
// per slot up to the Epsilon tie-breaker; see core.Solver), and the two
// cost/slot metrics confirm the cost trajectories stay close.
func BenchmarkFig4WarmStart(b *testing.B) {
	benchFigure(b, 4, benchScale(), func() []postcard.Scheduler {
		return []postcard.Scheduler{
			&postcard.PostcardScheduler{},
			&postcard.PostcardScheduler{WarmStart: true},
		}
	})
}

// benchDCScaling runs the Fig. 4 setting on a growing overlay with a fixed
// file stream (see DCScale): Dantzig-Wolfe path pricing versus the
// warm-started arc solver on identical traces. The per-scheduler metrics
// expose where the time goes — the two ns/op series across DC16/DC64/DC128
// are the PR 9 scaling figure. Past 16 DCs the arc model's universe blows
// up while the path master only materializes the columns it prices, so the
// gap widens with scale.
func benchDCScaling(b *testing.B, dcs int, schedNames ...string) {
	scale := postcard.DCScale(dcs)
	benchFigure(b, 4, scale, func() []postcard.Scheduler {
		scheds := make([]postcard.Scheduler, len(schedNames))
		for i, name := range schedNames {
			s, err := postcard.SchedulerByName(name)
			if err != nil {
				b.Fatal(err)
			}
			scheds[i] = s
		}
		return scheds
	})
}

// BenchmarkFig4DC16 is the small end of the scaling study; both pricing
// modes are fast here and the arc solver may still win.
func BenchmarkFig4DC16(b *testing.B) { benchDCScaling(b, 16, "postcard-path", "postcard-warm") }

// BenchmarkFig4DC64 is the mid point: path pricing holds per-slot solves in
// the hundreds of milliseconds while the arc model is already paying for
// its full column universe.
func BenchmarkFig4DC64(b *testing.B) { benchDCScaling(b, 64, "postcard-path", "postcard-warm") }

// BenchmarkFig4DC128 is the 100+ DC target regime of PR 9. Only the path
// master runs — the arc model's universe is out of benchmark budget here,
// which is the point of the redesign.
func BenchmarkFig4DC128(b *testing.B) { benchDCScaling(b, 128, "postcard-path") }

// BenchmarkFig5 regenerates Fig. 5: ample capacity, delay-tolerant files
// (T = 8). Both schedulers get cheaper than Fig. 4.
func BenchmarkFig5(b *testing.B) { benchFigure(b, 5, benchScale(), nil) }

// BenchmarkFig6 regenerates Fig. 6: limited capacity (30 GB/slot), urgent
// files. The paper's result: Postcard beats flow-based.
func BenchmarkFig6(b *testing.B) { benchFigure(b, 6, benchScale(), nil) }

// BenchmarkFig7 regenerates Fig. 7: limited capacity, delay-tolerant
// files. The paper's result: Postcard wins clearly.
func BenchmarkFig7(b *testing.B) { benchFigure(b, 7, benchScale(), nil) }

// BenchmarkFig1Example benchmarks the motivating single-file optimization
// of Fig. 1 (3 datacenters, one file, optimal cost 12).
func BenchmarkFig1Example(b *testing.B) {
	nw, file, err := postcard.Fig1Topology()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
		if err != nil {
			b.Fatal(err)
		}
		res, err := postcard.Solve(ledger, []postcard.File{file}, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != postcard.StatusOptimal {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// BenchmarkFig3Example benchmarks the worked example of Sec. V (4
// datacenters, two files, optimal cost 32.67).
func BenchmarkFig3Example(b *testing.B) {
	nw, files, err := postcard.Fig3Topology(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
		if err != nil {
			b.Fatal(err)
		}
		res, err := postcard.Solve(ledger, files, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != postcard.StatusOptimal {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// benchInstance builds one representative per-slot problem: 8 DCs, six
// files with mixed deadlines on a half-loaded ledger.
func benchInstance(b *testing.B, capacity float64) (*postcard.Ledger, []postcard.File) {
	b.Helper()
	nw, err := postcard.Complete(8, postcard.UniformPrices(5), capacity)
	if err != nil {
		b.Fatal(err)
	}
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(50))
	if err != nil {
		b.Fatal(err)
	}
	// Pre-commit history so charged floors and residuals are nontrivial.
	for i := 0; i < 8; i++ {
		from := postcard.DC(i)
		to := postcard.DC((i + 1) % 8)
		if err := ledger.Add(from, to, i%3, capacity/3); err != nil {
			b.Fatal(err)
		}
	}
	files := []postcard.File{
		{ID: 1, Src: 0, Dst: 5, Size: 80, Deadline: 4, Release: 3},
		{ID: 2, Src: 1, Dst: 6, Size: 40, Deadline: 2, Release: 3},
		{ID: 3, Src: 2, Dst: 7, Size: 95, Deadline: 6, Release: 3},
		{ID: 4, Src: 3, Dst: 0, Size: 25, Deadline: 3, Release: 3},
		{ID: 5, Src: 4, Dst: 1, Size: 60, Deadline: 5, Release: 3},
		{ID: 6, Src: 5, Dst: 2, Size: 30, Deadline: 2, Release: 3},
	}
	return ledger, files
}

// BenchmarkPostcardSolve benchmarks one per-slot Postcard LP (the unit of
// work the online simulator performs at every slot).
func BenchmarkPostcardSolve(b *testing.B) {
	ledger, files := benchInstance(b, 40)
	var last *postcard.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := postcard.Solve(ledger, files, 3, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != postcard.StatusOptimal {
			b.Fatalf("status %v", res.Status)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(last.Iterations), "lp-iters")
	if tot := last.SparseSolves + last.DenseSolves; tot > 0 {
		b.ReportMetric(100*float64(last.SparseSolves)/float64(tot), "sparse-hit%")
	}
	if u := last.VarUniverse + last.PrunedVars; u > 0 {
		b.ReportMetric(100*float64(last.PrunedVars)/float64(u), "pruned%")
	}
	if last.ColGenUniverse > 0 {
		b.ReportMetric(float64(last.ColGenRounds), "colgen-rounds")
		b.ReportMetric(100*float64(last.ColGenColumns)/float64(last.ColGenUniverse), "colgen-gen%")
	}
}

// BenchmarkFlowSolve benchmarks the flow-based single-LP baseline on the
// identical instance, for a like-for-like solver cost comparison.
func BenchmarkFlowSolve(b *testing.B) {
	ledger, files := benchInstance(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := postcard.FlowSolve(ledger, files, 3, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != postcard.StatusOptimal {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// BenchmarkFlowTwoPhase benchmarks the paper-literal two-phase
// decomposition (ablation: decomposition versus the single LP).
func BenchmarkFlowTwoPhase(b *testing.B) {
	ledger, files := benchInstance(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := postcard.FlowTwoPhaseSolve(ledger, files, 3, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Status != postcard.StatusOptimal {
			b.Fatalf("status %v", res.Status)
		}
	}
}

// BenchmarkFlowGreedy benchmarks the combinatorial cheapest-available-path
// heuristic (ablation: heuristic versus LP optimum).
func BenchmarkFlowGreedy(b *testing.B) {
	ledger, files := benchInstance(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := postcard.FlowGreedySolve(ledger, files, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationStorage quantifies the value of intermediate
// store-and-forward: the same instance solved with storage everywhere,
// storage at endpoints only, and no storage at all. Costs are reported as
// metrics; the full-storage cost is never higher.
func BenchmarkAblationStorage(b *testing.B) {
	cases := []struct {
		name   string
		policy postcard.StoragePolicy
	}{
		{"everywhere", postcard.StorageEverywhere},
		{"endpoints", postcard.StorageEndpointsOnly},
		{"none", postcard.StorageNone},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			ledger, files := benchInstance(b, 40)
			cfg := &postcard.Config{Storage: tc.policy}
			cost := 0.0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := postcard.Solve(ledger, files, 3, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Status != postcard.StatusOptimal {
					b.Fatalf("status %v", res.Status)
				}
				cost = res.CostPerSlot
			}
			b.StopTimer()
			b.ReportMetric(cost, "cost/slot")
		})
	}
}

// BenchmarkPoissonAdmission measures the fast tier's allocate-on-arrival
// latency under a Poisson heavy-arrival workload: 8 DCs at limited
// capacity (30 GB/slot), lambda ~ 12 files per slot with urgent deadlines
// (T = 3). Only the Admit calls are timed — batch commits and ledger
// maintenance happen with the clock stopped — so ns/op is the per-file
// admission decision cost, and the p50/p99/max metrics are its latency
// distribution in nanoseconds (the admission tier's design target is
// p99 < 1 ms, with no LP solve on the hot path).
func BenchmarkPoissonAdmission(b *testing.B) {
	const capacity, lambda, slots, maxT = 30.0, 12.0, 16, 3
	nw, err := postcard.Complete(8, postcard.UniformPrices(9), capacity)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := postcard.NewPoissonWorkload(postcard.PoissonWorkloadConfig{
		Uniform: postcard.UniformWorkloadConfig{
			NumDCs: 8, MinSizeGB: 10, MaxSizeGB: 100, MaxDeadline: maxT, Seed: 9,
		},
		Lambda: lambda,
	})
	if err != nil {
		b.Fatal(err)
	}
	trace := postcard.RecordTrace(gen, slots)
	var latencies []time.Duration
	admitted, rejected := 0, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(slots))
		if err != nil {
			b.Fatal(err)
		}
		ctrl, err := postcard.NewAdmissionController(ledger, nil)
		if err != nil {
			b.Fatal(err)
		}
		cursor := trace.Replay()
		latencies = latencies[:0]
		admitted, rejected = 0, 0
		b.StartTimer()
		for slot := 0; slot < slots; slot++ {
			for _, f := range cursor.FilesAt(slot) {
				start := time.Now()
				dec, err := ctrl.Admit(f, slot)
				latencies = append(latencies, time.Since(start))
				if err != nil {
					b.Fatal(err)
				}
				if dec.Admitted {
					admitted++
				} else {
					rejected++
				}
			}
			b.StopTimer()
			plan, _, err := ctrl.TakePlan()
			if err != nil {
				b.Fatal(err)
			}
			if err := plan.Apply(ledger); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	if len(latencies) == 0 {
		b.Fatal("empty trace")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	b.ReportMetric(float64(latencies[len(latencies)/2]), "p50-admit-ns")
	b.ReportMetric(float64(latencies[len(latencies)*99/100]), "p99-admit-ns")
	b.ReportMetric(float64(latencies[len(latencies)-1]), "max-admit-ns")
	b.ReportMetric(float64(admitted), "admits")
	b.ReportMetric(float64(rejected), "rejects")
}

// BenchmarkMaxBulk benchmarks the Sec. VI bulk-maximization LP.
func BenchmarkMaxBulk(b *testing.B) {
	ledger, files := benchInstance(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := postcard.MaxBulk(ledger, files, 3, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxUnderBudget benchmarks the Sec. VI budget-constrained LP.
func BenchmarkMaxUnderBudget(b *testing.B) {
	ledger, files := benchInstance(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := postcard.MaxUnderBudget(ledger, files, 3, 500, nil); err != nil {
			b.Fatal(err)
		}
	}
}
