// Budget-planner demonstrates the second Sec. VI extension: given a hard
// budget on inter-datacenter traffic costs, how many transfer requests can
// a provider admit, and how much volume can it move? The example sweeps a
// range of per-interval budgets over the same request set and prints the
// admitted files and the delivered volume at each budget.
//
// Run with:
//
//	go run ./examples/budget-planner
package main

import (
	"fmt"
	"log"

	"github.com/interdc/postcard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("budget-planner: ")

	nw, err := postcard.Complete(5, postcard.UniformPrices(11), 50)
	if err != nil {
		log.Fatal(err)
	}

	// A peak-hour batch of transfer requests of varying size and urgency.
	requests := []postcard.File{
		{ID: 1, Src: 0, Dst: 3, Size: 20, Deadline: 2, Release: 0},
		{ID: 2, Src: 1, Dst: 4, Size: 45, Deadline: 3, Release: 0},
		{ID: 3, Src: 2, Dst: 0, Size: 12, Deadline: 1, Release: 0},
		{ID: 4, Src: 3, Dst: 1, Size: 70, Deadline: 4, Release: 0},
		{ID: 5, Src: 4, Dst: 2, Size: 8, Deadline: 2, Release: 0},
		{ID: 6, Src: 0, Dst: 4, Size: 35, Deadline: 3, Release: 0},
	}
	total := 0.0
	for _, f := range requests {
		total += f.Size
	}
	fmt.Printf("request batch: %d files, %.0f GB total\n\n", len(requests), total)

	fmt.Printf("%10s %22s %18s %18s\n", "budget", "admitted files", "admitted GB", "fractional GB")
	for _, budget := range []float64{25, 50, 100, 200, 400, 800} {
		ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
		if err != nil {
			log.Fatal(err)
		}
		// Whole-file admission (greedy, smallest first).
		ids, res, err := postcard.AdmitFiles(ledger, requests, 0, budget, nil)
		if err != nil {
			log.Fatal(err)
		}
		admittedGB := 0.0
		for _, id := range ids {
			admittedGB += res.Delivered[id]
		}
		// Fractional upper bound: the LP relaxation's max volume.
		frac, err := postcard.MaxUnderBudget(ledger, requests, 0, budget, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.0f %22s %18.1f %18.1f\n", budget, formatIDs(ids), admittedGB, frac.TotalDelivered)
	}

	fmt.Println("\nthe fractional column is the LP upper bound (objective (11) plus")
	fmt.Println("the budget constraint); whole-file admission trails it because the")
	fmt.Println("provider cannot deliver half a request.")
}

// formatIDs renders a file-ID list compactly, e.g. "1 3 5" or "-".
func formatIDs(ids []int) string {
	if len(ids) == 0 {
		return "-"
	}
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprint(id)
	}
	return out
}
