// Bulk-overnight demonstrates the first Sec. VI extension (the
// NetStitcher-style problem, generalized to many files with distinct
// deadlines): after a daytime traffic peak has set the charged volume on
// several links, the night slots offer leftover bandwidth that is already
// paid for. The example maximizes the bulk backup volume moved overnight
// at exactly zero marginal cost, including multi-hop store-and-forward
// relays through intermediate datacenters.
//
// Run with:
//
//	go run ./examples/bulk-overnight
package main

import (
	"fmt"
	"log"

	"github.com/interdc/postcard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bulk-overnight: ")

	nw, err := postcard.Complete(4, postcard.UniformPrices(3), 60)
	if err != nil {
		log.Fatal(err)
	}
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(48))
	if err != nil {
		log.Fatal(err)
	}

	// Daytime peaks (slots 0-3) set the charged volume on a few links.
	type peak struct {
		from, to postcard.DC
		vol      float64
	}
	for _, p := range []peak{
		{0, 1, 40}, {1, 2, 35}, {0, 3, 25}, {3, 2, 30},
	} {
		for s := 0; s < 4; s++ {
			if err := ledger.Add(p.from, p.to, s, p.vol); err != nil {
				log.Fatal(err)
			}
		}
	}
	dayCost := ledger.CostPerSlot()
	fmt.Printf("after the daytime peak, the charged cost is %.1f per interval\n", dayCost)

	// Overnight bulk backups (slots 4 onward): delay-tolerant, large.
	backups := []postcard.File{
		{ID: 1, Src: 0, Dst: 2, Size: 300, Deadline: 8, Release: 4},
		{ID: 2, Src: 0, Dst: 1, Size: 150, Deadline: 6, Release: 4},
		{ID: 3, Src: 3, Dst: 2, Size: 200, Deadline: 8, Release: 4},
		{ID: 4, Src: 1, Dst: 2, Size: 120, Deadline: 5, Release: 4},
	}
	offered := 0.0
	for _, f := range backups {
		offered += f.Size
	}

	res, err := postcard.MaxBulk(ledger, backups, 4, nil)
	if err != nil {
		log.Fatal(err)
	}
	if res.Status != postcard.StatusOptimal {
		log.Fatalf("unexpected status %v", res.Status)
	}
	fmt.Printf("\nbulk backups offered: %.0f GB; movable for free: %.1f GB (%.0f%%)\n",
		offered, res.TotalDelivered, 100*res.TotalDelivered/offered)
	for _, f := range backups {
		fmt.Printf("  file %d (D%d->D%d, %3.0f GB, %d slots): delivered %.1f GB\n",
			f.ID, int(f.Src), int(f.Dst), f.Size, f.Deadline, res.Delivered[f.ID])
	}

	// The headline property: committing the whole plan does not change the
	// charged cost by a single cent.
	if err := res.Schedule.Apply(ledger); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncharged cost after committing the bulk plan: %.1f per interval (was %.1f)\n",
		ledger.CostPerSlot(), dayCost)

	relays := 0.0
	for _, a := range res.Schedule.Actions() {
		if a.IsHold() {
			relays += a.Amount
		}
	}
	fmt.Printf("store-and-forward holdovers in the plan: %.1f GB-slots\n", relays)
	fmt.Println("\nwhy: multi-hop relays must wait for the next hop's paid headroom,")
	fmt.Println("so intermediate datacenters hold the data between slots — exactly the")
	fmt.Println("mechanism NetStitcher exploits, generalized here to many files.")
}
