// Quickstart walks through the paper's Fig. 3 worked example end to end:
// it builds the four-datacenter network, runs Postcard and every baseline
// on the same two files, prints the plans, and verifies the paper's
// numbers — direct 52, flow-based 50, Postcard 32.67 per charging interval.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/interdc/postcard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// The worked example of Sec. V: all links have capacity 5 GB/slot;
	// File 1 moves 8 GB from D2 to D4 within 4 slots, File 2 moves 10 GB
	// from D1 to D4 within 2 slots.
	nw, files, err := postcard.Fig3Topology(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Postcard quickstart — the paper's Fig. 3 worked example")
	fmt.Printf("network: %d datacenters, %d directed links\n", nw.NumDCs(), nw.NumLinks())
	for _, f := range files {
		fmt.Printf("  file %d: D%d -> D%d, %g GB, deadline %d slots (desired rate %g GB/slot)\n",
			f.ID, int(f.Src)+1, int(f.Dst)+1, f.Size, f.Deadline, f.DesiredRate())
	}
	fmt.Println()

	// 1. No routing, no scheduling: each file takes its direct link.
	direct := mustCost(nw, files, func(l *postcard.Ledger) (*postcard.Schedule, float64) {
		res, err := postcard.FlowDirectSolve(l, files, 0)
		if err != nil {
			log.Fatal(err)
		}
		return res.Schedule, res.CostPerSlot
	})
	fmt.Printf("direct (no routing/scheduling): %.2f per interval\n", direct)

	// 2. The flow-based model: multi-path routing, constant rates, no
	// storage. File 2 saturates D1->D4, forcing File 1 onto D2->D3->D4.
	flow := mustCost(nw, files, func(l *postcard.Ledger) (*postcard.Schedule, float64) {
		res, err := postcard.FlowSolve(l, files, 0, nil)
		if err != nil {
			log.Fatal(err)
		}
		return res.Schedule, res.CostPerSlot
	})
	fmt.Printf("flow-based:                     %.2f per interval\n", flow)

	// 3. Postcard: the LP on the time-expanded graph. File 1 trickles over
	// the cheap D2->D1 link, is *stored* at D1, and rides the already-paid
	// D1->D4 link after File 2 vacates it.
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
	if err != nil {
		log.Fatal(err)
	}
	res, err := postcard.Solve(ledger, files, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	if res.Status != postcard.StatusOptimal {
		log.Fatalf("unexpected status %v", res.Status)
	}
	fmt.Printf("postcard (store-and-forward):   %.2f per interval\n\n", res.CostPerSlot)

	fmt.Println("postcard plan (note the holds at D1 and the late use of D1->D4):")
	for _, a := range res.Schedule.Actions() {
		fmt.Println(" ", a)
	}

	// Re-verify the plan with the independent checker — the library does
	// this internally too, but it is part of the public API.
	if err := postcard.VerifySchedule(res.Schedule, nw, files, postcard.VerifyConfig{}); err != nil {
		log.Fatalf("schedule failed verification: %v", err)
	}
	fmt.Println("\nschedule verified: conservation, capacity, and deadlines all hold")
	fmt.Printf("savings vs direct: %.1f%%\n", 100*(direct-res.CostPerSlot)/direct)
}

// mustCost runs a scheduler on a fresh ledger and returns the resulting
// cost per interval.
func mustCost(nw *postcard.Network, files []postcard.File,
	solve func(*postcard.Ledger) (*postcard.Schedule, float64)) float64 {
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
	if err != nil {
		log.Fatal(err)
	}
	plan, cost := solve(ledger)
	if err := plan.Apply(ledger); err != nil {
		log.Fatal(err)
	}
	return cost
}
