// Backup-replication simulates the workload the paper's introduction
// motivates: delay-tolerant inter-datacenter backups with a strong diurnal
// pattern. Six datacenters replicate data continuously for two simulated
// days; daytime slots generate far more traffic than night slots. The
// example compares the charged cost per interval under Postcard,
// the flow-based model, and direct transfers on the identical workload.
//
// Run with:
//
//	go run ./examples/backup-replication
package main

import (
	"fmt"
	"log"

	"github.com/interdc/postcard"
)

const (
	numDCs   = 6
	slots    = 48 // two days of 24 "hours"
	capacity = 14 // GB per slot per link (deliberately throttled: the Fig. 6-7 regime)
	seed     = 7
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("backup-replication: ")

	nw, err := postcard.Complete(numDCs, postcard.UniformPrices(seed), capacity)
	if err != nil {
		log.Fatal(err)
	}

	// Backups are delay tolerant: every file may take up to 8 slots.
	gen, err := postcard.NewDiurnalWorkload(postcard.DiurnalWorkloadConfig{
		Uniform: postcard.UniformWorkloadConfig{
			NumDCs:        numDCs,
			MinFiles:      2,
			MaxFiles:      5,
			MinSizeGB:     8,
			MaxSizeGB:     40,
			MaxDeadline:   8,
			FixedDeadline: true,
			Seed:          seed + 1,
		},
		Period:    24,
		Amplitude: 0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Record once so every scheduler replays the same demand.
	trace := postcard.RecordTrace(gen, slots)
	fmt.Printf("workload: %d backup files, %.0f GB total over %d slots (diurnal)\n\n",
		len(trace.Files), trace.TotalVolume(), slots)

	schedulers := []postcard.Scheduler{
		&postcard.PostcardScheduler{},
		&postcard.FlowScheduler{Variant: postcard.FlowLP},
		&postcard.FlowScheduler{Variant: postcard.FlowDirect},
	}
	fmt.Printf("%-12s %16s %10s %12s\n", "scheduler", "final cost/slot", "dropped", "solve time")
	results := make(map[string]*postcard.RunStats, len(schedulers))
	for _, sched := range schedulers {
		ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(slots))
		if err != nil {
			log.Fatal(err)
		}
		rs, err := postcard.Run(ledger, sched, trace, slots)
		if err != nil {
			log.Fatal(err)
		}
		results[sched.Name()] = rs
		fmt.Printf("%-12s %16.1f %10d %12s\n",
			sched.Name(), rs.FinalCostPerSlot, rs.DroppedFiles, rs.Elapsed.Round(1000000))
	}

	pc := results["postcard"].FinalCostPerSlot
	fl := results["flow-based"].FinalCostPerSlot
	dr := results["direct"].FinalCostPerSlot
	fmt.Printf("\npostcard saves %.1f%% vs direct and %.1f%% vs flow-based\n",
		100*(dr-pc)/dr, 100*(fl-pc)/fl)
	fmt.Println("\nwhy: the nightly lull leaves daytime-paid links idle; store-and-")
	fmt.Println("forward time-shifts backup traffic into those already-paid slots.")
}
