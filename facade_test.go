package postcard_test

import (
	"math"
	"testing"

	"github.com/interdc/postcard"
)

// TestClientOptionsMatchSolve pins the functional-options client against
// the plain Solve surface: a zero-option client must reproduce the default
// solve exactly, and a path-pricing client must agree on the objective.
func TestClientOptionsMatchSolve(t *testing.T) {
	build := func() (*postcard.Ledger, []postcard.File) {
		nw, files, err := postcard.Fig3Topology(0)
		if err != nil {
			t.Fatal(err)
		}
		ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
		if err != nil {
			t.Fatal(err)
		}
		return ledger, files
	}

	ledger, files := build()
	ref, err := postcard.Solve(ledger, files, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	ledger, files = build()
	got, err := postcard.New().Solve(ledger, files, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != ref.Status || got.CostPerSlot != ref.CostPerSlot {
		t.Errorf("zero-option client: status %v cost %v, plain Solve %v %v",
			got.Status, got.CostPerSlot, ref.Status, ref.CostPerSlot)
	}

	for _, c := range []*postcard.Client{
		postcard.New(postcard.WithPricing(postcard.PricingPath)),
		postcard.New(postcard.WithPricing(postcard.PricingPath), postcard.WithPricingWorkers(2)),
		postcard.New(postcard.WithPricing(postcard.PricingPath), postcard.WithWarmStart()),
	} {
		ledger, files = build()
		res, err := c.Solve(ledger, files, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != ref.Status {
			t.Fatalf("path client: status %v, want %v", res.Status, ref.Status)
		}
		if tol := 1e-3 * (1 + math.Abs(ref.CostPerSlot)); math.Abs(res.CostPerSlot-ref.CostPerSlot) > tol {
			t.Errorf("path client: cost %v, want %v", res.CostPerSlot, ref.CostPerSlot)
		}
	}

	cfg := postcard.New(postcard.WithStoragePolicy(postcard.StorageNone), postcard.WithEpsilon(1e-5)).Config()
	if cfg.Storage != postcard.StorageNone || cfg.Epsilon != 1e-5 {
		t.Errorf("options not reflected in Config(): %+v", cfg)
	}
}

// TestSchedulerRegistry checks that every registry entry builds a working
// scheduler whose Name matches its registry name, and that SchedulerByName
// agrees with the registry.
func TestSchedulerRegistry(t *testing.T) {
	infos := postcard.Schedulers()
	if len(infos) == 0 {
		t.Fatal("empty scheduler registry")
	}
	seen := make(map[string]bool)
	for _, info := range infos {
		if info.Name == "" || info.Description == "" || info.New == nil {
			t.Fatalf("incomplete registry entry %+v", info)
		}
		if seen[info.Name] {
			t.Fatalf("duplicate registry name %q", info.Name)
		}
		seen[info.Name] = true
		s := info.New()
		if s.Name() != info.Name {
			t.Errorf("registry %q builds scheduler named %q", info.Name, s.Name())
		}
		byName, err := postcard.SchedulerByName(info.Name)
		if err != nil {
			t.Errorf("SchedulerByName(%q): %v", info.Name, err)
		} else if byName.Name() != info.Name {
			t.Errorf("SchedulerByName(%q) builds %q", info.Name, byName.Name())
		}
	}
	for _, name := range postcard.SchedulerNames() {
		if !seen[name] {
			t.Errorf("SchedulerNames lists %q, absent from registry", name)
		}
	}
	if !seen["postcard-path"] {
		t.Error("registry is missing the postcard-path scheduler")
	}
	if _, err := postcard.SchedulerByName("no-such-scheduler"); err == nil {
		t.Error("SchedulerByName accepted an unknown name")
	}
}

// TestClientScheduler runs a registry path scheduler through one CI-scale
// figure cell to confirm the facade wiring end to end.
func TestClientScheduler(t *testing.T) {
	setting, err := postcard.SettingByFigure(6)
	if err != nil {
		t.Fatal(err)
	}
	scale := postcard.CIScale()
	scale.Runs = 1
	sched, err := postcard.SchedulerByName("postcard-path")
	if err != nil {
		t.Fatal(err)
	}
	res, err := postcard.RunFigure(postcard.FigureConfig{
		Setting:    setting,
		Scale:      scale,
		Schedulers: []postcard.Scheduler{sched, postcard.New(postcard.WithWarmStart()).Scheduler()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulers[0].Solver.PathSolves == 0 {
		t.Error("postcard-path scheduler recorded no path solves")
	}
	// Per-slot objectives agree exactly (see the sim package's shared-ledger
	// gate); the committed plans may sit on different vertices of the same
	// optimal face, so online trajectories drift slightly — bound it.
	path, arc := res.Schedulers[0].Final.Mean, res.Schedulers[1].Final.Mean
	if math.Abs(path-arc) > 0.05*(1+math.Abs(arc)) {
		t.Errorf("path scheduler mean cost %v strayed from warm arc %v", path, arc)
	}
}
