// Package postcard is a Go implementation of Postcard (Feng, Li, Li —
// IEEE ICDCS 2012): minimizing operational costs on inter-datacenter
// traffic with store-and-forward at intermediate datacenters.
//
// The package is the public facade of the library. It re-exports the
// supported surface of the internal packages:
//
//   - network modeling: datacenters, priced links, percentile-based
//     charging ledgers (Network, Ledger, Charging, File);
//   - the Postcard optimizer: an LP on a time-expanded graph that jointly
//     routes, splits, schedules, and stores traffic (Solve);
//   - the paper's baselines: the flow-based model in four flavors
//     (FlowSolve, FlowTwoPhase, FlowGreedy, FlowDirect);
//   - the Sec. VI extension problems (MaxBulk, MaxUnderBudget, AdmitFiles);
//   - the online simulator and the experiment driver regenerating the
//     paper's evaluation figures (Run, RunFigure);
//   - workload generators and reproducible traces;
//   - the admission daemon behind cmd/postcard-server (NewServer), with
//     snapshot/restore of the full solver state — ledger, reservations,
//     open batch, and simplex basis — for bit-identical resumes
//     (LedgerFromSnapshot, RestoreAdmissionController, RestoreServer).
//
// A minimal end-to-end use:
//
//	nw, files, _ := postcard.Fig3Topology(0)
//	ledger, _ := postcard.NewLedger(nw, postcard.MaxCharging(100))
//	res, _ := postcard.Solve(ledger, files, 0, nil)
//	_ = res.Schedule.Apply(ledger)
//	fmt.Println("cost per interval:", ledger.CostPerSlot())
//
// Everything is deterministic given seeds, uses only the standard library,
// and ships with its own sparse revised-simplex LP solver.
package postcard

import (
	"io"
	"strings"

	"github.com/interdc/postcard/internal/admission"
	"github.com/interdc/postcard/internal/core"
	"github.com/interdc/postcard/internal/extensions"
	"github.com/interdc/postcard/internal/flowbased"
	"github.com/interdc/postcard/internal/lp"
	"github.com/interdc/postcard/internal/netmodel"
	"github.com/interdc/postcard/internal/schedule"
	"github.com/interdc/postcard/internal/server"
	"github.com/interdc/postcard/internal/sim"
	"github.com/interdc/postcard/internal/stats"
	"github.com/interdc/postcard/internal/timegraph"
	"github.com/interdc/postcard/internal/workload"
)

// Network modeling types.
type (
	// DC identifies a datacenter by index.
	DC = netmodel.DC
	// Link is a directed overlay link between datacenters.
	Link = netmodel.Link
	// Network is the inter-datacenter overlay: priced, capacitated links.
	Network = netmodel.Network
	// File is the paper's four-tuple (source, destination, size, deadline).
	File = netmodel.File
	// Charging is a q-th percentile charging scheme.
	Charging = netmodel.Charging
	// Ledger tracks per-slot traffic volumes and charged volumes per link.
	Ledger = netmodel.Ledger
	// PiecewiseLinearCost is a non-decreasing piecewise-linear cost curve.
	PiecewiseLinearCost = netmodel.PiecewiseLinearCost
	// EvalSetting is one of the paper's four evaluation settings.
	EvalSetting = netmodel.EvalSetting
	// Instance is the JSON-serializable offline problem description.
	Instance = netmodel.Instance
	// InstanceLink and InstanceFile are Instance components.
	InstanceLink = netmodel.InstanceLink
	// InstanceFile describes one file within an Instance.
	InstanceFile = netmodel.InstanceFile
)

// Scheduling types.
type (
	// Schedule is a routing-and-scheduling plan (transfers and holdovers).
	Schedule = schedule.Schedule
	// Action is one scheduled movement or holdover.
	Action = schedule.Action
	// VerifyConfig parameterizes the independent schedule verifier.
	VerifyConfig = schedule.VerifyConfig
)

// Optimizer types.
type (
	// Config tunes the Postcard optimizer.
	Config = core.Config
	// Result is a Postcard optimization outcome.
	Result = core.Result
	// StoragePolicy controls where store-and-forward holdovers may occur.
	StoragePolicy = core.StoragePolicy
	// PricingMode selects the LP formulation: per-arc flow variables
	// (PricingArc, the default) or Dantzig–Wolfe path pricing (PricingPath).
	PricingMode = core.PricingMode
	// LPOptions tunes the underlying LP solver (Config.LP / WithLPOptions).
	LPOptions = lp.Options
	// UnroutableError reports structurally undeliverable files.
	UnroutableError = core.UnroutableError
	// IncrementalSolver is the warm-started slot-by-slot counterpart of
	// Solve: consecutive solves reuse the time-expanded graph skeleton and
	// warm-start each LP from the previous slot's basis. See core.Solver.
	IncrementalSolver = core.Solver
	// SolveStats aggregates the LP work an IncrementalSolver performed.
	SolveStats = core.SolveStats
)

// Baseline types.
type (
	// FlowConfig tunes the flow-based LP baselines.
	FlowConfig = flowbased.Config
	// FlowResult is a flow-based scheduling outcome.
	FlowResult = flowbased.Result
	// LinkRate is a static per-link rate of one file's flow.
	LinkRate = flowbased.LinkRate
	// UnroutedError reports rates that could not be placed.
	UnroutedError = flowbased.UnroutedError
)

// Extension types (Sec. VI problems).
type (
	// ExtConfig tunes the extension solvers.
	ExtConfig = extensions.Config
	// ExtResult is the outcome of a bulk or budget optimization.
	ExtResult = extensions.Result
)

// Simulation types.
type (
	// Scheduler makes per-slot decisions in the online simulator.
	Scheduler = sim.Scheduler
	// CloneableScheduler is a Scheduler that can produce independent
	// copies of itself; RunFigure requires it for parallel execution
	// (Scale.Workers > 1) so concurrent cells never share state. All
	// built-in schedulers implement it.
	CloneableScheduler = sim.CloneableScheduler
	// PostcardScheduler adapts the optimizer to the simulator.
	PostcardScheduler = sim.Postcard
	// FlowScheduler adapts the flow baselines to the simulator.
	FlowScheduler = sim.Flow
	// FlowVariant selects a flow-based baseline implementation.
	FlowVariant = sim.FlowVariant
	// RunStats summarizes one simulation run.
	RunStats = sim.RunStats
	// Scale sizes an experiment (paper scale or CI scale).
	Scale = sim.Scale
	// FigureConfig describes one evaluation figure to regenerate.
	FigureConfig = sim.FigureConfig
	// FigureResult is the regenerated data behind one figure.
	FigureResult = sim.FigureResult
	// SchedulerSummary aggregates one scheduler across runs.
	SchedulerSummary = sim.SchedulerSummary
	// SolverStatsReporter is implemented by schedulers that track
	// cumulative LP solver work (e.g. the warm-started Postcard adapter);
	// RunStats.Solver and SchedulerSummary.Solver aggregate it.
	SolverStatsReporter = sim.SolverStatsReporter
	// FastScheduler is the two-tier admission scheduler: an allocate-on-
	// arrival fast path admits files without an LP solve, and a background
	// re-optimizer republishes improved schedules between slots.
	FastScheduler = sim.Fast
)

// Admission fast-tier types.
type (
	// AdmissionConfig parameterizes the admission controller (search
	// budget and background-solver settings).
	AdmissionConfig = admission.Config
	// AdmissionController is the allocate-on-arrival tier: admit/reject
	// decisions with provisional single-path schedules, plus the republish
	// protocol that swaps them for LP-optimal plans.
	AdmissionController = admission.Controller
	// AdmissionDecision is the outcome of one Admit call.
	AdmissionDecision = admission.Decision
	// AdmissionStats counts admission decisions and fast-tier costs.
	AdmissionStats = admission.Stats
	// AdmissionPlan is a provisional single-path schedule with its exact
	// marginal charge.
	AdmissionPlan = admission.Plan
	// Reservations is the in-memory reservation ledger the fast tier
	// allocates from: per-link per-slot capacity holds layered over a
	// charging Ledger, never metered until committed.
	Reservations = netmodel.Reservations
)

// Snapshot types: the serializable state of each stateful layer. All four
// round-trip through JSON bit-exactly, so a process restored from them
// resumes its remaining horizon with identical decisions.
type (
	// LedgerSnapshot is the committed per-link traffic history of a Ledger.
	LedgerSnapshot = netmodel.LedgerSnapshot
	// ReservationsSnapshot is the fast tier's uncommitted capacity holds.
	ReservationsSnapshot = netmodel.ReservationsSnapshot
	// SolverSnapshot is an IncrementalSolver's warm state (basis and
	// model-variable keys) plus its cumulative counters.
	SolverSnapshot = core.SolverSnapshot
	// AdmissionSnapshot is an AdmissionController's full state: the open
	// batch, its reservations, and the background solver's snapshot.
	AdmissionSnapshot = admission.ControllerSnapshot
)

// Server types: the HTTP/JSON admission daemon behind cmd/postcard-server,
// embeddable as a library.
type (
	// Server is the admission daemon state machine; Server.Handler returns
	// its HTTP mux.
	Server = server.Server
	// ServerConfig parameterizes a Server.
	ServerConfig = server.Config
	// ServerSnapshot is a Server's full serializable state.
	ServerSnapshot = server.Snapshot
	// PlanRecord is the daemon's queryable per-transfer state.
	PlanRecord = server.PlanRecord
)

// Workload types.
type (
	// WorkloadGenerator produces the files generated at each slot.
	WorkloadGenerator = workload.Generator
	// UniformWorkload is the paper's evaluation workload generator.
	UniformWorkload = workload.Uniform
	// UniformWorkloadConfig parameterizes UniformWorkload.
	UniformWorkloadConfig = workload.UniformConfig
	// DiurnalWorkloadConfig parameterizes the diurnal generator.
	DiurnalWorkloadConfig = workload.DiurnalConfig
	// PoissonWorkload is the heavy-arrival Poisson workload generator.
	PoissonWorkload = workload.Poisson
	// PoissonWorkloadConfig parameterizes PoissonWorkload.
	PoissonWorkloadConfig = workload.PoissonConfig
	// Trace is a recorded, replayable workload.
	Trace = workload.Trace
	// TraceCursor is a per-goroutine linear-time replay cursor over a
	// Trace (see Trace.Replay); concurrent replays of one immutable
	// trace must each use their own cursor.
	TraceCursor = workload.TraceCursor
)

// Statistics types.
type (
	// Summary is a mean with a 95% confidence interval.
	Summary = stats.Summary
)

// Solver status values.
type SolveStatus = lp.Status

// Solve statuses.
const (
	StatusOptimal    = lp.Optimal
	StatusInfeasible = lp.Infeasible
	StatusUnbounded  = lp.Unbounded
	StatusIterLimit  = lp.IterLimit
)

// Storage policies for Config.Storage.
const (
	StorageEverywhere    = core.StorageEverywhere
	StorageEndpointsOnly = core.StorageEndpointsOnly
	StorageNone          = core.StorageNone
)

// Pricing modes for Config.Pricing (or WithPricing).
const (
	// PricingArc is the per-arc flow formulation with delayed column
	// generation — exact and fast at paper scale.
	PricingArc = core.PricingArc
	// PricingPath is the Dantzig–Wolfe path decomposition: whole
	// source→deadline path columns priced by per-file shortest-path oracles,
	// built for 100+ datacenter overlays. Exact (certified against the arc
	// model); falls back to an arc solve on infeasible instances.
	PricingPath = core.PricingPath
)

// Flow-based baseline variants for FlowScheduler.Variant.
const (
	FlowLP       = sim.FlowLP
	FlowTwoPhase = sim.FlowTwoPhase
	FlowGreedy   = sim.FlowGreedy
	FlowDirect   = sim.FlowDirect
)

// NewNetwork creates a network with n datacenters and no links.
func NewNetwork(n int) (*Network, error) { return netmodel.NewNetwork(n) }

// Complete builds a complete directed network with per-pair prices and a
// uniform capacity in GB/slot.
func Complete(n int, price func(i, j DC) float64, capacity float64) (*Network, error) {
	return netmodel.Complete(n, price, capacity)
}

// Fig1Topology builds the paper's Fig. 1 motivating example.
func Fig1Topology() (*Network, File, error) { return netmodel.Fig1Topology() }

// Fig3Topology builds the paper's Fig. 3 worked example, with both files
// released at the given slot.
func Fig3Topology(release int) (*Network, []File, error) { return netmodel.Fig3Topology(release) }

// MaxCharging is the 100th-percentile (peak) charging scheme the paper's
// evaluation uses, over a period of the given number of slots.
func MaxCharging(periodSlots int) Charging { return netmodel.MaxCharging(periodSlots) }

// NewLedger creates an empty charging ledger for the network.
func NewLedger(nw *Network, scheme Charging) (*Ledger, error) {
	return netmodel.NewLedger(nw, scheme)
}

// Solve runs the Postcard optimizer for the files generated at slot t,
// given everything already committed in the ledger. See core.Solve.
func Solve(ledger *Ledger, files []File, t int, cfg *Config) (*Result, error) {
	return core.Solve(ledger, files, t, cfg)
}

// NewIncrementalSolver creates a warm-started slot-by-slot solver whose
// consecutive Solve calls reuse the previous slot's time-expanded graph and
// simplex basis. Results match the stateless Solve on every input (same
// optimal objective, possibly a different vertex of the optimal face).
func NewIncrementalSolver(cfg *Config) *IncrementalSolver { return core.NewSolver(cfg) }

// FlowSolve runs the optimal flow-based baseline (single LP).
func FlowSolve(ledger *Ledger, files []File, t int, cfg *FlowConfig) (*FlowResult, error) {
	return flowbased.Solve(ledger, files, t, cfg)
}

// FlowTwoPhaseSolve runs the paper's two-phase flow decomposition.
func FlowTwoPhaseSolve(ledger *Ledger, files []File, t int, cfg *FlowConfig) (*FlowResult, error) {
	return flowbased.SolveTwoPhase(ledger, files, t, cfg)
}

// FlowGreedySolve runs the cheapest-available-path heuristic.
func FlowGreedySolve(ledger *Ledger, files []File, t int) (*FlowResult, error) {
	return flowbased.SolveGreedy(ledger, files, t)
}

// FlowDirectSolve sends every file over its direct link (no routing).
func FlowDirectSolve(ledger *Ledger, files []File, t int) (*FlowResult, error) {
	return flowbased.Direct(ledger, files, t)
}

// MaxBulk maximizes bulk volume delivered over already-paid leftover
// bandwidth (Sec. VI, NetStitcher-style, generalized to multiple files).
func MaxBulk(ledger *Ledger, files []File, t int, cfg *ExtConfig) (*ExtResult, error) {
	return extensions.MaxBulk(ledger, files, t, cfg)
}

// MaxUnderBudget maximizes delivered volume with the charged cost per slot
// capped at budgetPerSlot (Sec. VI).
func MaxUnderBudget(ledger *Ledger, files []File, t int, budgetPerSlot float64, cfg *ExtConfig) (*ExtResult, error) {
	return extensions.MaxUnderBudget(ledger, files, t, budgetPerSlot, cfg)
}

// AdmitFiles greedily admits whole files under a budget and returns the
// admitted IDs with the plan.
func AdmitFiles(ledger *Ledger, files []File, t int, budgetPerSlot float64, cfg *ExtConfig) ([]int, *ExtResult, error) {
	return extensions.AdmitFiles(ledger, files, t, budgetPerSlot, cfg)
}

// VerifySchedule re-checks a plan end to end (conservation, capacity,
// deadlines) independent of any solver.
func VerifySchedule(s *Schedule, nw *Network, files []File, cfg VerifyConfig) error {
	return schedule.Verify(s, nw, files, cfg)
}

// ErrInfeasible marks demand a Scheduler cannot fit under the residual
// capacity; the simulation engine sheds files and retries on it.
var ErrInfeasible = sim.ErrInfeasible

// Run executes one online simulation of the scheduler over the workload.
func Run(ledger *Ledger, sched Scheduler, gen WorkloadGenerator, slots int) (*RunStats, error) {
	return sim.Run(ledger, sched, gen, slots)
}

// RunFigure regenerates one of the paper's evaluation figures. With
// cfg.Scale.Workers > 1 the independent (run, scheduler) simulation cells
// execute on a worker pool and are reduced in fixed order, so the result
// is bit-identical to a sequential run at a fraction of the wall-clock
// time. See sim.RunFigure.
func RunFigure(cfg FigureConfig) (*FigureResult, error) { return sim.RunFigure(cfg) }

// PaperScale is the exact evaluation scale of Sec. VII.
func PaperScale() Scale { return sim.PaperScale() }

// CIScale is the reduced scale that preserves the paper's regimes.
func CIScale() Scale { return sim.CIScale() }

// DCScale is a fixed-workload scale for solver scaling studies: the file
// stream stays constant while the overlay grows to dcs datacenters, so
// solve-time differences isolate model size (see the PR 9 figure runs).
func DCScale(dcs int) Scale { return sim.DCScale(dcs) }

// EvalSettings returns the paper's four evaluation settings (Figs. 4-7).
func EvalSettings() []EvalSetting { return netmodel.EvalSettings() }

// SettingByFigure looks up the evaluation setting of a paper figure.
func SettingByFigure(fig int) (EvalSetting, error) { return netmodel.SettingByFigure(fig) }

// NewUniformWorkload creates the paper's uniform workload generator.
func NewUniformWorkload(cfg UniformWorkloadConfig) (*UniformWorkload, error) {
	return workload.NewUniform(cfg)
}

// NewPoissonWorkload creates a Poisson heavy-arrival workload generator.
func NewPoissonWorkload(cfg PoissonWorkloadConfig) (*PoissonWorkload, error) {
	return workload.NewPoisson(cfg)
}

// NewAdmissionController creates an allocate-on-arrival admission tier
// over the ledger. A nil config uses defaults.
func NewAdmissionController(ledger *Ledger, cfg *AdmissionConfig) (*AdmissionController, error) {
	return admission.NewController(ledger, cfg)
}

// NewReservations creates an empty reservation view over the ledger.
func NewReservations(ledger *Ledger) *Reservations {
	return netmodel.NewReservations(ledger)
}

// LedgerFromSnapshot rebuilds a ledger over nw from a snapshot taken with
// Ledger.Snapshot, validating every volume against the network.
func LedgerFromSnapshot(nw *Network, snap *LedgerSnapshot) (*Ledger, error) {
	return netmodel.LedgerFromSnapshot(nw, snap)
}

// RestoreAdmissionController rebuilds an admission controller over the
// ledger from a snapshot taken with AdmissionController.Snapshot: the open
// batch, its reservations, and the background solver's warm basis resume
// exactly where the snapshot left off.
func RestoreAdmissionController(ledger *Ledger, cfg *AdmissionConfig, snap *AdmissionSnapshot) (*AdmissionController, error) {
	return admission.RestoreController(ledger, cfg, snap)
}

// NewServer builds the admission daemon over a fresh ledger. Serve its
// HTTP surface with http.Serve(listener, srv.Handler()).
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// RestoreServer rebuilds a daemon from a snapshot taken with
// Server.Snapshot; the restored instance resumes the remaining horizon
// bit-identically to the uninterrupted run. cfg.Network is ignored — the
// topology is rebuilt from the snapshot.
func RestoreServer(cfg ServerConfig, snap *ServerSnapshot) (*Server, error) {
	return server.Restore(cfg, snap)
}

// NewDiurnalWorkload creates a day/night-modulated workload generator.
func NewDiurnalWorkload(cfg DiurnalWorkloadConfig) (WorkloadGenerator, error) {
	return workload.NewDiurnal(cfg)
}

// RecordTrace drains a generator into a replayable trace.
func RecordTrace(gen WorkloadGenerator, slots int) *Trace { return workload.Record(gen, slots) }

// ReadTrace deserializes a trace written with Trace.WriteJSON.
func ReadTrace(r io.Reader) (*Trace, error) { return workload.ReadTrace(r) }

// ReadInstance decodes a JSON problem instance.
func ReadInstance(r io.Reader) (*Instance, error) { return netmodel.ReadInstance(r) }

// InstanceOf captures a network and file set as a serializable Instance.
func InstanceOf(nw *Network, files []File) *Instance { return netmodel.InstanceOf(nw, files) }

// UniformPrices returns the paper's evaluation pricing: per-link prices
// drawn uniformly from [1, 10], deterministic in the seed.
func UniformPrices(seed int64) func(i, j DC) float64 { return workload.UniformPrices(seed) }

// TimeExpandedDOT renders the time-expanded graph of nw over horizon slots
// starting at slot start, in Graphviz DOT format.
func TimeExpandedDOT(nw *Network, start, horizon int) (string, error) {
	tg, err := timegraph.Build(nw, start, horizon)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	if err := tg.DOT(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}
