package postcard

import (
	"fmt"
	"strings"
)

// SchedulerInfo describes one named scheduler in the registry: the
// command-line name, a one-line description for help output, and a factory
// producing a fresh instance (schedulers are stateful, so every simulation
// needs its own).
type SchedulerInfo struct {
	Name        string
	Description string
	New         func() Scheduler
}

// Schedulers returns the registry of named schedulers, in display order:
// the Postcard variants first, then the flow-based baselines. The CLIs
// resolve -scheduler flags against it and print it for "-schedulers help";
// library callers can iterate it to run every scheduler in one experiment.
func Schedulers() []SchedulerInfo {
	return []SchedulerInfo{
		{
			Name:        "postcard",
			Description: "the paper's optimizer: joint routing/scheduling LP on the time-expanded graph",
			New:         func() Scheduler { return &PostcardScheduler{} },
		},
		{
			Name:        "postcard-warm",
			Description: "postcard with the incremental solver: graph skeleton and simplex basis reused across slots",
			New:         func() Scheduler { return &PostcardScheduler{WarmStart: true} },
		},
		{
			Name:        "postcard-path",
			Description: "postcard with Dantzig-Wolfe path pricing (built for 100+ DC overlays), warm-started",
			New: func() Scheduler {
				return &PostcardScheduler{
					Label:     "postcard-path",
					WarmStart: true,
					Config:    &Config{Pricing: PricingPath},
				}
			},
		},
		{
			Name:        "postcard-fast",
			Description: "allocate-on-arrival admission fast path with background LP republish",
			New:         func() Scheduler { return &FastScheduler{} },
		},
		{
			Name:        "postcard-fast-only",
			Description: "the pure admission fast path, no background re-optimization",
			New:         func() Scheduler { return &FastScheduler{NoRepublish: true} },
		},
		{
			Name:        "postcard-nostore",
			Description: "postcard with intermediate store-and-forward disabled (endpoints may still hold)",
			New: func() Scheduler {
				return &PostcardScheduler{
					Label:  "postcard-nostore",
					Config: &Config{Storage: StorageEndpointsOnly},
				}
			},
		},
		{
			Name:        "flow-based",
			Description: "the paper's flow-based baseline: optimal static per-file rates from one LP",
			New:         func() Scheduler { return &FlowScheduler{Variant: FlowLP} },
		},
		{
			Name:        "flow-two-phase",
			Description: "the paper's literal two-phase flow decomposition",
			New:         func() Scheduler { return &FlowScheduler{Variant: FlowTwoPhase} },
		},
		{
			Name:        "flow-greedy",
			Description: "cheapest-available-path greedy heuristic",
			New:         func() Scheduler { return &FlowScheduler{Variant: FlowGreedy} },
		},
		{
			Name:        "direct",
			Description: "every file on its direct link, no routing at all",
			New:         func() Scheduler { return &FlowScheduler{Variant: FlowDirect} },
		},
	}
}

// SchedulerNames lists the registry's scheduler names in display order.
func SchedulerNames() []string {
	infos := Schedulers()
	names := make([]string, len(infos))
	for i, info := range infos {
		names[i] = info.Name
	}
	return names
}

// SchedulerByName builds a fresh Scheduler from its registry name.
func SchedulerByName(name string) (Scheduler, error) {
	for _, info := range Schedulers() {
		if info.Name == name {
			return info.New(), nil
		}
	}
	return nil, fmt.Errorf("postcard: unknown scheduler %q (known: %s)",
		name, strings.Join(SchedulerNames(), ", "))
}
