module github.com/interdc/postcard

go 1.22
