package postcard_test

import (
	"math"
	"strings"
	"testing"

	"github.com/interdc/postcard"
)

// TestPublicAPIQuickstart exercises the facade end to end on the paper's
// Fig. 3 example, asserting the three numbers from Sec. V.
func TestPublicAPIQuickstart(t *testing.T) {
	nw, files, err := postcard.Fig3Topology(0)
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := postcard.NewLedger(nw, postcard.MaxCharging(100))
	if err != nil {
		t.Fatal(err)
	}
	res, err := postcard.Solve(ledger, files, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != postcard.StatusOptimal {
		t.Fatalf("status = %v", res.Status)
	}
	if want := 30 + 8.0/3.0; math.Abs(res.CostPerSlot-want) > 1e-5 {
		t.Errorf("postcard cost = %v, want %v", res.CostPerSlot, want)
	}
	flow, err := postcard.FlowSolve(ledger, files, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(flow.CostPerSlot-50) > 1e-5 {
		t.Errorf("flow cost = %v, want 50", flow.CostPerSlot)
	}
	direct, err := postcard.FlowDirectSolve(ledger, files, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct.CostPerSlot-52) > 1e-6 {
		t.Errorf("direct cost = %v, want 52", direct.CostPerSlot)
	}
	if err := postcard.VerifySchedule(res.Schedule, nw, files, postcard.VerifyConfig{}); err != nil {
		t.Errorf("verify: %v", err)
	}
	if err := res.Schedule.Apply(ledger); err != nil {
		t.Fatal(err)
	}
	if got := ledger.CostPerSlot(); math.Abs(got-res.CostPerSlot) > 1e-5 {
		t.Errorf("ledger cost %v != LP cost %v", got, res.CostPerSlot)
	}
}

func TestPublicAPIDOT(t *testing.T) {
	nw, _, err := postcard.Fig1Topology()
	if err != nil {
		t.Fatal(err)
	}
	dot, err := postcard.TimeExpandedDOT(nw, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "d0@0") {
		t.Errorf("unexpected DOT output:\n%s", dot)
	}
}

func TestPublicAPITraceRoundTrip(t *testing.T) {
	gen, err := postcard.NewUniformWorkload(postcard.UniformWorkloadConfig{
		NumDCs: 4, MinFiles: 1, MaxFiles: 2,
		MinSizeGB: 1, MaxSizeGB: 5, MaxDeadline: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	trace := postcard.RecordTrace(gen, 4)
	var sb strings.Builder
	if err := trace.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := postcard.ReadTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Files) != len(trace.Files) {
		t.Errorf("round trip lost files: %d != %d", len(got.Files), len(trace.Files))
	}
}

func TestPublicAPISettings(t *testing.T) {
	if got := len(postcard.EvalSettings()); got != 4 {
		t.Errorf("settings = %d, want 4", got)
	}
	if err := postcard.PaperScale().Validate(); err != nil {
		t.Error(err)
	}
	if err := postcard.CIScale().Validate(); err != nil {
		t.Error(err)
	}
}

// TestBenchScaleFigureShape is a fast sanity check that the benchmark-scale
// experiment still exhibits the paper's headline contrast: Postcard's
// advantage over flow-based grows when moving from ample capacity with
// urgent files (Fig. 4) to limited capacity with delay-tolerant files
// (Fig. 7).
func TestBenchScaleFigureShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	scale := postcard.Scale{
		Name: "shape", DCs: 6, Slots: 8, Runs: 2,
		FilesMin: 2, FilesMax: 5, SizeMinGB: 10, SizeMaxGB: 100, Seed: 2012,
	}
	ratio := func(fig int) float64 {
		setting, err := postcard.SettingByFigure(fig)
		if err != nil {
			t.Fatal(err)
		}
		res, err := postcard.RunFigure(postcard.FigureConfig{
			Setting: setting,
			Scale:   scale,
			Schedulers: []postcard.Scheduler{
				&postcard.PostcardScheduler{},
				&postcard.FlowScheduler{Variant: postcard.FlowLP},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Schedulers[0].Final.Mean / res.Schedulers[1].Final.Mean
	}
	r4 := ratio(4)
	r7 := ratio(7)
	t.Logf("postcard/flow cost ratio: fig4 %.3f, fig7 %.3f", r4, r7)
	if r7 >= r4 {
		t.Errorf("expected postcard's relative cost to improve from fig4 (%.3f) to fig7 (%.3f)", r4, r7)
	}
	if r7 >= 1 {
		t.Errorf("expected postcard to beat flow-based on fig7, ratio %.3f", r7)
	}
}
