#!/usr/bin/env bash
# server_smoke.sh — end-to-end smoke test of the postcard-server daemon.
#
# The script runs the same workload twice and demands identical counters:
#
#   1. reference: postcard-sim with the sequential postcard-fast scheduler,
#      recording the workload trace and the generated network instance;
#   2. daemon: postcard-server booted on that instance with
#      -republish-on-commit-only (one LP solve per non-empty slot — the
#      exact solve sequence of the sequential scheduler), the trace
#      replayed over HTTP slot by slot, /metrics scraped at the end.
#
# The admission counters (admits, rejects, republishes, fast cost,
# republish delta), the LP solve/iteration counts, and the final cost per
# slot scraped from /metrics must match the reference run exactly.
#
# The script then exercises snapshot/restore: the daemon writes a snapshot
# mid-horizon, is killed, restarts from the snapshot, and finishes the
# trace — the final cost must again match the uninterrupted reference.
#
# Usage:  scripts/server_smoke.sh
# Env:    SMOKE_PORT   listen port (default 18931)
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${SMOKE_PORT:-18931}"
ADDR="127.0.0.1:$PORT"
DCS=4
SLOTS=6
CAPACITY=200
SEED=7

tmp="$(mktemp -d)"
server_pid=""
cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$tmp"
}
trap cleanup EXIT

echo "== building =="
go build -o "$tmp/bin/" ./cmd/postcard-sim ./cmd/postcard-server

echo "== reference run (sequential postcard-fast) =="
"$tmp/bin/postcard-sim" -dcs $DCS -slots $SLOTS -capacity $CAPACITY -seed $SEED \
  -scheduler postcard-fast \
  -trace-out "$tmp/trace.json" -instance-out "$tmp/instance.json" \
  | tee "$tmp/reference.txt"

# Reference counters out of the human-readable report.
# A drop-free workload is required: on a rejection the simulation engine
# sheds a file and re-admits the rest of the batch, a retry loop the HTTP
# replay does not reproduce.
if ! grep -q 'files dropped:    0 ' "$tmp/reference.txt"; then
  echo "reference run dropped files; raise CAPACITY or change SEED" >&2
  exit 1
fi

ref_admits=$(awk '/fast admissions:/ {print $3}' "$tmp/reference.txt")
ref_rejects=$(awk '/fast admissions:/ {print $5}' "$tmp/reference.txt")
ref_republishes=$(awk '/fast admissions:/ {print $7}' "$tmp/reference.txt")
ref_solves=$(awk '/lp solves:/ {print $3}' "$tmp/reference.txt")
ref_iters=$(awk '/lp iterations:/ {print $3}' "$tmp/reference.txt")
ref_cost=$(awk '/final cost\/slot:/ {print $3}' "$tmp/reference.txt")

start_server() { # args: extra flags...
  "$tmp/bin/postcard-server" -listen "$ADDR" -q 100 -period $SLOTS \
    -republish-on-commit-only -snapshot "$tmp/state.json" "$@" \
    >>"$tmp/server.log" 2>&1 &
  server_pid=$!
  for _ in $(seq 1 50); do
    curl -sf "http://$ADDR/v1/status" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "server did not come up; log:" >&2
  cat "$tmp/server.log" >&2
  exit 1
}

# replay_slots FROM TO — admit each trace file at its release slot over
# HTTP, closing each slot with POST /v1/slots/advance.
replay_slots() {
  python3 - "$tmp/trace.json" "$1" "$2" "$ADDR" <<'EOF'
import json, sys, urllib.request

trace, lo, hi, addr = sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), sys.argv[4]
files = json.load(open(trace))["files"]

def post(path, body):
    req = urllib.request.Request(f"http://{addr}{path}", method="POST",
                                 data=json.dumps(body).encode(),
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req) as r:
            return r.status, json.load(r)
    except urllib.error.HTTPError as e:
        return e.code, json.load(e)

for slot in range(lo, hi):
    for f in files:
        if f["Release"] != slot:
            continue
        code, resp = post("/v1/transfers", {
            "src": f["Src"], "dst": f["Dst"], "size_gb": f["Size"],
            "deadline": f["Deadline"], "release": f["Release"],
        })
        if code not in (200, 422):
            raise SystemExit(f"slot {slot}: admit returned {code}: {resp}")
    code, resp = post("/v1/slots/advance", {})
    if code != 200:
        raise SystemExit(f"advance returned {code}: {resp}")
EOF
}

metric() { # args: name
  awk -v m="$1" '$1 == m {print $2}' "$tmp/metrics.txt"
}

check() { # args: label got want
  if [ "$2" != "$3" ]; then
    echo "MISMATCH $1: daemon $2 != reference $3" >&2
    exit 1
  fi
  echo "   $1: $2 == $3"
}

echo "== daemon run (trace over HTTP) =="
start_server -instance "$tmp/instance.json"
replay_slots 0 $SLOTS
curl -sf "http://$ADDR/metrics" >"$tmp/metrics.txt"
kill "$server_pid" && wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== diffing /metrics against the reference run =="
check admits       "$(metric postcard_admission_admits_total)"       "$ref_admits"
check rejects      "$(metric postcard_admission_rejects_total)"      "$ref_rejects"
check republishes  "$(metric postcard_admission_republishes_total)"  "$ref_republishes"
check lp-solves    "$(metric postcard_solver_solves_total)"          "$ref_solves"
check lp-iters     "$(metric postcard_solver_iterations_total)"      "$ref_iters"
daemon_cost=$(printf '%.2f' "$(metric postcard_cost_per_slot)")
check cost/slot    "$daemon_cost" "$ref_cost"

echo "== kill/restart from snapshot mid-horizon =="
CUT=$((SLOTS / 2))
start_server -instance "$tmp/instance.json"
replay_slots 0 $CUT
curl -sf -X POST "http://$ADDR/v1/snapshot" >/dev/null
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
server_pid=""

start_server -restore "$tmp/state.json"
replay_slots $CUT $SLOTS
curl -sf "http://$ADDR/metrics" >"$tmp/metrics.txt"
kill "$server_pid" && wait "$server_pid" 2>/dev/null || true
server_pid=""

restart_cost=$(printf '%.2f' "$(metric postcard_cost_per_slot)")
check restart-cost/slot "$restart_cost" "$ref_cost"
check restart-admits    "$(metric postcard_admission_admits_total)"  "$ref_admits"
check restart-rejects   "$(metric postcard_admission_rejects_total)" "$ref_rejects"

echo "server smoke: OK"
